// Cross-shard mailbox invariants, checked the same way the event core
// is: a randomized op stream against a naive reference model. The two
// properties the sharded engine stands on:
//
//   1. timestamp safety — a posted event NEVER runs before its stamp
//      (conservative lookahead means every stamp is beyond the current
//      window, so the drain always schedules into the future);
//   2. drain-on-teardown leaks nothing — undelivered closures (and
//      whatever they capture) are released when the group shuts down,
//      and the posted/delivered/dropped ledgers balance exactly.
//
// The whole suite also runs under ASan/UBSan (tools/sanitize.sh), so
// property 2 is additionally enforced by the leak checker.
#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "sim/shard.hpp"

namespace onelab::sim {
namespace {

TEST(CrossShardMailbox, PostDrainPreservesProgramOrderAndCounts) {
    CrossShardMailbox box{"a->b", 1};
    int ran = 0;
    box.post(millis(5), [&] { ran += 1; });
    box.post(millis(3), [&] { ran += 10; });
    EXPECT_EQ(box.posted(), 2u);
    EXPECT_EQ(box.pending(), 2u);

    auto batch = box.drain();
    ASSERT_EQ(batch.size(), 2u);
    // Program order, not time order: the group's drain pass does the
    // (when, portRank, seq) merge; the mailbox only preserves seq.
    EXPECT_EQ(batch[0].when, millis(5));
    EXPECT_EQ(batch[0].seq, 1u);
    EXPECT_EQ(batch[1].when, millis(3));
    EXPECT_EQ(batch[1].seq, 2u);
    EXPECT_EQ(box.delivered(), 2u);
    EXPECT_EQ(box.pending(), 0u);
    EXPECT_EQ(ran, 0) << "drain must hand closures over, not run them";
}

TEST(CrossShardMailbox, ClearDropsWithoutRunning) {
    CrossShardMailbox box{"a->b", 1};
    bool ran = false;
    box.post(millis(1), [&] { ran = true; });
    EXPECT_EQ(box.clear(), 1u);
    EXPECT_FALSE(ran);
    EXPECT_EQ(box.dropped(), 1u);
    EXPECT_EQ(box.pending(), 0u);
}

/// Property 1, randomized: ~1000 posts with random stamps and random
/// window advances across a 3-shard group. Every delivery must execute
/// exactly at its stamp (scheduleAt semantics — and in particular
/// never before it), the per-target delivery stream must be
/// time-ordered, and the group must never count a late delivery.
TEST(CrossShardMailbox, RandomizedPostsNeverDeliverBeforeTheirStamp) {
    const SimTime lookahead = millis(2);
    ShardGroup group{3, lookahead};
    std::mt19937_64 rng(0xABADCAFE);

    struct Delivery {
        SimTime stamp{};
        SimTime ranAt{};
        int id = 0;
    };
    // Per-target logs: each is written only by its own shard's worker
    // thread (delivery closures run shard-local) and read by the test
    // thread after the barrier, so no lock is needed.
    std::vector<Delivery> deliveries[3];

    // One port into each shard; ranks mimic the fleet's site-ordinal
    // scheme (stable, partition-independent).
    ShardPost ports[3] = {group.makePort(0, "to0", 1), group.makePort(1, "to1", 2),
                          group.makePort(2, "to2", 3)};

    int nextId = 0;
    std::size_t expectedDeliveries = 0;
    for (int round = 0; round < 40; ++round) {
        // Posts originate from shard-local events mid-window, exactly
        // like a Pipe end relaying bytes: schedule a poster on a
        // random source shard, stamping target time >= poster time +
        // lookahead (the conservative contract).
        const int posters = int(rng() % 25);
        for (int p = 0; p < posters; ++p) {
            const std::size_t source = rng() % 3;
            const std::size_t target = rng() % 3;
            const SimTime posterAt =
                group.now() + SimTime{std::int64_t(rng() % 1000000)};
            const SimTime extra{std::int64_t(rng() % 3000000)};
            const int id = nextId++;
            ShardGroup* groupPtr = &group;
            ShardPost* port = &ports[target];
            std::vector<Delivery>* log = &deliveries[target];
            Simulator* targetSim = &group.shard(target).sim();
            group.shard(source).sim().scheduleAt(
                posterAt, [groupPtr, port, log, targetSim, id, extra, posterAt] {
                    const SimTime stamp = posterAt + groupPtr->lookahead() + extra;
                    (*port)(stamp, [log, targetSim, stamp, id] {
                        log->push_back(Delivery{stamp, targetSim->now(), id});
                    });
                });
            ++expectedDeliveries;
        }
        group.runFor(SimTime{std::int64_t(rng() % 4000000) + 1});
    }
    // Let every in-flight stamp land: max stamp < last poster time +
    // lookahead + 3ms, and posters stop after the final round.
    group.runFor(millis(20));

    EXPECT_EQ(group.lateDeliveries(), 0u);
    EXPECT_EQ(group.mailPosted(), expectedDeliveries);
    EXPECT_EQ(group.mailDelivered() + group.mailDropped(), group.mailPosted());
    std::size_t observed = 0;
    for (const auto& log : deliveries) {
        SimTime last{0};
        for (const Delivery& delivery : log) {
            EXPECT_EQ(delivery.ranAt, delivery.stamp)
                << "id " << delivery.id << " ran off its stamp";
            // Per-target streams are non-decreasing in time.
            EXPECT_LE(last, delivery.ranAt);
            last = delivery.ranAt;
            ++observed;
        }
    }
    EXPECT_EQ(group.mailDelivered(), observed);
}

/// Same-stamp posts from different ports inside one window drain in
/// (portRank, seq) order — the partition-independent merge the
/// cross-N determinism argument rests on.
TEST(CrossShardMailbox, DrainMergesSameStampPostsByPortRankThenSeq) {
    ShardGroup group{2, millis(1)};
    ShardPost high = group.makePort(0, "rank9", 9);
    ShardPost low = group.makePort(0, "rank3", 3);

    std::vector<int> order;
    const SimTime stamp = group.now() + millis(5);
    group.shard(1).sim().scheduleAt(group.now() + SimTime{1}, [&] {
        high(stamp, [&] { order.push_back(1); });
        high(stamp, [&] { order.push_back(2); });
        low(stamp, [&] { order.push_back(3); });
        low(stamp, [&] { order.push_back(4); });
    });
    group.runFor(millis(10));
    EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2}));
}

/// Property 2: mail still pending at shutdown is dropped — never run —
/// and the closures (with their captures) are destroyed, not leaked.
TEST(CrossShardMailbox, ShutdownDropsPendingMailAndReleasesCaptures) {
    auto payload = std::make_shared<int>(42);
    bool ran = false;
    {
        ShardGroup group{2, millis(1)};
        ShardPost port = group.makePort(0, "to0", 1);
        // The poster must land in the FINAL window of the advance
        // (9.5ms + 1ms lookahead > 10ms target): mail posted there is
        // only drained by the NEXT runUntil, so it is still sitting in
        // the mailbox when the group shuts down.
        group.shard(1).sim().scheduleAt(millis(9.5), [&, payload] {
            port(seconds(100.0), [&ran, payload] { ran = true; });
        });
        group.runFor(millis(10));
        EXPECT_EQ(group.mailPosted(), 1u);
        EXPECT_EQ(group.mailDelivered(), 0u);
        group.shutdown();
        EXPECT_EQ(group.mailDropped(), 1u);
        // Idempotent: a second shutdown (and the destructor's) is a
        // no-op, not a double drop.
        group.shutdown();
        EXPECT_EQ(group.mailDropped(), 1u);
    }
    EXPECT_FALSE(ran);
    EXPECT_EQ(payload.use_count(), 1) << "dropped mail must release its captures";
}

}  // namespace
}  // namespace onelab::sim
