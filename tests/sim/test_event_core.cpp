// Event-core invariants: randomized schedule/cancel/clear/run
// interleavings checked against a naive reference model (mirroring the
// CellCapacity invariant suite), plus regressions pinning handle
// invalidation across clear() and slot recycling, exception safety of
// the run loop, and exactness of the sim.events_* registry mirrors
// under counter batching.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "obs/run_context.hpp"

namespace onelab::sim {
namespace {

/// What the naive model knows about one pending event.
struct ModelEvent {
    SimTime when{};
    std::uint64_t seq = 0;  ///< scheduling order, the FIFO tie-break
    int id = 0;
};

bool modelBefore(const ModelEvent& a, const ModelEvent& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
}

TEST(EventCore, RandomizedOpsMatchReferenceModel) {
    Simulator sim;
    std::mt19937_64 rng(0xC0FFEE);

    std::vector<ModelEvent> model;                       // pending, unordered
    std::vector<std::pair<int, EventHandle>> handles;    // every handle ever issued
    std::vector<int> fired;                              // actual firing order
    std::vector<int> expected;                           // model firing order
    SimTime now{0};
    std::uint64_t seq = 0;
    int nextId = 0;

    // Small delay set on purpose: lots of same-timestamp collisions so
    // the FIFO tie-break is exercised hard, plus negatives for the
    // clamp-to-now path.
    const SimTime delays[] = {millis(-3), millis(0), millis(0), millis(1),
                              millis(2),  millis(5), millis(17)};

    const auto drainUpTo = [&](SimTime horizon) {
        std::sort(model.begin(), model.end(), modelBefore);
        auto it = model.begin();
        while (it != model.end() && it->when <= horizon) {
            expected.push_back(it->id);
            ++it;
        }
        model.erase(model.begin(), it);
    };

    for (int op = 0; op < 1000; ++op) {
        const std::uint64_t roll = rng() % 100;
        if (roll < 55) {
            const SimTime delay = delays[rng() % std::size(delays)];
            const int id = nextId++;
            const EventHandle handle = sim.schedule(delay, [id, &fired] { fired.push_back(id); });
            handles.emplace_back(id, handle);
            model.push_back(ModelEvent{now + std::max(SimTime{0}, delay), seq++, id});
        } else if (roll < 75 && !handles.empty()) {
            // Cancel a random handle — possibly one that already fired,
            // was cancelled, or was dropped by clear(); the model says
            // exactly when cancel must report success.
            const auto& [id, handle] = handles[rng() % handles.size()];
            const auto it = std::find_if(model.begin(), model.end(),
                                         [id = id](const ModelEvent& e) { return e.id == id; });
            const bool pending = it != model.end();
            EXPECT_EQ(sim.cancel(handle), pending) << "op " << op << " id " << id;
            if (pending) model.erase(it);
        } else if (roll < 90) {
            const SimTime horizon = now + SimTime{std::int64_t(rng() % 40) * 1'000'000};
            sim.runUntil(horizon);
            drainUpTo(horizon);
            now = std::max(now, horizon);
        } else if (roll < 95) {
            sim.clear();
            model.clear();
        } else {
            if (!model.empty()) {
                std::sort(model.begin(), model.end(), modelBefore);
                now = std::max(now, model.back().when);
            }
            sim.run();
            drainUpTo(SimTime{std::numeric_limits<std::int64_t>::max()});
        }
        ASSERT_EQ(sim.pendingEvents(), model.size()) << "op " << op;
        ASSERT_EQ(sim.now(), now) << "op " << op;
    }

    if (!model.empty()) now = std::max(now, std::max_element(model.begin(), model.end(), modelBefore)->when);
    sim.run();
    drainUpTo(SimTime{std::numeric_limits<std::int64_t>::max()});
    EXPECT_EQ(fired, expected);
}

TEST(EventCore, CancelAfterClearReturnsFalse) {
    Simulator sim;
    bool firedDropped = false;
    const EventHandle handle = sim.schedule(millis(1), [&] { firedDropped = true; });
    sim.clear();
    EXPECT_FALSE(sim.cancel(handle));
    sim.run();
    EXPECT_FALSE(firedDropped);
}

TEST(EventCore, StaleHandleCannotCancelRecycledSlot) {
    Simulator sim;
    // Fire-then-reschedule recycles the same slot; the stale handle
    // carries the old generation and must not cancel the new event.
    const EventHandle stale = sim.schedule(millis(1), [] {});
    sim.run();
    bool fired = false;
    sim.schedule(millis(1), [&] { fired = true; });
    EXPECT_FALSE(sim.cancel(stale));
    sim.run();
    EXPECT_TRUE(fired);

    // Same via clear(): the dropped event's slot is recycled too.
    bool secondFired = false;
    const EventHandle dropped = sim.schedule(millis(1), [] {});
    sim.clear();
    sim.schedule(millis(1), [&] { secondFired = true; });
    EXPECT_FALSE(sim.cancel(dropped));
    sim.run();
    EXPECT_TRUE(secondFired);
}

TEST(EventCore, ClearPreservesClockAndExecutedCount) {
    Simulator sim;
    sim.schedule(millis(10), [] {});
    sim.run();
    sim.schedule(millis(5), [] {});
    sim.clear();
    // Documented semantics: clear() drops pending work only — the
    // clock and the lifetime executed count stay monotonic.
    EXPECT_EQ(sim.now(), millis(10));
    EXPECT_EQ(sim.executedEvents(), 1u);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(EventCore, ThrowingEventPropagatesAndQueueSurvives) {
    Simulator sim;
    bool laterFired = false;
    sim.schedule(millis(1), [] { throw std::runtime_error("boom"); });
    sim.schedule(millis(2), [&] { laterFired = true; });
    EXPECT_THROW(sim.run(), std::runtime_error);
    EXPECT_FALSE(laterFired);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();  // the loop is reusable after unwinding
    EXPECT_TRUE(laterFired);
    EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(EventCore, RegistryMirrorsAreExactOutsideRunLoops) {
    // The hot loop batches sim.events_* updates; every observation
    // point sits outside a run loop and must see exact values.
    obs::RunContext context;
    Simulator sim;
    sim.schedule(millis(1), [] {});
    sim.schedule(millis(2), [] {});
    const EventHandle cancelled = sim.schedule(millis(3), [] {});
    EXPECT_TRUE(sim.cancel(cancelled));
    sim.schedule(millis(4), [&sim] {
        // Scheduled (and cancelled) from inside the loop: lands in the
        // pending deltas, flushed at loop exit.
        const EventHandle inner = sim.schedule(millis(1), [] {});
        EXPECT_TRUE(sim.cancel(inner));
    });
    sim.run();
    auto& registry = obs::Registry::instance();
    EXPECT_EQ(registry.counter("sim.events_scheduled").value(), 5u);
    EXPECT_EQ(registry.counter("sim.events_executed").value(), 3u);
    EXPECT_EQ(registry.counter("sim.events_cancelled").value(), 2u);
}

TEST(EventCore, RescheduleFromOwnCallbackRunsToCompletion) {
    Simulator sim;
    int ticks = 0;
    // Self-rescheduling chain through recycled slots, as periodic
    // sources (CBR writers, RLC timers) do.
    std::function<void()> tick = [&] {
        if (++ticks < 100) sim.schedule(millis(1), tick);
    };
    sim.schedule(millis(1), tick);
    EXPECT_EQ(sim.run(), 100u);
    EXPECT_EQ(ticks, 100);
    EXPECT_EQ(sim.now(), millis(100));
}

}  // namespace
}  // namespace onelab::sim
