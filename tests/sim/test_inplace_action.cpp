// Unit coverage for sim::InplaceAction, the small-buffer-optimized
// event callback: inline vs heap storage selection, move-only
// callables, the in-place assignment used by Simulator::scheduleAt,
// and the invoke-and-destroy fire path (including on unwind).
#include "sim/inplace_action.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace onelab::sim {
namespace {

TEST(InplaceAction, InvokesSmallCallableInline) {
    int calls = 0;
    InplaceAction action = [&calls] { ++calls; };
    EXPECT_TRUE(static_cast<bool>(action));
    action();
    action();
    EXPECT_EQ(calls, 2);
}

TEST(InplaceAction, DefaultConstructedIsEmpty) {
    InplaceAction action;
    EXPECT_FALSE(static_cast<bool>(action));
}

TEST(InplaceAction, MoveTransfersCallable) {
    int calls = 0;
    InplaceAction source = [&calls] { ++calls; };
    InplaceAction target = std::move(source);
    EXPECT_FALSE(static_cast<bool>(source));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(target));
    target();
    EXPECT_EQ(calls, 1);
}

TEST(InplaceAction, ResetDestroysCallable) {
    // use_count drops back to 1 exactly when the stored copy is gone.
    auto token = std::make_shared<int>(0);
    InplaceAction action = [token] { ++*token; };
    EXPECT_EQ(token.use_count(), 2);
    action.reset();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(action));
    action.reset();  // idempotent
}

TEST(InplaceAction, HeapFallbackForOversizeCallable) {
    auto token = std::make_shared<int>(0);
    struct Big {
        char pad[2 * InplaceAction::kInlineBytes];
        std::shared_ptr<int> token;
        void operator()() const { ++*token; }
    };
    static_assert(sizeof(Big) > InplaceAction::kInlineBytes);
    {
        InplaceAction action = Big{{}, token};
        EXPECT_EQ(token.use_count(), 2);
        action();
        InplaceAction moved = std::move(action);
        moved();
    }  // heap copy freed with the owning action
    EXPECT_EQ(*token, 2);
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InplaceAction, HoldsMoveOnlyCallable) {
    auto value = std::make_unique<int>(41);
    int observed = 0;
    // std::function could not store this lambda at all.
    InplaceAction action = [owned = std::move(value), &observed] { observed = *owned + 1; };
    action();
    EXPECT_EQ(observed, 42);
}

TEST(InplaceAction, AssignmentReplacesAndDestroysPrevious) {
    auto first = std::make_shared<int>(0);
    auto second = std::make_shared<int>(0);
    InplaceAction action = [first] { ++*first; };
    action = [second] { ++*second; };
    EXPECT_EQ(first.use_count(), 1);  // old callable destroyed by assignment
    action();
    EXPECT_EQ(*first, 0);
    EXPECT_EQ(*second, 1);
}

TEST(InplaceAction, InvokeOnceRunsAndDestroys) {
    auto token = std::make_shared<int>(0);
    InplaceAction action = [token] { ++*token; };
    action.invokeOnce();
    EXPECT_EQ(*token, 1);
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(action));
}

TEST(InplaceAction, InvokeOnceDestroysOnThrow) {
    auto token = std::make_shared<int>(0);
    struct Thrower {
        std::shared_ptr<int> token;
        void operator()() const { throw std::runtime_error("boom"); }
    };
    InplaceAction action = Thrower{token};
    EXPECT_THROW(action.invokeOnce(), std::runtime_error);
    // The callable must be destroyed even on unwind — the Simulator's
    // fire path has already retired the slot by the time it invokes.
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(action));
}

TEST(InplaceAction, DatapathDeliveryClosureStaysInline) {
    // The pipe's delivery closure shape (two pointers, a weak_ptr, a
    // util::Bytes) is the reason kInlineBytes is 64 — pin that the
    // shape actually fits so a capture creep shows up as a test fail,
    // not a silent heap allocation per delivered frame.
    struct DeliveryShape {
        void* peer;
        std::weak_ptr<bool> alive;
        void* pool;
        std::vector<std::uint8_t> buffer;
        void operator()() const {}
    };
    static_assert(sizeof(DeliveryShape) <= InplaceAction::kInlineBytes);
    SUCCEED();
}

}  // namespace
}  // namespace onelab::sim
