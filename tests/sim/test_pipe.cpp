#include "sim/pipe.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/registry.hpp"
#include "obs/run_context.hpp"

namespace onelab::sim {
namespace {

util::Bytes toBytes(const std::string& text) {
    return util::Bytes{text.begin(), text.end()};
}

TEST(Pipe, BidirectionalDelivery) {
    Simulator sim;
    Pipe pipe{sim};
    std::string atB;
    std::string atA;
    pipe.b().onData([&](util::ByteView data) { atB.append(data.begin(), data.end()); });
    pipe.a().onData([&](util::ByteView data) { atA.append(data.begin(), data.end()); });

    const auto hello = toBytes("hello");
    pipe.a().write({hello.data(), hello.size()});
    const auto world = toBytes("world");
    pipe.b().write({world.data(), world.size()});
    sim.run();
    EXPECT_EQ(atB, "hello");
    EXPECT_EQ(atA, "world");
}

TEST(Pipe, DeliveryIsDeferredNotReentrant) {
    Simulator sim;
    Pipe pipe{sim};
    bool delivered = false;
    pipe.b().onData([&](util::ByteView) { delivered = true; });
    const auto data = toBytes("x");
    pipe.a().write({data.data(), data.size()});
    EXPECT_FALSE(delivered);  // not until events run
    sim.run();
    EXPECT_TRUE(delivered);
}

TEST(Pipe, PreservesWriteOrder) {
    Simulator sim;
    Pipe pipe{sim};
    std::string received;
    pipe.b().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });
    for (const char* chunk : {"a", "b", "c", "d"}) {
        const auto bytes = toBytes(chunk);
        pipe.a().write({bytes.data(), bytes.size()});
    }
    sim.run();
    EXPECT_EQ(received, "abcd");
}

TEST(Pipe, LatencyApplied) {
    Simulator sim;
    Pipe pipe{sim, millis(5)};
    SimTime deliveredAt{-1};
    pipe.b().onData([&](util::ByteView) { deliveredAt = sim.now(); });
    const auto data = toBytes("x");
    pipe.a().write({data.data(), data.size()});
    sim.run();
    EXPECT_EQ(deliveredAt, millis(5));
}

TEST(Pipe, WriteWithoutHandlerIsDropped) {
    Simulator sim;
    Pipe pipe{sim};
    const auto data = toBytes("lost");
    pipe.a().write({data.data(), data.size()});
    EXPECT_NO_FATAL_FAILURE(sim.run());
}

TEST(Pipe, WriteWithoutHandlerEarlyOutsAndCounts) {
    obs::RunContext context;
    Simulator sim;
    Pipe pipe{sim};
    const auto data = toBytes("lost");
    pipe.a().write({data.data(), data.size()});
    // The early-out skips the copy AND the delivery event; the dropped
    // bytes stay visible in the counter.
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(obs::Registry::instance().counter("sim.pipe.dropped_no_handler").value(),
              data.size());
    // Once a handler is installed, writes flow again.
    std::string received;
    pipe.b().onData([&](util::ByteView view) { received.append(view.begin(), view.end()); });
    pipe.a().write({data.data(), data.size()});
    sim.run();
    EXPECT_EQ(received, "lost");
    EXPECT_EQ(obs::Registry::instance().counter("sim.pipe.dropped_no_handler").value(),
              data.size());
}

TEST(Pipe, DeliveryRecyclesPooledBuffers) {
    Simulator sim;
    Pipe pipe{sim};
    pipe.b().onData([](util::ByteView) {});
    const auto data = toBytes("steady-state frame");
    pipe.a().write({data.data(), data.size()});
    sim.run();  // first write allocates; delivery returns it to the pool
    pipe.a().write({data.data(), data.size()});
    sim.run();
    EXPECT_EQ(sim.bufferPool().allocations(), 1u);
    EXPECT_EQ(sim.bufferPool().reuses(), 1u);
}

TEST(Pipe, SharedWriteDeliversTheSameCoreZeroCopy) {
    Simulator sim;
    Pipe pipe{sim};
    util::SharedBytes delivered;
    pipe.b().onDataShared([&](util::SharedBytes data) { delivered = std::move(data); });

    util::Bytes frame = sim.bufferPool().acquire(std::size_t{64});
    for (std::size_t i = 0; i < frame.size(); ++i) frame[i] = std::uint8_t(i);
    const std::uint8_t* payload = frame.data();
    util::SharedBytes slice = sim.bufferPool().share(std::move(frame));
    pipe.a().write(slice);
    sim.run();
    ASSERT_EQ(delivered.size(), 64u);
    EXPECT_EQ(delivered.data(), payload);  // the writer's bytes, not a copy
    EXPECT_EQ(delivered.view()[63], 63);
    // Writer + receiver hold the same core.
    EXPECT_EQ(slice.refCount(), 2u);
    slice.reset();
    delivered.reset();
    EXPECT_EQ(sim.bufferPool().outstandingShared(), 0u);
    EXPECT_EQ(sim.bufferPool().pooledBuffers(), 1u);  // capacity recycled
}

TEST(Pipe, SharedWriteToViewReceiverDegradesGracefully) {
    Simulator sim;
    Pipe pipe{sim};
    std::string received;
    pipe.b().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });
    const auto text = toBytes("still works");
    pipe.a().write(sim.bufferPool().acquireShared({text.data(), text.size()}));
    sim.run();
    EXPECT_EQ(received, "still works");
}

TEST(Pipe, ViewWriteToSharedReceiverHandsOverThePooledCopy) {
    Simulator sim;
    Pipe pipe{sim};
    util::SharedBytes delivered;
    pipe.b().onDataShared([&](util::SharedBytes data) { delivered = std::move(data); });
    const auto text = toBytes("copied once");
    pipe.a().write({text.data(), text.size()});
    sim.run();
    ASSERT_EQ(delivered.size(), text.size());
    EXPECT_EQ(delivered.refCount(), 1u);
    // The pooled copy recycles through the shared path, keeping the
    // alloc-once steady state of DeliveryRecyclesPooledBuffers.
    delivered.reset();
    pipe.a().write({text.data(), text.size()});
    sim.run();
    EXPECT_EQ(sim.bufferPool().allocations(), 1u);
    EXPECT_EQ(sim.bufferPool().reuses(), 1u);
}

TEST(Pipe, SharedWriteWithCorruptionStillCorrupts) {
    Simulator sim;
    Pipe pipe{sim};
    pipe.setCorruption(1.0, 7);  // flip every byte
    util::SharedBytes delivered;
    pipe.b().onDataShared([&](util::SharedBytes data) { delivered = std::move(data); });
    const auto text = toBytes("mutate me");
    util::SharedBytes slice = sim.bufferPool().acquireShared({text.data(), text.size()});
    pipe.a().write(slice);
    sim.run();
    ASSERT_EQ(delivered.size(), text.size());
    // The writer's slice is untouched — corruption forced a private copy.
    EXPECT_EQ(std::string(slice.view().begin(), slice.view().end()), "mutate me");
    EXPECT_NE(delivered.data(), slice.data());
    int differing = 0;
    for (std::size_t i = 0; i < text.size(); ++i)
        if (delivered.view()[i] != text[i]) ++differing;
    EXPECT_EQ(differing, int(text.size()));
}

TEST(Pipe, SharedWriteWithoutHandlerIsDroppedAndCounted) {
    obs::RunContext context;
    Simulator sim;
    Pipe pipe{sim};
    const auto text = toBytes("lost");
    pipe.a().write(sim.bufferPool().acquireShared({text.data(), text.size()}));
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(obs::Registry::instance().counter("sim.pipe.dropped_no_handler").value(),
              text.size());
}

TEST(Pipe, DestroyedPipeDoesNotDeliver) {
    Simulator sim;
    bool delivered = false;
    {
        Pipe pipe{sim, millis(10)};
        pipe.b().onData([&](util::ByteView) { delivered = true; });
        const auto data = toBytes("x");
        pipe.a().write({data.data(), data.size()});
    }  // pipe destroyed with the delivery still in flight
    sim.run();
    EXPECT_FALSE(delivered);
}

TEST(Pipe, HandlerCanBeReplaced) {
    Simulator sim;
    Pipe pipe{sim};
    int firstCount = 0;
    int secondCount = 0;
    pipe.b().onData([&](util::ByteView) { ++firstCount; });
    const auto data = toBytes("1");
    pipe.a().write({data.data(), data.size()});
    sim.run();
    pipe.b().onData([&](util::ByteView) { ++secondCount; });
    pipe.a().write({data.data(), data.size()});
    sim.run();
    EXPECT_EQ(firstCount, 1);
    EXPECT_EQ(secondCount, 1);
}

}  // namespace
}  // namespace onelab::sim
