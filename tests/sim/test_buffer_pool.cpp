// sim::BufferPool coverage: reuse semantics, retention caps, the
// copying acquire, and exactness of the delta-synced registry mirrors
// (sim.pool.buffers_*) across syncCounters() and registry resets.
#include "sim/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/run_context.hpp"

namespace onelab::sim {
namespace {

TEST(BufferPool, AcquireAllocatesWhenEmpty) {
    obs::RunContext context;
    BufferPool pool;
    const util::Bytes buffer = pool.acquire(100);
    EXPECT_EQ(buffer.size(), 100u);
    EXPECT_EQ(pool.allocations(), 1u);
    EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPool, ReleaseThenAcquireReuses) {
    obs::RunContext context;
    BufferPool pool;
    util::Bytes buffer = pool.acquire(1500);
    pool.release(std::move(buffer));
    EXPECT_EQ(pool.pooledBuffers(), 1u);
    const util::Bytes again = pool.acquire(64);  // smaller is fine — capacity recycled
    EXPECT_EQ(again.size(), 64u);
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.allocations(), 1u);
    EXPECT_EQ(pool.pooledBuffers(), 0u);
}

TEST(BufferPool, RetentionIsBounded) {
    obs::RunContext context;
    BufferPool pool;
    for (int i = 0; i < 300; ++i) pool.release(util::Bytes(16));
    EXPECT_EQ(pool.pooledBuffers(), 256u);  // kMaxPooled
}

TEST(BufferPool, OversizeBuffersAreNotPooled) {
    obs::RunContext context;
    BufferPool pool;
    pool.release(util::Bytes(128 * 1024));  // above kMaxBufferBytes
    EXPECT_EQ(pool.pooledBuffers(), 0u);
}

TEST(BufferPool, AcquireCopiesData) {
    obs::RunContext context;
    BufferPool pool;
    const std::string text = "pooled payload";
    const util::Bytes buffer = pool.acquire(
        util::ByteView{reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
    ASSERT_EQ(buffer.size(), text.size());
    EXPECT_EQ(std::string(buffer.begin(), buffer.end()), text);
}

TEST(BufferPool, SyncCountersIsExactAndDeltaBased) {
    obs::RunContext context;
    auto& registry = obs::Registry::instance();
    BufferPool pool;
    util::Bytes first = pool.acquire(100);
    const util::Bytes second = pool.acquire(100);
    pool.release(std::move(first));
    (void)pool.acquire(100);  // reuse
    pool.syncCounters();
    EXPECT_EQ(registry.counter("sim.pool.buffers_allocated").value(), 2u);
    EXPECT_EQ(registry.counter("sim.pool.buffers_reused").value(), 1u);

    // A beginRun()-style reset zeroes the mirrors; only NEW activity
    // may land afterwards — the pool pushes deltas, not totals.
    registry.reset();
    util::Bytes third = pool.acquire(100);
    pool.release(std::move(third));
    (void)pool.acquire(100);
    pool.syncCounters();
    EXPECT_EQ(registry.counter("sim.pool.buffers_allocated").value(), 1u);
    EXPECT_EQ(registry.counter("sim.pool.buffers_reused").value(), 1u);
}

TEST(BufferPool, ShareRecyclesCapacityOnLastReference) {
    obs::RunContext context;
    BufferPool pool;
    util::Bytes buffer = pool.acquire(256);
    const std::uint8_t* payload = buffer.data();
    {
        util::SharedBytes slice = pool.share(std::move(buffer));
        EXPECT_EQ(slice.data(), payload);  // no copy on the way out
        EXPECT_EQ(pool.outstandingShared(), 1u);
        util::SharedBytes also = slice;
        also.reset();
        EXPECT_EQ(pool.outstandingShared(), 1u);  // still one live core
    }
    // Last reference dropped: capacity is back in the freelist.
    EXPECT_EQ(pool.outstandingShared(), 0u);
    EXPECT_EQ(pool.pooledBuffers(), 1u);
    const util::Bytes again = pool.acquire(64);
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(again.data(), payload);  // same capacity came around
}

TEST(BufferPool, AcquireSharedCopiesAndRoundTrips) {
    obs::RunContext context;
    BufferPool pool;
    const util::Bytes source{1, 2, 3, 4, 5};
    util::SharedBytes slice = pool.acquireShared({source.data(), source.size()});
    EXPECT_EQ(slice.size(), 5u);
    EXPECT_EQ(slice.view()[4], 5);
    util::SharedBytes sub = slice.slice(1, 3);
    slice.reset();
    EXPECT_EQ(sub.view()[0], 2);  // sub-slice keeps the core alive
    EXPECT_EQ(pool.outstandingShared(), 1u);
    sub.reset();
    EXPECT_EQ(pool.outstandingShared(), 0u);
}

TEST(BufferPool, CoreShellsAreReusedAcrossShares) {
    obs::RunContext context;
    BufferPool pool;
    for (int i = 0; i < 4; ++i) {
        util::SharedBytes slice = pool.share(pool.acquire(std::size_t{32}));
        EXPECT_EQ(pool.outstandingShared(), 1u);
    }
    EXPECT_EQ(pool.allocations(), 1u);  // one buffer recycled throughout
    EXPECT_EQ(pool.reuses(), 3u);
}

TEST(BufferPool, DestructionOrphansOutstandingSlices) {
    obs::RunContext context;
    util::SharedBytes survivor;
    {
        BufferPool pool;
        survivor = pool.share(pool.acquire(std::size_t{64}));
        EXPECT_EQ(pool.outstandingShared(), 1u);
    }  // pool gone first: the slice must stay valid and self-free
    EXPECT_EQ(survivor.size(), 64u);
    survivor.reset();  // ASan would flag a double free / leak here
}

TEST(BufferPool, DestructorSyncsOutstandingTallies) {
    obs::RunContext context;
    auto& registry = obs::Registry::instance();
    {
        BufferPool pool;
        (void)pool.acquire(100);
    }  // no explicit syncCounters() — the destructor settles the books
    EXPECT_EQ(registry.counter("sim.pool.buffers_allocated").value(), 1u);
}

}  // namespace
}  // namespace onelab::sim
