#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace onelab::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule(millis(30), [&] { order.push_back(3); });
    sim.schedule(millis(10), [&] { order.push_back(1); });
    sim.schedule(millis(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), millis(30));
}

TEST(Simulator, FifoTieBreakAtSameTimestamp) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) sim.schedule(millis(5), [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
    Simulator sim;
    int fired = 0;
    sim.schedule(millis(10), [&] { ++fired; });
    sim.schedule(millis(30), [&] { ++fired; });
    sim.runUntil(millis(20));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), millis(20));
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon) {
    Simulator sim;
    bool fired = false;
    sim.schedule(millis(20), [&] { fired = true; });
    sim.runUntil(millis(20));
    EXPECT_TRUE(fired);
}

TEST(Simulator, ClockAdvancesEvenWithEmptyQueue) {
    Simulator sim;
    sim.runUntil(seconds(5.0));
    EXPECT_EQ(sim.now(), seconds(5.0));
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    bool fired = false;
    const EventHandle handle = sim.schedule(millis(10), [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(handle));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelReturnsFalseForFiredEvent) {
    Simulator sim;
    const EventHandle handle = sim.schedule(millis(1), [] {});
    sim.run();
    EXPECT_FALSE(sim.cancel(handle));
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, CancelInvalidHandle) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, EventsScheduledFromEventsRun) {
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5) sim.schedule(millis(1), chain);
    };
    sim.schedule(millis(1), chain);
    sim.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(sim.now(), millis(5));
}

TEST(Simulator, NegativeDelayClampsToNow) {
    Simulator sim;
    sim.runUntil(millis(100));
    bool fired = false;
    sim.schedule(millis(-50), [&] { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), millis(100));
}

TEST(Simulator, ScheduleAtInThePastClampsToNow) {
    Simulator sim;
    sim.runUntil(millis(100));
    SimTime firedAt{};
    sim.scheduleAt(millis(10), [&] { firedAt = sim.now(); });
    sim.run();
    EXPECT_EQ(firedAt, millis(100));
}

TEST(Simulator, PendingAndExecutedCounters) {
    Simulator sim;
    sim.schedule(millis(1), [] {});
    sim.schedule(millis(2), [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.run();
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(Simulator, ClearDropsAllPending) {
    Simulator sim;
    bool fired = false;
    sim.schedule(millis(1), [&] { fired = true; });
    sim.clear();
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(TimeHelpers, Conversions) {
    EXPECT_EQ(seconds(1.5), SimTime{1'500'000'000});
    EXPECT_EQ(millis(2.5), SimTime{2'500'000});
    EXPECT_EQ(micros(3.0), SimTime{3'000});
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2.0)), 2.0);
    EXPECT_DOUBLE_EQ(toMillis(millis(7.0)), 7.0);
}

TEST(TimeHelpers, TransmissionTime) {
    // 1000 bytes at 8 kbps = 1 second.
    EXPECT_EQ(transmissionTime(1000, 8000.0), seconds(1.0));
}

TEST(TimeHelpers, Format) {
    EXPECT_EQ(formatTime(SimTime{500}), "500ns");
    EXPECT_EQ(formatTime(micros(1.5)), "1.500us");
    EXPECT_EQ(formatTime(millis(2.25)), "2.250ms");
    EXPECT_EQ(formatTime(seconds(3.5)), "3.500s");
}

}  // namespace
}  // namespace onelab::sim
