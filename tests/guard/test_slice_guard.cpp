#include "guard/slice_guard.hpp"

#include <gtest/gtest.h>

namespace onelab::guard {
namespace {

using Verdict = pl::VsysGuard::Verdict;

pl::Slice slice(const std::string& name, int xid = 100) { return pl::Slice{name, xid}; }

struct SliceGuardTest : ::testing::Test {
    Verdict request(SliceFifoGuard& guard, const std::string& sliceName) {
        return guard.onRequest(slice(sliceName), "umts", {"status"});
    }

    sim::Simulator sim;
};

TEST_F(SliceGuardTest, BurstAdmittedThenThrottled) {
    SliceFifoGuardConfig config;
    config.burst = 5.0;
    config.maxInFlight = 100;  // isolate the token bucket
    SliceFifoGuard guard{sim, config};
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(request(guard, "flooder"), Verdict::admit) << "request " << i;
        guard.onComplete(slice("flooder"), "umts");
    }
    EXPECT_EQ(request(guard, "flooder"), Verdict::throttled);
    EXPECT_EQ(guard.rejected(), 1u);
}

TEST_F(SliceGuardTest, TokensRefillWithSimTime) {
    SliceFifoGuardConfig config;
    config.burst = 2.0;
    config.ratePerSecond = 10.0;
    config.maxInFlight = 100;
    SliceFifoGuard guard{sim, config};
    EXPECT_EQ(request(guard, "s"), Verdict::admit);
    guard.onComplete(slice("s"), "umts");
    EXPECT_EQ(request(guard, "s"), Verdict::admit);
    guard.onComplete(slice("s"), "umts");
    EXPECT_EQ(request(guard, "s"), Verdict::throttled);
    // 100 ms at 10/s refills exactly one token.
    sim.runUntil(sim.now() + sim::millis(100));
    EXPECT_EQ(request(guard, "s"), Verdict::admit);
    guard.onComplete(slice("s"), "umts");
    EXPECT_EQ(request(guard, "s"), Verdict::throttled);
}

TEST_F(SliceGuardTest, BoundedQueueDepthBouncesWithoutSpendingTokens) {
    SliceFifoGuardConfig config;
    config.burst = 100.0;
    config.ratePerSecond = 100.0;
    config.maxInFlight = 3;
    SliceFifoGuard guard{sim, config};
    for (int i = 0; i < 3; ++i) EXPECT_EQ(request(guard, "s"), Verdict::admit);
    EXPECT_EQ(guard.inFlight("s"), 3u);
    EXPECT_EQ(request(guard, "s"), Verdict::queue_full);
    // Completing one admitted request frees exactly one slot.
    guard.onComplete(slice("s"), "umts");
    EXPECT_EQ(guard.inFlight("s"), 2u);
    EXPECT_EQ(request(guard, "s"), Verdict::admit);
    EXPECT_EQ(request(guard, "s"), Verdict::queue_full);
}

TEST_F(SliceGuardTest, SlicesAreIsolated) {
    SliceFifoGuardConfig config;
    config.burst = 2.0;
    config.maxInFlight = 2;
    SliceFifoGuard guard{sim, config};
    // The flooder exhausts its own budget and queue depth...
    EXPECT_EQ(request(guard, "flooder"), Verdict::admit);
    EXPECT_EQ(request(guard, "flooder"), Verdict::admit);
    EXPECT_NE(request(guard, "flooder"), Verdict::admit);
    // ...while a victim slice's budget is untouched.
    EXPECT_EQ(request(guard, "victim"), Verdict::admit);
    EXPECT_EQ(guard.inFlight("victim"), 1u);
}

TEST_F(SliceGuardTest, DisabledGuardAdmitsEverything) {
    SliceFifoGuardConfig config;
    config.burst = 1.0;
    config.maxInFlight = 1;
    SliceFifoGuard guard{sim, config};
    guard.setEnabled(false);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(request(guard, "s"), Verdict::admit);
    EXPECT_EQ(guard.rejected(), 0u);
}

// Integration: a guarded vsys script maps throttle/queue_full to
// EBUSY at the frontend while other slices' requests keep flowing.
TEST_F(SliceGuardTest, VsysIntegrationMapsVerdictsToBusy) {
    pl::Vsys vsys;
    vsys.install("umts", [](const pl::Slice&, const std::vector<std::string>&,
                            pl::Vsys::Completion done) { done(pl::VsysResult{0, {"ok"}}); });
    vsys.allow("umts", "flooder");
    vsys.allow("umts", "victim");
    SliceFifoGuardConfig config;
    config.burst = 2.0;
    config.maxInFlight = 100;
    SliceFifoGuard guard{sim, config};
    vsys.setGuard("umts", &guard);

    enum class Outcome { ok, busy, other };
    const auto invoke = [&](const std::string& sliceName) {
        pl::Slice caller = slice(sliceName);
        Outcome outcome = Outcome::other;
        vsys.invoke(caller, "umts", {"status"}, [&](util::Result<pl::VsysResult> r) {
            if (r.ok() && r.value().exitCode == 0)
                outcome = Outcome::ok;
            else if (!r.ok() && r.error().code == util::Error::Code::busy)
                outcome = Outcome::busy;
        });
        return outcome;
    };
    EXPECT_EQ(invoke("flooder"), Outcome::ok);
    EXPECT_EQ(invoke("flooder"), Outcome::ok);
    EXPECT_EQ(invoke("flooder"), Outcome::busy);
    EXPECT_EQ(invoke("victim"), Outcome::ok);

    // Clearing the guard restores unguarded behaviour.
    vsys.setGuard("umts", nullptr);
    EXPECT_EQ(invoke("flooder"), Outcome::ok);
}

TEST(GuardMetrics, RegisterTouchesEveryFamily) {
    registerGuardMetricFamilies();
    bool sawVsys = false;
    bool sawCell = false;
    for (const obs::MetricSample& sample : obs::Registry::instance().snapshot()) {
        if (sample.name == "guard.vsys.throttled") sawVsys = true;
        if (sample.name == "guard.cell.reclaims") sawCell = true;
    }
    EXPECT_TRUE(sawVsys);
    EXPECT_TRUE(sawCell);
}

}  // namespace
}  // namespace onelab::guard
