// Failure injection: PPP over a line that corrupts or drops bytes.
// The FCS must reject damaged frames and the control protocols must
// retransmit their way to an open link.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "ppp/pppd.hpp"
#include "util/rand.hpp"

namespace onelab::ppp {
namespace {

/// A byte channel pair that flips bits / drops chunks with given
/// probabilities before handing data to the peer.
class LossyWire {
  public:
    LossyWire(sim::Simulator& sim, double corruptProbability, double dropProbability,
              std::uint64_t seed)
        : sim_(sim),
          corrupt_(corruptProbability),
          drop_(dropProbability),
          rng_(seed),
          a_(*this, 0),
          b_(*this, 1) {}

    sim::ByteChannel& a() noexcept { return a_; }
    sim::ByteChannel& b() noexcept { return b_; }
    [[nodiscard]] int corruptedChunks() const noexcept { return corrupted_; }

  private:
    class End final : public sim::ByteChannel {
      public:
        End(LossyWire& wire, int side) : wire_(wire), side_(side) {}
        void write(util::ByteView data) override { wire_.transfer(side_, data); }
        void onData(std::function<void(util::ByteView)> handler) override {
            handler_ = std::move(handler);
        }
        std::function<void(util::ByteView)> handler_;

      private:
        LossyWire& wire_;
        int side_;
    };

    void transfer(int fromSide, util::ByteView data) {
        if (rng_.chance(drop_)) return;
        auto copy = std::make_shared<util::Bytes>(data.begin(), data.end());
        if (!copy->empty() && rng_.chance(corrupt_)) {
            (*copy)[std::size_t(rng_.uniformInt(0, long(copy->size() - 1)))] ^= 0x20;
            ++corrupted_;
        }
        End& target = fromSide == 0 ? b_ : a_;
        sim_.schedule(sim::micros(50), [&target, copy] {
            if (target.handler_) target.handler_(*copy);
        });
    }

    sim::Simulator& sim_;
    double corrupt_;
    double drop_;
    util::RandomStream rng_;
    End a_;
    End b_;
    int corrupted_ = 0;
};

PppdConfig client() {
    PppdConfig config;
    config.name = "client";
    config.credentials = {"u", "p"};
    config.seed = 5;
    return config;
}

PppdConfig server() {
    PppdConfig config;
    config.name = "server";
    config.isServer = true;
    config.localAddress = net::Ipv4Address{93, 57, 0, 1};
    config.addressForPeer = net::Ipv4Address{93, 57, 0, 16};
    config.seed = 6;
    return config;
}

class LossyNegotiation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyNegotiation, OpensDespiteCorruptionAndDrops) {
    sim::Simulator sim;
    LossyWire wire{sim, 0.10, 0.05, GetParam()};  // 10% corrupt, 5% drop
    Pppd ue{sim, client()};
    Pppd ggsn{sim, server()};
    ue.attach(wire.a());
    ggsn.attach(wire.b());
    ggsn.start();
    ue.start();
    // Plenty of retransmission budget.
    sim.runUntil(sim::seconds(30.0));
    EXPECT_TRUE(ue.isRunning()) << "seed " << GetParam();
    EXPECT_TRUE(ggsn.isRunning()) << "seed " << GetParam();
    EXPECT_GT(wire.corruptedChunks(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyNegotiation, ::testing::Values(1, 2, 3, 4, 5));

TEST(LossyData, CorruptedFramesAreDroppedNotDelivered) {
    sim::Simulator sim;
    LossyWire wire{sim, 0.30, 0.0, 9};
    Pppd ue{sim, client()};
    Pppd ggsn{sim, server()};
    // Negotiate over a CLEAN period first: corruption applies all
    // along, so allow extra time.
    ue.attach(wire.a());
    ggsn.attach(wire.b());
    ggsn.start();
    ue.start();
    sim.runUntil(sim::seconds(60.0));
    ASSERT_TRUE(ue.isRunning());

    // Push 200 datagrams with known payloads; every one that arrives
    // must be byte-identical (bad FCS frames are discarded).
    int delivered = 0;
    int intact = 0;
    ggsn.onIpDatagram = [&](util::ByteView data) {
        ++delivered;
        const auto parsed = net::Packet::parse(data);
        if (parsed.ok() && parsed.value().payload == util::Bytes(64, 0x42)) ++intact;
    };
    for (int i = 0; i < 200; ++i) {
        const net::Packet pkt =
            net::makeUdpPacket(net::Ipv4Address{93, 57, 0, 16}, 1, net::Ipv4Address{1, 1, 1, 1},
                               2, util::Bytes(64, 0x42));
        const util::Bytes frame = pkt.serialize();
        (void)ue.sendIpDatagram({frame.data(), frame.size()});
        sim.runUntil(sim.now() + sim::millis(10));
    }
    sim.runUntil(sim.now() + sim::seconds(1.0));
    EXPECT_GT(delivered, 50);      // plenty get through
    EXPECT_LT(delivered, 200);     // some were eaten by the FCS check
    EXPECT_EQ(intact, delivered);  // nothing corrupted slipped past
}

TEST(LossyData, TotalLineCutKillsEchoKeepalive) {
    sim::Simulator sim;
    PppdConfig ueConfig = client();
    ueConfig.enableEcho = true;
    ueConfig.echoInterval = sim::seconds(1.0);
    ueConfig.echoFailureLimit = 2;
    sim::Pipe pipe{sim};
    Pppd ue{sim, ueConfig};
    Pppd ggsn{sim, server()};
    ue.attach(pipe.a());
    ggsn.attach(pipe.b());
    ggsn.start();
    ue.start();
    sim.runUntil(sim::seconds(10.0));
    ASSERT_TRUE(ue.isRunning());

    // Cut the wire: replace the UE's view of the line with a stub that
    // swallows everything.
    class NullChannel final : public sim::ByteChannel {
      public:
        void write(util::ByteView) override {}
        void onData(std::function<void(util::ByteView)>) override {}
    } nullChannel;
    ue.attach(nullChannel);
    std::string reason;
    ue.onLinkDown = [&](const std::string& r) { reason = r; };
    sim.runUntil(sim.now() + sim::seconds(20.0));
    EXPECT_FALSE(ue.isRunning());
    EXPECT_EQ(reason, "keepalive timeout");
}

}  // namespace
}  // namespace onelab::ppp
