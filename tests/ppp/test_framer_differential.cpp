#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ppp/fcs.hpp"
#include "ppp/framer.hpp"
#include "util/rand.hpp"

namespace onelab::ppp {
namespace {

constexpr std::uint8_t kFlag = 0x7e;
constexpr std::uint8_t kEscape = 0x7d;
constexpr std::uint8_t kXor = 0x20;
constexpr std::uint8_t kAddress = 0xff;
constexpr std::uint8_t kControl = 0x03;

// ------------------------------------------------------------------
// Reference implementations: the pre-vectorization byte-at-a-time
// framer, kept verbatim as the differential oracle. The production
// path must reproduce these byte-for-byte (encode) and
// verdict-for-verdict (deframe).
// ------------------------------------------------------------------

bool needsEscapeReference(std::uint8_t byte, std::uint32_t accm) noexcept {
    if (byte == kFlag || byte == kEscape) return true;
    return byte < 0x20 && ((accm >> byte) & 1u);
}

void putEscapedReference(util::Bytes& out, std::uint8_t byte, std::uint32_t accm) {
    if (needsEscapeReference(byte, accm)) {
        out.push_back(kEscape);
        out.push_back(byte ^ kXor);
    } else {
        out.push_back(byte);
    }
}

util::Bytes encodeFrameReference(const Frame& frame, const FramerConfig& config) {
    util::Bytes raw;
    raw.reserve(frame.info.size() + 6);
    if (!config.compressAddressControl) {
        raw.push_back(kAddress);
        raw.push_back(kControl);
    }
    const auto protocol = std::uint16_t(frame.protocol);
    if (config.compressProtocolField && protocol <= 0xff) {
        raw.push_back(std::uint8_t(protocol));
    } else {
        raw.push_back(std::uint8_t(protocol >> 8));
        raw.push_back(std::uint8_t(protocol));
    }
    raw.insert(raw.end(), frame.info.begin(), frame.info.end());

    const auto fcs = std::uint16_t(~fcs16(raw) & 0xffff);

    util::Bytes out;
    out.reserve(raw.size() + 8);
    out.push_back(kFlag);
    for (const std::uint8_t byte : raw) putEscapedReference(out, byte, config.sendAccm);
    putEscapedReference(out, std::uint8_t(fcs & 0xff), config.sendAccm);
    putEscapedReference(out, std::uint8_t(fcs >> 8), config.sendAccm);
    out.push_back(kFlag);
    return out;
}

class DeframerReference {
  public:
    void feed(util::ByteView data) {
        for (const std::uint8_t byte : data) {
            if (byte == kFlag) {
                escaped_ = false;
                endFrame();
                continue;
            }
            if (byte == kEscape) {
                escaped_ = true;
                continue;
            }
            current_.push_back(escaped_ ? std::uint8_t(byte ^ kXor) : byte);
            escaped_ = false;
        }
    }

    std::vector<Frame> frames;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;

  private:
    void endFrame() {
        if (current_.empty()) return;
        util::Bytes raw;
        raw.swap(current_);
        if (raw.size() < 3 || !fcsValid(raw)) {
            ++bad;
            return;
        }
        raw.resize(raw.size() - 2);
        std::size_t offset = 0;
        if (raw.size() >= 2 && raw[0] == kAddress && raw[1] == kControl) offset = 2;
        if (raw.size() <= offset) {
            ++bad;
            return;
        }
        std::uint16_t protocol = 0;
        if (raw[offset] & 1) {
            protocol = raw[offset];
            offset += 1;
        } else {
            if (raw.size() < offset + 2) {
                ++bad;
                return;
            }
            protocol = std::uint16_t((raw[offset] << 8) | raw[offset + 1]);
            offset += 2;
        }
        Frame frame;
        frame.protocol = Protocol{protocol};
        frame.info.assign(raw.begin() + long(offset), raw.end());
        ++good;
        frames.push_back(std::move(frame));
    }

    util::Bytes current_;
    bool escaped_ = false;
};

// ------------------------------------------------------------------

Protocol randomProtocol(util::RandomStream& rng) {
    static constexpr Protocol kChoices[] = {Protocol::ip,  Protocol::ipcp, Protocol::lcp,
                                            Protocol::pap, Protocol::chap, Protocol::ccp};
    return kChoices[rng.uniformInt(0, 5)];
}

util::Bytes randomPayload(util::RandomStream& rng) {
    // Mix of sizes and byte distributions: uniform bytes, escape-heavy
    // (flags/escapes/control chars), and long plain runs that exercise
    // the word-at-a-time scanner across alignments.
    const auto size = std::size_t(rng.uniformInt(0, 1600));
    util::Bytes payload(size);
    const auto mode = rng.uniformInt(0, 2);
    for (auto& byte : payload) {
        if (mode == 0) {
            byte = std::uint8_t(rng.uniformInt(0, 255));
        } else if (mode == 1) {
            static constexpr std::uint8_t kNasty[] = {kFlag, kEscape, 0x00, 0x11,
                                                      0x13,  0x1f,    0x41};
            byte = kNasty[rng.uniformInt(0, 6)];
        } else {
            byte = 0x55;
        }
    }
    return payload;
}

FramerConfig randomConfig(util::RandomStream& rng) {
    FramerConfig config;
    const auto pick = rng.uniformInt(0, 3);
    config.sendAccm = pick == 0   ? 0xffffffffu
                      : pick == 1 ? 0x00000000u
                      : pick == 2 ? 0x000a0000u
                                  : std::uint32_t(rng.uniformInt(0, 0xffffffffll));
    config.compressProtocolField = rng.chance(0.5);
    config.compressAddressControl = rng.chance(0.5);
    return config;
}

/// Feed `wire` to both deframers in identical random splits (including
/// splits landing mid-escape-sequence).
template <typename A, typename B>
void feedSplit(A& fast, B& reference, util::ByteView wire, util::RandomStream& rng) {
    std::size_t offset = 0;
    while (offset < wire.size()) {
        const auto chunk =
            std::size_t(rng.uniformInt(1, long(std::min<std::size_t>(97, wire.size() - offset))));
        fast.feed(wire.subspan(offset, chunk));
        reference.feed(wire.subspan(offset, chunk));
        offset += chunk;
    }
}

TEST(FramerDifferential, RandomizedEncodeIsByteIdenticalAndRoundTrips) {
    util::RandomStream rng{0xd1f7};
    Deframer fast;
    DeframerReference reference;
    std::vector<Frame> decoded;
    fast.onFrame([&](Frame frame) { decoded.push_back(std::move(frame)); });

    int frames = 0;
    for (int caseIndex = 0; caseIndex < 1200; ++caseIndex) {
        const FramerConfig config = randomConfig(rng);
        Frame frame{randomProtocol(rng), randomPayload(rng)};

        const util::Bytes wire = encodeFrame(frame, config);
        const util::Bytes expectedWire = encodeFrameReference(frame, config);
        ASSERT_EQ(wire, expectedWire) << "case " << caseIndex;
        ASSERT_LE(wire.size(), maxEncodedSize(frame.info.size(), config))
            << "case " << caseIndex;

        feedSplit(fast, reference, wire, rng);
        ++frames;
        ASSERT_EQ(fast.goodFrames(), std::uint64_t(frames)) << "case " << caseIndex;
        ASSERT_EQ(reference.good, std::uint64_t(frames)) << "case " << caseIndex;
        ASSERT_EQ(decoded.size(), reference.frames.size());
        ASSERT_EQ(decoded.back().info, frame.info) << "case " << caseIndex;
        ASSERT_EQ(decoded.back().protocol, reference.frames.back().protocol);
    }
    EXPECT_EQ(fast.badFrames(), 0u);
    EXPECT_EQ(reference.bad, 0u);
}

TEST(FramerDifferential, CorruptedWiresAgreeOnEveryVerdict) {
    util::RandomStream rng{0xbadc};
    Deframer fast;
    DeframerReference reference;
    std::vector<Frame> decoded;
    fast.onFrame([&](Frame frame) { decoded.push_back(std::move(frame)); });

    for (int caseIndex = 0; caseIndex < 600; ++caseIndex) {
        const FramerConfig config = randomConfig(rng);
        Frame frame{randomProtocol(rng), randomPayload(rng)};
        util::Bytes wire = encodeFrame(frame, config);
        // Corrupt a few bytes; flipping flags/escapes reshapes framing
        // entirely, so both decoders must drop/accept identically.
        const auto flips = rng.uniformInt(1, 4);
        for (long flip = 0; flip < flips; ++flip) {
            const auto at = std::size_t(rng.uniformInt(0, long(wire.size() - 1)));
            wire[at] ^= std::uint8_t(rng.uniformInt(1, 255));
        }
        feedSplit(fast, reference, wire, rng);
        ASSERT_EQ(fast.goodFrames(), reference.good) << "case " << caseIndex;
        ASSERT_EQ(fast.badFrames(), reference.bad) << "case " << caseIndex;
        ASSERT_EQ(decoded.size(), reference.frames.size()) << "case " << caseIndex;
    }
    // Flush any trailing partial so the last comparisons above are
    // meaningful (a dangling fragment hides in current_ on both sides).
    const std::uint8_t flag = kFlag;
    fast.feed({&flag, 1});
    reference.feed({&flag, 1});
    EXPECT_EQ(fast.goodFrames(), reference.good);
    EXPECT_EQ(fast.badFrames(), reference.bad);
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        ASSERT_EQ(decoded[i].info, reference.frames[i].info) << "frame " << i;
        ASSERT_EQ(decoded[i].protocol, reference.frames[i].protocol) << "frame " << i;
    }
}

TEST(FramerDifferential, EdgeCasePayloadsMatchReference) {
    const FramerConfig configs[] = {
        {},
        {.sendAccm = 0, .compressProtocolField = true, .compressAddressControl = true},
        {.sendAccm = 0xffffffff, .compressProtocolField = true,
         .compressAddressControl = false},
    };
    std::vector<util::Bytes> payloads;
    payloads.emplace_back();                          // empty info
    payloads.emplace_back(512, kFlag);                // all flag bytes
    payloads.emplace_back(512, kEscape);              // all escape bytes
    payloads.emplace_back(512, std::uint8_t(0x13));   // all XON (ACCM-dependent)
    payloads.emplace_back(1500, std::uint8_t(0x42));  // MTU of plain bytes
    util::Bytes mixed;                                 // escape at every word edge
    for (int i = 0; i < 64; ++i) {
        mixed.insert(mixed.end(), 7, std::uint8_t(i));
        mixed.push_back(kEscape);
    }
    payloads.push_back(std::move(mixed));

    for (const FramerConfig& config : configs) {
        for (const util::Bytes& payload : payloads) {
            const Frame frame{Protocol::ip, payload};
            const util::Bytes wire = encodeFrame(frame, config);
            EXPECT_EQ(wire, encodeFrameReference(frame, config));
            EXPECT_LE(wire.size(), maxEncodedSize(payload.size(), config));

            Deframer fast;
            Frame decoded;
            fast.onFrame([&](Frame got) { decoded = std::move(got); });
            fast.feed(wire);
            ASSERT_EQ(fast.goodFrames(), 1u);
            EXPECT_EQ(decoded.info, payload);
        }
    }
}

TEST(FramerDifferential, SplitMidEscapeAcrossFeeds) {
    // An escape pair split across feed() calls must unescape exactly
    // like an unsplit stream, including escape-then-flag (abort) and
    // escape-then-escape (stay armed) at the boundary.
    const util::Bytes stream = {kFlag, kAddress, kControl, 0x00, 0x21, kEscape,
                                kXor ^ kEscape,  // escaped escape byte
                                kEscape};        // dangling escape, then next feed
    Deframer fast;
    DeframerReference reference;
    fast.feed(stream);
    reference.feed(stream);
    const util::Bytes tail = {kEscape, std::uint8_t(0x41 ^ kXor), kFlag};
    fast.feed(tail);
    reference.feed(tail);
    EXPECT_EQ(fast.goodFrames(), reference.good);
    EXPECT_EQ(fast.badFrames(), reference.bad);
}

TEST(FramerDifferential, MaxEncodedSizeIsTightForWorstCase) {
    // All-escape payload with every control char escaped: every byte
    // between the flags doubles, which is exactly the bound.
    FramerConfig config;  // ACCM 0xffffffff, full headers
    const util::Bytes payload(64, kFlag);
    const Frame frame{Protocol::lcp, payload};
    const util::Bytes wire = encodeFrame(frame, config);
    // addr+ctrl+proto(2)+info+fcs(2) can all escape; here addr (0xff)
    // and proto bytes (0xc0, 0x21) don't, so the bound is not reached
    // but must hold.
    EXPECT_LE(wire.size(), maxEncodedSize(payload.size(), config));
    // A payload needing no escapes sits well under the bound.
    const Frame plain{Protocol::ip, util::Bytes(64, 0x42)};
    EXPECT_LT(encodeFrame(plain, config).size(), maxEncodedSize(64, config));
}

TEST(FramerOversize, GuardDropsFlaglessGarbageAndResyncs) {
    Deframer deframer;
    deframer.setMaxFrameLength(1024);
    ASSERT_EQ(deframer.maxFrameLength(), 1024u);
    std::vector<Frame> decoded;
    deframer.onFrame([&](Frame frame) { decoded.push_back(std::move(frame)); });

    // A flag-less garbage stream far beyond the cap: dropped once (one
    // bad frame, one oversize), not accumulated without bound.
    const util::Bytes garbage(256, 0x42);
    for (int i = 0; i < 64; ++i) deframer.feed(garbage);
    EXPECT_EQ(deframer.badFrames(), 1u);
    EXPECT_EQ(deframer.oversizedFrames(), 1u);
    EXPECT_TRUE(decoded.empty());

    // The next flag resynchronises; a good frame then decodes cleanly.
    const util::Bytes wire = encodeFrame({Protocol::ip, util::Bytes(64, 0x11)}, {});
    deframer.feed(wire);  // leading flag ends the discarded frame
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].info, util::Bytes(64, 0x11));
    EXPECT_EQ(deframer.goodFrames(), 1u);
    EXPECT_EQ(deframer.badFrames(), 1u);
    EXPECT_EQ(deframer.oversizedFrames(), 1u);
}

TEST(FramerOversize, FrameAtTheCapStillDecodes) {
    Deframer deframer;
    deframer.setMaxFrameLength(512 + 16);  // payload + headers/FCS headroom
    std::vector<Frame> decoded;
    deframer.onFrame([&](Frame frame) { decoded.push_back(std::move(frame)); });
    const util::Bytes payload(512, 0x33);
    deframer.feed(encodeFrame({Protocol::ip, payload}, {}));
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].info, payload);
    EXPECT_EQ(deframer.oversizedFrames(), 0u);
}

}  // namespace
}  // namespace onelab::ppp
