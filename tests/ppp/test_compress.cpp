#include "ppp/compress.hpp"

#include <gtest/gtest.h>

#include "util/rand.hpp"

namespace onelab::ppp {
namespace {

util::Bytes roundTrip(util::ByteView input) {
    const util::Bytes compressed = LzssCodec::compress(input);
    const auto plain = LzssCodec::decompress({compressed.data(), compressed.size()});
    EXPECT_TRUE(plain.ok());
    return plain.ok() ? plain.value() : util::Bytes{};
}

TEST(Lzss, EmptyInput) {
    EXPECT_TRUE(roundTrip({}).empty());
}

TEST(Lzss, ZeroPaddingCompressesWell) {
    // D-ITG payloads are header + zero padding: highly compressible.
    util::Bytes input(1024, 0);
    const util::Bytes compressed = LzssCodec::compress({input.data(), input.size()});
    EXPECT_LT(compressed.size(), input.size() / 4);
    EXPECT_EQ(roundTrip({input.data(), input.size()}), input);
}

TEST(Lzss, RepeatedTextCompresses) {
    std::string text;
    for (int i = 0; i < 50; ++i) text += "the quick brown fox ";
    util::Bytes input{text.begin(), text.end()};
    const util::Bytes compressed = LzssCodec::compress({input.data(), input.size()});
    EXPECT_LT(compressed.size(), input.size() / 2);
    EXPECT_EQ(roundTrip({input.data(), input.size()}), input);
}

TEST(Lzss, IncompressibleFallsBackToStored) {
    util::RandomStream rng{99};
    util::Bytes input(512);
    for (auto& byte : input) byte = std::uint8_t(rng.uniformInt(0, 255));
    const util::Bytes compressed = LzssCodec::compress({input.data(), input.size()});
    // Stored format costs exactly 1 method byte.
    EXPECT_EQ(compressed.size(), input.size() + 1);
    EXPECT_EQ(compressed[0], 0);  // stored
    EXPECT_EQ(roundTrip({input.data(), input.size()}), input);
}

class LzssRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LzssRoundTrip, SemiStructuredDataSurvives) {
    // Property: decompress(compress(x)) == x over varied structure.
    util::RandomStream rng{GetParam()};
    util::Bytes input;
    const int segments = int(rng.uniformInt(1, 12));
    for (int s = 0; s < segments; ++s) {
        const int kind = int(rng.uniformInt(0, 2));
        const std::size_t length = std::size_t(rng.uniformInt(1, 400));
        if (kind == 0) {
            input.insert(input.end(), length, std::uint8_t(rng.uniformInt(0, 255)));
        } else if (kind == 1) {
            for (std::size_t i = 0; i < length; ++i)
                input.push_back(std::uint8_t(rng.uniformInt(0, 255)));
        } else if (!input.empty()) {
            // Copy a previous region (creates long matches).
            const std::size_t from = std::size_t(rng.uniformInt(0, long(input.size() - 1)));
            for (std::size_t i = 0; i < length; ++i)
                input.push_back(input[from + (i % (input.size() - from))]);
        }
    }
    EXPECT_EQ(roundTrip({input.data(), input.size()}), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssRoundTrip, ::testing::Range<std::uint64_t>(1, 21));

TEST(Lzss, DecompressRejectsMalformed) {
    EXPECT_FALSE(LzssCodec::decompress({}).ok());
    const util::Bytes unknownMethod{7, 1, 2, 3};
    EXPECT_FALSE(LzssCodec::decompress({unknownMethod.data(), unknownMethod.size()}).ok());
    // LZSS back-reference pointing before the start of output.
    const util::Bytes badRef{1, 0x00, 0xff, 0x00};
    EXPECT_FALSE(LzssCodec::decompress({badRef.data(), badRef.size()}).ok());
    // Truncated back-reference (flag says pair, only one byte left).
    const util::Bytes truncated{1, 0x00, 0x00};
    EXPECT_FALSE(LzssCodec::decompress({truncated.data(), truncated.size()}).ok());
}

TEST(Lzss, MaxMatchRunLength) {
    // A long run should use repeated max-length matches correctly.
    util::Bytes input(LzssCodec::kMaxMatch * 10 + 7, 0x42);
    EXPECT_EQ(roundTrip({input.data(), input.size()}), input);
}

TEST(Lzss, OverlappingMatchDecodes) {
    // "ababab..." exercises overlapping back-references.
    util::Bytes input;
    for (int i = 0; i < 100; ++i) input.push_back(i % 2 ? 'a' : 'b');
    EXPECT_EQ(roundTrip({input.data(), input.size()}), input);
}

}  // namespace
}  // namespace onelab::ppp
