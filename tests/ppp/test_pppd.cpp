#include "ppp/pppd.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace onelab::ppp {
namespace {

struct PppdPair : ::testing::Test {
    PppdPair() : pipe(sim, sim::micros(100)) {}

    PppdConfig clientConfig() {
        PppdConfig config;
        config.name = "client";
        config.credentials = {"onelab", "onelab"};
        config.requestDns = true;
        config.seed = 11;
        return config;
    }

    PppdConfig serverConfig() {
        PppdConfig config;
        config.name = "server";
        config.isServer = true;
        config.requireAuth = AuthProtocol::chap_md5;
        config.secretLookup = [](const std::string& user) -> std::optional<std::string> {
            if (user == "onelab") return "onelab";
            return std::nullopt;
        };
        config.localAddress = net::Ipv4Address{93, 57, 0, 1};
        config.addressForPeer = net::Ipv4Address{93, 57, 0, 16};
        config.dnsServer = net::Ipv4Address{93, 57, 0, 53};
        config.seed = 22;
        return config;
    }

    void bringUp(Pppd& client, Pppd& server) {
        client.attach(pipe.a());
        server.attach(pipe.b());
        server.start();
        client.start();
        sim.runUntil(sim.now() + sim::seconds(10.0));
    }

    sim::Simulator sim;
    sim::Pipe pipe;
};

TEST_F(PppdPair, NegotiatesToRunningWithAddresses) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    std::optional<IpcpResult> clientUp;
    client.onNetworkUp = [&](const IpcpResult& result) { clientUp = result; };
    bringUp(client, server);

    ASSERT_TRUE(client.isRunning());
    ASSERT_TRUE(server.isRunning());
    ASSERT_TRUE(clientUp.has_value());
    EXPECT_EQ(clientUp->localAddress, (net::Ipv4Address{93, 57, 0, 16}));
    EXPECT_EQ(clientUp->peerAddress, (net::Ipv4Address{93, 57, 0, 1}));
    EXPECT_EQ(clientUp->dnsServer, (net::Ipv4Address{93, 57, 0, 53}));
}

TEST_F(PppdPair, IpDatagramsFlowBothWays) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    util::Bytes atServer;
    util::Bytes atClient;
    server.onIpDatagram = [&](util::ByteView d) { atServer.assign(d.begin(), d.end()); };
    client.onIpDatagram = [&](util::ByteView d) { atClient.assign(d.begin(), d.end()); };
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());

    const net::Packet up = net::makeUdpPacket(net::Ipv4Address{93, 57, 0, 16}, 1000,
                                              net::Ipv4Address{138, 96, 250, 20}, 9001,
                                              util::Bytes{1, 2, 3});
    const util::Bytes upWire = up.serialize();
    ASSERT_TRUE(client.sendIpDatagram({upWire.data(), upWire.size()}).ok());
    const net::Packet down = net::makeUdpPacket(net::Ipv4Address{138, 96, 250, 20}, 9001,
                                                net::Ipv4Address{93, 57, 0, 16}, 1000,
                                                util::Bytes{4, 5, 6});
    const util::Bytes downWire = down.serialize();
    ASSERT_TRUE(server.sendIpDatagram({downWire.data(), downWire.size()}).ok());
    sim.runUntil(sim.now() + sim::seconds(1.0));

    EXPECT_EQ(atServer, upWire);
    EXPECT_EQ(atClient, downWire);
    // And they parse back to the original packets.
    const auto parsed = net::Packet::parse({atServer.data(), atServer.size()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().payload, (util::Bytes{1, 2, 3}));
    EXPECT_EQ(client.counters().ipFramesSent, 1u);
    EXPECT_EQ(client.counters().ipFramesReceived, 1u);
}

TEST_F(PppdPair, CcpNegotiatedWhenBothEnable) {
    PppdConfig cc = clientConfig();
    cc.ccp.enable = true;
    PppdConfig sc = serverConfig();
    sc.ccp.enable = true;
    Pppd client{sim, cc};
    Pppd server{sim, sc};
    util::Bytes atServer;
    server.onIpDatagram = [&](util::ByteView d) { atServer.assign(d.begin(), d.end()); };
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());
    EXPECT_TRUE(client.compressionActive());

    // A compressible datagram (zero padding) shrinks on the wire.
    const net::Packet pkt = net::makeUdpPacket(net::Ipv4Address{1, 1, 1, 1}, 1,
                                               net::Ipv4Address{2, 2, 2, 2}, 2,
                                               util::Bytes(900, 0));
    const util::Bytes wire = pkt.serialize();
    ASSERT_TRUE(client.sendIpDatagram({wire.data(), wire.size()}).ok());
    sim.runUntil(sim.now() + sim::seconds(1.0));
    EXPECT_EQ(atServer, wire);  // decompressed losslessly
    EXPECT_LT(client.counters().compressedOut, client.counters().compressedIn / 2);
}

TEST_F(PppdPair, CcpRejectedWhenClientDisables) {
    PppdConfig sc = serverConfig();
    sc.ccp.enable = true;  // server offers, client (default) refuses
    Pppd client{sim, clientConfig()};
    Pppd server{sim, sc};
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());
    ASSERT_TRUE(server.isRunning());
    EXPECT_FALSE(client.compressionActive());
    EXPECT_FALSE(server.compressionActive());
}

TEST_F(PppdPair, PapAuthenticationPath) {
    PppdConfig sc = serverConfig();
    sc.requireAuth = AuthProtocol::pap;
    Pppd client{sim, clientConfig()};
    Pppd server{sim, sc};
    bringUp(client, server);
    EXPECT_TRUE(client.isRunning());
    EXPECT_TRUE(server.isRunning());
}

TEST_F(PppdPair, WrongCredentialsTerminateLink) {
    PppdConfig cc = clientConfig();
    cc.credentials = {"intruder", "nope"};
    Pppd client{sim, cc};
    Pppd server{sim, serverConfig()};
    std::string clientDownReason;
    client.onLinkDown = [&](const std::string& reason) { clientDownReason = reason; };
    bringUp(client, server);
    EXPECT_FALSE(client.isRunning());
    EXPECT_FALSE(server.isRunning());
    EXPECT_FALSE(clientDownReason.empty());
}

TEST_F(PppdPair, NegotiatedFramingReducesOverhead) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());
    // Both requested ACCM 0, PFC and ACFC; the peer acked.
    EXPECT_EQ(client.lcpResult().sendAccm, 0u);
    EXPECT_TRUE(client.lcpResult().sendPfc);
    EXPECT_TRUE(client.lcpResult().sendAcfc);
    EXPECT_EQ(client.lcpResult().peerRequiresAuth, AuthProtocol::chap_md5);
    EXPECT_NE(client.lcpResult().localMagic, server.lcpResult().localMagic);
}

TEST_F(PppdPair, MruEnforcedOnSend) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());
    const util::Bytes oversize(2000, 0);
    const auto sent = client.sendIpDatagram({oversize.data(), oversize.size()});
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.error().code, util::Error::Code::invalid_argument);
    EXPECT_EQ(client.counters().sendErrors, 1u);
}

TEST_F(PppdPair, SendBeforeRunningFails) {
    Pppd client{sim, clientConfig()};
    client.attach(pipe.a());
    const util::Bytes data(40, 0);
    const auto sent = client.sendIpDatagram({data.data(), data.size()});
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.error().code, util::Error::Code::state);
}

TEST_F(PppdPair, GracefulStopNotifiesOnce) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    int clientDown = 0;
    int serverDown = 0;
    client.onLinkDown = [&](const std::string&) { ++clientDown; };
    server.onLinkDown = [&](const std::string&) { ++serverDown; };
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());

    client.stop();
    sim.runUntil(sim.now() + sim::seconds(10.0));
    EXPECT_EQ(client.phase(), PppPhase::dead);
    EXPECT_FALSE(server.isRunning());
    EXPECT_EQ(clientDown, 1);
    EXPECT_GE(serverDown, 1);
}

TEST_F(PppdPair, EchoKeepaliveDetectsDeadPeer) {
    PppdConfig cc = clientConfig();
    cc.enableEcho = true;
    cc.echoInterval = sim::seconds(1.0);
    cc.echoFailureLimit = 2;
    Pppd client{sim, cc};
    Pppd server{sim, serverConfig()};
    std::string reason;
    client.onLinkDown = [&](const std::string& r) { reason = r; };
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());

    // Carrier drop on the server side without Terminate: the client's
    // echoes go unanswered (server is dead, not responding).
    server.abortLink();
    sim.runUntil(sim.now() + sim::seconds(20.0));
    EXPECT_FALSE(client.isRunning());
    EXPECT_EQ(reason, "keepalive timeout");
}

TEST_F(PppdPair, EchoKeptAliveByResponsivePeer) {
    PppdConfig cc = clientConfig();
    cc.enableEcho = true;
    cc.echoInterval = sim::seconds(1.0);
    cc.echoFailureLimit = 2;
    Pppd client{sim, cc};
    Pppd server{sim, serverConfig()};
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());
    sim.runUntil(sim.now() + sim::seconds(30.0));
    EXPECT_TRUE(client.isRunning());  // echoes answered, link stays up
}

TEST_F(PppdPair, RestartAfterStop) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    bringUp(client, server);
    ASSERT_TRUE(client.isRunning());
    client.stop();
    sim.runUntil(sim.now() + sim::seconds(10.0));
    ASSERT_EQ(client.phase(), PppPhase::dead);

    // Dial again over the same line.
    server.start();
    client.start();
    sim.runUntil(sim.now() + sim::seconds(10.0));
    EXPECT_TRUE(client.isRunning());
    EXPECT_TRUE(server.isRunning());
}

TEST_F(PppdPair, CountersTrackLineBytes) {
    Pppd client{sim, clientConfig()};
    Pppd server{sim, serverConfig()};
    bringUp(client, server);
    EXPECT_GT(client.counters().bytesToLine, 0u);
    EXPECT_GT(client.counters().bytesFromLine, 0u);
    EXPECT_EQ(client.counters().badFrames, 0u);
}

}  // namespace
}  // namespace onelab::ppp
