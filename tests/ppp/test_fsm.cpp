#include "ppp/fsm.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

/// Minimal concrete protocol for exercising the RFC 1661 automaton: a
/// single byte option (type 1) that either side accepts when nonzero.
class ToyProtocol final : public Fsm {
  public:
    ToyProtocol(sim::Simulator& simulator, std::uint8_t desired, Timers timers = {})
        : Fsm(simulator, "toy", timers), desired_(desired) {}

    int upCount = 0;
    int downCount = 0;
    int finishedCount = 0;
    std::uint8_t peerValue = 0;

  protected:
    std::vector<Option> buildConfigRequest() override {
        Option option;
        option.type = 1;
        option.value.push_back(desired_);
        return {option};
    }
    ConfigDecision checkConfigRequest(const std::vector<Option>& options) override {
        ConfigDecision decision;
        for (const Option& option : options) {
            if (option.type != 1) {
                decision.options.push_back(option);
                decision.verdict = ConfigDecision::Verdict::reject;
            }
        }
        if (decision.verdict == ConfigDecision::Verdict::reject) return decision;
        for (const Option& option : options) {
            if (option.value.size() == 1 && option.value[0] == 0) {
                Option nak = option;
                nak.value[0] = 7;  // suggest 7
                decision.options.push_back(nak);
                decision.verdict = ConfigDecision::Verdict::nak;
            }
        }
        if (decision.verdict == ConfigDecision::Verdict::ack)
            for (const Option& option : options)
                if (option.type == 1 && !option.value.empty()) peerValue = option.value[0];
        return decision;
    }
    void onConfigAcked(const std::vector<Option>&) override {}
    void onConfigNakOrReject(bool, const std::vector<Option>& options) override {
        for (const Option& option : options)
            if (option.type == 1 && !option.value.empty()) desired_ = option.value[0];
    }
    void onThisLayerUp() override { ++upCount; }
    void onThisLayerDown() override { ++downCount; }
    void onThisLayerFinished() override { ++finishedCount; }

  private:
    std::uint8_t desired_;
};

/// Wires two FSMs together through the simulator with a delivery delay
/// and an optional per-packet drop predicate.
struct FsmPair : ::testing::Test {
    void connect(ToyProtocol& from, ToyProtocol& to) {
        from.setSender([this, &to](const ControlPacket& pkt) {
            ++packetsSent;
            if (dropNext > 0) {
                --dropNext;
                return;
            }
            const util::Bytes wire = pkt.serialize();
            sim.schedule(sim::millis(10), [&to, wire] {
                const auto parsed = ControlPacket::parse({wire.data(), wire.size()});
                ASSERT_TRUE(parsed.ok());
                to.receive(parsed.value());
            });
        });
    }

    sim::Simulator sim;
    int packetsSent = 0;
    int dropNext = 0;
};

TEST_F(FsmPair, BothSidesReachOpened) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
    EXPECT_EQ(a.upCount, 1);
    EXPECT_EQ(b.upCount, 1);
    EXPECT_EQ(a.peerValue, 5);
    EXPECT_EQ(b.peerValue, 3);
}

TEST_F(FsmPair, PassiveSideOpensWhenPeerInitiates) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    // b is up but passive (open, no CR until provoked is not RFC —
    // both open; a starts slightly later).
    b.open();
    b.up();
    sim.runUntil(sim::millis(100));
    a.open();
    a.up();
    sim.runUntil(sim::seconds(3.0));
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
}

TEST_F(FsmPair, LostConfigureRequestIsRetransmitted) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    dropNext = 1;  // a's first Configure-Request vanishes
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(5.0));
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
}

TEST_F(FsmPair, NakConvergesOnSuggestedValue) {
    ToyProtocol a{sim, 0};  // 0 is nak'ed with suggestion 7
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
    EXPECT_EQ(b.peerValue, 7);  // a adopted the suggestion
}

TEST_F(FsmPair, GracefulTerminate) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(2.0));
    ASSERT_TRUE(a.isOpened());

    a.close();
    sim.runUntil(sim::seconds(4.0));
    EXPECT_EQ(a.state(), FsmState::closed);
    EXPECT_EQ(a.downCount, 1);
    EXPECT_EQ(a.finishedCount, 1);
    // The peer saw Terminate-Request and stopped.
    EXPECT_FALSE(b.isOpened());
    EXPECT_EQ(b.downCount, 1);
}

TEST_F(FsmPair, NoPeerGivesUpAfterMaxConfigure) {
    Fsm::Timers fast;
    fast.restartTimer = sim::millis(100);
    fast.maxConfigure = 3;
    ToyProtocol a{sim, 3, fast};
    a.setSender([this](const ControlPacket&) { ++packetsSent; });
    a.open();
    a.up();
    sim.runUntil(sim::seconds(5.0));
    EXPECT_EQ(a.state(), FsmState::stopped);
    EXPECT_EQ(a.finishedCount, 1);
    EXPECT_EQ(packetsSent, 3);  // initial + 2 retries
}

TEST_F(FsmPair, DownInOpenedSignalsThisLayerDown) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(2.0));
    ASSERT_TRUE(a.isOpened());
    a.down();
    EXPECT_EQ(a.downCount, 1);
    EXPECT_EQ(a.state(), FsmState::starting);
    // Coming back up renegotiates.
    a.up();
    sim.runUntil(sim::seconds(5.0));
    EXPECT_TRUE(a.isOpened());
    EXPECT_EQ(a.upCount, 2);
}

TEST_F(FsmPair, UnknownCodeGetsCodeReject) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(2.0));
    ASSERT_TRUE(a.isOpened());

    const int sentBefore = packetsSent;
    ControlPacket bogus;
    bogus.code = Code{42};
    bogus.identifier = 9;
    a.receive(bogus);
    EXPECT_GT(packetsSent, sentBefore);  // a Code-Reject went out
    EXPECT_TRUE(a.isOpened());           // unknown codes are not fatal
}

TEST_F(FsmPair, ProtocolRejectedInOpenedTerminates) {
    ToyProtocol a{sim, 3};
    ToyProtocol b{sim, 5};
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(2.0));
    ASSERT_TRUE(a.isOpened());
    a.protocolRejected();
    sim.runUntil(sim::seconds(6.0));
    EXPECT_FALSE(a.isOpened());
    EXPECT_GE(a.downCount, 1);
}

TEST_F(FsmPair, StaleConfigureAckIgnored) {
    ToyProtocol a{sim, 3};
    std::vector<ControlPacket> sent;
    a.setSender([&](const ControlPacket& pkt) { sent.push_back(pkt); });
    a.open();
    a.up();
    ASSERT_FALSE(sent.empty());
    ControlPacket staleAck;
    staleAck.code = Code::configure_ack;
    staleAck.identifier = std::uint8_t(sent.back().identifier + 13);
    staleAck.data = sent.back().data;
    a.receive(staleAck);
    EXPECT_EQ(a.state(), FsmState::req_sent);  // unchanged
}

TEST(FsmStateNames, AllDistinct) {
    EXPECT_STREQ(fsmStateName(FsmState::initial), "Initial");
    EXPECT_STREQ(fsmStateName(FsmState::opened), "Opened");
    EXPECT_STREQ(fsmStateName(FsmState::stopping), "Stopping");
}

}  // namespace
}  // namespace onelab::ppp
