#include "ppp/options.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

TEST(ControlPacket, SerializeParseRoundTrip) {
    ControlPacket pkt;
    pkt.code = Code::configure_request;
    pkt.identifier = 42;
    pkt.data = util::Bytes{1, 4, 0x05, 0xdc};  // MRU option
    const util::Bytes wire = pkt.serialize();
    EXPECT_EQ(wire.size(), 8u);
    EXPECT_EQ(wire[2], 0);  // length high byte
    EXPECT_EQ(wire[3], 8);  // length low byte

    const auto parsed = ControlPacket::parse({wire.data(), wire.size()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().code, Code::configure_request);
    EXPECT_EQ(parsed.value().identifier, 42);
    EXPECT_EQ(parsed.value().data, pkt.data);
}

TEST(ControlPacket, ParseRejectsTruncated) {
    const util::Bytes tooShort{1, 2};
    EXPECT_FALSE(ControlPacket::parse({tooShort.data(), tooShort.size()}).ok());
    const util::Bytes badLength{1, 2, 0, 20, 0};  // claims 20 bytes, has 5
    EXPECT_FALSE(ControlPacket::parse({badLength.data(), badLength.size()}).ok());
}

TEST(ControlPacket, ParseIgnoresTrailingPadding) {
    ControlPacket pkt;
    pkt.code = Code::echo_request;
    pkt.identifier = 1;
    util::Bytes wire = pkt.serialize();
    wire.push_back(0xff);  // padding beyond the declared length
    const auto parsed = ControlPacket::parse({wire.data(), wire.size()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().data.empty());
}

TEST(Options, EncodeParseRoundTrip) {
    std::vector<Option> options;
    options.push_back(makeU16Option(lcp_opt::mru, 1500));
    options.push_back(makeU32Option(lcp_opt::magic_number, 0xdeadbeef));
    options.push_back(Option{lcp_opt::pfc, {}});
    const util::Bytes data = encodeOptions(options);
    const auto parsed = parseOptions({data.data(), data.size()});
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().size(), 3u);
    EXPECT_EQ(optionU16(parsed.value()[0]), 1500);
    EXPECT_EQ(optionU32(parsed.value()[1]), 0xdeadbeefu);
    EXPECT_EQ(parsed.value()[2].type, lcp_opt::pfc);
    EXPECT_TRUE(parsed.value()[2].value.empty());
}

TEST(Options, ParseRejectsBadLength) {
    const util::Bytes zeroLength{1, 0};  // option length < 2
    EXPECT_FALSE(parseOptions({zeroLength.data(), zeroLength.size()}).ok());
    const util::Bytes overrun{1, 10, 0};  // claims 10, only 3 present
    EXPECT_FALSE(parseOptions({overrun.data(), overrun.size()}).ok());
    const util::Bytes danglingHeader{1};
    EXPECT_FALSE(parseOptions({danglingHeader.data(), danglingHeader.size()}).ok());
}

TEST(Options, EmptyListParses) {
    const auto parsed = parseOptions({});
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().empty());
}

TEST(Options, AccessorsRejectWrongSize) {
    const Option wide = makeU32Option(5, 1);
    EXPECT_FALSE(optionU16(wide).has_value());
    const Option narrow = makeU16Option(1, 1);
    EXPECT_FALSE(optionU32(narrow).has_value());
}

TEST(Options, CodeNames) {
    EXPECT_STREQ(codeName(Code::configure_request), "Configure-Request");
    EXPECT_STREQ(codeName(Code::echo_reply), "Echo-Reply");
    EXPECT_STREQ(codeName(Code{99}), "Unknown");
}

}  // namespace
}  // namespace onelab::ppp
