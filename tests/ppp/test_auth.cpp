#include "ppp/auth.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

/// Runs an Authenticatee against an Authenticator over a simulated
/// lossless wire.
struct AuthHarness : ::testing::Test {
    void wire(Authenticatee& peer, Authenticator& server) {
        peerSend = [this, &server](Protocol proto, const ControlPacket& pkt) {
            sim.schedule(sim::millis(5), [&server, proto, pkt] { server.receive(proto, pkt); });
        };
        serverSend = [this, &peer](Protocol proto, const ControlPacket& pkt) {
            sim.schedule(sim::millis(5), [&peer, proto, pkt] { peer.receive(proto, pkt); });
        };
    }

    std::function<std::optional<std::string>(const std::string&)> lookup() {
        return [](const std::string& user) -> std::optional<std::string> {
            if (user == "onelab") return "secret";
            return std::nullopt;
        };
    }

    sim::Simulator sim;
    std::function<void(Protocol, const ControlPacket&)> peerSend;
    std::function<void(Protocol, const ControlPacket&)> serverSend;
};

TEST_F(AuthHarness, PapSuccess) {
    Authenticatee peer{sim, AuthProtocol::pap, {"onelab", "secret"},
                       [this](Protocol p, const ControlPacket& c) { peerSend(p, c); }};
    Authenticator server{sim, AuthProtocol::pap, "ggsn", lookup(),
                         [this](Protocol p, const ControlPacket& c) { serverSend(p, c); },
                         util::RandomStream{1}};
    wire(peer, server);
    std::optional<bool> peerResult;
    std::optional<bool> serverResult;
    std::string authedUser;
    peer.onResult = [&](bool ok, const std::string&) { peerResult = ok; };
    server.onResult = [&](bool ok, const std::string& name) {
        serverResult = ok;
        authedUser = name;
    };
    server.start();
    peer.start();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(peerResult, true);
    EXPECT_EQ(serverResult, true);
    EXPECT_EQ(authedUser, "onelab");
}

TEST_F(AuthHarness, PapWrongPasswordRejected) {
    Authenticatee peer{sim, AuthProtocol::pap, {"onelab", "wrong"},
                       [this](Protocol p, const ControlPacket& c) { peerSend(p, c); }};
    Authenticator server{sim, AuthProtocol::pap, "ggsn", lookup(),
                         [this](Protocol p, const ControlPacket& c) { serverSend(p, c); },
                         util::RandomStream{1}};
    wire(peer, server);
    std::optional<bool> peerResult;
    std::optional<bool> serverResult;
    peer.onResult = [&](bool ok, const std::string&) { peerResult = ok; };
    server.onResult = [&](bool ok, const std::string&) { serverResult = ok; };
    server.start();
    peer.start();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(peerResult, false);
    EXPECT_EQ(serverResult, false);
}

TEST_F(AuthHarness, PapUnknownUserRejected) {
    Authenticatee peer{sim, AuthProtocol::pap, {"nobody", "secret"},
                       [this](Protocol p, const ControlPacket& c) { peerSend(p, c); }};
    Authenticator server{sim, AuthProtocol::pap, "ggsn", lookup(),
                         [this](Protocol p, const ControlPacket& c) { serverSend(p, c); },
                         util::RandomStream{1}};
    wire(peer, server);
    std::optional<bool> serverResult;
    server.onResult = [&](bool ok, const std::string&) { serverResult = ok; };
    server.start();
    peer.start();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(serverResult, false);
}

TEST_F(AuthHarness, ChapSuccess) {
    Authenticatee peer{sim, AuthProtocol::chap_md5, {"onelab", "secret"},
                       [this](Protocol p, const ControlPacket& c) { peerSend(p, c); }};
    Authenticator server{sim, AuthProtocol::chap_md5, "ggsn", lookup(),
                         [this](Protocol p, const ControlPacket& c) { serverSend(p, c); },
                         util::RandomStream{2}};
    wire(peer, server);
    std::optional<bool> peerResult;
    std::optional<bool> serverResult;
    peer.onResult = [&](bool ok, const std::string&) { peerResult = ok; };
    server.onResult = [&](bool ok, const std::string&) { serverResult = ok; };
    server.start();
    peer.start();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(peerResult, true);
    EXPECT_EQ(serverResult, true);
}

TEST_F(AuthHarness, ChapWrongSecretFails) {
    Authenticatee peer{sim, AuthProtocol::chap_md5, {"onelab", "guess"},
                       [this](Protocol p, const ControlPacket& c) { peerSend(p, c); }};
    Authenticator server{sim, AuthProtocol::chap_md5, "ggsn", lookup(),
                         [this](Protocol p, const ControlPacket& c) { serverSend(p, c); },
                         util::RandomStream{2}};
    wire(peer, server);
    std::optional<bool> peerResult;
    std::optional<bool> serverResult;
    peer.onResult = [&](bool ok, const std::string&) { peerResult = ok; };
    server.onResult = [&](bool ok, const std::string&) { serverResult = ok; };
    server.start();
    peer.start();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(peerResult, false);
    EXPECT_EQ(serverResult, false);
}

TEST_F(AuthHarness, AcceptAllIgnoresCredentials) {
    Authenticatee peer{sim, AuthProtocol::chap_md5, {"whoever", "whatever"},
                       [this](Protocol p, const ControlPacket& c) { peerSend(p, c); }};
    Authenticator server{sim, AuthProtocol::chap_md5, "ggsn", lookup(),
                         [this](Protocol p, const ControlPacket& c) { serverSend(p, c); },
                         util::RandomStream{3}};
    server.setAcceptAll(true);
    wire(peer, server);
    std::optional<bool> serverResult;
    server.onResult = [&](bool ok, const std::string&) { serverResult = ok; };
    server.start();
    peer.start();
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(serverResult, true);
}

TEST_F(AuthHarness, NoneCompletesImmediately) {
    Authenticatee peer{sim, AuthProtocol::none, {},
                       [](Protocol, const ControlPacket&) { FAIL() << "nothing should be sent"; }};
    std::optional<bool> result;
    peer.onResult = [&](bool ok, const std::string&) { result = ok; };
    peer.start();
    EXPECT_EQ(result, true);
}

TEST_F(AuthHarness, PapTimesOutWithoutServer) {
    int sent = 0;
    Authenticatee peer{sim, AuthProtocol::pap, {"onelab", "secret"},
                       [&](Protocol, const ControlPacket&) { ++sent; }};
    std::optional<bool> result;
    peer.onResult = [&](bool ok, const std::string&) { result = ok; };
    peer.start();
    sim.runUntil(sim::seconds(10.0));
    EXPECT_EQ(result, false);
    EXPECT_GT(sent, 1);  // retransmissions happened
}

TEST_F(AuthHarness, ChapChallengeRetransmitted) {
    int challenges = 0;
    Authenticator server{sim, AuthProtocol::chap_md5, "ggsn", lookup(),
                         [&](Protocol, const ControlPacket& pkt) {
                             if (std::uint8_t(pkt.code) == 1) ++challenges;
                         },
                         util::RandomStream{4}};
    std::optional<bool> result;
    server.onResult = [&](bool ok, const std::string&) { result = ok; };
    server.start();
    sim.runUntil(sim::seconds(10.0));
    EXPECT_GT(challenges, 1);
    EXPECT_EQ(result, false);  // nobody answered
}

}  // namespace
}  // namespace onelab::ppp
