#include "ppp/framer.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

std::vector<Frame> decodeAll(util::ByteView wire) {
    Deframer deframer;
    std::vector<Frame> frames;
    deframer.onFrame([&](Frame frame) { frames.push_back(std::move(frame)); });
    deframer.feed(wire);
    return frames;
}

TEST(Framer, RoundTripDefaults) {
    Frame frame{Protocol::lcp, util::Bytes{0x01, 0x02, 0x03}};
    const util::Bytes wire = encodeFrame(frame, FramerConfig{});
    EXPECT_EQ(wire.front(), 0x7e);
    EXPECT_EQ(wire.back(), 0x7e);
    const auto frames = decodeAll({wire.data(), wire.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].protocol, Protocol::lcp);
    EXPECT_EQ(frames[0].info, frame.info);
}

TEST(Framer, EscapesFlagAndEscapeInPayload) {
    Frame frame{Protocol::ip, util::Bytes{0x7e, 0x7d, 0x41}};
    const util::Bytes wire = encodeFrame(frame, FramerConfig{});
    // Between the delimiting flags no raw 0x7e may appear.
    for (std::size_t i = 1; i + 1 < wire.size(); ++i) EXPECT_NE(wire[i], 0x7e);
    const auto frames = decodeAll({wire.data(), wire.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].info, frame.info);
}

TEST(Framer, AccmControlsControlCharEscaping) {
    Frame frame{Protocol::ip, util::Bytes{0x01, 0x11, 0x13}};  // XON/XOFF territory
    FramerConfig escapeAll;  // default ACCM 0xffffffff
    const util::Bytes escaped = encodeFrame(frame, escapeAll);
    FramerConfig escapeNone;
    escapeNone.sendAccm = 0x00000000;
    const util::Bytes plain = encodeFrame(frame, escapeNone);
    EXPECT_GT(escaped.size(), plain.size());
    EXPECT_EQ(decodeAll({escaped.data(), escaped.size()})[0].info, frame.info);
    EXPECT_EQ(decodeAll({plain.data(), plain.size()})[0].info, frame.info);
}

TEST(Framer, ProtocolFieldCompression) {
    Frame frame{Protocol::ip, util::Bytes{0xaa}};  // 0x0021 compresses to 0x21
    FramerConfig pfc;
    pfc.compressProtocolField = true;
    pfc.sendAccm = 0;  // keep FCS escaping from blurring the size check
    FramerConfig fullConfig;
    fullConfig.sendAccm = 0;
    const util::Bytes compressed = encodeFrame(frame, pfc);
    const util::Bytes full = encodeFrame(frame, fullConfig);
    EXPECT_LT(compressed.size(), full.size());
    const auto frames = decodeAll({compressed.data(), compressed.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].protocol, Protocol::ip);
}

TEST(Framer, PfcDoesNotCompressHighProtocols) {
    Frame frame{Protocol::lcp, util::Bytes{}};  // 0xc021 cannot compress
    FramerConfig pfc;
    pfc.compressProtocolField = true;
    const util::Bytes wire = encodeFrame(frame, pfc);
    const auto frames = decodeAll({wire.data(), wire.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].protocol, Protocol::lcp);
}

TEST(Framer, AddressControlFieldCompression) {
    Frame frame{Protocol::ip, util::Bytes{0x55}};
    FramerConfig acfc;
    acfc.compressAddressControl = true;
    acfc.sendAccm = 0;
    FramerConfig fullConfig;
    fullConfig.sendAccm = 0;
    const util::Bytes compressed = encodeFrame(frame, acfc);
    const util::Bytes full = encodeFrame(frame, fullConfig);
    EXPECT_LT(compressed.size(), full.size());
    const auto frames = decodeAll({compressed.data(), compressed.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].info, frame.info);
}

TEST(Framer, BadFcsDropped) {
    Frame frame{Protocol::ip, util::Bytes{1, 2, 3, 4}};
    util::Bytes wire = encodeFrame(frame, FramerConfig{});
    wire[5] ^= 0x04;  // flip a payload bit (not a flag/escape position)
    Deframer deframer;
    int good = 0;
    deframer.onFrame([&](Frame) { ++good; });
    deframer.feed({wire.data(), wire.size()});
    EXPECT_EQ(good, 0);
    EXPECT_EQ(deframer.badFrames(), 1u);
}

TEST(Framer, MultipleFramesInOneFeed) {
    util::Bytes wire;
    for (int i = 0; i < 3; ++i) {
        const util::Bytes one =
            encodeFrame(Frame{Protocol::ip, util::Bytes{std::uint8_t(i)}}, FramerConfig{});
        wire.insert(wire.end(), one.begin(), one.end());
    }
    const auto frames = decodeAll({wire.data(), wire.size()});
    ASSERT_EQ(frames.size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(frames[std::size_t(i)].info[0], i);
}

TEST(Framer, ByteAtATimeFeeding) {
    const util::Bytes wire =
        encodeFrame(Frame{Protocol::ipcp, util::Bytes{9, 8, 7}}, FramerConfig{});
    Deframer deframer;
    std::vector<Frame> frames;
    deframer.onFrame([&](Frame f) { frames.push_back(std::move(f)); });
    for (const std::uint8_t byte : wire) deframer.feed({&byte, 1});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].protocol, Protocol::ipcp);
}

TEST(Framer, BackToBackFlagsIgnored) {
    const util::Bytes flags{0x7e, 0x7e, 0x7e};
    Deframer deframer;
    int count = 0;
    deframer.onFrame([&](Frame) { ++count; });
    deframer.feed({flags.data(), flags.size()});
    EXPECT_EQ(count, 0);
    EXPECT_EQ(deframer.badFrames(), 0u);
}

TEST(Framer, ResetDropsPartialFrame) {
    const util::Bytes wire = encodeFrame(Frame{Protocol::ip, util::Bytes{1}}, FramerConfig{});
    Deframer deframer;
    int count = 0;
    deframer.onFrame([&](Frame) { ++count; });
    deframer.feed({wire.data(), wire.size() / 2});
    deframer.reset();
    deframer.feed({wire.data() + wire.size() / 2, wire.size() - wire.size() / 2});
    EXPECT_EQ(count, 0);  // the second half alone is not a good frame
}

TEST(Framer, EmptyInfoField) {
    const util::Bytes wire = encodeFrame(Frame{Protocol::lcp, {}}, FramerConfig{});
    const auto frames = decodeAll({wire.data(), wire.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_TRUE(frames[0].info.empty());
}

TEST(Framer, OverheadAccounting) {
    EXPECT_EQ(framingOverhead(FramerConfig{}), 8u);  // flags + a/c + proto + fcs
    FramerConfig slim;
    slim.compressProtocolField = true;
    slim.compressAddressControl = true;
    EXPECT_EQ(framingOverhead(slim), 5u);
}

TEST(Framer, LargeDeterministicPayloadRoundTrip) {
    util::Bytes payload(1500);
    for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = std::uint8_t(i * 37 + 11);
    const util::Bytes wire = encodeFrame(Frame{Protocol::ip, payload}, FramerConfig{});
    const auto frames = decodeAll({wire.data(), wire.size()});
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].info, payload);
}

}  // namespace
}  // namespace onelab::ppp
