#include "ppp/fcs.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

TEST(Fcs, KnownVector) {
    // CRC-16/X.25 of "123456789" has check value 0x906e; the running
    // FCS register before complementing is ~0x906e.
    const util::Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    const std::uint16_t fcs = fcs16({data.data(), data.size()});
    EXPECT_EQ(std::uint16_t(~fcs & 0xffff), 0x906e);
}

TEST(Fcs, GoodFrameVerifies) {
    util::Bytes frame{0xff, 0x03, 0xc0, 0x21, 0x01, 0x01, 0x00, 0x04};
    const std::uint16_t fcs = std::uint16_t(~fcs16({frame.data(), frame.size()}) & 0xffff);
    frame.push_back(std::uint8_t(fcs & 0xff));  // LSB first on the wire
    frame.push_back(std::uint8_t(fcs >> 8));
    EXPECT_TRUE(fcsValid({frame.data(), frame.size()}));
}

TEST(Fcs, CorruptionDetected) {
    util::Bytes frame{0xff, 0x03, 0x00, 0x21, 0x45, 0x00};
    const std::uint16_t fcs = std::uint16_t(~fcs16({frame.data(), frame.size()}) & 0xffff);
    frame.push_back(std::uint8_t(fcs & 0xff));
    frame.push_back(std::uint8_t(fcs >> 8));
    ASSERT_TRUE(fcsValid({frame.data(), frame.size()}));
    for (std::size_t i = 0; i < frame.size(); ++i) {
        util::Bytes corrupted = frame;
        corrupted[i] ^= 0x01;
        EXPECT_FALSE(fcsValid({corrupted.data(), corrupted.size()})) << "byte " << i;
    }
}

TEST(Fcs, IncrementalMatchesBulk) {
    const util::Bytes data{0x01, 0x02, 0x03, 0x04, 0x05};
    std::uint16_t incremental = kFcsInit;
    for (const std::uint8_t byte : data) incremental = fcsStep(incremental, byte);
    EXPECT_EQ(incremental, fcs16({data.data(), data.size()}));
}

TEST(Fcs, TooShortInvalid) {
    const util::Bytes one{0x42};
    EXPECT_FALSE(fcsValid({one.data(), one.size()}));
    EXPECT_FALSE(fcsValid({}));
}

}  // namespace
}  // namespace onelab::ppp
