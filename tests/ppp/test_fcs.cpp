#include "ppp/fcs.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

TEST(Fcs, KnownVector) {
    // CRC-16/X.25 of "123456789" has check value 0x906e; the running
    // FCS register before complementing is ~0x906e.
    const util::Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    const std::uint16_t fcs = fcs16({data.data(), data.size()});
    EXPECT_EQ(std::uint16_t(~fcs & 0xffff), 0x906e);
}

TEST(Fcs, GoodFrameVerifies) {
    util::Bytes frame{0xff, 0x03, 0xc0, 0x21, 0x01, 0x01, 0x00, 0x04};
    const std::uint16_t fcs = std::uint16_t(~fcs16({frame.data(), frame.size()}) & 0xffff);
    frame.push_back(std::uint8_t(fcs & 0xff));  // LSB first on the wire
    frame.push_back(std::uint8_t(fcs >> 8));
    EXPECT_TRUE(fcsValid({frame.data(), frame.size()}));
}

TEST(Fcs, CorruptionDetected) {
    util::Bytes frame{0xff, 0x03, 0x00, 0x21, 0x45, 0x00};
    const std::uint16_t fcs = std::uint16_t(~fcs16({frame.data(), frame.size()}) & 0xffff);
    frame.push_back(std::uint8_t(fcs & 0xff));
    frame.push_back(std::uint8_t(fcs >> 8));
    ASSERT_TRUE(fcsValid({frame.data(), frame.size()}));
    for (std::size_t i = 0; i < frame.size(); ++i) {
        util::Bytes corrupted = frame;
        corrupted[i] ^= 0x01;
        EXPECT_FALSE(fcsValid({corrupted.data(), corrupted.size()})) << "byte " << i;
    }
}

TEST(Fcs, IncrementalMatchesBulk) {
    const util::Bytes data{0x01, 0x02, 0x03, 0x04, 0x05};
    std::uint16_t incremental = kFcsInit;
    for (const std::uint8_t byte : data) incremental = fcsStep(incremental, byte);
    EXPECT_EQ(incremental, fcs16({data.data(), data.size()}));
}

TEST(Fcs, BulkUpdateMatchesByteStepsAtEverySize) {
    // The slice-by-8 path kicks in at 8 bytes and mixes block and tail
    // processing; cross-check against the byte-at-a-time register for
    // every length through several blocks, from every starting state.
    util::Bytes data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 37 + 11);
    for (std::size_t len = 0; len <= data.size(); ++len) {
        std::uint16_t scalar = kFcsInit;
        for (std::size_t i = 0; i < len; ++i) scalar = fcsStep(scalar, data[i]);
        EXPECT_EQ(fcsUpdate(kFcsInit, {data.data(), len}), scalar) << "len " << len;
    }
    // Resuming from a mid-stream register (as the fused escape scan
    // does between runs) must agree too.
    for (std::size_t split = 0; split <= data.size(); split += 7) {
        const std::uint16_t bulk =
            fcsUpdate(fcsUpdate(kFcsInit, {data.data(), split}),
                      {data.data() + split, data.size() - split});
        EXPECT_EQ(bulk, fcs16({data.data(), data.size()})) << "split " << split;
    }
}

TEST(Fcs, StepWordMatchesEightByteSteps) {
    // fcsStepWord is the register-fed form of the slice-by-8 block the
    // framer's fused scan uses on words it already loaded; it must
    // advance the FCS exactly like eight sequential byte steps, from
    // any starting register.
    const util::Bytes data{0x7e, 0x00, 0x41, 0xff, 0x13, 0x7d, 0x20, 0x99};
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 8; ++i) word |= std::uint64_t(data[i]) << (8 * i);
    for (const std::uint16_t start : {kFcsInit, std::uint16_t(0x0000), std::uint16_t(0xbeef)}) {
        std::uint16_t scalar = start;
        for (const std::uint8_t byte : data) scalar = fcsStep(scalar, byte);
        EXPECT_EQ(fcsStepWord(start, word, fcsTables()), scalar) << "start " << start;
    }
}

TEST(Fcs, TooShortInvalid) {
    const util::Bytes one{0x42};
    EXPECT_FALSE(fcsValid({one.data(), one.size()}));
    EXPECT_FALSE(fcsValid({}));
}

}  // namespace
}  // namespace onelab::ppp
