// Robustness fuzzing: hostile byte streams must never crash the
// decoders and must never produce frames/packets that violate their
// invariants.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "ppp/compress.hpp"
#include "ppp/framer.hpp"
#include "ppp/options.hpp"
#include "util/rand.hpp"

namespace onelab::ppp {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, DeframerSurvivesRandomBytes) {
    util::RandomStream rng{GetParam()};
    Deframer deframer;
    std::size_t frames = 0;
    deframer.onFrame([&](Frame frame) {
        ++frames;
        // Whatever comes out passed the FCS; the info field must fit a
        // sane bound for the garbage we feed.
        EXPECT_LE(frame.info.size(), 4096u);
    });
    for (int burst = 0; burst < 200; ++burst) {
        util::Bytes noise(std::size_t(rng.uniformInt(1, 64)));
        for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
        deframer.feed({noise.data(), noise.size()});
    }
    // Random noise essentially never passes a 16-bit FCS by chance in
    // this volume, and must never crash.
    EXPECT_LE(frames, 2u);
}

TEST_P(FuzzSeeds, DeframerRecoversAfterGarbage) {
    util::RandomStream rng{GetParam()};
    Deframer deframer;
    std::vector<Frame> frames;
    deframer.onFrame([&](Frame f) { frames.push_back(std::move(f)); });
    // Garbage, then a clean frame: the clean frame must decode.
    util::Bytes noise(100);
    for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
    deframer.feed({noise.data(), noise.size()});
    const util::Bytes good =
        encodeFrame(Frame{Protocol::ip, util::Bytes{1, 2, 3}}, FramerConfig{});
    deframer.feed({good.data(), good.size()});
    ASSERT_FALSE(frames.empty());
    EXPECT_EQ(frames.back().info, (util::Bytes{1, 2, 3}));
}

TEST_P(FuzzSeeds, PacketParseNeverCrashes) {
    util::RandomStream rng{GetParam()};
    for (int i = 0; i < 500; ++i) {
        util::Bytes noise(std::size_t(rng.uniformInt(0, 100)));
        for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
        (void)net::Packet::parse({noise.data(), noise.size()});
    }
    SUCCEED();
}

TEST_P(FuzzSeeds, ControlPacketAndOptionsParseNeverCrash) {
    util::RandomStream rng{GetParam()};
    for (int i = 0; i < 500; ++i) {
        util::Bytes noise(std::size_t(rng.uniformInt(0, 64)));
        for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
        (void)ControlPacket::parse({noise.data(), noise.size()});
        (void)parseOptions({noise.data(), noise.size()});
    }
    SUCCEED();
}

TEST_P(FuzzSeeds, LzssDecompressNeverCrashes) {
    util::RandomStream rng{GetParam()};
    for (int i = 0; i < 500; ++i) {
        util::Bytes noise(std::size_t(rng.uniformInt(0, 128)));
        for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
        const auto result = LzssCodec::decompress({noise.data(), noise.size()});
        if (result.ok()) EXPECT_LE(result.value().size(), 128u * 20);
    }
    SUCCEED();
}

TEST_P(FuzzSeeds, CorruptedValidFrameNeverDecodesWrong) {
    // Flip one byte of a valid frame: either it is rejected (almost
    // always) or — if the FCS collides — it still parses as a frame;
    // it must never produce the ORIGINAL payload from damaged bytes.
    util::RandomStream rng{GetParam()};
    util::Bytes payload(64);
    for (auto& byte : payload) byte = std::uint8_t(rng.uniformInt(0, 255));
    const util::Bytes wire = encodeFrame(Frame{Protocol::ip, payload}, FramerConfig{});
    for (int i = 0; i < 100; ++i) {
        util::Bytes corrupted = wire;
        const std::size_t pos = 1 + std::size_t(rng.uniformInt(0, long(wire.size()) - 3));
        corrupted[pos] ^= std::uint8_t(rng.uniformInt(1, 255));
        Deframer deframer;
        deframer.onFrame([&](Frame frame) {
            if (frame.protocol == Protocol::ip) EXPECT_NE(frame.info, payload);
        });
        deframer.feed({corrupted.data(), corrupted.size()});
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace onelab::ppp
