#include "ppp/lcp.hpp"

#include <gtest/gtest.h>

namespace onelab::ppp {
namespace {

/// Two LCP automatons over a lossless simulated wire.
struct LcpPair : ::testing::Test {
    void connect(Lcp& from, Lcp& to) {
        from.setSender([this, &to](const ControlPacket& pkt) {
            const util::Bytes wire = pkt.serialize();
            sim.schedule(sim::millis(5), [&to, wire] {
                const auto parsed = ControlPacket::parse({wire.data(), wire.size()});
                ASSERT_TRUE(parsed.ok());
                to.receive(parsed.value());
            });
        });
    }

    void open(Lcp& a, Lcp& b) {
        connect(a, b);
        connect(b, a);
        a.open();
        a.up();
        b.open();
        b.up();
        sim.runUntil(sim.now() + sim::seconds(5.0));
    }

    sim::Simulator sim;
};

TEST_F(LcpPair, NegotiatesPfcAcfcAccmAndMagic) {
    LcpConfig config;  // defaults: ACCM 0, PFC, ACFC, magic
    Lcp a{sim, config, util::RandomStream{1}};
    Lcp b{sim, config, util::RandomStream{2}};
    open(a, b);
    ASSERT_TRUE(a.isOpened());
    ASSERT_TRUE(b.isOpened());
    EXPECT_EQ(a.result().sendAccm, 0u);
    EXPECT_TRUE(a.result().sendPfc);
    EXPECT_TRUE(a.result().sendAcfc);
    EXPECT_EQ(a.result().peerMagic, b.result().localMagic);
    EXPECT_EQ(b.result().peerMagic, a.result().localMagic);
    EXPECT_EQ(a.result().peerRequiresAuth, AuthProtocol::none);
}

TEST_F(LcpPair, TwinSeedsStillGetDistinctMagics) {
    // Two endpoints with identical RNG seeds (possible in tests) must
    // still negotiate — per-instance entropy breaks the symmetry.
    Lcp a{sim, LcpConfig{}, util::RandomStream{77}};
    Lcp b{sim, LcpConfig{}, util::RandomStream{77}};
    EXPECT_NE(a.result().localMagic, b.result().localMagic);
    open(a, b);
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
}

TEST_F(LcpPair, SeededEntropyMakesMagicThreadIndependent) {
    // entropySeed != 0: the magic is a pure function of (rng seed,
    // entropy seed, per-instance draw ordinal) — unaffected by the
    // process-global counter other endpoints advance. This is what
    // lets the sharded fleet produce identical frame bytes for every
    // shard count (which thread brings a link up varies with N).
    LcpConfig seeded;
    seeded.entropySeed = 0xfeedfaceULL;
    const std::uint32_t first = Lcp{sim, seeded, util::RandomStream{42}}.result().localMagic;
    // Burn global-counter draws, as a different shard layout would.
    for (int i = 0; i < 7; ++i) Lcp burn{sim, LcpConfig{}, util::RandomStream{9}};
    const std::uint32_t again = Lcp{sim, seeded, util::RandomStream{42}}.result().localMagic;
    EXPECT_EQ(first, again);

    // Distinct entropy seeds (the fleet derives them per endpoint)
    // still yield distinct magics for identically seeded rngs.
    LcpConfig other = seeded;
    other.entropySeed = 0xdeadbeefULL;
    EXPECT_NE(first, (Lcp{sim, other, util::RandomStream{42}}.result().localMagic));

    // And a seeded pair negotiates like any other.
    Lcp a{sim, seeded, util::RandomStream{42}};
    Lcp b{sim, other, util::RandomStream{42}};
    open(a, b);
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
}

TEST_F(LcpPair, LoopbackMagicIsNaked) {
    // Loopback detection (RFC 1661 §6.4): a Configure-Request carrying
    // our own magic number must be Configure-Nak'ed with a new value.
    Lcp b{sim, LcpConfig{}, util::RandomStream{5}};
    std::vector<ControlPacket> sent;
    b.setSender([&](const ControlPacket& pkt) { sent.push_back(pkt); });
    b.open();
    b.up();
    ControlPacket request;
    request.code = Code::configure_request;
    request.identifier = 9;
    request.data = encodeOptions({makeU32Option(lcp_opt::magic_number, b.result().localMagic)});
    b.receive(request);
    const ControlPacket* nak = nullptr;
    for (const ControlPacket& pkt : sent)
        if (pkt.code == Code::configure_nak) nak = &pkt;
    ASSERT_NE(nak, nullptr);
    const auto options = parseOptions({nak->data.data(), nak->data.size()});
    ASSERT_TRUE(options.ok());
    ASSERT_EQ(options.value().size(), 1u);
    const auto suggested = optionU32(options.value()[0]);
    ASSERT_TRUE(suggested.has_value());
    EXPECT_NE(*suggested, b.result().localMagic);
    EXPECT_NE(*suggested, 0u);
}

TEST_F(LcpPair, AuthDemandIsCarriedToThePeer) {
    LcpConfig serverConfig;
    serverConfig.requireAuth = AuthProtocol::chap_md5;
    Lcp server{sim, serverConfig, util::RandomStream{1}};
    Lcp client{sim, LcpConfig{}, util::RandomStream{2}};
    open(server, client);
    ASSERT_TRUE(server.isOpened());
    EXPECT_EQ(client.result().peerRequiresAuth, AuthProtocol::chap_md5);
    EXPECT_EQ(server.result().weRequireAuth, AuthProtocol::chap_md5);
}

TEST_F(LcpPair, SmallMruIsNakedUpward) {
    LcpConfig tinyMru;
    tinyMru.mru = 100;  // below the 576 floor: peer naks with 1500
    Lcp a{sim, tinyMru, util::RandomStream{1}};
    Lcp b{sim, LcpConfig{}, util::RandomStream{2}};
    open(a, b);
    ASSERT_TRUE(a.isOpened());
    // b committed a's (corrected) MRU as its send limit.
    EXPECT_GE(b.result().sendMru, 576);
}

TEST_F(LcpPair, CustomMruPropagates) {
    LcpConfig smaller;
    smaller.mru = 1000;
    Lcp a{sim, smaller, util::RandomStream{1}};
    Lcp b{sim, LcpConfig{}, util::RandomStream{2}};
    open(a, b);
    ASSERT_TRUE(b.isOpened());
    EXPECT_EQ(b.result().sendMru, 1000);  // b must not exceed a's MRU
    EXPECT_EQ(a.result().sendMru, 1500);
}

TEST_F(LcpPair, EchoRequestAnsweredOnlyWhenOpened) {
    Lcp a{sim, LcpConfig{}, util::RandomStream{1}};
    Lcp b{sim, LcpConfig{}, util::RandomStream{2}};
    open(a, b);
    ASSERT_TRUE(a.isOpened());
    int replies = 0;
    a.onEchoReply = [&] { ++replies; };
    a.sendEchoRequest();
    sim.runUntil(sim.now() + sim::seconds(1.0));
    EXPECT_EQ(replies, 1);
}

TEST_F(LcpPair, UnknownOptionIsRejectedAndDropped) {
    // Craft a Configure-Request with a bogus option type 200 and feed
    // it directly: the peer must Configure-Reject it.
    Lcp b{sim, LcpConfig{}, util::RandomStream{2}};
    std::vector<ControlPacket> sent;
    b.setSender([&](const ControlPacket& pkt) { sent.push_back(pkt); });
    b.open();
    b.up();
    ControlPacket request;
    request.code = Code::configure_request;
    request.identifier = 9;
    Option bogus;
    bogus.type = 200;
    bogus.value = {1, 2, 3};
    request.data = encodeOptions({bogus});
    b.receive(request);
    bool sawReject = false;
    for (const ControlPacket& pkt : sent)
        if (pkt.code == Code::configure_reject) sawReject = true;
    EXPECT_TRUE(sawReject);
}

class LcpConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcpConvergence, OpensForAnySeedPair) {
    sim::Simulator sim;
    Lcp a{sim, LcpConfig{}, util::RandomStream{GetParam()}};
    Lcp b{sim, LcpConfig{}, util::RandomStream{GetParam() + 1}};
    auto connect = [&sim](Lcp& from, Lcp& to) {
        from.setSender([&sim, &to](const ControlPacket& pkt) {
            const util::Bytes wire = pkt.serialize();
            sim.schedule(sim::millis(3), [&to, wire] {
                const auto parsed = ControlPacket::parse({wire.data(), wire.size()});
                if (parsed.ok()) to.receive(parsed.value());
            });
        });
    };
    connect(a, b);
    connect(b, a);
    a.open();
    a.up();
    b.open();
    b.up();
    sim.runUntil(sim::seconds(5.0));
    EXPECT_TRUE(a.isOpened());
    EXPECT_TRUE(b.isOpened());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcpConvergence,
                         ::testing::Values(1, 5, 23, 99, 1000, 54321));

}  // namespace
}  // namespace onelab::ppp
