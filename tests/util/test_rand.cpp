#include "util/rand.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace onelab::util {
namespace {

TEST(RandomStream, Deterministic) {
    RandomStream a{123};
    RandomStream b{123};
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RandomStream, DifferentSeedsDiffer) {
    RandomStream a{1};
    RandomStream b{2};
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform01() == b.uniform01()) ++equal;
    EXPECT_LT(equal, 5);
}

TEST(RandomStream, DeriveIsIndependentOfDrawOrder) {
    RandomStream parent1{99};
    RandomStream parent2{99};
    (void)parent2.uniform01();  // perturb one parent's engine
    RandomStream childA = parent1.derive("tag");
    RandomStream childB = parent2.derive("tag");
    // Children derive from the seed, not engine state: identical.
    for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(childA.uniform01(), childB.uniform01());
}

TEST(RandomStream, DeriveDifferentTagsDecorrelated) {
    RandomStream parent{7};
    RandomStream a = parent.derive("lcp");
    RandomStream b = parent.derive("ipcp");
    EXPECT_NE(a.seed(), b.seed());
    EXPECT_NE(a.uniformInt(0, 1 << 30), b.uniformInt(0, 1 << 30));
}

TEST(RandomStream, DeriveStoresMixedSeed) {
    // Regression: derive() must mix the parent's stored seed — two
    // parents with different seeds must produce different children
    // (this broke PPP magic-number negotiation once).
    RandomStream a = RandomStream{1}.derive("x");
    RandomStream b = RandomStream{2}.derive("x");
    EXPECT_NE(a.seed(), b.seed());
}

TEST(RandomStream, UniformIntBounds) {
    RandomStream rng{5};
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
    }
}

TEST(RandomStream, ChanceEdgeCases) {
    RandomStream rng{5};
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
}

class DistributionMean
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(DistributionMean, SampleMeanConvergesToSpecMean) {
    const auto [spec, expectedMean] = GetParam();
    auto variable = parseRandomVariable(spec);
    ASSERT_TRUE(variable.ok()) << spec;
    RandomStream rng{2024};
    double sum = 0.0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) sum += variable.value()->sample(rng);
    const double mean = sum / kSamples;
    EXPECT_NEAR(mean, expectedMean, std::abs(expectedMean) * 0.05 + 0.01) << spec;
    if (!std::isnan(variable.value()->mean()))
        EXPECT_NEAR(variable.value()->mean(), expectedMean, std::abs(expectedMean) * 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributionMean,
    ::testing::Values(std::pair{"constant:42", 42.0}, std::pair{"uniform:10:20", 15.0},
                      std::pair{"exp:0.5", 0.5}, std::pair{"pareto:3:100", 150.0},
                      std::pair{"normal:50:5", 50.0}, std::pair{"weibull:2:10", 8.8623},
                      std::pair{"gamma:2:3", 6.0}));

TEST(RandomVariable, ParetoSamplesAboveScale) {
    RandomStream rng{1};
    auto pareto = paretoVariable(1.5, 10.0);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(pareto->sample(rng), 10.0);
}

TEST(RandomVariable, CauchyMeanUndefined) {
    auto cauchy = cauchyVariable(100.0, 5.0);
    EXPECT_TRUE(std::isnan(cauchy->mean()));
}

TEST(RandomVariable, NormalFloorClamps) {
    RandomStream rng{1};
    auto variable = normalVariable(1.0, 100.0, 0.5);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(variable->sample(rng), 0.5);
}

TEST(RandomVariable, ParseRejectsBadSpecs) {
    EXPECT_FALSE(parseRandomVariable("").ok());
    EXPECT_FALSE(parseRandomVariable("nosuch:1").ok());
    EXPECT_FALSE(parseRandomVariable("uniform:1").ok());
    EXPECT_FALSE(parseRandomVariable("exp:abc").ok());
}

TEST(RandomVariable, DescribeIsInformative) {
    EXPECT_NE(constantVariable(5)->describe().find("constant"), std::string::npos);
    EXPECT_NE(exponentialVariable(2)->describe().find("exp"), std::string::npos);
}

}  // namespace
}  // namespace onelab::util
