#include "util/shared_bytes.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace onelab::util {
namespace {

Bytes sequence(std::size_t n) {
    Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = std::uint8_t(i);
    return data;
}

TEST(SharedBytes, DefaultIsEmpty) {
    SharedBytes slice;
    EXPECT_TRUE(slice.empty());
    EXPECT_EQ(slice.size(), 0u);
    EXPECT_EQ(slice.refCount(), 0u);
}

TEST(SharedBytes, WrapTakesOwnershipWithoutCopy) {
    Bytes buffer = sequence(32);
    const std::uint8_t* payload = buffer.data();
    SharedBytes slice = SharedBytes::wrap(std::move(buffer));
    EXPECT_EQ(slice.size(), 32u);
    EXPECT_EQ(slice.data(), payload);  // same heap bytes, no copy
    EXPECT_EQ(slice.refCount(), 1u);
}

TEST(SharedBytes, CopyConstructionSharesTheCore) {
    SharedBytes a = SharedBytes::wrap(sequence(16));
    SharedBytes b = a;
    EXPECT_EQ(a.refCount(), 2u);
    EXPECT_EQ(b.data(), a.data());
    b.reset();
    EXPECT_EQ(a.refCount(), 1u);
    EXPECT_EQ(a.view()[5], 5);
}

TEST(SharedBytes, MoveTransfersTheReference) {
    SharedBytes a = SharedBytes::wrap(sequence(16));
    SharedBytes b = std::move(a);
    EXPECT_EQ(b.refCount(), 1u);
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): pinned post-state
    SharedBytes c;
    c = std::move(b);
    EXPECT_EQ(c.refCount(), 1u);
    EXPECT_EQ(c.size(), 16u);
}

TEST(SharedBytes, CopyAssignReplacesExistingReference) {
    SharedBytes a = SharedBytes::wrap(sequence(8));
    SharedBytes b = SharedBytes::wrap(sequence(4));
    b = a;
    EXPECT_EQ(a.refCount(), 2u);
    EXPECT_EQ(b.size(), 8u);
    b = b;  // self-assignment is a no-op
    EXPECT_EQ(a.refCount(), 2u);
}

TEST(SharedBytes, CopyDuplicatesTheBytes) {
    Bytes original = sequence(8);
    SharedBytes slice = SharedBytes::copy({original.data(), original.size()});
    original[0] = 0xff;
    EXPECT_EQ(slice.view()[0], 0);  // detached from the source
}

TEST(SharedBytes, SliceSharesAndClamps) {
    SharedBytes whole = SharedBytes::wrap(sequence(32));
    SharedBytes mid = whole.slice(8, 16);
    EXPECT_EQ(mid.size(), 16u);
    EXPECT_EQ(mid.view()[0], 8);
    EXPECT_EQ(whole.refCount(), 2u);

    SharedBytes clamped = whole.slice(24, 100);
    EXPECT_EQ(clamped.size(), 8u);
    SharedBytes past = whole.slice(64, 4);
    EXPECT_TRUE(past.empty());

    // A sub-slice keeps the core alive after the original drops.
    whole.reset();
    EXPECT_EQ(mid.refCount(), 2u);  // mid + clamped
    EXPECT_EQ(mid.view()[15], 23);
}

/// Recycler stub: records which cores came back instead of freeing.
class RecordingRecycler final : public SharedBytesRecycler {
  public:
    void recycleShared(SharedBytesCore* core) noexcept override {
        recycled.push_back(core);
    }
    std::vector<SharedBytesCore*> recycled;

    ~RecordingRecycler() {
        for (SharedBytesCore* core : recycled) delete core;
    }
};

TEST(SharedBytes, LastRefInvokesTheRecycler) {
    RecordingRecycler recycler;
    auto* core = new SharedBytesCore;
    core->data = sequence(8);
    core->recycler = &recycler;
    {
        SharedBytes a = SharedBytes::adopt(core);
        SharedBytes b = a;
        EXPECT_EQ(a.refCount(), 2u);
        EXPECT_TRUE(recycler.recycled.empty());
    }
    ASSERT_EQ(recycler.recycled.size(), 1u);
    EXPECT_EQ(recycler.recycled[0], core);
}

TEST(SharedBytes, OrphanedCoreSelfDeletes) {
    auto* core = new SharedBytesCore;
    core->data = sequence(8);
    core->recycler = nullptr;  // no owner: last unref deletes (ASan-checked)
    { SharedBytes slice = SharedBytes::adopt(core); }
}

}  // namespace
}  // namespace onelab::util
