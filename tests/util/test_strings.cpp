#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace onelab::util {
namespace {

TEST(Strings, SplitPreservesEmptyFields) {
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleToken) {
    const auto parts = split("alone", ':');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, SplitWhitespaceDropsRuns) {
    const auto parts = splitWhitespace("  ip   rule\tadd \n prio 100  ");
    ASSERT_EQ(parts.size(), 5u);
    EXPECT_EQ(parts[0], "ip");
    EXPECT_EQ(parts[4], "100");
}

TEST(Strings, SplitWhitespaceEmpty) {
    EXPECT_TRUE(splitWhitespace("   \t\n").empty());
    EXPECT_TRUE(splitWhitespace("").empty());
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  hello \r\n"), "hello");
    EXPECT_EQ(trim("nospace"), "nospace");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(startsWith("AT+CPIN?", "AT"));
    EXPECT_FALSE(startsWith("A", "AT"));
    EXPECT_TRUE(endsWith("config.hpp", ".hpp"));
    EXPECT_FALSE(endsWith("hpp", ".hpp"));
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, ToUpper) { EXPECT_EQ(toUpper("at+csq"), "AT+CSQ"); }

TEST(Strings, ParseIntValid) {
    const auto r = parseInt(" -42 ");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), -42);
}

TEST(Strings, ParseIntRejectsGarbage) {
    EXPECT_FALSE(parseInt("12x").ok());
    EXPECT_FALSE(parseInt("").ok());
    EXPECT_FALSE(parseInt("abc").ok());
}

TEST(Strings, ParseDoubleValid) {
    const auto r = parseDouble("3.25");
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.value(), 3.25);
}

TEST(Strings, ParseDoubleRejectsTrailing) { EXPECT_FALSE(parseDouble("1.5abc").ok()); }

TEST(Strings, Format) {
    EXPECT_EQ(format("%s=%d", "x", 7), "x=7");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace onelab::util
