#include "util/result.hpp"

#include <gtest/gtest.h>

namespace onelab::util {
namespace {

TEST(Result, HoldsValue) {
    Result<int> r{42};
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(Result, HoldsError) {
    Result<int> r{err(Error::Code::busy, "locked")};
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Error::Code::busy);
    EXPECT_EQ(r.error().message, "locked");
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(Result, ValueOnErrorThrows) {
    Result<int> r{err(Error::Code::io, "boom")};
    EXPECT_THROW((void)r.value(), std::runtime_error);
}

TEST(Result, TakeMovesValue) {
    Result<std::string> r{std::string("payload")};
    const std::string taken = std::move(r).take();
    EXPECT_EQ(taken, "payload");
}

TEST(Result, VoidSpecialization) {
    Result<void> ok{};
    EXPECT_TRUE(ok.ok());
    Result<void> bad{err(Error::Code::timeout, "slow")};
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, Error::Code::timeout);
}

TEST(Result, BoolConversion) {
    Result<int> good{1};
    Result<int> bad{err(Error::Code::none, "")};
    EXPECT_TRUE(bool(good));
    EXPECT_FALSE(bool(bad));
}

TEST(Error, CodeNamesAreStable) {
    EXPECT_STREQ(err(Error::Code::permission_denied, "").codeName(), "EPERM");
    EXPECT_STREQ(err(Error::Code::busy, "").codeName(), "EBUSY");
    EXPECT_STREQ(err(Error::Code::not_found, "").codeName(), "ENOENT");
    EXPECT_STREQ(err(Error::Code::invalid_argument, "").codeName(), "EINVAL");
    EXPECT_STREQ(err(Error::Code::timeout, "").codeName(), "ETIMEDOUT");
    EXPECT_STREQ(err(Error::Code::protocol, "").codeName(), "EPROTO");
}

}  // namespace
}  // namespace onelab::util
