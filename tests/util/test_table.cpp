#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/ascii_plot.hpp"

namespace onelab::util {
namespace {

TEST(Table, RenderAligned) {
    Table table{{"time", "value"}};
    table.addRow({"1.0", "42"});
    table.addRow({"2.0", "7"});
    const std::string text = table.render();
    EXPECT_NE(text.find("time"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, CsvFormat) {
    Table table{{"a", "b"}};
    table.addRow({"1", "2"});
    EXPECT_EQ(table.csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowPadsInRender) {
    Table table{{"a", "b", "c"}};
    table.addRow({"only"});
    EXPECT_NO_THROW((void)table.render());
}

TEST(AsciiPlot, EmptyPlot) {
    EXPECT_EQ(renderPlot({}, PlotOptions{}), "(empty plot)\n");
}

TEST(AsciiPlot, SingleSeriesHasGlyphAndLegend) {
    PlotSeries series;
    series.name = "bitrate";
    series.glyph = '*';
    for (int i = 0; i < 50; ++i) series.points.push_back({double(i), double(i % 10)});
    PlotOptions options;
    options.title = "Figure 1";
    options.yLabel = "Kbps";
    const std::string text = renderPlot({series}, options);
    EXPECT_NE(text.find("Figure 1"), std::string::npos);
    EXPECT_NE(text.find('*'), std::string::npos);
    EXPECT_NE(text.find("bitrate"), std::string::npos);
    EXPECT_NE(text.find("Kbps"), std::string::npos);
}

TEST(AsciiPlot, TwoSeriesOverlay) {
    PlotSeries a{"umts", 'u', {{0, 1}, {1, 2}}};
    PlotSeries b{"eth", 'e', {{0, 3}, {1, 4}}};
    const std::string text = renderPlot({a, b}, PlotOptions{.width = 40, .height = 10});
    EXPECT_NE(text.find('u'), std::string::npos);
    EXPECT_NE(text.find('e'), std::string::npos);
}

TEST(AsciiPlot, FixedYRangeClamps) {
    PlotSeries series{"s", 's', {{0, -5}, {1, 500}}};
    PlotOptions options;
    options.yMin = 0.0;
    options.yMax = 10.0;
    EXPECT_NO_THROW((void)renderPlot({series}, options));
}

}  // namespace
}  // namespace onelab::util
