#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace onelab::util {
namespace {

TEST(Bytes, BigEndianRoundTrip) {
    Bytes buffer;
    putU8(buffer, 0xab);
    putU16(buffer, 0x1234);
    putU32(buffer, 0xdeadbeef);
    putU64(buffer, 0x0102030405060708ULL);
    ASSERT_EQ(buffer.size(), 1u + 2 + 4 + 8);

    ByteReader reader{{buffer.data(), buffer.size()}};
    EXPECT_EQ(reader.u8(), 0xab);
    EXPECT_EQ(reader.u16(), 0x1234);
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), 0x0102030405060708ULL);
    EXPECT_TRUE(reader.ok());
    EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Bytes, NetworkByteOrderOnWire) {
    Bytes buffer;
    putU16(buffer, 0x0102);
    EXPECT_EQ(buffer[0], 0x01);
    EXPECT_EQ(buffer[1], 0x02);
}

TEST(Bytes, ReaderUnderflowTurnsNotOk) {
    const Bytes buffer{0x01};
    ByteReader reader{{buffer.data(), buffer.size()}};
    EXPECT_EQ(reader.u16(), 0u);
    EXPECT_FALSE(reader.ok());
    // Stays not-ok for further reads.
    EXPECT_EQ(reader.u8(), 0u);
    EXPECT_FALSE(reader.ok());
}

TEST(Bytes, ReaderBytesAndSkip) {
    const Bytes buffer{1, 2, 3, 4, 5};
    ByteReader reader{{buffer.data(), buffer.size()}};
    reader.skip(2);
    const Bytes tail = reader.bytes(3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail[0], 3);
    EXPECT_EQ(tail[2], 5);
    EXPECT_TRUE(reader.ok());
}

TEST(Bytes, HexDump) {
    const Bytes data{0xde, 0xad, 0xbe, 0xef};
    EXPECT_EQ(hexDump({data.data(), data.size()}), "de ad be ef");
    EXPECT_EQ(hexDump({data.data(), data.size()}, 2), "de ad ...");
}

TEST(Bytes, InternetChecksumRfc1071Example) {
    // Classic example: checksum of this sequence is 0xddf2 (RFC 1071).
    const Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internetChecksum({data.data(), data.size()}), 0x220d);
    // Appending the checksum makes the total sum come out as zero.
    Bytes withSum = data;
    putU16(withSum, 0x220d);
    EXPECT_EQ(internetChecksum({withSum.data(), withSum.size()}), 0);
}

TEST(Bytes, InternetChecksumOddLength) {
    const Bytes data{0x01, 0x02, 0x03};
    const std::uint16_t sum = internetChecksum({data.data(), data.size()});
    Bytes withSum = data;
    // Odd data is padded with zero for the sum; verification must pad
    // the same way, so append pad + sum.
    withSum.push_back(0x00);
    putU16(withSum, sum);
    EXPECT_EQ(internetChecksum({withSum.data(), withSum.size()}), 0);
}

}  // namespace
}  // namespace onelab::util
