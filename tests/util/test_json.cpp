// util::JsonValue: the DOM every exported telemetry document (and the
// obsq tool) round-trips through. Parser strictness, escape handling
// and deterministic re-serialisation are what the post-mortem tooling
// leans on, so they are pinned here.
#include <gtest/gtest.h>

#include "util/json.hpp"

namespace onelab::util {
namespace {

JsonValue parsed(const std::string& text) {
    auto result = JsonValue::parse(text);
    EXPECT_TRUE(result.ok()) << text << " -> " << result.error().message;
    return result.ok() ? std::move(result).take() : JsonValue{};
}

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(parsed("null").isNull());
    EXPECT_TRUE(parsed("true").boolean());
    EXPECT_FALSE(parsed("false").boolean());
    EXPECT_DOUBLE_EQ(parsed("42").number(), 42.0);
    EXPECT_DOUBLE_EQ(parsed("-3.25e2").number(), -325.0);
    EXPECT_EQ(parsed("\"hi\"").string(), "hi");
}

TEST(Json, ParsesNestedDocument) {
    const JsonValue doc = parsed(
        R"json({"reason":"test","dropped":0,"entries":[{"kind":"log","t_ns":12,"value":-1}]})json");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.stringOr("reason", ""), "test");
    EXPECT_DOUBLE_EQ(doc.numberOr("dropped", -1.0), 0.0);
    const JsonValue* entries = doc.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_TRUE(entries->isArray());
    ASSERT_EQ(entries->array().size(), 1u);
    EXPECT_EQ(entries->array()[0].stringOr("kind", ""), "log");
    EXPECT_DOUBLE_EQ(entries->array()[0].numberOr("value", 0.0), -1.0);
}

TEST(Json, StringEscapes) {
    EXPECT_EQ(parsed(R"("a\"b\\c\/d\n\t")").string(), "a\"b\\c/d\n\t");
    // \uXXXX decodes to UTF-8: ASCII, two-byte and three-byte forms.
    EXPECT_EQ(parsed(R"("A")").string(), "A");
    EXPECT_EQ(parsed("\"\\u00e9\"").string(), "\xc3\xa9");
    EXPECT_EQ(parsed("\"\\u20ac\"").string(), "\xe2\x82\xac");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_FALSE(JsonValue::parse("").ok());
    EXPECT_FALSE(JsonValue::parse("{").ok());
    EXPECT_FALSE(JsonValue::parse("[1,]").ok());
    EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").ok());
    EXPECT_FALSE(JsonValue::parse("\"unterminated").ok());
    EXPECT_FALSE(JsonValue::parse("nul").ok());
    EXPECT_FALSE(JsonValue::parse("1 2").ok());  // trailing garbage
}

TEST(Json, SerializeRoundTripsAndPreservesMemberOrder) {
    const char* text =
        R"json({"z":1,"a":[true,null,"x\n"],"m":{"k":2.5}})json";
    const JsonValue doc = parsed(text);
    const std::string once = doc.serialize();
    // Key order is document order, not sorted: "z" stays first.
    EXPECT_EQ(once, R"json({"z":1,"a":[true,null,"x\n"],"m":{"k":2.5}})json");
    EXPECT_EQ(parsed(once).serialize(), once);
}

TEST(Json, BuildersAndLookupHelpers) {
    JsonValue object = JsonValue::makeObject();
    object.set("name", JsonValue::makeString("flight"));
    object.set("count", JsonValue::makeNumber(3));
    JsonValue list = JsonValue::makeArray();
    list.append(JsonValue::makeBool(true));
    object.set("flags", std::move(list));
    EXPECT_EQ(object.serialize(), R"json({"name":"flight","count":3,"flags":[true]})json");
    EXPECT_EQ(object.stringOr("name", "?"), "flight");
    EXPECT_DOUBLE_EQ(object.numberOr("count", 0.0), 3.0);
    EXPECT_DOUBLE_EQ(object.numberOr("absent", -1.0), -1.0);
    EXPECT_EQ(object.find("absent"), nullptr);
    // set() replaces in place, keeping the original slot's position.
    object.set("name", JsonValue::makeString("profile"));
    EXPECT_EQ(object.members().front().second.string(), "profile");
}

TEST(Json, NumberFormattingMatchesExporters) {
    std::string out;
    appendJsonNumber(out, 42.0);
    out += ",";
    appendJsonNumber(out, 2.5);
    EXPECT_EQ(out, "42,2.5");
    std::string quoted;
    appendJsonQuoted(quoted, "a\"b\n\x01");
    EXPECT_EQ(quoted, "\"a\\\"b\\n\\u0001\"");
}

}  // namespace
}  // namespace onelab::util
