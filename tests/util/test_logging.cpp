#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace onelab::util {
namespace {

/// Captures emitted lines and restores global state afterwards.
struct LoggingTest : ::testing::Test {
    void SetUp() override {
        LogConfig::instance().setSink([this](std::string_view line) {
            lines.emplace_back(line);
        });
        LogConfig::instance().setLevel(LogLevel::trace);
        LogConfig::instance().setClock(nullptr);
    }
    void TearDown() override {
        LogConfig::instance().setSink(
            [](std::string_view) {});  // silence; tests shouldn't spam stderr
        LogConfig::instance().setLevel(LogLevel::warn);
        LogConfig::instance().setClock(nullptr);
    }
    std::vector<std::string> lines;
};

TEST_F(LoggingTest, LevelsFilter) {
    LogConfig::instance().setLevel(LogLevel::warn);
    Logger log{"test"};
    log.debug() << "hidden";
    log.info() << "hidden too";
    log.warn() << "visible";
    log.error() << "also visible";
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("WARN"), std::string::npos);
    EXPECT_NE(lines[1].find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, ComponentAndMessageInLine) {
    Logger log{"ppp.lcp"};
    log.info() << "state " << 42 << " -> " << 43;
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("ppp.lcp"), std::string::npos);
    EXPECT_NE(lines[0].find("state 42 -> 43"), std::string::npos);
}

TEST_F(LoggingTest, SimClockPrefixesSeconds) {
    LogConfig::instance().setClock([] { return std::int64_t(1'500'000'000); });
    Logger log{"test"};
    log.info() << "tick";
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("[1.500000s]"), std::string::npos);
}

TEST_F(LoggingTest, EnabledReflectsLevel) {
    LogConfig::instance().setLevel(LogLevel::error);
    Logger log{"x"};
    EXPECT_FALSE(log.enabled(LogLevel::debug));
    EXPECT_TRUE(log.enabled(LogLevel::error));
}

TEST_F(LoggingTest, OffSilencesEverything) {
    LogConfig::instance().setLevel(LogLevel::off);
    Logger log{"x"};
    log.error() << "nope";
    EXPECT_TRUE(lines.empty());
}

TEST_F(LoggingTest, LevelNames) {
    EXPECT_EQ(logLevelName(LogLevel::trace), "TRACE");
    EXPECT_EQ(logLevelName(LogLevel::off), "OFF");
}

TEST_F(LoggingTest, SetSinkReturnsPreviousSink) {
    std::vector<std::string> other;
    auto previous = LogConfig::instance().setSink(
        [&other](std::string_view line) { other.emplace_back(line); });
    Logger log{"test"};
    log.info() << "to other";
    EXPECT_EQ(other.size(), 1u);
    EXPECT_TRUE(lines.empty());
    // Restoring the returned sink routes lines back to the fixture.
    LogConfig::instance().setSink(std::move(previous));
    log.info() << "back";
    EXPECT_EQ(other.size(), 1u);
    EXPECT_EQ(lines.size(), 1u);
}

TEST_F(LoggingTest, CaptureCollectsAndRestores) {
    Logger log{"cap"};
    {
        LogCapture capture;
        log.info() << "captured line";
        EXPECT_EQ(capture.lineCount(), 1u);
        EXPECT_TRUE(capture.contains("captured line"));
        EXPECT_FALSE(capture.contains("missing"));
        EXPECT_TRUE(lines.empty());  // diverted away from the fixture sink
    }
    log.info() << "after capture";  // previous sink restored on destruction
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("after capture"), std::string::npos);
}

TEST_F(LoggingTest, CaptureRingEvictsOldest) {
    Logger log{"cap"};
    LogCapture capture{3};
    for (int i = 0; i < 5; ++i) log.info() << "line " << i;
    EXPECT_EQ(capture.lineCount(), 3u);
    EXPECT_EQ(capture.dropped(), 2u);
    const auto kept = capture.lines();
    EXPECT_NE(kept.front().find("line 2"), std::string::npos);
    EXPECT_NE(kept.back().find("line 4"), std::string::npos);
    capture.clear();
    EXPECT_EQ(capture.lineCount(), 0u);
}

TEST_F(LoggingTest, EmitIsSafeAgainstConcurrentSinkSwap) {
    // One thread hammers the logger while another keeps swapping the
    // sink; emit must never call a half-replaced sink (the race this
    // guards against crashed by invoking a moved-from std::function).
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> delivered{0};
    auto counting = [&delivered](std::string_view) { ++delivered; };
    LogConfig::instance().setSink(counting);
    std::thread writer{[&stop] {
        Logger log{"race"};
        while (!stop.load()) log.info() << "spin";
    }};
    // Keep swapping until the writer has demonstrably emitted through
    // at least one of the swapped-in sinks.
    for (int i = 0; i < 2000 || delivered.load() == 0; ++i)
        LogConfig::instance().setSink(counting);
    stop = true;
    writer.join();
    EXPECT_GT(delivered.load(), 0u);
}

}  // namespace
}  // namespace onelab::util
