#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace onelab::util {
namespace {

/// Captures emitted lines and restores global state afterwards.
struct LoggingTest : ::testing::Test {
    void SetUp() override {
        LogConfig::instance().setSink([this](std::string_view line) {
            lines.emplace_back(line);
        });
        LogConfig::instance().setLevel(LogLevel::trace);
        LogConfig::instance().setClock(nullptr);
    }
    void TearDown() override {
        LogConfig::instance().setSink(
            [](std::string_view) {});  // silence; tests shouldn't spam stderr
        LogConfig::instance().setLevel(LogLevel::warn);
        LogConfig::instance().setClock(nullptr);
    }
    std::vector<std::string> lines;
};

TEST_F(LoggingTest, LevelsFilter) {
    LogConfig::instance().setLevel(LogLevel::warn);
    Logger log{"test"};
    log.debug() << "hidden";
    log.info() << "hidden too";
    log.warn() << "visible";
    log.error() << "also visible";
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("WARN"), std::string::npos);
    EXPECT_NE(lines[1].find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, ComponentAndMessageInLine) {
    Logger log{"ppp.lcp"};
    log.info() << "state " << 42 << " -> " << 43;
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("ppp.lcp"), std::string::npos);
    EXPECT_NE(lines[0].find("state 42 -> 43"), std::string::npos);
}

TEST_F(LoggingTest, SimClockPrefixesSeconds) {
    LogConfig::instance().setClock([] { return std::int64_t(1'500'000'000); });
    Logger log{"test"};
    log.info() << "tick";
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("[1.500000s]"), std::string::npos);
}

TEST_F(LoggingTest, EnabledReflectsLevel) {
    LogConfig::instance().setLevel(LogLevel::error);
    Logger log{"x"};
    EXPECT_FALSE(log.enabled(LogLevel::debug));
    EXPECT_TRUE(log.enabled(LogLevel::error));
}

TEST_F(LoggingTest, OffSilencesEverything) {
    LogConfig::instance().setLevel(LogLevel::off);
    Logger log{"x"};
    log.error() << "nope";
    EXPECT_TRUE(lines.empty());
}

TEST_F(LoggingTest, LevelNames) {
    EXPECT_EQ(logLevelName(LogLevel::trace), "TRACE");
    EXPECT_EQ(logLevelName(LogLevel::off), "OFF");
}

}  // namespace
}  // namespace onelab::util
