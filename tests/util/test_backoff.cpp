#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace onelab::util {
namespace {

TEST(JitteredBackoff, SameSeedSameSchedule) {
    BackoffConfig config;
    config.seed = 99;
    JitteredBackoff a{config};
    JitteredBackoff b{config};
    for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.nextSeconds(), b.nextSeconds());
}

TEST(JitteredBackoff, DistinctSeedsDecorrelate) {
    BackoffConfig configA;
    configA.seed = 1;
    BackoffConfig configB;
    configB.seed = 2;
    JitteredBackoff a{configA};
    JitteredBackoff b{configB};
    // A whole fleet redialling in lockstep is exactly what the jitter
    // exists to prevent: at least one step must differ.
    bool anyDifferent = false;
    for (int i = 0; i < 10; ++i)
        if (a.nextSeconds() != b.nextSeconds()) anyDifferent = true;
    EXPECT_TRUE(anyDifferent);
}

TEST(JitteredBackoff, DelaysStayWithinJitterOfDoubledBase) {
    BackoffConfig config;
    config.initialSeconds = 1.0;
    config.maxSeconds = 64.0;
    config.jitterFraction = 0.25;
    config.seed = 7;
    JitteredBackoff backoff{config};
    for (int attempt = 0; attempt < 12; ++attempt) {
        const double base = std::min(config.initialSeconds * std::ldexp(1.0, attempt),
                                     config.maxSeconds);
        const double delay = backoff.nextSeconds();
        EXPECT_GE(delay, base * (1.0 - config.jitterFraction));
        EXPECT_LE(delay, base * (1.0 + config.jitterFraction));
    }
}

TEST(JitteredBackoff, CapBoundsEveryDelay) {
    BackoffConfig config;
    config.initialSeconds = 2.0;
    config.maxSeconds = 30.0;
    config.jitterFraction = 0.2;
    config.seed = 3;
    JitteredBackoff backoff{config};
    // The cap clamps the base before jitter, so no delay can exceed
    // max * (1 + jitter) however many attempts pile up.
    for (int i = 0; i < 40; ++i) EXPECT_LE(backoff.nextSeconds(), 30.0 * 1.2);
}

TEST(JitteredBackoff, ResetRestartsDoublingButNotTheJitterStream) {
    BackoffConfig config;
    config.seed = 5;
    JitteredBackoff backoff{config};
    const double first = backoff.nextSeconds();
    (void)backoff.nextSeconds();
    (void)backoff.nextSeconds();
    EXPECT_EQ(backoff.attempt(), 3);
    backoff.reset();
    EXPECT_EQ(backoff.attempt(), 0);
    const double afterReset = backoff.nextSeconds();
    // Base is back at initialSeconds but the jitter stream kept
    // advancing, so the delay differs from the very first draw while
    // staying within the first-attempt envelope.
    EXPECT_NE(afterReset, first);
    EXPECT_GE(afterReset, config.initialSeconds * (1.0 - config.jitterFraction));
    EXPECT_LE(afterReset, config.initialSeconds * (1.0 + config.jitterFraction));
}

// Pinned schedule: the exact delays the default config with seed 42
// produces. Guards the seeded-jitter determinism that byte-identical
// replay depends on — any change to the RNG draw order or the backoff
// arithmetic shows up here first.
TEST(JitteredBackoff, PinnedScheduleSeed42) {
    BackoffConfig config;
    config.seed = 42;
    JitteredBackoff backoff{config};
    const double expected[] = {2.204124426, 4.222450230, 8.806864642, 13.672145175,
                               37.161842770, 50.257639482, 61.789687299, 56.949304787};
    for (const double value : expected) EXPECT_NEAR(backoff.nextSeconds(), value, 1e-6);
}

}  // namespace
}  // namespace onelab::util
