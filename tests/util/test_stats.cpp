#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace onelab::util {
namespace {

TEST(OnlineStats, Empty) {
    OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
    OnlineStats stats;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
    OnlineStats stats;
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(PercentileSampler, ExactPercentiles) {
    PercentileSampler sampler;
    for (int i = 1; i <= 100; ++i) sampler.add(double(i));
    EXPECT_DOUBLE_EQ(sampler.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(sampler.percentile(100), 100.0);
    EXPECT_NEAR(sampler.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(sampler.percentile(99), 99.01, 1e-9);
}

TEST(PercentileSampler, EmptyReturnsZero) {
    PercentileSampler sampler;
    EXPECT_DOUBLE_EQ(sampler.percentile(50), 0.0);
}

TEST(PercentileSampler, AddAfterQueryResorts) {
    PercentileSampler sampler;
    sampler.add(10.0);
    EXPECT_DOUBLE_EQ(sampler.percentile(50), 10.0);
    sampler.add(0.0);
    EXPECT_DOUBLE_EQ(sampler.percentile(0), 0.0);
}

TEST(Histogram, BinsAndEdges) {
    Histogram hist{0.0, 10.0, 10};
    hist.add(0.5);   // bin 0
    hist.add(9.5);   // bin 9
    hist.add(-3.0);  // clamps to bin 0
    hist.add(42.0);  // clamps to bin 9
    EXPECT_EQ(hist.binCount(0), 2u);
    EXPECT_EQ(hist.binCount(9), 2u);
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_DOUBLE_EQ(hist.binLow(5), 5.0);
}

TEST(Histogram, RenderContainsBars) {
    Histogram hist{0.0, 1.0, 2};
    hist.add(0.1);
    const std::string text = hist.render();
    EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Series, Summarize) {
    Series series{{0.1, 10.0}, {0.3, 20.0}, {0.5, 30.0}};
    const SeriesSummary summary = summarize(series);
    EXPECT_EQ(summary.points, 3u);
    EXPECT_DOUBLE_EQ(summary.mean, 20.0);
    EXPECT_DOUBLE_EQ(summary.min, 10.0);
    EXPECT_DOUBLE_EQ(summary.max, 30.0);
}

TEST(Series, MeanInWindowSelectsHalfOpenRange) {
    Series series{{0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(meanInWindow(series, 1.0, 3.0), 2.5);  // picks t=1,2
    EXPECT_DOUBLE_EQ(meanInWindow(series, 10.0, 20.0), 0.0);
}

}  // namespace
}  // namespace onelab::util
