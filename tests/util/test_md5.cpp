#include "util/md5.hpp"

#include <gtest/gtest.h>

namespace onelab::util {
namespace {

std::string md5Hex(const std::string& text) {
    Md5 md5;
    md5.update(text);
    return toHex(md5.finish());
}

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
    EXPECT_EQ(md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5Hex("abcdefghijklmnopqrstuvwxyz"), "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(
        md5Hex("12345678901234567890123456789012345678901234567890123456789012345678901234567890"),
        "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
    const std::string text = "The quick brown fox jumps over the lazy dog";
    Md5 incremental;
    incremental.update(text.substr(0, 10));
    incremental.update(text.substr(10));
    Md5 oneShot;
    oneShot.update(text);
    EXPECT_EQ(toHex(incremental.finish()), toHex(oneShot.finish()));
}

TEST(Md5, SpansBlockBoundary) {
    // 63, 64 and 65 bytes exercise the padding edge cases.
    for (const std::size_t length : {55u, 56u, 63u, 64u, 65u, 128u}) {
        const std::string text(length, 'x');
        Md5 a;
        a.update(text);
        Md5 b;
        for (const char c : text) b.update(std::string(1, c));
        EXPECT_EQ(toHex(a.finish()), toHex(b.finish())) << "length " << length;
    }
}

TEST(Md5, HashStaticHelper) {
    const Bytes data{'a', 'b', 'c'};
    EXPECT_EQ(toHex(Md5::hash({data.data(), data.size()})),
              "900150983cd24fb0d6963f7d28e17f72");
}

}  // namespace
}  // namespace onelab::util
