#include "net/dns.hpp"

#include <gtest/gtest.h>

#include "scenario/testbed.hpp"

namespace onelab::net {
namespace {

TEST(DnsCodec, QueryEncodeDecodeRoundTrip) {
    DnsMessage query;
    query.id = 0x1234;
    query.questionName = "planetlab1.inria.fr";
    const util::Bytes wire = query.encode();
    const auto decoded = DnsMessage::decode({wire.data(), wire.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().id, 0x1234);
    EXPECT_FALSE(decoded.value().isResponse);
    EXPECT_EQ(decoded.value().questionName, "planetlab1.inria.fr");
    EXPECT_FALSE(decoded.value().answer.has_value());
}

TEST(DnsCodec, ResponseCarriesARecord) {
    DnsMessage response;
    response.id = 7;
    response.isResponse = true;
    response.questionName = "host.example";
    response.answer = Ipv4Address{138, 96, 250, 20};
    const util::Bytes wire = response.encode();
    const auto decoded = DnsMessage::decode({wire.data(), wire.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().isResponse);
    ASSERT_TRUE(decoded.value().answer.has_value());
    EXPECT_EQ(*decoded.value().answer, (Ipv4Address{138, 96, 250, 20}));
}

TEST(DnsCodec, NxDomainFlag) {
    DnsMessage response;
    response.isResponse = true;
    response.nxDomain = true;
    response.questionName = "nosuch.example";
    const auto decoded = [&] {
        const util::Bytes wire = response.encode();
        return DnsMessage::decode({wire.data(), wire.size()});
    }();
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().nxDomain);
}

TEST(DnsCodec, RejectsGarbage) {
    const util::Bytes junk{1, 2, 3};
    EXPECT_FALSE(DnsMessage::decode({junk.data(), junk.size()}).ok());
    EXPECT_FALSE(DnsMessage::decode({}).ok());
}

TEST(Dns, ResolveOverUmtsUsingIpcpAssignedServer) {
    // End to end: dial up, learn the DNS server from IPCP, route it
    // through the UMTS connection and resolve the INRIA hostname.
    scenario::Testbed tb;
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok());
    const Ipv4Address dnsServer = tb.operatorNetwork().profile().dnsServer;
    ASSERT_TRUE(tb.addUmtsDestination(dnsServer.str() + "/32").ok());

    DnsResolver resolver{tb.sim(), tb.napoli().stack(), tb.umtsSlice().xid};
    std::optional<util::Result<Ipv4Address>> outcome;
    resolver.resolve("planetlab1.inria.fr", dnsServer,
                     [&](util::Result<Ipv4Address> r) { outcome = std::move(r); });
    tb.sim().runUntil(tb.sim().now() + sim::seconds(5.0));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->ok()) << outcome->error().message;
    EXPECT_EQ(outcome->value(), tb.inriaEthAddress());
    EXPECT_GE(tb.operatorNetwork().dns().queriesServed(), 1u);
    // The query really went over ppp0.
    EXPECT_GT(tb.napoli().stack().findInterface("ppp0")->counters().txPackets, 0u);
}

TEST(Dns, UnknownNameIsNxdomain) {
    scenario::Testbed tb;
    ASSERT_TRUE(tb.startUmts().ok());
    const Ipv4Address dnsServer = tb.operatorNetwork().profile().dnsServer;
    ASSERT_TRUE(tb.addUmtsDestination(dnsServer.str() + "/32").ok());
    DnsResolver resolver{tb.sim(), tb.napoli().stack(), tb.umtsSlice().xid};
    std::optional<util::Result<Ipv4Address>> outcome;
    resolver.resolve("no.such.host", dnsServer,
                     [&](util::Result<Ipv4Address> r) { outcome = std::move(r); });
    tb.sim().runUntil(tb.sim().now() + sim::seconds(5.0));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_FALSE(outcome->ok());
    EXPECT_EQ(outcome->error().code, util::Error::Code::not_found);
}

TEST(Dns, TimeoutWhenServerUnreachable) {
    scenario::Testbed tb;
    // No UMTS, and the operator DNS is not reachable from eth0 routing
    // (it is, actually, via the announced pool prefix — so point at a
    // bogus server instead).
    DnsResolver resolver{tb.sim(), tb.napoli().stack(), 0};
    std::optional<util::Result<Ipv4Address>> outcome;
    resolver.resolve("planetlab1.inria.fr", Ipv4Address{203, 0, 113, 53},
                     [&](util::Result<Ipv4Address> r) { outcome = std::move(r); },
                     sim::millis(500), 1);
    tb.sim().runUntil(tb.sim().now() + sim::seconds(5.0));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_FALSE(outcome->ok());
    EXPECT_EQ(outcome->error().code, util::Error::Code::timeout);
}

TEST(Dns, ResolverBusyRejectsSecondQuery) {
    scenario::Testbed tb;
    DnsResolver resolver{tb.sim(), tb.napoli().stack(), 0};
    resolver.resolve("a.example", Ipv4Address{203, 0, 113, 53},
                     [](util::Result<Ipv4Address>) {});
    std::optional<util::Error::Code> code;
    resolver.resolve("b.example", Ipv4Address{203, 0, 113, 53},
                     [&](util::Result<Ipv4Address> r) {
                         if (!r.ok()) code = r.error().code;
                     });
    EXPECT_EQ(code, util::Error::Code::busy);
}

}  // namespace
}  // namespace onelab::net
