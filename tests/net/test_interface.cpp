#include "net/interface.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

Packet somePacket(std::size_t payload = 10) {
    return makeUdpPacket(Ipv4Address{1, 1, 1, 1}, 1, Ipv4Address{2, 2, 2, 2}, 2,
                         util::Bytes(payload, 0));
}

TEST(Interface, StartsDownWithDefaults) {
    Interface iface{"eth0"};
    EXPECT_FALSE(iface.isUp());
    EXPECT_EQ(iface.mtu(), 1500u);
    EXPECT_TRUE(iface.address().isUnspecified());
    EXPECT_FALSE(iface.peerAddress().has_value());
}

TEST(Interface, TransmitWhenDownCountsDrop) {
    Interface iface{"eth0"};
    int transmitted = 0;
    iface.setTxHandler([&](Packet) { ++transmitted; });
    iface.transmit(somePacket());
    EXPECT_EQ(transmitted, 0);
    EXPECT_EQ(iface.counters().txDropped, 1u);

    iface.setUp(true);
    iface.transmit(somePacket());
    EXPECT_EQ(transmitted, 1);
    EXPECT_EQ(iface.counters().txPackets, 1u);
}

TEST(Interface, TransmitWithoutDriverCountsDrop) {
    Interface iface{"ppp0"};
    iface.setUp(true);
    iface.transmit(somePacket());
    EXPECT_EQ(iface.counters().txDropped, 1u);
    EXPECT_EQ(iface.counters().txPackets, 0u);
}

TEST(Interface, DeliverWhenDownIsSilentlyDropped) {
    Interface iface{"eth0"};
    int received = 0;
    iface.setRxHandler([&](Packet) { ++received; });
    iface.deliver(somePacket());
    EXPECT_EQ(received, 0);
    iface.setUp(true);
    iface.deliver(somePacket());
    EXPECT_EQ(received, 1);
    EXPECT_EQ(iface.counters().rxPackets, 1u);
}

TEST(Interface, ByteCountersUseWireSize) {
    Interface iface{"eth0"};
    iface.setUp(true);
    iface.setTxHandler([](Packet) {});
    iface.transmit(somePacket(100));
    EXPECT_EQ(iface.counters().txBytes, 128u);  // 20 IP + 8 UDP + 100
}

TEST(Interface, PeerAddressForPointToPoint) {
    Interface iface{"ppp0"};
    iface.setAddress(Ipv4Address{93, 57, 0, 16});
    iface.setPeerAddress(Ipv4Address{93, 57, 0, 1});
    ASSERT_TRUE(iface.peerAddress().has_value());
    EXPECT_EQ(*iface.peerAddress(), (Ipv4Address{93, 57, 0, 1}));
    iface.setPeerAddress(std::nullopt);
    EXPECT_FALSE(iface.peerAddress().has_value());
}

}  // namespace
}  // namespace onelab::net
