#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include "net/internet.hpp"

namespace onelab::net {
namespace {

struct TcpTest : ::testing::Test {
    TcpTest() : internet(sim, util::RandomStream{21}) {}

    struct Host {
        std::unique_ptr<NetworkStack> stack;
        std::unique_ptr<TcpHost> tcp;
    };

    Host makeHost(const std::string& name, Ipv4Address addr, AccessLink link = AccessLink{}) {
        Host host;
        host.stack = std::make_unique<NetworkStack>(sim, name);
        Interface& eth = host.stack->addInterface("eth0");
        eth.setAddress(addr);
        eth.setUp(true);
        internet.attach(eth, link);
        host.stack->router().table(PolicyRouter::kMainTable)
            .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
        host.tcp = std::make_unique<TcpHost>(sim, *host.stack, util::RandomStream{addr.value()});
        return host;
    }

    sim::Simulator sim;
    Internet internet;
};

TEST_F(TcpTest, HandshakeEstablishesBothSides) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    TcpConnection* accepted = nullptr;
    ASSERT_TRUE(server.tcp->listen(80, [&](TcpConnection& c) { accepted = &c; }).ok());
    bool connected = false;
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    conn->onConnected = [&] { connected = true; };
    sim.runUntil(sim::seconds(5.0));
    EXPECT_TRUE(connected);
    ASSERT_NE(accepted, nullptr);
    EXPECT_TRUE(conn->isEstablished());
    EXPECT_TRUE(accepted->isEstablished());
    EXPECT_EQ(accepted->remotePort(), conn->localPort());
}

TEST_F(TcpTest, EchoRoundTrip) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    ASSERT_TRUE(server.tcp
                    ->listen(80,
                             [&](TcpConnection& c) {
                                 c.onData = [&c](util::ByteView data) {
                                     (void)c.send(data);  // echo
                                 };
                             })
                    .ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    std::string received;
    conn->onData = [&](util::ByteView data) { received.append(data.begin(), data.end()); };
    conn->onConnected = [&] {
        const std::string hello = "hello umts world";
        (void)conn->send({reinterpret_cast<const std::uint8_t*>(hello.data()), hello.size()});
    };
    sim.runUntil(sim::seconds(5.0));
    EXPECT_EQ(received, "hello umts world");
}

TEST_F(TcpTest, BulkTransferIsLossless) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    std::size_t receivedBytes = 0;
    std::uint8_t expected = 0;
    bool corrupted = false;
    ASSERT_TRUE(server.tcp
                    ->listen(80,
                             [&](TcpConnection& c) {
                                 c.onData = [&](util::ByteView data) {
                                     for (const std::uint8_t byte : data) {
                                         if (byte != expected) corrupted = true;
                                         expected = std::uint8_t(expected + 1);
                                     }
                                     receivedBytes += data.size();
                                 };
                             })
                    .ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    constexpr std::size_t kTotal = 1 << 20;  // 1 MiB
    conn->onConnected = [&] {
        util::Bytes chunk(kTotal);
        for (std::size_t i = 0; i < chunk.size(); ++i) chunk[i] = std::uint8_t(i);
        ASSERT_TRUE(conn->send({chunk.data(), chunk.size()}).ok());
        conn->close();
    };
    sim.runUntil(sim::seconds(60.0));
    EXPECT_EQ(receivedBytes, kTotal);
    EXPECT_FALSE(corrupted);
    EXPECT_EQ(conn->stats().bytesAcked >= kTotal, true);
}

TEST_F(TcpTest, LossyPathRecoversViaRetransmission) {
    AccessLink lossy;
    lossy.lossProbability = 0.03;
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1}, lossy);
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    std::size_t receivedBytes = 0;
    ASSERT_TRUE(server.tcp
                    ->listen(80,
                             [&](TcpConnection& c) {
                                 c.onData = [&](util::ByteView data) {
                                     receivedBytes += data.size();
                                 };
                             })
                    .ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    constexpr std::size_t kTotal = 256 * 1024;
    conn->onConnected = [&] {
        const util::Bytes chunk(kTotal, 0x5a);
        (void)conn->send({chunk.data(), chunk.size()});
        conn->close();
    };
    sim.runUntil(sim::seconds(120.0));
    EXPECT_EQ(receivedBytes, kTotal);
    EXPECT_GT(conn->stats().retransmissions, 0u);
}

TEST_F(TcpTest, GracefulCloseReachesClosedOnBothSides) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    TcpConnection* accepted = nullptr;
    bool serverSawFin = false;
    ASSERT_TRUE(server.tcp
                    ->listen(80,
                             [&](TcpConnection& c) {
                                 accepted = &c;
                                 c.onPeerClosed = [&] {
                                     serverSawFin = true;
                                     c.close();  // close our side too
                                 };
                             })
                    .ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    int closedCallbacks = 0;
    conn->onClosed = [&] { ++closedCallbacks; };
    conn->onConnected = [&] { conn->close(); };
    sim.runUntil(sim::seconds(20.0));
    EXPECT_TRUE(serverSawFin);
    EXPECT_EQ(conn->state(), TcpState::closed);
    ASSERT_NE(accepted, nullptr);
    EXPECT_EQ(accepted->state(), TcpState::closed);
    EXPECT_EQ(closedCallbacks, 1);
}

TEST_F(TcpTest, SimultaneousCloseReachesClosed) {
    Host a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    Host b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    TcpConnection* accepted = nullptr;
    ASSERT_TRUE(b.tcp->listen(80, [&](TcpConnection& c) { accepted = &c; }).ok());
    TcpConnection* conn = a.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    sim.runUntil(sim::seconds(2.0));
    ASSERT_NE(accepted, nullptr);
    ASSERT_TRUE(conn->isEstablished());
    // Both sides close in the same instant: FINs cross in flight.
    conn->close();
    accepted->close();
    sim.runUntil(sim.now() + sim::seconds(10.0));
    EXPECT_EQ(conn->state(), TcpState::closed);
    EXPECT_EQ(accepted->state(), TcpState::closed);
}

TEST_F(TcpTest, HalfCloseStillReceives) {
    // Client closes its send side; the server keeps pushing data and
    // the client must keep delivering it (FIN-WAIT-2 semantics).
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    TcpConnection* accepted = nullptr;
    ASSERT_TRUE(server.tcp->listen(80, [&](TcpConnection& c) { accepted = &c; }).ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    std::size_t received = 0;
    conn->onData = [&](util::ByteView d) { received += d.size(); };
    conn->onConnected = [&] { conn->close(); };
    sim.runUntil(sim::seconds(3.0));
    ASSERT_NE(accepted, nullptr);
    // Server saw the FIN but its send side is still open.
    const util::Bytes blob(50000, 3);
    ASSERT_TRUE(accepted->send({blob.data(), blob.size()}).ok());
    sim.runUntil(sim.now() + sim::seconds(10.0));
    EXPECT_EQ(received, 50000u);
    EXPECT_EQ(conn->state(), TcpState::fin_wait_2);
    // Server finally closes; everything reaches CLOSED.
    accepted->close();
    sim.runUntil(sim.now() + sim::seconds(10.0));
    EXPECT_EQ(conn->state(), TcpState::closed);
    EXPECT_EQ(accepted->state(), TcpState::closed);
}

TEST_F(TcpTest, SendAfterCloseRejected) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    ASSERT_TRUE(server.tcp->listen(80, [](TcpConnection&) {}).ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    sim.runUntil(sim::seconds(2.0));
    ASSERT_TRUE(conn->isEstablished());
    conn->close();
    const util::Bytes data(10, 0);
    const auto sent = conn->send({data.data(), data.size()});
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.error().code, util::Error::Code::state);
}

TEST_F(TcpTest, ConnectToClosedPortIsReset) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    (void)server;  // no listener on 81
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 81);
    bool closed = false;
    bool connected = false;
    conn->onClosed = [&] { closed = true; };
    conn->onConnected = [&] { connected = true; };
    sim.runUntil(sim::seconds(5.0));
    EXPECT_TRUE(closed);
    EXPECT_FALSE(connected);
    EXPECT_GE(server.tcp->rstsSent(), 1u);
}

TEST_F(TcpTest, AbortSendsRstToPeer) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    TcpConnection* accepted = nullptr;
    ASSERT_TRUE(server.tcp->listen(80, [&](TcpConnection& c) { accepted = &c; }).ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    sim.runUntil(sim::seconds(2.0));
    ASSERT_NE(accepted, nullptr);
    bool peerClosed = false;
    accepted->onClosed = [&] { peerClosed = true; };
    conn->abort();
    sim.runUntil(sim.now() + sim::seconds(2.0));
    EXPECT_TRUE(peerClosed);
    EXPECT_EQ(conn->state(), TcpState::closed);
}

TEST_F(TcpTest, UnreachablePeerGivesUpEventually) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    TcpConnection* conn = client.tcp->connect(Ipv4Address{203, 0, 113, 9}, 80);
    bool closed = false;
    conn->onClosed = [&] { closed = true; };
    sim.runUntil(sim::seconds(600.0));
    EXPECT_TRUE(closed);
    EXPECT_GT(conn->stats().timeouts, 3u);
}

TEST_F(TcpTest, ListenPortConflictRejected) {
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    ASSERT_TRUE(server.tcp->listen(80, [](TcpConnection&) {}).ok());
    EXPECT_FALSE(server.tcp->listen(80, [](TcpConnection&) {}).ok());
    server.tcp->stopListening(80);
    EXPECT_TRUE(server.tcp->listen(80, [](TcpConnection&) {}).ok());
}

TEST_F(TcpTest, CongestionWindowGrowsOnCleanPath) {
    Host client = makeHost("c", Ipv4Address{10, 0, 0, 1});
    Host server = makeHost("s", Ipv4Address{10, 0, 0, 2});
    ASSERT_TRUE(server.tcp->listen(80, [](TcpConnection& c) {
        c.onData = [](util::ByteView) {};
    }).ok());
    TcpConnection* conn = client.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    conn->onConnected = [&] {
        const util::Bytes chunk(512 * 1024, 1);
        (void)conn->send({chunk.data(), chunk.size()});
    };
    sim.runUntil(sim::seconds(30.0));
    EXPECT_GT(conn->stats().cwndBytes, 8 * TcpConnection::kMss);
    EXPECT_GT(conn->stats().srttSeconds, 0.0);
    EXPECT_EQ(conn->stats().retransmissions, 0u);
}

TEST_F(TcpTest, BidirectionalSimultaneousTransfer) {
    Host a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    Host b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    std::size_t atB = 0;
    std::size_t atA = 0;
    ASSERT_TRUE(b.tcp
                    ->listen(80,
                             [&](TcpConnection& c) {
                                 c.onData = [&](util::ByteView d) { atB += d.size(); };
                                 const util::Bytes blob(100000, 2);
                                 (void)c.send({blob.data(), blob.size()});
                             })
                    .ok());
    TcpConnection* conn = a.tcp->connect(Ipv4Address{10, 0, 0, 2}, 80);
    conn->onData = [&](util::ByteView d) { atA += d.size(); };
    conn->onConnected = [&] {
        const util::Bytes blob(100000, 1);
        (void)conn->send({blob.data(), blob.size()});
    };
    sim.runUntil(sim::seconds(30.0));
    EXPECT_EQ(atB, 100000u);
    EXPECT_EQ(atA, 100000u);
}

}  // namespace
}  // namespace onelab::net
