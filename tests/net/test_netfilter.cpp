#include "net/netfilter.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

Packet slicePacket(int xid, Ipv4Address dst = Ipv4Address{10, 0, 0, 9}) {
    Packet pkt = makeUdpPacket(Ipv4Address{10, 0, 0, 1}, 1000, dst, 2000, {});
    pkt.sliceXid = xid;
    return pkt;
}

TEST(Netfilter, EmptyChainAccepts) {
    Netfilter nf;
    Packet pkt = slicePacket(1);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, pkt, "eth0"), Verdict::accept);
}

TEST(Netfilter, MarkTargetMutatesAndContinues) {
    Netfilter nf;
    FilterRule markRule;
    markRule.match.sliceXid = 100;
    markRule.target = {FilterTarget::Kind::mark, 0x64};
    nf.append(ChainHook::mangle_output, markRule);

    Packet pkt = slicePacket(100);
    EXPECT_EQ(nf.runChain(ChainHook::mangle_output, pkt, {}), Verdict::accept);
    EXPECT_EQ(pkt.fwmark, 0x64u);

    Packet other = slicePacket(101);
    nf.runChain(ChainHook::mangle_output, other, {});
    EXPECT_EQ(other.fwmark, 0u);
}

TEST(Netfilter, DropIsTerminating) {
    Netfilter nf;
    FilterRule drop;
    drop.match.outInterface = "ppp0";
    drop.target.kind = FilterTarget::Kind::drop;
    nf.append(ChainHook::filter_output, drop);

    Packet pkt = slicePacket(1);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, pkt, "ppp0"), Verdict::drop);
    EXPECT_EQ(nf.dropCount(), 1u);
    // Same rule does not match a different oif.
    Packet viaEth = slicePacket(1);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, viaEth, "eth0"), Verdict::accept);
}

TEST(Netfilter, NegatedSliceMatch) {
    // The paper's isolation rule: -o ppp0 -m slice ! --xid N -j DROP.
    Netfilter nf;
    FilterRule rule;
    rule.match.outInterface = "ppp0";
    rule.match.sliceXid = 100;
    rule.match.negateSlice = true;
    rule.target.kind = FilterTarget::Kind::drop;
    nf.append(ChainHook::filter_output, rule);

    Packet owner = slicePacket(100);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, owner, "ppp0"), Verdict::accept);
    Packet intruder = slicePacket(101);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, intruder, "ppp0"), Verdict::drop);
    Packet root = slicePacket(0);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, root, "ppp0"), Verdict::drop);
}

TEST(Netfilter, FirstTerminatingRuleWins) {
    Netfilter nf;
    FilterRule accept;
    accept.match.sliceXid = 5;
    accept.target.kind = FilterTarget::Kind::accept;
    FilterRule drop;
    drop.target.kind = FilterTarget::Kind::drop;
    nf.append(ChainHook::filter_output, accept);
    nf.append(ChainHook::filter_output, drop);

    Packet five = slicePacket(5);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, five, "eth0"), Verdict::accept);
    Packet six = slicePacket(6);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, six, "eth0"), Verdict::drop);
}

TEST(Netfilter, InsertPutsRuleFirst) {
    Netfilter nf;
    FilterRule drop;
    drop.target.kind = FilterTarget::Kind::drop;
    nf.append(ChainHook::input, drop);
    FilterRule accept;
    accept.target.kind = FilterTarget::Kind::accept;
    nf.insert(ChainHook::input, accept);

    Packet pkt = slicePacket(1);
    EXPECT_EQ(nf.runChain(ChainHook::input, pkt, {}), Verdict::accept);
}

TEST(Netfilter, DeleteById) {
    Netfilter nf;
    FilterRule drop;
    drop.target.kind = FilterTarget::Kind::drop;
    const std::uint64_t id = nf.append(ChainHook::filter_output, drop);
    EXPECT_EQ(nf.ruleCount(), 1u);
    EXPECT_TRUE(nf.deleteRule(id).ok());
    EXPECT_EQ(nf.ruleCount(), 0u);
    EXPECT_FALSE(nf.deleteRule(id).ok());
}

TEST(Netfilter, FlushClearsOnlyThatChain) {
    Netfilter nf;
    FilterRule rule;
    nf.append(ChainHook::mangle_output, rule);
    nf.append(ChainHook::filter_output, rule);
    nf.flush(ChainHook::mangle_output);
    EXPECT_EQ(nf.ruleCount(), 1u);
    EXPECT_TRUE(nf.listChain(ChainHook::mangle_output).empty());
    EXPECT_EQ(nf.listChain(ChainHook::filter_output).size(), 1u);
}

TEST(Netfilter, MatchOnPrefixesAndProtocol) {
    Netfilter nf;
    FilterRule rule;
    rule.match.dst = Prefix{Ipv4Address{138, 96, 0, 0}, 16};
    rule.match.protocol = IpProto::udp;
    rule.target.kind = FilterTarget::Kind::drop;
    nf.append(ChainHook::filter_output, rule);

    Packet match = slicePacket(1, Ipv4Address{138, 96, 250, 20});
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, match, "eth0"), Verdict::drop);
    Packet wrongDst = slicePacket(1, Ipv4Address{130, 1, 1, 1});
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, wrongDst, "eth0"), Verdict::accept);
    Packet icmp = makeIcmpEcho(Ipv4Address{}, Ipv4Address{138, 96, 250, 20}, false, 1, 1);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, icmp, "eth0"), Verdict::accept);
}

TEST(Netfilter, MarkMatchSelects) {
    Netfilter nf;
    FilterRule rule;
    rule.match.fwmark = 0x64;
    rule.target.kind = FilterTarget::Kind::drop;
    nf.append(ChainHook::filter_output, rule);

    Packet marked = slicePacket(1);
    marked.fwmark = 0x64;
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, marked, "eth0"), Verdict::drop);
    Packet unmarked = slicePacket(1);
    EXPECT_EQ(nf.runChain(ChainHook::filter_output, unmarked, "eth0"), Verdict::accept);
}

TEST(Netfilter, HitCountersIncrement) {
    Netfilter nf;
    FilterRule rule;
    rule.target.kind = FilterTarget::Kind::accept;
    const auto id = nf.append(ChainHook::input, rule);
    Packet pkt = slicePacket(1);
    nf.runChain(ChainHook::input, pkt, {});
    nf.runChain(ChainHook::input, pkt, {});
    const auto chain = nf.listChain(ChainHook::input);
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].first, id);
    EXPECT_EQ(chain[0].second.packets, 2u);
}

TEST(Netfilter, DescribeRendersMatchers) {
    FilterMatch match;
    match.sliceXid = 7;
    match.negateSlice = true;
    match.outInterface = "ppp0";
    const std::string text = match.describe();
    EXPECT_NE(text.find("!xid=7"), std::string::npos);
    EXPECT_NE(text.find("ppp0"), std::string::npos);
    EXPECT_EQ(FilterMatch{}.describe(), "any");
}

}  // namespace
}  // namespace onelab::net
