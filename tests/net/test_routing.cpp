#include "net/routing.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

Packet packetTo(Ipv4Address dst, std::uint32_t fwmark = 0, Ipv4Address src = {}) {
    Packet pkt = makeUdpPacket(src, 1, dst, 2, {});
    pkt.fwmark = fwmark;
    return pkt;
}

TEST(RoutingTable, LongestPrefixWins) {
    RoutingTable table;
    table.addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    table.addRoute({Prefix{Ipv4Address{10, 0, 0, 0}, 8}, "tun0", std::nullopt, 0});
    table.addRoute({Prefix::host(Ipv4Address{10, 1, 2, 3}), "ppp0", std::nullopt, 0});

    EXPECT_EQ(table.lookup(Ipv4Address{8, 8, 8, 8})->oifName, "eth0");
    EXPECT_EQ(table.lookup(Ipv4Address{10, 9, 9, 9})->oifName, "tun0");
    EXPECT_EQ(table.lookup(Ipv4Address{10, 1, 2, 3})->oifName, "ppp0");
}

TEST(RoutingTable, MetricBreaksTies) {
    RoutingTable table;
    table.addRoute({Prefix::any(), "backup", std::nullopt, 10});
    table.addRoute({Prefix::any(), "primary", std::nullopt, 1});
    EXPECT_EQ(table.lookup(Ipv4Address{1, 1, 1, 1})->oifName, "primary");
}

TEST(RoutingTable, ReplaceIdenticalRoute) {
    RoutingTable table;
    table.addRoute({Prefix::any(), "eth0", std::nullopt, 5});
    table.addRoute({Prefix::any(), "eth0", std::nullopt, 1});  // same key, new metric
    ASSERT_EQ(table.routes().size(), 1u);
    EXPECT_EQ(table.routes()[0].metric, 1);
}

TEST(RoutingTable, DeleteByPrefixAndDevice) {
    RoutingTable table;
    table.addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    table.addRoute({Prefix::any(), "ppp0", std::nullopt, 0});
    EXPECT_EQ(table.delRoute(Prefix::any(), "ppp0"), 1u);
    EXPECT_EQ(table.routes().size(), 1u);
    EXPECT_EQ(table.delRoute(Prefix::any()), 1u);  // no oif = any device
    EXPECT_TRUE(table.empty());
}

TEST(RoutingTable, NoRouteReturnsNullopt) {
    RoutingTable table;
    table.addRoute({Prefix{Ipv4Address{10, 0, 0, 0}, 8}, "eth0", std::nullopt, 0});
    EXPECT_FALSE(table.lookup(Ipv4Address{192, 168, 1, 1}).has_value());
}

TEST(PolicyRouter, DefaultRuleUsesMainTable) {
    PolicyRouter router;
    router.table(PolicyRouter::kMainTable)
        .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    const auto route = router.resolve(packetTo(Ipv4Address{8, 8, 8, 8}));
    ASSERT_TRUE(route.ok());
    EXPECT_EQ(route.value().oifName, "eth0");
}

TEST(PolicyRouter, FwmarkRuleSelectsAlternateTable) {
    // The paper's setup: marked packets to a registered destination use
    // table 100 whose only entry is a default via ppp0.
    PolicyRouter router;
    router.table(PolicyRouter::kMainTable)
        .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    router.table(100).addRoute({Prefix::any(), "ppp0", std::nullopt, 0});
    PolicyRule rule;
    rule.priority = 1000;
    rule.fwmark = 0x64;
    rule.dstSelector = Prefix::host(Ipv4Address{138, 96, 250, 20});
    rule.tableId = 100;
    router.addRule(rule);

    // Marked + matching destination -> ppp0.
    const auto viaPpp = router.resolve(packetTo(Ipv4Address{138, 96, 250, 20}, 0x64));
    ASSERT_TRUE(viaPpp.ok());
    EXPECT_EQ(viaPpp.value().oifName, "ppp0");
    // Marked but other destination -> falls through to main.
    EXPECT_EQ(router.resolve(packetTo(Ipv4Address{8, 8, 8, 8}, 0x64)).value().oifName, "eth0");
    // Unmarked to the registered destination -> main as well.
    EXPECT_EQ(router.resolve(packetTo(Ipv4Address{138, 96, 250, 20})).value().oifName, "eth0");
}

TEST(PolicyRouter, SourceSelectorRule) {
    // Rule (ii) of §2.3: marked packets with source = the UMTS address
    // use the UMTS table regardless of destination.
    PolicyRouter router;
    router.table(PolicyRouter::kMainTable)
        .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    router.table(100).addRoute({Prefix::any(), "ppp0", std::nullopt, 0});
    PolicyRule rule;
    rule.priority = 1000;
    rule.fwmark = 0x64;
    rule.srcSelector = Prefix::host(Ipv4Address{93, 57, 0, 16});
    rule.tableId = 100;
    router.addRule(rule);

    EXPECT_EQ(router
                  .resolve(packetTo(Ipv4Address{8, 8, 8, 8}, 0x64,
                                    Ipv4Address{93, 57, 0, 16}))
                  .value()
                  .oifName,
              "ppp0");
    EXPECT_EQ(router
                  .resolve(packetTo(Ipv4Address{8, 8, 8, 8}, 0x64,
                                    Ipv4Address{143, 225, 229, 10}))
                  .value()
                  .oifName,
              "eth0");
}

TEST(PolicyRouter, RulePriorityOrder) {
    PolicyRouter router;
    router.table(10).addRoute({Prefix::any(), "low", std::nullopt, 0});
    router.table(20).addRoute({Prefix::any(), "high", std::nullopt, 0});
    router.addRule(PolicyRule{.priority = 200, .tableId = 10});
    router.addRule(PolicyRule{.priority = 100, .tableId = 20});
    EXPECT_EQ(router.resolve(packetTo(Ipv4Address{1, 1, 1, 1})).value().oifName, "high");
}

TEST(PolicyRouter, ContinuesPastEmptyTable) {
    // Linux semantics: a matching rule whose table has no route for
    // the destination does not terminate the walk.
    PolicyRouter router;
    router.table(PolicyRouter::kMainTable)
        .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    router.addRule(PolicyRule{.priority = 1, .tableId = 100});  // table 100 is empty
    EXPECT_EQ(router.resolve(packetTo(Ipv4Address{1, 1, 1, 1})).value().oifName, "eth0");
}

TEST(PolicyRouter, NoRouteAnywhereFails) {
    PolicyRouter router;
    const auto result = router.resolve(packetTo(Ipv4Address{1, 2, 3, 4}));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::Error::Code::not_found);
}

TEST(PolicyRouter, DelRuleMatchesAllFields) {
    PolicyRouter router;
    PolicyRule rule;
    rule.priority = 1000;
    rule.fwmark = 0x64;
    rule.tableId = 100;
    router.addRule(rule);
    PolicyRule differentMark = rule;
    differentMark.fwmark = 0x65;
    EXPECT_EQ(router.delRule(differentMark), 0u);
    EXPECT_EQ(router.delRule(rule), 1u);
    // Only the default rule remains.
    EXPECT_EQ(router.rules().size(), 1u);
}

TEST(PolicyRouter, DropTableForgetsRoutes) {
    PolicyRouter router;
    router.table(100).addRoute({Prefix::any(), "ppp0", std::nullopt, 0});
    router.dropTable(100);
    EXPECT_EQ(router.findTable(100), nullptr);
    // Main table cannot be dropped.
    router.dropTable(PolicyRouter::kMainTable);
    EXPECT_NE(router.findTable(PolicyRouter::kMainTable), nullptr);
}

TEST(PolicyRouter, DescribeFormats) {
    PolicyRule rule;
    rule.priority = 1000;
    rule.fwmark = 0x64;
    rule.dstSelector = Prefix{Ipv4Address{10, 0, 0, 0}, 8};
    rule.tableId = 100;
    const std::string text = rule.describe();
    EXPECT_NE(text.find("1000"), std::string::npos);
    EXPECT_NE(text.find("fwmark"), std::string::npos);
    EXPECT_NE(text.find("lookup 100"), std::string::npos);

    const Route route{Prefix::any(), "ppp0", std::nullopt, 0};
    EXPECT_NE(route.describe().find("default"), std::string::npos);
}

}  // namespace
}  // namespace onelab::net
