#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

using sim::millis;
using sim::seconds;

TEST(TxQueue, SerializesAtConfiguredRate) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1 << 20};  // 1000 bytes/s
    sim::SimTime done{};
    queue.enqueue(500, [&] { done = sim.now(); });
    sim.run();
    EXPECT_EQ(done, millis(500));
}

TEST(TxQueue, BackToBackItemsQueueSequentially) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1 << 20};
    std::vector<double> completions;
    for (int i = 0; i < 3; ++i)
        queue.enqueue(250, [&] { completions.push_back(sim::toSeconds(sim.now())); });
    EXPECT_EQ(queue.backlogPackets(), 3u);
    sim.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_NEAR(completions[0], 0.25, 1e-9);
    EXPECT_NEAR(completions[1], 0.50, 1e-9);
    EXPECT_NEAR(completions[2], 0.75, 1e-9);
    EXPECT_EQ(queue.completed(), 3u);
}

TEST(TxQueue, DropTailOnByteLimit) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1000};
    EXPECT_TRUE(queue.enqueue(600, nullptr));
    EXPECT_TRUE(queue.enqueue(400, nullptr));
    EXPECT_FALSE(queue.enqueue(1, nullptr));  // would exceed the limit
    EXPECT_EQ(queue.drops(), 1u);
    EXPECT_EQ(queue.backlogBytes(), 1000u);
}

TEST(TxQueue, BacklogDrainsAsItemsComplete) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1000};
    queue.enqueue(1000, nullptr);
    sim.run();
    EXPECT_EQ(queue.backlogBytes(), 0u);
    EXPECT_TRUE(queue.enqueue(1000, nullptr));
}

TEST(TxQueue, RateChangeAppliesToSubsequentItems) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1 << 20};
    std::vector<double> completions;
    queue.enqueue(1000, [&] { completions.push_back(sim::toSeconds(sim.now())); });
    queue.enqueue(1000, [&] { completions.push_back(sim::toSeconds(sim.now())); });
    // Double the rate while the first item is in flight.
    queue.setRate(16000.0);
    sim.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_NEAR(completions[0], 1.0, 1e-9);   // old rate
    EXPECT_NEAR(completions[1], 1.5, 1e-9);   // new rate
}

TEST(TxQueue, ClearDropsPendingWithoutRunningActions) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1 << 20};
    int completed = 0;
    queue.enqueue(1000, [&] { ++completed; });
    queue.enqueue(1000, [&] { ++completed; });
    queue.clear();
    sim.run();
    EXPECT_EQ(completed, 0);
    EXPECT_EQ(queue.backlogBytes(), 0u);
}

TEST(TxQueue, UsableAfterClear) {
    sim::Simulator sim;
    TxQueue queue{sim, 8000.0, 1 << 20};
    queue.enqueue(1000, nullptr);
    queue.clear();
    bool done = false;
    queue.enqueue(100, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
}

}  // namespace
}  // namespace onelab::net
