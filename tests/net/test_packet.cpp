#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

TEST(Packet, UdpSerializeParseRoundTrip) {
    Packet pkt = makeUdpPacket(Ipv4Address{10, 0, 0, 1}, 5000, Ipv4Address{10, 0, 0, 2}, 9001,
                               util::Bytes{1, 2, 3, 4, 5});
    pkt.ip.ttl = 17;
    pkt.ip.tos = 0x10;
    pkt.fwmark = 99;       // metadata, must NOT survive the wire
    pkt.sliceXid = 123;

    const util::Bytes wire = pkt.serialize();
    EXPECT_EQ(wire.size(), pkt.wireSize());

    const auto parsed = Packet::parse({wire.data(), wire.size()});
    ASSERT_TRUE(parsed.ok());
    const Packet& out = parsed.value();
    EXPECT_EQ(out.ip.src, pkt.ip.src);
    EXPECT_EQ(out.ip.dst, pkt.ip.dst);
    EXPECT_EQ(out.ip.ttl, 17);
    EXPECT_EQ(out.ip.tos, 0x10);
    EXPECT_EQ(out.udp.srcPort, 5000);
    EXPECT_EQ(out.udp.dstPort, 9001);
    EXPECT_EQ(out.payload, pkt.payload);
    // skb-style metadata defaults after parse.
    EXPECT_EQ(out.fwmark, 0u);
    EXPECT_EQ(out.sliceXid, 0);
}

TEST(Packet, IcmpEchoRoundTrip) {
    Packet pkt = makeIcmpEcho(Ipv4Address{1, 1, 1, 1}, Ipv4Address{2, 2, 2, 2},
                              /*isReply=*/false, 7, 42, util::Bytes{0xaa, 0xbb});
    const util::Bytes wire = pkt.serialize();
    const auto parsed = Packet::parse({wire.data(), wire.size()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().ip.protocol, IpProto::icmp);
    EXPECT_EQ(parsed.value().icmp.type, 8);
    EXPECT_EQ(parsed.value().icmp.id, 7);
    EXPECT_EQ(parsed.value().icmp.sequence, 42);
    EXPECT_EQ(parsed.value().payload, (util::Bytes{0xaa, 0xbb}));
}

TEST(Packet, EchoReplyType) {
    const Packet reply = makeIcmpEcho(Ipv4Address{}, Ipv4Address{}, /*isReply=*/true, 1, 1);
    EXPECT_EQ(reply.icmp.type, 0);
}

TEST(Packet, ParseDetectsCorruptedHeader) {
    Packet pkt = makeUdpPacket(Ipv4Address{10, 0, 0, 1}, 1, Ipv4Address{10, 0, 0, 2}, 2,
                               util::Bytes(8, 0));
    util::Bytes wire = pkt.serialize();
    wire[8] ^= 0xff;  // corrupt the TTL: header checksum must fail
    EXPECT_FALSE(Packet::parse({wire.data(), wire.size()}).ok());
}

TEST(Packet, ParseRejectsTruncated) {
    Packet pkt = makeUdpPacket(Ipv4Address{10, 0, 0, 1}, 1, Ipv4Address{10, 0, 0, 2}, 2,
                               util::Bytes(100, 0));
    util::Bytes wire = pkt.serialize();
    wire.resize(24);
    EXPECT_FALSE(Packet::parse({wire.data(), wire.size()}).ok());
}

TEST(Packet, ParseRejectsNonIpv4) {
    util::Bytes wire(28, 0);
    wire[0] = 0x65;  // version 6
    EXPECT_FALSE(Packet::parse({wire.data(), wire.size()}).ok());
}

TEST(Packet, WireSizeAccounting) {
    const Packet udp = makeUdpPacket(Ipv4Address{}, 0, Ipv4Address{}, 0, util::Bytes(100, 0));
    EXPECT_EQ(udp.wireSize(), 20u + 8 + 100);
    const Packet icmp = makeIcmpEcho(Ipv4Address{}, Ipv4Address{}, false, 0, 0,
                                     util::Bytes(10, 0));
    EXPECT_EQ(icmp.wireSize(), 20u + 8 + 10);
}

TEST(Packet, EmptyPayload) {
    const Packet pkt = makeUdpPacket(Ipv4Address{1, 2, 3, 4}, 10, Ipv4Address{5, 6, 7, 8}, 20,
                                     {});
    const util::Bytes wire = pkt.serialize();
    const auto parsed = Packet::parse({wire.data(), wire.size()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().payload.empty());
}

TEST(Packet, DescribeMentionsEndpoints) {
    const Packet pkt = makeUdpPacket(Ipv4Address{1, 2, 3, 4}, 10, Ipv4Address{5, 6, 7, 8}, 20,
                                     {});
    const std::string text = pkt.describe();
    EXPECT_NE(text.find("1.2.3.4"), std::string::npos);
    EXPECT_NE(text.find("5.6.7.8"), std::string::npos);
}

}  // namespace
}  // namespace onelab::net
