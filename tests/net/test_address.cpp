#include "net/address.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
    const auto addr = Ipv4Address::parse("143.225.229.10");
    ASSERT_TRUE(addr.ok());
    EXPECT_EQ(addr.value().str(), "143.225.229.10");
    EXPECT_EQ(addr.value(), (Ipv4Address{143, 225, 229, 10}));
}

TEST(Ipv4Address, ParseRejectsMalformed) {
    EXPECT_FALSE(Ipv4Address::parse("1.2.3").ok());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").ok());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3.256").ok());
    EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").ok());
    EXPECT_FALSE(Ipv4Address::parse("").ok());
}

TEST(Ipv4Address, Unspecified) {
    EXPECT_TRUE(Ipv4Address{}.isUnspecified());
    EXPECT_FALSE((Ipv4Address{10, 0, 0, 1}).isUnspecified());
}

TEST(Ipv4Address, Ordering) {
    EXPECT_LT((Ipv4Address{10, 0, 0, 1}), (Ipv4Address{10, 0, 0, 2}));
    EXPECT_LT((Ipv4Address{9, 255, 255, 255}), (Ipv4Address{10, 0, 0, 0}));
}

TEST(Prefix, ContainsAndNormalisesBase) {
    const Prefix prefix{Ipv4Address{93, 57, 12, 34}, 16};
    EXPECT_EQ(prefix.base(), (Ipv4Address{93, 57, 0, 0}));  // host bits cleared
    EXPECT_TRUE(prefix.contains(Ipv4Address{93, 57, 200, 1}));
    EXPECT_FALSE(prefix.contains(Ipv4Address{93, 58, 0, 1}));
}

TEST(Prefix, HostRoute) {
    const Prefix host = Prefix::host(Ipv4Address{1, 2, 3, 4});
    EXPECT_EQ(host.length(), 32);
    EXPECT_TRUE(host.contains(Ipv4Address{1, 2, 3, 4}));
    EXPECT_FALSE(host.contains(Ipv4Address{1, 2, 3, 5}));
}

TEST(Prefix, DefaultMatchesEverything) {
    const Prefix any = Prefix::any();
    EXPECT_EQ(any.length(), 0);
    EXPECT_TRUE(any.contains(Ipv4Address{}));
    EXPECT_TRUE(any.contains(Ipv4Address{255, 255, 255, 255}));
}

TEST(Prefix, ParseWithAndWithoutLength) {
    const auto cidr = Prefix::parse("10.1.0.0/16");
    ASSERT_TRUE(cidr.ok());
    EXPECT_EQ(cidr.value().length(), 16);
    const auto bare = Prefix::parse("10.1.2.3");
    ASSERT_TRUE(bare.ok());
    EXPECT_EQ(bare.value().length(), 32);
}

TEST(Prefix, ParseRejectsBadLength) {
    EXPECT_FALSE(Prefix::parse("10.0.0.0/33").ok());
    EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").ok());
    EXPECT_FALSE(Prefix::parse("10.0.0.0/x").ok());
}

TEST(Prefix, StrFormat) {
    EXPECT_EQ((Prefix{Ipv4Address{10, 0, 0, 0}, 8}).str(), "10.0.0.0/8");
}

}  // namespace
}  // namespace onelab::net
