// net::Seq serial arithmetic: pinned edge cases at the 2^31 and 2^32
// boundaries, plus a randomized model check against a 64-bit reference
// implementation (satellite of the TCP ladder PR).

#include "net/seq.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/rand.hpp"

namespace onelab::net {
namespace {

TEST(SeqTest, ComparisonsAcrossTheWrap) {
    const Seq a{0xFFFFFFF0u};
    const Seq b{0x00000010u};  // 0x20 ahead of a, across the wrap
    EXPECT_LT(a, b);
    EXPECT_GT(b, a);
    EXPECT_EQ(b - a, 0x20);
    EXPECT_EQ(a - b, -0x20);
    EXPECT_EQ(a + 0x20u, b);
}

TEST(SeqTest, HalfCircleIsTheTippingPoint) {
    const Seq base{1000};
    // One short of half the circle: still "ahead".
    EXPECT_GT(base + (0x7FFFFFFFu), base);
    // Exactly half the circle behaves as "behind" (distance is
    // INT32_MIN, which is negative) — the documented RFC 1982 edge.
    EXPECT_LT(base + 0x80000000u, base);
}

TEST(SeqTest, InWindow) {
    const Seq lo{0xFFFFFF00u};
    EXPECT_TRUE(Seq{0xFFFFFF00u}.inWindow(lo, 0x200));
    EXPECT_TRUE(Seq{0x000000FFu}.inWindow(lo, 0x200));   // wrapped inside
    EXPECT_FALSE(Seq{0x00000100u}.inWindow(lo, 0x200));  // one past the end
    EXPECT_FALSE(Seq{0xFFFFFEFFu}.inWindow(lo, 0x200));  // one before
    EXPECT_FALSE(Seq{0}.inWindow(lo, 0));                // empty window
}

TEST(SeqTest, IncrementDecrementAndCompound) {
    Seq s{0xFFFFFFFFu};
    EXPECT_EQ((s++).value(), 0xFFFFFFFFu);
    EXPECT_EQ(s.value(), 0u);
    ++s;
    EXPECT_EQ(s.value(), 1u);
    s += 0xFFFFFFFFu;  // a full lap minus one
    EXPECT_EQ(s.value(), 0u);
    s -= 5;
    EXPECT_EQ(s.value(), 0xFFFFFFFBu);
}

// Model check: drive a Seq and an unwrapped 64-bit reference through
// the same randomized op sequence. Offsets stay below 2^31 so every
// comparison is within serial-arithmetic range, but the walk itself
// crosses the 2^31 and 2^32 boundaries many times.
TEST(SeqTest, RandomizedModelCheckAgainstUnwrapped64Bit) {
    util::RandomStream rng{0xBADC0FFEu};

    // Start just below the wrap so the walk crosses it immediately.
    std::uint64_t model = 0xFFFFFF00u;
    Seq seq{std::uint32_t(model)};

    for (int op = 0; op < 2000; ++op) {
        switch (rng.uniformInt(0, 3)) {
            case 0: {  // advance (a segment's worth)
                const auto step = std::uint32_t(rng.uniformInt(0, 65535));
                model += step;
                seq += step;
                break;
            }
            case 1: {  // compare against a nearby point
                const auto offset = std::int64_t(rng.uniformInt(-1'000'000, 1'000'000));
                const std::uint64_t otherModel = model + std::uint64_t(offset);
                const Seq other{std::uint32_t(otherModel)};
                ASSERT_EQ(other < seq, offset < 0) << "op " << op;
                ASSERT_EQ(other > seq, offset > 0) << "op " << op;
                ASSERT_EQ(other == seq, offset == 0) << "op " << op;
                ASSERT_EQ(other <= seq, offset <= 0) << "op " << op;
                ASSERT_EQ(other >= seq, offset >= 0) << "op " << op;
                break;
            }
            case 2: {  // signed distance to a nearby point
                const auto offset = std::int64_t(rng.uniformInt(-2'000'000, 2'000'000));
                const Seq other{std::uint32_t(model + std::uint64_t(offset))};
                ASSERT_EQ(std::int64_t(other - seq), offset) << "op " << op;
                break;
            }
            case 3: {  // window membership
                const auto size = std::uint32_t(rng.uniformInt(0, 1'000'000));
                const auto lag = std::uint64_t(rng.uniformInt(0, 2'000'000));
                const Seq lo{std::uint32_t(model - lag)};
                ASSERT_EQ(seq.inWindow(lo, size), lag < size) << "op " << op;
                break;
            }
        }
        ASSERT_EQ(seq.value(), std::uint32_t(model)) << "op " << op;
    }
    // The walk covered many laps of the 32-bit circle.
    EXPECT_GT(model, std::uint64_t{0x100000000u});
}

}  // namespace
}  // namespace onelab::net
