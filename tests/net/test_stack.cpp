#include "net/stack.hpp"

#include <gtest/gtest.h>

namespace onelab::net {
namespace {

/// Two stacks joined by directly cross-wiring their interfaces.
struct TwoHosts : ::testing::Test {
    void SetUp() override {
        a = std::make_unique<NetworkStack>(sim, "a");
        b = std::make_unique<NetworkStack>(sim, "b");
        Interface& ethA = a->addInterface("eth0");
        Interface& ethB = b->addInterface("eth0");
        ethA.setAddress(addrA);
        ethB.setAddress(addrB);
        ethA.setUp(true);
        ethB.setUp(true);
        // Direct wire: transmit on one side delivers on the other
        // (deferred through the simulator to avoid re-entrancy).
        ethA.setTxHandler([this, &ethB](Packet pkt) {
            auto shared = std::make_shared<Packet>(std::move(pkt));
            sim.schedule(sim::millis(1), [&ethB, shared] { ethB.deliver(std::move(*shared)); });
        });
        ethB.setTxHandler([this, &ethA](Packet pkt) {
            auto shared = std::make_shared<Packet>(std::move(pkt));
            sim.schedule(sim::millis(1), [&ethA, shared] { ethA.deliver(std::move(*shared)); });
        });
        a->router().table(PolicyRouter::kMainTable)
            .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
        b->router().table(PolicyRouter::kMainTable)
            .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    }

    sim::Simulator sim;
    Ipv4Address addrA{10, 0, 0, 1};
    Ipv4Address addrB{10, 0, 0, 2};
    std::unique_ptr<NetworkStack> a;
    std::unique_ptr<NetworkStack> b;
};

TEST_F(TwoHosts, UdpDatagramDelivery) {
    auto rxSocket = b->openUdp(0, 9000);
    ASSERT_TRUE(rxSocket.ok());
    std::vector<Datagram> got;
    rxSocket.value()->onReceive([&](Datagram d) { got.push_back(std::move(d)); });

    auto txSocket = a->openUdp(0);
    ASSERT_TRUE(txSocket.ok());
    ASSERT_TRUE(txSocket.value()->sendTo(addrB, 9000, util::Bytes{1, 2, 3}).ok());
    sim.run();

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].src, addrA);  // source selected from oif
    EXPECT_EQ(got[0].payload, (util::Bytes{1, 2, 3}));
    EXPECT_EQ(got[0].dstPort, 9000);
}

TEST_F(TwoHosts, ReplyReachesEphemeralPort) {
    auto rxSocket = b->openUdp(0, 9000);
    rxSocket.value()->onReceive([&](Datagram d) {
        (void)rxSocket.value()->sendTo(d.src, d.srcPort, util::Bytes{9});
    });
    auto txSocket = a->openUdp(0);
    int replies = 0;
    txSocket.value()->onReceive([&](Datagram) { ++replies; });
    (void)txSocket.value()->sendTo(addrB, 9000, util::Bytes{1});
    sim.run();
    EXPECT_EQ(replies, 1);
}

TEST_F(TwoHosts, PortConflictRejected) {
    ASSERT_TRUE(b->openUdp(0, 9000).ok());
    const auto second = b->openUdp(0, 9000);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, util::Error::Code::busy);
}

TEST_F(TwoHosts, CloseFreesPort) {
    auto socket = b->openUdp(0, 9000);
    b->closeUdp(socket.value());
    EXPECT_TRUE(b->openUdp(0, 9000).ok());
}

TEST_F(TwoHosts, NoListenerDropsSilently) {
    auto txSocket = a->openUdp(0);
    EXPECT_TRUE(txSocket.value()->sendTo(addrB, 12345, util::Bytes{1}).ok());
    EXPECT_NO_FATAL_FAILURE(sim.run());
    EXPECT_EQ(b->deliveredPackets(), 1u);
}

TEST_F(TwoHosts, NoRouteFails) {
    a->router().table(PolicyRouter::kMainTable).clear();
    auto txSocket = a->openUdp(0);
    const auto sent = txSocket.value()->sendTo(addrB, 9000, util::Bytes{1});
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.error().code, util::Error::Code::not_found);
    EXPECT_EQ(a->routeFailures(), 1u);
}

TEST_F(TwoHosts, DownInterfaceFails) {
    a->findInterface("eth0")->setUp(false);
    auto txSocket = a->openUdp(0);
    EXPECT_FALSE(txSocket.value()->sendTo(addrB, 9000, util::Bytes{1}).ok());
}

TEST_F(TwoHosts, SliceMarkAndIsolationDrop) {
    // Reproduce the §2.3 rule pair on a second ("ppp0") interface.
    Interface& ppp = a->addInterface("ppp0");
    ppp.setAddress(Ipv4Address{93, 57, 0, 16});
    ppp.setUp(true);
    std::vector<Packet> pppTx;
    ppp.setTxHandler([&](Packet pkt) { pppTx.push_back(std::move(pkt)); });

    FilterRule mark;
    mark.match.sliceXid = 100;
    mark.target = {FilterTarget::Kind::mark, 100};
    a->netfilter().append(ChainHook::mangle_output, mark);

    FilterRule drop;
    drop.match.outInterface = "ppp0";
    drop.match.sliceXid = 100;
    drop.match.negateSlice = true;
    drop.target.kind = FilterTarget::Kind::drop;
    a->netfilter().append(ChainHook::filter_output, drop);

    a->router().table(100).addRoute({Prefix::any(), "ppp0", std::nullopt, 0});
    PolicyRule rule;
    rule.priority = 1000;
    rule.fwmark = 100;
    rule.dstSelector = Prefix::host(addrB);
    rule.tableId = 100;
    a->router().addRule(rule);

    // Owner slice: routed via ppp0 and accepted.
    auto owner = a->openUdp(100);
    EXPECT_TRUE(owner.value()->sendTo(addrB, 9000, util::Bytes{1}).ok());
    ASSERT_EQ(pppTx.size(), 1u);
    EXPECT_EQ(pppTx[0].fwmark, 100u);

    // Another slice binding to the UMTS address and aiming at ppp0:
    // not marked, so routed via eth0 — and if it forces the source
    // address, the filter/OUTPUT drop still protects ppp0.
    auto intruder = a->openUdp(101);
    intruder.value()->bindAddress(Ipv4Address{93, 57, 0, 16});
    PolicyRule srcRule;
    srcRule.priority = 999;
    srcRule.srcSelector = Prefix::host(Ipv4Address{93, 57, 0, 16});
    srcRule.tableId = 100;
    a->router().addRule(srcRule);  // src-based rule with no mark requirement
    const auto sent = intruder.value()->sendTo(addrB, 9000, util::Bytes{1});
    ASSERT_FALSE(sent.ok());
    EXPECT_EQ(sent.error().code, util::Error::Code::permission_denied);
    EXPECT_EQ(pppTx.size(), 1u);  // nothing else left via ppp0
}

TEST_F(TwoHosts, PingEchoRoundTrip) {
    std::optional<PingReply> reply;
    ASSERT_TRUE(a->ping(addrB, [&](PingReply r) { reply = r; }).ok());
    sim.run();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->rtt, sim::millis(2));  // 1 ms each way
}

TEST_F(TwoHosts, LocalDeliveryLoopback) {
    auto rx = a->openUdp(0, 7777);
    int got = 0;
    rx.value()->onReceive([&](Datagram) { ++got; });
    auto tx = a->openUdp(0);
    EXPECT_TRUE(tx.value()->sendTo(addrA, 7777, util::Bytes{1}).ok());
    EXPECT_EQ(got, 1);  // synchronous local delivery
}

TEST_F(TwoHosts, ForwardingDisabledByDefault) {
    // Deliver a packet addressed to someone else: host drops it.
    Packet transit = makeUdpPacket(Ipv4Address{1, 1, 1, 1}, 1, Ipv4Address{2, 2, 2, 2}, 2, {});
    b->findInterface("eth0")->deliver(std::move(transit));
    EXPECT_EQ(b->forwardedPackets(), 0u);
}

TEST_F(TwoHosts, ForwardingDecrementsTtlAndFilters) {
    b->setForwarding(true);
    b->router().table(PolicyRouter::kMainTable)
        .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
    int filtered = 0;
    b->setForwardFilter([&](const Packet&, const std::string&) {
        ++filtered;
        return true;
    });
    Packet transit = makeUdpPacket(Ipv4Address{1, 1, 1, 1}, 1, addrA, 2, {});
    transit.ip.ttl = 5;
    b->findInterface("eth0")->deliver(std::move(transit));
    EXPECT_EQ(b->forwardedPackets(), 1u);
    EXPECT_EQ(filtered, 1);

    Packet dead = makeUdpPacket(Ipv4Address{1, 1, 1, 1}, 1, addrA, 2, {});
    dead.ip.ttl = 1;
    b->findInterface("eth0")->deliver(std::move(dead));
    EXPECT_EQ(b->forwardedPackets(), 1u);  // TTL expired
}

TEST_F(TwoHosts, SnifferSeesDeliveredPackets) {
    int sniffed = 0;
    b->setSniffer([&](const Packet&, const std::string& iif) {
        EXPECT_EQ(iif, "eth0");
        ++sniffed;
    });
    auto tx = a->openUdp(0);
    (void)tx.value()->sendTo(addrB, 9000, util::Bytes{1});
    sim.run();
    EXPECT_EQ(sniffed, 1);
}

TEST_F(TwoHosts, RemoveInterface) {
    EXPECT_TRUE(a->removeInterface("eth0").ok());
    EXPECT_FALSE(a->removeInterface("eth0").ok());
    EXPECT_EQ(a->findInterface("eth0"), nullptr);
}

TEST_F(TwoHosts, InterfaceCounters) {
    auto tx = a->openUdp(0);
    (void)tx.value()->sendTo(addrB, 9000, util::Bytes(100, 0));
    sim.run();
    const InterfaceCounters& counters = a->findInterface("eth0")->counters();
    EXPECT_EQ(counters.txPackets, 1u);
    EXPECT_EQ(counters.txBytes, 128u);  // 20 IP + 8 UDP + 100
}

}  // namespace
}  // namespace onelab::net
