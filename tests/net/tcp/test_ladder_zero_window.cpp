// Ladder rung 7: zero-window flow control. Sender side: persist
// probes with exponential backoff while the peer advertises zero, and
// a clean resume when the window reopens. Receiver side: pauseReading
// shrinks the DUT's advertised window to zero and resumeReading sends
// the window-update ACK.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

util::Bytes filledBytes(std::size_t n, std::uint8_t seed) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = std::uint8_t(seed + i * 13);
    return data;
}

TEST(TcpLadderZeroWindow, SenderPersistsThenResumes) {
    TcpTestHarness h;
    h.peerWindow = 0;  // SYN-ACK already advertises a closed window
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    const util::Bytes data = filledBytes(8 * 1024, 21);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };

    // Reopen the window after 10 s of persisting.
    h.sim.schedule(sim::seconds(10.0), [&] { h.peerWindow = 65535; });

    h.run(40.0);

    EXPECT_EQ(h.peerReceived, data);
    EXPECT_EQ(conn->stats().bytesAcked, data.size());
    // While the window was closed the sender probed, it did not blast:
    // probes carry exactly one byte and back off exponentially.
    EXPECT_GE(conn->stats().zeroWindowProbes, 3u);
    EXPECT_EQ(conn->stats().timeouts, 0u);

    std::vector<double> probeAt;
    for (const CapturedSegment& s : h.sent)
        if (s.payloadSize() == 1 && sim::toSeconds(s.at) < 10.0)
            probeAt.push_back(sim::toSeconds(s.at));
    ASSERT_GE(probeAt.size(), 3u);
    for (std::size_t i = 1; i + 1 < probeAt.size(); ++i) {
        const double prev = probeAt[i] - probeAt[i - 1];
        const double next = probeAt[i + 1] - probeAt[i];
        EXPECT_NEAR(next, 2.0 * prev, 0.05 * next);
    }
}

TEST(TcpLadderZeroWindow, ProbeIntervalIsCappedNotAbandoned) {
    TcpTestHarness h;
    h.peerWindow = 0;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    const util::Bytes data = filledBytes(1024, 3);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };

    // A long stall: unlike the RTO path there is no give-up counter —
    // the connection must still be alive and must complete once the
    // window finally opens.
    h.sim.schedule(sim::seconds(300.0), [&] { h.peerWindow = 65535; });
    h.run(340.0);

    EXPECT_EQ(h.peerReceived, data);
    EXPECT_EQ(conn->stats().bytesAcked, data.size());
    EXPECT_GE(conn->stats().zeroWindowProbes, 6u);
    EXPECT_NE(conn->state(), TcpState::closed);
}

TEST(TcpLadderZeroWindow, ReceiverPauseClosesAdvertisedWindow) {
    TcpTestHarness h;
    TcpConnection* accepted = nullptr;
    util::Bytes delivered;
    TcpOptions opts;
    opts.fixedIss = 7000;
    opts.receiveBufferBytes = 8 * 1024;
    ASSERT_TRUE(h.tcp()
                    .listen(80,
                            [&](TcpConnection& c) {
                                accepted = &c;
                                c.pauseReading();
                                c.onData = [&](util::ByteView d) {
                                    delivered.insert(delivered.end(), d.begin(), d.end());
                                };
                            },
                            0, opts)
                    .ok());

    h.peerConnect(80);
    h.run(0.5);
    ASSERT_NE(accepted, nullptr);

    // Fill the DUT's 8 KiB receive buffer while the app is paused.
    const util::Bytes data = filledBytes(8 * 1024, 17);
    for (std::size_t off = 0; off < data.size(); off += TcpConnection::kMss) {
        const std::size_t n = std::min(TcpConnection::kMss, data.size() - off);
        h.peerSend(util::ByteView{data.data() + off, n});
    }
    h.run(2.0);

    // The app saw nothing, the buffer is full, and the last ACK on the
    // wire advertises a zero window.
    EXPECT_TRUE(delivered.empty());
    EXPECT_EQ(accepted->advertisedWindow(), 0u);
    ASSERT_FALSE(h.sent.empty());
    EXPECT_EQ(h.sent.back().window(), 0u);

    // Resume: everything drains to the app in order and a window
    // update goes out.
    accepted->resumeReading();
    h.run(1.0);
    EXPECT_EQ(delivered, data);
    EXPECT_GT(h.sent.back().window(), 0u);
    EXPECT_EQ(accepted->advertisedWindow(), std::size_t(8 * 1024));
}

}  // namespace
}  // namespace onelab::net::testlab
