// Ladder rung 2: sequence numbers crossing 2^32. The ISS is pinned a
// few KB below the wrap so a modest transfer pushes SND.NXT through
// zero mid-flow; every byte must still arrive exactly once, and the
// serial comparisons must keep ordering straight on both sides of the
// boundary.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

util::Bytes patternBytes(std::size_t n) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::uint8_t((i * 131) ^ (i >> 8));
    return data;
}

TEST(TcpLadderSeqWrap, TransferCrossesTheWrapByteExactly) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 0xFFFFE000;  // 8 KiB shy of the wrap
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);
    ASSERT_NE(conn, nullptr);

    const util::Bytes data = patternBytes(64 * 1024);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };

    h.run(30.0);

    // Byte accuracy across the boundary, no loss on this rung.
    EXPECT_EQ(h.peerReceived, data);
    EXPECT_EQ(conn->stats().retransmissions, 0u);
    EXPECT_EQ(conn->stats().bytesAcked, data.size());

    // The trace must show raw sequence numbers on both sides of zero,
    // and serial arithmetic must rank them correctly throughout.
    bool sawHigh = false, sawLow = false;
    for (const CapturedSegment& s : h.sent) {
        if (!s.isData()) continue;
        if (s.seq().value() >= 0xFFFFE000u) sawHigh = true;
        if (s.seq().value() < 0x00010000u) sawLow = true;
        EXPECT_GE(s.seq(), conn->iss());
    }
    EXPECT_TRUE(sawHigh);
    EXPECT_TRUE(sawLow);

    // SND.NXT wrapped: raw value is tiny, serially it is ISS + transfer.
    EXPECT_LT(conn->sndNxt().value(), 0x00020000u);
    EXPECT_GT(conn->sndNxt(), conn->iss());
    EXPECT_EQ(conn->sndNxt() - conn->iss(),
              std::int32_t(1 + data.size()));  // +1 for the SYN
}

TEST(TcpLadderSeqWrap, LossAtTheBoundaryRecovers) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 0xFFFFF000;  // 4 KiB shy of the wrap
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    // Drop the first data segment whose payload straddles or follows
    // the wrap — retransmission and cumulative ACKs must handle a hole
    // that sits numerically "below" everything already acked.
    bool dropped = false;
    h.peerTap = [&](const Packet& p) {
        if (!dropped && !p.payload.empty() && p.tcp.seq < 0x10000000u) {
            dropped = true;
            return true;
        }
        return false;
    };

    const util::Bytes data = patternBytes(48 * 1024);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };

    h.run(60.0);

    EXPECT_TRUE(dropped);
    EXPECT_EQ(h.peerReceived, data);
    EXPECT_GE(conn->stats().retransmissions, 1u);
    EXPECT_EQ(conn->stats().bytesAcked, data.size());
}

}  // namespace
}  // namespace onelab::net::testlab
