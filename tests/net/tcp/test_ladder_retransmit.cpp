// Ladder rungs 3 and 4: retransmission on RTO, exponential backoff
// spacing, and Karn's rule (no RTT sample from a retransmitted
// segment).

#include <gtest/gtest.h>

#include <cmath>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

util::Bytes filledBytes(std::size_t n, std::uint8_t seed) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = std::uint8_t(seed + i * 7);
    return data;
}

TEST(TcpLadderRetransmit, LostSegmentIsRetransmittedOnRto) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    // Swallow the very first data segment. cwnd starts at 3 MSS so at
    // most two more follow it; their two dupacks stay below the
    // fast-retransmit threshold and recovery must come from the RTO.
    bool dropped = false;
    h.peerTap = [&](const Packet& p) {
        if (!dropped && !p.payload.empty()) {
            dropped = true;
            return true;
        }
        return false;
    };

    const util::Bytes data = filledBytes(4 * TcpConnection::kMss, 3);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };

    h.run(30.0);

    EXPECT_EQ(h.peerReceived, data);
    EXPECT_GE(conn->stats().timeouts, 1u);
    EXPECT_EQ(conn->stats().fastRetransmits, 0u);
    EXPECT_GE(conn->stats().retransmissions, 1u);
    // First payload byte (ISS+1) was put on the wire at least twice.
    EXPECT_GE(h.transmissionsOf(Seq{102}), 2u);
}

TEST(TcpLadderRetransmit, RtoBacksOffExponentially) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    // Handshake completes normally, then the peer goes deaf: every
    // data segment vanishes. The sender must retransmit the head
    // segment with doubling spacing.
    h.peerTap = [&](const Packet& p) { return !p.payload.empty(); };

    const util::Bytes data = filledBytes(2 * TcpConnection::kMss, 9);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };

    h.run(40.0);

    // Collect transmit times of segments carrying the first byte.
    std::vector<double> at;
    for (const CapturedSegment& s : h.sent)
        if (s.isData() && Seq{102}.inWindow(s.seq(), std::uint32_t(s.payloadSize())))
            at.push_back(sim::toSeconds(s.at));
    ASSERT_GE(at.size(), 4u);
    for (std::size_t i = 2; i + 1 < at.size(); ++i) {
        const double prev = at[i] - at[i - 1];
        const double next = at[i + 1] - at[i];
        // Each retry interval doubles (up to the 60 s cap).
        if (prev < 29.0) {
            EXPECT_NEAR(next, 2.0 * prev, 0.05 * next);
        }
    }
    EXPECT_GE(conn->stats().timeouts, 3u);
    EXPECT_GT(conn->stats().rtoSeconds, conn->stats().srttSeconds);
}

TEST(TcpLadderRetransmit, KarnRuleSkipsRetransmittedSamples) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    // Phase 1: clean segments seed SRTT with the true ~20 ms RTT.
    // Phase 2: one segment is held back so its ACK arrives only after
    // the RTO retransmission; were the sender to time the
    // retransmitted copy, the bogus short sample would drag SRTT.
    const util::Bytes first = filledBytes(2 * TcpConnection::kMss, 1);
    const util::Bytes second = filledBytes(TcpConnection::kMss, 2);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(first).ok()); };
    h.run(2.0);
    ASSERT_EQ(conn->stats().bytesAcked, first.size());
    const double srttBefore = conn->stats().srttSeconds;
    ASSERT_GT(srttBefore, 0.0);

    int seen = 0;
    h.peerTap = [&](const Packet& p) {
        if (!p.payload.empty() && ++seen == 1) return true;  // drop original
        return false;
    };
    ASSERT_TRUE(conn->send(second).ok());
    h.run(10.0);

    EXPECT_EQ(conn->stats().bytesAcked, first.size() + second.size());
    EXPECT_GE(conn->stats().timeouts, 1u);
    // The ACK of the retransmitted copy arrived one RTT after the
    // retransmission — a valid sample would have kept SRTT near 20 ms,
    // an invalid one (timed from the original send) would have blown
    // it up past the RTO interval. Karn's rule discards it entirely,
    // so SRTT is exactly what phase 1 left behind.
    EXPECT_DOUBLE_EQ(conn->stats().srttSeconds, srttBefore);
}

}  // namespace
}  // namespace onelab::net::testlab
