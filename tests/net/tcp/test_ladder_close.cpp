// Ladder rung 9: connection teardown. Orderly close from either end,
// the simultaneous-close race (FINs crossing on the wire), a lost FIN
// earning its retransmission, and TIME-WAIT reaping for soak waves.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

TEST(TcpLadderClose, OrderlyCloseRunsTheFullLadder) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);
    bool peerClosedSeen = false, closedSeen = false;
    conn->onPeerClosed = [&] { peerClosedSeen = true; };
    conn->onClosed = [&] { closedSeen = true; };
    conn->onConnected = [&] {
        ASSERT_TRUE(conn->send(util::Bytes{'h', 'i'}).ok());
        conn->close();
    };

    h.run(1.0);
    // FIN sent after the payload drained; the auto-peer acked and
    // answered with its own FIN; the DUT sits in TIME-WAIT.
    EXPECT_TRUE(peerClosedSeen);
    EXPECT_TRUE(h.peer.finSeen);
    EXPECT_EQ(conn->state(), TcpState::time_wait);
    EXPECT_EQ(h.countSent(tcp_flag::fin), 1u);

    // 2 s of TIME-WAIT later the connection reaches CLOSED and can be
    // reaped — this is what lets soak waves rebind deterministically.
    h.run(3.0);
    EXPECT_TRUE(closedSeen);
    EXPECT_EQ(conn->state(), TcpState::closed);
    EXPECT_EQ(h.tcp().connectionCount(), 1u);
    EXPECT_EQ(h.tcp().reapClosed(), 1u);
    EXPECT_EQ(h.tcp().connectionCount(), 0u);
}

TEST(TcpLadderClose, PeerInitiatedCloseLandsInCloseWait) {
    TcpTestHarness h;
    h.peerClosesOnFin = false;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);
    bool peerClosedSeen = false;
    conn->onPeerClosed = [&] { peerClosedSeen = true; };

    h.run(0.5);
    ASSERT_TRUE(conn->isEstablished());
    h.peerClose();
    h.run(0.5);

    // Passive close half 1: FIN consumed, app told, our side still open.
    EXPECT_TRUE(peerClosedSeen);
    EXPECT_EQ(conn->state(), TcpState::close_wait);

    // Passive close half 2: our FIN, peer's ACK, straight to CLOSED
    // (no TIME-WAIT on the passive side).
    conn->close();
    h.run(1.0);
    EXPECT_EQ(conn->state(), TcpState::closed);
}

TEST(TcpLadderClose, SimultaneousCloseCrossingFins) {
    TcpTestHarness h;
    h.peerClosesOnFin = false;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    h.run(0.5);
    ASSERT_TRUE(conn->isEstablished());

    // Both ends close in the same instant: the FINs cross on the wire,
    // so each side sees the other's FIN before the ACK of its own —
    // the CLOSING state, not FIN-WAIT-2.
    conn->close();
    h.peerClose();
    h.run(0.2);  // in flight: both FINs
    h.run(3.5);  // ACKs exchanged + TIME-WAIT

    EXPECT_TRUE(h.peer.finSeen);
    EXPECT_EQ(conn->state(), TcpState::closed);
    EXPECT_EQ(h.countSent(tcp_flag::fin), 1u);
}

TEST(TcpLadderClose, LostFinIsRetransmitted) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    bool dropped = false;
    h.peerTap = [&](const Packet& p) {
        if (!dropped && p.tcp.has(tcp_flag::fin)) {
            dropped = true;
            return true;
        }
        return false;
    };
    conn->onConnected = [&] { conn->close(); };

    h.run(10.0);

    // The first FIN vanished; the RTO re-sent it and the close completed.
    EXPECT_TRUE(dropped);
    EXPECT_GE(h.countSent(tcp_flag::fin), 2u);
    EXPECT_TRUE(h.peer.finSeen);
    EXPECT_GE(conn->stats().timeouts, 1u);
    EXPECT_TRUE(conn->state() == TcpState::time_wait ||
                conn->state() == TcpState::closed);
}

TEST(TcpLadderClose, SendAfterCloseIsRejected) {
    TcpTestHarness h;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80);
    h.run(0.5);
    ASSERT_TRUE(conn->isEstablished());
    conn->close();
    EXPECT_FALSE(conn->send(util::Bytes{'x'}).ok());
}

}  // namespace
}  // namespace onelab::net::testlab
