// Ladder rung 1: connection establishment. Active open (DUT sends the
// SYN), passive open (DUT answers one), and the exact sequence numbers
// on every handshake segment.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

TEST(TcpLadderHandshake, ActiveOpenThreeWay) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.fixedIss = 1000;
    bool connected = false;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);
    ASSERT_NE(conn, nullptr);
    conn->onConnected = [&] { connected = true; };

    h.run(1.0);

    EXPECT_TRUE(connected);
    EXPECT_EQ(conn->state(), TcpState::established);
    EXPECT_TRUE(h.peer.established);

    // Wire trace: SYN, then the ACK completing the handshake.
    ASSERT_GE(h.sent.size(), 2u);
    const CapturedSegment& syn = h.sent[0];
    EXPECT_TRUE(syn.has(tcp_flag::syn));
    EXPECT_FALSE(syn.has(tcp_flag::ack));
    EXPECT_EQ(syn.seq(), Seq{1000});

    const CapturedSegment& ack = h.sent[1];
    EXPECT_TRUE(ack.has(tcp_flag::ack));
    EXPECT_FALSE(ack.has(tcp_flag::syn));
    EXPECT_EQ(ack.seq(), Seq{1001});          // SYN consumed one number
    EXPECT_EQ(ack.ack(), h.peer.iss + 1);     // peer's SYN acknowledged

    EXPECT_EQ(conn->sndNxt(), Seq{1001});
    EXPECT_EQ(conn->rcvNxt(), h.peer.iss + 1);
}

TEST(TcpLadderHandshake, PassiveOpenAnswersSyn) {
    TcpTestHarness h;
    TcpConnection* accepted = nullptr;
    TcpOptions opts;
    opts.fixedIss = 7000;
    ASSERT_TRUE(h.tcp().listen(80, [&](TcpConnection& c) { accepted = &c; }, 0, opts).ok());

    h.peerConnect(80);
    h.run(1.0);

    ASSERT_NE(accepted, nullptr);
    EXPECT_EQ(accepted->state(), TcpState::established);
    EXPECT_TRUE(h.peer.established);

    // DUT's first segment is the SYN-ACK: its own ISS, acking peer ISS+1.
    ASSERT_GE(h.sent.size(), 1u);
    const CapturedSegment& synAck = h.sent[0];
    EXPECT_TRUE(synAck.has(tcp_flag::syn));
    EXPECT_TRUE(synAck.has(tcp_flag::ack));
    EXPECT_EQ(synAck.seq(), Seq{7000});
    EXPECT_EQ(synAck.ack(), h.peer.iss + 1);
    EXPECT_EQ(accepted->rcvNxt(), h.peer.iss + 1);
}

TEST(TcpLadderHandshake, SynRetransmittedWhenLost) {
    TcpTestHarness h;
    // Swallow the first SYN; the connection must retry it on the RTO.
    bool dropped = false;
    h.peerTap = [&](const Packet& p) {
        if (!dropped && p.tcp.has(tcp_flag::syn)) {
            dropped = true;
            return true;
        }
        return false;
    };
    bool connected = false;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80);
    conn->onConnected = [&] { connected = true; };

    h.run(5.0);

    EXPECT_TRUE(connected);
    EXPECT_GE(h.countSent(tcp_flag::syn), 2u);
    EXPECT_GE(conn->stats().timeouts, 1u);
}

TEST(TcpLadderHandshake, StraySegmentGetsRst) {
    TcpTestHarness h;
    // No listener on port 9: a SYN there must be answered with RST.
    h.peerConnect(9);
    h.run(1.0);

    EXPECT_EQ(h.tcp().rstsSent(), 1u);
    ASSERT_GE(h.sent.size(), 1u);
    EXPECT_TRUE(h.sent[0].has(tcp_flag::rst));
    EXPECT_EQ(h.peer.rstsSeen, 1u);
}

}  // namespace
}  // namespace onelab::net::testlab
