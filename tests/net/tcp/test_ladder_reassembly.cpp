// Ladder rung 8: out-of-order reassembly. Scripted scrambles pin the
// dupack/merge behaviour segment by segment; a seeded mangler soak
// then proves byte accuracy under sustained loss+dup+reorder in both
// directions.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

util::Bytes filledBytes(std::size_t n, std::uint8_t seed) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = std::uint8_t(seed + i * 31);
    return data;
}

struct ReceiverRig {
    TcpTestHarness h;
    TcpConnection* conn = nullptr;
    util::Bytes delivered;

    explicit ReceiverRig(std::uint32_t dutIss = 7000) {
        TcpOptions opts;
        opts.fixedIss = dutIss;
        EXPECT_TRUE(h.tcp()
                        .listen(80,
                                [&](TcpConnection& c) {
                                    conn = &c;
                                    c.onData = [&](util::ByteView d) {
                                        delivered.insert(delivered.end(), d.begin(),
                                                         d.end());
                                    };
                                },
                                0, opts)
                        .ok());
        h.peerConnect(80);
        h.run(0.5);
        EXPECT_NE(conn, nullptr);
    }

    /// Inject one data segment at byte offset `off` of the peer stream.
    void sendChunk(const util::Bytes& data, std::size_t off, std::size_t len) {
        util::Bytes chunk{data.begin() + long(off), data.begin() + long(off + len)};
        h.injectNow(tcp_flag::ack | tcp_flag::psh, h.peer.sndNxt + std::uint32_t(off),
                    h.peer.rcvNxt, std::move(chunk));
    }
};

TEST(TcpLadderReassembly, ScrambledSegmentsDeliverInOrder) {
    ReceiverRig rig;
    const std::size_t kChunk = 1000;
    const util::Bytes data = filledBytes(5 * kChunk, 41);

    // Send C A E B D: every arrival before its predecessor must be
    // buffered, every fill must flush the run that became contiguous.
    for (std::size_t idx : {2u, 0u, 4u, 1u, 3u})
        rig.sendChunk(data, idx * kChunk, kChunk);
    rig.h.run(1.0);

    EXPECT_EQ(rig.delivered, data);
    EXPECT_EQ(rig.conn->stats().bytesReceived, data.size());
    // Each buffered hole re-acked the stuck in-order point: the trace
    // must contain back-to-back pure ACKs carrying the same ack number
    // (E arriving while the B hole was open repeats A's ack).
    std::size_t dupAcks = 0;
    std::optional<Seq> lastAck;
    for (const CapturedSegment& s : rig.h.sent) {
        if (!s.isPureAck()) continue;
        if (lastAck && s.ack() == *lastAck) ++dupAcks;
        lastAck = s.ack();
    }
    EXPECT_GE(dupAcks, 1u);
}

TEST(TcpLadderReassembly, DuplicateAndOverlappingSegmentsCountOnce) {
    ReceiverRig rig;
    const std::size_t kChunk = 1000;
    const util::Bytes data = filledBytes(3 * kChunk, 43);

    rig.sendChunk(data, 0, kChunk);
    rig.sendChunk(data, 0, kChunk);              // exact duplicate
    rig.sendChunk(data, 2 * kChunk, kChunk);     // future chunk
    rig.sendChunk(data, 2 * kChunk, kChunk);     // duplicate of the future chunk
    rig.sendChunk(data, 500, kChunk);            // overlaps delivered bytes
    rig.sendChunk(data, kChunk, kChunk);         // fills the hole
    rig.h.run(1.0);

    EXPECT_EQ(rig.delivered, data);  // exactly once, in order
    EXPECT_EQ(rig.conn->stats().bytesReceived, data.size());
}

TEST(TcpLadderReassembly, SeededManglerSoakIsByteAccurate) {
    // Sustained transfer through a hostile wire: 5% loss, 2% dup, 5%
    // reorder on data, plus 5% ack loss on the way back. Everything is
    // seeded, so the run (and any failure) replays exactly.
    TcpTestHarness h(/*seed=*/7);
    h.dutToPeer = {.lossProbability = 0.05,
                   .dupProbability = 0.02,
                   .reorderProbability = 0.05,
                   .corruptProbability = 0.01};
    h.peerToDut = {.lossProbability = 0.05};

    TcpOptions opts;
    opts.fixedIss = 0xFFFF8000;  // and cross the wrap while at it
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    const util::Bytes data = filledBytes(128 * 1024, 47);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };
    h.run(240.0);

    EXPECT_EQ(h.peerReceived, data);
    EXPECT_EQ(conn->stats().bytesAcked, data.size());
    EXPECT_GT(conn->stats().retransmissions, 0u);
    EXPECT_GT(h.dutSegmentsDropped + h.dutSegmentsCorrupted, 0u);
}

}  // namespace
}  // namespace onelab::net::testlab
