// Ladder rung 10: cross-CC differential. The same seeded wire script
// runs under Reno, NewReno, and CUBIC; all three must stay
// byte-accurate, and their behaviour must diverge exactly where the
// RFCs put the fork: partial-ACK handling and the multiplicative
// decrease factor. Run twice with the same seed, each CC must also be
// bit-for-bit deterministic.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

util::Bytes patternBytes(std::size_t n) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::uint8_t((i * 197) ^ (i >> 7));
    return data;
}

struct DiffResult {
    TcpStats stats;
    bool byteAccurate = false;
    double finishedAt = 0.0;
    std::vector<std::uint32_t> wireSeqs;  ///< every data seq, in tx order
};

DiffResult runOnMangledWire(CcAlgorithm cc, std::uint64_t seed) {
    TcpTestHarness h(seed);
    h.dutToPeer = {.lossProbability = 0.04, .dupProbability = 0.01,
                   .reorderProbability = 0.03};
    h.peerToDut = {.lossProbability = 0.03};

    TcpOptions opts;
    opts.congestion = cc;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);
    EXPECT_EQ(conn->congestion().algorithm(), cc);

    const util::Bytes data = patternBytes(96 * 1024);
    DiffResult r;
    conn->onConnected = [&] { EXPECT_TRUE(conn->send(data).ok()); };
    h.run(240.0);

    r.stats = conn->stats();
    r.byteAccurate = (h.peerReceived == data);
    r.finishedAt = sim::toSeconds(h.sim.now());
    for (const CapturedSegment& s : h.sent)
        if (s.isData()) r.wireSeqs.push_back(s.seq().value());
    return r;
}

TEST(TcpLadderDifferential, AllAlgorithmsAreByteAccurateUnderMangling) {
    for (CcAlgorithm cc :
         {CcAlgorithm::reno, CcAlgorithm::newreno, CcAlgorithm::cubic}) {
        const DiffResult r = runOnMangledWire(cc, 11);
        EXPECT_TRUE(r.byteAccurate) << ccName(cc);
        EXPECT_EQ(r.stats.bytesAcked, 96u * 1024u) << ccName(cc);
        EXPECT_GT(r.stats.retransmissions, 0u) << ccName(cc);
    }
}

TEST(TcpLadderDifferential, SameSeedSameWireTrace) {
    // Determinism leg: identical seed + CC must reproduce the exact
    // transmit sequence (this is what makes any ladder failure
    // replayable).
    for (CcAlgorithm cc :
         {CcAlgorithm::reno, CcAlgorithm::newreno, CcAlgorithm::cubic}) {
        const DiffResult a = runOnMangledWire(cc, 23);
        const DiffResult b = runOnMangledWire(cc, 23);
        EXPECT_EQ(a.wireSeqs, b.wireSeqs) << ccName(cc);
        EXPECT_EQ(a.stats.retransmissions, b.stats.retransmissions) << ccName(cc);
        EXPECT_DOUBLE_EQ(a.finishedAt, b.finishedAt) << ccName(cc);
    }
}

TEST(TcpLadderDifferential, AlgorithmsDivergeOnTheSameScript) {
    // Same seed, different CC: the transmit schedules must NOT all be
    // identical — the policies really are plugged in, not cosmetic.
    // (The scripted two-hole window in the fast-retransmit rung pins
    // WHERE Reno and NewReno fork; this rung only proves the plug-in
    // point is live end to end.)
    const DiffResult reno = runOnMangledWire(CcAlgorithm::reno, 11);
    const DiffResult newreno = runOnMangledWire(CcAlgorithm::newreno, 11);
    const DiffResult cubic = runOnMangledWire(CcAlgorithm::cubic, 11);
    EXPECT_NE(cubic.wireSeqs, reno.wireSeqs);
    EXPECT_NE(cubic.wireSeqs, newreno.wireSeqs);
}

}  // namespace
}  // namespace onelab::net::testlab
