// Ladder rungs 5 and 6: fast retransmit fires at exactly the third
// duplicate ACK (not the second), recovery exits back to ssthresh, and
// the Reno / NewReno partial-ACK split lands exactly where RFC 6582
// says it does on a two-hole window.

#include <gtest/gtest.h>

#include "tcp_test_harness.hpp"

namespace onelab::net::testlab {
namespace {

util::Bytes filledBytes(std::size_t n, std::uint8_t seed) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = std::uint8_t(seed + i * 11);
    return data;
}

struct RunResult {
    TcpStats stats;
    bool byteAccurate = false;
    std::size_t ssthreshAfterLoss = 0;
};

/// One bulk transfer with the Nth (1-based) data segment dropped, and
/// a second drop `alsoDrop` segments later when nonzero (two holes in
/// the same flight window).
RunResult runWithDrops(CcAlgorithm cc, int dropNth, int alsoDropNth = 0,
                       std::size_t totalBytes = 96 * 1024, double horizon = 60.0) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.congestion = cc;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    int dataSeen = 0;
    h.peerTap = [&](const Packet& p) {
        if (p.payload.empty()) return false;
        ++dataSeen;
        return dataSeen == dropNth || (alsoDropNth != 0 && dataSeen == alsoDropNth);
    };

    const util::Bytes data = filledBytes(totalBytes, 5);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };
    h.run(horizon);

    RunResult r;
    r.stats = conn->stats();
    r.byteAccurate = (h.peerReceived == data);
    r.ssthreshAfterLoss = conn->stats().ssthreshBytes;
    return r;
}

TEST(TcpLadderFastRetransmit, ThirdDupAckTriggersRecovery) {
    // Drop the 12th data segment: slow start has grown the window well
    // past 4 segments by then, so the hole collects >= 3 dupacks and
    // recovery must come from fast retransmit, never the RTO.
    const RunResult r = runWithDrops(CcAlgorithm::newreno, 12);
    EXPECT_TRUE(r.byteAccurate);
    EXPECT_EQ(r.stats.fastRetransmits, 1u);
    EXPECT_EQ(r.stats.timeouts, 0u);
    EXPECT_GE(r.stats.dupAcksSeen, 3u);
    EXPECT_GE(r.stats.retransmissions, 1u);
}

TEST(TcpLadderFastRetransmit, TwoDupAcksAreNotEnough) {
    // Drop the 2nd of only 4 segments: at most two dupacks can ever
    // arrive, which must NOT trip the threshold — the hole waits for
    // the RTO. This pins the threshold at 3 from below.
    const RunResult r =
        runWithDrops(CcAlgorithm::newreno, 2, 0, 4 * TcpConnection::kMss, 30.0);
    EXPECT_TRUE(r.byteAccurate);
    EXPECT_EQ(r.stats.fastRetransmits, 0u);
    EXPECT_GE(r.stats.timeouts, 1u);
    EXPECT_LE(r.stats.dupAcksSeen, 2u);
}

TEST(TcpLadderFastRetransmit, RecoveryExitRestoresSsthresh) {
    TcpTestHarness h;
    TcpOptions opts;
    opts.congestion = CcAlgorithm::newreno;
    opts.fixedIss = 100;
    TcpConnection* conn = h.tcp().connect(peerAddr(), 80, 0, {}, opts);

    int dataSeen = 0;
    h.peerTap = [&](const Packet& p) {
        if (p.payload.empty()) return false;
        return ++dataSeen == 12;
    };

    const util::Bytes data = filledBytes(96 * 1024, 5);
    conn->onConnected = [&] { ASSERT_TRUE(conn->send(data).ok()); };
    h.run(60.0);

    EXPECT_EQ(conn->stats().fastRetransmits, 1u);
    EXPECT_FALSE(conn->inFastRecovery());
    // ssthresh was cut from its 64 KB initial value to half the flight
    // at loss, and the window deflated back to it on recovery exit.
    EXPECT_LT(conn->stats().ssthreshBytes, 64u * 1024u);
    EXPECT_GE(conn->stats().ssthreshBytes, 2 * TcpConnection::kMss);
    EXPECT_GE(conn->stats().cwndBytes, conn->stats().ssthreshBytes);
}

TEST(TcpLadderFastRetransmit, NewRenoFillsSecondHoleWithoutTimeout) {
    // Two holes in one flight window. NewReno's partial ACK retransmits
    // the second hole immediately and stays in recovery: zero RTOs.
    const RunResult r = runWithDrops(CcAlgorithm::newreno, 12, 14);
    EXPECT_TRUE(r.byteAccurate);
    EXPECT_EQ(r.stats.timeouts, 0u);
    EXPECT_GE(r.stats.retransmissions, 2u);
}

TEST(TcpLadderFastRetransmit, RenoAbandonsRecoveryOnPartialAck) {
    // Same two-hole script under classic Reno: the first partial ACK
    // ends recovery, so the second hole needs a recovery episode of
    // its own — another full dupack threshold (a second fast
    // retransmit) or, when the dupack supply runs dry, the RTO. Either
    // way Reno pays twice where NewReno paid once; the differential IS
    // the RFC 6582 motivation, reproduced on the wire.
    const RunResult reno = runWithDrops(CcAlgorithm::reno, 12, 14);
    const RunResult newreno = runWithDrops(CcAlgorithm::newreno, 12, 14);
    EXPECT_TRUE(reno.byteAccurate);
    EXPECT_GE(reno.stats.fastRetransmits + reno.stats.timeouts, 2u);
    EXPECT_EQ(newreno.stats.fastRetransmits + newreno.stats.timeouts, 1u);
}

TEST(TcpLadderFastRetransmit, CubicCutsShallowerThanReno) {
    // Identical single-loss script: CUBIC's beta 0.7 must leave a
    // larger ssthresh than Reno's half-flight cut.
    const RunResult reno = runWithDrops(CcAlgorithm::reno, 12);
    const RunResult cubic = runWithDrops(CcAlgorithm::cubic, 12);
    EXPECT_TRUE(reno.byteAccurate);
    EXPECT_TRUE(cubic.byteAccurate);
    EXPECT_EQ(reno.stats.fastRetransmits, 1u);
    EXPECT_EQ(cubic.stats.fastRetransmits, 1u);
    EXPECT_GT(cubic.ssthreshAfterLoss, reno.ssthreshAfterLoss);
}

}  // namespace
}  // namespace onelab::net::testlab
