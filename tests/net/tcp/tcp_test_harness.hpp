#pragma once

// Scripted-segment harness for the TCP conformance ladder. One
// NetworkStack + TcpHost is the device under test; the harness plays
// the remote endpoint ("peer") by capturing every segment the DUT
// transmits and injecting hand-built or auto-generated replies, with
// seeded loss/dup/reorder/corrupt manglers on either direction. All
// timing rides the discrete-event simulator, so every rung is
// deterministic for a given seed.

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/internet.hpp"
#include "net/seq.hpp"
#include "net/tcp.hpp"
#include "sim/simulator.hpp"
#include "util/rand.hpp"

namespace onelab::net::testlab {

inline Ipv4Address dutAddr() { return Ipv4Address{10, 0, 0, 1}; }
inline Ipv4Address peerAddr() { return Ipv4Address{10, 0, 0, 2}; }

/// One segment the DUT put on the wire, with its transmit time.
struct CapturedSegment {
    sim::SimTime at{};
    Packet pkt;

    [[nodiscard]] bool has(std::uint8_t flag) const { return pkt.tcp.has(flag); }
    [[nodiscard]] Seq seq() const { return Seq{pkt.tcp.seq}; }
    [[nodiscard]] Seq ack() const { return Seq{pkt.tcp.ackNumber}; }
    [[nodiscard]] std::uint16_t window() const { return pkt.tcp.window; }
    [[nodiscard]] std::size_t payloadSize() const { return pkt.payload.size(); }
    [[nodiscard]] bool isData() const { return !pkt.payload.empty(); }
    [[nodiscard]] bool isPureAck() const {
        return pkt.payload.empty() && pkt.tcp.flags == tcp_flag::ack;
    }
};

/// Seeded segment mangling for one direction of the wire.
struct MangleConfig {
    double lossProbability = 0.0;
    double dupProbability = 0.0;
    double reorderProbability = 0.0;  ///< hold a segment so the next passes it
    double corruptProbability = 0.0;  ///< payload bit flip -> checksum drop
};

class TcpTestHarness {
  public:
    explicit TcpTestHarness(std::uint64_t seed = 1)
        : rng_(seed),
          dutToPeerRng_(rng_.derive("dut->peer")),
          peerToDutRng_(rng_.derive("peer->dut")) {
        stack_ = std::make_unique<NetworkStack>(sim, "dut");
        eth_ = &stack_->addInterface("eth0");
        eth_->setAddress(dutAddr());
        eth_->setUp(true);
        eth_->setTxHandler([this](Packet pkt) { onDutTransmit(std::move(pkt)); });
        stack_->router()
            .table(PolicyRouter::kMainTable)
            .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
        tcp_ = std::make_unique<TcpHost>(sim, *stack_, rng_.derive("dut-tcp"));
    }

    sim::Simulator sim;

    [[nodiscard]] TcpHost& tcp() { return *tcp_; }
    [[nodiscard]] NetworkStack& stack() { return *stack_; }

    // ------------------------------------------------------ wire knobs
    double oneWayDelaySeconds = 0.010;  ///< each direction
    MangleConfig dutToPeer;             ///< applied before the peer sees it
    MangleConfig peerToDut;             ///< applied to injected segments

    /// Pre-peer tap on (post-mangle) DUT segments. Return true to
    /// consume the segment — the auto-peer never sees it.
    std::function<bool(const Packet&)> peerTap;

    /// When false the auto-peer is inert: only `peerTap` and explicit
    /// inject() calls talk back to the DUT.
    bool autoRespond = true;

    // -------------------------------------------------- auto-peer state
    struct PeerState {
        Seq iss{5000};
        Seq sndNxt{5000};
        Seq rcvNxt{};
        bool synSeen = false;
        bool established = false;
        bool finSeen = false;          ///< DUT's FIN consumed
        bool finSent = false;
        Seq finSeq{};
        std::uint64_t acksSent = 0;
        std::uint64_t rstsSeen = 0;
        std::map<Seq, util::Bytes, SeqLess> outOfOrder;
    };
    PeerState peer;

    /// Window the auto-peer advertises (tests shrink this to 0 for the
    /// zero-window rung, then re-open it).
    std::uint32_t peerWindow = 65535;
    /// Echo FIN when the DUT closes (orderly close from the peer side).
    bool peerClosesOnFin = true;
    /// Bytes the auto-peer accepted in order (byte-accuracy checks).
    util::Bytes peerReceived;

    // ----------------------------------------------------- capture log
    std::vector<CapturedSegment> sent;      ///< every DUT segment (pre-mangle)
    std::uint64_t dutSegmentsDropped = 0;   ///< by the loss mangler
    std::uint64_t dutSegmentsCorrupted = 0; ///< by the corrupt mangler

    [[nodiscard]] std::size_t countSent(std::uint8_t flag) const {
        std::size_t n = 0;
        for (const auto& s : sent)
            if (s.has(flag)) ++n;
        return n;
    }
    /// Data segments (or probes) covering `seq` more than once.
    [[nodiscard]] std::size_t transmissionsOf(Seq seq) const {
        std::size_t n = 0;
        for (const auto& s : sent)
            if (s.isData() && seq.inWindow(s.seq(), std::uint32_t(s.payloadSize()))) ++n;
        return n;
    }

    // ------------------------------------------------------- injection
    /// Build a segment from the peer to the DUT (ports default to the
    /// active DUT connection's).
    [[nodiscard]] Packet makePeerSegment(std::uint8_t flags, Seq seq, Seq ack,
                                         util::Bytes payload = {},
                                         std::optional<std::uint32_t> window = {}) {
        TcpHeader header;
        header.srcPort = peerPort_;
        header.dstPort = dutPort_;
        header.flags = flags;
        header.seq = seq.value();
        header.ackNumber = ack.value();
        header.window = std::uint16_t(window.value_or(peerWindow));
        Packet pkt = makeTcpSegment(peerAddr(), peerPort_, dutAddr(), dutPort_, header,
                                    std::move(payload));
        return pkt;
    }

    /// Schedule delivery of a peer segment to the DUT after the one-way
    /// delay (mangled per `peerToDut`).
    void inject(Packet pkt) { scheduleDelivery(std::move(pkt), peerToDutRng_, peerToDut); }

    void injectNow(std::uint8_t flags, Seq seq, Seq ack, util::Bytes payload = {},
                   std::optional<std::uint32_t> window = {}) {
        inject(makePeerSegment(flags, seq, ack, std::move(payload), window));
    }

    /// Peer-side send of application data to the DUT (no
    /// retransmission — the scripts drive loss explicitly).
    void peerSend(util::ByteView data) {
        util::Bytes payload{data.begin(), data.end()};
        injectNow(tcp_flag::ack | tcp_flag::psh, peer.sndNxt, peer.rcvNxt,
                  std::move(payload));
        peer.sndNxt += std::uint32_t(data.size());
    }

    /// Peer-side orderly close.
    void peerClose() {
        if (peer.finSent) return;
        peer.finSent = true;
        peer.finSeq = peer.sndNxt;
        injectNow(tcp_flag::fin | tcp_flag::ack, peer.sndNxt, peer.rcvNxt);
        peer.sndNxt += 1;
    }

    /// Peer-initiated connect (DUT must be listening). The auto-peer
    /// completes the handshake when the SYN-ACK comes back.
    void peerConnect(std::uint16_t dutPort, std::uint16_t fromPort = 39000) {
        dutPort_ = dutPort;
        peerPort_ = fromPort;
        peerActiveOpen_ = true;
        injectNow(tcp_flag::syn, peer.iss, Seq{0});
        peer.sndNxt = peer.iss + 1;
    }

    // ------------------------------------------------------------- run
    void run(double seconds) { sim.runUntil(sim.now() + sim::seconds(seconds)); }

    [[nodiscard]] std::uint16_t dutPort() const { return dutPort_; }
    [[nodiscard]] std::uint16_t peerPort() const { return peerPort_; }

  private:
    void onDutTransmit(Packet pkt) {
        sent.push_back({sim.now(), pkt});
        dutPort_ = pkt.tcp.srcPort;
        peerPort_ = pkt.tcp.dstPort;
        scheduleDelivery(std::move(pkt), dutToPeerRng_, dutToPeer, /*toPeer=*/true);
    }

    void scheduleDelivery(Packet pkt, util::RandomStream& rng, const MangleConfig& m,
                          bool toPeer = false) {
        if (m.lossProbability > 0.0 && rng.chance(m.lossProbability)) {
            if (toPeer) ++dutSegmentsDropped;
            return;
        }
        if (m.corruptProbability > 0.0 && !pkt.payload.empty() &&
            rng.chance(m.corruptProbability)) {
            // A flipped payload byte fails the checksum at the
            // receiver, which discards silently — corruption is loss
            // with extra steps, but it exercises the drop path with a
            // distinct accounting trail.
            if (toPeer) ++dutSegmentsCorrupted;
            return;
        }
        double delay = oneWayDelaySeconds;
        if (m.reorderProbability > 0.0 && rng.chance(m.reorderProbability))
            delay += 2.5 * oneWayDelaySeconds;  // lands behind the next segment
        const bool duplicate = m.dupProbability > 0.0 && rng.chance(m.dupProbability);
        deliverAfter(pkt, delay, toPeer);
        if (duplicate) deliverAfter(std::move(pkt), delay + 0.5 * oneWayDelaySeconds, toPeer);
    }

    void deliverAfter(Packet pkt, double delay, bool toPeer) {
        sim.schedule(sim::seconds(delay), [this, pkt = std::move(pkt), toPeer]() mutable {
            if (toPeer)
                peerReceive(std::move(pkt));
            else
                eth_->deliver(std::move(pkt));
        });
    }

    // Minimal deterministic receiver/acker automaton.
    void peerReceive(Packet pkt) {
        if (peerTap && peerTap(pkt)) return;
        if (!autoRespond) return;

        if (pkt.tcp.has(tcp_flag::rst)) {
            ++peer.rstsSeen;
            return;
        }

        const Seq seq{pkt.tcp.seq};

        if (pkt.tcp.has(tcp_flag::syn) && !pkt.tcp.has(tcp_flag::ack)) {
            // DUT active open: answer SYN-ACK.
            peer.synSeen = true;
            peer.rcvNxt = seq + 1;
            injectNow(tcp_flag::syn | tcp_flag::ack, peer.iss, peer.rcvNxt);
            peer.sndNxt = peer.iss + 1;
            return;
        }
        if (pkt.tcp.has(tcp_flag::syn) && pkt.tcp.has(tcp_flag::ack)) {
            // DUT answered our active open.
            peer.synSeen = true;
            peer.rcvNxt = seq + 1;
            peer.established = true;
            injectNow(tcp_flag::ack, peer.sndNxt, peer.rcvNxt);
            return;
        }

        if (!peer.established && pkt.tcp.has(tcp_flag::ack) && peer.synSeen)
            peer.established = true;  // third step of the handshake

        bool shouldAck = false;

        if (!pkt.payload.empty()) {
            const Seq segEnd = seq + std::uint32_t(pkt.payload.size());
            if (peer.rcvNxt >= segEnd) {
                shouldAck = true;  // entirely old
            } else if (seq <= peer.rcvNxt) {
                const std::size_t skip = std::size_t(peer.rcvNxt - seq);
                const std::size_t room = peerWindow;  // accept up to window
                const std::size_t take =
                    std::min(pkt.payload.size() - skip, room);
                peerReceived.insert(peerReceived.end(),
                                    pkt.payload.begin() + long(skip),
                                    pkt.payload.begin() + long(skip + take));
                peer.rcvNxt += std::uint32_t(take);
                mergePeerOutOfOrder();
                shouldAck = true;
            } else {
                if (!peer.outOfOrder.count(seq)) peer.outOfOrder.emplace(seq, pkt.payload);
                shouldAck = true;  // duplicate ACK for the hole
            }
        }

        if (pkt.tcp.has(tcp_flag::fin)) {
            const Seq finSeq = seq + std::uint32_t(pkt.payload.size());
            if (finSeq == peer.rcvNxt && !peer.finSeen) {
                peer.finSeen = true;
                peer.rcvNxt = finSeq + 1;
                shouldAck = true;
                if (peerClosesOnFin && !peer.finSent) {
                    ++peer.acksSent;
                    injectNow(tcp_flag::ack, peer.sndNxt, peer.rcvNxt);
                    peerClose();
                    return;
                }
            } else if (peer.rcvNxt > finSeq) {
                shouldAck = true;  // duplicate FIN
            }
        }

        if (shouldAck) {
            ++peer.acksSent;
            injectNow(tcp_flag::ack, peer.sndNxt, peer.rcvNxt);
        }
    }

    void mergePeerOutOfOrder() {
        while (!peer.outOfOrder.empty()) {
            const auto it = peer.outOfOrder.begin();
            const Seq segEnd = it->first + std::uint32_t(it->second.size());
            if (segEnd <= peer.rcvNxt) {
                peer.outOfOrder.erase(it);
                continue;
            }
            if (it->first > peer.rcvNxt) break;
            const std::size_t skip = std::size_t(peer.rcvNxt - it->first);
            peerReceived.insert(peerReceived.end(), it->second.begin() + long(skip),
                                it->second.end());
            peer.rcvNxt = segEnd;
            peer.outOfOrder.erase(it);
        }
    }

    util::RandomStream rng_;
    util::RandomStream dutToPeerRng_;
    util::RandomStream peerToDutRng_;
    std::unique_ptr<NetworkStack> stack_;
    std::unique_ptr<TcpHost> tcp_;
    Interface* eth_ = nullptr;
    std::uint16_t dutPort_ = 0;
    std::uint16_t peerPort_ = 39000;
    bool peerActiveOpen_ = false;
};

}  // namespace onelab::net::testlab
