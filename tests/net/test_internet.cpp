#include "net/internet.hpp"

#include <gtest/gtest.h>

#include "net/stack.hpp"

namespace onelab::net {
namespace {

struct InternetTest : ::testing::Test {
    InternetTest() : internet(sim, util::RandomStream{7}) {}

    NetworkStack& makeHost(const std::string& name, Ipv4Address addr,
                           AccessLink link = AccessLink{}) {
        hosts.push_back(std::make_unique<NetworkStack>(sim, name));
        NetworkStack& host = *hosts.back();
        Interface& eth = host.addInterface("eth0");
        eth.setAddress(addr);
        eth.setUp(true);
        internet.attach(eth, link);
        host.router().table(PolicyRouter::kMainTable)
            .addRoute({Prefix::any(), "eth0", std::nullopt, 0});
        return host;
    }

    sim::Simulator sim;
    Internet internet;
    std::vector<std::unique_ptr<NetworkStack>> hosts;
};

TEST_F(InternetTest, DeliversBetweenAttachments) {
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    NetworkStack& b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    auto rx = b.openUdp(0, 9000);
    int got = 0;
    rx.value()->onReceive([&](Datagram) { ++got; });
    auto tx = a.openUdp(0);
    (void)tx.value()->sendTo(Ipv4Address{10, 0, 0, 2}, 9000, util::Bytes{1});
    sim.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(internet.deliveredPackets(), 1u);
}

TEST_F(InternetTest, TransitDelayApplies) {
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    NetworkStack& b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    internet.setTransitDelay(*a.findInterface("eth0"), *b.findInterface("eth0"),
                             sim::millis(25));
    auto rx = b.openUdp(0, 9000);
    sim::SimTime arrival{};
    rx.value()->onReceive([&](Datagram d) { arrival = d.rxTime; });
    auto tx = a.openUdp(0);
    (void)tx.value()->sendTo(Ipv4Address{10, 0, 0, 2}, 9000, util::Bytes{1});
    sim.run();
    EXPECT_GE(arrival, sim::millis(25));
    EXPECT_LT(arrival, sim::millis(30));
}

TEST_F(InternetTest, UnroutableDestinationCounted) {
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    auto tx = a.openUdp(0);
    (void)tx.value()->sendTo(Ipv4Address{99, 99, 99, 99}, 1, util::Bytes{1});
    sim.run();
    EXPECT_EQ(internet.unroutablePackets(), 1u);
}

TEST_F(InternetTest, AnnouncedPrefixRoutesToGateway) {
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    NetworkStack& gw = makeHost("gw", Ipv4Address{93, 57, 0, 1});
    internet.announcePrefix(Prefix{Ipv4Address{93, 57, 0, 0}, 16},
                            *gw.findInterface("eth0"));
    int arrived = 0;
    gw.setSniffer([&](const Packet& pkt, const std::string&) {
        EXPECT_EQ(pkt.ip.dst, (Ipv4Address{93, 57, 0, 42}));
        ++arrived;
    });
    auto tx = a.openUdp(0);
    (void)tx.value()->sendTo(Ipv4Address{93, 57, 0, 42}, 1, util::Bytes{1});
    sim.run();
    EXPECT_EQ(arrived, 1);
}

TEST_F(InternetTest, LongestAnnouncedPrefixWins) {
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    NetworkStack& coarse = makeHost("coarse", Ipv4Address{172, 16, 0, 1});
    NetworkStack& fine = makeHost("fine", Ipv4Address{172, 16, 0, 2});
    internet.announcePrefix(Prefix{Ipv4Address{93, 0, 0, 0}, 8}, *coarse.findInterface("eth0"));
    internet.announcePrefix(Prefix{Ipv4Address{93, 57, 0, 0}, 16}, *fine.findInterface("eth0"));
    int fineHits = 0;
    fine.setSniffer([&](const Packet&, const std::string&) { ++fineHits; });
    auto tx = a.openUdp(0);
    (void)tx.value()->sendTo(Ipv4Address{93, 57, 1, 1}, 1, util::Bytes{1});
    sim.run();
    EXPECT_EQ(fineHits, 1);
}

TEST_F(InternetTest, LossProbabilityDropsEverythingAtOne) {
    AccessLink lossy;
    lossy.lossProbability = 1.0;
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1}, lossy);
    makeHost("b", Ipv4Address{10, 0, 0, 2});
    auto tx = a.openUdp(0);
    for (int i = 0; i < 10; ++i)
        (void)tx.value()->sendTo(Ipv4Address{10, 0, 0, 2}, 9000, util::Bytes{1});
    sim.run();
    EXPECT_EQ(internet.lostPackets(), 10u);
    EXPECT_EQ(internet.deliveredPackets(), 0u);
}

TEST_F(InternetTest, FifoOrderDespiteJitter) {
    AccessLink jittery;
    jittery.jitterStddevMillis = 5.0;
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1}, jittery);
    NetworkStack& b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    auto rx = b.openUdp(0, 9000);
    std::vector<std::uint8_t> order;
    rx.value()->onReceive([&](Datagram d) { order.push_back(d.payload.at(0)); });
    auto tx = a.openUdp(0);
    for (std::uint8_t i = 0; i < 50; ++i) {
        (void)tx.value()->sendTo(Ipv4Address{10, 0, 0, 2}, 9000, util::Bytes{i});
        sim.runUntil(sim.now() + sim::micros(100));
    }
    sim.run();
    ASSERT_EQ(order.size(), 50u);
    for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(InternetTest, EgressQueueLimitsDropTail) {
    AccessLink slow;
    slow.rateBitsPerSecond = 8000.0;  // 1 kB/s
    slow.queueBytes = 300;
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1}, slow);
    NetworkStack& b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    auto rx = b.openUdp(0, 9000);
    int got = 0;
    rx.value()->onReceive([&](Datagram) { ++got; });
    auto tx = a.openUdp(0);
    // 10 x 128-byte datagrams exceed the 300-byte egress buffer.
    for (int i = 0; i < 10; ++i)
        (void)tx.value()->sendTo(Ipv4Address{10, 0, 0, 2}, 9000, util::Bytes(100, 0));
    sim.run();
    EXPECT_GT(got, 0);
    EXPECT_LT(got, 10);
}

TEST_F(InternetTest, DetachStopsDelivery) {
    NetworkStack& a = makeHost("a", Ipv4Address{10, 0, 0, 1});
    NetworkStack& b = makeHost("b", Ipv4Address{10, 0, 0, 2});
    auto rx = b.openUdp(0, 9000);
    int got = 0;
    rx.value()->onReceive([&](Datagram) { ++got; });
    auto tx = a.openUdp(0);
    (void)tx.value()->sendTo(Ipv4Address{10, 0, 0, 2}, 9000, util::Bytes{1});
    internet.detach(*b.findInterface("eth0"));  // before delivery fires
    sim.run();
    EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace onelab::net
