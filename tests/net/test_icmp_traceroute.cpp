#include <gtest/gtest.h>

#include "net/traceroute.hpp"
#include "scenario/testbed.hpp"

namespace onelab::net {
namespace {

TEST(IcmpError, PayloadEmbedsOffendingDatagram) {
    const Packet offending = makeUdpPacket(Ipv4Address{10, 0, 0, 1}, 40001,
                                           Ipv4Address{10, 0, 0, 2}, 33435,
                                           util::Bytes(64, 0xaa));
    const Packet error =
        makeIcmpError(Ipv4Address{10, 0, 0, 254}, icmp_type::time_exceeded, 0, offending);
    EXPECT_EQ(error.ip.dst, offending.ip.src);
    EXPECT_EQ(error.ip.src, (Ipv4Address{10, 0, 0, 254}));
    EXPECT_EQ(error.payload.size(), 28u);  // IP header + 8 bytes of UDP

    const auto embedded = parseIcmpErrorPayload({error.payload.data(), error.payload.size()});
    ASSERT_TRUE(embedded.ok());
    EXPECT_EQ(embedded.value().src, offending.ip.src);
    EXPECT_EQ(embedded.value().dst, offending.ip.dst);
    EXPECT_EQ(embedded.value().protocol, IpProto::udp);
    EXPECT_EQ(embedded.value().srcPort, 40001);
    EXPECT_EQ(embedded.value().dstPort, 33435);
}

TEST(IcmpError, ParseRejectsGarbage) {
    EXPECT_FALSE(parseIcmpErrorPayload({}).ok());
    const util::Bytes junk(10, 0x60);  // version 6 nibble
    EXPECT_FALSE(parseIcmpErrorPayload({junk.data(), junk.size()}).ok());
}

TEST(IcmpError, ErrorSurvivesSerialization) {
    const Packet offending = makeUdpPacket(Ipv4Address{1, 1, 1, 1}, 1000,
                                           Ipv4Address{2, 2, 2, 2}, 2000, util::Bytes(20, 0));
    const Packet error =
        makeIcmpError(Ipv4Address{3, 3, 3, 3}, icmp_type::dest_unreachable, 3, offending);
    const util::Bytes wire = error.serialize();
    const auto parsed = Packet::parse({wire.data(), wire.size()});
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().icmp.type, icmp_type::dest_unreachable);
    EXPECT_EQ(parsed.value().icmp.code, 3);
    const auto embedded = parseIcmpErrorPayload(
        {parsed.value().payload.data(), parsed.value().payload.size()});
    ASSERT_TRUE(embedded.ok());
    EXPECT_EQ(embedded.value().dstPort, 2000);
}

TEST(IcmpError, PortUnreachableGeneratedOnClosedPort) {
    scenario::Testbed tb;
    int errors = 0;
    std::uint8_t lastType = 0;
    tb.napoli().stack().setIcmpErrorHandler([&](const Packet& pkt) {
        ++errors;
        lastType = pkt.icmp.type;
    });
    auto socket = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(socket->sendTo(tb.inriaEthAddress(), 44444, util::Bytes{1}).ok());
    tb.sim().runUntil(sim::seconds(1.0));
    EXPECT_EQ(errors, 1);
    EXPECT_EQ(lastType, icmp_type::dest_unreachable);
}

TEST(IcmpError, SuppressedWhenDisabled) {
    scenario::Testbed tb;
    tb.inria().stack().setIcmpErrorsEnabled(false);
    int errors = 0;
    tb.napoli().stack().setIcmpErrorHandler([&](const Packet&) { ++errors; });
    auto socket = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(socket->sendTo(tb.inriaEthAddress(), 44444, util::Bytes{1}).ok());
    tb.sim().runUntil(sim::seconds(1.0));
    EXPECT_EQ(errors, 0);
}

TEST(Traceroute, EthernetPathIsOneHop) {
    scenario::Testbed tb;
    Traceroute traceroute{tb.sim(), tb.napoli().stack()};
    std::optional<std::vector<TracerouteHop>> hops;
    traceroute.run(tb.inriaEthAddress(),
                   [&](std::vector<TracerouteHop> h) { hops = std::move(h); });
    tb.sim().runUntil(sim::seconds(10.0));
    ASSERT_TRUE(hops.has_value());
    ASSERT_EQ(hops->size(), 1u);
    EXPECT_TRUE(hops->at(0).reachedDestination);
    EXPECT_EQ(hops->at(0).router, tb.inriaEthAddress());
    EXPECT_GT(sim::toMillis(hops->at(0).rtt), 15.0);
}

TEST(Traceroute, UmtsPathShowsGgsnThenDestination) {
    scenario::Testbed tb;
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());

    Traceroute traceroute{tb.sim(), tb.napoli().stack()};
    TracerouteOptions options;
    options.sliceXid = tb.umtsSlice().xid;  // marked -> rides ppp0
    std::optional<std::vector<TracerouteHop>> hops;
    traceroute.run(tb.inriaEthAddress(),
                   [&](std::vector<TracerouteHop> h) { hops = std::move(h); }, options);
    tb.sim().runUntil(tb.sim().now() + sim::seconds(30.0));
    ASSERT_TRUE(hops.has_value());
    ASSERT_EQ(hops->size(), 2u);
    // Hop 1: the GGSN (time exceeded), across the radio.
    EXPECT_FALSE(hops->at(0).reachedDestination);
    EXPECT_EQ(hops->at(0).router, tb.operatorNetwork().profile().ggsnAddress);
    EXPECT_GT(sim::toMillis(hops->at(0).rtt), 100.0);
    // Hop 2: INRIA (port unreachable, RELATED-admitted through the
    // operator firewall).
    EXPECT_TRUE(hops->at(1).reachedDestination);
    EXPECT_EQ(hops->at(1).router, tb.inriaEthAddress());
    EXPECT_GT(hops->at(1).rtt, hops->at(0).rtt / 2);
}

TEST(Traceroute, UnroutableDestinationTimesOut) {
    scenario::Testbed tb;
    Traceroute traceroute{tb.sim(), tb.napoli().stack()};
    TracerouteOptions options;
    options.maxHops = 2;
    options.probeTimeout = sim::seconds(1.0);
    std::optional<std::vector<TracerouteHop>> hops;
    traceroute.run(Ipv4Address{203, 0, 113, 99},
                   [&](std::vector<TracerouteHop> h) { hops = std::move(h); }, options);
    tb.sim().runUntil(sim::seconds(10.0));
    ASSERT_TRUE(hops.has_value());
    ASSERT_EQ(hops->size(), 2u);
    EXPECT_TRUE(hops->at(0).timedOut);
    EXPECT_TRUE(hops->at(1).timedOut);
}

}  // namespace
}  // namespace onelab::net
