#include "adversary/adversary.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "obs/telemetry.hpp"

namespace onelab::adversary {
namespace {

TEST(AdversaryKinds, NamesRoundTrip) {
    for (std::size_t i = 0; i < kPersonalityKindCount; ++i) {
        const auto kind = PersonalityKind(i);
        const char* name = kindName(kind);
        ASSERT_NE(name, nullptr);
        const auto parsed = kindFromName(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(kindFromName("warp_core_breach").has_value());
    EXPECT_FALSE(kindFromName("").has_value());
}

struct AdversaryDriverTest : ::testing::Test {
    AdversaryDriverTest() {
        obs::beginRun();
        scenario::FleetConfig config = scenario::makeUniformFleet(2, 7);
        fleet.emplace(config);
        const auto started = fleet->startAll();
        EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error().message);
    }

    AdversaryConfig window(PersonalityKind kind, double startS, double durationS) {
        AdversaryConfig config;
        config.kind = kind;
        config.site = 1;  // site 0 stays the victim
        config.start = fleet->now() + sim::seconds(startS);
        config.duration = sim::seconds(durationS);
        config.seed = 11;
        return config;
    }

    std::optional<scenario::Fleet> fleet;
};

TEST_F(AdversaryDriverTest, FlooderActsInsideItsWindowOnly) {
    AdversaryDriver driver{*fleet, {window(PersonalityKind::fifo_flooder, 1.0, 3.0)}};
    driver.arm();
    // Before the window opens: no actions.
    fleet->runFor(sim::seconds(0.5));
    EXPECT_EQ(driver.totals().actions, 0u);
    // Through the window and past its end.
    fleet->runFor(sim::seconds(5.0));
    const AttackerStats during = driver.totals();
    EXPECT_GT(during.actions, 0u);
    // After the window closed nothing further fires.
    fleet->runFor(sim::seconds(3.0));
    EXPECT_EQ(driver.totals().actions, during.actions);
}

TEST_F(AdversaryDriverTest, RearmIsANoOpAndCancelIsIdempotent) {
    AdversaryDriver driver{*fleet, {window(PersonalityKind::fifo_flooder, 0.5, 10.0)}};
    driver.arm();
    driver.arm();  // second arm must not double-schedule
    fleet->runFor(sim::seconds(2.0));
    const std::size_t actions = driver.totals().actions;
    EXPECT_GT(actions, 0u);
    driver.cancelAll();
    driver.cancelAll();
    fleet->runFor(sim::seconds(2.0));
    EXPECT_EQ(driver.totals().actions, actions);
}

TEST_F(AdversaryDriverTest, GreedyUeFlagFollowsTheWindow) {
    AdversaryDriver driver{*fleet, {window(PersonalityKind::greedy_ue, 0.5, 3.0)}};
    driver.arm();
    fleet->runFor(sim::seconds(1.5));  // inside the window
    umts::UmtsSession* session = nullptr;
    for (std::size_t k = 0; k < fleet->operatorNetwork().activeSessions(); ++k) {
        umts::UmtsSession* candidate = fleet->operatorNetwork().sessionAt(k);
        if (candidate && candidate->imsi() == fleet->umtsSite(1).imsi()) session = candidate;
    }
    ASSERT_NE(session, nullptr);
    EXPECT_TRUE(session->bearer().greedy());
    fleet->runFor(sim::seconds(3.0));  // window closed
    EXPECT_FALSE(session->bearer().greedy());
}

TEST_F(AdversaryDriverTest, MissedWindowIsSkippedAtArmTime) {
    AdversaryConfig past = window(PersonalityKind::fifo_flooder, 0.0, 1.0);
    past.start = sim::SimTime{0};  // already behind the fleet clock
    AdversaryDriver driver{*fleet, {past}};
    driver.arm();
    fleet->runFor(sim::seconds(2.0));
    EXPECT_EQ(driver.totals().actions, 0u);
}

TEST_F(AdversaryDriverTest, FleetTeardownBeforeDriverIsSafe) {
    auto driver = std::make_unique<AdversaryDriver>(
        *fleet, std::vector<AdversaryConfig>{window(PersonalityKind::fifo_flooder, 0.5, 30.0)});
    driver->arm();
    fleet->runFor(sim::seconds(1.0));
    EXPECT_GT(driver->totals().actions, 0u);
    // The fleet dies with the attack window still open: the teardown
    // hook must cancel every pending tick before sites are destroyed,
    // and the driver must outlive the fleet without dangling.
    fleet.reset();
    driver->cancelAll();  // idempotent after teardown
    driver.reset();
}

TEST_F(AdversaryDriverTest, DriverDestroyedMidWindowCancelsItsTicks) {
    {
        AdversaryDriver driver{*fleet,
                               {window(PersonalityKind::fifo_flooder, 0.5, 30.0)}};
        driver.arm();
        fleet->runFor(sim::seconds(1.0));
    }
    // The driver is gone; its scheduled ticks must not fire into
    // freed memory while the fleet keeps running.
    fleet->runFor(sim::seconds(3.0));
}

}  // namespace
}  // namespace onelab::adversary
