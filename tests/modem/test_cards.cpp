#include "modem/cards.hpp"

#include <gtest/gtest.h>

#include "net/internet.hpp"

namespace onelab::modem {
namespace {

struct CardsTest : ::testing::Test {
    CardsTest()
        : internet(sim, util::RandomStream{3}),
          network(sim, internet, umts::commercialItalianOperator(), util::RandomStream{4}),
          pipe(sim) {}

    void attach(UmtsModem& modem) {
        modem.attachTty(pipe.b());
        pipe.a().onData([this](util::ByteView data) {
            received.append(data.begin(), data.end());
        });
    }

    std::string command(const std::string& line, double waitSeconds = 0.1) {
        received.clear();
        const std::string wire = line + "\r";
        pipe.a().write({reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()});
        sim.runUntil(sim.now() + sim::seconds(waitSeconds));
        return received;
    }

    sim::Simulator sim;
    net::Internet internet;
    umts::UmtsNetwork network;
    sim::Pipe pipe;
    std::string received;
};

TEST_F(CardsTest, GlobetrotterIdentity) {
    GlobetrotterModem modem{sim, &network, {}};
    attach(modem);
    EXPECT_NE(command("AT+CGMI").find("Option N.V."), std::string::npos);
    EXPECT_NE(command("AT+CGMM").find("GlobeTrotter"), std::string::npos);
}

TEST_F(CardsTest, GlobetrotterOpsysQuirk) {
    GlobetrotterModem modem{sim, &network, {}};
    attach(modem);
    EXPECT_EQ(modem.opsys(), 3);  // factory default: prefer 3G
    EXPECT_NE(command("AT_OPSYS?").find("_OPSYS: 3,2"), std::string::npos);
    EXPECT_NE(command("AT_OPSYS=1,2").find("OK"), std::string::npos);
    EXPECT_EQ(modem.opsys(), 1);
    EXPECT_NE(command("AT_OPSYS=9").find("ERROR"), std::string::npos);
    EXPECT_EQ(modem.opsys(), 1);
}

TEST_F(CardsTest, GlobetrotterCfunStub) {
    GlobetrotterModem modem{sim, &network, {}};
    attach(modem);
    EXPECT_NE(command("AT+CFUN=1").find("OK"), std::string::npos);
}

TEST_F(CardsTest, HuaweiIdentityAndSyscfg) {
    HuaweiE620Modem modem{sim, &network, {}};
    attach(modem);
    EXPECT_NE(command("AT+CGMI").find("huawei"), std::string::npos);
    EXPECT_NE(command("AT^SYSCFG=2,2,3FFFFFFF,1,2").find("OK"), std::string::npos);
}

TEST_F(CardsTest, HuaweiRssiChatterAndCurc) {
    HuaweiE620Modem modem{sim, &network, {}};
    attach(modem);
    EXPECT_TRUE(modem.unsolicitedReportsEnabled());
    sim.runUntil(sim.now() + sim::seconds(12.0));  // registered + two ^RSSI periods
    EXPECT_NE(received.find("^RSSI:"), std::string::npos);

    EXPECT_NE(command("AT^CURC=0").find("OK"), std::string::npos);
    EXPECT_FALSE(modem.unsolicitedReportsEnabled());
    received.clear();
    sim.runUntil(sim.now() + sim::seconds(12.0));
    EXPECT_EQ(received.find("^RSSI:"), std::string::npos);
}

TEST_F(CardsTest, HuaweiCurcQuery) {
    HuaweiE620Modem modem{sim, &network, {}};
    attach(modem);
    EXPECT_NE(command("AT^CURC?").find("^CURC: 1"), std::string::npos);
    command("AT^CURC=0");
    EXPECT_NE(command("AT^CURC?").find("^CURC: 0"), std::string::npos);
}

TEST_F(CardsTest, BothCardsCompleteDataCall) {
    for (const int kind : {0, 1}) {
        sim::Pipe localPipe{sim};
        std::unique_ptr<UmtsModem> modem;
        if (kind == 0)
            modem = std::make_unique<GlobetrotterModem>(sim, &network, ModemConfig{});
        else
            modem = std::make_unique<HuaweiE620Modem>(sim, &network, ModemConfig{});
        modem->attachTty(localPipe.b());
        std::string local;
        localPipe.a().onData([&](util::ByteView data) {
            local.append(data.begin(), data.end());
        });
        sim.runUntil(sim.now() + sim::seconds(5.0));
        ASSERT_EQ(modem->registration(), RegistrationState::registered_home) << kind;
        auto send = [&](const std::string& line, double wait) {
            local.clear();
            const std::string wire = line + "\r";
            localPipe.a().write(
                {reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()});
            sim.runUntil(sim.now() + sim::seconds(wait));
        };
        send("AT+CGDCONT=1,\"IP\",\"internet.it\"", 0.1);
        send("ATD*99***1#", 3.0);
        EXPECT_NE(local.find("CONNECT"), std::string::npos) << kind;
        modem->dropDtr();
        sim.runUntil(sim.now() + sim::seconds(0.5));
    }
}

}  // namespace
}  // namespace onelab::modem
