#include "modem/at_engine.hpp"

#include <gtest/gtest.h>

namespace onelab::modem {
namespace {

struct AtEngineTest : ::testing::Test {
    AtEngineTest() : pipe(sim), engine(sim, "test") {
        engine.attachTty(pipe.b());
        pipe.a().onData([this](util::ByteView data) {
            received.append(data.begin(), data.end());
        });
    }

    void hostSend(const std::string& text) {
        pipe.a().write({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
        sim.runUntil(sim.now() + sim::millis(10));
    }

    sim::Simulator sim;
    sim::Pipe pipe;
    AtEngine engine;
    std::string received;
};

TEST_F(AtEngineTest, BareAtRepliesOk) {
    hostSend("AT\r");
    EXPECT_NE(received.find("OK"), std::string::npos);
}

TEST_F(AtEngineTest, EchoOnByDefault) {
    hostSend("AT\r");
    EXPECT_NE(received.find("AT"), std::string::npos);
}

TEST_F(AtEngineTest, CommandDispatchWithTail) {
    std::string gotCommand;
    std::string gotTail;
    engine.registerCommand("+CPIN", [&](const std::string& cmd, const std::string& tail) {
        gotCommand = cmd;
        gotTail = tail;
        engine.final("OK");
    });
    hostSend("AT+CPIN?\r");
    EXPECT_EQ(gotCommand, "AT+CPIN?");
    EXPECT_EQ(gotTail, "?");
    EXPECT_EQ(engine.commandsHandled(), 1u);
}

TEST_F(AtEngineTest, LongestPrefixWins) {
    std::string hit;
    engine.registerCommand("+C", [&](const std::string&, const std::string&) {
        hit = "+C";
        engine.final("OK");
    });
    engine.registerCommand("+CGDCONT", [&](const std::string&, const std::string&) {
        hit = "+CGDCONT";
        engine.final("OK");
    });
    hostSend("AT+CGDCONT=1\r");
    EXPECT_EQ(hit, "+CGDCONT");
}

TEST_F(AtEngineTest, UnknownCommandErrors) {
    hostSend("AT+NOSUCH\r");
    EXPECT_NE(received.find("ERROR"), std::string::npos);
}

TEST_F(AtEngineTest, NonAtLineErrors) {
    hostSend("HELLO\r");
    EXPECT_NE(received.find("ERROR"), std::string::npos);
}

TEST_F(AtEngineTest, CaseInsensitiveDispatch) {
    bool hit = false;
    engine.registerCommand("+CSQ", [&](const std::string&, const std::string&) {
        hit = true;
        engine.final("OK");
    });
    hostSend("at+csq\r");
    EXPECT_TRUE(hit);
}

TEST_F(AtEngineTest, AsyncHandlerBlocksFurtherCommands) {
    engine.registerCommand("+SLOW", [&](const std::string&, const std::string&) {
        sim.schedule(sim::seconds(1.0), [this] { engine.final("OK"); });
    });
    hostSend("AT+SLOW\r");
    received.clear();
    hostSend("AT\r");  // while busy
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    sim.runUntil(sim.now() + sim::seconds(2.0));
    EXPECT_NE(received.find("OK"), std::string::npos);  // the slow final
}

TEST_F(AtEngineTest, ReplyLinesAreCrLfFramed) {
    engine.registerCommand("+INFO", [&](const std::string&, const std::string&) {
        engine.reply("+INFO: 1,2");
        engine.final("OK");
    });
    hostSend("AT+INFO\r");
    EXPECT_NE(received.find("\r\n+INFO: 1,2\r\n"), std::string::npos);
}

TEST_F(AtEngineTest, BackspaceEditsLine) {
    bool hit = false;
    engine.registerCommand("+CSQ", [&](const std::string&, const std::string&) {
        hit = true;
        engine.final("OK");
    });
    hostSend("AT+CSX\x08Q\r");
    EXPECT_TRUE(hit);
}

TEST_F(AtEngineTest, DataModeBypassesParser) {
    util::Bytes sunk;
    engine.enterDataMode([&](util::ByteView data) {
        sunk.insert(sunk.end(), data.begin(), data.end());
    });
    ASSERT_TRUE(engine.inDataMode());
    hostSend("AT\r");  // raw bytes, not a command
    EXPECT_EQ(std::string(sunk.begin(), sunk.end()), "AT\r");
    EXPECT_EQ(engine.commandsHandled(), 0u);
}

TEST_F(AtEngineTest, SendToHostInDataMode) {
    engine.enterDataMode([](util::ByteView) {});
    const util::Bytes frame{0x7e, 0xff, 0x7e};
    engine.sendToHost({frame.data(), frame.size()});
    sim.runUntil(sim.now() + sim::millis(10));
    EXPECT_EQ(received.size(), 3u);
}

TEST_F(AtEngineTest, EscapeSequenceWithGuardTimes) {
    bool escaped = false;
    engine.onEscape = [&] { escaped = true; };
    engine.enterDataMode([](util::ByteView) {});
    hostSend("some data");
    sim.runUntil(sim.now() + sim::seconds(1.5));  // guard silence
    hostSend("+++");
    EXPECT_FALSE(escaped);  // trailing guard not yet elapsed
    sim.runUntil(sim.now() + sim::seconds(1.5));
    EXPECT_TRUE(escaped);
}

TEST_F(AtEngineTest, PlusesInsideDataDoNotEscape) {
    bool escaped = false;
    engine.onEscape = [&] { escaped = true; };
    engine.enterDataMode([](util::ByteView) {});
    sim.runUntil(sim.now() + sim::seconds(1.5));
    hostSend("+++more data right after");  // no trailing guard
    sim.runUntil(sim.now() + sim::seconds(2.0));
    EXPECT_FALSE(escaped);
}

TEST_F(AtEngineTest, UnsolicitedSuppressedInDataMode) {
    engine.enterDataMode([](util::ByteView) {});
    received.clear();
    engine.unsolicited("^RSSI:18");
    sim.runUntil(sim.now() + sim::millis(10));
    EXPECT_TRUE(received.empty());
    engine.leaveDataMode();
    engine.unsolicited("^RSSI:18");
    sim.runUntil(sim.now() + sim::millis(10));
    EXPECT_NE(received.find("^RSSI:18"), std::string::npos);
}

TEST_F(AtEngineTest, EchoCanBeDisabled) {
    engine.setEcho(false);
    engine.registerCommand("+CSQ", [&](const std::string&, const std::string&) {
        engine.final("OK");
    });
    received.clear();
    hostSend("AT+CSQ\r");
    EXPECT_EQ(received.find("AT+CSQ"), std::string::npos);
    EXPECT_NE(received.find("OK"), std::string::npos);
}

// --- hostile-input hardening (guard layer) ---

std::uint64_t counterValue(const char* name) {
    return obs::Registry::instance().counter(name).value();
}

TEST_F(AtEngineTest, OversizedLineDiscardedAtCap) {
    engine.setEcho(false);
    engine.setMaxLineLength(64);
    const std::uint64_t before = counterValue("guard.at.line_overflow");
    int handled = 0;
    engine.registerCommand("+CSQ", [&](const std::string&, const std::string&) {
        ++handled;
        engine.final("OK");
    });
    // A CR-less 10 kB blast: one ERROR, no unbounded buffer growth,
    // and the counter names the event.
    hostSend("AT+CSQ" + std::string(10000, 'A'));
    hostSend("\r");
    EXPECT_EQ(handled, 0);
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    EXPECT_EQ(counterValue("guard.at.line_overflow"), before + 1);
    // The next well-formed command parses normally — the overflow
    // discarded only the hostile line.
    received.clear();
    hostSend("AT+CSQ\r");
    EXPECT_EQ(handled, 1);
    EXPECT_NE(received.find("OK"), std::string::npos);
}

TEST_F(AtEngineTest, MalformedDialStringRejectedBeforeHandler) {
    const std::uint64_t before = counterValue("guard.at.dial_rejected");
    int dials = 0;
    engine.registerCommand("D", [&](const std::string&, const std::string&) {
        ++dials;
        engine.final("CONNECT");
    });
    hostSend("ATD*99$(reboot)#\r");
    EXPECT_EQ(dials, 0);
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    EXPECT_EQ(counterValue("guard.at.dial_rejected"), before + 1);
    // A legitimate GPRS dial still reaches the handler.
    received.clear();
    hostSend("ATD*99#\r");
    EXPECT_EQ(dials, 1);
    EXPECT_NE(received.find("CONNECT"), std::string::npos);
}

TEST_F(AtEngineTest, DialValidationCanBeDisabled) {
    engine.setDialValidation(false);
    int dials = 0;
    engine.registerCommand("D", [&](const std::string&, const std::string&) {
        ++dials;
        engine.final("CONNECT");
    });
    hostSend("ATDhello world\r");
    EXPECT_EQ(dials, 1);
}

TEST_F(AtEngineTest, ValidDialStringCharsetAndLength) {
    EXPECT_TRUE(AtEngine::validDialString("*99#"));
    EXPECT_TRUE(AtEngine::validDialString("T*99***1#"));
    EXPECT_TRUE(AtEngine::validDialString("+390811234567"));
    EXPECT_TRUE(AtEngine::validDialString(std::string(40, '9')));
    EXPECT_FALSE(AtEngine::validDialString(std::string(41, '9')));
    EXPECT_FALSE(AtEngine::validDialString("*99;rm -rf#"));
    EXPECT_FALSE(AtEngine::validDialString("*99\x01#"));
}

TEST_F(AtEngineTest, RawPlusSpamCountedButNeverEscapes) {
    bool escaped = false;
    engine.onEscape = [&] { escaped = true; };
    engine.enterDataMode([](util::ByteView) {});
    const std::uint64_t before = counterValue("guard.at.escape_spam");
    // "+++" runs embedded in flowing data (no guard silence): the
    // spam detector counts them, the escape must not fire.
    hostSend("data+++data+++data+++");
    sim.runUntil(sim.now() + sim::seconds(2.0));
    EXPECT_FALSE(escaped);
    EXPECT_TRUE(engine.inDataMode());
    EXPECT_EQ(counterValue("guard.at.escape_spam"), before + 3);
}

}  // namespace
}  // namespace onelab::modem
