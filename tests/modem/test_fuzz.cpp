// Hostile input on the modem TTY: random bytes and degenerate command
// lines must never crash the AT engine or wedge it.
#include <gtest/gtest.h>

#include "modem/cards.hpp"
#include "net/internet.hpp"

namespace onelab::modem {
namespace {

class AtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtFuzz, RandomBytesNeverCrashOrWedge) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{1}};
    umts::UmtsNetwork network{sim, internet, umts::commercialItalianOperator(),
                              util::RandomStream{2}};
    sim::Pipe pipe{sim};
    HuaweiE620Modem modem{sim, &network, {}};
    modem.attachTty(pipe.b());
    std::string received;
    pipe.a().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });

    util::RandomStream rng{GetParam()};
    for (int burst = 0; burst < 100; ++burst) {
        util::Bytes noise(std::size_t(rng.uniformInt(1, 40)));
        for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
        pipe.a().write({noise.data(), noise.size()});
        sim.runUntil(sim.now() + sim::millis(20));
    }
    // The engine must still answer a clean command afterwards.
    received.clear();
    const std::string probe = "\rAT\r";
    pipe.a().write({reinterpret_cast<const std::uint8_t*>(probe.data()), probe.size()});
    sim.runUntil(sim.now() + sim::millis(100));
    EXPECT_NE(received.find("OK"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtFuzz, ::testing::Values(11, 22, 33, 44));

TEST(AtEdgeCases, DegenerateLines) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{1}};
    umts::UmtsNetwork network{sim, internet, umts::commercialItalianOperator(),
                              util::RandomStream{2}};
    sim::Pipe pipe{sim};
    HuaweiE620Modem modem{sim, &network, {}};
    modem.attachTty(pipe.b());
    std::string received;
    pipe.a().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });

    auto send = [&](const std::string& text) {
        received.clear();
        pipe.a().write({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
        sim.runUntil(sim.now() + sim::millis(50));
    };
    send("\r\r\r");                      // empty lines: silence
    EXPECT_EQ(received.find("ERROR"), std::string::npos);
    send(std::string(4096, 'A') + "\r");  // monster line: ERROR, no crash
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    send("AT+CGDCONT=\r");               // malformed setter
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    send("AT+CPIN=\r");                  // empty pin attempt
    EXPECT_NE(received.find("OK"), std::string::npos);  // SIM has no PIN: OK
    send("AT\r");                        // still alive
    EXPECT_NE(received.find("OK"), std::string::npos);
}

}  // namespace
}  // namespace onelab::modem
