// Hostile input on the modem TTY: random bytes and degenerate command
// lines must never crash the AT engine or wedge it.
#include <gtest/gtest.h>

#include "modem/cards.hpp"
#include "net/internet.hpp"

namespace onelab::modem {
namespace {

class AtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtFuzz, RandomBytesNeverCrashOrWedge) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{1}};
    umts::UmtsNetwork network{sim, internet, umts::commercialItalianOperator(),
                              util::RandomStream{2}};
    sim::Pipe pipe{sim};
    HuaweiE620Modem modem{sim, &network, {}};
    modem.attachTty(pipe.b());
    std::string received;
    pipe.a().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });

    util::RandomStream rng{GetParam()};
    for (int burst = 0; burst < 100; ++burst) {
        util::Bytes noise(std::size_t(rng.uniformInt(1, 40)));
        for (auto& byte : noise) byte = std::uint8_t(rng.uniformInt(0, 255));
        pipe.a().write({noise.data(), noise.size()});
        sim.runUntil(sim.now() + sim::millis(20));
    }
    // The engine must still answer a clean command afterwards.
    received.clear();
    const std::string probe = "\rAT\r";
    pipe.a().write({reinterpret_cast<const std::uint8_t*>(probe.data()), probe.size()});
    sim.runUntil(sim.now() + sim::millis(100));
    EXPECT_NE(received.find("OK"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtFuzz, ::testing::Values(11, 22, 33, 44));

/// Property fuzz: seeded streams mixing valid commands, corrupted
/// copies of valid commands and raw noise, delivered at arbitrary
/// chunk boundaries while the card's unsolicited ^RSSI chatter stays
/// enabled (so URCs interleave with responses on the wire). Whatever
/// arrives, the parser must neither crash nor wedge: a clean probe
/// afterwards always gets its final result.
class AtStreamFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtStreamFuzz, ArbitrarySplitBoundariesAndCorruptionResync) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{1}};
    umts::UmtsNetwork network{sim, internet, umts::commercialItalianOperator(),
                              util::RandomStream{2}};
    sim::Pipe pipe{sim};
    // Huawei: periodic ^RSSI URCs are ON by default (tests do not send
    // AT^CURC=0), so solicited replies and URCs interleave.
    HuaweiE620Modem modem{sim, &network, {}};
    modem.attachTty(pipe.b());
    std::string received;
    pipe.a().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });

    const std::vector<std::string> valid = {
        "AT\r",      "ATI\r",      "AT+CSQ\r",  "AT+CGATT?\r",
        "AT+COPS?\r", "AT+CPIN?\r", "ATE1\r",   "AT+CGDCONT?\r",
    };

    util::RandomStream rng{GetParam()};
    // Build one long hostile stream...
    util::Bytes stream;
    for (int segment = 0; segment < 60; ++segment) {
        const std::int64_t shape = rng.uniformInt(0, 2);
        if (shape == 0) {  // valid command
            const std::string& cmd = valid[std::size_t(
                rng.uniformInt(0, std::int64_t(valid.size()) - 1))];
            stream.insert(stream.end(), cmd.begin(), cmd.end());
        } else if (shape == 1) {  // corrupted valid command
            std::string cmd = valid[std::size_t(
                rng.uniformInt(0, std::int64_t(valid.size()) - 1))];
            const auto victim = std::size_t(
                rng.uniformInt(0, std::int64_t(cmd.size()) - 1));
            cmd[victim] = char(rng.uniformInt(0, 255));
            stream.insert(stream.end(), cmd.begin(), cmd.end());
        } else {  // raw noise
            const auto length = std::size_t(rng.uniformInt(1, 64));
            for (std::size_t i = 0; i < length; ++i)
                stream.push_back(std::uint8_t(rng.uniformInt(0, 255)));
        }
    }
    // ...and deliver it at arbitrary split boundaries.
    std::size_t offset = 0;
    while (offset < stream.size()) {
        const auto chunk = std::min(std::size_t(rng.uniformInt(1, 23)),
                                    stream.size() - offset);
        pipe.a().write({stream.data() + offset, chunk});
        offset += chunk;
        if (rng.chance(0.3)) sim.runUntil(sim.now() + sim::millis(rng.uniform(1.0, 30.0)));
    }
    sim.runUntil(sim.now() + sim::seconds(2.0));

    // Resynchronisation property: a clean probe still gets a final
    // result, whatever garbage preceded it.
    received.clear();
    const std::string probe = "\rAT\r";
    pipe.a().write({reinterpret_cast<const std::uint8_t*>(probe.data()), probe.size()});
    sim.runUntil(sim.now() + sim::millis(500));
    EXPECT_TRUE(received.find("OK") != std::string::npos ||
                received.find("ERROR") != std::string::npos)
        << "engine wedged after hostile stream, probe got: " << received;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtStreamFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

/// Injected AT failures (the fault layer's forced finals) must consume
/// exactly `count` commands and then let the engine recover.
TEST(AtFaultInjection, ForcedFinalsConsumeAndRecover) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{1}};
    umts::UmtsNetwork network{sim, internet, umts::commercialItalianOperator(),
                              util::RandomStream{2}};
    sim::Pipe pipe{sim};
    HuaweiE620Modem modem{sim, &network, {}};
    modem.attachTty(pipe.b());
    std::string received;
    pipe.a().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });

    modem.injectAtFailure("ERROR", 2);
    auto send = [&](const std::string& text) {
        received.clear();
        pipe.a().write({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
        sim.runUntil(sim.now() + sim::millis(100));
    };
    send("AT\r");
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    send("AT\r");
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    send("AT\r");  // injection exhausted: back to normal
    EXPECT_NE(received.find("OK"), std::string::npos);
    EXPECT_EQ(received.find("ERROR"), std::string::npos);
}

TEST(AtEdgeCases, DegenerateLines) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{1}};
    umts::UmtsNetwork network{sim, internet, umts::commercialItalianOperator(),
                              util::RandomStream{2}};
    sim::Pipe pipe{sim};
    HuaweiE620Modem modem{sim, &network, {}};
    modem.attachTty(pipe.b());
    std::string received;
    pipe.a().onData([&](util::ByteView data) { received.append(data.begin(), data.end()); });

    auto send = [&](const std::string& text) {
        received.clear();
        pipe.a().write({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
        sim.runUntil(sim.now() + sim::millis(50));
    };
    send("\r\r\r");                      // empty lines: silence
    EXPECT_EQ(received.find("ERROR"), std::string::npos);
    send(std::string(4096, 'A') + "\r");  // monster line: ERROR, no crash
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    send("AT+CGDCONT=\r");               // malformed setter
    EXPECT_NE(received.find("ERROR"), std::string::npos);
    send("AT+CPIN=\r");                  // empty pin attempt
    EXPECT_NE(received.find("OK"), std::string::npos);  // SIM has no PIN: OK
    send("AT\r");                        // still alive
    EXPECT_NE(received.find("OK"), std::string::npos);
}

}  // namespace
}  // namespace onelab::modem
