#include "modem/umts_modem.hpp"

#include <gtest/gtest.h>

#include "modem/cards.hpp"
#include "net/internet.hpp"

namespace onelab::modem {
namespace {

/// A Huawei card on a TTY against a commercial operator network.
struct ModemTest : ::testing::Test {
    ModemTest()
        : internet(sim, util::RandomStream{3}),
          network(sim, internet, umts::commercialItalianOperator(), util::RandomStream{4}),
          pipe(sim) {}

    void makeModem(ModemConfig config = {}) {
        modem = std::make_unique<HuaweiE620Modem>(sim, &network, config);
        modem->attachTty(pipe.b());
        pipe.a().onData([this](util::ByteView data) {
            received.append(data.begin(), data.end());
        });
    }

    std::string command(const std::string& line, double waitSeconds = 0.1) {
        return raw(line + "\r", waitSeconds);
    }

    /// Raw bytes without the trailing CR (for "+++").
    std::string raw(const std::string& text, double waitSeconds = 0.1) {
        received.clear();
        pipe.a().write({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
        sim.runUntil(sim.now() + sim::seconds(waitSeconds));
        return received;
    }

    void registerModem() {
        sim.runUntil(sim.now() + sim::seconds(5.0));  // auto-registration
        ASSERT_EQ(modem->registration(), RegistrationState::registered_home);
    }

    sim::Simulator sim;
    net::Internet internet;
    umts::UmtsNetwork network;
    sim::Pipe pipe;
    std::unique_ptr<UmtsModem> modem;
    std::string received;
};

TEST_F(ModemTest, AutoRegistersWithoutPin) {
    makeModem();
    EXPECT_TRUE(modem->pinUnlocked());
    EXPECT_EQ(modem->registration(), RegistrationState::searching);
    sim.runUntil(sim::seconds(5.0));
    EXPECT_EQ(modem->registration(), RegistrationState::registered_home);
    EXPECT_NE(command("AT+CREG?").find("+CREG: 0,1"), std::string::npos);
}

TEST_F(ModemTest, PinLockedUntilCorrectPin) {
    ModemConfig config;
    config.pin = "1234";
    makeModem(config);
    EXPECT_FALSE(modem->pinUnlocked());
    EXPECT_NE(command("AT+CPIN?").find("SIM PIN"), std::string::npos);
    // No registration while locked.
    sim.runUntil(sim.now() + sim::seconds(5.0));
    EXPECT_EQ(modem->registration(), RegistrationState::not_registered);

    EXPECT_NE(command("AT+CPIN=\"1234\"").find("OK"), std::string::npos);
    EXPECT_TRUE(modem->pinUnlocked());
    EXPECT_NE(command("AT+CPIN?").find("READY"), std::string::npos);
    sim.runUntil(sim.now() + sim::seconds(5.0));
    EXPECT_EQ(modem->registration(), RegistrationState::registered_home);
}

TEST_F(ModemTest, WrongPinThreeTimesBlocksSim) {
    ModemConfig config;
    config.pin = "1234";
    makeModem(config);
    for (int i = 0; i < 3; ++i)
        EXPECT_NE(command("AT+CPIN=\"0000\"").find("+CME ERROR"), std::string::npos);
    EXPECT_TRUE(modem->simBlocked());
    EXPECT_NE(command("AT+CPIN?").find("SIM PUK"), std::string::npos);
    EXPECT_NE(command("AT+CPIN=\"1234\"").find("+CME ERROR"), std::string::npos);
}

TEST_F(ModemTest, IdentityCommands) {
    makeModem();
    EXPECT_NE(command("AT+CGMI").find("huawei"), std::string::npos);
    EXPECT_NE(command("AT+CGMM").find("E620"), std::string::npos);
    EXPECT_NE(command("AT+CGSN").find("356938035643809"), std::string::npos);
    EXPECT_NE(command("ATI").find("huawei"), std::string::npos);
}

TEST_F(ModemTest, CopsReportsOperatorOnceRegistered) {
    makeModem();
    EXPECT_NE(command("AT+COPS?").find("+COPS: 0\r"), std::string::npos);
    registerModem();
    EXPECT_NE(command("AT+COPS?").find("IT Mobile"), std::string::npos);
}

TEST_F(ModemTest, CsqReflectsNetwork) {
    makeModem();
    const std::string response = command("AT+CSQ");
    EXPECT_NE(response.find("+CSQ: "), std::string::npos);
}

TEST_F(ModemTest, CgdcontDefineAndQuery) {
    makeModem();
    EXPECT_NE(command("AT+CGDCONT=1,\"IP\",\"internet.it\"").find("OK"), std::string::npos);
    const std::string listing = command("AT+CGDCONT?");
    EXPECT_NE(listing.find("internet.it"), std::string::npos);
}

TEST_F(ModemTest, DialWithoutPdpContextErrors) {
    makeModem();
    registerModem();
    EXPECT_NE(command("ATD*99***1#", 3.0).find("ERROR"), std::string::npos);
}

TEST_F(ModemTest, DialWithoutRegistrationNoCarrier) {
    ModemConfig config;
    config.pin = "9999";  // locked -> never registers
    makeModem(config);
    command("AT+CGDCONT=1,\"IP\",\"internet.it\"");
    EXPECT_NE(command("ATD*99***1#", 3.0).find("NO CARRIER"), std::string::npos);
}

TEST_F(ModemTest, SuccessfulDataCallEntersDataMode) {
    makeModem();
    registerModem();
    command("AT+CGDCONT=1,\"IP\",\"internet.it\"");
    const std::string response = command("ATD*99***1#", 3.0);
    EXPECT_NE(response.find("CONNECT"), std::string::npos);
    EXPECT_TRUE(modem->inDataMode());
    ASSERT_NE(modem->session(), nullptr);
    EXPECT_EQ(network.activeSessions(), 1u);
}

TEST_F(ModemTest, DtrDropHangsUp) {
    makeModem();
    registerModem();
    command("AT+CGDCONT=1,\"IP\",\"internet.it\"");
    command("ATD*99***1#", 3.0);
    ASSERT_TRUE(modem->inDataMode());
    modem->dropDtr();
    EXPECT_FALSE(modem->inDataMode());
    EXPECT_EQ(modem->session(), nullptr);
    EXPECT_EQ(network.activeSessions(), 0u);
}

TEST_F(ModemTest, NetworkTeardownRaisesNoCarrier) {
    makeModem();
    registerModem();
    command("AT+CGDCONT=1,\"IP\",\"internet.it\"");
    command("ATD*99***1#", 3.0);
    ASSERT_NE(modem->session(), nullptr);
    received.clear();
    network.deactivatePdp(modem->session());
    sim.runUntil(sim.now() + sim::millis(100));
    EXPECT_EQ(modem->session(), nullptr);
    EXPECT_FALSE(modem->inDataMode());
    EXPECT_NE(received.find("NO CARRIER"), std::string::npos);
}

TEST_F(ModemTest, EscapeThenAtoResumes) {
    makeModem();
    registerModem();
    command("AT+CGDCONT=1,\"IP\",\"internet.it\"");
    command("ATD*99***1#", 3.0);
    ASSERT_TRUE(modem->inDataMode());

    sim.runUntil(sim.now() + sim::seconds(1.5));  // leading guard
    raw("+++", 1.5);  // escape: bare pluses, trailing guard elapses
    EXPECT_FALSE(modem->inDataMode());
    EXPECT_NE(modem->session(), nullptr);  // call still up

    EXPECT_NE(command("ATO", 1.0).find("CONNECT"), std::string::npos);
    EXPECT_TRUE(modem->inDataMode());
}

TEST_F(ModemTest, HangupCommandAfterEscape) {
    makeModem();
    registerModem();
    command("AT+CGDCONT=1,\"IP\",\"internet.it\"");
    command("ATD*99***1#", 3.0);
    sim.runUntil(sim.now() + sim::seconds(1.5));
    raw("+++", 1.5);
    EXPECT_NE(command("ATH").find("OK"), std::string::npos);
    EXPECT_EQ(modem->session(), nullptr);
    EXPECT_NE(command("ATO", 1.0).find("NO CARRIER"), std::string::npos);
}

TEST_F(ModemTest, CgattQueryAndDetach) {
    makeModem();
    registerModem();
    EXPECT_NE(command("AT+CGATT?").find("+CGATT: 1"), std::string::npos);
    EXPECT_NE(command("AT+CGATT=0").find("OK"), std::string::npos);
    EXPECT_NE(command("AT+CGATT?").find("+CGATT: 0"), std::string::npos);
}

TEST_F(ModemTest, WvdialStyleInitStringsAccepted) {
    makeModem();
    // The classic wvdial init: these must all come back OK.
    for (const char* init : {"ATZ", "ATQ0", "ATE1", "AT&F", "AT&C1", "AT&D2", "AT+FCLASS=0",
                             "ATS0=0", "ATX3", "ATM1"})
        EXPECT_NE(command(init).find("OK"), std::string::npos) << init;
}

}  // namespace
}  // namespace onelab::modem
