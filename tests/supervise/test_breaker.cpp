#include "supervise/breaker.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace onelab::supervise {
namespace {

using sim::seconds;

BreakerConfig tightConfig() {
    BreakerConfig config;
    config.flapThreshold = 3;
    config.window = seconds(60.0);
    config.cooldown = seconds(120.0);
    return config;
}

TEST(FlapBreaker, TripsAtThresholdWithinWindow) {
    FlapBreaker breaker{tightConfig()};
    EXPECT_FALSE(breaker.recordFlap(seconds(0.0)));
    EXPECT_FALSE(breaker.recordFlap(seconds(10.0)));
    EXPECT_FALSE(breaker.open(seconds(10.0)));
    EXPECT_TRUE(breaker.recordFlap(seconds(20.0)));
    EXPECT_TRUE(breaker.open(seconds(20.0)));
    EXPECT_EQ(breaker.trips(), 1);
    EXPECT_EQ(breaker.openUntil(), seconds(20.0) + seconds(120.0));
}

TEST(FlapBreaker, OldFlapsSlideOutOfTheWindow) {
    FlapBreaker breaker{tightConfig()};
    EXPECT_FALSE(breaker.recordFlap(seconds(0.0)));
    EXPECT_FALSE(breaker.recordFlap(seconds(10.0)));
    // The third flap lands after the first has aged out of the 60 s
    // window, so only two are in view — no trip.
    EXPECT_FALSE(breaker.recordFlap(seconds(65.0)));
    EXPECT_EQ(breaker.flapsInWindow(seconds(65.0)), 2);
    EXPECT_FALSE(breaker.open(seconds(65.0)));
    EXPECT_EQ(breaker.trips(), 0);
}

TEST(FlapBreaker, FlapsWhileOpenDoNotRetrip) {
    FlapBreaker breaker{tightConfig()};
    (void)breaker.recordFlap(seconds(0.0));
    (void)breaker.recordFlap(seconds(1.0));
    EXPECT_TRUE(breaker.recordFlap(seconds(2.0)));
    // Further flaps during the cooldown are recorded but never report
    // a fresh trip — the link is already parked.
    EXPECT_FALSE(breaker.recordFlap(seconds(3.0)));
    EXPECT_FALSE(breaker.recordFlap(seconds(4.0)));
    EXPECT_EQ(breaker.trips(), 1);
    EXPECT_TRUE(breaker.open(seconds(100.0)));
    EXPECT_FALSE(breaker.open(seconds(122.0)));
}

TEST(FlapBreaker, TripClearsHistorySoCooldownExitGetsAFreshWindow) {
    FlapBreaker breaker{tightConfig()};
    (void)breaker.recordFlap(seconds(0.0));
    (void)breaker.recordFlap(seconds(1.0));
    EXPECT_TRUE(breaker.recordFlap(seconds(2.0)));
    // Past the cooldown the breaker is closed and the pre-trip flaps
    // are gone: the link gets a clean slate, not an instant re-trip.
    const sim::SimTime later = seconds(2.0) + seconds(120.0) + seconds(1.0);
    EXPECT_FALSE(breaker.open(later));
    EXPECT_EQ(breaker.flapsInWindow(later), 0);
    EXPECT_FALSE(breaker.recordFlap(later));
    EXPECT_FALSE(breaker.recordFlap(later + seconds(1.0)));
    EXPECT_TRUE(breaker.recordFlap(later + seconds(2.0)));
    EXPECT_EQ(breaker.trips(), 2);
}

TEST(FlapBreaker, ResetClosesAndForgets) {
    FlapBreaker breaker{tightConfig()};
    (void)breaker.recordFlap(seconds(0.0));
    (void)breaker.recordFlap(seconds(1.0));
    (void)breaker.recordFlap(seconds(2.0));
    ASSERT_TRUE(breaker.open(seconds(3.0)));
    breaker.reset();
    EXPECT_FALSE(breaker.open(seconds(3.0)));
    EXPECT_EQ(breaker.flapsInWindow(seconds(3.0)), 0);
}

}  // namespace
}  // namespace onelab::supervise
