#include "supervise/supervisor.hpp"

#include <gtest/gtest.h>

#include "obs/registry.hpp"
#include "scenario/testbed.hpp"
#include "umts/bearer.hpp"
#include "umts/network.hpp"

namespace onelab::supervise {
namespace {

double counterValue(const std::string& name) {
    return obs::Registry::instance().counter(name).value();
}

/// Run the testbed's clock until `pred` holds or `patience` elapses.
template <typename Pred>
bool settle(scenario::Testbed& tb, sim::SimTime patience, Pred&& pred) {
    const sim::SimTime deadline = tb.sim().now() + patience;
    while (!pred() && tb.sim().now() < deadline)
        tb.sim().runUntil(tb.sim().now() + sim::millis(500));
    return pred();
}

scenario::TestbedConfig supervisedConfig() {
    scenario::TestbedConfig config;
    config.supervise.enable = true;
    // Fast probation so tests don't wait out the production default.
    config.supervise.config.stabilityWindow = sim::seconds(5.0);
    return config;
}

TEST(LinkSupervisor, ConstructedOnlyWhenEnabled) {
    scenario::Testbed plain;
    EXPECT_EQ(plain.fleet().umtsSite(0).supervisor(), nullptr);
    scenario::Testbed supervised{supervisedConfig()};
    ASSERT_NE(supervised.fleet().umtsSite(0).supervisor(), nullptr);
    EXPECT_EQ(supervised.fleet().umtsSite(0).supervisor()->health(), Health::healthy);
}

TEST(LinkSupervisor, FailoverAndFailbackRouting) {
    scenario::Testbed tb{supervisedConfig()};
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    LinkSupervisor* supervisor = tb.fleet().umtsSite(0).supervisor();
    ASSERT_NE(supervisor, nullptr);
    const double failoversBefore = counterValue("supervise.failovers");
    const double failbacksBefore = counterValue("supervise.failbacks");
    const double recoveredBefore = counterValue("supervise.recovered");

    // Kill the PDP context out from under the link.
    ASSERT_TRUE(tb.operatorNetwork().injectBearerDrop(tb.fleet().umtsSite(0).imsi()));
    tb.sim().runUntil(tb.sim().now() + sim::seconds(2.0));

    // The supervisor kept the lock, parked the destination rules (the
    // flow now resolves via the wired main table) and is recovering.
    EXPECT_TRUE(tb.backend().state().locked);
    EXPECT_TRUE(tb.backend().routesParked());
    EXPECT_NE(supervisor->health(), Health::healthy);
    EXPECT_GE(counterValue("supervise.failovers"), failoversBefore + 1);

    // The ladder redials; probation passes; flows steer back.
    ASSERT_TRUE(settle(tb, sim::seconds(120.0), [&] {
        return supervisor->health() == Health::healthy;
    }));
    EXPECT_TRUE(tb.backend().state().connected);
    EXPECT_FALSE(tb.backend().routesParked());
    EXPECT_GE(counterValue("supervise.failbacks"), failbacksBefore + 1);
    EXPECT_GE(counterValue("supervise.recovered"), recoveredBefore + 1);
    EXPECT_GE(supervisor->incidents(), 1);
}

TEST(LinkSupervisor, LadderEscalatesThroughProbeAndReattach) {
    scenario::TestbedConfig config = supervisedConfig();
    // Quick rungs: first redial ~1 s after the loss, later ones a few
    // seconds apart, so two 30 s registration timeouts plus the AT
    // probe and the detach/re-attach all land inside the outage.
    config.supervise.config.redialInitialBackoff = sim::seconds(1.0);
    config.supervise.config.redialMaxBackoff = sim::seconds(4.0);
    scenario::Testbed tb{config};
    ASSERT_TRUE(tb.startUmts().ok());
    LinkSupervisor* supervisor = tb.fleet().umtsSite(0).supervisor();
    ASSERT_NE(supervisor, nullptr);
    const double atOkBefore = counterValue("supervise.probe.at_ok");
    const double reattachBefore = counterValue("supervise.ladder.reattach");
    const double redialBefore = counterValue("supervise.ladder.redial");

    // 70 s without coverage: redials time out on registration, the AT
    // probe finds the card alive, and the ladder picks detach/
    // re-attach over a hard reset.
    tb.operatorNetwork().injectCoverageOutage(sim::seconds(70.0));
    ASSERT_TRUE(settle(tb, sim::seconds(300.0), [&] {
        return supervisor->health() == Health::healthy;
    }));
    EXPECT_TRUE(tb.backend().state().connected);
    EXPECT_GE(counterValue("supervise.probe.at_ok"), atOkBefore + 1);
    EXPECT_GE(counterValue("supervise.ladder.reattach"), reattachBefore + 1);
    EXPECT_GE(counterValue("supervise.ladder.redial"), redialBefore + 2);
}

TEST(LinkSupervisor, BreakerParksFlappingLink) {
    scenario::TestbedConfig config = supervisedConfig();
    config.supervise.config.breaker.flapThreshold = 2;
    config.supervise.config.breaker.window = sim::seconds(300.0);
    config.supervise.config.breaker.cooldown = sim::seconds(20.0);
    scenario::Testbed tb{config};
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    LinkSupervisor* supervisor = tb.fleet().umtsSite(0).supervisor();
    ASSERT_NE(supervisor, nullptr);
    const double tripsBefore = counterValue("supervise.breaker.trips");
    const double retriesBefore = counterValue("supervise.breaker.cooldown_retries");
    const std::string imsi = tb.fleet().umtsSite(0).imsi();

    // First flap: drop, recover, pass probation.
    ASSERT_TRUE(tb.operatorNetwork().injectBearerDrop(imsi));
    ASSERT_TRUE(settle(tb, sim::seconds(120.0), [&] {
        return supervisor->health() == Health::healthy;
    }));

    // Second flap inside the window trips the breaker: the link is
    // parked on the wired path instead of burning dial attempts.
    ASSERT_TRUE(tb.operatorNetwork().injectBearerDrop(imsi));
    tb.sim().runUntil(tb.sim().now() + sim::seconds(2.0));
    EXPECT_EQ(supervisor->health(), Health::failed_over);
    EXPECT_TRUE(tb.backend().routesParked());
    EXPECT_GE(counterValue("supervise.breaker.trips"), tripsBefore + 1);

    // Cooldown expires; the retry succeeds and flows fail back.
    ASSERT_TRUE(settle(tb, sim::seconds(180.0), [&] {
        return supervisor->health() == Health::healthy;
    }));
    EXPECT_GE(counterValue("supervise.breaker.cooldown_retries"), retriesBefore + 1);
    EXPECT_FALSE(tb.backend().routesParked());
    EXPECT_TRUE(tb.backend().state().connected);
}

TEST(LinkSupervisor, AdministrativeStopStandsTheSupervisorDown) {
    scenario::Testbed tb{supervisedConfig()};
    ASSERT_TRUE(tb.startUmts().ok());
    LinkSupervisor* supervisor = tb.fleet().umtsSite(0).supervisor();
    ASSERT_NE(supervisor, nullptr);

    // Lose the link, then stop administratively while the ladder is
    // mid-recovery: the next rung must notice the lock is gone and
    // stand down instead of redialling a link nobody wants.
    ASSERT_TRUE(tb.operatorNetwork().injectBearerDrop(tb.fleet().umtsSite(0).imsi()));
    tb.sim().runUntil(tb.sim().now() + sim::millis(200));
    EXPECT_EQ(supervisor->health(), Health::recovering);
    ASSERT_TRUE(tb.stopUmts().ok());
    ASSERT_TRUE(settle(tb, sim::seconds(60.0), [&] {
        return supervisor->health() == Health::healthy && !supervisor->hasPendingWork();
    }));
    EXPECT_FALSE(tb.backend().state().locked);
    EXPECT_FALSE(tb.backend().routesParked());
    // And the machine is restartable afterwards.
    ASSERT_TRUE(tb.startUmts().ok());
    EXPECT_EQ(supervisor->health(), Health::healthy);
}

TEST(LinkSupervisor, EchoDegradationRenegotiatesAndRecoversWithoutLinkLoss) {
    scenario::TestbedConfig config = supervisedConfig();
    // Tight probing, lax pppd kill-switch: the supervisor sees missed
    // echoes well before pppd would tear the link down itself.
    config.supervise.echoInterval = sim::seconds(1.0);
    config.supervise.echoFailureLimit = 20;
    config.supervise.config.degradeAfterMisses = 2;
    config.supervise.config.stabilityWindow = sim::seconds(3.0);
    scenario::Testbed tb{config};
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    LinkSupervisor* supervisor = tb.fleet().umtsSite(0).supervisor();
    ASSERT_NE(supervisor, nullptr);
    const double degradedBefore = counterValue("supervise.echo.degraded");
    const double renegotiateBefore = counterValue("supervise.ladder.renegotiate");
    const double lossesBefore = counterValue("fault.umtsctl.link_losses");

    // A radio-side stall: the bearer goes dark for 8 s but the PPP
    // link never terminates.
    umts::UmtsSession* session = nullptr;
    for (std::size_t k = 0; k < tb.operatorNetwork().activeSessions(); ++k)
        if (tb.operatorNetwork().sessionAt(k)) session = tb.operatorNetwork().sessionAt(k);
    ASSERT_NE(session, nullptr);
    session->bearer().injectOutage(sim::seconds(8.0));

    ASSERT_TRUE(settle(tb, sim::seconds(30.0), [&] {
        return supervisor->health() == Health::degraded;
    }));
    EXPECT_GE(counterValue("supervise.echo.degraded"), degradedBefore + 1);
    EXPECT_GE(counterValue("supervise.ladder.renegotiate"), renegotiateBefore + 1);
    EXPECT_TRUE(tb.backend().routesParked());  // flows parked on wired

    // The bearer heals; echoes flow again; after the stability window
    // the flows steer back — all without a single link loss.
    ASSERT_TRUE(settle(tb, sim::seconds(60.0), [&] {
        return supervisor->health() == Health::healthy;
    }));
    EXPECT_FALSE(tb.backend().routesParked());
    EXPECT_TRUE(tb.backend().state().connected);
    EXPECT_EQ(counterValue("fault.umtsctl.link_losses"), lossesBefore);
}

}  // namespace
}  // namespace onelab::supervise
