// FaultInjector: arming, firing into live targets, skipping dead
// ones, and — the regression that motivated Fleet teardown hooks —
// cancelling every pending injection when the fleet dies mid-plan
// instead of firing into destroyed nodes.
#include <gtest/gtest.h>

#include <memory>

#include "fault/injector.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace onelab::fault {
namespace {

FaultPlan planOf(std::initializer_list<FaultEvent> events) {
    FaultPlan plan;
    for (const FaultEvent& event : events) plan.add(event);
    return plan;
}

TEST(FaultInjector, FiresIntoLiveFleetAndCounts) {
    obs::beginRun();
    scenario::Fleet fleet{scenario::makeUniformFleet(1, 5)};
    ASSERT_TRUE(fleet.startAll().ok());

    const sim::SimTime now = fleet.sim().now();
    FaultInjector injector{
        fleet, planOf({{now + sim::seconds(1.0), FaultKind::bearer_drop, 0, 0.0, {}},
                       {now + sim::seconds(2.0), FaultKind::cell_squeeze, 0, 0.5,
                        sim::seconds(3.0)}})};
    injector.arm();
    EXPECT_EQ(injector.stats().scheduled, 2u);

    fleet.sim().runUntil(now + sim::seconds(2.5));
    EXPECT_EQ(injector.stats().fired, 2u);
    EXPECT_EQ(injector.stats().skipped, 0u);
    EXPECT_EQ(obs::Registry::instance().counter("fault.injected").value(), 2u);
    EXPECT_DOUBLE_EQ(fleet.operatorNetwork().cell().capacityScale(), 0.5);

    // The squeeze's restore is scheduled through the injector too.
    fleet.sim().runUntil(now + sim::seconds(6.0));
    EXPECT_DOUBLE_EQ(fleet.operatorNetwork().cell().capacityScale(), 1.0);
}

TEST(FaultInjector, SkipsWhenTargetIsDead) {
    obs::beginRun();
    scenario::Fleet fleet{scenario::makeUniformFleet(1, 5)};
    // No umts start: no session exists, and site 9 never will.
    const sim::SimTime now = fleet.sim().now();
    FaultInjector injector{
        fleet, planOf({{now + sim::seconds(1.0), FaultKind::rlc_outage, 0, 0.0,
                        sim::seconds(1.0)},
                       {now + sim::seconds(1.0), FaultKind::modem_reset, 9, 0.0, {}}})};
    injector.arm();
    fleet.sim().runUntil(now + sim::seconds(2.0));
    EXPECT_EQ(injector.stats().fired, 2u);
    EXPECT_EQ(injector.stats().skipped, 2u);
    EXPECT_EQ(obs::Registry::instance().counter("fault.skipped").value(), 2u);
}

TEST(FaultInjector, ArmSkipsEventsAlreadyInThePast) {
    obs::beginRun();
    scenario::Fleet fleet{scenario::makeUniformFleet(1, 5)};
    fleet.sim().runUntil(sim::seconds(10.0));
    FaultInjector injector{
        fleet, planOf({{sim::seconds(5.0), FaultKind::ue_detach, 0, 0.0, {}},
                       {sim::seconds(15.0), FaultKind::ue_detach, 0, 0.0, {}}})};
    injector.arm();
    EXPECT_EQ(injector.stats().scheduled, 1u);
    EXPECT_EQ(injector.stats().skipped, 1u);
}

/// THE regression: a fleet destroyed while injections (including a
/// pending coverage outage) are still scheduled must cancel them via
/// its teardown hooks — previously such events would fire into
/// destroyed sites.
TEST(FaultInjector, FleetTeardownCancelsPendingInjections) {
    obs::beginRun();
    auto fleet = std::make_unique<scenario::Fleet>(scenario::makeUniformFleet(2, 5));
    ASSERT_TRUE(fleet->startAll().ok());
    const sim::SimTime now = fleet->sim().now();
    FaultInjector injector{
        *fleet,
        planOf({{now + sim::seconds(50.0), FaultKind::coverage_outage, 0, 0.0,
                 sim::seconds(20.0)},
                {now + sim::seconds(60.0), FaultKind::modem_reset, 1, 0.0, {}},
                {now + sim::seconds(70.0), FaultKind::serial_stall, 0, 0.0,
                 sim::seconds(1.0)}})};
    injector.arm();
    ASSERT_EQ(injector.stats().scheduled, 3u);

    // Tear the fleet down with all three injections still pending.
    fleet.reset();
    EXPECT_EQ(injector.stats().cancelled, 3u);
    EXPECT_EQ(injector.stats().fired, 0u);
    // Cancelling twice (the injector's own destructor will too) is a
    // no-op.
    injector.cancelAll();
    EXPECT_EQ(injector.stats().cancelled, 3u);
}

/// The mirror image: destroying the injector before the fleet must
/// leave the fleet fully usable (the teardown hook no-ops through the
/// liveness token) and unarm everything it scheduled.
TEST(FaultInjector, InjectorDestroyedBeforeFleetIsSafe) {
    obs::beginRun();
    scenario::Fleet fleet{scenario::makeUniformFleet(1, 5)};
    const sim::SimTime now = fleet.sim().now();
    {
        FaultInjector injector{
            fleet, planOf({{now + sim::seconds(30.0), FaultKind::modem_reset, 0, 0.0, {}}})};
        injector.arm();
    }
    // The scheduled reset died with the injector: nothing fires.
    fleet.sim().runUntil(now + sim::seconds(40.0));
    EXPECT_EQ(obs::Registry::instance().counter("fault.injected").value(), 0u);
}

}  // namespace
}  // namespace onelab::fault
