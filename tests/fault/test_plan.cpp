// FaultPlan: seeded generation must be deterministic, events stay
// sorted, and the JSON round-trip preserves every field (times to
// sub-microsecond, magnitudes exactly).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "fault/plan.hpp"

namespace onelab::fault {
namespace {

RandomPlanConfig config(std::uint64_t seed) {
    RandomPlanConfig c;
    c.seed = seed;
    c.siteCount = 3;
    c.start = sim::seconds(10.0);
    c.horizon = sim::seconds(600.0);
    c.meanGap = sim::seconds(20.0);
    return c;
}

TEST(FaultPlan, SameSeedSamePlan) {
    const FaultPlan a = FaultPlan::random(config(7));
    const FaultPlan b = FaultPlan::random(config(7));
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 0u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].site, b.events()[i].site);
        EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
        EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    }
}

TEST(FaultPlan, DifferentSeedDifferentPlan) {
    const FaultPlan a = FaultPlan::random(config(7));
    const FaultPlan b = FaultPlan::random(config(8));
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a.events()[i].at != b.events()[i].at ||
                  a.events()[i].kind != b.events()[i].kind;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, GeneratedEventsAreSortedAndInRange) {
    const RandomPlanConfig c = config(42);
    const FaultPlan plan = FaultPlan::random(c);
    ASSERT_GT(plan.size(), 0u);
    sim::SimTime previous = c.start;
    for (const FaultEvent& event : plan.events()) {
        EXPECT_GE(event.at, previous);
        EXPECT_LT(event.at, c.horizon);
        EXPECT_GE(event.site, 0);
        EXPECT_LT(event.site, int(c.siteCount));
        previous = event.at;
    }
}

TEST(FaultPlan, AddKeepsSortedStable) {
    FaultPlan plan;
    plan.add({sim::seconds(5.0), FaultKind::modem_reset, 1, 0.0, {}});
    plan.add({sim::seconds(1.0), FaultKind::ue_detach, 0, 0.0, {}});
    plan.add({sim::seconds(5.0), FaultKind::at_error, 2, 1.0, {}});  // tie with [0]
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.events()[0].kind, FaultKind::ue_detach);
    EXPECT_EQ(plan.events()[1].kind, FaultKind::modem_reset);  // inserted first, stays first
    EXPECT_EQ(plan.events()[2].kind, FaultKind::at_error);
}

TEST(FaultPlan, KindNamesRoundTrip) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
        const auto kind = FaultKind(i);
        const auto back = kindFromName(kindName(kind));
        ASSERT_TRUE(back.has_value()) << kindName(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(kindFromName("definitely_not_a_fault").has_value());
}

TEST(FaultPlan, JsonRoundTripPreservesEveryField) {
    const FaultPlan original = FaultPlan::random(config(123));
    ASSERT_GT(original.size(), 0u);
    const auto parsed = FaultPlan::parseJson(original.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const FaultPlan& copy = parsed.value();
    ASSERT_EQ(copy.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const FaultEvent& a = original.events()[i];
        const FaultEvent& b = copy.events()[i];
        // Times travel as milliseconds-as-double: exact to well under
        // a microsecond, which is far below any injection granularity.
        EXPECT_LE(std::abs((a.at - b.at).count()), 1000) << "event " << i;
        EXPECT_LE(std::abs((a.duration - b.duration).count()), 1000) << "event " << i;
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.site, b.site) << "event " << i;
        EXPECT_EQ(a.magnitude, b.magnitude) << "event " << i;  // %.17g: exact
    }
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
    EXPECT_FALSE(FaultPlan::parseJson("").ok());
    EXPECT_FALSE(FaultPlan::parseJson("[]").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [{}]}").ok());  // missing kind
    EXPECT_FALSE(
        FaultPlan::parseJson("{\"events\": [{\"kind\": \"warp_core_breach\"}]}").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"bogus\": 1}").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": []} trailing").ok());
    EXPECT_FALSE(FaultPlan::parseJson(
                     "{\"events\": [{\"kind\": \"ue_detach\", \"at_ms\": -5}]}")
                     .ok());
    const auto minimal = FaultPlan::parseJson("{\"events\": [{\"kind\": \"ue_detach\"}]}");
    ASSERT_TRUE(minimal.ok());
    EXPECT_EQ(minimal.value().size(), 1u);
}

// Hostile plans: a scripted fault file crosses the operator/tenant
// trust boundary, so malformed input must be a clean rejection —
// never a partial plan that arms some events and drops the rest.
TEST(FaultPlan, RejectsHostileJson) {
    // Truncated mid-structure: object, array, event, string, number.
    EXPECT_FALSE(FaultPlan::parseJson("{").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [{\"kind\": ").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [{\"kind\": \"ue_det").ok());
    EXPECT_FALSE(
        FaultPlan::parseJson("{\"events\": [{\"kind\": \"ue_detach\", \"at_ms\":").ok());
    EXPECT_FALSE(
        FaultPlan::parseJson("{\"events\": [{\"kind\": \"ue_detach\"}]").ok());

    // Wrong types where numbers/strings/arrays are required.
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": 7}").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": \"bearer_drop\"}").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [42]}").ok());
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [{\"kind\": 3}]}").ok());
    EXPECT_FALSE(FaultPlan::parseJson(
                     "{\"events\": [{\"kind\": \"ue_detach\", \"at_ms\": \"soon\"}]}")
                     .ok());

    // Unknown kinds and fields must not be skipped-and-armed-anyway.
    EXPECT_FALSE(FaultPlan::parseJson("{\"events\": [{\"kind\": \"\"}]}").ok());
    EXPECT_FALSE(FaultPlan::parseJson(
                     "{\"events\": [{\"kind\": \"ue_detach\", \"sites\": 0}]}")
                     .ok());
}

TEST(FaultPlan, RejectsDuplicateKeys) {
    // A repeated "events" array used to append both timelines — a
    // different plan than either copy alone.
    const auto doubled = FaultPlan::parseJson(
        "{\"events\": [{\"kind\": \"ue_detach\"}],"
        " \"events\": [{\"kind\": \"bearer_drop\"}]}");
    EXPECT_FALSE(doubled.ok());

    // Last-wins duplicate event fields are equally rejected.
    EXPECT_FALSE(FaultPlan::parseJson(
                     "{\"events\": [{\"kind\": \"ue_detach\", \"kind\": \"bearer_drop\"}]}")
                     .ok());
    EXPECT_FALSE(FaultPlan::parseJson(
                     "{\"events\": [{\"kind\": \"ue_detach\","
                     " \"at_ms\": 100, \"at_ms\": 900000}]}")
                     .ok());
}

TEST(FaultPlan, FileRoundTrip) {
    const FaultPlan original = FaultPlan::random(config(99));
    const std::string path = "/tmp/onelab_test_fault_plan.json";
    ASSERT_TRUE(original.saveFile(path).ok());
    const auto loaded = FaultPlan::loadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().size(), original.size());
    std::remove(path.c_str());
    EXPECT_FALSE(FaultPlan::loadFile("/tmp/onelab_no_such_plan.json").ok());
}

}  // namespace
}  // namespace onelab::fault
