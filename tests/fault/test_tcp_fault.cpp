// TCP under injected faults: the conformance ladder proves the stack
// against a scripted wire; these tests prove it against the real
// PPP/UMTS datapath while the FaultInjector pulls the rug mid-transfer
// — an RLC loss burst and a full bearer drop. The contract is the same
// both times: retransmission recovers and the delivered byte stream is
// identical to what was sent. Runs under the sanitized soak leg too.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "net/tcp.hpp"
#include "scenario/testbed.hpp"
#include "supervise/supervisor.hpp"
#include "umts/bearer.hpp"
#include "umts/network.hpp"

namespace onelab::fault {
namespace {

/// Deterministic non-trivial payload: corruption anywhere shows up as
/// a byte mismatch, not just a length mismatch.
util::Bytes patternedBlob(std::size_t size) {
    util::Bytes blob(size);
    for (std::size_t i = 0; i < size; ++i)
        blob[i] = std::uint8_t((i * 31 + (i >> 8)) & 0xFF);
    return blob;
}

/// A bulk upload from the Napoli slice to INRIA over the radio, with
/// the server accumulating every delivered byte in order.
struct TcpTransfer {
    TcpTransfer(scenario::Testbed& tb, std::size_t totalBytes)
        : blob(patternedBlob(totalBytes)) {
        serverTcp = std::make_unique<net::TcpHost>(tb.sim(), tb.inria().stack(),
                                                   util::RandomStream{202});
        EXPECT_TRUE(serverTcp
                        ->listen(8080,
                                 [this](net::TcpConnection& c) {
                                     c.onData = [this](util::ByteView d) {
                                         received.insert(received.end(), d.begin(),
                                                         d.end());
                                     };
                                     c.onPeerClosed = [&c] { c.close(); };
                                 })
                        .ok());
        conn = tb.napoli().tcp().connect(tb.inriaEthAddress(), 8080,
                                         tb.umtsSlice().xid);
        conn->onConnected = [this] {
            ASSERT_TRUE(conn->send({blob.data(), blob.size()}).ok());
            conn->close();
        };
        conn->onClosed = [this] { closed = true; };
    }

    util::Bytes blob;
    util::Bytes received;
    std::unique_ptr<net::TcpHost> serverTcp;
    net::TcpConnection* conn = nullptr;
    bool closed = false;
};

TEST(TcpFault, RlcLossBurstMidTransferRecoversByteExact) {
    scenario::Testbed tb;
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());

    TcpTransfer transfer{tb, 256 * 1024};
    // 30% RLC loss for 8 s, early enough to land inside the transfer
    // even after the bearer upgrades to the 384 kbps DCH.
    FaultPlan plan;
    plan.add({tb.sim().now() + sim::seconds(2.0), FaultKind::rlc_loss_burst, 0, 0.30,
              sim::seconds(8.0)});
    FaultInjector injector{tb.fleet(), plan};
    injector.arm();

    tb.sim().runUntil(tb.sim().now() + sim::seconds(180.0));

    EXPECT_EQ(injector.stats().fired, 1u);
    EXPECT_EQ(injector.stats().skipped, 0u);
    ASSERT_TRUE(transfer.closed);
    // Byte-exact: same length, same content, in order.
    EXPECT_EQ(transfer.received, transfer.blob);
    // The burst really bit — recovery happened through retransmission.
    EXPECT_GT(transfer.conn->stats().retransmissions, 0u);
    EXPECT_EQ(transfer.conn->state(), net::TcpState::closed);
}

TEST(TcpFault, BearerDropMidTransferRecoversByteExact) {
    // Supervised testbed with a fast recovery ladder: the bearer drop
    // fires NO CARRIER, the supervisor redials, the single UE gets its
    // subscriber address back from the pool, and the stalled
    // connection's RTO backoff outlives the outage.
    scenario::TestbedConfig config;
    config.supervise.enable = true;
    config.supervise.config.stabilityWindow = sim::seconds(5.0);
    config.supervise.config.redialInitialBackoff = sim::seconds(1.0);
    config.supervise.config.redialMaxBackoff = sim::seconds(4.0);
    scenario::Testbed tb{config};
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    const net::Ipv4Address addressBefore =
        tb.operatorNetwork().sessionAt(0)->subscriberAddress();

    TcpTransfer transfer{tb, 256 * 1024};
    FaultPlan plan;
    plan.add({tb.sim().now() + sim::seconds(2.0), FaultKind::bearer_drop, 0, 0.0, {}});
    FaultInjector injector{tb.fleet(), plan};
    injector.arm();

    const sim::SimTime deadline = tb.sim().now() + sim::seconds(300.0);
    while (!transfer.closed && tb.sim().now() < deadline)
        tb.sim().runUntil(tb.sim().now() + sim::seconds(1.0));

    EXPECT_EQ(injector.stats().fired, 1u);
    EXPECT_EQ(injector.stats().skipped, 0u);
    ASSERT_TRUE(transfer.closed);
    EXPECT_EQ(transfer.received, transfer.blob);
    EXPECT_GT(transfer.conn->stats().timeouts, 0u);
    // The redial reclaimed the same subscriber address — that is what
    // let the old connection's 4-tuple survive the outage.
    ASSERT_NE(tb.operatorNetwork().sessionAt(0), nullptr);
    EXPECT_EQ(tb.operatorNetwork().sessionAt(0)->subscriberAddress(), addressBefore);
    // The supervisor saw the incident and recovered the link.
    ASSERT_NE(tb.fleet().umtsSite(0).supervisor(), nullptr);
    EXPECT_GE(tb.fleet().umtsSite(0).supervisor()->incidents(), 1);
}

}  // namespace
}  // namespace onelab::fault
