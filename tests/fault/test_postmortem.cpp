// Post-mortem acceptance: a supervised link driven to FAILED_OVER by a
// known fault plan must leave a flight.json behind, and that dump must
// parse (util::JsonValue) and reconstruct the fault/ladder sequence in
// order — the first drop, the recovery, the second drop, the park.
// This is the workflow EXPERIMENTS.md documents: soak fails, read the
// black box with tools/obsq, see exactly what the ladder did.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "obs/flight.hpp"
#include "obs/run_context.hpp"
#include "obs/telemetry.hpp"
#include "scenario/testbed.hpp"
#include "supervise/supervisor.hpp"
#include "util/json.hpp"

namespace onelab::fault {
namespace {

template <typename Pred>
bool settle(scenario::Testbed& tb, sim::SimTime patience, Pred&& pred) {
    const sim::SimTime deadline = tb.sim().now() + patience;
    while (!pred() && tb.sim().now() < deadline)
        tb.sim().runUntil(tb.sim().now() + sim::millis(500));
    return pred();
}

FaultPlan dropAt(sim::SimTime at) {
    FaultPlan plan;
    plan.add({at, FaultKind::bearer_drop, 0, 0.0, {}});
    return plan;
}

TEST(PostMortem, ParkedSupervisorDumpsAReconstructibleFlightRecording) {
    // Private observability world: the attached sim clock dies with the
    // context instead of dangling into the next test.
    obs::RunContext context{7};
    obs::beginRun();
    const std::string path = testing::TempDir() + "onelab_postmortem_flight.json";
    std::remove(path.c_str());
    obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
    recorder.setDumpPath(path);

    scenario::TestbedConfig config;
    config.supervise.enable = true;
    config.supervise.config.stabilityWindow = sim::seconds(5.0);
    // Two flaps inside the window trip the breaker: the second known
    // drop parks the link, which is the dump trigger under test.
    config.supervise.config.breaker.flapThreshold = 2;
    config.supervise.config.breaker.window = sim::seconds(300.0);
    config.supervise.config.breaker.cooldown = sim::seconds(120.0);
    scenario::Testbed tb{config};
    tb.sim().attachLogClock();  // flight entries stamped with sim time
    ASSERT_TRUE(tb.startUmts().ok());
    supervise::LinkSupervisor* supervisor = tb.fleet().umtsSite(0).supervisor();
    ASSERT_NE(supervisor, nullptr);

    // Known fault plan, first event: drop the bearer 1 s from now.
    FaultInjector firstDrop{tb.fleet(), dropAt(tb.sim().now() + sim::seconds(1.0))};
    firstDrop.arm();
    ASSERT_TRUE(settle(tb, sim::seconds(120.0), [&] {
        return supervisor->incidents() >= 1 &&
               supervisor->health() == supervise::Health::healthy;
    })) << "first drop did not recover";
    EXPECT_EQ(recorder.dumps(), 0u) << "a recovered incident must not dump";

    // Second known drop inside the breaker window: park + dump.
    FaultInjector secondDrop{tb.fleet(), dropAt(tb.sim().now() + sim::seconds(1.0))};
    secondDrop.arm();
    ASSERT_TRUE(settle(tb, sim::seconds(30.0), [&] {
        return supervisor->health() == supervise::Health::failed_over;
    })) << "second drop did not trip the breaker";
    EXPECT_EQ(recorder.dumps(), 1u);

    // The black box is on disk, parses, and carries the story.
    const auto doc = util::JsonValue::parseFile(path);
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    EXPECT_NE(doc.value().stringOr("reason", "").find("parked (failed_over)"),
              std::string::npos);
    const util::JsonValue* entries = doc.value().find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_TRUE(entries->isArray());

    // Reconstruct the sequence: drop #1, healthy -> recovering,
    // recovery back to healthy, drop #2, then the failed_over edge —
    // strictly in that order.
    std::vector<std::size_t> dropIndexes;
    std::size_t firstRecovering = SIZE_MAX, backHealthy = SIZE_MAX, parked = SIZE_MAX;
    const auto& list = entries->array();
    for (std::size_t i = 0; i < list.size(); ++i) {
        const util::JsonValue& entry = list[i];
        const std::string kind = entry.stringOr("kind", "");
        const std::string cat = entry.stringOr("cat", "");
        const std::string detail = entry.stringOr("detail", "");
        if (kind == "event" && cat == "fault" &&
            entry.stringOr("name", "") == "bearer_drop")
            dropIndexes.push_back(i);
        if (kind == "transition" && cat == "supervise") {
            if (firstRecovering == SIZE_MAX && detail == "healthy -> recovering")
                firstRecovering = i;
            if (firstRecovering != SIZE_MAX && backHealthy == SIZE_MAX &&
                detail.find("-> healthy") != std::string::npos)
                backHealthy = i;
            if (detail.find("-> failed_over") != std::string::npos) parked = i;
        }
    }
    ASSERT_GE(dropIndexes.size(), 2u) << "both plan events must be on record";
    ASSERT_NE(firstRecovering, SIZE_MAX);
    ASSERT_NE(backHealthy, SIZE_MAX);
    ASSERT_NE(parked, SIZE_MAX);
    EXPECT_LT(dropIndexes.front(), firstRecovering);
    EXPECT_LT(firstRecovering, backHealthy);
    EXPECT_LT(backHealthy, dropIndexes[1]);
    EXPECT_LT(dropIndexes[1], parked);

    std::remove(path.c_str());
    recorder.setDumpPath("");
    recorder.clear();
}

}  // namespace
}  // namespace onelab::fault
