#include "pl/node_os.hpp"

#include <gtest/gtest.h>

namespace onelab::pl {
namespace {

struct NodeOsTest : ::testing::Test {
    sim::Simulator sim;
    NodeOs node{sim, "planetlab1.unina.it"};
};

TEST_F(NodeOsTest, SlicesGetDistinctXids) {
    Slice& a = node.createSlice("unina_umts");
    Slice& b = node.createSlice("unina_other");
    EXPECT_NE(a.xid, b.xid);
    EXPECT_GT(a.xid, 0);
    EXPECT_EQ(a.defaultMark(), std::uint32_t(a.xid));
}

TEST_F(NodeOsTest, CreateSliceIsIdempotent) {
    Slice& a = node.createSlice("s");
    Slice& again = node.createSlice("s");
    EXPECT_EQ(&a, &again);
    EXPECT_EQ(node.slices().size(), 1u);
}

TEST_F(NodeOsTest, SliceReferencesStableAcrossGrowth) {
    Slice& first = node.createSlice("first");
    const int firstXid = first.xid;
    for (int i = 0; i < 100; ++i) node.createSlice("slice" + std::to_string(i));
    EXPECT_EQ(first.xid, firstXid);
    EXPECT_EQ(node.findSlice("first"), &first);
}

TEST_F(NodeOsTest, FindSliceMissingReturnsNull) {
    EXPECT_EQ(node.findSlice("ghost"), nullptr);
}

TEST_F(NodeOsTest, RootShellRequiresRootContext) {
    Slice& slice = node.createSlice("s");
    const auto denied = node.shell(node.sliceContext(slice));
    ASSERT_FALSE(denied.ok());
    EXPECT_EQ(denied.error().code, util::Error::Code::permission_denied);

    const auto granted = node.shell(node.rootContext());
    ASSERT_TRUE(granted.ok());
    EXPECT_NE(granted.value(), nullptr);
}

TEST_F(NodeOsTest, DefaultContextIsNotRoot) {
    Context context;
    EXPECT_FALSE(context.isRoot());
    EXPECT_TRUE(node.rootContext().isRoot());
}

TEST_F(NodeOsTest, SliceSocketsCarryXid) {
    Slice& slice = node.createSlice("s");
    const auto socket = node.openSliceUdp(slice, 5000);
    ASSERT_TRUE(socket.ok());
    EXPECT_EQ(socket.value()->sliceXid(), slice.xid);
    const auto rootSocket = node.openRootUdp(5001);
    ASSERT_TRUE(rootSocket.ok());
    EXPECT_EQ(rootSocket.value()->sliceXid(), 0);
}

TEST_F(NodeOsTest, TcpHostIsLazySharedAndHostnameSeeded) {
    net::TcpHost& first = node.tcp();
    EXPECT_EQ(&first, &node.tcp());  // one shared layer per node
    EXPECT_EQ(first.connectionCount(), 0u);

    // Seeding is a pure function of the hostname: two nodes with the
    // same name draw identical ISS/port sequences, different names
    // diverge. That is what keeps fleet runs shard-deterministic.
    NodeOs twinA{sim, "twin.example.org"};
    NodeOs twinB{sim, "twin.example.org"};
    NodeOs other{sim, "other.example.org"};
    Slice& sliceA = twinA.createSlice("pl_probe");
    Slice& sliceB = twinB.createSlice("pl_probe");
    Slice& sliceC = other.createSlice("pl_probe");
    const net::Ipv4Address nowhere{192, 0, 2, 1};
    net::TcpConnection* a =
        twinA.tcp().connect(nowhere, 80, twinA.sliceContext(sliceA).xid());
    net::TcpConnection* b =
        twinB.tcp().connect(nowhere, 80, twinB.sliceContext(sliceB).xid());
    net::TcpConnection* c =
        other.tcp().connect(nowhere, 80, other.sliceContext(sliceC).xid());
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(a->iss().value(), b->iss().value());
    EXPECT_NE(a->iss().value(), c->iss().value());
    // VNET+ tagging: the connection carries the slice's xid.
    EXPECT_EQ(a->sliceXid(), twinA.sliceContext(sliceA).xid());
}

TEST_F(NodeOsTest, VsysIsPerNode) {
    node.vsys().install("umts", [](const Slice&, const std::vector<std::string>&,
                                   Vsys::Completion done) { done(VsysResult{0, {}}); });
    EXPECT_EQ(node.vsys().scripts().size(), 1u);
    NodeOs other{sim, "other"};
    EXPECT_TRUE(other.vsys().scripts().empty());
}

}  // namespace
}  // namespace onelab::pl
