#include "pl/vsys.hpp"

#include <gtest/gtest.h>

namespace onelab::pl {
namespace {

Slice makeSlice(const std::string& name, int xid) { return Slice{name, xid}; }

struct VsysTest : ::testing::Test {
    util::Result<VsysResult> invoke(const Slice& slice, const std::string& script,
                                    const std::vector<std::string>& args) {
        std::optional<util::Result<VsysResult>> outcome;
        vsys.invoke(slice, script, args,
                    [&](util::Result<VsysResult> r) { outcome = std::move(r); });
        if (!outcome) return util::err(util::Error::Code::timeout, "no completion");
        return std::move(*outcome);
    }

    Vsys vsys;
};

TEST_F(VsysTest, UnknownScriptFails) {
    const auto result = invoke(makeSlice("s", 100), "nosuch", {});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::Error::Code::not_found);
}

TEST_F(VsysTest, AclEnforced) {
    vsys.install("umts", [](const Slice&, const std::vector<std::string>&,
                            Vsys::Completion done) { done(VsysResult{0, {"ok"}}); });
    const auto denied = invoke(makeSlice("outsider", 101), "umts", {"start"});
    ASSERT_FALSE(denied.ok());
    EXPECT_EQ(denied.error().code, util::Error::Code::permission_denied);

    vsys.allow("umts", "insider");
    EXPECT_TRUE(vsys.isAllowed("umts", "insider"));
    EXPECT_FALSE(vsys.isAllowed("umts", "outsider"));
    const auto allowed = invoke(makeSlice("insider", 102), "umts", {"start"});
    ASSERT_TRUE(allowed.ok());
    EXPECT_EQ(allowed.value().exitCode, 0);
}

TEST_F(VsysTest, RevokeRemovesAccess) {
    vsys.install("umts", [](const Slice&, const std::vector<std::string>&,
                            Vsys::Completion done) { done(VsysResult{0, {}}); });
    vsys.allow("umts", "s");
    vsys.revoke("umts", "s");
    EXPECT_FALSE(invoke(makeSlice("s", 100), "umts", {}).ok());
}

TEST_F(VsysTest, ArgsMarshalThroughPipeLine) {
    std::vector<std::string> seenArgs;
    std::string seenSlice;
    vsys.install("echo", [&](const Slice& caller, const std::vector<std::string>& args,
                             Vsys::Completion done) {
        seenSlice = caller.name;
        seenArgs = args;
        done(VsysResult{0, {"echoed"}});
    });
    vsys.allow("echo", "s");
    const auto result =
        invoke(makeSlice("s", 100), "echo", {"add", "destination", "138.96.250.20/32"});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(seenSlice, "s");
    EXPECT_EQ(seenArgs, (std::vector<std::string>{"add", "destination", "138.96.250.20/32"}));
    EXPECT_EQ(result.value().output, (std::vector<std::string>{"echoed"}));
}

TEST_F(VsysTest, RejectsPipeUnsafeArguments) {
    vsys.install("echo", [](const Slice&, const std::vector<std::string>&,
                            Vsys::Completion done) { done(VsysResult{0, {}}); });
    vsys.allow("echo", "s");
    EXPECT_FALSE(invoke(makeSlice("s", 100), "echo", {"two words"}).ok());
    EXPECT_FALSE(invoke(makeSlice("s", 100), "echo", {""}).ok());
    EXPECT_FALSE(invoke(makeSlice("s", 100), "echo", {"line\nbreak"}).ok());
}

TEST_F(VsysTest, NonZeroExitCodePropagates) {
    vsys.install("fail", [](const Slice&, const std::vector<std::string>&,
                            Vsys::Completion done) { done(VsysResult{16, {"error=busy"}}); });
    vsys.allow("fail", "s");
    const auto result = invoke(makeSlice("s", 100), "fail", {});
    ASSERT_TRUE(result.ok());  // invocation succeeded...
    EXPECT_FALSE(result.value().ok());  // ...but the backend reported failure
    EXPECT_EQ(result.value().exitCode, 16);
}

TEST_F(VsysTest, AsyncBackendCompletesLater) {
    Vsys::Completion saved;
    vsys.install("slow", [&](const Slice&, const std::vector<std::string>&,
                             Vsys::Completion done) { saved = std::move(done); });
    vsys.allow("slow", "s");
    std::optional<int> exitCode;
    vsys.invoke(makeSlice("s", 100), "slow", {},
                [&](util::Result<VsysResult> r) { exitCode = r.value().exitCode; });
    EXPECT_FALSE(exitCode.has_value());  // backend still "running"
    saved(VsysResult{0, {}});
    EXPECT_EQ(exitCode, 0);
}

TEST_F(VsysTest, ScriptListing) {
    vsys.install("umts", [](const Slice&, const std::vector<std::string>&,
                            Vsys::Completion done) { done(VsysResult{0, {}}); });
    vsys.install("other", [](const Slice&, const std::vector<std::string>&,
                             Vsys::Completion done) { done(VsysResult{0, {}}); });
    const auto scripts = vsys.scripts();
    EXPECT_EQ(scripts.size(), 2u);
}

}  // namespace
}  // namespace onelab::pl
