#include "pl/kernel_modules.hpp"

#include <gtest/gtest.h>

#include "pl/node_os.hpp"

namespace onelab::pl {
namespace {

struct ModulesTest : ::testing::Test {
    ModulesTest() : registry(kPlanetLabKernel) { installPaperModuleSet(registry); }
    KernelModuleRegistry registry;
};

TEST_F(ModulesTest, ModprobeLoadsDependenciesInOrder) {
    ASSERT_TRUE(registry.modprobe("ppp_async").ok());
    EXPECT_TRUE(registry.isLoaded("ppp_async"));
    EXPECT_TRUE(registry.isLoaded("ppp_generic"));
    EXPECT_TRUE(registry.isLoaded("slhc"));
    const auto order = registry.loadedModules();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "slhc");
    EXPECT_EQ(order[1], "ppp_generic");
    EXPECT_EQ(order[2], "ppp_async");
}

TEST_F(ModulesTest, ModprobeIsIdempotent) {
    ASSERT_TRUE(registry.modprobe("ppp_deflate").ok());
    ASSERT_TRUE(registry.modprobe("ppp_deflate").ok());
    EXPECT_EQ(registry.loadedModules().size(), 3u);  // slhc, ppp_generic, ppp_deflate
}

TEST_F(ModulesTest, MissingModuleFails) {
    const auto result = registry.modprobe("fglrx");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::Error::Code::not_found);
}

TEST_F(ModulesTest, VanillaNozomiRefusesThePlanetLabKernel) {
    // The paper §2.3: the nozomi module required modifications to run
    // with the PlanetLab 2.6.22 kernel.
    const auto vanilla = registry.modprobe("nozomi");
    ASSERT_FALSE(vanilla.ok());
    EXPECT_EQ(vanilla.error().code, util::Error::Code::unsupported);
    EXPECT_FALSE(registry.isLoaded("nozomi"));

    const auto patched = registry.modprobe("nozomi_onelab");
    EXPECT_TRUE(patched.ok());
    EXPECT_TRUE(registry.isLoaded("nozomi_onelab"));
}

TEST_F(ModulesTest, HuaweiChainLoads) {
    ASSERT_TRUE(registry.modprobe("pl2303").ok());
    EXPECT_TRUE(registry.isLoaded("usbserial"));
}

TEST_F(ModulesTest, RmmodRespectsDependents) {
    ASSERT_TRUE(registry.modprobe("ppp_async").ok());
    const auto busy = registry.rmmod("ppp_generic");
    ASSERT_FALSE(busy.ok());
    EXPECT_EQ(busy.error().code, util::Error::Code::busy);
    EXPECT_TRUE(registry.rmmod("ppp_async").ok());
    EXPECT_TRUE(registry.rmmod("ppp_generic").ok());
    EXPECT_FALSE(registry.rmmod("ppp_generic").ok());  // already gone
}

TEST_F(ModulesTest, DependencyCycleDetected) {
    KernelModuleRegistry cyclic{"1.0"};
    cyclic.install({.name = "a", .dependencies = {"b"}, .requiredKernelPrefix = ""});
    cyclic.install({.name = "b", .dependencies = {"a"}, .requiredKernelPrefix = ""});
    const auto result = cyclic.modprobe("a");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::Error::Code::invalid_argument);
}

TEST(NodeModules, ShellModprobeLsmodRmmod) {
    sim::Simulator sim;
    NodeOs node{sim, "node"};
    tools::RootShell* shell = node.shell(node.rootContext()).value();
    ASSERT_TRUE(shell->exec("modprobe ppp_async").ok());
    const auto listing = shell->exec("lsmod");
    ASSERT_TRUE(listing.ok());
    EXPECT_NE(listing.value().find("ppp_generic"), std::string::npos);
    EXPECT_NE(listing.value().find("ppp_async"), std::string::npos);
    // Dependency protection surfaces through the shell too.
    EXPECT_FALSE(shell->exec("rmmod ppp_generic").ok());
    EXPECT_TRUE(shell->exec("rmmod ppp_async").ok());
    EXPECT_TRUE(shell->exec("rmmod ppp_generic").ok());
    EXPECT_FALSE(shell->exec("modprobe nozomi").ok());  // wrong kernel
    EXPECT_FALSE(shell->exec("modprobe").ok());         // usage error
}

TEST(NodeModules, RootContextGuard) {
    sim::Simulator sim;
    NodeOs node{sim, "node"};
    Slice& slice = node.createSlice("s");
    const auto denied = node.modules(node.sliceContext(slice));
    ASSERT_FALSE(denied.ok());
    EXPECT_EQ(denied.error().code, util::Error::Code::permission_denied);
    const auto granted = node.modules(node.rootContext());
    ASSERT_TRUE(granted.ok());
    // The paper's module set ships with the node image.
    EXPECT_TRUE(granted.value()->modprobe("ppp_async").ok());
    EXPECT_EQ(granted.value()->kernelVersion(), kPlanetLabKernel);
}

}  // namespace
}  // namespace onelab::pl
