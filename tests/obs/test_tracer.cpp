#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace onelab::obs {
namespace {

TEST(TracerTest, DisabledRecordsNothing) {
    Tracer tracer;
    tracer.instant("cat", "nope");
    tracer.begin("cat", "nope");
    tracer.end("cat", "nope");
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(TracerTest, ClockStampsSimTime) {
    Tracer tracer;
    tracer.setEnabled(true);
    std::int64_t now = 5'000'000;
    tracer.setClock([&now] { return now; });
    tracer.instant("cat", "a");
    now = 7'000'000;
    tracer.instant("cat", "b");
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].timeNs, 5'000'000);
    EXPECT_EQ(events[1].timeNs, 7'000'000);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.setCapacity(4);
    for (int i = 0; i < 6; ++i) tracer.instant("cat", std::to_string(i));
    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    const auto events = tracer.events();  // oldest first
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, "2");
    EXPECT_EQ(events[3].name, "5");
}

TEST(TracerTest, ShrinkingCapacityKeepsNewest) {
    Tracer tracer;
    tracer.setEnabled(true);
    for (int i = 0; i < 8; ++i) tracer.instant("cat", std::to_string(i));
    tracer.setCapacity(3);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].name, "5");
    EXPECT_EQ(events[2].name, "7");
    EXPECT_EQ(tracer.dropped(), 5u);
}

TEST(TracerTest, ChromeJsonShape) {
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.setClock([] { return std::int64_t(1'234'000); });
    tracer.setThread(2);
    tracer.begin("umts.bearer", "grant_wait");
    tracer.instant("umts.bearer", "upgrade", "64 -> 384 kbps");
    tracer.end("umts.bearer", "grant_wait");
    const std::string json = tracer.exportChromeJson();
    EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"g\""), std::string::npos);  // global instant
    EXPECT_NE(json.find("\"ts\":1234.000"), std::string::npos);  // us, 3 decimals
    EXPECT_NE(json.find("\"pid\":1,\"tid\":2"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"detail\":\"64 -> 384 kbps\"}"), std::string::npos);
}

TEST(TracerTest, JsonStringsAreEscaped) {
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.instant("cat", "quote\"back\\slash", "line\nbreak");
    const std::string json = tracer.exportChromeJson();
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

TEST(TracerTest, IdenticalSequencesExportIdenticalJson) {
    const auto run = [] {
        Tracer tracer;
        tracer.setEnabled(true);
        std::int64_t now = 0;
        tracer.setClock([&now] { return now; });
        for (int i = 0; i < 50; ++i) {
            now += 1'000'000;
            tracer.begin("cat", "op" + std::to_string(i));
            tracer.instant("cat", "tick", "i=" + std::to_string(i));
            tracer.end("cat", "op" + std::to_string(i));
        }
        return tracer.exportChromeJson();
    };
    EXPECT_EQ(run(), run());
}

TEST(TracerTest, ClearDropsEventsKeepsConfiguration) {
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.setClock([] { return std::int64_t(42); });
    tracer.instant("cat", "x");
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    tracer.instant("cat", "y");  // clock survives the clear
    ASSERT_EQ(tracer.eventCount(), 1u);
    EXPECT_EQ(tracer.events()[0].timeNs, 42);
}

TEST(TracerTest, SpanRecordsBeginEndPair) {
    // Span uses the process-wide tracer; save/restore its state.
    Tracer& tracer = Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    tracer.setClock([] { return std::int64_t(1'000); });
    {
        Tracer::Span span("modem.at", "ATD*99#", "dial");
        tracer.instant("modem.at", "final", "CONNECT");
    }
    tracer.setEnabled(false);
    const auto events = tracer.events();
    tracer.setClock(nullptr);
    tracer.clear();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].phase, TraceEvent::Phase::begin);
    EXPECT_EQ(events[0].name, "ATD*99#");
    EXPECT_EQ(events[0].detail, "dial");
    EXPECT_EQ(events[1].phase, TraceEvent::Phase::instant);
    EXPECT_EQ(events[2].phase, TraceEvent::Phase::end);
    EXPECT_EQ(events[2].name, "ATD*99#");
}

TEST(TracerTest, ThreadLaneIsStamped) {
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.instant("cat", "lane1");
    tracer.setThread(2);
    tracer.instant("cat", "lane2");
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].thread, 1);
    EXPECT_EQ(events[1].thread, 2);
}

}  // namespace
}  // namespace onelab::obs
