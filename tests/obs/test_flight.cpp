// FlightRecorder: the always-on post-mortem ring. Pins the ring
// semantics (wraparound, truncation, capacity), the dump-once
// contract, the JSON dump shape (it must parse with util::JsonValue —
// obsq reads these), and the fatal-signal dump path.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "util/json.hpp"

namespace onelab::obs {
namespace {

TEST(FlightRecorder, CapacityAndEntryLayoutArePinned) {
    // The post-mortem budget: 4096 fixed-size records, text truncated
    // into inline fields so note() never allocates. Changing any of
    // these changes the resident footprint and what a dump can hold —
    // do it deliberately.
    EXPECT_EQ(FlightRecorder::kDefaultCapacity, 4096u);
    EXPECT_EQ(FlightEntry::kCategoryBytes, 24u);
    EXPECT_EQ(FlightEntry::kNameBytes, 48u);
    EXPECT_EQ(FlightEntry::kDetailBytes, 104u);
    FlightRecorder recorder;
    EXPECT_EQ(recorder.capacity(), FlightRecorder::kDefaultCapacity);
    EXPECT_TRUE(recorder.enabled()) << "the black box must be on by default";
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEntries) {
    FlightRecorder recorder{8};
    for (int i = 0; i < 20; ++i)
        recorder.note(FlightKind::event, "test", "entry", "", i);
    EXPECT_EQ(recorder.entryCount(), 8u);
    EXPECT_EQ(recorder.dropped(), 12u);
    EXPECT_EQ(recorder.recorded(), 20u);
    const std::vector<FlightEntry> entries = recorder.entries();
    ASSERT_EQ(entries.size(), 8u);
    // Oldest first: values 12..19 survive.
    for (std::size_t i = 0; i < entries.size(); ++i)
        EXPECT_EQ(entries[i].value, std::int64_t(12 + i));
}

TEST(FlightRecorder, TruncatesTextIntoInlineFieldsWithoutAllocating) {
    FlightRecorder recorder{4};
    const std::string longText(300, 'x');
    recorder.note(FlightKind::log, longText, longText, longText);
    const FlightEntry entry = recorder.entries().at(0);
    EXPECT_EQ(entry.categoryView().size(), FlightEntry::kCategoryBytes - 1);
    EXPECT_EQ(entry.nameView().size(), FlightEntry::kNameBytes - 1);
    EXPECT_EQ(entry.detailView().size(), FlightEntry::kDetailBytes - 1);
    EXPECT_EQ(entry.categoryView(), std::string(FlightEntry::kCategoryBytes - 1, 'x'));
}

TEST(FlightRecorder, DisabledRecorderDropsNotesAndHidesFromFeeders) {
    FlightRecorder recorder{4};
    FlightRecorder* previous = FlightRecorder::setCurrent(&recorder);
    recorder.setEnabled(false);
    EXPECT_EQ(FlightRecorder::currentIfEnabled(), nullptr);
    recorder.note(FlightKind::event, "test", "dropped");
    EXPECT_EQ(recorder.entryCount(), 0u);
    recorder.setEnabled(true);
    EXPECT_EQ(FlightRecorder::currentIfEnabled(), &recorder);
    FlightRecorder::setCurrent(previous);
}

TEST(FlightRecorder, ExportJsonParsesAndCarriesClockedEntries) {
    FlightRecorder recorder{8};
    std::int64_t simNowNs = 0;
    recorder.setClock([&simNowNs] { return simNowNs; });
    simNowNs = 1500000;
    recorder.noteTransition("supervise", "222880000000001", "healthy -> recovering");
    simNowNs = 2000000;
    recorder.noteMetric("fault.injected", 3);

    const auto doc = util::JsonValue::parse(recorder.exportJson("unit test"));
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    EXPECT_EQ(doc.value().stringOr("reason", ""), "unit test");
    EXPECT_DOUBLE_EQ(doc.value().numberOr("dropped", -1.0), 0.0);
    const util::JsonValue* entries = doc.value().find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->array().size(), 2u);
    const util::JsonValue& first = entries->array()[0];
    EXPECT_EQ(first.stringOr("kind", ""), "transition");
    EXPECT_DOUBLE_EQ(first.numberOr("t_ns", 0.0), 1500000.0);
    EXPECT_EQ(first.stringOr("cat", ""), "supervise");
    EXPECT_EQ(first.stringOr("detail", ""), "healthy -> recovering");
    const util::JsonValue& second = entries->array()[1];
    EXPECT_EQ(second.stringOr("kind", ""), "metric");
    EXPECT_DOUBLE_EQ(second.numberOr("value", 0.0), 3.0);
}

TEST(FlightRecorder, RequestDumpFiresOncePerRun) {
    FlightRecorder recorder{8};
    recorder.note(FlightKind::event, "test", "breach");
    const std::string path = testing::TempDir() + "onelab_flight_once.json";
    std::remove(path.c_str());

    recorder.requestDump("before a path is set: silent no-op");
    EXPECT_EQ(recorder.dumps(), 0u);

    recorder.setDumpPath(path);
    recorder.requestDump("first breach");
    recorder.requestDump("second breach (same run)");
    EXPECT_EQ(recorder.dumps(), 1u) << "repeat triggers must not re-write the dump";

    const auto doc = util::JsonValue::parseFile(path);
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    EXPECT_EQ(doc.value().stringOr("reason", ""), "first breach");

    // clear() re-arms the dump for the next run on the same recorder.
    recorder.clear();
    recorder.setDumpPath(path);
    recorder.note(FlightKind::event, "test", "breach2");
    recorder.requestDump("next run");
    EXPECT_EQ(recorder.dumps(), 1u);  // clear() zeroed the counter too
    const auto next = util::JsonValue::parseFile(path);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.value().stringOr("reason", ""), "next run");
    std::remove(path.c_str());
}

TEST(FlightRecorder, SyncMetricsDeltaSyncsIntoRegistry) {
    FlightRecorder recorder{2};
    Registry registry;
    registerFlightAndProfileMetricFamilies(registry);
    for (int i = 0; i < 5; ++i) recorder.note(FlightKind::event, "test", "n");
    recorder.syncMetrics(registry);
    EXPECT_EQ(registry.counter("recorder.entries").value(), 5u);
    EXPECT_EQ(registry.counter("recorder.dropped").value(), 3u);
    EXPECT_EQ(registry.gauge("recorder.buffered").value(), 2);
    // Re-syncing the same state must not double-count.
    recorder.syncMetrics(registry);
    EXPECT_EQ(registry.counter("recorder.entries").value(), 5u);
}

using FlightRecorderDeathTest = ::testing::Test;

TEST(FlightRecorderDeathTest, FatalSignalDumpsTheBlackBox) {
    const std::string path = testing::TempDir() + "onelab_flight_crash.json";
    std::remove(path.c_str());
    installCrashDump();
    FlightRecorder& recorder = FlightRecorder::instance();
    recorder.clear();
    recorder.setDumpPath(path);
    recorder.note(FlightKind::event, "test", "about_to_crash", "last words");

    // The death-test child inherits the recorder and the signal
    // handlers; its abort must leave flight.json behind for the
    // parent to read.
    EXPECT_DEATH(std::abort(), "");

    const auto doc = util::JsonValue::parseFile(path);
    ASSERT_TRUE(doc.ok()) << "crash dump missing or unreadable: " << doc.error().message;
    EXPECT_NE(doc.value().stringOr("reason", "").find("fatal signal"), std::string::npos);
    const util::JsonValue* entries = doc.value().find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->array().size(), 1u);
    EXPECT_EQ(entries->array()[0].stringOr("name", ""), "about_to_crash");
    std::remove(path.c_str());
    recorder.setDumpPath("");
    recorder.clear();
}

}  // namespace
}  // namespace onelab::obs
