#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scenario/experiment.hpp"

namespace onelab::obs {
namespace {

std::string readFile(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

std::size_t countOccurrences(const std::string& haystack, const std::string& needle) {
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/// Registry/tracer are process-wide; leave them quiet for later tests.
struct TelemetryTest : ::testing::Test {
    void TearDown() override {
        Tracer::instance().setEnabled(false);
        Tracer::instance().setClock(nullptr);
        Tracer::instance().clear();
    }
    std::filesystem::path tempDir(const std::string& leaf) const {
        return std::filesystem::path{::testing::TempDir()} / leaf;
    }
};

TEST_F(TelemetryTest, WriteTelemetryCreatesDirectoryAndFiles) {
    const auto dir = tempDir("obs-plain");
    std::filesystem::remove_all(dir);
    beginRun();
    Registry::instance().counter("telemetry.test.events").inc(3);
    Tracer::instance().instant("test", "hello");
    const auto written = writeTelemetry(dir.string());
    ASSERT_TRUE(written.ok()) << written.error().message;
    EXPECT_NE(readFile(dir / kMetricsFile).find("telemetry.test.events"),
              std::string::npos);
    EXPECT_NE(readFile(dir / kTraceFile).find("\"name\":\"hello\""), std::string::npos);
}

TEST_F(TelemetryTest, WriteTelemetryFailsOnUnwritableTarget) {
    // A path whose parent is a regular file cannot be created.
    const auto file = tempDir("obs-blocker");
    std::ofstream{file} << "x";
    const auto written = writeTelemetry((file / "sub").string());
    EXPECT_FALSE(written.ok());
}

/// The Fig. 4 regression: a full CBR run must emit exactly one
/// umts.bearer.upgrade trace event (the ~50 s knee) and populate the
/// umts.bearer.* and ditg.flow.* metrics.
TEST_F(TelemetryTest, CbrRunEmitsUpgradeEventAndMetrics) {
    const auto dir = tempDir("obs-cbr");
    std::filesystem::remove_all(dir);
    scenario::ExperimentOptions options;
    options.workload = scenario::Workload::cbr_1mbps;
    options.durationSeconds = 120.0;
    options.seed = 42;
    options.telemetryDir = dir.string();
    const auto result = scenario::runExperiment(options);
    ASSERT_EQ(result.umts.bearerUpgrades, 1);

    const std::string metrics = readFile(dir / kMetricsFile);
    ASSERT_FALSE(metrics.empty());
    // Exactly the one upgrade the knee produces, mirrored in the
    // (per-IMSI) counter...
    EXPECT_NE(metrics.find("\"name\":\"umts.bearer.222880000000001.upgrades\","
                           "\"type\":\"counter\",\"value\":1"),
              std::string::npos);
    // ...and non-zero datapath metrics on both layers.
    EXPECT_EQ(metrics.find("\"name\":\"ditg.flow.packets_sent\",\"type\":\"counter\","
                           "\"value\":0"),
              std::string::npos);
    EXPECT_NE(metrics.find("\"name\":\"ditg.flow.packets_sent\""), std::string::npos);
    EXPECT_NE(metrics.find("\"name\":\"ditg.flow.rtt_us\""), std::string::npos);
    EXPECT_GT(Registry::instance().counter("ditg.flow.packets_sent").value(), 0u);
    EXPECT_GT(
        Registry::instance().counter("umts.bearer.222880000000001.ul.chunks_delivered").value(),
        0u);
    EXPECT_GT(Registry::instance().histogram("ditg.flow.rtt_us").count(), 0u);

    const std::string trace = readFile(dir / kTraceFile);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(countOccurrences(trace, "\"name\":\"umts.bearer.upgrade\""), 1u);
    // The wait for the operator's grant is visible as a span.
    EXPECT_NE(trace.find("\"name\":\"grant_wait\",\"cat\":\"umts.bearer\",\"ph\":\"B\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"grant_wait\",\"cat\":\"umts.bearer\",\"ph\":\"E\""),
              std::string::npos);
    // Both paths landed on their own trace lane.
    EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(trace.find("\"tid\":2"), std::string::npos);
}

TEST_F(TelemetryTest, SameSeedRunsProduceByteIdenticalTelemetry) {
    const auto dirA = tempDir("obs-run-a");
    const auto dirB = tempDir("obs-run-b");
    std::filesystem::remove_all(dirA);
    std::filesystem::remove_all(dirB);
    scenario::ExperimentOptions options;
    options.workload = scenario::Workload::voip_g711;
    options.durationSeconds = 30.0;
    options.seed = 7;
    options.telemetryDir = dirA.string();
    (void)scenario::runExperiment(options);
    options.telemetryDir = dirB.string();
    (void)scenario::runExperiment(options);

    const std::string metricsA = readFile(dirA / kMetricsFile);
    ASSERT_FALSE(metricsA.empty());
    EXPECT_EQ(metricsA, readFile(dirB / kMetricsFile));
    const std::string traceA = readFile(dirA / kTraceFile);
    ASSERT_FALSE(traceA.empty());
    EXPECT_EQ(traceA, readFile(dirB / kTraceFile));
}

TEST_F(TelemetryTest, TelemetryOffLeavesTracerDisabled) {
    Tracer::instance().clear();
    scenario::ExperimentOptions options;
    options.workload = scenario::Workload::voip_g711;
    options.durationSeconds = 5.0;
    (void)scenario::runExperiment(options);
    EXPECT_FALSE(Tracer::instance().enabled());
    EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

}  // namespace
}  // namespace onelab::obs
