#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>

namespace onelab::obs {
namespace {

TEST(RegistryTest, CounterIncrements) {
    Registry registry;
    Counter& counter = registry.counter("a.b.events");
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(RegistryTest, GaugeSetAndAdd) {
    Registry registry;
    Gauge& gauge = registry.gauge("net.queue.depth");
    gauge.set(100);
    gauge.add(-30);
    EXPECT_EQ(gauge.value(), 70);
    gauge.add(-100);
    EXPECT_EQ(gauge.value(), -30);  // signed: transient negatives survive
}

TEST(RegistryTest, SameNameSharesOneInstance) {
    Registry registry;
    Counter& first = registry.counter("shared");
    Counter& second = registry.counter("shared");
    EXPECT_EQ(&first, &second);
    first.inc();
    EXPECT_EQ(second.value(), 1u);
}

TEST(RegistryTest, KindCollisionThrows) {
    Registry registry;
    (void)registry.counter("x");
    EXPECT_THROW((void)registry.gauge("x"), std::logic_error);
    EXPECT_THROW((void)registry.histogram("x"), std::logic_error);
    (void)registry.gauge("y");
    EXPECT_THROW((void)registry.counter("y"), std::logic_error);
}

TEST(RegistryTest, HistogramLogScaleBucketBoundaries) {
    Registry registry;
    Histogram& h = registry.histogram("lat", HistogramSpec{1000.0, 2.0, 4});
    ASSERT_EQ(h.bucketCount(), 5u);  // 4 finite + overflow
    EXPECT_DOUBLE_EQ(h.bucketBound(0), 1000.0);
    EXPECT_DOUBLE_EQ(h.bucketBound(1), 2000.0);
    EXPECT_DOUBLE_EQ(h.bucketBound(2), 4000.0);
    EXPECT_DOUBLE_EQ(h.bucketBound(3), 8000.0);
    EXPECT_TRUE(std::isinf(h.bucketBound(4)));

    h.observe(500.0);     // <= 1000 -> bucket 0
    h.observe(1000.0);    // boundary is inclusive -> bucket 0
    h.observe(1500.0);    // bucket 1
    h.observe(1e9);       // overflow bucket
    EXPECT_EQ(h.bucketValue(0), 2u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(2), 0u);
    EXPECT_EQ(h.bucketValue(4), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 500.0 + 1000.0 + 1500.0 + 1e9);
}

TEST(RegistryTest, HistogramSpecFixedByFirstRegistration) {
    Registry registry;
    Histogram& first = registry.histogram("h", HistogramSpec{10.0, 2.0, 4});
    Histogram& again = registry.histogram("h", HistogramSpec{999.0, 3.0, 8});
    EXPECT_EQ(&first, &again);
    EXPECT_DOUBLE_EQ(again.bucketBound(0), 10.0);
    EXPECT_EQ(again.bucketCount(), 5u);
}

TEST(RegistryTest, ResetZeroesValuesKeepsRegistrations) {
    Registry registry;
    Counter& counter = registry.counter("c");
    Gauge& gauge = registry.gauge("g");
    Histogram& histogram = registry.histogram("h");
    counter.inc(7);
    gauge.set(9);
    histogram.observe(123.0);
    registry.reset();
    EXPECT_EQ(registry.size(), 3u);
    EXPECT_EQ(counter.value(), 0u);  // handed-out references stay valid
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(RegistryTest, SnapshotIsNameSorted) {
    Registry registry;
    (void)registry.counter("zeta");
    (void)registry.counter("alpha");
    (void)registry.counter("mid");
    const auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "alpha");
    EXPECT_EQ(samples[1].name, "mid");
    EXPECT_EQ(samples[2].name, "zeta");
}

TEST(RegistryTest, SnapshotJsonShapeAndDeterminism) {
    Registry registry;
    registry.counter("events").inc(3);
    registry.gauge("depth").set(-5);
    registry.histogram("lat", HistogramSpec{1000.0, 2.0, 2}).observe(1500.0);
    const std::string json = registry.snapshotJson();
    EXPECT_NE(json.find("{\"metrics\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"events\",\"type\":\"counter\",\"value\":3"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"depth\",\"type\":\"gauge\",\"value\":-5"),
              std::string::npos);
    EXPECT_NE(json.find("\"type\":\"histogram\",\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
    // Byte-identical on repeat: the export is deterministic.
    EXPECT_EQ(json, registry.snapshotJson());
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
    Registry registry;
    Counter& counter = registry.counter("hot");
    Histogram& histogram = registry.histogram("hist");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.inc();
                histogram.observe(500.0);
            }
        });
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(counter.value(), std::uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(histogram.count(), std::uint64_t(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(histogram.sum(), double(kThreads) * kPerThread * 500.0);
}

TEST(RegistryTest, ProcessWideInstanceIsStable) {
    EXPECT_EQ(&Registry::instance(), &Registry::instance());
}

TEST(NameLeaseTest, DuplicateLiveClaimThrows) {
    Registry registry;
    NameLease first{registry, "umts.bearer.222880000000001"};
    EXPECT_TRUE(first.held());
    EXPECT_THROW((NameLease{registry, "umts.bearer.222880000000001"}), std::logic_error);
    // A different prefix is fine — collisions are per-family, not global.
    NameLease other{registry, "umts.bearer.222880000000002"};
    EXPECT_TRUE(other.held());
}

TEST(NameLeaseTest, ReleaseAllowsReclaim) {
    Registry registry;
    NameLease lease{registry, "umts.bearer"};
    lease.release();
    EXPECT_FALSE(lease.held());
    lease.release();  // idempotent
    NameLease again{registry, "umts.bearer"};
    EXPECT_TRUE(again.held());
}

TEST(NameLeaseTest, DestructionReleasesClaim) {
    Registry registry;
    { NameLease lease{registry, "p"}; }
    NameLease again{registry, "p"};
    EXPECT_TRUE(again.held());
}

TEST(NameLeaseTest, MoveTransfersOwnership) {
    Registry registry;
    NameLease source{registry, "moved"};
    NameLease target{std::move(source)};
    EXPECT_FALSE(source.held());
    EXPECT_TRUE(target.held());
    EXPECT_THROW((NameLease{registry, "moved"}), std::logic_error);
    NameLease assigned;
    assigned = std::move(target);
    EXPECT_TRUE(assigned.held());
    assigned.release();
    NameLease again{registry, "moved"};
    EXPECT_TRUE(again.held());
}

}  // namespace
}  // namespace onelab::obs
