// Profiler: self-time attribution under a deterministic clock, the
// disabled fast path, stack-overflow accounting, and the profile.json
// shape (fixed category order, zeros included) that makes same-seed
// exports byte-comparable.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/flight.hpp"
#include "ppp/framer.hpp"
#include "util/json.hpp"

namespace onelab::obs {
namespace {

/// A hand-cranked clock: every read returns the value set by the test.
struct FakeClock {
    std::int64_t nowNs = 0;
    std::function<std::int64_t()> fn() {
        return [this] { return nowNs; };
    }
};

TEST(Profiler, SelfTimeSubtractsNestedScopes) {
    Profiler profiler;
    FakeClock clock;
    profiler.setClock(clock.fn());
    profiler.setEnabled(true);  // reads the clock once: window starts at 0

    clock.nowNs = 0;
    profiler.enter(ProfileCategory::sim_run);
    clock.nowNs = 100;
    profiler.enter(ProfileCategory::sim_event);
    clock.nowNs = 350;
    profiler.leave();  // sim_event: 250 ns self
    clock.nowNs = 1000;
    profiler.leave();  // sim_run: 1000 total - 250 child = 750 self

    EXPECT_EQ(profiler.scopeCount(ProfileCategory::sim_event), 1u);
    EXPECT_EQ(profiler.selfNs(ProfileCategory::sim_event), 250);
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::sim_run), 1u);
    EXPECT_EQ(profiler.selfNs(ProfileCategory::sim_run), 750);
    // The whole 1000 ns window is attributed across the two buckets.
    EXPECT_DOUBLE_EQ(profiler.attributedFraction(), 1.0);
}

TEST(Profiler, DisabledProfilerIsInvisibleToScopes) {
    Profiler profiler;
    Profiler* previous = Profiler::setCurrent(&profiler);
    EXPECT_EQ(Profiler::currentIfEnabled(), nullptr);
    {
        ProfileScope scope(ProfileCategory::pipe);  // must be a no-op
    }
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::pipe), 0u);
    profiler.setEnabled(true);
    EXPECT_EQ(Profiler::currentIfEnabled(), &profiler);
    {
        ProfileScope scope(ProfileCategory::pipe);
    }
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::pipe), 1u);
    Profiler::setCurrent(previous);
}

TEST(Profiler, OverflowingTheStackDropsScopesButStaysBalanced) {
    Profiler profiler;
    FakeClock clock;
    profiler.setClock(clock.fn());
    profiler.setEnabled(true);
    for (int i = 0; i < 40; ++i) profiler.enter(ProfileCategory::sim_event);
    for (int i = 0; i < 40; ++i) {
        clock.nowNs += 10;
        profiler.leave();
    }
    EXPECT_EQ(profiler.droppedScopes(), 8u);  // 40 - kMaxDepth(32)
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::sim_event), 32u);
    // An unbalanced extra leave is ignored, not underflowed.
    profiler.leave();
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::sim_event), 32u);
}

TEST(Profiler, ExportJsonIsDeterministicUnderAFakeClock) {
    const auto runOnce = [] {
        Profiler profiler;
        FakeClock clock;
        profiler.setClock(clock.fn());
        profiler.setEnabled(true);
        for (int i = 0; i < 3; ++i) {
            profiler.enter(ProfileCategory::hdlc_encode);
            clock.nowNs += 100;
            profiler.leave();
        }
        clock.nowNs = 1000;
        return profiler.exportJson();
    };
    const std::string first = runOnce();
    EXPECT_EQ(first, runOnce()) << "same scope sequence + same clock must be byte-identical";

    const auto doc = util::JsonValue::parse(first);
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    EXPECT_TRUE(doc.value().find("enabled")->boolean());
    EXPECT_DOUBLE_EQ(doc.value().numberOr("window_ns", 0.0), 1000.0);
    EXPECT_DOUBLE_EQ(doc.value().numberOr("attributed_ns", 0.0), 300.0);
    const util::JsonValue* categories = doc.value().find("categories");
    ASSERT_NE(categories, nullptr);
    // Every category appears, zeros included, in fixed enum order.
    ASSERT_EQ(categories->array().size(), kProfileCategoryCount);
    EXPECT_EQ(categories->array()[0].stringOr("name", ""), "sim.run");
    bool sawEncode = false;
    for (const util::JsonValue& category : categories->array()) {
        if (category.stringOr("name", "") != "ppp.hdlc_encode") continue;
        sawEncode = true;
        EXPECT_DOUBLE_EQ(category.numberOr("count", 0.0), 3.0);
        EXPECT_DOUBLE_EQ(category.numberOr("self_ns", 0.0), 300.0);
        EXPECT_DOUBLE_EQ(category.numberOr("fraction", 0.0), 1.0);
    }
    EXPECT_TRUE(sawEncode);
}

TEST(Profiler, FusedFramerBillsToHdlcNotFcs16) {
    // The FCS is computed inside the framer's escape scan, so a frame
    // round-trip opens hdlc_* scopes only; ppp.fcs16 stays at zero (the
    // category survives in the export for byte-stable profile.json).
    Profiler profiler;
    Profiler* previous = Profiler::setCurrent(&profiler);
    profiler.setEnabled(true);

    const ppp::Frame frame{ppp::Protocol::ip, util::Bytes(256, 0x42)};
    const util::Bytes wire = ppp::encodeFrame(frame, ppp::FramerConfig{});
    ppp::Deframer deframer;
    int decoded = 0;
    deframer.onFrame([&](ppp::Frame) { ++decoded; });
    deframer.feed({wire.data(), wire.size()});
    Profiler::setCurrent(previous);

    ASSERT_EQ(decoded, 1);
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::hdlc_encode), 1u);
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::hdlc_decode), 1u);
    EXPECT_EQ(profiler.scopeCount(ProfileCategory::fcs16), 0u);
    EXPECT_EQ(profiler.selfNs(ProfileCategory::fcs16), 0);
}

TEST(Profiler, ReenablingRestartsTheWindow) {
    Profiler profiler;
    FakeClock clock;
    profiler.setClock(clock.fn());
    profiler.setEnabled(true);
    profiler.enter(ProfileCategory::pipe);
    clock.nowNs = 500;
    profiler.leave();
    EXPECT_EQ(profiler.selfNs(ProfileCategory::pipe), 500);
    (void)profiler.exportJson();
    profiler.setEnabled(true);  // restart: totals and export count zeroed
    EXPECT_EQ(profiler.selfNs(ProfileCategory::pipe), 0);
    Registry registry;
    registerFlightAndProfileMetricFamilies(registry);
    profiler.syncMetrics(registry);
    EXPECT_EQ(registry.counter("profile.exports").value(), 0u);
    EXPECT_EQ(registry.gauge("profile.enabled").value(), 1);
}

}  // namespace
}  // namespace onelab::obs
