// obsq golden-output tests: the query formatters are run over the
// committed fixture documents in tests/data/obsq/ and compared byte
// for byte against the committed golden renderings. A formatting
// change is fine — but it must be deliberate: regenerate with
//   OBSQ_REGEN=1 ./test_obs --gtest_filter='ObsqGolden.*'
// and review the golden diff like any other output change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/query.hpp"
#include "util/json.hpp"

#ifndef OBSQ_FIXTURE_DIR
#error "OBSQ_FIXTURE_DIR must point at tests/data/obsq"
#endif

namespace onelab::obs::query {
namespace {

util::JsonValue fixture(const std::string& name) {
    auto doc = util::JsonValue::parseFile(std::string(OBSQ_FIXTURE_DIR) + "/" + name);
    EXPECT_TRUE(doc.ok()) << name << ": " << doc.error().message;
    return doc.ok() ? std::move(doc).take() : util::JsonValue{};
}

/// Compare `actual` against the committed golden file, or rewrite the
/// golden when OBSQ_REGEN is set in the environment.
void expectGolden(const std::string& goldenName, const std::string& actual) {
    const std::string path = std::string(OBSQ_FIXTURE_DIR) + "/" + goldenName;
    if (std::getenv("OBSQ_REGEN")) {
        std::ofstream out{path, std::ios::trunc | std::ios::binary};
        out << actual;
        ASSERT_TRUE(bool(out)) << "cannot regenerate " << path;
        return;
    }
    std::ifstream in{path, std::ios::binary};
    ASSERT_TRUE(bool(in)) << "missing golden " << path
                          << " (regenerate with OBSQ_REGEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str()) << "output drifted from " << goldenName;
}

TEST(ObsqGolden, FlightDefaultView) {
    expectGolden("golden_flight.txt", formatFlight(fixture("flight.json"), Filter{}));
}

TEST(ObsqGolden, FlightFaultEventsOnly) {
    Filter filter;
    filter.kind = "event";
    filter.category = "fault";
    expectGolden("golden_flight_faults.txt",
                 formatFlight(fixture("flight.json"), filter));
}

TEST(ObsqGolden, FlightTailWindow) {
    Filter filter;
    filter.fromSeconds = 60.0;  // the second incident only
    filter.tail = 3;
    expectGolden("golden_flight_tail.txt", formatFlight(fixture("flight.json"), filter));
}

TEST(ObsqGolden, TraceDefaultView) {
    expectGolden("golden_trace.txt", formatTrace(fixture("trace.json"), Filter{}));
}

TEST(ObsqGolden, MetricsSupervisePrefix) {
    Filter filter;
    filter.name = "supervise.";
    expectGolden("golden_metrics_supervise.txt",
                 formatMetrics(fixture("metrics.json"), filter));
}

TEST(ObsqGolden, TopSelfFromTraceSpans) {
    expectGolden("golden_top.txt", formatTopSelf(fixture("trace.json"), 5));
}

TEST(ObsqGolden, DiffOfARunAgainstItselfIsClean) {
    const util::JsonValue trace = fixture("trace.json");
    const util::JsonValue metrics = fixture("metrics.json");
    const std::string out = formatDiff(&trace, &trace, &metrics, &metrics);
    EXPECT_NE(out.find("timelines identical"), std::string::npos) << out;
    EXPECT_NE(out.find("metrics: 0 differ"), std::string::npos) << out;
}

TEST(ObsqGolden, MergeAssignsOneLanePerInput) {
    const util::JsonValue trace = fixture("trace.json");
    const auto merged = util::JsonValue::parse(mergeTraces({trace, trace}));
    ASSERT_TRUE(merged.ok()) << merged.error().message;
    const util::JsonValue* events = merged.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array().size(), 10u);
    EXPECT_DOUBLE_EQ(events->array().front().numberOr("tid", 0.0), 1.0);
    EXPECT_DOUBLE_EQ(events->array().back().numberOr("tid", 0.0), 2.0);
}

// Per-shard fragment merges must be independent of fragment order:
// the sharded fleet writes one trace.json already merged, but ad-hoc
// post-mortems merge flight.shard<k>.json (and re-merge traces) with
// obsq, and the partition must never leak into the merged artefact.
TEST(ObsqGolden, StableTraceMergeIsFragmentOrderIndependent) {
    const util::JsonValue shard0 = fixture("trace.shard0.json");
    const util::JsonValue shard1 = fixture("trace.shard1.json");
    const std::string merged = mergeTracesStable({shard0, shard1});
    EXPECT_EQ(merged, mergeTracesStable({shard1, shard0}));
    expectGolden("golden_merge_trace.txt", merged);
}

TEST(ObsqGolden, FlightFragmentMergeSortsAndSumsDropped) {
    const util::JsonValue shard0 = fixture("flight.shard0.json");
    const util::JsonValue shard1 = fixture("flight.shard1.json");
    const std::string merged = mergeFlights({shard0, shard1});
    EXPECT_EQ(merged, mergeFlights({shard1, shard0}));
    EXPECT_NE(merged.find("\"dropped\":3"), std::string::npos) << merged;
    expectGolden("golden_merge_flight.txt", merged);
}

TEST(ObsqGolden, SelfCheckPasses) {
    EXPECT_EQ(selfCheck(), std::string{});
}

}  // namespace
}  // namespace onelab::obs::query
