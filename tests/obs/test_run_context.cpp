// obs::RunContext: the RAII scope that gives a thread its own
// Registry/Tracer/LogConfig plus the run's root RNG. These tests pin
// the install/restore discipline (including nesting), cross-thread
// isolation — the property SweepRunner workers rely on — and seed
// determinism.
#include "obs/run_context.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace onelab::obs {
namespace {

TEST(RunContext, InstallsOwnInstancesAndRestores) {
    Registry& outer = Registry::instance();
    Tracer& outerTracer = Tracer::instance();
    const std::uint64_t before = outer.counter("runctx.test.marker").value();
    {
        RunContext context;
        EXPECT_NE(Registry::instance().id(), outer.id());
        EXPECT_EQ(&Registry::instance(), &context.registry());
        EXPECT_EQ(&Tracer::instance(), &context.tracer());
        EXPECT_EQ(&util::LogConfig::instance(), &context.logConfig());
        Registry::instance().counter("runctx.test.marker").inc();
        EXPECT_EQ(Registry::instance().counter("runctx.test.marker").value(), 1u);
    }
    EXPECT_EQ(&Registry::instance(), &outer);
    EXPECT_EQ(&Tracer::instance(), &outerTracer);
    // The context's counter died with it; the outer one never moved.
    EXPECT_EQ(outer.counter("runctx.test.marker").value(), before);
}

TEST(RunContext, ScopesNest) {
    Registry& outer = Registry::instance();
    RunContext first;
    Registry& firstRegistry = Registry::instance();
    {
        RunContext second;
        EXPECT_NE(&Registry::instance(), &firstRegistry);
        EXPECT_EQ(&Registry::instance(), &second.registry());
    }
    EXPECT_EQ(&Registry::instance(), &firstRegistry);
    EXPECT_NE(&firstRegistry, &outer);
}

TEST(RunContext, ThreadsAreIsolated) {
    // Two workers bump the SAME metric name in their own contexts —
    // each must see exactly its own increments. This is the property
    // that lets SweepRunner run sweep points concurrently without any
    // call-site changes.
    constexpr int kIncrements = 10000;
    std::uint64_t observed[2] = {0, 0};
    std::vector<std::thread> workers;
    workers.reserve(2);
    for (int w = 0; w < 2; ++w) {
        workers.emplace_back([w, &observed] {
            RunContext context{std::uint64_t(w)};
            auto& counter = Registry::instance().counter("runctx.test.shared_name");
            for (int i = 0; i < kIncrements; ++i) counter.inc();
            observed[w] = counter.value();
        });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(observed[0], std::uint64_t(kIncrements));
    EXPECT_EQ(observed[1], std::uint64_t(kIncrements));
}

TEST(RunContext, SeedDeterminesRngSequence) {
    std::vector<double> first;
    std::vector<double> second;
    {
        RunContext context(1234);
        EXPECT_EQ(context.seed(), 1234u);
        for (int i = 0; i < 5; ++i) first.push_back(context.rng().uniform01());
    }
    {
        RunContext context(1234);
        for (int i = 0; i < 5; ++i) second.push_back(context.rng().uniform01());
    }
    EXPECT_EQ(first, second);
    {
        RunContext context(1235);
        EXPECT_NE(context.rng().uniform01(), first[0]);
    }
}

TEST(RunContext, InheritsLogLevelFromEnclosingConfig) {
    const util::LogLevel saved = util::LogConfig::instance().level();
    util::LogConfig::instance().setLevel(util::LogLevel::debug);
    {
        RunContext context;
        // A driver's --verbose applies inside workers…
        EXPECT_EQ(util::LogConfig::instance().level(), util::LogLevel::debug);
        // …but a level change inside the context stays inside it.
        util::LogConfig::instance().setLevel(util::LogLevel::error);
    }
    EXPECT_EQ(util::LogConfig::instance().level(), util::LogLevel::debug);
    util::LogConfig::instance().setLevel(saved);
}

}  // namespace
}  // namespace onelab::obs
