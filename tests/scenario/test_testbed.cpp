#include "scenario/testbed.hpp"

#include <gtest/gtest.h>

namespace onelab::scenario {
namespace {

TEST(Testbed, ConstructsPaperTopology) {
    Testbed tb;
    EXPECT_EQ(tb.napoli().hostname(), "planetlab1.unina.it");
    EXPECT_EQ(tb.inria().hostname(), "planetlab1.inria.fr");
    EXPECT_EQ(tb.operatorNetwork().profile().name, "commercial-it");
    EXPECT_NE(tb.napoli().findSlice(tb.config().umtsSliceName), nullptr);
    EXPECT_TRUE(tb.napoli().vsys().isAllowed("umts", tb.config().umtsSliceName));
    EXPECT_FALSE(tb.napoli().vsys().isAllowed("umts", tb.config().otherSliceName));
}

TEST(Testbed, EthernetPathWorksWithoutUmts) {
    Testbed tb;
    auto rx = tb.inria().openSliceUdp(tb.inriaSlice(), 9001).value();
    int got = 0;
    rx->onReceive([&](net::Datagram) { ++got; });
    auto tx = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(tx->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1}).ok());
    tb.sim().runUntil(sim::seconds(1.0));
    EXPECT_EQ(got, 1);
}

TEST(Testbed, EthernetRttAroundTwentyMs) {
    Testbed tb;
    std::optional<net::PingReply> reply;
    ASSERT_TRUE(tb.napoli().stack()
                    .ping(tb.inriaEthAddress(), [&](net::PingReply r) { reply = r; })
                    .ok());
    tb.sim().runUntil(sim::seconds(1.0));
    ASSERT_TRUE(reply.has_value());
    const double rttMs = sim::toMillis(reply->rtt);
    EXPECT_GT(rttMs, 15.0);
    EXPECT_LT(rttMs, 30.0);
}

TEST(Testbed, StartUmtsEndToEnd) {
    Testbed tb;
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok()) << started.error().message;
    EXPECT_TRUE(started.value().connected);
    // Takes realistic setup time: registration + dial + PPP.
    EXPECT_GT(sim::toSeconds(tb.sim().now()), 3.0);
    EXPECT_LT(sim::toSeconds(tb.sim().now()), 20.0);
}

TEST(Testbed, GlobetrotterCardVariant) {
    TestbedConfig config;
    config.card = CardKind::globetrotter;
    Testbed tb{config};
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok()) << started.error().message;
    EXPECT_EQ(tb.card().identity().manufacturer, "Option N.V.");
}

TEST(Testbed, MicrocellOperatorVariant) {
    TestbedConfig config;
    config.operatorProfile = umts::alcatelLucentMicrocell();
    Testbed tb{config};
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok()) << started.error().message;
    EXPECT_EQ(started.value().operatorName, "ALU 3G Reality Center");
    EXPECT_TRUE(tb.operatorNetwork().profile().subscriberPool.contains(
        started.value().address));
}

TEST(Testbed, PingOverUmtsAfterAddDestination) {
    Testbed tb;
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    // ICMP from the slice context, marked and routed via ppp0.
    std::optional<net::PingReply> reply;
    ASSERT_TRUE(tb.napoli().stack()
                    .ping(tb.inriaEthAddress(), [&](net::PingReply r) { reply = r; },
                          tb.umtsSlice().xid)
                    .ok());
    tb.sim().runUntil(tb.sim().now() + sim::seconds(5.0));
    ASSERT_TRUE(reply.has_value());
    // UMTS RTT is an order of magnitude above the wired path.
    EXPECT_GT(sim::toMillis(reply->rtt), 100.0);
}

TEST(Testbed, OperatorFirewallBlocksInboundToUmtsAddress) {
    // The paper's §2.2 rationale for keeping control traffic on eth0:
    // the UMTS-side address is not reachable from outside.
    Testbed tb;
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok());
    auto probe = tb.inria().openSliceUdp(tb.inriaSlice()).value();
    ASSERT_TRUE(probe->sendTo(started.value().address, 22, util::Bytes{1}).ok());
    tb.sim().runUntil(tb.sim().now() + sim::seconds(2.0));
    EXPECT_GE(tb.operatorNetwork().firewallBlockedInbound(), 1u);
}

TEST(Testbed, StopMidTransferTearsDownCleanly) {
    Testbed tb;
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    auto tx = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    // A saturating burst that outlives the stop: the RLC queue is full
    // of in-flight chunks when the PDP context is torn down, and the
    // sender keeps writing into the (now unrouted) socket afterwards.
    const sim::SimTime base = tb.sim().now();
    for (int i = 0; i < 20 * 35; ++i)
        tb.sim().scheduleAt(base + sim::millis(i * 28.0), [&tb, tx] {
            (void)tx->sendTo(tb.inriaEthAddress(), 9001, util::Bytes(1052, 0));
        });
    tb.sim().runUntil(base + sim::seconds(5.0));
    const auto stopped = tb.stopUmts();
    ASSERT_TRUE(stopped.ok()) << stopped.error().message;
    EXPECT_EQ(tb.operatorNetwork().activeSessions(), 0u);
    // The stop returned the bearer's capacity to the cell pool.
    EXPECT_DOUBLE_EQ(tb.operatorNetwork().cell().uplinkAllocatedBps(), 0.0);
    // Drain the rest of the burst: no dangling bearer/ByteChannel
    // callbacks may fire into the torn-down session.
    tb.sim().runUntil(base + sim::seconds(25.0));
    // And the node can dial again afterwards.
    const auto restarted = tb.startUmts();
    ASSERT_TRUE(restarted.ok()) << restarted.error().message;
}

TEST(Testbed, DestructionMidTransferIsClean) {
    // Destroying the whole testbed while chunks sit in the RLC queues
    // and PPP frames sit in the TTY pipes must not fire any callback
    // into freed objects (exercised under ASan via tools/sanitize.sh).
    auto tb = std::make_unique<Testbed>();
    ASSERT_TRUE(tb->startUmts().ok());
    ASSERT_TRUE(tb->addUmtsDestination(tb->inriaEthAddress().str() + "/32").ok());
    auto tx = tb->napoli().openSliceUdp(tb->umtsSlice()).value();
    Testbed& ref = *tb;
    const sim::SimTime base = ref.sim().now();
    for (int i = 0; i < 10 * 35; ++i)
        ref.sim().scheduleAt(base + sim::millis(i * 28.0), [&ref, tx] {
            (void)tx->sendTo(ref.inriaEthAddress(), 9001, util::Bytes(1052, 0));
        });
    // Stop in the middle of the burst with the uplink saturated.
    ref.sim().runUntil(base + sim::seconds(3.0));
    EXPECT_GT(ref.operatorNetwork().activeSessions(), 0u);
    tb.reset();
}

TEST(Testbed, StopAndRestartCycleTwice) {
    Testbed tb;
    for (int cycle = 0; cycle < 2; ++cycle) {
        const auto started = tb.startUmts();
        ASSERT_TRUE(started.ok()) << "cycle " << cycle << ": " << started.error().message;
        const auto stopped = tb.stopUmts();
        ASSERT_TRUE(stopped.ok()) << "cycle " << cycle << ": " << stopped.error().message;
    }
}

}  // namespace
}  // namespace onelab::scenario
