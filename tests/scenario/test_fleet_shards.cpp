// Sharded-fleet smoke and determinism pins. The heavyweight cross-N
// byte-identity sweep lives in the repeatability bench; these tests
// keep the engine honest inside the tier-1 matrix:
//
//   - a --shards 4 fleet brings up, pushes traffic through the TTY and
//     Ethernet cut edges, and never violates the lookahead contract;
//   - the merged telemetry export is byte-identical across shard
//     counts for the same seed, on a run short enough for ctest.
#include "scenario/fleet.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "ppp/lcp.hpp"

namespace onelab::scenario {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(FleetShards, FourShardFleetRunsTrafficAcrossCutEdges) {
    FleetConfig config = makeUniformFleet(2, 7);
    config.shards = 4;
    Fleet fleet{std::move(config)};
    ASSERT_TRUE(fleet.sharded());
    ASSERT_NE(fleet.shardGroup(), nullptr);

    const auto started = fleet.startAll();
    ASSERT_TRUE(started.ok()) << started.error().message;
    const auto routed = fleet.addDestinationAll();
    ASSERT_TRUE(routed.ok()) << routed.error().message;
    const auto runs = fleet.runCbrAll(5.0);
    ASSERT_EQ(runs.size(), 2u);
    for (const FleetCbrRun& run : runs) {
        EXPECT_GT(run.packetsSent, 0u) << run.imsi;
        EXPECT_GT(run.packetsReceived, 0u) << run.imsi;
    }

    // The traffic really crossed shard boundaries, and every mailbox
    // delivery respected the conservative-lookahead contract.
    sim::ShardGroup& group = *fleet.shardGroup();
    EXPECT_EQ(group.shardCount(), 4u);
    EXPECT_GT(group.windows(), 0u);
    EXPECT_GT(group.mailDelivered(), 0u);
    EXPECT_EQ(group.lateDeliveries(), 0u);
}

TEST(FleetShards, TelemetryByteIdenticalAcrossShardCounts) {
    const auto runOnce = [](std::size_t shards, const std::string& directory) {
        obs::beginRun();
        ppp::resetMagicEntropy();
        FleetConfig config = makeUniformFleet(2, 11);
        config.shards = shards;
        Fleet fleet{std::move(config)};
        ASSERT_TRUE(fleet.startAll().ok());
        ASSERT_TRUE(fleet.addDestinationAll().ok());
        fleet.runCbrAll(5.0);
        obs::Tracer::instance().setEnabled(false);
        const auto written = fleet.writeTelemetry(directory);
        ASSERT_TRUE(written.ok()) << written.error().message;
    };

    const std::string base = "/tmp/onelab_test_fleet_shards_";
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}})
        runOnce(shards, base + std::to_string(shards));

    const std::string metrics1 = slurp(base + "1/metrics.json");
    const std::string trace1 = slurp(base + "1/trace.json");
    ASSERT_FALSE(metrics1.empty());
    ASSERT_FALSE(trace1.empty());
    for (std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
        const std::string dir = base + std::to_string(shards);
        EXPECT_EQ(slurp(dir + "/metrics.json"), metrics1) << shards << " shards";
        EXPECT_EQ(slurp(dir + "/trace.json"), trace1) << shards << " shards";
    }
}

}  // namespace
}  // namespace onelab::scenario
