#include "scenario/fleet.hpp"

#include <gtest/gtest.h>

#include "obs/registry.hpp"
#include "scenario/testbed.hpp"
#include "umtsctl/frontend.hpp"

namespace onelab::scenario {
namespace {

TEST(Fleet, UniformFleetConstructsDistinctSites) {
    Fleet fleet{makeUniformFleet(4)};
    ASSERT_EQ(fleet.umtsSiteCount(), 4u);
    ASSERT_EQ(fleet.wiredSiteCount(), 1u);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t k = i + 1; k < 4; ++k) {
            EXPECT_NE(fleet.umtsSite(i).hostname(), fleet.umtsSite(k).hostname());
            EXPECT_NE(fleet.umtsSite(i).imsi(), fleet.umtsSite(k).imsi());
            EXPECT_NE(fleet.umtsSite(i).ethAddress(), fleet.umtsSite(k).ethAddress());
        }
    }
    // All four camp on ONE cell with the profile's budget.
    EXPECT_DOUBLE_EQ(fleet.operatorNetwork().cell().uplinkCapacityBps(),
                     fleet.config().operatorProfile.cellUplinkCapacityBps);
}

TEST(Fleet, StartAllBringsUpEverySession) {
    Fleet fleet{makeUniformFleet(3)};
    const auto started = fleet.startAll();
    ASSERT_TRUE(started.ok()) << started.error().message;
    EXPECT_EQ(fleet.operatorNetwork().activeSessions(), 3u);
    // Three initial grants are now carved out of the shared pool.
    EXPECT_DOUBLE_EQ(fleet.operatorNetwork().cell().uplinkAllocatedBps(), 3 * 144e3);
}

TEST(Fleet, StartAllCollectsPerSiteFailuresAndKeepsSurvivorsUp) {
    const double failuresBefore =
        obs::Registry::instance().counter("fleet.start_failures").value();
    FleetConfig config = makeUniformFleet(2);
    // Site 0's backend comgt config carries the wrong PIN: its
    // bring-up fails deterministically while site 1 is healthy.
    config.umtsSites[0].backendPinOverride = "0000";
    Fleet fleet{std::move(config)};
    const auto started = fleet.startAll();
    ASSERT_FALSE(started.ok());
    // The aggregate error names the failing host — and only it.
    EXPECT_NE(started.error().message.find("1/2 sites failed to start"), std::string::npos)
        << started.error().message;
    EXPECT_NE(started.error().message.find(fleet.umtsSite(0).hostname()), std::string::npos)
        << started.error().message;
    EXPECT_EQ(started.error().message.find(fleet.umtsSite(1).hostname()), std::string::npos)
        << started.error().message;
    // The survivor was NOT torn down by its neighbour's failure.
    EXPECT_TRUE(fleet.umtsSite(1).backend().state().connected);
    EXPECT_FALSE(fleet.umtsSite(0).backend().state().connected);
    EXPECT_DOUBLE_EQ(
        obs::Registry::instance().counter("fleet.start_failures").value(),
        failuresBefore + 1);
}

TEST(Fleet, TestbedFacadeIsAOneUeFleet) {
    Testbed tb;
    EXPECT_EQ(tb.fleet().umtsSiteCount(), 1u);
    EXPECT_EQ(tb.fleet().wiredSiteCount(), 1u);
    EXPECT_EQ(&tb.napoli(), &tb.fleet().umtsSite(0).node());
}

TEST(Fleet, StopReturnsCellCapacity) {
    Fleet fleet{makeUniformFleet(2)};
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_DOUBLE_EQ(fleet.operatorNetwork().cell().uplinkAllocatedBps(), 2 * 144e3);
    ASSERT_TRUE(fleet.stopUmts(1).ok());
    EXPECT_DOUBLE_EQ(fleet.operatorNetwork().cell().uplinkAllocatedBps(), 144e3);
}

TEST(Fleet, ContentionDeniesUpgradesAndCollapsesGoodput) {
    // Solo baseline: the lone UE gets its ~50 s on-demand upgrade.
    // Scoped so its IMSI lease is released before the 4-UE fleet
    // re-uses the same identities.
    FleetCbrRun soloRun;
    {
        Fleet solo{makeUniformFleet(1)};
        ASSERT_TRUE(solo.startAll().ok());
        ASSERT_TRUE(solo.addDestinationAll().ok());
        soloRun = solo.runCbr(0, 90.0);
        EXPECT_GE(soloRun.bearerUpgrades, 1);
        EXPECT_EQ(soloRun.deniedUpgrades, 0);
        EXPECT_EQ(solo.operatorNetwork().cell().deniedUpgrades(), 0u);
    }

    // Four UEs on the same cell: the budget covers at most one upgrade
    // beyond the four initial grants, so upgrades get denied and every
    // per-UE goodput lands strictly below the solo saturation.
    Fleet fleet{makeUniformFleet(4)};
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_TRUE(fleet.addDestinationAll().ok());
    const std::vector<FleetCbrRun> runs = fleet.runCbrAll(90.0);
    ASSERT_EQ(runs.size(), 4u);
    int denied = 0;
    for (const FleetCbrRun& run : runs) {
        EXPECT_LT(run.summary.meanBitrateKbps, soloRun.summary.meanBitrateKbps)
            << run.imsi;
        denied += run.deniedUpgrades;
    }
    EXPECT_GE(denied, 1);
    EXPECT_GE(fleet.operatorNetwork().cell().deniedUpgrades(), 1u);
}

TEST(Fleet, DetachRegrantsParkedUpgrades) {
    Fleet fleet{makeUniformFleet(3)};
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_TRUE(fleet.addDestinationAll().ok());

    // Saturate all three uplinks long enough for the commercial-grade
    // grant timers (~40-52 s) to fire: the pool covers one 384k
    // upgrade, the other two park as waiters.
    const net::Ipv4Address receiver = fleet.wiredSite(0).address();
    std::vector<net::UdpSocket*> sockets;
    for (std::size_t i = 0; i < 3; ++i) {
        UmtsNodeSite& site = fleet.umtsSite(i);
        sockets.push_back(site.node().openSliceUdp(site.umtsSlice()).value());
    }
    const sim::SimTime base = fleet.sim().now();
    for (int k = 0; k < 60 * 35; ++k)
        fleet.sim().scheduleAt(base + sim::millis(k * 28.0), [&, k] {
            for (net::UdpSocket* socket : sockets)
                (void)socket->sendTo(receiver, 9001, util::Bytes(1052, 0));
        });
    fleet.sim().runUntil(base + sim::seconds(70.0));

    umts::UmtsNetwork& op = fleet.operatorNetwork();
    std::size_t upgradedSite = 3;
    std::vector<std::string> waitingImsis;
    for (std::size_t k = 0; k < op.activeSessions(); ++k) {
        umts::UmtsSession* session = op.sessionAt(k);
        ASSERT_NE(session, nullptr);
        if (session->bearer().upgradeCount() >= 1)
            upgradedSite = std::size_t(session->imsi().back() - '1');
        else if (session->bearer().upgradeWaiting())
            waitingImsis.push_back(session->imsi());
    }
    ASSERT_LT(upgradedSite, 3u) << "no session won the single available upgrade";
    ASSERT_FALSE(waitingImsis.empty());

    // The winner detaches; its 384k returns to the pool and the parked
    // upgrades are granted immediately — no second grant delay.
    ASSERT_TRUE(fleet.stopUmts(upgradedSite).ok());
    for (std::size_t k = 0; k < op.activeSessions(); ++k) {
        umts::UmtsSession* session = op.sessionAt(k);
        for (const std::string& imsi : waitingImsis) {
            if (session->imsi() != imsi) continue;
            EXPECT_FALSE(session->bearer().upgradeWaiting()) << imsi;
            EXPECT_GT(session->bearer().currentUplinkRateBps(), 144e3) << imsi;
        }
    }
}

TEST(Fleet, SliceAclDoesNotSpanNodes) {
    FleetConfig config = makeUniformFleet(2);
    config.umtsSites[1].umtsSliceName = "roma_umts";
    Fleet fleet{config};

    pl::NodeOs& nodeB = fleet.umtsSite(1).node();
    EXPECT_TRUE(nodeB.vsys().isAllowed("umts", "roma_umts"));
    EXPECT_FALSE(nodeB.vsys().isAllowed("umts", "unina_umts"));

    // A frontend wielding node A's slice against node B's backend must
    // be rejected at the vsys ACL, not reach the modem.
    umtsctl::UmtsFrontend crossFrontend{nodeB, fleet.umtsSite(0).umtsSlice()};
    std::optional<util::Result<umtsctl::UmtsReport>> outcome;
    crossFrontend.start(
        [&](util::Result<umtsctl::UmtsReport> result) { outcome = std::move(result); });
    const sim::SimTime deadline = fleet.sim().now() + sim::seconds(5.0);
    while (!outcome && fleet.sim().now() < deadline)
        fleet.sim().runUntil(fleet.sim().now() + sim::millis(10));
    ASSERT_TRUE(outcome.has_value());
    ASSERT_FALSE(outcome->ok());
    EXPECT_EQ(outcome->error().code, util::Error::Code::permission_denied);
    // And node B's own connection never came up as a side effect.
    EXPECT_EQ(fleet.operatorNetwork().activeSessions(), 0u);
}

TEST(Fleet, StatsScopedToOwnSession) {
    Fleet fleet{makeUniformFleet(2)};
    ASSERT_TRUE(fleet.startAll().ok());

    const auto fetchStats = [&fleet](std::size_t site, bool includeAll) {
        std::optional<util::Result<std::string>> outcome;
        fleet.umtsSite(site).frontend().stats(
            [&](util::Result<std::string> result) { outcome = std::move(result); },
            includeAll);
        const sim::SimTime deadline = fleet.sim().now() + sim::seconds(5.0);
        while (!outcome && fleet.sim().now() < deadline)
            fleet.sim().runUntil(fleet.sim().now() + sim::millis(10));
        EXPECT_TRUE(outcome.has_value() && outcome->ok());
        return outcome->ok() ? outcome->value() : std::string{};
    };

    const std::string own = fetchStats(0, false);
    EXPECT_NE(own.find("umts.bearer.222880000000001."), std::string::npos);
    EXPECT_EQ(own.find("umts.bearer.222880000000002."), std::string::npos)
        << "node 1's stats leaked node 2's session metrics";

    const std::string all = fetchStats(0, true);
    EXPECT_NE(all.find("umts.bearer.222880000000001."), std::string::npos);
    EXPECT_NE(all.find("umts.bearer.222880000000002."), std::string::npos);
}

}  // namespace
}  // namespace onelab::scenario
