#include "scenario/experiment.hpp"

#include <gtest/gtest.h>

namespace onelab::scenario {
namespace {

/// Full-length (120 s) paper experiments; each runs in well under a
/// second of wall-clock time.

TEST(VoipExperiment, MatchesPaperFigures1To3) {
    ExperimentOptions options;
    options.workload = Workload::voip_g711;
    const ExperimentResult result = runExperiment(options);

    // Figure 1: both paths sustain the required 72 kbps on average.
    EXPECT_NEAR(util::meanInWindow(result.umts.series.bitrateKbps, 2, 118), 72.0, 4.0);
    EXPECT_NEAR(util::meanInWindow(result.ethernet.series.bitrateKbps, 2, 118), 72.0, 2.0);
    // ...with the UMTS series fluctuating more.
    EXPECT_GT(util::summarize(result.umts.series.bitrateKbps).stddev,
              util::summarize(result.ethernet.series.bitrateKbps).stddev * 2);

    // No loss in this experiment (paper: "always equal to 0").
    EXPECT_EQ(result.umts.summary.lost, 0u);
    EXPECT_EQ(result.ethernet.summary.lost, 0u);

    // Figure 2: UMTS jitter is higher and more fluctuating, reaching
    // tens of ms but staying VoIP-usable (paper: up to ~30 ms).
    EXPECT_GT(result.umts.summary.meanJitterSeconds,
              result.ethernet.summary.meanJitterSeconds * 10);
    EXPECT_GT(result.umts.summary.maxJitterSeconds, 0.010);
    EXPECT_LT(result.umts.summary.maxJitterSeconds, 0.080);

    // Figure 3: UMTS RTT well above Ethernet, spiking toward ~700 ms.
    EXPECT_GT(result.umts.summary.meanRttSeconds,
              result.ethernet.summary.meanRttSeconds * 4);
    EXPECT_GT(result.umts.summary.maxRttSeconds, 0.3);
    EXPECT_LT(result.umts.summary.maxRttSeconds, 1.2);
    EXPECT_LT(result.ethernet.summary.maxRttSeconds, 0.05);

    // No bearer upgrade: VoIP does not saturate the uplink.
    EXPECT_EQ(result.umts.bearerUpgrades, 0);
}

TEST(CbrExperiment, MatchesPaperFigures4To7) {
    ExperimentOptions options;
    options.workload = Workload::cbr_1mbps;
    const ExperimentResult result = runExperiment(options);

    // Figure 4 (Ethernet): the wired path carries the full 1 Mbps.
    EXPECT_NEAR(util::meanInWindow(result.ethernet.series.bitrateKbps, 2, 118), 999.0, 20.0);
    EXPECT_EQ(result.ethernet.summary.lost, 0u);

    // Figure 4 (UMTS): saturation at a small fraction of the offered
    // load; ~150 kbps first, more than doubling after the on-demand
    // re-allocation around t=50 s; peak around 400 kbps.
    const double early = util::meanInWindow(result.umts.series.bitrateKbps, 5, 45);
    const double late = util::meanInWindow(result.umts.series.bitrateKbps, 60, 115);
    EXPECT_NEAR(early, 135.0, 25.0);
    EXPECT_GT(late, early * 2.0);
    EXPECT_NEAR(late, 360.0, 60.0);
    EXPECT_LT(result.umts.summary.maxBitrateKbps, 520.0);
    ASSERT_EQ(result.umts.bearerUpgrades, 1);
    EXPECT_GT(result.umts.upgradeTimeSeconds, 40.0);
    EXPECT_LT(result.umts.upgradeTimeSeconds, 58.0);

    // Figure 6: heavy loss throughout on UMTS, decreasing after the
    // upgrade but still substantial.
    EXPECT_GT(result.umts.summary.lossRate, 0.55);
    const double lossEarly = util::meanInWindow(result.umts.series.lossPackets, 5, 45);
    const double lossLate = util::meanInWindow(result.umts.series.lossPackets, 60, 115);
    EXPECT_GT(lossEarly, lossLate);
    EXPECT_GT(lossLate, 5.0);  // still losing most of 24.4 pkt/window

    // Figure 7: RTT in the seconds, up to ~3 s (paper: "as large as 3
    // seconds"), improving after the upgrade.
    EXPECT_GT(result.umts.summary.maxRttSeconds, 2.0);
    EXPECT_LT(result.umts.summary.maxRttSeconds, 4.0);
    EXPECT_GT(result.umts.summary.meanRttSeconds, 1.0);
    EXPECT_LT(result.ethernet.summary.maxRttSeconds, 0.1);

    // Figure 5: jitter far beyond real-time limits on UMTS.
    EXPECT_GT(result.umts.summary.maxJitterSeconds, 0.1);
    EXPECT_GT(result.umts.summary.meanJitterSeconds,
              result.ethernet.summary.meanJitterSeconds * 50);
}

TEST(Experiment, WorkloadFactories) {
    const ditg::FlowSpec voip = makeWorkload(Workload::voip_g711, 60.0);
    EXPECT_NEAR(voip.nominalKbps(), 72.0, 0.1);
    EXPECT_DOUBLE_EQ(voip.durationSeconds, 60.0);
    const ditg::FlowSpec cbr = makeWorkload(Workload::cbr_1mbps, 60.0);
    EXPECT_NEAR(cbr.nominalKbps(), 999.4, 1.0);
    EXPECT_STREQ(workloadName(Workload::voip_g711), "voip-g711-72kbps");
    EXPECT_STREQ(pathName(PathKind::umts_to_ethernet), "UMTS-to-Ethernet");
}

TEST(Experiment, UmtsPathReportsConnectionMetadata) {
    ExperimentOptions options;
    options.workload = Workload::voip_g711;
    options.durationSeconds = 10.0;
    const PathRun run = runPath(PathKind::umts_to_ethernet, options);
    EXPECT_TRUE(run.umtsUsed);
    EXPECT_FALSE(run.operatorName.empty());
    EXPECT_FALSE(run.umtsAddress.isUnspecified());
    EXPECT_EQ(run.packetsSent, 1000u);
    const PathRun eth = runPath(PathKind::ethernet_to_ethernet, options);
    EXPECT_FALSE(eth.umtsUsed);
}

}  // namespace
}  // namespace onelab::scenario
