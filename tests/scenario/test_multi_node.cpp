// The paper's goal was "to provide every node of the testbed with the
// possibility of using a UMTS interface" (§2). This suite equips a
// SECOND PlanetLab node with its own card and umts extension, against
// the same operator network, and checks the two UMTS connections are
// fully independent.
#include <gtest/gtest.h>

#include "ditg/decoder.hpp"
#include "ditg/receiver.hpp"
#include "ditg/sender.hpp"
#include "scenario/testbed.hpp"

namespace onelab::scenario {
namespace {

struct SecondSite {
    explicit SecondSite(Testbed& tb)
        : node(tb.sim(), "planetlab1.polito.it"), tty(tb.sim()) {
        net::Interface& eth = node.stack().addInterface("eth0");
        eth.setAddress(net::Ipv4Address{130, 192, 16, 5});
        eth.setUp(true);
        tb.internet().attach(eth, net::AccessLink{});
        node.stack().router().table(net::PolicyRouter::kMainTable)
            .addRoute({net::Prefix::any(), "eth0", std::nullopt, 0});

        modem::ModemConfig modemConfig;
        modemConfig.imsi = "222880000000002";
        modemConfig.pin = "1234";
        card = std::make_unique<modem::HuaweiE620Modem>(tb.sim(), &tb.operatorNetwork(),
                                                        modemConfig);
        card->attachTty(tty.b());

        slice = &node.createSlice("polito_umts");
        umtsctl::UmtsBackendConfig backendConfig;
        backendConfig.comgt.pin = "1234";
        backendConfig.comgt.extraInit = {"AT^CURC=0"};
        backendConfig.dialer.apn = tb.operatorNetwork().profile().apn;
        backendConfig.requiredModules.push_back("pl2303");
        backend = std::make_unique<umtsctl::UmtsBackend>(tb.sim(), node, tty.a(),
                                                         backendConfig);
        backend->dropDtr = [this] { card->dropDtr(); };
        card->onCarrierLost = [this] { backend->notifyCarrierLost(); };
        backend->installVsys();
        node.vsys().allow("umts", slice->name);
        frontend = std::make_unique<umtsctl::UmtsFrontend>(node, *slice);
    }

    util::Result<umtsctl::UmtsReport> start(Testbed& tb) {
        std::optional<util::Result<umtsctl::UmtsReport>> outcome;
        frontend->start([&](util::Result<umtsctl::UmtsReport> r) { outcome = std::move(r); });
        const sim::SimTime deadline = tb.sim().now() + sim::seconds(60.0);
        while (!outcome && tb.sim().now() < deadline)
            tb.sim().runUntil(tb.sim().now() + sim::millis(100));
        if (!outcome) return util::err(util::Error::Code::timeout, "second-site start timeout");
        return std::move(*outcome);
    }

    pl::NodeOs node;
    sim::Pipe tty;
    std::unique_ptr<modem::UmtsModem> card;
    pl::Slice* slice = nullptr;
    std::unique_ptr<umtsctl::UmtsBackend> backend;
    std::unique_ptr<umtsctl::UmtsFrontend> frontend;
};

TEST(MultiNode, TwoSitesHoldIndependentPdpContexts) {
    Testbed tb;
    SecondSite polito{tb};

    const auto first = tb.startUmts();
    ASSERT_TRUE(first.ok()) << first.error().message;
    const auto second = polito.start(tb);
    ASSERT_TRUE(second.ok()) << second.error().message;

    EXPECT_EQ(tb.operatorNetwork().activeSessions(), 2u);
    EXPECT_NE(first.value().address, second.value().address);
    EXPECT_TRUE(tb.operatorNetwork().profile().subscriberPool.contains(second.value().address));
    // Each node has its own ppp0 with its own address.
    EXPECT_EQ(tb.napoli().stack().findInterface("ppp0")->address(), first.value().address);
    EXPECT_EQ(polito.node.stack().findInterface("ppp0")->address(), second.value().address);
}

TEST(MultiNode, ConcurrentFlowsFromBothSites) {
    Testbed tb;
    SecondSite polito{tb};
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(polito.start(tb).ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    {
        std::optional<util::Result<void>> added;
        polito.frontend->addDestination(tb.inriaEthAddress().str() + "/32",
                                        [&](util::Result<void> r) { added = std::move(r); });
        tb.sim().runUntil(tb.sim().now() + sim::millis(100));
        ASSERT_TRUE(added && added->ok());
    }

    auto rxSocket = tb.inria().openSliceUdp(tb.inriaSlice(), 9001).value();
    ditg::ItgRecv receiver{*rxSocket};
    auto socketA = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    auto socketB = polito.node.openSliceUdp(*polito.slice).value();
    ditg::ItgSend senderA{tb.sim(), *socketA, ditg::voipG711Flow(1, 20.0),
                          tb.inriaEthAddress(), 9001, util::RandomStream{1}};
    ditg::ItgSend senderB{tb.sim(), *socketB, ditg::voipG711Flow(2, 20.0),
                          tb.inriaEthAddress(), 9001, util::RandomStream{2}};
    senderA.start();
    senderB.start();
    tb.sim().runUntil(tb.sim().now() + sim::seconds(25.0));

    // Both flows ride their own bearers: full delivery, no cross-talk.
    const auto summaryA = ditg::ItgDec::summarize(senderA.log(), receiver.log(1));
    const auto summaryB = ditg::ItgDec::summarize(senderB.log(), receiver.log(2));
    EXPECT_EQ(summaryA.lost, 0u);
    EXPECT_EQ(summaryB.lost, 0u);
    EXPECT_NEAR(summaryA.meanRttSeconds, summaryB.meanRttSeconds, 0.15);
    // Arrivals carry each node's own subscriber address.
    const auto& logA = receiver.log(1).packets;
    const auto& logB = receiver.log(2).packets;
    ASSERT_FALSE(logA.empty());
    ASSERT_FALSE(logB.empty());
}

TEST(MultiNode, OneSiteStoppingDoesNotDisturbTheOther) {
    Testbed tb;
    SecondSite polito{tb};
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(polito.start(tb).ok());
    ASSERT_TRUE(tb.stopUmts().ok());
    EXPECT_EQ(tb.operatorNetwork().activeSessions(), 1u);
    // The surviving site still has a working connection.
    EXPECT_NE(polito.node.stack().findInterface("ppp0"), nullptr);
    EXPECT_TRUE(polito.backend->state().connected);
    // And its slice can still emit traffic through it.
    auto socket = polito.node.openSliceUdp(*polito.slice).value();
    socket->bindAddress(polito.node.stack().findInterface("ppp0")->address());
    EXPECT_TRUE(socket->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1}).ok());
    EXPECT_EQ(polito.node.stack().findInterface("ppp0")->counters().txPackets, 1u);
}

}  // namespace
}  // namespace onelab::scenario
