#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace onelab::scenario {
namespace {

/// Property sweeps across seeds — the paper notes every measurement
/// was repeated 20 times "and very similar results were obtained";
/// these parameterised suites assert the same stability.

class SeededVoip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededVoip, ShapeInvariantsHoldAcrossSeeds) {
    ExperimentOptions options;
    options.workload = Workload::voip_g711;
    options.durationSeconds = 40.0;
    options.seed = GetParam();
    const PathRun run = runPath(PathKind::umts_to_ethernet, options);
    // Invariants: no loss, nominal average rate, VoIP-usable RTT.
    EXPECT_EQ(run.summary.lost, 0u);
    EXPECT_NEAR(util::meanInWindow(run.series.bitrateKbps, 2, 38), 72.0, 5.0);
    EXPECT_LT(run.summary.meanRttSeconds, 0.5);
    EXPECT_GT(run.summary.meanRttSeconds, 0.1);
    EXPECT_EQ(run.bearerUpgrades, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededVoip, ::testing::Values(1, 7, 42, 1234, 99999));

class SeededCbr : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededCbr, SaturationInvariantsHoldAcrossSeeds) {
    ExperimentOptions options;
    options.workload = Workload::cbr_1mbps;
    options.durationSeconds = 30.0;  // before any upgrade grant
    options.seed = GetParam();
    const PathRun run = runPath(PathKind::umts_to_ethernet, options);
    // Saturated uplink: goodput pinned at the initial bearer capacity.
    EXPECT_NEAR(util::meanInWindow(run.series.bitrateKbps, 5, 28), 133.0, 25.0);
    EXPECT_GT(run.summary.lossRate, 0.7);
    EXPECT_GT(run.summary.meanRttSeconds, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededCbr, ::testing::Values(2, 11, 314, 2718));

class SeededIsolation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededIsolation, NoForeignPacketEverCrossesPpp0) {
    TestbedConfig config;
    config.seed = GetParam();
    Testbed tb{config};
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    net::Interface* ppp = tb.napoli().stack().findInterface("ppp0");
    ASSERT_NE(ppp, nullptr);

    // Fire a barrage of hostile traffic from the other slice: bound to
    // the UMTS address, to the registered destination, to the peer —
    // none of it may transit ppp0.
    auto hostile = tb.napoli().openSliceUdp(tb.otherSlice()).value();
    auto hostileBound = tb.napoli().openSliceUdp(tb.otherSlice()).value();
    hostileBound->bindAddress(started.value().address);
    for (int i = 0; i < 20; ++i) {
        (void)hostile->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1});
        (void)hostile->sendTo(tb.operatorNetwork().profile().ggsnAddress, 22, util::Bytes{1});
        (void)hostileBound->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1});
        tb.sim().runUntil(tb.sim().now() + sim::millis(50));
    }
    EXPECT_EQ(ppp->counters().txPackets, 0u);

    // The owner still gets through afterwards.
    auto owner = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(owner->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1}).ok());
    EXPECT_EQ(ppp->counters().txPackets, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededIsolation, ::testing::Values(3, 17, 101));

class SeededKnee : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededKnee, UpgradeLandsNearFiftySecondsForEverySeed) {
    // The Fig. 4 knee position is an operator property (grant delay
    // 40-52 s after saturation onset), not a lucky seed.
    ExperimentOptions options;
    options.workload = Workload::cbr_1mbps;
    options.durationSeconds = 120.0;
    options.seed = GetParam();
    const PathRun run = runPath(PathKind::umts_to_ethernet, options);
    ASSERT_EQ(run.bearerUpgrades, 1) << "seed " << GetParam();
    EXPECT_GT(run.upgradeTimeSeconds, 38.0);
    EXPECT_LT(run.upgradeTimeSeconds, 58.0);
    const double early = util::meanInWindow(run.series.bitrateKbps, 5, 40);
    const double late = util::meanInWindow(run.series.bitrateKbps, 62, 115);
    EXPECT_GT(late, early * 2.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededKnee, ::testing::Values(8, 21, 777));

TEST(Determinism, SameSeedSameSeries) {
    ExperimentOptions options;
    options.workload = Workload::voip_g711;
    options.durationSeconds = 20.0;
    options.seed = 77;
    const PathRun a = runPath(PathKind::umts_to_ethernet, options);
    const PathRun b = runPath(PathKind::umts_to_ethernet, options);
    ASSERT_EQ(a.series.bitrateKbps.size(), b.series.bitrateKbps.size());
    for (std::size_t i = 0; i < a.series.bitrateKbps.size(); ++i)
        EXPECT_DOUBLE_EQ(a.series.bitrateKbps[i].value, b.series.bitrateKbps[i].value);
    ASSERT_EQ(a.series.rttSeconds.size(), b.series.rttSeconds.size());
    for (std::size_t i = 0; i < a.series.rttSeconds.size(); ++i)
        EXPECT_DOUBLE_EQ(a.series.rttSeconds[i].value, b.series.rttSeconds[i].value);
}

TEST(Determinism, DifferentSeedsDifferentMicrostructure) {
    ExperimentOptions options;
    options.workload = Workload::voip_g711;
    options.durationSeconds = 20.0;
    options.seed = 1;
    const PathRun a = runPath(PathKind::umts_to_ethernet, options);
    options.seed = 2;
    const PathRun b = runPath(PathKind::umts_to_ethernet, options);
    // Same macroscopic behaviour, different noise realisation.
    int differing = 0;
    const std::size_t count = std::min(a.series.rttSeconds.size(), b.series.rttSeconds.size());
    for (std::size_t i = 0; i < count; ++i)
        if (a.series.rttSeconds[i].value != b.series.rttSeconds[i].value) ++differing;
    EXPECT_GT(differing, int(count / 2));
}

TEST(Repeatability, TwentyRunsVerySimilarResults) {
    // The paper's §3.1 claim, directly: repeat the (shortened) VoIP
    // measurement and check the run-to-run spread is tight.
    util::OnlineStats bitrateMeans;
    util::OnlineStats rttMeans;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ExperimentOptions options;
        options.workload = Workload::voip_g711;
        options.durationSeconds = 15.0;
        options.seed = seed;
        const PathRun run = runPath(PathKind::umts_to_ethernet, options);
        bitrateMeans.add(util::meanInWindow(run.series.bitrateKbps, 2, 13));
        rttMeans.add(run.summary.meanRttSeconds);
    }
    EXPECT_LT(bitrateMeans.stddev() / bitrateMeans.mean(), 0.05);
    EXPECT_LT(rttMeans.stddev() / rttMeans.mean(), 0.25);
}

}  // namespace
}  // namespace onelab::scenario
