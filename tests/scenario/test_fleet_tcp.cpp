// Fleet TCP waves: framed D-ITG probes over the real TCP stack from
// every UE to the wired receiver. The wave contract under test is the
// soak-loop enabler — each wave closes its connections, drains
// TIME-WAIT and reaps, so consecutive waves rebind deterministically
// instead of accreting half-open state across a long soak.
#include "scenario/fleet.hpp"

#include <gtest/gtest.h>

#include "net/tcp.hpp"

namespace onelab::scenario {
namespace {

TEST(FleetTcp, WaveDeliversEveryProbeOverTheRadio) {
    Fleet fleet{makeUniformFleet(2, 7)};
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_TRUE(fleet.addDestinationAll().ok());

    const auto runs = fleet.runTcpAll(4.0);
    ASSERT_EQ(runs.size(), 2u);
    for (const FleetTcpRun& run : runs) {
        EXPECT_GT(run.probesSent, 0u) << run.imsi;
        // TCP turns radio loss into retransmission, never probe loss.
        EXPECT_EQ(run.probesReceived, run.probesSent) << run.imsi;
        EXPECT_EQ(run.summary.lost, 0u) << run.imsi;
        EXPECT_GT(run.tcp.bytesAcked, 0u) << run.imsi;
        EXPECT_GT(run.summary.meanOwdSeconds, 0.0) << run.imsi;
    }
}

TEST(FleetTcp, ConsecutiveWavesRebindDeterministically) {
    Fleet fleet{makeUniformFleet(2, 7)};
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_TRUE(fleet.addDestinationAll().ok());

    const auto wave1 = fleet.runTcpAll(3.0);
    // The wave cleaned up after itself: TIME-WAIT drained, every
    // connection reaped, listener gone — on both ends.
    for (std::size_t i = 0; i < fleet.umtsSiteCount(); ++i)
        EXPECT_EQ(fleet.umtsSite(i).node().tcp().connectionCount(), 0u) << i;
    EXPECT_EQ(fleet.wiredSite(0).node().tcp().connectionCount(), 0u);

    const auto wave2 = fleet.runTcpAll(3.0);
    ASSERT_EQ(wave1.size(), wave2.size());
    for (std::size_t i = 0; i < wave1.size(); ++i) {
        // Same fleet, same flow spec, clean tables: wave 2 carries the
        // same probe count as wave 1 (rebinding worked; nothing stuck).
        EXPECT_EQ(wave2[i].probesSent, wave1[i].probesSent) << wave1[i].imsi;
        EXPECT_EQ(wave2[i].probesReceived, wave2[i].probesSent) << wave1[i].imsi;
    }
    for (std::size_t i = 0; i < fleet.umtsSiteCount(); ++i)
        EXPECT_EQ(fleet.umtsSite(i).node().tcp().connectionCount(), 0u) << i;
    EXPECT_EQ(fleet.wiredSite(0).node().tcp().connectionCount(), 0u);
}

TEST(FleetTcp, CongestionAlgorithmIsSelectable) {
    Fleet fleet{makeUniformFleet(1, 9)};
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_TRUE(fleet.addDestinationAll().ok());
    const FleetTcpRun run = fleet.runTcp(0, 3.0, net::CcAlgorithm::cubic);
    EXPECT_GT(run.probesSent, 0u);
    EXPECT_EQ(run.probesReceived, run.probesSent);
}

TEST(FleetTcp, ShardedWaveCrossesCutEdges) {
    FleetConfig config = makeUniformFleet(2, 7);
    config.shards = 2;
    Fleet fleet{std::move(config)};
    ASSERT_TRUE(fleet.sharded());
    ASSERT_TRUE(fleet.startAll().ok());
    ASSERT_TRUE(fleet.addDestinationAll().ok());

    const auto runs = fleet.runTcpAll(4.0);
    ASSERT_EQ(runs.size(), 2u);
    for (const FleetTcpRun& run : runs) {
        EXPECT_GT(run.probesSent, 0u) << run.imsi;
        EXPECT_EQ(run.probesReceived, run.probesSent) << run.imsi;
    }
    EXPECT_EQ(fleet.shardGroup()->lateDeliveries(), 0u);
    for (std::size_t i = 0; i < fleet.umtsSiteCount(); ++i)
        EXPECT_EQ(fleet.umtsSite(i).node().tcp().connectionCount(), 0u) << i;
}

}  // namespace
}  // namespace onelab::scenario
