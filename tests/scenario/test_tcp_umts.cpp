// Extension coverage: TCP behaviour across the UMTS uplink — bulk
// upload completes through the whole stack (slice -> ppp0 -> radio
// bearer -> GGSN -> INRIA) and the RLC buffer shows up as bufferbloat.
#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "scenario/testbed.hpp"

namespace onelab::scenario {
namespace {

struct TcpUmtsTest : ::testing::Test {
    TcpUmtsTest() {
        EXPECT_TRUE(tb.startUmts().ok());
        EXPECT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
        clientTcp = std::make_unique<net::TcpHost>(tb.sim(), tb.napoli().stack(),
                                                   util::RandomStream{101});
        serverTcp = std::make_unique<net::TcpHost>(tb.sim(), tb.inria().stack(),
                                                   util::RandomStream{102});
    }

    Testbed tb;
    std::unique_ptr<net::TcpHost> clientTcp;
    std::unique_ptr<net::TcpHost> serverTcp;
};

TEST_F(TcpUmtsTest, BulkUploadCompletesOverTheRadio) {
    std::size_t received = 0;
    ASSERT_TRUE(serverTcp
                    ->listen(8080,
                             [&](net::TcpConnection& c) {
                                 c.onData = [&](util::ByteView d) { received += d.size(); };
                                 c.onPeerClosed = [&c] { c.close(); };
                             })
                    .ok());
    net::TcpConnection* conn =
        clientTcp->connect(tb.inriaEthAddress(), 8080, tb.umtsSlice().xid);
    constexpr std::size_t kTotal = 100 * 1024;
    const sim::SimTime start = tb.sim().now();
    std::optional<sim::SimTime> doneAt;
    conn->onConnected = [&] {
        const util::Bytes blob(kTotal, 0x77);
        ASSERT_TRUE(conn->send({blob.data(), blob.size()}).ok());
        conn->close();
    };
    conn->onClosed = [&] { doneAt = tb.sim().now(); };
    tb.sim().runUntil(tb.sim().now() + sim::seconds(120.0));

    EXPECT_EQ(received, kTotal);
    // The SYN rode ppp0 (marked slice traffic to the registered dst).
    EXPECT_GT(tb.napoli().stack().findInterface("ppp0")->counters().txPackets, 50u);
    // Goodput bounded by the 144 kbps DCH: the 100 KiB take > 5 s but
    // complete well before the 120 s horizon.
    ASSERT_TRUE(doneAt.has_value());
    const double seconds = sim::toSeconds(*doneAt - start);
    EXPECT_GT(seconds, 5.0);
    EXPECT_LT(seconds, 90.0);
}

TEST_F(TcpUmtsTest, UploadInflatesLatencyForConcurrentTraffic) {
    // Bufferbloat: the deep RLC buffer turns a bulk TCP upload into
    // seconds of extra delay for everything sharing the link.
    std::optional<net::PingReply> idlePing;
    ASSERT_TRUE(tb.napoli().stack()
                    .ping(tb.inriaEthAddress(), [&](net::PingReply r) { idlePing = r; },
                          tb.umtsSlice().xid)
                    .ok());
    tb.sim().runUntil(tb.sim().now() + sim::seconds(5.0));
    ASSERT_TRUE(idlePing.has_value());
    const double idleMs = sim::toMillis(idlePing->rtt);

    ASSERT_TRUE(serverTcp->listen(8080, [&](net::TcpConnection& c) {
        c.onData = [](util::ByteView) {};
    }).ok());
    net::TcpConnection* conn =
        clientTcp->connect(tb.inriaEthAddress(), 8080, tb.umtsSlice().xid);
    conn->onConnected = [&] {
        const util::Bytes blob(512 * 1024, 0x11);
        (void)conn->send({blob.data(), blob.size()});
    };
    // Let the upload fill the RLC buffer, then ping again.
    tb.sim().runUntil(tb.sim().now() + sim::seconds(15.0));
    std::optional<net::PingReply> loadedPing;
    ASSERT_TRUE(tb.napoli().stack()
                    .ping(tb.inriaEthAddress(), [&](net::PingReply r) { loadedPing = r; },
                          tb.umtsSlice().xid)
                    .ok());
    tb.sim().runUntil(tb.sim().now() + sim::seconds(15.0));
    ASSERT_TRUE(loadedPing.has_value());
    const double loadedMs = sim::toMillis(loadedPing->rtt);

    EXPECT_LT(idleMs, 500.0);
    EXPECT_GT(loadedMs, idleMs * 3.0);   // at least 3x inflation
    EXPECT_GT(loadedMs, 1000.0);         // seconds-class queueing delay
}

TEST_F(TcpUmtsTest, DownloadRidesTheFatDownlink) {
    // HSDPA-class downlink: a download is far faster than the upload.
    std::size_t received = 0;
    ASSERT_TRUE(serverTcp
                    ->listen(8080,
                             [&](net::TcpConnection& c) {
                                 const util::Bytes blob(200 * 1024, 0x22);
                                 (void)c.send({blob.data(), blob.size()});
                                 c.close();
                             })
                    .ok());
    net::TcpConnection* conn =
        clientTcp->connect(tb.inriaEthAddress(), 8080, tb.umtsSlice().xid);
    const sim::SimTime start = tb.sim().now();
    std::optional<sim::SimTime> doneAt;
    conn->onData = [&](util::ByteView d) { received += d.size(); };
    conn->onPeerClosed = [&] {
        doneAt = tb.sim().now();
        conn->close();
    };
    tb.sim().runUntil(tb.sim().now() + sim::seconds(120.0));
    EXPECT_EQ(received, 200u * 1024);
    ASSERT_TRUE(doneAt.has_value());
    // 200 KiB at 1.8 Mbps is ~1 s (plus handshake/ACK clocking); far
    // below what the 144 kbps uplink would need (>11 s).
    EXPECT_LT(sim::toSeconds(*doneAt - start), 11.0);
}

}  // namespace
}  // namespace onelab::scenario
