#include "tools/chat.hpp"

#include <gtest/gtest.h>

namespace onelab::tools {
namespace {

/// Drives the chat against a scripted fake modem on the far pipe end.
struct ChatTest : ::testing::Test {
    ChatTest() : pipe(sim), chat(sim, pipe.a(), "test") {
        pipe.b().onData([this](util::ByteView data) {
            lineBuffer.append(data.begin(), data.end());
            const auto cr = lineBuffer.find('\r');
            if (cr == std::string::npos) return;
            const std::string command = lineBuffer.substr(0, cr);
            lineBuffer.clear();
            if (responder) responder(command);
        });
    }

    void modemSays(const std::string& text) {
        const std::string framed = "\r\n" + text + "\r\n";
        pipe.b().write({reinterpret_cast<const std::uint8_t*>(framed.data()), framed.size()});
    }

    sim::Simulator sim;
    sim::Pipe pipe;
    AtChat chat;
    std::string lineBuffer;
    std::function<void(const std::string&)> responder;
};

TEST_F(ChatTest, CollectsLinesUntilFinal) {
    responder = [this](const std::string& command) {
        EXPECT_EQ(command, "AT+CSQ");
        modemSays("+CSQ: 17,99");
        modemSays("OK");
    };
    std::optional<ChatResponse> response;
    chat.send("AT+CSQ", sim::seconds(2.0),
              [&](util::Result<ChatResponse> r) { response = r.value(); });
    sim.runUntil(sim::seconds(1.0));
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->ok());
    ASSERT_EQ(response->lines.size(), 1u);
    EXPECT_EQ(response->lines[0], "+CSQ: 17,99");
}

TEST_F(ChatTest, ErrorFinalCode) {
    responder = [this](const std::string&) { modemSays("ERROR"); };
    std::optional<ChatResponse> response;
    chat.send("AT+BAD", sim::seconds(2.0),
              [&](util::Result<ChatResponse> r) { response = r.value(); });
    sim.runUntil(sim::seconds(1.0));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->ok());
    EXPECT_EQ(response->finalCode, "ERROR");
}

TEST_F(ChatTest, ConnectIsFinal) {
    responder = [this](const std::string&) { modemSays("CONNECT 3600000"); };
    std::optional<ChatResponse> response;
    chat.send("ATD*99#", sim::seconds(2.0),
              [&](util::Result<ChatResponse> r) { response = r.value(); });
    sim.runUntil(sim::seconds(1.0));
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->connected());
}

TEST_F(ChatTest, CmeErrorIsFinal) {
    responder = [this](const std::string&) { modemSays("+CME ERROR: SIM PIN required"); };
    std::optional<ChatResponse> response;
    chat.send("AT+CPIN=\"0\"", sim::seconds(2.0),
              [&](util::Result<ChatResponse> r) { response = r.value(); });
    sim.runUntil(sim::seconds(1.0));
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->ok());
}

TEST_F(ChatTest, TimesOutWithoutResponse) {
    responder = [](const std::string&) {};  // silent modem
    std::optional<util::Error::Code> code;
    chat.send("AT", sim::millis(500), [&](util::Result<ChatResponse> r) {
        if (!r.ok()) code = r.error().code;
    });
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(code, util::Error::Code::timeout);
}

TEST_F(ChatTest, EchoFiltered) {
    responder = [this](const std::string& command) {
        modemSays(command);  // modem echo of the command itself
        modemSays("OK");
    };
    std::optional<ChatResponse> response;
    chat.send("AT+CREG?", sim::seconds(2.0),
              [&](util::Result<ChatResponse> r) { response = r.value(); });
    sim.runUntil(sim::seconds(1.0));
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->lines.empty());  // echo did not leak in
}

TEST_F(ChatTest, UnsolicitedLinesRouted) {
    std::vector<std::string> unsolicited;
    chat.onUnsolicited = [&](const std::string& line) { unsolicited.push_back(line); };
    modemSays("^RSSI:18");
    sim.runUntil(sim::millis(100));
    ASSERT_EQ(unsolicited.size(), 1u);
    EXPECT_EQ(unsolicited[0], "^RSSI:18");
}

TEST_F(ChatTest, UnsolicitedDuringCommandTreatedAsInfo) {
    responder = [this](const std::string&) {
        modemSays("^RSSI:20");  // chatter between command and final
        modemSays("OK");
    };
    std::optional<ChatResponse> response;
    chat.send("AT", sim::seconds(2.0),
              [&](util::Result<ChatResponse> r) { response = r.value(); });
    sim.runUntil(sim::seconds(1.0));
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->ok());  // the OK still terminates correctly
}

TEST_F(ChatTest, SecondSendWhileBusyFails) {
    responder = [](const std::string&) {};
    chat.send("AT", sim::seconds(5.0), [](util::Result<ChatResponse>) {});
    std::optional<util::Error::Code> code;
    chat.send("AT+CSQ", sim::seconds(5.0), [&](util::Result<ChatResponse> r) {
        if (!r.ok()) code = r.error().code;
    });
    EXPECT_EQ(code, util::Error::Code::busy);
}

TEST_F(ChatTest, ReleaseFailsPendingCommand) {
    responder = [](const std::string&) {};
    std::optional<util::Error::Code> code;
    chat.send("AT", sim::seconds(5.0), [&](util::Result<ChatResponse> r) {
        if (!r.ok()) code = r.error().code;
    });
    sim.runUntil(sim::millis(10));
    chat.release();
    EXPECT_EQ(code, util::Error::Code::state);
}

}  // namespace
}  // namespace onelab::tools
