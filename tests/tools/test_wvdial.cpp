#include "tools/wvdial.hpp"

#include <gtest/gtest.h>

#include "modem/cards.hpp"
#include "net/internet.hpp"

namespace onelab::tools {
namespace {

struct WvDialTest : ::testing::Test {
    WvDialTest()
        : internet(sim, util::RandomStream{3}),
          network(sim, internet, umts::commercialItalianOperator(), util::RandomStream{4}),
          pipe(sim),
          card(sim, &network, modem::ModemConfig{}) {
        card.attachTty(pipe.b());
        // Card must be registered before dialing (comgt's job).
        sim.runUntil(sim::seconds(5.0));
        EXPECT_EQ(card.registration(), modem::RegistrationState::registered_home);
    }

    WvDialConfig config() {
        WvDialConfig c;
        c.apn = "internet.it";
        c.username = "onelab";
        c.password = "onelab";
        c.seed = 31;
        return c;
    }

    util::Result<ppp::IpcpResult> dialAndWait(WvDial& dialer) {
        std::optional<util::Result<ppp::IpcpResult>> outcome;
        dialer.dial([&](util::Result<ppp::IpcpResult> r) { outcome = std::move(r); });
        sim.runUntil(sim.now() + sim::seconds(40.0));
        if (!outcome) return util::err(util::Error::Code::timeout, "dial never completed");
        return std::move(*outcome);
    }

    sim::Simulator sim;
    net::Internet internet;
    umts::UmtsNetwork network;
    sim::Pipe pipe;
    modem::HuaweiE620Modem card;
};

TEST_F(WvDialTest, DialBringsPppUp) {
    WvDial dialer{sim, pipe.a(), config()};
    dialer.dropDtr = [this] { card.dropDtr(); };
    const auto result = dialAndWait(dialer);
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_TRUE(dialer.connected());
    EXPECT_TRUE(network.profile().subscriberPool.contains(result.value().localAddress));
    EXPECT_EQ(result.value().peerAddress, network.profile().ggsnAddress);
    EXPECT_EQ(result.value().dnsServer, network.profile().dnsServer);
    EXPECT_EQ(network.activeSessions(), 1u);
}

TEST_F(WvDialTest, HangupTearsDownAndReturnsModemToCommandMode) {
    WvDial dialer{sim, pipe.a(), config()};
    dialer.dropDtr = [this] { card.dropDtr(); };
    ASSERT_TRUE(dialAndWait(dialer).ok());
    dialer.hangup();
    sim.runUntil(sim.now() + sim::seconds(5.0));
    EXPECT_FALSE(dialer.connected());
    EXPECT_FALSE(card.inDataMode());
    EXPECT_EQ(network.activeSessions(), 0u);
}

TEST_F(WvDialTest, RedialAfterHangup) {
    {
        WvDial dialer{sim, pipe.a(), config()};
        dialer.dropDtr = [this] { card.dropDtr(); };
        ASSERT_TRUE(dialAndWait(dialer).ok());
        dialer.hangup();
        sim.runUntil(sim.now() + sim::seconds(5.0));
    }
    WvDial again{sim, pipe.a(), config()};
    again.dropDtr = [this] { card.dropDtr(); };
    EXPECT_TRUE(dialAndWait(again).ok());
}

TEST_F(WvDialTest, SecondDialWhileConnectedFails) {
    WvDial dialer{sim, pipe.a(), config()};
    dialer.dropDtr = [this] { card.dropDtr(); };
    ASSERT_TRUE(dialAndWait(dialer).ok());
    std::optional<util::Error::Code> code;
    dialer.dial([&](util::Result<ppp::IpcpResult> r) {
        if (!r.ok()) code = r.error().code;
    });
    EXPECT_EQ(code, util::Error::Code::busy);
}

TEST_F(WvDialTest, DisconnectCallbackOnNetworkLoss) {
    WvDial dialer{sim, pipe.a(), config()};
    dialer.dropDtr = [this] { card.dropDtr(); };
    card.onCarrierLost = [&] { dialer.carrierLost(); };  // DCD line
    ASSERT_TRUE(dialAndWait(dialer).ok());
    std::string reason;
    dialer.onDisconnected = [&](const std::string& r) { reason = r; };
    // Operator kills the PDP context (e.g. admin detach).
    network.deactivatePdp(network.sessionAt(0));
    sim.runUntil(sim.now() + sim::seconds(5.0));
    EXPECT_FALSE(reason.empty());
    EXPECT_FALSE(dialer.connected());
}

TEST_F(WvDialTest, DialFailsWhenNotRegistered) {
    network.detachUe("222880000000001");
    card.setNetwork(&network);  // re-registration starts over
    network.setCoverage(false);
    sim.runUntil(sim.now() + sim::seconds(2.0));
    WvDial dialer{sim, pipe.a(), config()};
    dialer.dropDtr = [this] { card.dropDtr(); };
    const auto result = dialAndWait(dialer);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::Error::Code::io);
}

TEST_F(WvDialTest, CompressionNegotiatedWhenRequested) {
    WvDialConfig c = config();
    c.ccp.enable = true;  // the GGSN offers deflate, we accept
    WvDial dialer{sim, pipe.a(), c};
    dialer.dropDtr = [this] { card.dropDtr(); };
    ASSERT_TRUE(dialAndWait(dialer).ok());
    EXPECT_TRUE(dialer.pppd()->compressionActive());
}

}  // namespace
}  // namespace onelab::tools
