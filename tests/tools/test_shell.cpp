#include "tools/shell.hpp"

#include <gtest/gtest.h>

namespace onelab::tools {
namespace {

struct ShellTest : ::testing::Test {
    ShellTest() : stack(sim, "node"), shell(stack) {
        net::Interface& eth = stack.addInterface("eth0");
        eth.setAddress(net::Ipv4Address{143, 225, 229, 10});
        eth.setUp(true);
        net::Interface& ppp = stack.addInterface("ppp0");
        ppp.setAddress(net::Ipv4Address{93, 57, 0, 16});
        ppp.setUp(true);
    }

    std::string mustExec(const std::string& command) {
        const auto result = shell.exec(command);
        EXPECT_TRUE(result.ok()) << command << ": "
                                 << (result.ok() ? "" : result.error().message);
        return result.ok() ? result.value() : std::string{};
    }

    sim::Simulator sim;
    net::NetworkStack stack;
    RootShell shell;
};

TEST_F(ShellTest, UnknownCommandRejected) {
    const auto result = shell.exec("rm -rf /");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, util::Error::Code::not_found);
    EXPECT_FALSE(shell.exec("").ok());
}

TEST_F(ShellTest, IpRouteAddAndList) {
    mustExec("ip route add default dev eth0");
    mustExec("ip route add 10.0.0.0/8 dev ppp0 metric 5");
    const std::string listing = mustExec("ip route list");
    EXPECT_NE(listing.find("default dev eth0"), std::string::npos);
    EXPECT_NE(listing.find("10.0.0.0/8 dev ppp0 metric 5"), std::string::npos);
}

TEST_F(ShellTest, IpRouteInAlternateTable) {
    mustExec("ip route add default dev ppp0 table 100");
    const std::string main = mustExec("ip route list");
    EXPECT_EQ(main.find("ppp0"), std::string::npos);
    const std::string table100 = mustExec("ip route list table 100");
    EXPECT_NE(table100.find("default dev ppp0"), std::string::npos);
}

TEST_F(ShellTest, IpRouteDelAndFlush) {
    mustExec("ip route add default dev ppp0 table 100");
    mustExec("ip route del default dev ppp0 table 100");
    EXPECT_FALSE(shell.exec("ip route del default dev ppp0 table 100").ok());
    mustExec("ip route add 10.0.0.0/8 dev ppp0 table 100");
    mustExec("ip route flush table 100");
    EXPECT_FALSE(shell.exec("ip route list table 100").ok());  // table forgotten
}

TEST_F(ShellTest, IpRouteViaGateway) {
    mustExec("ip route add default via 143.225.229.1 dev eth0");
    const std::string listing = mustExec("ip route list");
    EXPECT_NE(listing.find("via 143.225.229.1"), std::string::npos);
}

TEST_F(ShellTest, IpRouteErrors) {
    EXPECT_FALSE(shell.exec("ip route add default").ok());          // no dev
    EXPECT_FALSE(shell.exec("ip route add 300.0.0.0/8 dev e").ok());  // bad prefix
    EXPECT_FALSE(shell.exec("ip route frobnicate").ok());
    EXPECT_FALSE(shell.exec("ip route add default dev eth0 bogus x").ok());
}

TEST_F(ShellTest, IpRuleAddListDel) {
    mustExec("ip rule add prio 1000 fwmark 0x64 to 138.96.250.20/32 lookup 100");
    const std::string listing = mustExec("ip rule list");
    EXPECT_NE(listing.find("1000:"), std::string::npos);
    EXPECT_NE(listing.find("fwmark 0x64"), std::string::npos);
    EXPECT_NE(listing.find("lookup 100"), std::string::npos);
    EXPECT_NE(listing.find("32766:"), std::string::npos);  // default main rule

    mustExec("ip rule del prio 1000 fwmark 0x64 to 138.96.250.20/32 lookup 100");
    EXPECT_EQ(mustExec("ip rule list").find("1000:"), std::string::npos);
}

TEST_F(ShellTest, IpRuleFromSelector) {
    mustExec("ip rule add prio 1000 fwmark 100 from 93.57.0.16/32 lookup 100");
    mustExec("ip route add default dev ppp0 table 100");
    // Check behaviour, not just listing: a marked packet with that
    // source resolves through table 100.
    net::Packet pkt = net::makeUdpPacket(net::Ipv4Address{93, 57, 0, 16}, 1,
                                         net::Ipv4Address{8, 8, 8, 8}, 2, {});
    pkt.fwmark = 100;
    EXPECT_EQ(stack.router().resolve(pkt).value().oifName, "ppp0");
}

TEST_F(ShellTest, IpRuleErrors) {
    EXPECT_FALSE(shell.exec("ip rule add fwmark 1 lookup 100").ok());      // no prio
    EXPECT_FALSE(shell.exec("ip rule add prio 10 fwmark 1").ok());         // no table
    EXPECT_FALSE(shell.exec("ip rule add prio x fwmark 1 lookup 1").ok()); // bad prio
    EXPECT_FALSE(shell.exec("ip rule del prio 1 lookup 9").ok());          // no match
    EXPECT_FALSE(shell.exec("ip frobnicate").ok());
    EXPECT_FALSE(shell.exec("ip").ok());
}

TEST_F(ShellTest, IptablesMangleMarkRule) {
    mustExec("iptables -t mangle -A OUTPUT -m slice --xid 100 -j MARK --set-mark 0x64");
    net::Packet pkt = net::makeUdpPacket({}, 1, net::Ipv4Address{1, 1, 1, 1}, 2, {});
    pkt.sliceXid = 100;
    stack.netfilter().runChain(net::ChainHook::mangle_output, pkt, {});
    EXPECT_EQ(pkt.fwmark, 0x64u);
}

TEST_F(ShellTest, IptablesNegatedSliceDropRule) {
    mustExec("iptables -A OUTPUT -o ppp0 -m slice ! --xid 100 -j DROP");
    net::Packet intruder = net::makeUdpPacket({}, 1, net::Ipv4Address{1, 1, 1, 1}, 2, {});
    intruder.sliceXid = 101;
    EXPECT_EQ(stack.netfilter().runChain(net::ChainHook::filter_output, intruder, "ppp0"),
              net::Verdict::drop);
    net::Packet owner = intruder;
    owner.sliceXid = 100;
    EXPECT_EQ(stack.netfilter().runChain(net::ChainHook::filter_output, owner, "ppp0"),
              net::Verdict::accept);
}

TEST_F(ShellTest, IptablesDeleteBySpec) {
    mustExec("iptables -A OUTPUT -o ppp0 -m slice ! --xid 100 -j DROP");
    EXPECT_EQ(stack.netfilter().ruleCount(), 1u);
    mustExec("iptables -D OUTPUT -o ppp0 -m slice ! --xid 100 -j DROP");
    EXPECT_EQ(stack.netfilter().ruleCount(), 0u);
    EXPECT_FALSE(shell.exec("iptables -D OUTPUT -o ppp0 -m slice ! --xid 100 -j DROP").ok());
}

TEST_F(ShellTest, IptablesInsertFlushList) {
    mustExec("iptables -A INPUT -p udp -j ACCEPT");
    mustExec("iptables -I INPUT -s 10.0.0.0/8 -j DROP");
    const std::string listing = mustExec("iptables -L");
    EXPECT_NE(listing.find("DROP"), std::string::npos);
    EXPECT_NE(listing.find("ACCEPT"), std::string::npos);
    mustExec("iptables -F INPUT");
    EXPECT_EQ(stack.netfilter().ruleCount(), 0u);
}

TEST_F(ShellTest, IptablesMatchersParse) {
    mustExec("iptables -A OUTPUT -m mark --mark 0x64 -d 138.96.0.0/16 -p udp -j ACCEPT");
    const auto rules = stack.netfilter().listChain(net::ChainHook::filter_output);
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].second.match.fwmark, 0x64u);
    EXPECT_EQ(rules[0].second.match.protocol, net::IpProto::udp);
}

TEST_F(ShellTest, IptablesErrors) {
    EXPECT_FALSE(shell.exec("iptables -A OUTPUT -j NOSUCH").ok());
    EXPECT_FALSE(shell.exec("iptables -A NOCHAIN -j DROP").ok());
    EXPECT_FALSE(shell.exec("iptables -A OUTPUT").ok());  // no target
    EXPECT_FALSE(shell.exec("iptables -t nat -A OUTPUT -j DROP").ok());
    EXPECT_FALSE(shell.exec("iptables -A OUTPUT -p tcp -j DROP").ok());
    EXPECT_FALSE(shell.exec("iptables -A OUTPUT -m conntrack -j DROP").ok());
}

TEST_F(ShellTest, ExternalCommandsDispatch) {
    shell.installCommand("modprobe",
                         [](const std::vector<std::string>& argv) -> util::Result<std::string> {
                             if (argv.size() != 2)
                                 return util::err(util::Error::Code::invalid_argument, "usage");
                             return "loaded " + argv[1];
                         });
    const auto result = shell.exec("modprobe ppp_async");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), "loaded ppp_async");
    EXPECT_FALSE(shell.exec("rmmod ppp_async").ok());  // not installed
}

TEST_F(ShellTest, IfconfigShowsInterfaces) {
    const std::string listing = mustExec("ifconfig");
    EXPECT_NE(listing.find("eth0: UP inet 143.225.229.10"), std::string::npos);
    EXPECT_NE(listing.find("ppp0: UP inet 93.57.0.16"), std::string::npos);
}

}  // namespace
}  // namespace onelab::tools
