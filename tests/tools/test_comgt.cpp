#include "tools/comgt.hpp"

#include <gtest/gtest.h>

#include "modem/cards.hpp"
#include "net/internet.hpp"

namespace onelab::tools {
namespace {

struct ComgtTest : ::testing::Test {
    ComgtTest()
        : internet(sim, util::RandomStream{3}),
          network(sim, internet, umts::commercialItalianOperator(), util::RandomStream{4}),
          pipe(sim) {}

    void makeModem(modem::ModemConfig config = {}) {
        card = std::make_unique<modem::HuaweiE620Modem>(sim, &network, config);
        card->attachTty(pipe.b());
    }

    util::Result<ComgtReport> run(ComgtConfig config = {}) {
        Comgt comgt{sim, pipe.a(), config};
        std::optional<util::Result<ComgtReport>> outcome;
        comgt.run([&](util::Result<ComgtReport> r) { outcome = std::move(r); });
        sim.runUntil(sim.now() + sim::seconds(60.0));
        if (!outcome) return util::err(util::Error::Code::timeout, "comgt never finished");
        return std::move(*outcome);
    }

    sim::Simulator sim;
    net::Internet internet;
    umts::UmtsNetwork network;
    sim::Pipe pipe;
    std::unique_ptr<modem::UmtsModem> card;
};

TEST_F(ComgtTest, RegistersWithoutPin) {
    makeModem();
    const auto report = run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().operatorName, "IT Mobile");
    EXPECT_GT(report.value().signalQuality, 10);
    EXPECT_FALSE(report.value().enteredPin);
}

TEST_F(ComgtTest, EntersPinWhenLocked) {
    modem::ModemConfig modemConfig;
    modemConfig.pin = "1234";
    makeModem(modemConfig);
    ComgtConfig config;
    config.pin = "1234";
    const auto report = run(config);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().enteredPin);
    EXPECT_EQ(card->registration(), modem::RegistrationState::registered_home);
}

TEST_F(ComgtTest, FailsWithoutRequiredPin) {
    modem::ModemConfig modemConfig;
    modemConfig.pin = "1234";
    makeModem(modemConfig);
    const auto report = run();  // no PIN configured
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, util::Error::Code::state);
}

TEST_F(ComgtTest, FailsWithWrongPin) {
    modem::ModemConfig modemConfig;
    modemConfig.pin = "1234";
    makeModem(modemConfig);
    ComgtConfig config;
    config.pin = "9999";
    const auto report = run(config);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, util::Error::Code::permission_denied);
}

TEST_F(ComgtTest, TimesOutWithoutCoverage) {
    network.setCoverage(false);  // before the card powers up
    makeModem();
    ComgtConfig config;
    config.registrationTimeout = sim::seconds(5.0);
    const auto report = run(config);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, util::Error::Code::timeout);
}

TEST_F(ComgtTest, CardInitStringsApplied) {
    makeModem();
    ComgtConfig config;
    config.extraInit = {"AT^CURC=0"};  // the Huawei chatter killer
    const auto report = run(config);
    ASSERT_TRUE(report.ok());
    auto* huawei = dynamic_cast<modem::HuaweiE620Modem*>(card.get());
    ASSERT_NE(huawei, nullptr);
    EXPECT_FALSE(huawei->unsolicitedReportsEnabled());
}

TEST_F(ComgtTest, BadInitStringFails) {
    makeModem();
    ComgtConfig config;
    config.extraInit = {"AT+NOSUCHCOMMAND"};
    const auto report = run(config);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.error().code, util::Error::Code::io);
}

TEST_F(ComgtTest, SurvivesRssiChatter) {
    // Do NOT silence ^CURC: comgt must still register despite the
    // unsolicited reports interleaving with its chat.
    makeModem();
    const auto report = run();
    EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace onelab::tools
