// Equivalence guard for the event core + pooled datapath: the fig4
// (CBR) workload, run twice under fresh obs::RunContexts, must produce
// BYTE-IDENTICAL telemetry — the full name-sorted metrics snapshot and
// the fig4 CSV. This is the test that caught nothing moving when the
// indexed-heap core replaced the priority_queue one, and it keeps any
// future core change honest: a single reordered event or double-synced
// pool counter shows up as a snapshot diff.
#include <gtest/gtest.h>

#include <string>

#include "figure_common.hpp"
#include "obs/registry.hpp"
#include "obs/run_context.hpp"
#include "ppp/lcp.hpp"
#include "scenario/experiment.hpp"

namespace onelab::bench {
namespace {

struct Fig4Run {
    std::string metricsJson;
    std::string fig4Csv;
};

/// One fig4-style CBR run in a private observability world. Shorter
/// than the 120 s paper run — identity, not figures, is under test.
Fig4Run runFig4Workload() {
    obs::RunContext context(42);
    ppp::resetMagicEntropy();
    scenario::ExperimentOptions options;
    options.workload = scenario::Workload::cbr_1mbps;
    options.durationSeconds = 20.0;
    const scenario::ExperimentResult result = scenario::runExperiment(options);
    return Fig4Run{obs::Registry::instance().snapshotJson(),
                   figureCsv(result, Metric::bitrate_kbps)};
}

TEST(TelemetryIdentity, Fig4RunsAreByteIdentical) {
    const Fig4Run first = runFig4Workload();
    const Fig4Run second = runFig4Workload();

    // Sanity: the run actually exercised the event core and datapath.
    EXPECT_NE(first.metricsJson.find("sim.events_executed"), std::string::npos);
    EXPECT_NE(first.metricsJson.find("sim.pool.buffers_reused"), std::string::npos);
    EXPECT_GT(first.fig4Csv.size(), 0u);

    EXPECT_EQ(first.metricsJson, second.metricsJson)
        << "telemetry snapshot drifted between identical runs (" << first.metricsJson.size()
        << " vs " << second.metricsJson.size() << " bytes)";
    EXPECT_EQ(first.fig4Csv, second.fig4Csv);
}

}  // namespace
}  // namespace onelab::bench
