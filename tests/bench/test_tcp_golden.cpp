// Golden-file regression for the TCP congestion-control sweep: the
// fixed-seed 3-CC x 3-loss grid must reproduce the committed CSV
// digest exactly (the bytes `ext_tcp_cc_compare --csv` writes — a
// FROZEN format from bench::ccSweepCsv). Any drift in the TCP stack,
// the congestion algorithms, the RLC loss model, or the fleet wave
// shows up here as a digest mismatch.
//
// To regenerate after an INTENTIONAL behaviour change: run this test,
// copy the "actual" digest it prints into kGoldenDigest below, and
// say why in the commit message.
#include <gtest/gtest.h>

#include <string>

#include "tcp_cc_common.hpp"
#include "util/md5.hpp"

namespace onelab::bench {
namespace {

// The exact parameters of the PR-smoke run: seed 42, 15 s per point,
// legacy serial engine. (The sharded engine has its own deterministic
// timeline — pinned against itself below, not against this digest.)
constexpr std::uint64_t kGoldenSeed = 42;
constexpr double kGoldenDuration = 15.0;
constexpr const char* kGoldenDigest = "07aca070590a3e353216d17eeb42fada";

std::string md5Hex(const std::string& text) {
    const util::Md5::Digest digest = util::Md5::hash(
        {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
    std::string hex;
    hex.reserve(2 * digest.size());
    for (const std::uint8_t byte : digest) {
        static const char* kDigits = "0123456789abcdef";
        hex += kDigits[byte >> 4];
        hex += kDigits[byte & 0xf];
    }
    return hex;
}

TEST(TcpGolden, CcSweepCsvReproduces) {
    const std::string csv =
        ccSweepCsv(runCcSweep(kGoldenSeed, kGoldenDuration, /*shards=*/0));
    EXPECT_EQ(md5Hex(csv), kGoldenDigest)
        << "TCP CC sweep CSV drifted (" << csv.size() << " bytes):\n"
        << csv << "If the change is intentional, update kGoldenDigest "
        << "with the actual digest.";
}

// The sharded engine's contract: every shard count N >= 1 produces the
// SAME timeline, so the whole grid — handshakes, losses, RTOs, the lot
// — must come out byte-identical between one shard and two.
TEST(TcpGolden, ShardedSweepIsByteIdenticalAcrossShardCounts) {
    const std::string oneShard =
        ccSweepCsv(runCcSweep(kGoldenSeed, kGoldenDuration, /*shards=*/1));
    const std::string twoShards =
        ccSweepCsv(runCcSweep(kGoldenSeed, kGoldenDuration, /*shards=*/2));
    EXPECT_EQ(oneShard, twoShards);
}

}  // namespace
}  // namespace onelab::bench
