// Golden-file regression for the seven paper-figure benches: a
// fixed-seed run must reproduce the committed per-figure CSV digest
// exactly. The CSV bytes are what `figN --csv` writes (see
// bench::figureCsv — a FROZEN format), so any drift in the simulation,
// the workloads, or the export path shows up here as a digest
// mismatch.
//
// To regenerate after an INTENTIONAL behaviour change: run this test,
// copy the "actual" digests it prints into kGoldenFigures below, and
// say why in the commit message.
#include <gtest/gtest.h>

#include <string>

#include "figure_common.hpp"
#include "obs/telemetry.hpp"
#include "ppp/lcp.hpp"
#include "util/md5.hpp"

namespace onelab::bench {
namespace {

struct GoldenFigure {
    const char* id;
    scenario::Workload workload;
    Metric metric;
    const char* md5;
};

// One experiment run per workload covers all its figures: the VoIP run
// yields figures 1-3, the CBR run figures 4-7 (identical series, just
// a different column selected per figure).
constexpr GoldenFigure kGoldenFigures[] = {
    {"fig1_voip_bitrate", scenario::Workload::voip_g711, Metric::bitrate_kbps,
     "e5d7e583fb7eee52b9517eb1f0cdb797"},
    {"fig2_voip_jitter", scenario::Workload::voip_g711, Metric::jitter_seconds,
     "46566da25a8116778a6b7b0cad033e37"},
    {"fig3_voip_rtt", scenario::Workload::voip_g711, Metric::rtt_seconds,
     "134aae9a752eb379f88c83fd803d7aa1"},
    {"fig4_cbr_bitrate", scenario::Workload::cbr_1mbps, Metric::bitrate_kbps,
     "2d3d482a81ec331eb51379f7736a7975"},
    {"fig5_cbr_jitter", scenario::Workload::cbr_1mbps, Metric::jitter_seconds,
     "c1a32c4305a88271ef6981be814fad05"},
    {"fig6_cbr_loss", scenario::Workload::cbr_1mbps, Metric::loss_packets,
     "63fbd39d92f6120020796883aeb5c247"},
    {"fig7_cbr_rtt", scenario::Workload::cbr_1mbps, Metric::rtt_seconds,
     "fc779dd7146934e1167eef844a290639"},
};

std::string md5Hex(const std::string& text) {
    const util::Md5::Digest digest = util::Md5::hash(
        {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
    std::string hex;
    hex.reserve(2 * digest.size());
    for (const std::uint8_t byte : digest) {
        static const char* kDigits = "0123456789abcdef";
        hex += kDigits[byte >> 4];
        hex += kDigits[byte & 0xf];
    }
    return hex;
}

/// Run one workload exactly as a fresh `figN` process does (paper
/// seed 42, 120 s, entropy reset) and check every figure it feeds.
/// With `supervised` the link supervisor rides along; on a fault-free
/// run its probes and hooks must be a byte-exact no-op, so the SAME
/// digests apply.
void checkWorkload(scenario::Workload workload, bool supervised = false) {
    obs::beginRun();
    ppp::resetMagicEntropy();
    scenario::ExperimentOptions options;
    options.workload = workload;
    options.testbed.supervise.enable = supervised;
    const scenario::ExperimentResult result = scenario::runExperiment(options);
    for (const GoldenFigure& golden : kGoldenFigures) {
        if (golden.workload != workload) continue;
        const std::string csv = figureCsv(result, golden.metric);
        EXPECT_EQ(md5Hex(csv), golden.md5)
            << golden.id << ": CSV drifted (" << csv.size() << " bytes). If the "
            << "change is intentional, update kGoldenFigures with the actual digest.";
    }
}

TEST(FigGolden, VoipFiguresReproduce) {
    checkWorkload(scenario::Workload::voip_g711);
}

TEST(FigGolden, CbrFiguresReproduce) {
    checkWorkload(scenario::Workload::cbr_1mbps);
}

// The supervisor guard: enabling supervision on a fault-free run must
// not move a single byte of any figure CSV. The adaptive LCP echo only
// probes a silent line (the workloads keep it busy), and a supervisor
// that never sees trouble never acts.
TEST(FigGolden, VoipFiguresReproduceSupervised) {
    checkWorkload(scenario::Workload::voip_g711, /*supervised=*/true);
}

TEST(FigGolden, CbrFiguresReproduceSupervised) {
    checkWorkload(scenario::Workload::cbr_1mbps, /*supervised=*/true);
}

}  // namespace
}  // namespace onelab::bench
