// profile.json determinism: with a deterministic clock installed, the
// same seed must serialize the same profile bytes whether the sweep
// point ran serially or on a parallel SweepRunner worker. This is the
// profiler's half of the serial-equals-parallel contract the metrics
// and trace exports already pin.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/run_context.hpp"
#include "sim/simulator.hpp"
#include "sweep_runner.hpp"

namespace onelab::bench {
namespace {

/// One sweep point: enable the point's context-private profiler under
/// a hand-cranked clock (1 µs per reading), run a seed-shaped event
/// batch through the Simulator's profiled loop, export.
std::string profiledPoint(std::size_t index) {
    obs::Profiler& profiler = obs::Profiler::instance();
    auto tick = std::make_shared<std::int64_t>(0);
    profiler.setClock([tick] { return *tick += 1000; });
    profiler.setEnabled(true);

    sim::Simulator sim;
    std::uint64_t fired = 0;
    // Spaced so each point crosses a different number of 128-event
    // dispatch-batch boundaries — distinct points stay distinguishable
    // by sim.event scope count under the fake clock.
    const int events = 100 + int(index) * 150;
    for (int i = 0; i < events; ++i)
        sim.schedule(sim::millis((i * 13) % 40), [&fired] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, std::uint64_t(events));
    return profiler.exportJson();
}

TEST(ProfileIdentity, SerialAndParallelSweepsExportIdenticalBytes) {
    const std::size_t points = 6;
    const std::vector<std::string> serial =
        SweepRunner{1}.map<std::string>(points, profiledPoint);
    const std::vector<std::string> parallel =
        SweepRunner{4}.map<std::string>(points, profiledPoint);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < points; ++i) {
        EXPECT_FALSE(serial[i].empty());
        // The profiled loop actually attributed work.
        EXPECT_NE(serial[i].find("\"sim.event\",\"count\":"), std::string::npos)
            << serial[i];
        EXPECT_EQ(serial[i], parallel[i])
            << "profile.json for point " << i << " depends on the execution schedule";
    }
    // Distinct seeds produce distinct profiles — the identity above is
    // not vacuous.
    EXPECT_NE(serial[0], serial[1]);
}

}  // namespace
}  // namespace onelab::bench
