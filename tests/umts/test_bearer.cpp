#include "umts/bearer.hpp"

#include <gtest/gtest.h>

namespace onelab::umts {
namespace {

BearerLink::Params fastParams() {
    return BearerLink::Params{
        .rateBps = 80000.0,  // 10 kB/s
        .bufferBytes = 10000,
        .baseDelay = sim::millis(10),
        .ttiQuantum = sim::SimTime{0},
        .jitterGammaShape = 0.0001,  // effectively no jitter
        .jitterGammaScaleMs = 0.0001,
        .residualLossProbability = 0.0,
        .degradedRateFactor = 0.25,
    };
}

TEST(BearerLink, DeliversWithSerializationAndBaseDelay) {
    sim::Simulator sim;
    BearerLink link{sim, fastParams(), util::RandomStream{1}, "test"};
    sim::SimTime arrival{};
    link.setDeliver([&](const util::SharedBytes&) { arrival = sim.now(); });
    link.send(util::Bytes(1000, 0));  // 100 ms at 10 kB/s
    sim.run();
    EXPECT_GE(arrival, sim::millis(110));
    EXPECT_LT(arrival, sim::millis(130));
    EXPECT_EQ(link.stats().chunksDelivered, 1u);
    EXPECT_EQ(link.stats().bytesDelivered, 1000u);
}

TEST(BearerLink, InOrderDelivery) {
    sim::Simulator sim;
    BearerLink::Params params = fastParams();
    params.jitterGammaShape = 2.0;
    params.jitterGammaScaleMs = 10.0;  // heavy jitter
    BearerLink link{sim, params, util::RandomStream{3}, "test"};
    std::vector<std::uint8_t> order;
    link.setDeliver([&](const util::SharedBytes& chunk) { order.push_back(chunk.view()[0]); });
    for (std::uint8_t i = 0; i < 30; ++i) link.send(util::Bytes{i});
    sim.run();
    ASSERT_EQ(order.size(), 30u);
    for (std::uint8_t i = 0; i < 30; ++i) EXPECT_EQ(order[i], i);
}

TEST(BearerLink, OverflowDropsTail) {
    sim::Simulator sim;
    BearerLink link{sim, fastParams(), util::RandomStream{1}, "test"};
    int delivered = 0;
    link.setDeliver([&](const util::SharedBytes&) { ++delivered; });
    for (int i = 0; i < 20; ++i) link.send(util::Bytes(1000, 0));  // 20 kB into 10 kB buffer
    EXPECT_GT(link.stats().droppedOverflow, 0u);
    sim.run();
    EXPECT_EQ(std::size_t(delivered), link.stats().chunksDelivered);
    EXPECT_EQ(link.stats().chunksIn, link.stats().chunksDelivered);
}

TEST(BearerLink, ResidualLossDropsSome) {
    sim::Simulator sim;
    BearerLink::Params params = fastParams();
    params.residualLossProbability = 1.0;
    BearerLink link{sim, params, util::RandomStream{1}, "test"};
    int delivered = 0;
    link.setDeliver([&](const util::SharedBytes&) { ++delivered; });
    link.send(util::Bytes(100, 0));
    sim.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(link.stats().droppedRadio, 1u);
}

TEST(BearerLink, DegradedRateSlowsService) {
    sim::Simulator sim;
    BearerLink link{sim, fastParams(), util::RandomStream{1}, "test"};
    sim::SimTime arrival{};
    link.setDeliver([&](const util::SharedBytes&) { arrival = sim.now(); });
    link.degrade(sim::seconds(10.0));
    EXPECT_TRUE(link.isDegraded());
    link.send(util::Bytes(1000, 0));  // 100 ms normally, 400 ms degraded
    sim.run();
    EXPECT_GE(arrival, sim::millis(410));
}

TEST(BearerLink, TtiQuantisesArrival) {
    sim::Simulator sim;
    BearerLink::Params params = fastParams();
    params.ttiQuantum = sim::millis(10);
    BearerLink link{sim, params, util::RandomStream{1}, "test"};
    sim::SimTime arrival{};
    link.setDeliver([&](const util::SharedBytes&) { arrival = sim.now(); });
    link.send(util::Bytes(100, 0));
    sim.run();
    EXPECT_EQ(arrival.count() % sim::millis(10).count(), 0);
}

TEST(BearerLink, RateChangeAffectsBacklogService) {
    sim::Simulator sim;
    BearerLink link{sim, fastParams(), util::RandomStream{1}, "test"};
    std::vector<double> arrivals;
    link.setDeliver([&](const util::SharedBytes&) { arrivals.push_back(sim::toSeconds(sim.now())); });
    link.send(util::Bytes(1000, 0));
    link.send(util::Bytes(1000, 0));
    link.setRate(160000.0);  // double speed for the queued chunk
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    // First chunk ~0.11 s, second only +50 ms serialization after it.
    EXPECT_NEAR(arrivals[1] - arrivals[0], 0.05, 0.02);
}

TEST(BearerLink, ClearFlushesBacklog) {
    sim::Simulator sim;
    BearerLink link{sim, fastParams(), util::RandomStream{1}, "test"};
    int delivered = 0;
    link.setDeliver([&](const util::SharedBytes&) { ++delivered; });
    link.send(util::Bytes(1000, 0));
    link.send(util::Bytes(1000, 0));
    link.clear();
    sim.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(link.backlogBytes(), 0u);
}

// --- RadioBearer: on-demand allocation ---

OperatorProfile onDemandProfile() {
    OperatorProfile profile = commercialItalianOperator();
    profile.badStateRatePerSec = 0.0;  // deterministic tests
    profile.jitterGammaShape = 0.0001;
    profile.jitterGammaScaleMs = 0.0001;
    profile.upgradeGrantDelayMin = sim::seconds(5.0);
    profile.upgradeGrantDelayMax = sim::seconds(6.0);
    profile.upgradeSustain = sim::seconds(1.0);
    return profile;
}

TEST(RadioBearer, StartsAtInitialRate) {
    sim::Simulator sim;
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}};
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 144e3);
    EXPECT_EQ(bearer.upgradeCount(), 0);
}

TEST(RadioBearer, SustainedSaturationTriggersUpgradeAfterGrantDelay) {
    sim::Simulator sim;
    const OperatorProfile profile = onDemandProfile();
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    std::optional<double> upgradeAt;
    bearer.onUplinkRateChange = [&](double oldRate, double newRate) {
        if (newRate > oldRate) upgradeAt = sim::toSeconds(sim.now());
    };
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    // Offer ~2x the bearer rate for 10 s.
    for (int i = 0; i < 10 * 35; ++i) {
        sim.schedule(sim::millis(i * 28.0), [&] { bearer.sendUplink(util::Bytes(1052, 0)); });
    }
    sim.runUntil(sim::seconds(12.0));
    ASSERT_TRUE(upgradeAt.has_value());
    // Saturation onset is within the first second; grant 5-6 s later.
    EXPECT_GT(*upgradeAt, 4.5);
    EXPECT_LT(*upgradeAt, 8.0);
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 384e3);
    EXPECT_EQ(bearer.upgradeCount(), 1);
}

TEST(RadioBearer, NoUpgradeWithoutSaturation) {
    sim::Simulator sim;
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}};
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    // A VoIP-class load (~100 pkt/s of 130 B) never fills the buffer.
    for (int i = 0; i < 10 * 100; ++i)
        sim.schedule(sim::millis(i * 10.0), [&] { bearer.sendUplink(util::Bytes(130, 0)); });
    sim.runUntil(sim::seconds(12.0));
    EXPECT_EQ(bearer.upgradeCount(), 0);
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 144e3);
}

TEST(RadioBearer, NoAdaptationWhenDisabled) {
    sim::Simulator sim;
    OperatorProfile profile = onDemandProfile();
    profile.onDemandAllocation = false;
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    for (int i = 0; i < 10 * 35; ++i)
        sim.schedule(sim::millis(i * 28.0), [&] { bearer.sendUplink(util::Bytes(1052, 0)); });
    sim.runUntil(sim::seconds(12.0));
    EXPECT_EQ(bearer.upgradeCount(), 0);
}

TEST(RadioBearer, DowngradesAfterIdle) {
    sim::Simulator sim;
    OperatorProfile profile = onDemandProfile();
    profile.downgradeIdle = sim::seconds(3.0);
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    std::vector<double> rates;
    bearer.onUplinkRateChange = [&](double, double newRate) { rates.push_back(newRate); };
    for (int i = 0; i < 10 * 35; ++i)
        sim.schedule(sim::millis(i * 28.0), [&] { bearer.sendUplink(util::Bytes(1052, 0)); });
    sim.runUntil(sim::seconds(12.0));
    ASSERT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 384e3);
    // Now go idle; the network reclaims the fat bearer.
    sim.runUntil(sim::seconds(30.0));
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 144e3);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates.back(), 144e3);
}

TEST(RadioBearer, RrcDemotesAfterIdleAndPromotionDelaysFirstPacket) {
    sim::Simulator sim;
    OperatorProfile profile = onDemandProfile();
    profile.dchIdleTimeout = sim::seconds(3.0);
    profile.fachPromotionDelay = sim::millis(650);
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    std::vector<double> arrivals;
    bearer.setUplinkSink([&](const util::SharedBytes&) { arrivals.push_back(sim::toSeconds(sim.now())); });

    // Active: packet crosses in ~base delay (60 ms) + serialization.
    bearer.sendUplink(util::Bytes(100, 0));
    sim.runUntil(sim::seconds(1.0));
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_LT(arrivals[0], 0.2);
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_dch);

    // Idle past the timeout: demoted to CELL_FACH.
    sim.runUntil(sim::seconds(8.0));
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_fach);

    // The next packet pays the promotion delay.
    bearer.sendUplink(util::Bytes(100, 0));
    sim.runUntil(sim::seconds(10.0));  // before the next idle demotion
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_GT(arrivals[1] - 8.0, 0.65);
    EXPECT_LT(arrivals[1] - 8.0, 1.0);
    EXPECT_EQ(bearer.rrcPromotions(), 1);
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_dch);

    // Another long idle period demotes again.
    sim.runUntil(sim::seconds(15.0));
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_fach);
}

TEST(RadioBearer, SteadyTrafficNeverDemotes) {
    sim::Simulator sim;
    OperatorProfile profile = onDemandProfile();
    profile.dchIdleTimeout = sim::seconds(2.0);
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    for (int i = 0; i < 20; ++i)
        sim.schedule(sim::millis(500.0 * i), [&] { bearer.sendUplink(util::Bytes(100, 0)); });
    sim.runUntil(sim::seconds(10.0));
    EXPECT_EQ(bearer.rrcPromotions(), 0);
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_dch);
}

TEST(RadioBearer, RrcDisabledStaysDch) {
    sim::Simulator sim;
    OperatorProfile profile = onDemandProfile();
    profile.rrcStates = false;
    profile.dchIdleTimeout = sim::seconds(1.0);
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    sim.runUntil(sim::seconds(5.0));
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_dch);
    bearer.sendUplink(util::Bytes(100, 0));
    sim.runUntil(sim::seconds(6.0));
    EXPECT_EQ(bearer.rrcPromotions(), 0);
}

TEST(RadioBearer, DownlinkTrafficAlsoPromotes) {
    sim::Simulator sim;
    OperatorProfile profile = onDemandProfile();
    profile.dchIdleTimeout = sim::seconds(2.0);
    RadioBearer bearer{sim, profile, util::RandomStream{1}};
    bearer.setDownlinkSink([](const util::SharedBytes&) {});
    sim.runUntil(sim::seconds(5.0));
    ASSERT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_fach);
    bearer.sendDownlink(util::Bytes(100, 0));
    EXPECT_EQ(bearer.rrcState(), RadioBearer::RrcState::cell_dch);
    EXPECT_EQ(bearer.rrcPromotions(), 1);
}

TEST(RadioBearer, DownlinkIndependentOfUplink) {
    sim::Simulator sim;
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}};
    int downDelivered = 0;
    bearer.setDownlinkSink([&](const util::SharedBytes&) { ++downDelivered; });
    bearer.sendDownlink(util::Bytes(1000, 0));
    // runUntil, not run(): the adaptation monitor re-arms itself.
    sim.runUntil(sim::seconds(2.0));
    EXPECT_EQ(downDelivered, 1);
    EXPECT_EQ(bearer.downlinkStats().chunksDelivered, 1u);
    EXPECT_EQ(bearer.uplinkStats().chunksDelivered, 0u);
}

TEST(RadioBearer, ShutdownStopsEverything) {
    sim::Simulator sim;
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}};
    int delivered = 0;
    bearer.setUplinkSink([&](const util::SharedBytes&) { ++delivered; });
    bearer.sendUplink(util::Bytes(1000, 0));
    bearer.shutdown();
    sim.run();  // must drain without firing deliveries or timers forever
    EXPECT_EQ(delivered, 0);
}

// --- RadioBearer on a shared cell ---

TEST(RadioBearer, SameImsiTwiceThrowsInsteadOfAliasingMetrics) {
    sim::Simulator sim;
    CellCapacity cell{768e3, 7.2e6};
    RadioBearer first{sim, onDemandProfile(), util::RandomStream{1}, "222880000000009",
                      &cell};
    // A second live bearer for the same IMSI would silently write into
    // the first one's "umts.bearer.<imsi>.*" counters; that's an error.
    EXPECT_THROW((RadioBearer{sim, onDemandProfile(), util::RandomStream{2},
                              "222880000000009", &cell}),
                 std::logic_error);
    // After the first session ends the prefix is claimable again.
    first.shutdown();
    RadioBearer second{sim, onDemandProfile(), util::RandomStream{2}, "222880000000009",
                       &cell};
    EXPECT_EQ(second.imsi(), "222880000000009");
}

TEST(RadioBearer, UpgradeDeniedWhenCellIsDry) {
    sim::Simulator sim;
    CellCapacity cell{768e3, 7.2e6};
    // Another UE holds everything above one initial grant.
    cell.reserveUplink(768e3 - 144e3);
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}, "222880000000011",
                       &cell};
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 144e3);
    EXPECT_FALSE(bearer.admissionTrimmed());
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    for (int i = 0; i < 10 * 35; ++i)
        sim.schedule(sim::millis(i * 28.0), [&] { bearer.sendUplink(util::Bytes(1052, 0)); });
    sim.runUntil(sim::seconds(12.0));
    EXPECT_EQ(bearer.upgradeCount(), 0);
    EXPECT_GE(bearer.deniedUpgrades(), 1);
    EXPECT_TRUE(bearer.upgradeWaiting());
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 144e3);
    EXPECT_GE(cell.deniedUpgrades(), 1u);
    bearer.shutdown();
}

TEST(RadioBearer, ReleasedCapacityRegrantsParkedUpgrade) {
    sim::Simulator sim;
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3 - 144e3);  // the "other UE"
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}, "222880000000012",
                       &cell};
    bearer.setUplinkSink([](const util::SharedBytes&) {});
    for (int i = 0; i < 10 * 35; ++i)
        sim.schedule(sim::millis(i * 28.0), [&] { bearer.sendUplink(util::Bytes(1052, 0)); });
    sim.runUntil(sim::seconds(12.0));
    ASSERT_TRUE(bearer.upgradeWaiting());
    // The other UE detaches: its capacity returns to the pool and the
    // parked upgrade is granted immediately (its delay was already
    // paid), without waiting for a new saturation episode.
    cell.releaseUplink(768e3 - 144e3);
    EXPECT_FALSE(bearer.upgradeWaiting());
    EXPECT_GT(bearer.currentUplinkRateBps(), 144e3);
    EXPECT_GE(bearer.upgradeCount(), 1);
    bearer.shutdown();
}

TEST(RadioBearer, AdmissionTrimmedToLadderFloorWhenPoolNearlyFull) {
    sim::Simulator sim;
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3 - 30e3);  // 30k headroom: not even the floor fits
    RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1}, "222880000000013",
                       &cell};
    // Trimmed down the ladder to the 64k floor step; the floor is
    // granted even though it oversubscribes the pool.
    EXPECT_TRUE(bearer.admissionTrimmed());
    EXPECT_DOUBLE_EQ(bearer.currentUplinkRateBps(), 64e3);
    EXPECT_GE(cell.trimmedAdmissions(), 1u);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 0.0);  // oversubscribed clamps at 0
    bearer.shutdown();
}

TEST(RadioBearer, ShutdownReturnsCapacityToPool) {
    sim::Simulator sim;
    CellCapacity cell{768e3, 7.2e6};
    const double downlinkBefore = cell.downlinkAllocatedBps();
    {
        RadioBearer bearer{sim, onDemandProfile(), util::RandomStream{1},
                           "222880000000014", &cell};
        EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 144e3);
        bearer.shutdown();
    }
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 0.0);
    EXPECT_DOUBLE_EQ(cell.downlinkAllocatedBps(), downlinkBefore);
}

// --- greedy-UE containment: RNC reclaim of idle over-share grants ---

TEST(RadioBearer, RncReclaimsIdleOverShareGreedyGrant) {
    sim::Simulator sim;
    // 700k budget, two claimants: fair share 350k, so a 384k grant is
    // over-share and reclaimable; 2×144k initial + one 384k step fit.
    CellCapacity cell{700e3, 7.2e6};
    OperatorProfile profile = onDemandProfile();
    profile.downgradeIdle = sim::seconds(1.0);  // 5 monitor ticks
    RadioBearer honest{sim, profile, util::RandomStream{1}, "222880000000021", &cell};
    RadioBearer greedy{sim, profile, util::RandomStream{2}, "222880000000022", &cell};
    greedy.setGreedy(true);

    const std::uint64_t reclaimsBefore =
        obs::Registry::instance().counter("guard.cell.reclaims").value();
    bool sawUpgrade = false;
    bool sawReclaim = false;
    greedy.onUplinkRateChange = [&](double oldRate, double newRate) {
        if (newRate > oldRate) sawUpgrade = true;
        if (newRate < oldRate && oldRate > cell.fairShareUplinkBps()) sawReclaim = true;
    };
    // The greedy monitor grabs 384k with no saturation evidence and no
    // grant delay; it then idles (no uplink traffic at all), which an
    // honest bearer would volunteer back — the greedy one never does.
    // After downgradeIdle of consecutive empty-queue ticks the RNC
    // takes the over-share grant back itself.
    sim.runUntil(sim::seconds(10.0));
    EXPECT_TRUE(sawUpgrade);
    EXPECT_TRUE(sawReclaim);
    EXPECT_GT(obs::Registry::instance().counter("guard.cell.reclaims").value(),
              reclaimsBefore);
    // Accounting stayed exact through grab/reclaim cycles: both
    // bearers' grants sum to the pool's allocated figure.
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(),
                     honest.currentUplinkRateBps() + greedy.currentUplinkRateBps());
    honest.shutdown();
    greedy.shutdown();
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 0.0);
}

TEST(RadioBearer, AttemptPacingPinsAHammeringGreedyBearer) {
    sim::Simulator sim;
    CellCapacity cell{700e3, 7.2e6};
    OperatorProfile profile = onDemandProfile();
    profile.downgradeIdle = sim::seconds(1.0);
    RadioBearer honest{sim, profile, util::RandomStream{1}, "222880000000023", &cell};
    RadioBearer greedy{sim, profile, util::RandomStream{2}, "222880000000024", &cell};
    greedy.setGreedy(true);
    const std::uint64_t denialsBefore =
        obs::Registry::instance().counter("guard.cell.fairness_denials").value();
    // Long horizon: the greedy monitor hammers an upgrade attempt
    // every 200 ms whenever it is below the ladder top. The attempt
    // bucket (0.5 tokens/s refill, denied attempts cost too) must pin
    // it, so the vast majority of its hammering is denied.
    sim.runUntil(sim::seconds(60.0));
    const std::uint64_t denials =
        obs::Registry::instance().counter("guard.cell.fairness_denials").value() -
        denialsBefore;
    EXPECT_GT(denials, 50u);
    // The honest idle bearer keeps its admission grant untouched.
    EXPECT_DOUBLE_EQ(honest.currentUplinkRateBps(), 144e3);
    honest.shutdown();
    greedy.shutdown();
}

}  // namespace
}  // namespace onelab::umts
