#include "umts/cell.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace onelab::umts {
namespace {

TEST(CellCapacity, ReserveGrowReleaseAccounting) {
    CellCapacity cell{768e3, 7.2e6};
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 768e3);
    cell.reserveUplink(144e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 144e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 624e3);
    // Grow 144k -> 384k takes another 240k.
    EXPECT_TRUE(cell.tryGrowUplink(240e3));
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 384e3);
    // A second full-rate grant still fits; a third does not.
    EXPECT_TRUE(cell.tryGrowUplink(384e3));
    EXPECT_FALSE(cell.tryGrowUplink(240e3));
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 768e3);
    cell.releaseUplink(384e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 384e3);
}

TEST(CellCapacity, OversubscribedPoolReportsZeroHeadroom) {
    CellCapacity cell{100e3, 1e6};
    // Floor-guaranteed admissions may push past the budget; headroom
    // clamps at zero rather than going negative.
    cell.reserveUplink(64e3);
    cell.reserveUplink(64e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 128e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 0.0);
    EXPECT_FALSE(cell.tryGrowUplink(1.0));
}

TEST(CellCapacity, DownlinkAdmissionTrimsToHeadroomButNotBelowFloor) {
    CellCapacity cell{768e3, 1000e3};
    EXPECT_DOUBLE_EQ(cell.admitDownlink(700e3, 384e3), 700e3);  // fits untouched
    EXPECT_DOUBLE_EQ(cell.admitDownlink(700e3, 384e3), 384e3);  // 300k left -> floor
    EXPECT_DOUBLE_EQ(cell.downlinkAllocatedBps(), 1084e3);
    cell.releaseDownlink(700e3);
    EXPECT_DOUBLE_EQ(cell.admitDownlink(500e3, 384e3), 500e3);
}

TEST(CellCapacity, ContentionCountersAccumulate) {
    CellCapacity cell{768e3, 7.2e6};
    EXPECT_EQ(cell.deniedUpgrades(), 0u);
    EXPECT_EQ(cell.trimmedAdmissions(), 0u);
    cell.countDeniedUpgrade();
    cell.countDeniedUpgrade();
    cell.countTrimmedAdmission();
    EXPECT_EQ(cell.deniedUpgrades(), 2u);
    EXPECT_EQ(cell.trimmedAdmissions(), 1u);
}

TEST(CellCapacity, ReleaseNotifiesWaitersInRegistrationOrder) {
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3);
    std::vector<int> order;
    (void)cell.addWaiter([&] { order.push_back(1); });
    (void)cell.addWaiter([&] { order.push_back(2); });
    (void)cell.addWaiter([&] { order.push_back(3); });
    cell.releaseUplink(240e3);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CellCapacity, RemovedWaiterIsNotNotified) {
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3);
    std::vector<int> order;
    (void)cell.addWaiter([&] { order.push_back(1); });
    const CellCapacity::WaiterId second = cell.addWaiter([&] { order.push_back(2); });
    cell.removeWaiter(second);
    cell.releaseUplink(100e3);
    EXPECT_EQ(order, (std::vector<int>{1}));
    cell.removeWaiter(second);  // idempotent
}

TEST(CellCapacity, WaiterReleasingDuringNotifyDoesNotRecurse) {
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3);
    int calls = 0;
    // A waiter that itself releases capacity (a bearer shrinking as it
    // re-grants) must not re-enter the notification loop.
    (void)cell.addWaiter([&] {
        ++calls;
        if (calls == 1) cell.releaseUplink(100e3);
    });
    cell.releaseUplink(100e3);
    EXPECT_EQ(calls, 1);
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 568e3);
}

TEST(CellCapacity, WaiterTakingTheFreedCapacityStarvesLaterWaiters) {
    CellCapacity cell{384e3, 7.2e6};
    cell.reserveUplink(384e3);
    std::vector<int> grabbed;
    (void)cell.addWaiter([&] {
        if (cell.tryGrowUplink(240e3)) grabbed.push_back(1);
    });
    (void)cell.addWaiter([&] {
        if (cell.tryGrowUplink(240e3)) grabbed.push_back(2);
    });
    cell.releaseUplink(240e3);
    // First-registered waiter wins the budget; the second re-checks,
    // finds the pool dry again, and stays parked.
    EXPECT_EQ(grabbed, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 0.0);
}

}  // namespace
}  // namespace onelab::umts
