#include "umts/cell.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/rand.hpp"

namespace onelab::umts {
namespace {

TEST(CellCapacity, ReserveGrowReleaseAccounting) {
    CellCapacity cell{768e3, 7.2e6};
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 768e3);
    cell.reserveUplink(144e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 144e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 624e3);
    // Grow 144k -> 384k takes another 240k.
    EXPECT_TRUE(cell.tryGrowUplink(240e3));
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 384e3);
    // A second full-rate grant still fits; a third does not.
    EXPECT_TRUE(cell.tryGrowUplink(384e3));
    EXPECT_FALSE(cell.tryGrowUplink(240e3));
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 768e3);
    cell.releaseUplink(384e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 384e3);
}

TEST(CellCapacity, OversubscribedPoolReportsZeroHeadroom) {
    CellCapacity cell{100e3, 1e6};
    // Floor-guaranteed admissions may push past the budget; headroom
    // clamps at zero rather than going negative.
    cell.reserveUplink(64e3);
    cell.reserveUplink(64e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 128e3);
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 0.0);
    EXPECT_FALSE(cell.tryGrowUplink(1.0));
}

TEST(CellCapacity, DownlinkAdmissionTrimsToHeadroomButNotBelowFloor) {
    CellCapacity cell{768e3, 1000e3};
    EXPECT_DOUBLE_EQ(cell.admitDownlink(700e3, 384e3), 700e3);  // fits untouched
    EXPECT_DOUBLE_EQ(cell.admitDownlink(700e3, 384e3), 384e3);  // 300k left -> floor
    EXPECT_DOUBLE_EQ(cell.downlinkAllocatedBps(), 1084e3);
    cell.releaseDownlink(700e3);
    EXPECT_DOUBLE_EQ(cell.admitDownlink(500e3, 384e3), 500e3);
}

TEST(CellCapacity, ContentionCountersAccumulate) {
    CellCapacity cell{768e3, 7.2e6};
    EXPECT_EQ(cell.deniedUpgrades(), 0u);
    EXPECT_EQ(cell.trimmedAdmissions(), 0u);
    cell.countDeniedUpgrade();
    cell.countDeniedUpgrade();
    cell.countTrimmedAdmission();
    EXPECT_EQ(cell.deniedUpgrades(), 2u);
    EXPECT_EQ(cell.trimmedAdmissions(), 1u);
}

TEST(CellCapacity, ReleaseNotifiesWaitersInRegistrationOrder) {
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3);
    std::vector<int> order;
    (void)cell.addWaiter([&] { order.push_back(1); });
    (void)cell.addWaiter([&] { order.push_back(2); });
    (void)cell.addWaiter([&] { order.push_back(3); });
    cell.releaseUplink(240e3);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CellCapacity, RemovedWaiterIsNotNotified) {
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3);
    std::vector<int> order;
    (void)cell.addWaiter([&] { order.push_back(1); });
    const CellCapacity::WaiterId second = cell.addWaiter([&] { order.push_back(2); });
    cell.removeWaiter(second);
    cell.releaseUplink(100e3);
    EXPECT_EQ(order, (std::vector<int>{1}));
    cell.removeWaiter(second);  // idempotent
}

TEST(CellCapacity, WaiterReleasingDuringNotifyDoesNotRecurse) {
    CellCapacity cell{768e3, 7.2e6};
    cell.reserveUplink(768e3);
    int calls = 0;
    // A waiter that itself releases capacity (a bearer shrinking as it
    // re-grants) must not re-enter the notification loop.
    (void)cell.addWaiter([&] {
        ++calls;
        if (calls == 1) cell.releaseUplink(100e3);
    });
    cell.releaseUplink(100e3);
    EXPECT_EQ(calls, 1);
    EXPECT_DOUBLE_EQ(cell.uplinkAllocatedBps(), 568e3);
}

TEST(CellCapacity, WaiterTakingTheFreedCapacityStarvesLaterWaiters) {
    CellCapacity cell{384e3, 7.2e6};
    cell.reserveUplink(384e3);
    std::vector<int> grabbed;
    (void)cell.addWaiter([&] {
        if (cell.tryGrowUplink(240e3)) grabbed.push_back(1);
    });
    (void)cell.addWaiter([&] {
        if (cell.tryGrowUplink(240e3)) grabbed.push_back(2);
    });
    cell.releaseUplink(240e3);
    // First-registered waiter wins the budget; the second re-checks,
    // finds the pool dry again, and stays parked.
    EXPECT_EQ(grabbed, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(cell.uplinkAvailableBps(), 0.0);
}

// ------------------------------------------------------------------
// Randomized interleaving invariants: 1000 seeded schedules of
// reserve / tryGrow / release / admit / releaseDownlink / squeeze /
// waiter churn, with a shadow model checked after every step:
//
//   * conservation: allocated == sum of outstanding grants the
//     schedule handed out (both pools, at every step);
//   * no over-commit: tryGrowUplink never pushes allocation past the
//     effective budget, and headroom is exactly
//     max(0, budget*scale - allocated);
//   * waiter order: whenever a release/raise notifies, parked waiters
//     run in registration order.
// ------------------------------------------------------------------

class CellInvariants : public ::testing::TestWithParam<int> {};

TEST_P(CellInvariants, RandomInterleavingsHoldTheLedger) {
    constexpr double kUplinkBudget = 768e3;
    constexpr double kDownlinkBudget = 7.2e6;
    constexpr int kSchedulesPerShard = 125;  // 8 shards x 125 = 1000
    constexpr int kStepsPerSchedule = 60;

    for (int schedule = 0; schedule < kSchedulesPerShard; ++schedule) {
        const std::uint64_t seed =
            std::uint64_t(GetParam()) * kSchedulesPerShard + std::uint64_t(schedule) + 1;
        util::RandomStream rng{seed};
        CellCapacity cell{kUplinkBudget, kDownlinkBudget};

        std::vector<double> uplinkGrants;    // outstanding uplink reservations
        std::vector<double> downlinkGrants;  // outstanding downlink admissions
        double scale = 1.0;
        std::vector<CellCapacity::WaiterId> waiters;
        std::vector<CellCapacity::WaiterId> notified;  // order of callbacks

        const auto sum = [](const std::vector<double>& grants) {
            double total = 0.0;
            for (const double grant : grants) total += grant;
            return total;
        };
        const auto checkLedger = [&](const char* when) {
            const double upAllocated = sum(uplinkGrants);
            const double downAllocated = sum(downlinkGrants);
            ASSERT_NEAR(cell.uplinkAllocatedBps(), upAllocated, 1e-6)
                << "seed " << seed << " after " << when;
            ASSERT_NEAR(cell.downlinkAllocatedBps(), downAllocated, 1e-6)
                << "seed " << seed << " after " << when;
            ASSERT_NEAR(cell.uplinkAvailableBps(),
                        std::max(0.0, kUplinkBudget * scale - upAllocated), 1e-6)
                << "seed " << seed << " after " << when;
            ASSERT_NEAR(cell.downlinkAvailableBps(),
                        std::max(0.0, kDownlinkBudget * scale - downAllocated), 1e-6)
                << "seed " << seed << " after " << when;
        };

        for (int step = 0; step < kStepsPerSchedule; ++step) {
            switch (rng.uniformInt(0, 7)) {
                case 0: {  // floor-guaranteed reservation (may oversubscribe)
                    const double bps = rng.uniform(16e3, 384e3);
                    cell.reserveUplink(bps);
                    uplinkGrants.push_back(bps);
                    checkLedger("reserveUplink");
                    break;
                }
                case 1: {  // conditional growth
                    const double bps = rng.uniform(16e3, 384e3);
                    const double headroom = cell.uplinkAvailableBps();
                    const bool grown = cell.tryGrowUplink(bps);
                    ASSERT_EQ(grown, bps <= headroom) << "seed " << seed;
                    if (grown) uplinkGrants.push_back(bps);
                    ASSERT_LE(cell.uplinkAllocatedBps(),
                              std::max(sum(uplinkGrants), kUplinkBudget * scale) + 1e-6)
                        << "tryGrowUplink over-committed, seed " << seed;
                    checkLedger("tryGrowUplink");
                    break;
                }
                case 2: {  // release an outstanding uplink grant
                    if (uplinkGrants.empty()) break;
                    const auto victim = std::size_t(
                        rng.uniformInt(0, std::int64_t(uplinkGrants.size()) - 1));
                    notified.clear();
                    cell.releaseUplink(uplinkGrants[victim]);
                    uplinkGrants.erase(uplinkGrants.begin() + std::ptrdiff_t(victim));
                    // Re-grant offers must respect registration order.
                    ASSERT_TRUE(std::is_sorted(notified.begin(), notified.end()))
                        << "waiters notified out of registration order, seed " << seed;
                    checkLedger("releaseUplink");
                    break;
                }
                case 3: {  // downlink admission (trims, floors)
                    const double desired = rng.uniform(64e3, 2e6);
                    const double floor = rng.uniform(16e3, 384e3);
                    const double granted = cell.admitDownlink(desired, floor);
                    ASSERT_GE(granted, std::min(desired, floor) - 1e-6) << "seed " << seed;
                    ASSERT_LE(granted, std::max(desired, floor) + 1e-6) << "seed " << seed;
                    downlinkGrants.push_back(granted);
                    checkLedger("admitDownlink");
                    break;
                }
                case 4: {  // release a downlink admission
                    if (downlinkGrants.empty()) break;
                    const auto victim = std::size_t(
                        rng.uniformInt(0, std::int64_t(downlinkGrants.size()) - 1));
                    cell.releaseDownlink(downlinkGrants[victim]);
                    downlinkGrants.erase(downlinkGrants.begin() + std::ptrdiff_t(victim));
                    checkLedger("releaseDownlink");
                    break;
                }
                case 5: {  // capacity squeeze / restore
                    notified.clear();
                    scale = rng.chance(0.5) ? rng.uniform(0.2, 0.9) : 1.0;
                    cell.setCapacityScale(scale);
                    ASSERT_TRUE(std::is_sorted(notified.begin(), notified.end()))
                        << "seed " << seed;
                    checkLedger("setCapacityScale");
                    break;
                }
                case 6: {  // park a waiter
                    if (waiters.size() >= 8) break;
                    // The callback records its own id; ids are handed
                    // out monotonically, so sortedness of the recorded
                    // ids IS registration order.
                    auto self = std::make_shared<CellCapacity::WaiterId>(0);
                    *self = cell.addWaiter(
                        [&notified, self] { notified.push_back(*self); });
                    waiters.push_back(*self);
                    break;
                }
                case 7: {  // unpark a random waiter
                    if (waiters.empty()) break;
                    const auto victim = std::size_t(
                        rng.uniformInt(0, std::int64_t(waiters.size()) - 1));
                    cell.removeWaiter(waiters[victim]);
                    waiters.erase(waiters.begin() + std::ptrdiff_t(victim));
                    break;
                }
            }
        }
        for (const CellCapacity::WaiterId id : waiters) cell.removeWaiter(id);
    }
}

INSTANTIATE_TEST_SUITE_P(Shards, CellInvariants, ::testing::Range(0, 8));

// --- fairness clamp: fair-share check + per-claimant attempt pacing ---

TEST(CellFairness, FairShareDeniesGrowthToOverShareHolderUnderContention) {
    CellCapacity cell{768e3, 7.2e6};
    const auto a = cell.addWaiter([] {});
    (void)cell.addWaiter([] {});
    EXPECT_DOUBLE_EQ(cell.fairShareUplinkBps(), 384e3);
    cell.reserveUplink(384e3);
    // Holding exactly fair share with another claimant present: denied.
    const std::uint64_t before = cell.fairnessDenials();
    EXPECT_FALSE(cell.tryGrowUplink(64e3, 384e3));
    EXPECT_EQ(cell.fairnessDenials(), before + 1);
    // Under fair share the same growth is decided by headroom alone.
    EXPECT_TRUE(cell.tryGrowUplink(64e3, 256e3));
    cell.releaseUplink(448e3);
    cell.removeWaiter(a);
    // Sole claimant: the clamp never applies.
    cell.reserveUplink(384e3);
    EXPECT_TRUE(cell.tryGrowUplink(64e3, 384e3));
}

TEST(CellFairness, ClampDisabledRestoresPureHeadroomDecision) {
    CellCapacity cell{768e3, 7.2e6};
    cell.setFairnessClamp(false);
    (void)cell.addWaiter([] {});
    (void)cell.addWaiter([] {});
    cell.reserveUplink(700e3);
    EXPECT_TRUE(cell.tryGrowUplink(64e3, 700e3));
    EXPECT_EQ(cell.fairnessDenials(), 0u);
}

TEST(CellFairness, AttemptPacingDeniesASpammerEvenWithHeadroom) {
    CellCapacity cell{768e3, 7.2e6};
    const auto spammer = cell.addWaiter([] {});
    (void)cell.addWaiter([] {});
    const sim::SimTime t0 = sim::seconds(100.0);
    // Burst budget (3 attempts) passes; the 4th is paced out even
    // though the pool has plenty of headroom and the holding is under
    // fair share — rate, not need, is what the bucket discriminates.
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(cell.tryGrowUplink(10e3, 0.0, spammer, t0)) << "attempt " << i;
    const std::uint64_t before = cell.fairnessDenials();
    EXPECT_FALSE(cell.tryGrowUplink(10e3, 0.0, spammer, t0));
    EXPECT_EQ(cell.fairnessDenials(), before + 1);
    // 2 s at 0.5 tokens/s refills one attempt... but the denied
    // attempt above cost a token too (debt), so it takes 4 s.
    EXPECT_FALSE(cell.tryGrowUplink(10e3, 0.0, spammer, t0 + sim::seconds(2.0)));
    EXPECT_TRUE(cell.tryGrowUplink(10e3, 0.0, spammer, t0 + sim::seconds(6.1)));
}

TEST(CellFairness, DebtIsBoundedAndQuietTimeRecovers) {
    CellCapacity cell{768e3, 7.2e6};
    const auto spammer = cell.addWaiter([] {});
    (void)cell.addWaiter([] {});
    const sim::SimTime t0 = sim::seconds(100.0);
    // A hammering claimant pins its bucket at the debt floor; the
    // floor bounds how long quiet time takes to recover.
    for (int i = 0; i < 100; ++i) (void)cell.tryGrowUplink(10e3, 0.0, spammer, t0);
    // Just under the full recovery window: still denied (the recovery
    // attempt itself costs a token from barely-at-1.0).
    EXPECT_FALSE(cell.tryGrowUplink(10e3, 0.0, spammer, t0 + sim::seconds(20.0)));
    // From the floor (-10): (10 + 1) / 0.5 = 22 s of silence buys one
    // admitted attempt.
    EXPECT_TRUE(cell.tryGrowUplink(10e3, 0.0, spammer,
                                   t0 + sim::seconds(20.0) + sim::seconds(23.0)));
}

TEST(CellFairness, AnonymousAndHonestClaimantsAreUnaffectedByPacing) {
    CellCapacity cell{768e3, 7.2e6};
    const auto honest = cell.addWaiter([] {});
    (void)cell.addWaiter([] {});
    // Claimant 0 (anonymous) is never paced, however fast it retries.
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(cell.tryGrowUplink(1e3, 0.0, 0, sim::seconds(100.0)));
    // An honest claimant attempting once a minute stays in burst
    // territory forever (refill outpaces its attempt rate).
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(cell.tryGrowUplink(1e3, 0.0, honest,
                                       sim::seconds(100.0 + 60.0 * i)));
    EXPECT_EQ(cell.fairnessDenials(), 0u);
}

TEST(CellFairness, RemoveWaiterDropsPacingState) {
    CellCapacity cell{768e3, 7.2e6};
    const auto spammer = cell.addWaiter([] {});
    (void)cell.addWaiter([] {});
    const sim::SimTime t0 = sim::seconds(100.0);
    for (int i = 0; i < 10; ++i) (void)cell.tryGrowUplink(10e3, 0.0, spammer, t0);
    cell.removeWaiter(spammer);
    // A fresh registration (same numeric id will not be reused, but
    // the erase must not leak state either way) starts at full burst.
    const auto fresh = cell.addWaiter([] {});
    EXPECT_TRUE(cell.tryGrowUplink(10e3, 0.0, fresh, t0));
}

}  // namespace
}  // namespace onelab::umts
