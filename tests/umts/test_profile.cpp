#include "umts/profile.hpp"

#include <gtest/gtest.h>

namespace onelab::umts {
namespace {

TEST(Profile, CommercialOperatorShape) {
    const OperatorProfile profile = commercialItalianOperator();
    EXPECT_EQ(profile.name, "commercial-it");
    // On-demand allocation starting from a mid-ladder DCH is the
    // mechanism behind the Fig. 4 knee.
    EXPECT_TRUE(profile.onDemandAllocation);
    ASSERT_GE(profile.uplinkRatesBps.size(), 2u);
    EXPECT_LT(profile.initialUplinkIndex, profile.uplinkRatesBps.size() - 1);
    // The ladder must be ascending.
    for (std::size_t i = 1; i < profile.uplinkRatesBps.size(); ++i)
        EXPECT_GT(profile.uplinkRatesBps[i], profile.uplinkRatesBps[i - 1]);
    // Consumer operator: firewalled, accepts any credentials.
    EXPECT_TRUE(profile.statefulFirewall);
    EXPECT_TRUE(profile.acceptAnyCredentials);
    // Subscriber pool contains GGSN + DNS addresses.
    EXPECT_TRUE(profile.subscriberPool.contains(profile.ggsnAddress));
    EXPECT_TRUE(profile.subscriberPool.contains(profile.dnsServer));
}

TEST(Profile, MicrocellShape) {
    const OperatorProfile profile = alcatelLucentMicrocell();
    EXPECT_EQ(profile.name, "alcatel-microcell");
    // Private cell: full rate immediately, no consumer firewall, and a
    // real subscriber database.
    EXPECT_FALSE(profile.onDemandAllocation);
    EXPECT_FALSE(profile.statefulFirewall);
    EXPECT_FALSE(profile.acceptAnyCredentials);
    EXPECT_FALSE(profile.subscribers.empty());
    EXPECT_GT(profile.signalQualityCsq, commercialItalianOperator().signalQualityCsq);
    EXPECT_LT(sim::toMillis(profile.registrationDelay),
              sim::toMillis(commercialItalianOperator().registrationDelay));
}

TEST(Profile, DistinctAddressSpaces) {
    const OperatorProfile a = commercialItalianOperator();
    const OperatorProfile b = alcatelLucentMicrocell();
    EXPECT_FALSE(a.subscriberPool.contains(b.ggsnAddress));
    EXPECT_FALSE(b.subscriberPool.contains(a.ggsnAddress));
}

TEST(Profile, UplinkSaturationHeadroom) {
    // The calibration invariant behind Figs 1-3: a 72 kbps VoIP flow
    // (~104 kbps on the wire) must fit the initial bearer, while the
    // 1 Mbps flow must not fit even the top one.
    const OperatorProfile profile = commercialItalianOperator();
    const double initial = profile.uplinkRatesBps[profile.initialUplinkIndex];
    const double top = profile.uplinkRatesBps.back();
    EXPECT_GT(initial, 110e3);  // VoIP wire rate fits
    EXPECT_LT(top, 1e6);        // 1 Mbps saturates
}

}  // namespace
}  // namespace onelab::umts
