#include "umts/network.hpp"

#include <gtest/gtest.h>

namespace onelab::umts {
namespace {

struct NetworkTest : ::testing::Test {
    NetworkTest()
        : internet(sim, util::RandomStream{5}),
          network(sim, internet, commercialItalianOperator(), util::RandomStream{6}) {}

    /// Attach + activate synchronously (driving the simulator).
    UmtsSession* bringUpSession(const std::string& imsi = "222880000000001") {
        bool attached = false;
        network.attachUe(imsi, [&](util::Result<void> r) { attached = r.ok(); });
        sim.runUntil(sim.now() + sim::seconds(5.0));
        EXPECT_TRUE(attached);
        UmtsSession* session = nullptr;
        network.activatePdp(imsi, network.profile().apn,
                            [&](util::Result<UmtsSession*> r) {
                                if (r.ok()) session = r.value();
                            });
        sim.runUntil(sim.now() + sim::seconds(3.0));
        return session;
    }

    sim::Simulator sim;
    net::Internet internet;
    UmtsNetwork network;
};

TEST_F(NetworkTest, AttachTakesRegistrationDelay) {
    bool done = false;
    network.attachUe("imsi-1", [&](util::Result<void> r) { done = r.ok(); });
    sim.runUntil(sim::seconds(1.0));
    EXPECT_FALSE(done);  // registration delay is 2.2 s
    EXPECT_FALSE(network.isAttached("imsi-1"));
    sim.runUntil(sim::seconds(3.0));
    EXPECT_TRUE(done);
    EXPECT_TRUE(network.isAttached("imsi-1"));
}

TEST_F(NetworkTest, AttachFailsWithoutCoverage) {
    network.setCoverage(false);
    std::optional<bool> outcome;
    network.attachUe("imsi-1", [&](util::Result<void> r) { outcome = r.ok(); });
    EXPECT_EQ(outcome, false);
    EXPECT_EQ(network.signalQuality(), 99);  // AT+CSQ "unknown"
}

TEST_F(NetworkTest, SignalQualityNearProfileValue) {
    for (int i = 0; i < 20; ++i) {
        const int csq = network.signalQuality();
        EXPECT_GE(csq, network.profile().signalQualityCsq - 2);
        EXPECT_LE(csq, network.profile().signalQualityCsq + 2);
    }
}

TEST_F(NetworkTest, PdpRequiresAttach) {
    std::optional<util::Error::Code> code;
    network.activatePdp("unknown-imsi", network.profile().apn,
                        [&](util::Result<UmtsSession*> r) {
                            if (!r.ok()) code = r.error().code;
                        });
    EXPECT_EQ(code, util::Error::Code::state);
}

TEST_F(NetworkTest, PdpRejectsWrongApn) {
    bool attached = false;
    network.attachUe("imsi-1", [&](util::Result<void> r) { attached = r.ok(); });
    sim.runUntil(sim::seconds(5.0));
    ASSERT_TRUE(attached);
    std::optional<util::Error::Code> code;
    network.activatePdp("imsi-1", "wrong.apn", [&](util::Result<UmtsSession*> r) {
        if (!r.ok()) code = r.error().code;
    });
    EXPECT_EQ(code, util::Error::Code::invalid_argument);
}

TEST_F(NetworkTest, SessionGetsPoolAddressAndGgsnRoute) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    EXPECT_TRUE(network.profile().subscriberPool.contains(session->subscriberAddress()));
    EXPECT_NE(session->subscriberAddress(), network.profile().ggsnAddress);
    EXPECT_EQ(network.activeSessions(), 1u);
    EXPECT_EQ(network.sessionAt(0), session);
    // GGSN has a host route toward the subscriber.
    const auto route = network.ggsn().router().table(net::PolicyRouter::kMainTable)
                           .lookup(session->subscriberAddress());
    ASSERT_TRUE(route.has_value());
    EXPECT_NE(route->oifName, "wan");
}

TEST_F(NetworkTest, DistinctSubscribersGetDistinctAddresses) {
    UmtsSession* a = bringUpSession("imsi-a");
    UmtsSession* b = bringUpSession("imsi-b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a->subscriberAddress(), b->subscriberAddress());
    EXPECT_EQ(network.activeSessions(), 2u);
}

TEST_F(NetworkTest, AddressReleasedOnDeactivation) {
    UmtsSession* a = bringUpSession("imsi-a");
    ASSERT_NE(a, nullptr);
    const net::Ipv4Address addr = a->subscriberAddress();
    network.deactivatePdp(a);
    EXPECT_EQ(network.activeSessions(), 0u);
    UmtsSession* b = bringUpSession("imsi-b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->subscriberAddress(), addr);  // recycled
}

TEST_F(NetworkTest, TeardownCallbackFires) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    bool torn = false;
    session->onTeardown = [&] { torn = true; };
    network.detachUe(session->imsi());  // detach drops the session too
    EXPECT_TRUE(torn);
    EXPECT_EQ(network.activeSessions(), 0u);
}

TEST_F(NetworkTest, DetachDuringRegistrationCancels) {
    bool fired = false;
    network.attachUe("imsi-1", [&](util::Result<void>) { fired = true; });
    network.detachUe("imsi-1");
    sim.runUntil(sim::seconds(5.0));
    EXPECT_FALSE(fired);
    EXPECT_FALSE(network.isAttached("imsi-1"));
}

TEST_F(NetworkTest, StatefulFirewallBlocksUnsolicitedInbound) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    // Unsolicited packet from the Internet toward the subscriber.
    net::Packet intrusion = net::makeUdpPacket(net::Ipv4Address{138, 96, 250, 20}, 22,
                                               session->subscriberAddress(), 22, {});
    network.ggsn().findInterface("wan")->deliver(std::move(intrusion));
    sim.runUntil(sim.now() + sim::seconds(1.0));
    EXPECT_EQ(network.firewallBlockedInbound(), 1u);
    EXPECT_EQ(network.ggsn().forwardedPackets(), 0u);
}

TEST_F(NetworkTest, FirewallAllowsReturnTraffic) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    // Outbound flow recorded at the GGSN's pdp-side interface...
    net::Packet outbound = net::makeUdpPacket(session->subscriberAddress(), 5000,
                                              net::Ipv4Address{138, 96, 250, 20}, 9001, {});
    // Find the pdp interface (the non-wan one).
    net::Interface* pdp = nullptr;
    for (const std::string& name : network.ggsn().interfaceNames())
        if (name != "wan") pdp = network.ggsn().findInterface(name);
    ASSERT_NE(pdp, nullptr);
    pdp->deliver(std::move(outbound));
    EXPECT_EQ(network.ggsn().forwardedPackets(), 1u);

    // ...so the reverse packet is admitted.
    net::Packet reply = net::makeUdpPacket(net::Ipv4Address{138, 96, 250, 20}, 9001,
                                           session->subscriberAddress(), 5000, {});
    network.ggsn().findInterface("wan")->deliver(std::move(reply));
    EXPECT_EQ(network.ggsn().forwardedPackets(), 2u);
    EXPECT_EQ(network.firewallBlockedInbound(), 0u);
}

OperatorProfile natOperator() {
    OperatorProfile profile = commercialItalianOperator();
    profile.name = "nat-it";
    profile.natSubscribers = true;
    profile.subscriberPool = net::Prefix{net::Ipv4Address{10, 47, 0, 0}, 16};
    profile.ggsnAddress = net::Ipv4Address{93, 57, 0, 1};
    profile.dnsServer = net::Ipv4Address{93, 57, 0, 53};
    return profile;
}

struct NatNetworkTest : ::testing::Test {
    NatNetworkTest()
        : internet(sim, util::RandomStream{5}),
          network(sim, internet, natOperator(), util::RandomStream{6}) {
        // A wired observer host.
        observerStack = std::make_unique<net::NetworkStack>(sim, "observer");
        net::Interface& eth = observerStack->addInterface("eth0");
        eth.setAddress(net::Ipv4Address{138, 96, 250, 20});
        eth.setUp(true);
        internet.attach(eth, net::AccessLink{});
        observerStack->router().table(net::PolicyRouter::kMainTable)
            .addRoute({net::Prefix::any(), "eth0", std::nullopt, 0});
    }

    UmtsSession* bringUpSession() {
        bool attached = false;
        network.attachUe("imsi-nat", [&](util::Result<void> r) { attached = r.ok(); });
        sim.runUntil(sim.now() + sim::seconds(5.0));
        EXPECT_TRUE(attached);
        UmtsSession* session = nullptr;
        network.activatePdp("imsi-nat", network.profile().apn,
                            [&](util::Result<UmtsSession*> r) {
                                if (r.ok()) session = r.value();
                            });
        sim.runUntil(sim.now() + sim::seconds(3.0));
        return session;
    }

    net::Interface* pdpInterface() {
        for (const std::string& name : network.ggsn().interfaceNames())
            if (name != "wan") return network.ggsn().findInterface(name);
        return nullptr;
    }

    sim::Simulator sim;
    net::Internet internet;
    UmtsNetwork network;
    std::unique_ptr<net::NetworkStack> observerStack;
};

TEST_F(NatNetworkTest, OutboundSourceRewrittenToGgsnAddress) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    EXPECT_TRUE((net::Prefix{net::Ipv4Address{10, 47, 0, 0}, 16})
                    .contains(session->subscriberAddress()));

    auto observer = observerStack->openUdp(0, 9001).value();
    std::optional<net::Datagram> seen;
    observer->onReceive([&](net::Datagram d) { seen = std::move(d); });

    net::Packet outbound = net::makeUdpPacket(session->subscriberAddress(), 5000,
                                              net::Ipv4Address{138, 96, 250, 20}, 9001,
                                              util::Bytes{7});
    pdpInterface()->deliver(std::move(outbound));
    sim.runUntil(sim.now() + sim::seconds(1.0));

    ASSERT_TRUE(seen.has_value());
    // The observer sees the GGSN's public address, not the private one.
    EXPECT_EQ(seen->src, network.profile().ggsnAddress);
    EXPECT_NE(seen->srcPort, 5000);
    EXPECT_GE(seen->srcPort, 20000);
    EXPECT_EQ(network.natBindingCount(), 1u);
}

TEST_F(NatNetworkTest, ReplyTranslatedBackToSubscriber) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);

    std::optional<net::Packet> towardSubscriber;
    // Watch what the GGSN pushes down the PDP interface by sniffing
    // its pppd input: easier — watch the session's pppd via the GGSN
    // stack sniffer for packets addressed to the subscriber.
    auto observer = observerStack->openUdp(0, 9001).value();
    observer->onReceive([&](net::Datagram d) {
        // Echo straight back to whatever source we saw (the NAT addr).
        (void)observer->sendTo(d.src, d.srcPort, util::Bytes{9});
    });
    network.ggsn().setSniffer([&](const net::Packet& pkt, const std::string& iif) {
        if (iif == "wan" && pkt.ip.protocol == net::IpProto::udp) towardSubscriber = pkt;
    });

    net::Packet outbound = net::makeUdpPacket(session->subscriberAddress(), 5000,
                                              net::Ipv4Address{138, 96, 250, 20}, 9001,
                                              util::Bytes{7});
    pdpInterface()->deliver(std::move(outbound));
    sim.runUntil(sim.now() + sim::seconds(1.0));

    // The GGSN forwarded the reply after DNAT back to the private
    // address; the sniffer sees the pre-hook packet (public), but the
    // binding must have translated twice (out + in).
    EXPECT_GE(network.natTranslations(), 2u);
    ASSERT_TRUE(towardSubscriber.has_value());
}

TEST_F(NatNetworkTest, DistinctFlowsGetDistinctPublicPorts) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    auto observer = observerStack->openUdp(0, 9001).value();
    std::vector<std::uint16_t> seenPorts;
    observer->onReceive([&](net::Datagram d) { seenPorts.push_back(d.srcPort); });
    for (std::uint16_t port : {5000, 5001, 5002}) {
        net::Packet outbound = net::makeUdpPacket(session->subscriberAddress(), port,
                                                  net::Ipv4Address{138, 96, 250, 20}, 9001,
                                                  util::Bytes{1});
        pdpInterface()->deliver(std::move(outbound));
    }
    sim.runUntil(sim.now() + sim::seconds(1.0));
    ASSERT_EQ(seenPorts.size(), 3u);
    EXPECT_NE(seenPorts[0], seenPorts[1]);
    EXPECT_NE(seenPorts[1], seenPorts[2]);
    EXPECT_EQ(network.natBindingCount(), 3u);

    // Same flow again: binding is reused.
    net::Packet again = net::makeUdpPacket(session->subscriberAddress(), 5000,
                                           net::Ipv4Address{138, 96, 250, 20}, 9001,
                                           util::Bytes{1});
    pdpInterface()->deliver(std::move(again));
    sim.runUntil(sim.now() + sim::seconds(1.0));
    ASSERT_EQ(seenPorts.size(), 4u);
    EXPECT_EQ(seenPorts[3], seenPorts[0]);
    EXPECT_EQ(network.natBindingCount(), 3u);
}

TEST_F(NatNetworkTest, UnsolicitedInboundToPublicAddressDies) {
    UmtsSession* session = bringUpSession();
    ASSERT_NE(session, nullptr);
    // No binding for this port: the packet is delivered to the GGSN
    // itself (no listener) rather than to any subscriber.
    net::Packet intrusion = net::makeUdpPacket(net::Ipv4Address{138, 96, 250, 20}, 22,
                                               network.profile().ggsnAddress, 23456, {});
    network.ggsn().findInterface("wan")->deliver(std::move(intrusion));
    sim.runUntil(sim.now() + sim::seconds(1.0));
    EXPECT_EQ(network.ggsn().forwardedPackets(), 0u);
}

TEST_F(NetworkTest, MicrocellHasNoFirewall) {
    UmtsNetwork microcell{sim, internet, alcatelLucentMicrocell(), util::RandomStream{9}};
    bool attached = false;
    microcell.attachUe("imsi-m", [&](util::Result<void> r) { attached = r.ok(); });
    sim.runUntil(sim.now() + sim::seconds(3.0));
    ASSERT_TRUE(attached);
    UmtsSession* session = nullptr;
    microcell.activatePdp("imsi-m", microcell.profile().apn,
                          [&](util::Result<UmtsSession*> r) {
                              if (r.ok()) session = r.value();
                          });
    sim.runUntil(sim.now() + sim::seconds(2.0));
    ASSERT_NE(session, nullptr);
    net::Packet intrusion = net::makeUdpPacket(net::Ipv4Address{138, 96, 250, 20}, 22,
                                               session->subscriberAddress(), 22, {});
    microcell.ggsn().findInterface("wan")->deliver(std::move(intrusion));
    EXPECT_EQ(microcell.firewallBlockedInbound(), 0u);
    EXPECT_EQ(microcell.ggsn().forwardedPackets(), 1u);
}

// --- trust-boundary guards: attach storm + flow-state churn ---

std::uint64_t guardCounter(const char* name) {
    return obs::Registry::instance().counter(name).value();
}

TEST(SignalingGuard, BarringCapsAttachBacklog) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{5}};
    OperatorProfile profile = commercialItalianOperator();
    profile.signalingGuard.barringLimit = 8;
    profile.signalingGuard.congestionStart = 4;
    UmtsNetwork network{sim, internet, profile, util::RandomStream{6}};

    const std::uint64_t throttledBefore = guardCounter("guard.umts.attach_throttled");
    const std::uint64_t delayedBefore = guardCounter("guard.umts.attach_delayed");
    int admitted = 0;
    int barred = 0;
    for (int i = 0; i < 20; ++i) {
        network.attachUe("storm-" + std::to_string(i), [&](util::Result<void> r) {
            if (r.ok())
                ++admitted;
            else if (r.error().code == util::Error::Code::busy)
                ++barred;
        });
    }
    // The backlog never exceeds the barring limit; the 12 over-limit
    // attaches were answered busy immediately.
    EXPECT_EQ(network.attachBacklog(), 8u);
    EXPECT_EQ(barred, 12);
    EXPECT_EQ(guardCounter("guard.umts.attach_throttled"), throttledBefore + 12);
    // Congestion physics slowed the late admits (backlog >= 4).
    EXPECT_GT(guardCounter("guard.umts.attach_delayed"), delayedBefore);
    // Every admitted registration completes once the delays elapse.
    sim.runUntil(sim.now() + sim::seconds(60.0));
    EXPECT_EQ(admitted, 8);
    EXPECT_EQ(network.attachBacklog(), 0u);
}

TEST(SignalingGuard, DisabledBarringAdmitsUnboundedBacklog) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{5}};
    OperatorProfile profile = commercialItalianOperator();
    profile.signalingGuard.enabled = false;
    profile.signalingGuard.barringLimit = 8;
    UmtsNetwork network{sim, internet, profile, util::RandomStream{6}};

    int barred = 0;
    for (int i = 0; i < 20; ++i) {
        network.attachUe("storm-" + std::to_string(i),
                         [&](util::Result<void> r) { barred += r.ok() ? 0 : 1; });
    }
    // No barring: the whole storm is in flight at once (this is the
    // unguarded failure mode the adversary bench measures); the
    // congestion slowdown still applies — it is physics, not policy.
    EXPECT_EQ(network.attachBacklog(), 20u);
    EXPECT_EQ(barred, 0);
}

TEST(NatGuardFlows, PerSubscriberQuotaBoundsChurnState) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{5}};
    OperatorProfile profile = commercialItalianOperator();
    profile.natGuard.perSubscriberQuota = 10;
    UmtsNetwork network{sim, internet, profile, util::RandomStream{6}};

    const net::Ipv4Address sprayer{10, 47, 0, 99};
    const net::Ipv4Address dest{138, 96, 250, 20};
    const std::uint64_t deniedBefore = guardCounter("guard.firewall.quota_denied");
    const std::size_t recorded = network.injectFlowChurn(sprayer, dest, 30000, 100);
    EXPECT_EQ(recorded, 10u);
    EXPECT_EQ(network.firewallFlowCount(), 10u);
    EXPECT_EQ(guardCounter("guard.firewall.quota_denied"), deniedBefore + 90);
}

TEST(NatGuardFlows, QuotaKeepsChurnFromEvictingVictimState) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{5}};
    OperatorProfile profile = commercialItalianOperator();
    profile.natGuard.maxFirewallFlows = 64;
    profile.natGuard.perSubscriberQuota = 32;
    UmtsNetwork network{sim, internet, profile, util::RandomStream{6}};

    const net::Ipv4Address victim{10, 47, 0, 16};
    const net::Ipv4Address sprayer{10, 47, 0, 99};
    const net::Ipv4Address dest{138, 96, 250, 20};
    ASSERT_EQ(network.injectFlowChurn(victim, dest, 5000, 1), 1u);
    ASSERT_TRUE(network.hasFlowStateFor(victim));
    // A 500-flow spray hits the sprayer's own quota long before the
    // table cap, so the victim's single return-path entry survives.
    (void)network.injectFlowChurn(sprayer, dest, 30000, 500);
    EXPECT_TRUE(network.hasFlowStateFor(victim));
    EXPECT_LE(network.firewallFlowCount(), 33u);
}

TEST(NatGuardFlows, UnlimitedQuotaLetsChurnEvictVictim) {
    sim::Simulator sim;
    net::Internet internet{sim, util::RandomStream{5}};
    OperatorProfile profile = commercialItalianOperator();
    profile.natGuard.maxFirewallFlows = 16;
    profile.natGuard.perSubscriberQuota = 0;  // guard off
    UmtsNetwork network{sim, internet, profile, util::RandomStream{6}};

    const net::Ipv4Address victim{10, 47, 0, 16};
    const net::Ipv4Address sprayer{10, 47, 0, 99};
    const net::Ipv4Address dest{138, 96, 250, 20};
    ASSERT_EQ(network.injectFlowChurn(victim, dest, 5000, 1), 1u);
    const std::uint64_t evictedBefore = guardCounter("guard.firewall.evicted");
    (void)network.injectFlowChurn(sprayer, dest, 30000, 200);
    // With the quota off the spray churns the whole bounded table —
    // the victim's entry is evicted (the attack the quota exists for).
    EXPECT_FALSE(network.hasFlowStateFor(victim));
    EXPECT_LE(network.firewallFlowCount(), 16u);
    EXPECT_GT(guardCounter("guard.firewall.evicted"), evictedBefore);
}

}  // namespace
}  // namespace onelab::umts
