#include "ditg/voip_quality.hpp"

#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace onelab::ditg {
namespace {

TEST(VoipQuality, CleanPathIsToll) {
    const VoipQuality quality = estimateVoipQuality(0.020, 0.0001, 0.0);
    EXPECT_GT(quality.rFactor, 88.0);
    EXPECT_GT(quality.mos, 4.2);
    EXPECT_TRUE(quality.satisfying());
    EXPECT_FALSE(quality.nearlyImpossible());
}

TEST(VoipQuality, DelayDegradesMonotonically) {
    double previous = 5.0;
    for (const double owd : {0.05, 0.15, 0.25, 0.40, 0.80}) {
        const VoipQuality quality = estimateVoipQuality(owd, 0.005, 0.0);
        EXPECT_LT(quality.mos, previous) << owd;
        previous = quality.mos;
    }
}

TEST(VoipQuality, LossDegradesSharply) {
    const VoipQuality light = estimateVoipQuality(0.1, 0.005, 0.01);
    const VoipQuality heavy = estimateVoipQuality(0.1, 0.005, 0.30);
    EXPECT_GT(light.mos, 3.5);
    EXPECT_LT(heavy.mos, 2.2);
    EXPECT_TRUE(heavy.nearlyImpossible());
}

TEST(VoipQuality, ExtremesClampToScale) {
    const VoipQuality terrible = estimateVoipQuality(5.0, 1.0, 0.9);
    EXPECT_GE(terrible.mos, 1.0);
    EXPECT_LE(terrible.rFactor, 100.0);
    EXPECT_EQ(terrible.mos, 1.0);
}

// --- the paper's two qualitative claims, measured ---

TEST(VoipQuality, PaperClaimUmtsVoipIsSatisfying) {
    // §3.2: jitter/RTT on UMTS "still allows a VoIP communication to
    // be satisfying for the users".
    scenario::ExperimentOptions options;
    options.workload = scenario::Workload::voip_g711;
    options.durationSeconds = 60.0;
    const scenario::PathRun run =
        scenario::runPath(scenario::PathKind::umts_to_ethernet, options);
    const VoipQuality quality = estimateVoipQuality(run.summary);
    EXPECT_TRUE(quality.satisfying())
        << "R=" << quality.rFactor << " MOS=" << quality.mos;
    // And the wired path is better still.
    const scenario::PathRun wired =
        scenario::runPath(scenario::PathKind::ethernet_to_ethernet, options);
    EXPECT_GT(estimateVoipQuality(wired.summary).mos, quality.mos);
}

TEST(VoipQuality, PaperClaimSaturatedLinkIsNearlyImpossible) {
    // §3.2 on the 1 Mbps flow: "makes a real time communication
    // nearly impossible".
    scenario::ExperimentOptions options;
    options.workload = scenario::Workload::cbr_1mbps;
    options.durationSeconds = 60.0;
    const scenario::PathRun run =
        scenario::runPath(scenario::PathKind::umts_to_ethernet, options);
    const VoipQuality quality = estimateVoipQuality(run.summary);
    EXPECT_TRUE(quality.nearlyImpossible())
        << "R=" << quality.rFactor << " MOS=" << quality.mos;
}

}  // namespace
}  // namespace onelab::ditg
