#include "ditg/decoder.hpp"

#include <gtest/gtest.h>

namespace onelab::ditg {
namespace {

using sim::millis;
using sim::seconds;

/// Hand-built logs: 10 packets, 100 ms apart, 100 B payload, constant
/// 50 ms OWD, every 4th packet lost, ACK RTT = 2x OWD.
struct SyntheticLogs {
    SyntheticLogs() {
        for (int i = 0; i < 10; ++i) {
            TxRecord tx;
            tx.sequence = std::uint32_t(i);
            tx.payloadBytes = 100;
            tx.txTime = millis(100.0 * i);
            sender.packets.push_back(tx);
            if (i % 4 == 3) continue;  // lost
            RxRecord rx;
            rx.flowId = 1;
            rx.sequence = std::uint32_t(i);
            rx.payloadBytes = 100;
            rx.txTime = tx.txTime;
            rx.rxTime = tx.txTime + millis(50);
            receiver.packets.push_back(rx);
            sender.rtts.push_back(RttRecord{tx.sequence, tx.txTime, millis(100)});
        }
    }
    SenderLog sender;
    ReceiverLog receiver;
};

TEST(ItgDec, BitratePerWindow) {
    SyntheticLogs logs;
    const QosSeries series = ItgDec::decode(logs.sender, logs.receiver, 0.2);
    // Window 0 [0,0.2): arrivals at 50 ms and 150 ms => 200 B => 8 kbps.
    ASSERT_FALSE(series.bitrateKbps.empty());
    EXPECT_NEAR(series.bitrateKbps[0].value, 8.0, 1e-9);
    EXPECT_NEAR(series.bitrateKbps[0].timeSeconds, 0.1, 1e-9);
    // Window 1 [0.2,0.4): arrival at 250 ms only (seq 3 lost) => 4 kbps.
    EXPECT_NEAR(series.bitrateKbps[1].value, 4.0, 1e-9);
}

TEST(ItgDec, ConstantOwdGivesZeroJitter) {
    SyntheticLogs logs;
    const QosSeries series = ItgDec::decode(logs.sender, logs.receiver, 0.2);
    for (const auto& point : series.jitterSeconds) EXPECT_DOUBLE_EQ(point.value, 0.0);
}

TEST(ItgDec, JitterReflectsOwdDeltas) {
    SenderLog sender;
    ReceiverLog receiver;
    // Three packets with OWD 50, 80, 60 ms -> |Δ| = 30, 20 ms. Spaced
    // 100 ms apart so arrival order matches send order (the decoder
    // computes jitter over consecutive ARRIVALS).
    const double owd[] = {50, 80, 60};
    for (int i = 0; i < 3; ++i) {
        TxRecord tx;
        tx.sequence = std::uint32_t(i);
        tx.payloadBytes = 100;
        tx.txTime = millis(100.0 * i);
        sender.packets.push_back(tx);
        RxRecord rx;
        rx.sequence = tx.sequence;
        rx.payloadBytes = 100;
        rx.txTime = tx.txTime;
        rx.rxTime = tx.txTime + millis(owd[i]);
        receiver.packets.push_back(rx);
    }
    const QosSeries series = ItgDec::decode(sender, receiver, 0.2);
    // Arrival 180 ms lands in window 0, arrival 260 ms in window 1.
    ASSERT_EQ(series.jitterSeconds.size(), 2u);
    EXPECT_NEAR(series.jitterSeconds[0].value, 0.030, 1e-9);  // |80-50| ms
    EXPECT_NEAR(series.jitterSeconds[1].value, 0.020, 1e-9);  // |60-80| ms
}

TEST(ItgDec, LossAttributedToSendWindow) {
    SyntheticLogs logs;
    const QosSeries series = ItgDec::decode(logs.sender, logs.receiver, 0.2);
    // Losses at seq 3 (t=0.3) and seq 7 (t=0.7).
    double totalLoss = 0;
    for (const auto& point : series.lossPackets) totalLoss += point.value;
    EXPECT_DOUBLE_EQ(totalLoss, 2.0);
    EXPECT_DOUBLE_EQ(series.lossPackets[1].value, 1.0);  // window [0.2,0.4)
    EXPECT_DOUBLE_EQ(series.lossPackets[3].value, 1.0);  // window [0.6,0.8)
    EXPECT_DOUBLE_EQ(series.lossPackets[0].value, 0.0);
}

TEST(ItgDec, RttAveragedPerAckWindow) {
    SyntheticLogs logs;
    const QosSeries series = ItgDec::decode(logs.sender, logs.receiver, 0.2);
    ASSERT_FALSE(series.rttSeconds.empty());
    for (const auto& point : series.rttSeconds) EXPECT_NEAR(point.value, 0.1, 1e-9);
}

TEST(ItgDec, EmptyLogsProduceEmptySeries) {
    const QosSeries series = ItgDec::decode(SenderLog{}, ReceiverLog{});
    EXPECT_TRUE(series.bitrateKbps.empty());
    const QosSummary summary = ItgDec::summarize(SenderLog{}, ReceiverLog{});
    EXPECT_EQ(summary.sent, 0u);
}

TEST(ItgDec, SummaryTotals) {
    SyntheticLogs logs;
    const QosSummary summary = ItgDec::summarize(logs.sender, logs.receiver);
    EXPECT_EQ(summary.sent, 10u);
    EXPECT_EQ(summary.received, 8u);
    EXPECT_EQ(summary.lost, 2u);
    EXPECT_NEAR(summary.lossRate, 0.2, 1e-9);
    EXPECT_NEAR(summary.meanOwdSeconds, 0.05, 1e-9);
    EXPECT_NEAR(summary.meanRttSeconds, 0.1, 1e-9);
    EXPECT_NEAR(summary.maxJitterSeconds, 0.0, 1e-9);
}

TEST(ItgDec, WindowSizeRespected) {
    SyntheticLogs logs;
    const QosSeries fine = ItgDec::decode(logs.sender, logs.receiver, 0.1);
    const QosSeries coarse = ItgDec::decode(logs.sender, logs.receiver, 0.5);
    EXPECT_GT(fine.bitrateKbps.size(), coarse.bitrateKbps.size());
    EXPECT_DOUBLE_EQ(fine.windowSeconds, 0.1);
}

TEST(ItgDec, OutOfOrderArrivalsSortedForJitter) {
    SenderLog sender;
    ReceiverLog receiver;
    for (int i = 0; i < 2; ++i) {
        TxRecord tx;
        tx.sequence = std::uint32_t(i);
        tx.payloadBytes = 10;
        tx.txTime = millis(10.0 * i);
        sender.packets.push_back(tx);
    }
    // Log entries in reversed arrival order.
    RxRecord late;
    late.sequence = 1;
    late.payloadBytes = 10;
    late.txTime = millis(10);
    late.rxTime = millis(70);
    RxRecord early;
    early.sequence = 0;
    early.payloadBytes = 10;
    early.txTime = millis(0);
    early.rxTime = millis(50);
    receiver.packets.push_back(late);
    receiver.packets.push_back(early);
    const QosSeries series = ItgDec::decode(sender, receiver, 0.2);
    ASSERT_EQ(series.jitterSeconds.size(), 1u);
    EXPECT_NEAR(series.jitterSeconds[0].value, 0.010, 1e-9);  // |60-50| ms
}

TEST(ItgDec, DuplicateArrivalsCountOnceInSummary) {
    // UDP duplication (or a TCP retransmission the receiver logged
    // twice) must not report received > sent or negative loss: the
    // summary counts first arrivals only. The raw log keeps both
    // records — it is the measurement.
    SyntheticLogs logs;
    RxRecord dup = logs.receiver.packets[1];
    dup.rxTime = dup.rxTime + millis(40);
    logs.receiver.packets.push_back(dup);
    const QosSummary summary = ItgDec::summarize(logs.sender, logs.receiver);
    EXPECT_EQ(summary.sent, 10u);
    EXPECT_EQ(summary.received, 8u);  // 8 unique of 9 arrivals
    EXPECT_EQ(summary.lost, 2u);
    EXPECT_NEAR(summary.meanOwdSeconds, 0.050, 1e-9);  // dup's OWD excluded
}

}  // namespace
}  // namespace onelab::ditg
