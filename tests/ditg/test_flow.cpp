#include "ditg/flow.hpp"

#include <gtest/gtest.h>

namespace onelab::ditg {
namespace {

TEST(ProbeHeader, EncodeDecodeRoundTrip) {
    ProbeHeader header;
    header.flowId = 7;
    header.sequence = 123456;
    header.txTimeNs = 987654321012345;
    header.isAck = true;
    const util::Bytes wire = header.encode(ProbeHeader::kSize);
    ASSERT_EQ(wire.size(), ProbeHeader::kSize);
    const auto decoded = ProbeHeader::decode({wire.data(), wire.size()});
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->flowId, 7);
    EXPECT_EQ(decoded->sequence, 123456u);
    EXPECT_EQ(decoded->txTimeNs, 987654321012345);
    EXPECT_TRUE(decoded->isAck);
}

TEST(ProbeHeader, PadsToRequestedSize) {
    ProbeHeader header;
    const util::Bytes wire = header.encode(1024);
    EXPECT_EQ(wire.size(), 1024u);
    // Padding is zeros (compressible, like D-ITG's default payload).
    for (std::size_t i = ProbeHeader::kSize; i < wire.size(); ++i) EXPECT_EQ(wire[i], 0);
}

TEST(ProbeHeader, RejectsBadMagicAndShortBuffers) {
    util::Bytes wire = ProbeHeader{}.encode(ProbeHeader::kSize);
    wire[0] ^= 0xff;
    EXPECT_FALSE(ProbeHeader::decode({wire.data(), wire.size()}).has_value());
    const util::Bytes tiny(4, 0);
    EXPECT_FALSE(ProbeHeader::decode({tiny.data(), tiny.size()}).has_value());
}

TEST(FlowSpec, VoipG711Is72Kbps) {
    const FlowSpec spec = voipG711Flow();
    EXPECT_NEAR(spec.nominalKbps(), 72.0, 0.01);
    EXPECT_DOUBLE_EQ(spec.idtSeconds->mean(), 0.01);   // 100 pkt/s
    EXPECT_DOUBLE_EQ(spec.payloadBytes->mean(), 90.0);
    EXPECT_DOUBLE_EQ(spec.durationSeconds, 120.0);
}

TEST(FlowSpec, Cbr1MbpsMatchesPaper) {
    const FlowSpec spec = cbr1MbpsFlow();
    // 1024 B at 122 pkt/s (§3.1).
    EXPECT_DOUBLE_EQ(spec.payloadBytes->mean(), 1024.0);
    EXPECT_NEAR(1.0 / spec.idtSeconds->mean(), 122.0, 1e-9);
    EXPECT_NEAR(spec.nominalKbps(), 999.4, 0.1);
}

TEST(FlowSpec, CbrFactory) {
    const FlowSpec spec = cbrFlow(9, 50.0, 200, 30.0, "custom");
    EXPECT_EQ(spec.flowId, 9);
    EXPECT_EQ(spec.name, "custom");
    EXPECT_NEAR(spec.nominalKbps(), 80.0, 1e-9);
    EXPECT_DOUBLE_EQ(spec.durationSeconds, 30.0);
}

TEST(FlowSpec, ApplicationPresets) {
    const FlowSpec g729 = voipG729Flow(3, 30.0);
    EXPECT_NEAR(g729.nominalKbps(), 12.8, 0.01);
    const FlowSpec telnet = telnetFlow(4, 30.0);
    EXPECT_GT(telnet.nominalKbps(), 0.5);
    EXPECT_LT(telnet.nominalKbps(), 5.0);
    const FlowSpec dns = dnsFlow(5, 30.0);
    EXPECT_LT(dns.nominalKbps(), 2.0);
    const FlowSpec gaming = gamingFlow(6, 30.0);
    EXPECT_NEAR(gaming.nominalKbps(), 80.0 * 30.0 * 8.0 / 1000.0, 0.5);
    // All presets respect the probe-header floor.
    EXPECT_GE(telnet.payloadBytes->mean(), double(ProbeHeader::kSize));
}

TEST(FlowSpec, NominalRateUndefinedForCauchy) {
    FlowSpec spec;
    spec.idtSeconds = util::cauchyVariable(0.01, 0.001);
    spec.payloadBytes = util::constantVariable(100);
    EXPECT_DOUBLE_EQ(spec.nominalKbps(), 0.0);
    FlowSpec empty;
    EXPECT_DOUBLE_EQ(empty.nominalKbps(), 0.0);
}

}  // namespace
}  // namespace onelab::ditg
