#include <gtest/gtest.h>

#include "ditg/decoder.hpp"
#include "ditg/receiver.hpp"
#include "ditg/sender.hpp"
#include "net/internet.hpp"

namespace onelab::ditg {
namespace {

using sim::seconds;

/// Sender and receiver hosts joined by a clean wired Internet.
struct SendRecvTest : ::testing::Test {
    SendRecvTest() : internet(sim, util::RandomStream{11}) {
        sender = makeHost("tx", net::Ipv4Address{10, 0, 0, 1});
        receiver = makeHost("rx", net::Ipv4Address{10, 0, 0, 2});
    }

    net::NetworkStack* makeHost(const std::string& name, net::Ipv4Address addr) {
        hosts.push_back(std::make_unique<net::NetworkStack>(sim, name));
        net::NetworkStack& host = *hosts.back();
        net::Interface& eth = host.addInterface("eth0");
        eth.setAddress(addr);
        eth.setUp(true);
        internet.attach(eth, net::AccessLink{});
        host.router().table(net::PolicyRouter::kMainTable)
            .addRoute({net::Prefix::any(), "eth0", std::nullopt, 0});
        return &host;
    }

    sim::Simulator sim;
    net::Internet internet;
    std::vector<std::unique_ptr<net::NetworkStack>> hosts;
    net::NetworkStack* sender = nullptr;
    net::NetworkStack* receiver = nullptr;
};

TEST_F(SendRecvTest, CbrFlowDeliversAllPackets) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket = sender->openUdp(0).value();
    ItgSend send{sim, *txSocket, cbrFlow(1, 100.0, 200, 2.0), net::Ipv4Address{10, 0, 0, 2},
                 9001, util::RandomStream{1}};
    bool completed = false;
    send.start([&] { completed = true; });
    sim.runUntil(seconds(4.0));

    EXPECT_TRUE(completed);
    EXPECT_TRUE(send.finished());
    // 2 s at 100 pkt/s: the first packet goes at t=0, the last before 2 s.
    EXPECT_EQ(send.packetsSent(), 200u);
    EXPECT_EQ(send.sendErrors(), 0u);
    EXPECT_EQ(recv.packetsReceived(), 200u);
    EXPECT_EQ(recv.log(1).packets.size(), 200u);
    EXPECT_EQ(recv.acksSent(), 200u);
    EXPECT_EQ(send.log().rtts.size(), 200u);
}

TEST_F(SendRecvTest, PayloadSizesHonoured) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket = sender->openUdp(0).value();
    ItgSend send{sim, *txSocket, cbrFlow(1, 50.0, 512, 1.0), net::Ipv4Address{10, 0, 0, 2},
                 9001, util::RandomStream{1}};
    send.start();
    sim.runUntil(seconds(2.0));
    for (const RxRecord& rx : recv.log(1).packets) EXPECT_EQ(rx.payloadBytes, 512u);
}

TEST_F(SendRecvTest, RttMeasuredViaAcks) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket = sender->openUdp(0).value();
    ItgSend send{sim, *txSocket, cbrFlow(1, 20.0, 100, 1.0), net::Ipv4Address{10, 0, 0, 2},
                 9001, util::RandomStream{1}};
    send.start();
    sim.runUntil(seconds(3.0));
    ASSERT_FALSE(send.log().rtts.empty());
    for (const RttRecord& rtt : send.log().rtts) {
        // Round trip over two ~5.2 ms access paths.
        EXPECT_GT(sim::toMillis(rtt.rtt), 5.0);
        EXPECT_LT(sim::toMillis(rtt.rtt), 50.0);
    }
}

TEST_F(SendRecvTest, ReceiverWithoutAcksSendsNone) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket, /*sendAcks=*/false};
    auto txSocket = sender->openUdp(0).value();
    ItgSend send{sim, *txSocket, cbrFlow(1, 50.0, 100, 1.0), net::Ipv4Address{10, 0, 0, 2},
                 9001, util::RandomStream{1}};
    send.start();
    sim.runUntil(seconds(3.0));
    EXPECT_EQ(recv.acksSent(), 0u);
    EXPECT_TRUE(send.log().rtts.empty());
    EXPECT_GT(recv.packetsReceived(), 0u);
}

TEST_F(SendRecvTest, VariablePacketSizesAndIdt) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket = sender->openUdp(0).value();
    FlowSpec spec;
    spec.name = "exp-uniform";
    spec.flowId = 4;
    spec.idtSeconds = util::exponentialVariable(0.01);
    spec.payloadBytes = util::uniformVariable(64, 512);
    spec.durationSeconds = 3.0;
    ItgSend send{sim, *txSocket, std::move(spec), net::Ipv4Address{10, 0, 0, 2}, 9001,
                 util::RandomStream{5}};
    send.start();
    sim.runUntil(seconds(5.0));
    // Roughly 300 packets expected; allow generous slack.
    EXPECT_GT(send.packetsSent(), 150u);
    EXPECT_LT(send.packetsSent(), 600u);
    // Sizes vary within bounds.
    std::size_t minSize = 10000, maxSize = 0;
    for (const RxRecord& rx : recv.log(4).packets) {
        minSize = std::min(minSize, rx.payloadBytes);
        maxSize = std::max(maxSize, rx.payloadBytes);
    }
    EXPECT_GE(minSize, 17u);
    EXPECT_LE(maxSize, 512u);
    EXPECT_NE(minSize, maxSize);
}

TEST_F(SendRecvTest, TwoFlowsKeepSeparateLogs) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket1 = sender->openUdp(0).value();
    auto txSocket2 = sender->openUdp(0).value();
    ItgSend flow1{sim, *txSocket1, cbrFlow(1, 50.0, 100, 1.0), net::Ipv4Address{10, 0, 0, 2},
                  9001, util::RandomStream{1}};
    ItgSend flow2{sim, *txSocket2, cbrFlow(2, 25.0, 300, 1.0), net::Ipv4Address{10, 0, 0, 2},
                  9001, util::RandomStream{2}};
    flow1.start();
    flow2.start();
    sim.runUntil(seconds(3.0));
    EXPECT_EQ(recv.log(1).packets.size(), flow1.packetsSent());
    EXPECT_EQ(recv.log(2).packets.size(), flow2.packetsSent());
    for (const RxRecord& rx : recv.log(2).packets) EXPECT_EQ(rx.payloadBytes, 300u);
}

TEST_F(SendRecvTest, StartOffsetDelaysFlow) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket = sender->openUdp(0).value();
    FlowSpec spec = cbrFlow(1, 100.0, 100, 1.0);
    spec.startOffsetSeconds = 2.0;
    ItgSend send{sim, *txSocket, std::move(spec), net::Ipv4Address{10, 0, 0, 2}, 9001,
                 util::RandomStream{1}};
    send.start();
    sim.runUntil(seconds(1.5));
    EXPECT_EQ(send.packetsSent(), 0u);
    sim.runUntil(seconds(5.0));
    EXPECT_GT(send.packetsSent(), 0u);
    ASSERT_FALSE(send.log().packets.empty());
    EXPECT_GE(send.log().packets.front().txTime, seconds(2.0));
}

TEST_F(SendRecvTest, EndToEndDecodeMatchesExpectations) {
    auto rxSocket = receiver->openUdp(0, 9001).value();
    ItgRecv recv{*rxSocket};
    auto txSocket = sender->openUdp(0).value();
    // 400 kbps CBR over a clean 100 Mbps path: all delivered.
    ItgSend send{sim, *txSocket, cbrFlow(1, 100.0, 500, 4.0), net::Ipv4Address{10, 0, 0, 2},
                 9001, util::RandomStream{1}};
    send.start();
    sim.runUntil(seconds(6.0));
    const QosSummary summary = ItgDec::summarize(send.log(), recv.log(1));
    EXPECT_EQ(summary.lost, 0u);
    EXPECT_NEAR(summary.meanBitrateKbps, 400.0, 40.0);
    EXPECT_LT(summary.meanJitterSeconds, 0.001);
}

}  // namespace
}  // namespace onelab::ditg
