#include <gtest/gtest.h>

#include "ditg/decoder.hpp"
#include "ditg/tcp_flow.hpp"
#include "net/internet.hpp"

namespace onelab::ditg {
namespace {

using sim::seconds;

/// Sender and receiver hosts joined by a clean wired Internet, each
/// with its own TcpHost (as NodeOs::tcp() would provide on a node).
struct TcpSendRecvTest : ::testing::Test {
    TcpSendRecvTest() : internet(sim, util::RandomStream{11}) {
        sender = makeHost("tx", net::Ipv4Address{10, 0, 0, 1});
        receiver = makeHost("rx", net::Ipv4Address{10, 0, 0, 2});
        senderTcp = std::make_unique<net::TcpHost>(sim, *sender, util::RandomStream{21});
        receiverTcp = std::make_unique<net::TcpHost>(sim, *receiver, util::RandomStream{22});
    }

    net::NetworkStack* makeHost(const std::string& name, net::Ipv4Address addr) {
        hosts.push_back(std::make_unique<net::NetworkStack>(sim, name));
        net::NetworkStack& host = *hosts.back();
        net::Interface& eth = host.addInterface("eth0");
        eth.setAddress(addr);
        eth.setUp(true);
        internet.attach(eth, net::AccessLink{});
        host.router().table(net::PolicyRouter::kMainTable)
            .addRoute({net::Prefix::any(), "eth0", std::nullopt, 0});
        return &host;
    }

    sim::Simulator sim;
    net::Internet internet;
    std::vector<std::unique_ptr<net::NetworkStack>> hosts;
    net::NetworkStack* sender = nullptr;
    net::NetworkStack* receiver = nullptr;
    std::unique_ptr<net::TcpHost> senderTcp;
    std::unique_ptr<net::TcpHost> receiverTcp;
};

TEST(ProbeStreamTest, ReassemblesProbesAcrossArbitraryChunking) {
    // Three framed probes concatenated, then fed one byte at a time —
    // the worst chunking TCP can legally produce.
    util::Bytes wire;
    std::vector<util::Bytes> probes;
    for (std::uint32_t i = 0; i < 3; ++i) {
        ProbeHeader header;
        header.flowId = 9;
        header.sequence = i;
        header.txTimeNs = 1000 * i;
        util::Bytes framed = ProbeStream::frame(header.encode(ProbeHeader::kSize + i));
        wire.insert(wire.end(), framed.begin(), framed.end());
    }
    ProbeStream stream;
    std::vector<std::uint32_t> sequences;
    std::vector<std::size_t> sizes;
    for (const std::uint8_t byte : wire)
        stream.feed({&byte, 1}, [&](util::ByteView probe) {
            const auto header = ProbeHeader::decode(probe);
            ASSERT_TRUE(header.has_value());
            sequences.push_back(header->sequence);
            sizes.push_back(probe.size());
        });
    EXPECT_EQ(sequences, (std::vector<std::uint32_t>{0, 1, 2}));
    EXPECT_EQ(sizes, (std::vector<std::size_t>{ProbeHeader::kSize, ProbeHeader::kSize + 1,
                                               ProbeHeader::kSize + 2}));
}

TEST_F(TcpSendRecvTest, CbrFlowDeliversEveryProbe) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(1, 100.0, 200, 2.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{1}};
    bool completed = false;
    send.start([&] { completed = true; });
    sim.runUntil(seconds(8.0));

    EXPECT_TRUE(completed);
    EXPECT_TRUE(send.finished());
    EXPECT_EQ(send.probesSent(), 200u);
    EXPECT_EQ(send.sendErrors(), 0u);
    // TCP never loses probes on a clean path: exactly-once, in order.
    EXPECT_EQ(recv.probesReceived(), 200u);
    ASSERT_EQ(recv.log(1).packets.size(), 200u);
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_EQ(recv.log(1).packets[i].sequence, std::uint32_t(i));
    EXPECT_EQ(recv.acksSent(), 200u);
    EXPECT_EQ(send.log().rtts.size(), 200u);
    EXPECT_EQ(recv.connectionsAccepted(), 1u);
}

TEST_F(TcpSendRecvTest, LogsCarryTheTcpTransportTag) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(3, 50.0, 128, 1.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{2}};
    send.start();
    sim.runUntil(seconds(5.0));
    EXPECT_EQ(send.log().transport, FlowTransport::tcp);
    EXPECT_EQ(send.spec().transport, FlowTransport::tcp);
    EXPECT_EQ(recv.log(3).transport, FlowTransport::tcp);
    const QosSummary summary = ItgDec::summarize(send.log(), recv.log(3));
    EXPECT_EQ(summary.lost, 0u);
}

TEST_F(TcpSendRecvTest, ConnectionClosesAfterFlowEnds) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(1, 50.0, 200, 1.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{3}};
    send.start();
    sim.runUntil(seconds(10.0));
    ASSERT_NE(send.connection(), nullptr);
    // The sender's close handshake has fully run; after TIME-WAIT both
    // hosts can reap, leaving clean connection tables for a next wave.
    EXPECT_EQ(send.connection()->state(), net::TcpState::closed);
    EXPECT_EQ(senderTcp->reapClosed(), 1u);
    EXPECT_EQ(receiverTcp->reapClosed(), 1u);
    EXPECT_EQ(senderTcp->connectionCount(), 0u);
    EXPECT_EQ(receiverTcp->connectionCount(), 0u);
}

TEST_F(TcpSendRecvTest, ReceiverWithoutAcksSendsNone) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002, /*sendAcks=*/false};
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(1, 50.0, 100, 1.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{4}};
    send.start();
    sim.runUntil(seconds(5.0));
    EXPECT_EQ(recv.acksSent(), 0u);
    EXPECT_TRUE(send.log().rtts.empty());
    EXPECT_GT(recv.probesReceived(), 0u);
}

TEST_F(TcpSendRecvTest, TwoFlowsOnOnePortKeepSeparateLogs) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    ItgTcpSend flow1{sim,
                     *senderTcp,
                     cbrFlow(1, 50.0, 100, 1.0),
                     net::Ipv4Address{10, 0, 0, 2},
                     9002,
                     util::RandomStream{1}};
    ItgTcpSend flow2{sim,
                     *senderTcp,
                     cbrFlow(2, 25.0, 300, 1.0),
                     net::Ipv4Address{10, 0, 0, 2},
                     9002,
                     util::RandomStream{2}};
    flow1.start();
    flow2.start();
    sim.runUntil(seconds(6.0));
    EXPECT_EQ(recv.connectionsAccepted(), 2u);
    EXPECT_EQ(recv.log(1).packets.size(), flow1.probesSent());
    EXPECT_EQ(recv.log(2).packets.size(), flow2.probesSent());
    for (const RxRecord& rx : recv.log(2).packets) EXPECT_EQ(rx.payloadBytes, 300u);
}

TEST_F(TcpSendRecvTest, ConnectFailureCountsSendErrorsNotProbes) {
    // Nobody listens on 9002: the SYN draws an RST and the flow never
    // establishes. The sender reports errors rather than silently
    // logging probes that never hit the wire.
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(1, 50.0, 100, 1.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{5}};
    bool completed = false;
    send.start([&] { completed = true; });
    sim.runUntil(seconds(10.0));
    EXPECT_EQ(send.probesSent(), 0u);
    EXPECT_TRUE(send.log().packets.empty());
}

TEST_F(TcpSendRecvTest, EndToEndDecodeMatchesExpectations) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    // 400 kbps CBR over a clean 100 Mbps path: all delivered, tiny OWD.
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(1, 100.0, 500, 4.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{1}};
    send.start();
    sim.runUntil(seconds(10.0));
    const QosSummary summary = ItgDec::summarize(send.log(), recv.log(1));
    EXPECT_EQ(summary.lost, 0u);
    EXPECT_NEAR(summary.meanBitrateKbps, 400.0, 40.0);
    EXPECT_LT(summary.meanJitterSeconds, 0.001);
}

// --- lifetime: flows and a dead receiver/sender must not dangle ---

TEST_F(TcpSendRecvTest, ReceiverDestroyedMidFlowAbortsItsConnections) {
    // A receiver torn down while a peer is still streaming (the chaos
    // soak does this when a wave ends under injected faults) must
    // leave nothing pointing back into freed state: late segments
    // used to land in the destroyed receiver's ProbeStream.
    auto recv = std::make_unique<ItgTcpRecv>(sim, *receiverTcp, 9002);
    ItgTcpSend send{sim,
                    *senderTcp,
                    cbrFlow(1, 100.0, 200, 5.0),
                    net::Ipv4Address{10, 0, 0, 2},
                    9002,
                    util::RandomStream{5}};
    send.start();
    sim.runUntil(seconds(1.0));  // established, probes flowing
    ASSERT_EQ(recv->connectionsAccepted(), 1u);
    recv.reset();
    // The sender keeps emitting into the teardown; the abort's RST
    // must finish its connection instead of feeding freed memory.
    sim.runUntil(seconds(10.0));
    ASSERT_NE(send.connection(), nullptr);
    EXPECT_EQ(send.connection()->state(), net::TcpState::closed);
    EXPECT_EQ(receiverTcp->reapClosed(), 1u);
    EXPECT_EQ(receiverTcp->connectionCount(), 0u);
}

TEST_F(TcpSendRecvTest, SenderDestroyedMidFlowLeavesNoLiveTimers) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    auto send = std::make_unique<ItgTcpSend>(sim, *senderTcp,
                                             cbrFlow(2, 100.0, 200, 5.0),
                                             net::Ipv4Address{10, 0, 0, 2}, 9002,
                                             util::RandomStream{6});
    send->start();
    sim.runUntil(seconds(1.0));  // mid-flow: probe timer pending
    send.reset();
    // The pending emit timer and the connection's callbacks all fire
    // against the liveness token, not the freed sender.
    sim.runUntil(seconds(10.0));
    SUCCEED();
}

TEST_F(TcpSendRecvTest, SenderDestroyedBeforeConnectEstablishes) {
    ItgTcpRecv recv{sim, *receiverTcp, 9002};
    auto send = std::make_unique<ItgTcpSend>(sim, *senderTcp,
                                             cbrFlow(3, 100.0, 200, 5.0),
                                             net::Ipv4Address{10, 0, 0, 2}, 9002,
                                             util::RandomStream{7});
    send->start();
    send.reset();  // SYN in flight; onConnected fires after death
    sim.runUntil(seconds(10.0));
    SUCCEED();
}

}  // namespace
}  // namespace onelab::ditg
