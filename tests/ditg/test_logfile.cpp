#include "ditg/logfile.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "ditg/decoder.hpp"

namespace onelab::ditg {
namespace {

SenderLog sampleSenderLog() {
    SenderLog log;
    for (int i = 0; i < 5; ++i) {
        TxRecord tx;
        tx.sequence = std::uint32_t(i);
        tx.payloadBytes = 90 + std::size_t(i);
        tx.txTime = sim::millis(10.0 * i);
        tx.sendFailed = i == 3;
        log.packets.push_back(tx);
    }
    log.rtts.push_back(RttRecord{2, sim::millis(20), sim::millis(150)});
    return log;
}

ReceiverLog sampleReceiverLog() {
    ReceiverLog log;
    for (int i = 0; i < 4; ++i) {
        RxRecord rx;
        rx.flowId = 7;
        rx.sequence = std::uint32_t(i);
        rx.payloadBytes = 90;
        rx.txTime = sim::millis(10.0 * i);
        rx.rxTime = rx.txTime + sim::millis(55);
        log.packets.push_back(rx);
    }
    return log;
}

TEST(LogFile, SenderRoundTrip) {
    const SenderLog original = sampleSenderLog();
    const util::Bytes blob = logfile::encodeSenderLog(original);
    const auto decoded = logfile::decodeSenderLog({blob.data(), blob.size()});
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().packets.size(), 5u);
    EXPECT_EQ(decoded.value().packets[3].sendFailed, true);
    EXPECT_EQ(decoded.value().packets[4].payloadBytes, 94u);
    EXPECT_EQ(decoded.value().packets[2].txTime, sim::millis(20));
    ASSERT_EQ(decoded.value().rtts.size(), 1u);
    EXPECT_EQ(decoded.value().rtts[0].rtt, sim::millis(150));
}

TEST(LogFile, ReceiverRoundTrip) {
    const ReceiverLog original = sampleReceiverLog();
    const util::Bytes blob = logfile::encodeReceiverLog(original);
    const auto decoded = logfile::decodeReceiverLog({blob.data(), blob.size()});
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().packets.size(), 4u);
    EXPECT_EQ(decoded.value().packets[0].flowId, 7);
    EXPECT_EQ(decoded.value().packets[3].rxTime, sim::millis(85));
}

TEST(LogFile, TransportTagRoundTrips) {
    SenderLog sender = sampleSenderLog();
    sender.transport = FlowTransport::tcp;
    const util::Bytes senderBlob = logfile::encodeSenderLog(sender);
    const auto senderBack = logfile::decodeSenderLog({senderBlob.data(), senderBlob.size()});
    ASSERT_TRUE(senderBack.ok());
    EXPECT_EQ(senderBack.value().transport, FlowTransport::tcp);

    ReceiverLog receiver = sampleReceiverLog();
    receiver.transport = FlowTransport::tcp;
    const util::Bytes receiverBlob = logfile::encodeReceiverLog(receiver);
    const auto receiverBack =
        logfile::decodeReceiverLog({receiverBlob.data(), receiverBlob.size()});
    ASSERT_TRUE(receiverBack.ok());
    EXPECT_EQ(receiverBack.value().transport, FlowTransport::tcp);
}

TEST(LogFile, Version1FilesStillDecodeAsUdp) {
    // A v1 file is today's layout minus the transport byte, with the
    // version byte saying 1. Old logs keep decoding — as UDP.
    util::Bytes v2 = logfile::encodeSenderLog(sampleSenderLog());
    util::Bytes v1{v2.begin(), v2.end()};
    v1[4] = 1;                   // version byte
    v1.erase(v1.begin() + 6);    // drop the transport byte after kind
    const auto decoded = logfile::decodeSenderLog({v1.data(), v1.size()});
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().transport, FlowTransport::udp);
    EXPECT_EQ(decoded.value().packets.size(), 5u);
    EXPECT_EQ(decoded.value().rtts.size(), 1u);
}

TEST(LogFile, UnknownTransportRejected) {
    util::Bytes blob = logfile::encodeSenderLog(sampleSenderLog());
    blob[6] = 7;  // transport byte: no such FlowTransport
    EXPECT_FALSE(logfile::decodeSenderLog({blob.data(), blob.size()}).ok());
}

TEST(LogFile, KindMismatchRejected) {
    const util::Bytes sender = logfile::encodeSenderLog(sampleSenderLog());
    EXPECT_FALSE(logfile::decodeReceiverLog({sender.data(), sender.size()}).ok());
    const util::Bytes receiver = logfile::encodeReceiverLog(sampleReceiverLog());
    EXPECT_FALSE(logfile::decodeSenderLog({receiver.data(), receiver.size()}).ok());
}

TEST(LogFile, GarbageRejected) {
    const util::Bytes junk{'N', 'O', 'P', 'E', 1, 1};
    EXPECT_FALSE(logfile::decodeSenderLog({junk.data(), junk.size()}).ok());
    EXPECT_FALSE(logfile::decodeSenderLog({}).ok());
}

TEST(LogFile, TruncationRejected) {
    util::Bytes blob = logfile::encodeSenderLog(sampleSenderLog());
    blob.resize(blob.size() - 4);
    EXPECT_FALSE(logfile::decodeSenderLog({blob.data(), blob.size()}).ok());
}

TEST(LogFile, FileRoundTripAndDecode) {
    // The §3.1 workflow: write logs on the nodes, retrieve them, run
    // ITGDec on the files.
    const std::string senderPath = "/tmp/onelab_umts_test_sender.itg";
    const std::string receiverPath = "/tmp/onelab_umts_test_receiver.itg";
    ASSERT_TRUE(logfile::writeFile(senderPath, [&] {
                    static util::Bytes blob = logfile::encodeSenderLog(sampleSenderLog());
                    return util::ByteView{blob.data(), blob.size()};
                }()).ok());
    const util::Bytes receiverBlob = logfile::encodeReceiverLog(sampleReceiverLog());
    ASSERT_TRUE(
        logfile::writeFile(receiverPath, {receiverBlob.data(), receiverBlob.size()}).ok());

    const auto senderBlob = logfile::readFile(senderPath);
    ASSERT_TRUE(senderBlob.ok());
    const auto sender = logfile::decodeSenderLog(
        {senderBlob.value().data(), senderBlob.value().size()});
    const auto receiverRead = logfile::readFile(receiverPath);
    ASSERT_TRUE(receiverRead.ok());
    const auto receiver = logfile::decodeReceiverLog(
        {receiverRead.value().data(), receiverRead.value().size()});
    ASSERT_TRUE(sender.ok());
    ASSERT_TRUE(receiver.ok());

    const QosSummary summary = ItgDec::summarize(sender.value(), receiver.value());
    EXPECT_EQ(summary.sent, 5u);
    EXPECT_EQ(summary.received, 4u);
    EXPECT_NEAR(summary.meanOwdSeconds, 0.055, 1e-9);

    std::remove(senderPath.c_str());
    std::remove(receiverPath.c_str());
}

TEST(LogFile, ReadMissingFileFails) {
    EXPECT_FALSE(logfile::readFile("/tmp/definitely_missing_itg_log_4711.itg").ok());
}

TEST(Decoder, OwdSeriesMatchesSyntheticDelay) {
    const QosSeries series =
        ItgDec::decode(sampleSenderLog(), sampleReceiverLog(), 0.2);
    ASSERT_FALSE(series.owdSeconds.empty());
    for (const util::SeriesPoint& point : series.owdSeconds)
        EXPECT_NEAR(point.value, 0.055, 1e-9);
}

}  // namespace
}  // namespace onelab::ditg
