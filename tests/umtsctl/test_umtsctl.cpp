#include <gtest/gtest.h>

#include "obs/registry.hpp"
#include "scenario/testbed.hpp"
#include "umtsctl/frontend.hpp"

namespace onelab::umtsctl {
namespace {

using scenario::Testbed;
using scenario::TestbedConfig;

struct UmtsctlTest : ::testing::Test {
    UmtsctlTest() : tb(TestbedConfig{}) {}
    explicit UmtsctlTest(TestbedConfig config) : tb(std::move(config)) {}

    /// Synchronously invoke the umts vsys script from a slice.
    pl::VsysResult invoke(pl::Slice& slice, const std::vector<std::string>& args,
                          double waitSeconds = 30.0) {
        std::optional<util::Result<pl::VsysResult>> outcome;
        tb.napoli().vsys().invoke(slice, "umts", args,
                                  [&](util::Result<pl::VsysResult> r) { outcome = std::move(r); });
        const sim::SimTime deadline = tb.sim().now() + sim::seconds(waitSeconds);
        while (!outcome && tb.sim().now() < deadline)
            tb.sim().runUntil(tb.sim().now() + sim::millis(50));
        if (!outcome) return pl::VsysResult{-1, {"timeout"}};
        if (!outcome->ok()) return pl::VsysResult{-2, {outcome->error().message}};
        return outcome->value();
    }

    static bool hasLine(const pl::VsysResult& result, const std::string& needle) {
        for (const std::string& line : result.output)
            if (line.find(needle) != std::string::npos) return true;
        return false;
    }

    Testbed tb;
};

TEST_F(UmtsctlTest, StartConnectsAndReportsAddress) {
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok()) << started.error().message;
    EXPECT_TRUE(started.value().connected);
    EXPECT_TRUE(tb.operatorNetwork().profile().subscriberPool.contains(
        started.value().address));
    EXPECT_EQ(started.value().operatorName, "IT Mobile");
    EXPECT_GT(started.value().signalQuality, 0);
    // ppp0 exists on the node, with the negotiated address.
    net::Interface* ppp = tb.napoli().stack().findInterface("ppp0");
    ASSERT_NE(ppp, nullptr);
    EXPECT_TRUE(ppp->isUp());
    EXPECT_EQ(ppp->address(), started.value().address);
}

TEST_F(UmtsctlTest, StartFailureReleasesLock) {
    // No coverage: registration times out, the lock must come free.
    tb.operatorNetwork().setCoverage(false);
    const auto result = tb.startUmts(sim::seconds(60.0));
    ASSERT_FALSE(result.ok());
    EXPECT_FALSE(tb.backend().state().locked);
    EXPECT_EQ(tb.napoli().stack().findInterface("ppp0"), nullptr);
    // Coverage returns: the same slice can start successfully.
    tb.operatorNetwork().setCoverage(true);
    EXPECT_TRUE(tb.startUmts().ok());
}

TEST_F(UmtsctlTest, ConcurrentStartRaceSecondSliceLosesImmediately) {
    // The second slice's start must fail fast with EBUSY while the
    // first is still registering/dialing (check-and-lock semantics).
    tb.napoli().vsys().allow("umts", tb.otherSlice().name);
    std::optional<pl::VsysResult> first;
    std::optional<pl::VsysResult> second;
    tb.napoli().vsys().invoke(tb.umtsSlice(), "umts", {"start"},
                              [&](util::Result<pl::VsysResult> r) { first = r.value(); });
    tb.sim().runUntil(tb.sim().now() + sim::millis(500));  // mid-registration
    tb.napoli().vsys().invoke(tb.otherSlice(), "umts", {"start"},
                              [&](util::Result<pl::VsysResult> r) { second = r.value(); });
    // The loser is answered immediately, the winner keeps dialing.
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->exitCode, exit_code::busy);
    EXPECT_FALSE(first.has_value());
    tb.sim().runUntil(tb.sim().now() + sim::seconds(30.0));
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->exitCode, exit_code::ok);
}

TEST_F(UmtsctlTest, WrongPinConfigurationFailsCleanly) {
    // The site operator misconfigured the backend's PIN: comgt's
    // AT+CPIN attempt is rejected, start fails, nothing stays locked.
    TestbedConfig config;
    config.simPin = "1234";
    config.backendPinOverride = "9999";
    Testbed broken{config};
    const auto result = broken.startUmts(sim::seconds(30.0));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("registration"), std::string::npos);
    EXPECT_FALSE(broken.backend().state().locked);
    EXPECT_EQ(broken.napoli().stack().findInterface("ppp0"), nullptr);
    EXPECT_EQ(broken.operatorNetwork().activeSessions(), 0u);
}

TEST_F(UmtsctlTest, StartLoadsPppAndDriverModules) {
    pl::KernelModuleRegistry* modules =
        tb.napoli().modules(tb.napoli().rootContext()).value();
    EXPECT_FALSE(modules->isLoaded("ppp_async"));
    ASSERT_TRUE(tb.startUmts().ok());
    EXPECT_TRUE(modules->isLoaded("ppp_generic"));
    EXPECT_TRUE(modules->isLoaded("ppp_async"));
    EXPECT_TRUE(modules->isLoaded("ppp_deflate"));
    EXPECT_TRUE(modules->isLoaded("pl2303"));  // huawei card default
    EXPECT_TRUE(modules->isLoaded("usbserial"));
}

TEST_F(UmtsctlTest, StartFailsWhenDriverCannotLoad) {
    // The vanilla nozomi refuses the PlanetLab kernel (§2.3); without
    // the OneLab patch the whole start aborts.
    TestbedConfig config;
    config.extraRequiredModules = {"nozomi"};
    Testbed broken{config};
    const auto result = broken.startUmts(sim::seconds(10.0));
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().message.find("modprobe"), std::string::npos);
    EXPECT_FALSE(broken.backend().state().locked);
}

TEST_F(UmtsctlTest, StartInstallsExactRuleSet) {
    ASSERT_TRUE(tb.startUmts().ok());
    net::NetworkStack& stack = tb.napoli().stack();
    // One MARK rule in mangle/OUTPUT keyed on the slice xid.
    const auto mangle = stack.netfilter().listChain(net::ChainHook::mangle_output);
    ASSERT_EQ(mangle.size(), 1u);
    EXPECT_EQ(mangle[0].second.match.sliceXid, tb.umtsSlice().xid);
    EXPECT_EQ(mangle[0].second.target.kind, net::FilterTarget::Kind::mark);
    // One negated-slice DROP rule on ppp0 in filter/OUTPUT.
    const auto filter = stack.netfilter().listChain(net::ChainHook::filter_output);
    ASSERT_EQ(filter.size(), 1u);
    EXPECT_TRUE(filter[0].second.match.negateSlice);
    EXPECT_EQ(filter[0].second.match.outInterface, "ppp0");
    // Table 100 holds exactly the default-via-ppp0 route.
    const net::RoutingTable* table = stack.router().findTable(100);
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->routes().size(), 1u);
    EXPECT_EQ(table->routes()[0].oifName, "ppp0");
    EXPECT_EQ(table->routes()[0].dst, net::Prefix::any());
    // The from-<ppp0-addr> rule plus the default main rule.
    EXPECT_EQ(stack.router().rules().size(), 2u);
}

TEST_F(UmtsctlTest, SecondSliceStartIsLockedOut) {
    ASSERT_TRUE(tb.startUmts().ok());
    // Allow the other slice in the ACL, then try to start: EBUSY.
    tb.napoli().vsys().allow("umts", tb.otherSlice().name);
    const auto result = invoke(tb.otherSlice(), {"start"});
    EXPECT_EQ(result.exitCode, exit_code::busy);
    EXPECT_TRUE(hasLine(result, "locked by slice"));
}

TEST_F(UmtsctlTest, StartWhileAlreadyStartedIsIdempotent) {
    ASSERT_TRUE(tb.startUmts().ok());
    const auto again = invoke(tb.umtsSlice(), {"start"});
    EXPECT_EQ(again.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(again, "already-connected"));
}

TEST_F(UmtsctlTest, SliceNotInAclIsRefusedByVsys) {
    const auto result = invoke(tb.otherSlice(), {"start"});
    EXPECT_EQ(result.exitCode, -2);  // vsys-level permission denial
}

TEST_F(UmtsctlTest, StatusReportsState) {
    auto status = invoke(tb.umtsSlice(), {"status"});
    EXPECT_EQ(status.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(status, "locked=0"));
    ASSERT_TRUE(tb.startUmts().ok());
    status = invoke(tb.umtsSlice(), {"status"});
    EXPECT_TRUE(hasLine(status, "locked=1"));
    EXPECT_TRUE(hasLine(status, "owner=" + tb.umtsSlice().name));
    EXPECT_TRUE(hasLine(status, "connected=1"));
    EXPECT_TRUE(hasLine(status, "operator=IT Mobile"));
}

TEST_F(UmtsctlTest, AddAndDelDestination) {
    ASSERT_TRUE(tb.startUmts().ok());
    const auto added = invoke(tb.umtsSlice(), {"add", "destination", "138.96.250.20/32"});
    EXPECT_EQ(added.exitCode, exit_code::ok);
    EXPECT_EQ(tb.napoli().stack().router().rules().size(), 3u);

    // Duplicates rejected.
    const auto dup = invoke(tb.umtsSlice(), {"add", "destination", "138.96.250.20/32"});
    EXPECT_EQ(dup.exitCode, exit_code::inval);

    const auto status = invoke(tb.umtsSlice(), {"status"});
    EXPECT_TRUE(hasLine(status, "destination=138.96.250.20/32"));

    const auto deleted = invoke(tb.umtsSlice(), {"del", "destination", "138.96.250.20/32"});
    EXPECT_EQ(deleted.exitCode, exit_code::ok);
    EXPECT_EQ(tb.napoli().stack().router().rules().size(), 2u);

    const auto missing = invoke(tb.umtsSlice(), {"del", "destination", "138.96.250.20/32"});
    EXPECT_EQ(missing.exitCode, exit_code::noent);
}

TEST_F(UmtsctlTest, DestinationRequiresOwnership) {
    ASSERT_TRUE(tb.startUmts().ok());
    tb.napoli().vsys().allow("umts", tb.otherSlice().name);
    const auto result = invoke(tb.otherSlice(), {"add", "destination", "1.2.3.4/32"});
    EXPECT_EQ(result.exitCode, exit_code::perm);
}

TEST_F(UmtsctlTest, BadDestinationRejected) {
    ASSERT_TRUE(tb.startUmts().ok());
    EXPECT_EQ(invoke(tb.umtsSlice(), {"add", "destination", "not-an-address"}).exitCode,
              exit_code::inval);
    EXPECT_EQ(invoke(tb.umtsSlice(), {"add", "destination", "10.0.0.0/99"}).exitCode,
              exit_code::inval);
}

TEST_F(UmtsctlTest, StatsVerbDumpsLiveRegistry) {
    ASSERT_TRUE(tb.startUmts().ok());
    const auto stats = invoke(tb.umtsSlice(), {"stats"});
    EXPECT_EQ(stats.exitCode, exit_code::ok);
    // Counters registered at construction across the layers show up,
    // tagged with their kind; the AT dialogue has run by now.
    EXPECT_TRUE(hasLine(stats, "modem.at.commands=counter:"));
    EXPECT_TRUE(hasLine(stats, "umts.bearer.222880000000001.upgrades=counter:"));
    bool atNonZero = false;
    for (const std::string& line : stats.output)
        if (line.find("modem.at.commands=counter:0") == std::string::npos &&
            line.find("modem.at.commands=counter:") != std::string::npos)
            atNonZero = true;
    EXPECT_TRUE(atNonZero);
}

TEST_F(UmtsctlTest, FrontendStatsRendersTable) {
    ASSERT_TRUE(tb.startUmts().ok());
    UmtsFrontend frontend{tb.napoli(), tb.umtsSlice()};
    std::optional<util::Result<std::string>> rendered;
    frontend.stats([&](util::Result<std::string> r) { rendered = std::move(r); });
    tb.sim().runUntil(tb.sim().now() + sim::seconds(1.0));
    ASSERT_TRUE(rendered.has_value());
    ASSERT_TRUE(rendered->ok()) << rendered->error().message;
    const std::string& table = rendered->value();
    EXPECT_NE(table.find("metric"), std::string::npos);
    EXPECT_NE(table.find("type"), std::string::npos);
    EXPECT_NE(table.find("modem.at.commands"), std::string::npos);
    EXPECT_NE(table.find("counter"), std::string::npos);
}

// --- stats ACL: per-session scoping at the FIFO trust boundary ---

TEST_F(UmtsctlTest, ScopedStatsHidesOtherSessionsBearerFamilies) {
    ASSERT_TRUE(tb.startUmts().ok());
    // A family belonging to some other session's IMSI (as would exist
    // after this node served a different subscriber, or on a shared
    // registry): the scoped dump must not leak it.
    obs::Registry::instance().counter("umts.bearer.999880000000099.upgrades").inc();
    const auto stats = invoke(tb.umtsSlice(), {"stats"});
    EXPECT_EQ(stats.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(stats, "umts.bearer.222880000000001.upgrades=counter:"));
    EXPECT_FALSE(hasLine(stats, "umts.bearer.999880000000099"));
    // Node-wide families (and the non-digit legacy aggregates) are not
    // per-session and stay visible.
    EXPECT_TRUE(hasLine(stats, "modem.at.commands=counter:"));
}

TEST_F(UmtsctlTest, HostileStatsAllIsScopedBackAndCounted) {
    ASSERT_TRUE(tb.startUmts().ok());
    obs::Registry::instance().counter("umts.bearer.999880000000099.upgrades").inc();
    tb.napoli().vsys().allow("umts", tb.otherSlice().name);
    const std::uint64_t deniedBefore =
        obs::Registry::instance().counter("guard.umtsctl.stats_denied").value();
    // The frontend never sends "all" for a non-owner, but a hostile
    // slice speaking the raw FIFO protocol can. The backend scopes the
    // dump back to the node's own session and records the attempt.
    const auto stats = invoke(tb.otherSlice(), {"stats", "all"});
    EXPECT_EQ(stats.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(stats, "umts.bearer.222880000000001.upgrades=counter:"));
    EXPECT_FALSE(hasLine(stats, "umts.bearer.999880000000099"));
    EXPECT_EQ(obs::Registry::instance().counter("guard.umtsctl.stats_denied").value(),
              deniedBefore + 1);
}

TEST_F(UmtsctlTest, OwningSliceStatsAllStillDumpsEverything) {
    ASSERT_TRUE(tb.startUmts().ok());
    obs::Registry::instance().counter("umts.bearer.999880000000099.upgrades").inc();
    const std::uint64_t deniedBefore =
        obs::Registry::instance().counter("guard.umtsctl.stats_denied").value();
    const auto stats = invoke(tb.umtsSlice(), {"stats", "all"});
    EXPECT_EQ(stats.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(stats, "umts.bearer.999880000000099.upgrades=counter:"));
    EXPECT_EQ(obs::Registry::instance().counter("guard.umtsctl.stats_denied").value(),
              deniedBefore);
}

TEST_F(UmtsctlTest, UnknownVerbRejected) {
    EXPECT_EQ(invoke(tb.umtsSlice(), {"frobnicate"}).exitCode, exit_code::inval);
}

TEST_F(UmtsctlTest, StopRestoresStateExactly) {
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination("138.96.250.20/32").ok());
    ASSERT_TRUE(tb.stopUmts().ok());

    net::NetworkStack& stack = tb.napoli().stack();
    // Invariant 4 (DESIGN.md): no rule leaks after stop.
    EXPECT_EQ(stack.netfilter().ruleCount(), 0u);
    EXPECT_EQ(stack.router().rules().size(), 1u);  // only the main rule
    EXPECT_EQ(stack.router().findTable(100), nullptr);
    EXPECT_EQ(stack.findInterface("ppp0"), nullptr);
    EXPECT_EQ(tb.operatorNetwork().activeSessions(), 0u);
    // And the modem is back in command mode.
    EXPECT_FALSE(tb.card().inDataMode());
}

TEST_F(UmtsctlTest, StopByNonOwnerDenied) {
    ASSERT_TRUE(tb.startUmts().ok());
    tb.napoli().vsys().allow("umts", tb.otherSlice().name);
    const auto result = invoke(tb.otherSlice(), {"stop"});
    EXPECT_EQ(result.exitCode, exit_code::perm);
    EXPECT_TRUE(tb.backend().state().connected);
}

TEST_F(UmtsctlTest, StopWhenNotStartedIsNoop) {
    const auto result = invoke(tb.umtsSlice(), {"stop"});
    EXPECT_EQ(result.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(result, "not-started"));
}

TEST_F(UmtsctlTest, RestartAfterStopWorks) {
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.stopUmts().ok());
    const auto second = tb.startUmts();
    ASSERT_TRUE(second.ok()) << second.error().message;
    EXPECT_TRUE(second.value().connected);
}

// --- Isolation invariants (DESIGN.md §4), enforced end to end ---

TEST_F(UmtsctlTest, OnlyOwnerSliceTrafficUsesUmts) {
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    net::Interface* ppp = tb.napoli().stack().findInterface("ppp0");
    ASSERT_NE(ppp, nullptr);

    // Owner-slice packet to the registered destination: via ppp0.
    auto ownerSocket = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(ownerSocket->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1}).ok());
    EXPECT_EQ(ppp->counters().txPackets, 1u);

    // Invariant 2: other-slice packet to the same destination: eth0.
    net::Interface* eth = tb.napoli().stack().findInterface("eth0");
    const std::uint64_t ethBefore = eth->counters().txPackets;
    auto otherSocket = tb.napoli().openSliceUdp(tb.otherSlice()).value();
    ASSERT_TRUE(otherSocket->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1}).ok());
    EXPECT_EQ(ppp->counters().txPackets, 1u);
    EXPECT_EQ(eth->counters().txPackets, ethBefore + 1);
}

TEST_F(UmtsctlTest, IntruderBindingToUmtsAddressIsDropped) {
    // Invariant 1: even binding to the UMTS address or addressing the
    // PPP peer does not get another slice onto ppp0 (§2.3's special
    // cases, handled by the DROP rule).
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    net::Interface* ppp = tb.napoli().stack().findInterface("ppp0");

    auto intruder = tb.napoli().openSliceUdp(tb.otherSlice()).value();
    intruder->bindAddress(started.value().address);
    (void)intruder->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1});
    EXPECT_EQ(ppp->counters().txPackets, 0u);

    // Packets aimed at the PPP peer (the GGSN end of the link).
    auto intruder2 = tb.napoli().openSliceUdp(tb.otherSlice()).value();
    (void)intruder2->sendTo(tb.operatorNetwork().profile().ggsnAddress, 22, util::Bytes{1});
    EXPECT_EQ(ppp->counters().txPackets, 0u);
    // The hostile traffic fell through to the default route instead.
    EXPECT_GE(tb.napoli().stack().findInterface("eth0")->counters().txPackets, 2u);
}

TEST_F(UmtsctlTest, OwnerUnmarkedDestinationsStayOnEth) {
    // Invariant 2: the default route is untouched; the owner's traffic
    // to unregistered destinations also stays on eth0.
    ASSERT_TRUE(tb.startUmts().ok());
    net::Interface* ppp = tb.napoli().stack().findInterface("ppp0");
    net::Interface* eth = tb.napoli().stack().findInterface("eth0");
    auto socket = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(socket->sendTo(net::Ipv4Address{8, 8, 8, 8}, 53, util::Bytes{1}).ok());
    EXPECT_EQ(ppp->counters().txPackets, 0u);
    EXPECT_GE(eth->counters().txPackets, 1u);
}

TEST_F(UmtsctlTest, OwnerCanForceUmtsByBinding) {
    // §2.2: "or to explicitly bind to the UMTS interface". The
    // from-<addr> rule routes owner packets bound to ppp0's address.
    const auto started = tb.startUmts();
    ASSERT_TRUE(started.ok());
    net::Interface* ppp = tb.napoli().stack().findInterface("ppp0");
    auto socket = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    socket->bindAddress(started.value().address);
    ASSERT_TRUE(socket->sendTo(net::Ipv4Address{8, 8, 8, 8}, 53, util::Bytes{1}).ok());
    EXPECT_EQ(ppp->counters().txPackets, 1u);
}

TEST_F(UmtsctlTest, StatusDuringDialShowsLockedNotConnected) {
    std::optional<pl::VsysResult> startResult;
    tb.napoli().vsys().invoke(tb.umtsSlice(), "umts", {"start"},
                              [&](util::Result<pl::VsysResult> r) { startResult = r.value(); });
    tb.sim().runUntil(tb.sim().now() + sim::millis(800));  // mid-registration
    const auto status = invoke(tb.umtsSlice(), {"status"});
    EXPECT_EQ(status.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(status, "locked=1"));
    EXPECT_TRUE(hasLine(status, "connected=0"));
    tb.sim().runUntil(tb.sim().now() + sim::seconds(30.0));
    ASSERT_TRUE(startResult.has_value());
    EXPECT_EQ(startResult->exitCode, exit_code::ok);
}

TEST_F(UmtsctlTest, CoverageLossMidFlowCleansUpAndTrafficFallsBack) {
    // Failure injection: the operator drops the PDP context while a
    // slice is actively sending. The backend must tear down its state;
    // subsequent slice traffic to the registered destination falls
    // back to the default (eth0) route instead of vanishing.
    ASSERT_TRUE(tb.startUmts().ok());
    ASSERT_TRUE(tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32").ok());
    auto socket = tb.napoli().openSliceUdp(tb.umtsSlice()).value();
    ASSERT_TRUE(socket->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{1}).ok());

    tb.operatorNetwork().detachUe("222880000000001");  // admin detach
    tb.sim().runUntil(tb.sim().now() + sim::seconds(5.0));
    EXPECT_FALSE(tb.backend().state().connected);
    EXPECT_FALSE(tb.backend().state().locked);
    EXPECT_EQ(tb.napoli().stack().findInterface("ppp0"), nullptr);

    net::Interface* eth = tb.napoli().stack().findInterface("eth0");
    const std::uint64_t ethBefore = eth->counters().txPackets;
    ASSERT_TRUE(socket->sendTo(tb.inriaEthAddress(), 9001, util::Bytes{2}).ok());
    EXPECT_EQ(eth->counters().txPackets, ethBefore + 1);
}

TEST_F(UmtsctlTest, LinkLossCleansUpAndUnlocks) {
    ASSERT_TRUE(tb.startUmts().ok());
    // The operator kills the PDP context under us.
    tb.operatorNetwork().deactivatePdp(tb.operatorNetwork().sessionAt(0));
    tb.sim().runUntil(tb.sim().now() + sim::seconds(10.0));
    EXPECT_FALSE(tb.backend().state().locked);
    EXPECT_FALSE(tb.backend().state().connected);
    EXPECT_EQ(tb.napoli().stack().findInterface("ppp0"), nullptr);
    EXPECT_EQ(tb.napoli().stack().netfilter().ruleCount(), 0u);
    // A new start succeeds afterwards.
    EXPECT_TRUE(tb.startUmts().ok());
}

struct SupervisedUmtsctlTest : UmtsctlTest {
    static TestbedConfig supervisedConfig() {
        TestbedConfig config;
        config.supervise.enable = true;
        return config;
    }
    SupervisedUmtsctlTest() : UmtsctlTest(supervisedConfig()) {}
};

/// `umts status` surfaces the supervisor ladder so a slice can see
/// what recovery is doing to its link (absent on unsupervised nodes).
TEST_F(SupervisedUmtsctlTest, StatusReportsSuperviseLadderRows) {
    ASSERT_TRUE(tb.startUmts().ok());
    tb.sim().runUntil(tb.sim().now() + sim::seconds(2.0));
    const auto status = invoke(tb.umtsSlice(), {"status"});
    EXPECT_EQ(status.exitCode, exit_code::ok);
    EXPECT_TRUE(hasLine(status, "supervise_state=healthy"));
    EXPECT_TRUE(hasLine(status, "supervise_time_in_state_ms="));

    // The typed report carries the same rows through the public API.
    std::optional<util::Result<UmtsReport>> typed;
    tb.umtsCommand().status([&](util::Result<UmtsReport> r) { typed = std::move(r); });
    const sim::SimTime deadline = tb.sim().now() + sim::seconds(30.0);
    while (!typed && tb.sim().now() < deadline)
        tb.sim().runUntil(tb.sim().now() + sim::millis(50));
    ASSERT_TRUE(typed && typed->ok());
    EXPECT_EQ(typed->value().superviseState, "healthy");
    EXPECT_GE(typed->value().superviseTimeInStateMs, 0);
    EXPECT_EQ(typed->value().superviseLastRecoveryMs, -1) << "no incident has happened";
}

TEST_F(UmtsctlTest, StatusOmitsSuperviseRowsWithoutASupervisor) {
    ASSERT_TRUE(tb.startUmts().ok());
    const auto status = invoke(tb.umtsSlice(), {"status"});
    EXPECT_EQ(status.exitCode, exit_code::ok);
    EXPECT_FALSE(hasLine(status, "supervise_state="));
}

}  // namespace
}  // namespace onelab::umtsctl
