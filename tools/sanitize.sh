#!/bin/sh
# Configure, build and run the full test suite under ASan + UBSan.
# Usage: tools/sanitize.sh [build-dir]   (default: build-asan)
set -eu

build_dir="${1:-build-asan}"
src_dir="$(dirname "$0")/.."

cmake -B "$build_dir" -S "$src_dir" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DONELAB_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error keeps UBSan findings from scrolling past as warnings.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    ctest --test-dir "$build_dir" --output-on-failure
