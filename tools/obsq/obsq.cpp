// obsq — post-mortem query tool over the observability artefacts a run
// leaves behind: trace.json (Chrome spans), metrics.json (registry
// snapshot), flight.json (flight-recorder dump) and profile.json
// (self-time profile). Pure reader: it never mutates run output.
//
// Usage:
//   obsq trace   <trace.json>  [filters]     span/event table
//   obsq flight  <flight.json> [filters]     flight-recorder table
//   obsq metrics <metrics.json> [filters]    metric snapshot table
//   obsq top     <profile.json|trace.json> [-n N]
//   obsq diff    <runA> <runB>               run dirs or trace files
//   obsq merge   <trace.json...>             merged trace on stdout
//                (one tid lane per input; --stable re-sorts into the
//                 sharded exporter's content order on tid 1 instead)
//   obsq merge   <flight.shard*.json...>     flight fragments merge
//                (auto-detected; entries stably sorted by t_ns, then
//                 category/name/kind/detail; dropped counts summed)
//   obsq --self-check
//
// Filters: --cat S --name S --kind S --imsi S --from SEC --to SEC
//          --limit N --tail N

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/query.hpp"
#include "util/json.hpp"

namespace {

using onelab::obs::query::Filter;
using onelab::util::JsonValue;

int usage(std::FILE* out) {
    std::fputs(
        "usage: obsq <trace|flight|metrics|top|diff|merge> <file...> [options]\n"
        "       obsq --self-check\n"
        "options:\n"
        "  --cat S     substring match on category\n"
        "  --name S    substring match on name (metrics: prefix)\n"
        "  --kind S    flight entry kind (log/span_begin/span_end/event/\n"
        "              transition/metric)\n"
        "  --imsi S    match S against category, name and detail\n"
        "  --from SEC  sim-time window lower bound, seconds\n"
        "  --to SEC    sim-time window upper bound, seconds\n"
        "  --limit N   print at most N rows\n"
        "  --tail N    keep only the newest N rows\n"
        "  -n N        top: table depth (default 10)\n"
        "  --stable    merge: content-sorted single-lane output\n"
        "              (per-shard fragments of ONE run; flight dumps\n"
        "               are detected and merged this way automatically)\n",
        out);
    return out == stdout ? 0 : 2;
}

bool loadDoc(const std::string& path, JsonValue& out) {
    auto parsed = JsonValue::parseFile(path);
    if (!parsed.ok()) {
        std::fprintf(stderr, "obsq: %s: %s\n", path.c_str(),
                     parsed.error().message.c_str());
        return false;
    }
    out = std::move(parsed).take();
    return true;
}

/// diff operand: a run export directory (containing trace.json /
/// metrics.json) or a single trace file.
struct RunDocs {
    JsonValue trace;
    JsonValue metrics;
    bool hasTrace = false;
    bool hasMetrics = false;
};

bool loadRun(const std::string& operand, RunDocs& out) {
    namespace fs = std::filesystem;
    if (fs::is_directory(operand)) {
        const std::string tracePath = operand + "/trace.json";
        const std::string metricsPath = operand + "/metrics.json";
        if (fs::exists(tracePath)) out.hasTrace = loadDoc(tracePath, out.trace);
        if (fs::exists(metricsPath)) out.hasMetrics = loadDoc(metricsPath, out.metrics);
        if (!out.hasTrace && !out.hasMetrics) {
            std::fprintf(stderr, "obsq: %s: no trace.json or metrics.json\n",
                         operand.c_str());
            return false;
        }
        return true;
    }
    out.hasTrace = loadDoc(operand, out.trace);
    return out.hasTrace;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return usage(stderr);
    if (args[0] == "--help" || args[0] == "-h") return usage(stdout);
    if (args[0] == "--self-check") {
        const std::string failure = onelab::obs::query::selfCheck();
        if (failure.empty()) {
            std::puts("obsq self-check: ok");
            return 0;
        }
        std::fprintf(stderr, "obsq self-check FAILED: %s\n", failure.c_str());
        return 1;
    }

    const std::string command = args[0];
    Filter filter;
    std::size_t topN = 10;
    bool stableMerge = false;
    std::vector<std::string> files;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const auto needValue = [&](const char* flag) -> const std::string* {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "obsq: %s needs a value\n", flag);
                return nullptr;
            }
            return &args[++i];
        };
        if (arg == "--cat") {
            const auto* v = needValue("--cat");
            if (!v) return 2;
            filter.category = *v;
        } else if (arg == "--name") {
            const auto* v = needValue("--name");
            if (!v) return 2;
            filter.name = *v;
        } else if (arg == "--kind") {
            const auto* v = needValue("--kind");
            if (!v) return 2;
            filter.kind = *v;
        } else if (arg == "--imsi") {
            const auto* v = needValue("--imsi");
            if (!v) return 2;
            filter.imsi = *v;
        } else if (arg == "--from") {
            const auto* v = needValue("--from");
            if (!v) return 2;
            filter.fromSeconds = std::strtod(v->c_str(), nullptr);
        } else if (arg == "--to") {
            const auto* v = needValue("--to");
            if (!v) return 2;
            filter.toSeconds = std::strtod(v->c_str(), nullptr);
        } else if (arg == "--limit") {
            const auto* v = needValue("--limit");
            if (!v) return 2;
            filter.limit = std::size_t(std::strtoul(v->c_str(), nullptr, 10));
        } else if (arg == "--tail") {
            const auto* v = needValue("--tail");
            if (!v) return 2;
            filter.tail = std::size_t(std::strtoul(v->c_str(), nullptr, 10));
        } else if (arg == "-n") {
            const auto* v = needValue("-n");
            if (!v) return 2;
            topN = std::size_t(std::strtoul(v->c_str(), nullptr, 10));
        } else if (arg == "--stable") {
            stableMerge = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "obsq: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    if (command == "trace" || command == "flight" || command == "metrics" ||
        command == "top") {
        if (files.size() != 1) {
            std::fprintf(stderr, "obsq %s: expected exactly one file\n",
                         command.c_str());
            return 2;
        }
        JsonValue doc;
        if (!loadDoc(files[0], doc)) return 1;
        std::string out;
        if (command == "trace")
            out = onelab::obs::query::formatTrace(doc, filter);
        else if (command == "flight")
            out = onelab::obs::query::formatFlight(doc, filter);
        else if (command == "metrics")
            out = onelab::obs::query::formatMetrics(doc, filter);
        else
            out = onelab::obs::query::formatTopSelf(doc, topN);
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    if (command == "diff") {
        if (files.size() != 2) {
            std::fputs("obsq diff: expected two run dirs or trace files\n", stderr);
            return 2;
        }
        RunDocs a, b;
        if (!loadRun(files[0], a) || !loadRun(files[1], b)) return 1;
        const std::string out = onelab::obs::query::formatDiff(
            a.hasTrace ? &a.trace : nullptr, b.hasTrace ? &b.trace : nullptr,
            a.hasMetrics ? &a.metrics : nullptr,
            b.hasMetrics ? &b.metrics : nullptr);
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    if (command == "merge") {
        if (files.empty()) {
            std::fputs("obsq merge: expected at least one trace or flight file\n",
                       stderr);
            return 2;
        }
        std::vector<JsonValue> docs;
        docs.reserve(files.size());
        bool allFlight = true;
        for (const std::string& path : files) {
            JsonValue doc;
            if (!loadDoc(path, doc)) return 1;
            const JsonValue* entries = doc.find("entries");
            allFlight = allFlight && entries && entries->isArray();
            docs.push_back(std::move(doc));
        }
        // Per-shard flight fragments are self-identifying (they carry
        // "entries", traces carry "traceEvents") and only have one
        // sensible merge: the stable content order.
        std::string out;
        if (allFlight)
            out = onelab::obs::query::mergeFlights(docs);
        else if (stableMerge)
            out = onelab::obs::query::mergeTracesStable(docs);
        else
            out = onelab::obs::query::mergeTraces(docs);
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    std::fprintf(stderr, "obsq: unknown command '%s'\n", command.c_str());
    return usage(stderr);
}
