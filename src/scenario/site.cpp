#include "scenario/site.hpp"

#include "sim/shard.hpp"

namespace onelab::scenario {

net::Interface& wireEthernet(pl::NodeOs& node, net::Internet& internet,
                             net::Ipv4Address address, const EthernetParams& params,
                             net::ShardPort port) {
    net::Interface& eth = node.stack().addInterface("eth0");
    eth.setAddress(address);
    eth.setUp(true);
    net::AccessLink link;
    link.rateBitsPerSecond = params.accessRateBps;
    link.baseDelay = sim::micros(200);
    link.jitterStddevMillis = params.jitterStddevMillis;
    internet.attach(eth, link, std::move(port));
    node.stack().router().table(net::PolicyRouter::kMainTable)
        .addRoute(net::Route{net::Prefix::any(), "eth0", std::nullopt, 0});
    return eth;
}

// --------------------------------------------------------- wired site

WiredSite::WiredSite(sim::Simulator& simulator, net::Internet& internet,
                     WiredSiteConfig config, net::ShardPort ethPort)
    : config_(std::move(config)) {
    node_ = std::make_unique<pl::NodeOs>(simulator, config_.hostname);
    eth_ = &wireEthernet(*node_, internet, config_.address, config_.ethernet,
                         std::move(ethPort));
    for (const std::string& name : config_.sliceNames)
        slices_.push_back(&node_->createSlice(name));
}

pl::Slice* WiredSite::slice(const std::string& name) noexcept {
    for (pl::Slice* s : slices_)
        if (s->name == name) return s;
    return nullptr;
}

// ---------------------------------------------------- UMTS node site

UmtsNodeSite::UmtsNodeSite(sim::Simulator& simulator, net::Internet& internet,
                           umts::UmtsNetwork& operatorNetwork,
                           const util::RandomStream& rootRng, UmtsNodeSiteConfig config,
                           SiteShardSlot slot)
    : config_(std::move(config)),
      slot_(std::move(slot)),
      pumpNow_([&simulator] { return simulator.now(); }),
      pumpRunUntil_([&simulator](sim::SimTime until) { simulator.runUntil(until); }),
      sim_(simulator) {
    const bool sharded = slot_.siteShard != nullptr;
    node_ = std::make_unique<pl::NodeOs>(simulator, config_.hostname);
    net::ShardPort ethPort;
    if (sharded) {
        ethPort.sim = &sim_;
        ethPort.postIn = slot_.postToSite;
        ethPort.postToHub = slot_.postToCore;
    }
    eth_ = &wireEthernet(*node_, internet, config_.ethAddress, config_.ethernet,
                         std::move(ethPort));

    // --- slices ---
    umtsSlice_ = &node_->createSlice(config_.umtsSliceName);
    for (const std::string& name : config_.extraSliceNames)
        extraSlices_.push_back(&node_->createSlice(name));

    // --- the UMTS card on its TTY (/dev/ttyUSB0 in the paper) ---
    // Sharded: the host side (A) stays on this shard, the card side
    // (B) lives on the core shard with the modem, which talks to the
    // operator network synchronously and must share its simulator.
    if (sharded)
        tty_ = std::make_unique<sim::Pipe>(sim::Pipe::CrossShard{
            &sim_, &slot_.coreShard->sim(), slot_.postToSite, slot_.postToCore,
            slot_.cutLatency});
    else
        tty_ = std::make_unique<sim::Pipe>(simulator);
    modem::ModemConfig modemConfig;
    modemConfig.pin = config_.simPin;
    modemConfig.imsi = config_.imsi;
    std::vector<std::string> cardInit;
    {
        // The modem's metrics, traces and log lines belong to the
        // shard whose thread will drive it.
        std::optional<sim::ShardObsScope> coreScope;
        if (sharded) coreScope.emplace(*slot_.coreShard);
        sim::Simulator& modemSim = sharded ? slot_.coreShard->sim() : simulator;
        if (config_.card == CardKind::globetrotter) {
            modem_ = std::make_unique<modem::GlobetrotterModem>(modemSim, &operatorNetwork,
                                                                modemConfig);
            cardInit = {"AT_OPSYS=3"};  // prefer 3G
        } else {
            modem_ = std::make_unique<modem::HuaweiE620Modem>(modemSim, &operatorNetwork,
                                                              modemConfig);
            cardInit = {"AT^CURC=0"};  // silence ^RSSI chatter
        }
        modem_->attachTty(tty_->b());
    }

    // --- the umts backend (root context) + vsys wiring ---
    umtsctl::UmtsBackendConfig backendConfig;
    backendConfig.comgt.pin =
        config_.backendPinOverride.empty() ? config_.simPin : config_.backendPinOverride;
    backendConfig.comgt.extraInit = cardInit;
    // The card's driver, on top of the PPP stack. The vanilla `nozomi`
    // does not build for the PlanetLab kernel; the OneLab patch does.
    backendConfig.requiredModules.push_back(
        config_.card == CardKind::globetrotter ? "nozomi_onelab" : "pl2303");
    for (const std::string& module : config_.extraRequiredModules)
        backendConfig.requiredModules.push_back(module);
    backendConfig.dialer.apn = operatorNetwork.profile().apn;
    backendConfig.dialer.username = "onelab";
    backendConfig.dialer.password = "onelab";
    backendConfig.dialer.ccp.enable = config_.dialerCompression;
    backendConfig.dialer.seed = rootRng.derive(config_.dialerSeedTag).seed();
    // Sharded fleets pin LCP magic entropy to the dialer's own seed so
    // frame bytes are identical for every shard count; serial runs
    // keep the legacy draw-order counter and its goldens.
    if (sharded) backendConfig.dialer.lcpEntropySeed = backendConfig.dialer.seed;
    if (config_.supervise.enable) {
        // The supervisor needs the keepalive as its health signal;
        // adaptive mode keeps a loaded link free of echo traffic (the
        // wire — and thus every figure CSV — stays identical while
        // the link is healthy and carrying flows).
        backendConfig.dialer.lcpEcho = true;
        backendConfig.dialer.lcpEchoAdaptive = true;
        backendConfig.dialer.lcpEchoInterval = config_.supervise.echoInterval;
        backendConfig.dialer.lcpEchoFailure = config_.supervise.echoFailureLimit;
    }
    // `umts stats` on this node reports this node's radio session, not
    // every bearer camping on the shared cell; only the experiment
    // slice may ask for the unscoped `stats all` dump.
    backendConfig.statsScopeImsi = config_.imsi;
    backendConfig.statsAllSlice = config_.umtsSliceName;
    backendConfig.autoRedial = config_.autoRedial;
    if (backendConfig.autoRedial.jitterSeed == 0)
        backendConfig.autoRedial.jitterSeed =
            rootRng.derive(config_.dialerSeedTag + "/redial").seed();
    backend_ = std::make_unique<umtsctl::UmtsBackend>(simulator, *node_, tty_->a(),
                                                      backendConfig);
    if (sharded) {
        // DTR and carrier-loss are out-of-band wires of the same
        // physical cable as the TTY: they cross the cut with the same
        // latency, as mailbox events.
        backend_->dropDtr = [this] {
            slot_.postToCore(sim_.now() + slot_.cutLatency, [this] { modem_->dropDtr(); });
        };
        modem_->onCarrierLost = [this] {
            slot_.postToSite(slot_.coreShard->sim().now() + slot_.cutLatency,
                             [this] { backend_->notifyCarrierLost(); });
        };
    } else {
        backend_->dropDtr = [this] { modem_->dropDtr(); };
        modem_->onCarrierLost = [this] { backend_->notifyCarrierLost(); };
    }
    backend_->installVsys();
    node_->vsys().allow("umts", config_.umtsSliceName);
    // Admission control at the trust boundary: every request line a
    // slice pushes down the umts FIFO passes the per-slice token
    // bucket + bounded queue depth before reaching the backend.
    fifoGuard_ = std::make_unique<guard::SliceFifoGuard>(simulator, config_.fifoGuard);
    node_->vsys().setGuard("umts", fifoGuard_.get());

    frontend_ = std::make_unique<umtsctl::UmtsFrontend>(*node_, *umtsSlice_);

    if (config_.supervise.enable) {
        supervise::SupervisorConfig supConfig = config_.supervise.config;
        const supervise::SupervisorConfig defaults;
        if (supConfig.name == defaults.name) supConfig.name = config_.imsi;
        if (supConfig.seed == defaults.seed)
            supConfig.seed = rootRng.derive(config_.dialerSeedTag + "/supervise").seed();
        supervise::ModemControl modemControl;
        if (sharded) {
            modemControl.hardReset = [this] {
                slot_.postToCore(sim_.now() + slot_.cutLatency,
                                 [this] { modem_->hardReset(); });
            };
            modemControl.reattach = [this] {
                slot_.postToCore(sim_.now() + slot_.cutLatency,
                                 [this] { modem_->reattach(); });
            };
        } else {
            modemControl.hardReset = [this] { modem_->hardReset(); };
            modemControl.reattach = [this] { modem_->reattach(); };
        }
        supervisor_ = std::make_unique<supervise::LinkSupervisor>(
            simulator, *backend_, std::move(modemControl), tty_->a(), supConfig);
        // Surface ladder state through `umts status` so a slice sees
        // what the supervisor is doing to its link.
        backend_->statusExtra = [this]() {
            std::vector<std::string> lines;
            lines.push_back(std::string("supervise_state=") +
                            supervise::healthName(supervisor_->health()));
            lines.push_back(
                "supervise_time_in_state_ms=" +
                std::to_string(long(
                    sim::toMillis(sim_.now() - supervisor_->stateSince()))));
            if (const auto latency = supervisor_->lastRecoveryLatency())
                lines.push_back("supervise_last_recovery_ms=" +
                                std::to_string(long(sim::toMillis(*latency))));
            return lines;
        };
    }
}

UmtsNodeSite::~UmtsNodeSite() = default;

pl::Slice* UmtsNodeSite::slice(const std::string& name) noexcept {
    if (umtsSlice_ && umtsSlice_->name == name) return umtsSlice_;
    for (pl::Slice* s : extraSlices_)
        if (s->name == name) return s;
    return nullptr;
}

void UmtsNodeSite::setDriverPump(std::function<sim::SimTime()> now,
                                 std::function<void(sim::SimTime)> runUntil) {
    pumpNow_ = std::move(now);
    pumpRunUntil_ = std::move(runUntil);
}

util::Result<umtsctl::UmtsReport> UmtsNodeSite::startUmts(sim::SimTime timeout) {
    std::optional<util::Result<umtsctl::UmtsReport>> outcome;
    {
        // The frontend's synchronous prefix runs on the driver thread:
        // any lazy metric registration must land in this site's shard
        // registry, where the site's worker will later update it.
        std::optional<sim::ShardObsScope> scope;
        if (slot_.siteShard) scope.emplace(*slot_.siteShard);
        frontend_->start(
            [&](util::Result<umtsctl::UmtsReport> result) { outcome = std::move(result); });
    }
    const sim::SimTime deadline = pumpNow_() + timeout;
    while (!outcome && pumpNow_() < deadline) pumpRunUntil_(pumpNow_() + sim::millis(100));
    if (!outcome) return util::err(util::Error::Code::timeout, "umts start timed out");
    return std::move(*outcome);
}

util::Result<void> UmtsNodeSite::addUmtsDestination(const std::string& destination,
                                                    sim::SimTime timeout) {
    std::optional<util::Result<void>> outcome;
    {
        std::optional<sim::ShardObsScope> scope;
        if (slot_.siteShard) scope.emplace(*slot_.siteShard);
        frontend_->addDestination(
            destination, [&](util::Result<void> result) { outcome = std::move(result); });
    }
    const sim::SimTime deadline = pumpNow_() + timeout;
    while (!outcome && pumpNow_() < deadline) pumpRunUntil_(pumpNow_() + sim::millis(10));
    if (!outcome) return util::err(util::Error::Code::timeout, "add destination timed out");
    return std::move(*outcome);
}

util::Result<void> UmtsNodeSite::stopUmts(sim::SimTime timeout) {
    std::optional<util::Result<void>> outcome;
    {
        std::optional<sim::ShardObsScope> scope;
        if (slot_.siteShard) scope.emplace(*slot_.siteShard);
        frontend_->stop([&](util::Result<void> result) { outcome = std::move(result); });
    }
    const sim::SimTime deadline = pumpNow_() + timeout;
    while (!outcome && pumpNow_() < deadline) pumpRunUntil_(pumpNow_() + sim::millis(10));
    if (!outcome) return util::err(util::Error::Code::timeout, "umts stop timed out");
    return std::move(*outcome);
}

}  // namespace onelab::scenario
