#include "scenario/testbed.hpp"

namespace onelab::scenario {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
    FleetConfig fleetConfig;
    fleetConfig.seed = config_.seed;
    fleetConfig.operatorProfile = config_.operatorProfile;
    fleetConfig.ethTransitOneWay = config_.ethTransitOneWay;
    fleetConfig.ggsnTransitOneWay = config_.ggsnTransitOneWay;

    UmtsNodeSiteConfig napoli;
    napoli.hostname = "planetlab1.unina.it";
    napoli.ethAddress = napoliEth_;
    napoli.card = config_.card;
    napoli.simPin = config_.simPin;
    napoli.backendPinOverride = config_.backendPinOverride;
    napoli.umtsSliceName = config_.umtsSliceName;
    napoli.extraSliceNames = {config_.otherSliceName};
    napoli.dialerCompression = config_.dialerCompression;
    napoli.extraRequiredModules = config_.extraRequiredModules;
    napoli.dialerSeedTag = "dialer";  // the historical testbed stream
    napoli.supervise = config_.supervise;
    napoli.ethernet.accessRateBps = config_.ethAccessRateBps;
    napoli.ethernet.jitterStddevMillis = config_.ethJitterStddevMillis;
    fleetConfig.umtsSites.push_back(std::move(napoli));

    WiredSiteConfig inria;
    inria.hostname = "planetlab1.inria.fr";
    inria.address = inriaEth_;
    inria.sliceNames = {config_.inriaSliceName};
    inria.ethernet.accessRateBps = config_.ethAccessRateBps;
    inria.ethernet.jitterStddevMillis = config_.ethJitterStddevMillis;
    fleetConfig.wiredSites.push_back(std::move(inria));

    fleet_ = std::make_unique<Fleet>(std::move(fleetConfig));
}

Testbed::~Testbed() = default;

}  // namespace onelab::scenario
