#include "scenario/testbed.hpp"

namespace onelab::scenario {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)), rng_(config_.seed) {
    internet_ = std::make_unique<net::Internet>(sim_, rng_.derive("internet"));

    // --- operator network (radio + core + GGSN) ---
    operator_ = std::make_unique<umts::UmtsNetwork>(sim_, *internet_, config_.operatorProfile,
                                                    rng_.derive("operator"));

    // --- PlanetLab nodes ---
    napoli_ = std::make_unique<pl::NodeOs>(sim_, "planetlab1.unina.it");
    inria_ = std::make_unique<pl::NodeOs>(sim_, "planetlab1.inria.fr");

    auto wireEthernet = [&](pl::NodeOs& node, net::Ipv4Address address) -> net::Interface& {
        net::Interface& eth = node.stack().addInterface("eth0");
        eth.setAddress(address);
        eth.setUp(true);
        net::AccessLink link;
        link.rateBitsPerSecond = config_.ethAccessRateBps;
        link.baseDelay = sim::micros(200);
        link.jitterStddevMillis = config_.ethJitterStddevMillis;
        internet_->attach(eth, link);
        node.stack().router().table(net::PolicyRouter::kMainTable)
            .addRoute(net::Route{net::Prefix::any(), "eth0", std::nullopt, 0});
        return eth;
    };
    net::Interface& napoliEth = wireEthernet(*napoli_, napoliEth_);
    net::Interface& inriaEth = wireEthernet(*inria_, inriaEth_);

    internet_->setTransitDelay(napoliEth, inriaEth, config_.ethTransitOneWay);
    internet_->setTransitDelay(operator_->wanInterface(), inriaEth, config_.ggsnTransitOneWay);
    internet_->setTransitDelay(operator_->wanInterface(), napoliEth, config_.ggsnTransitOneWay);

    // The operator's resolver knows the testbed hostnames.
    operator_->addDnsRecord(napoli_->hostname(), napoliEth_);
    operator_->addDnsRecord(inria_->hostname(), inriaEth_);

    // --- slices ---
    umtsSlice_ = &napoli_->createSlice(config_.umtsSliceName);
    otherSlice_ = &napoli_->createSlice(config_.otherSliceName);
    inriaSlice_ = &inria_->createSlice(config_.inriaSliceName);

    // --- the UMTS card on its TTY (/dev/ttyUSB0 in the paper) ---
    tty_ = std::make_unique<sim::Pipe>(sim_);
    modem::ModemConfig modemConfig;
    modemConfig.pin = config_.simPin;
    std::vector<std::string> cardInit;
    if (config_.card == CardKind::globetrotter) {
        modem_ = std::make_unique<modem::GlobetrotterModem>(sim_, operator_.get(), modemConfig);
        cardInit = {"AT_OPSYS=3"};  // prefer 3G
    } else {
        modem_ = std::make_unique<modem::HuaweiE620Modem>(sim_, operator_.get(), modemConfig);
        cardInit = {"AT^CURC=0"};  // silence ^RSSI chatter
    }
    modem_->attachTty(tty_->b());

    // --- the umts backend (root context) + vsys wiring ---
    umtsctl::UmtsBackendConfig backendConfig;
    backendConfig.comgt.pin =
        config_.backendPinOverride.empty() ? config_.simPin : config_.backendPinOverride;
    backendConfig.comgt.extraInit = cardInit;
    // The card's driver, on top of the PPP stack. The vanilla `nozomi`
    // does not build for the PlanetLab kernel; the OneLab patch does.
    backendConfig.requiredModules.push_back(
        config_.card == CardKind::globetrotter ? "nozomi_onelab" : "pl2303");
    for (const std::string& module : config_.extraRequiredModules)
        backendConfig.requiredModules.push_back(module);
    backendConfig.dialer.apn = config_.operatorProfile.apn;
    backendConfig.dialer.username = "onelab";
    backendConfig.dialer.password = "onelab";
    backendConfig.dialer.ccp.enable = config_.dialerCompression;
    backendConfig.dialer.seed = rng_.derive("dialer").seed();
    backend_ = std::make_unique<umtsctl::UmtsBackend>(sim_, *napoli_, tty_->a(), backendConfig);
    backend_->dropDtr = [this] { modem_->dropDtr(); };
    modem_->onCarrierLost = [this] { backend_->notifyCarrierLost(); };
    backend_->installVsys();
    napoli_->vsys().allow("umts", config_.umtsSliceName);

    frontend_ = std::make_unique<umtsctl::UmtsFrontend>(*napoli_, *umtsSlice_);
}

Testbed::~Testbed() = default;

util::Result<umtsctl::UmtsReport> Testbed::startUmts(sim::SimTime timeout) {
    std::optional<util::Result<umtsctl::UmtsReport>> outcome;
    frontend_->start([&](util::Result<umtsctl::UmtsReport> result) { outcome = std::move(result); });
    const sim::SimTime deadline = sim_.now() + timeout;
    while (!outcome && sim_.now() < deadline) sim_.runUntil(sim_.now() + sim::millis(100));
    if (!outcome) return util::err(util::Error::Code::timeout, "umts start timed out");
    return std::move(*outcome);
}

util::Result<void> Testbed::addUmtsDestination(const std::string& destination,
                                               sim::SimTime timeout) {
    std::optional<util::Result<void>> outcome;
    frontend_->addDestination(destination,
                              [&](util::Result<void> result) { outcome = std::move(result); });
    const sim::SimTime deadline = sim_.now() + timeout;
    while (!outcome && sim_.now() < deadline) sim_.runUntil(sim_.now() + sim::millis(10));
    if (!outcome) return util::err(util::Error::Code::timeout, "add destination timed out");
    return std::move(*outcome);
}

util::Result<void> Testbed::stopUmts(sim::SimTime timeout) {
    std::optional<util::Result<void>> outcome;
    frontend_->stop([&](util::Result<void> result) { outcome = std::move(result); });
    const sim::SimTime deadline = sim_.now() + timeout;
    while (!outcome && sim_.now() < deadline) sim_.runUntil(sim_.now() + sim::millis(10));
    if (!outcome) return util::err(util::Error::Code::timeout, "umts stop timed out");
    return std::move(*outcome);
}

}  // namespace onelab::scenario
