#include "scenario/experiment.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "ppp/lcp.hpp"

namespace onelab::scenario {

const char* workloadName(Workload workload) noexcept {
    switch (workload) {
        case Workload::voip_g711: return "voip-g711-72kbps";
        case Workload::cbr_1mbps: return "cbr-1mbps";
    }
    return "?";
}

const char* pathName(PathKind path) noexcept {
    switch (path) {
        case PathKind::umts_to_ethernet: return "UMTS-to-Ethernet";
        case PathKind::ethernet_to_ethernet: return "Ethernet-to-Ethernet";
    }
    return "?";
}

ditg::FlowSpec makeWorkload(Workload workload, double durationSeconds) {
    switch (workload) {
        case Workload::voip_g711: return ditg::voipG711Flow(1, durationSeconds);
        case Workload::cbr_1mbps: return ditg::cbr1MbpsFlow(2, durationSeconds);
    }
    throw std::logic_error("unknown workload");
}

PathRun runPath(PathKind path, const ExperimentOptions& options) {
    TestbedConfig testbedConfig = options.testbed;
    testbedConfig.seed = options.seed;
    Testbed tb{testbedConfig};
    sim::Simulator& sim = tb.sim();

    PathRun run;

    // Receiver on the INRIA node (root port 9001, inside its slice).
    auto recvSocket = tb.inria().openSliceUdp(tb.inriaSlice(), 9001);
    if (!recvSocket.ok()) throw std::runtime_error(recvSocket.error().message);
    ditg::ItgRecv receiver{*recvSocket.value()};

    if (path == PathKind::umts_to_ethernet) {
        const auto started = tb.startUmts();
        if (!started.ok())
            throw std::runtime_error("umts start failed: " + started.error().message);
        const auto added =
            tb.addUmtsDestination(tb.inriaEthAddress().str() + "/32");
        if (!added.ok())
            throw std::runtime_error("add destination failed: " + added.error().message);
        run.umtsUsed = true;
        run.umtsAddress = started.value().address;
        run.operatorName = started.value().operatorName;

        // Track on-demand bearer upgrades (the Fig. 4 knee).
        if (umts::UmtsSession* session = tb.operatorNetwork().sessionAt(0)) {
            session->bearer().onUplinkRateChange = [&run, &sim](double oldRate, double newRate) {
                if (newRate > oldRate) {
                    ++run.bearerUpgrades;
                    // Converted to flow-relative time after the run.
                    run.upgradeTimeSeconds = sim::toSeconds(sim.now());
                }
            };
        }
    }

    // Sender in the experiment slice on the Napoli node.
    auto sendSocket = tb.napoli().openSliceUdp(tb.umtsSlice());
    if (!sendSocket.ok()) throw std::runtime_error(sendSocket.error().message);

    ditg::FlowSpec spec = makeWorkload(options.workload, options.durationSeconds);
    const std::uint16_t flowId = spec.flowId;
    util::RandomStream flowRng = util::RandomStream{options.seed}.derive("flow");
    ditg::ItgSend sender{sim, *sendSocket.value(), std::move(spec), tb.inriaEthAddress(), 9001,
                         std::move(flowRng)};

    const sim::SimTime flowStart = sim.now();
    sender.start();
    // Run the flow plus a drain tail (RLC buffer + ACK round trips).
    sim.runUntil(flowStart + sim::seconds(options.durationSeconds) + sim::seconds(10.0));

    run.series = ditg::ItgDec::decode(sender.log(), receiver.log(flowId),
                                      options.windowSeconds);
    run.summary = ditg::ItgDec::summarize(sender.log(), receiver.log(flowId));
    run.packetsSent = sender.packetsSent();
    run.packetsReceived = receiver.packetsReceived();
    if (run.upgradeTimeSeconds >= 0.0)
        run.upgradeTimeSeconds -= sim::toSeconds(flowStart);

    if (path == PathKind::umts_to_ethernet) (void)tb.stopUmts();
    return run;
}

ExperimentResult runExperiment(const ExperimentOptions& options) {
    const bool telemetry = !options.telemetryDir.empty();
    if (telemetry) {
        obs::beginRun();
        // Same-seed runs must reproduce byte-identical telemetry; the
        // LCP magic entropy is the one process-global the link layer
        // folds into its wire bytes (via ACCM byte-stuffing).
        ppp::resetMagicEntropy();
    }

    ExperimentResult result;
    result.workload = options.workload;
    result.durationSeconds = options.durationSeconds;
    result.umts = runPath(PathKind::umts_to_ethernet, options);
    if (telemetry) obs::Tracer::instance().setThread(2);
    result.ethernet = runPath(PathKind::ethernet_to_ethernet, options);

    if (telemetry) {
        obs::Tracer::instance().setEnabled(false);
        const auto written = obs::writeTelemetry(options.telemetryDir);
        if (!written.ok())
            throw std::runtime_error("telemetry export failed: " + written.error().message);
    }
    return result;
}

}  // namespace onelab::scenario
