#pragma once

#include "ditg/decoder.hpp"
#include "ditg/flow.hpp"
#include "ditg/receiver.hpp"
#include "ditg/sender.hpp"
#include "scenario/testbed.hpp"

namespace onelab::scenario {

/// The two traffic classes of §3.1.
enum class Workload { voip_g711, cbr_1mbps };

/// The two end-to-end paths the paper compares.
enum class PathKind { umts_to_ethernet, ethernet_to_ethernet };

[[nodiscard]] const char* workloadName(Workload workload) noexcept;
[[nodiscard]] const char* pathName(PathKind path) noexcept;

/// Outcome of driving one workload over one path.
struct PathRun {
    ditg::QosSeries series;
    ditg::QosSummary summary;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsReceived = 0;
    // UMTS-path extras:
    bool umtsUsed = false;
    net::Ipv4Address umtsAddress;
    std::string operatorName;
    int bearerUpgrades = 0;
    double upgradeTimeSeconds = -1.0;  ///< relative to flow start; -1 = none
};

/// A full §3 experiment: one workload over both paths.
struct ExperimentResult {
    Workload workload{};
    double durationSeconds = 0.0;
    PathRun umts;
    PathRun ethernet;
};

/// Options for the proof-of-concept characterization experiment.
struct ExperimentOptions {
    Workload workload = Workload::voip_g711;
    double durationSeconds = 120.0;
    double windowSeconds = 0.2;
    std::uint64_t seed = 42;
    TestbedConfig testbed;  ///< testbed.seed is overridden by `seed`
    /// When non-empty, runExperiment() arms the obs subsystem (fresh
    /// registry + enabled tracer) and dumps metrics.json plus a Chrome
    /// trace.json into this directory at the end of the run. The UMTS
    /// path records on trace lane (tid) 1, the Ethernet path on lane 2.
    std::string telemetryDir;
};

/// Build the FlowSpec for a workload.
[[nodiscard]] ditg::FlowSpec makeWorkload(Workload workload, double durationSeconds);

/// Drive one workload over one path on a fresh testbed. For the UMTS
/// path this performs the full §2 workflow: vsys `umts start`, `umts
/// add destination <receiver>`, traffic, `umts stop`.
[[nodiscard]] PathRun runPath(PathKind path, const ExperimentOptions& options);

/// Run the workload over both paths (paper §3.2): same seed, two
/// independent testbeds, directly comparable series.
[[nodiscard]] ExperimentResult runExperiment(const ExperimentOptions& options);

}  // namespace onelab::scenario
