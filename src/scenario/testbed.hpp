#pragma once

#include <memory>

#include "scenario/fleet.hpp"
#include "scenario/site.hpp"

namespace onelab::scenario {

/// Testbed parameters. Defaults reproduce the paper's §3 setup: a
/// UMTS-equipped PlanetLab node in Napoli, an Ethernet-connected node
/// at INRIA (Sophia Antipolis), the commercial Italian operator, and a
/// GEANT-class wired path between the sites.
struct TestbedConfig {
    std::uint64_t seed = 42;
    umts::OperatorProfile operatorProfile = umts::commercialItalianOperator();
    CardKind card = CardKind::huawei_e620;
    std::string simPin = "1234";
    /// PIN the backend's comgt config uses; empty = same as simPin.
    /// Tests set a wrong value to exercise the misconfiguration path.
    std::string backendPinOverride;

    sim::SimTime ethTransitOneWay = sim::millis(9);   ///< Napoli <-> INRIA
    sim::SimTime ggsnTransitOneWay = sim::millis(6);  ///< operator core <-> INRIA
    double ethJitterStddevMillis = 0.06;
    double ethAccessRateBps = 100e6;

    std::string umtsSliceName = "unina_umts";
    std::string otherSliceName = "unina_other";
    std::string inriaSliceName = "inria_recv";

    /// Enable CCP (deflate-style) on the dial-up link — off by
    /// default, as in the paper's setup; the compression ablation
    /// bench turns it on.
    bool dialerCompression = false;

    /// Extra kernel modules `umts start` must modprobe (tests use this
    /// to exercise driver-load failures, e.g. the vanilla nozomi).
    std::vector<std::string> extraRequiredModules;

    /// Link supervision on the Napoli node (off by default; the golden
    /// figure tests verify enabling it is a no-op on a fault-free run).
    UmtsNodeSiteConfig::Supervise supervise;
};

/// The Private OneLab testbed in miniature: two PlanetLab nodes on the
/// wired Internet, a UMTS operator network, a data card on the Napoli
/// node's TTY, and the umts vsys extension installed and ACL'ed. Every
/// component is the real module; nothing here is a shortcut around the
/// production code paths.
///
/// Since the fleet refactor this is a thin two-node façade over a
/// 1-UE / 1-wired-site Fleet: the same builders that compose N-UE
/// shared-cell fleets compose this, and every accessor simply
/// forwards. Existing tests and benches compile and behave unchanged.
class Testbed {
  public:
    explicit Testbed(TestbedConfig config = {});
    ~Testbed();

    Testbed(const Testbed&) = delete;
    Testbed& operator=(const Testbed&) = delete;

    [[nodiscard]] sim::Simulator& sim() noexcept { return fleet_->sim(); }
    [[nodiscard]] net::Internet& internet() noexcept { return fleet_->internet(); }
    [[nodiscard]] umts::UmtsNetwork& operatorNetwork() noexcept {
        return fleet_->operatorNetwork();
    }
    [[nodiscard]] pl::NodeOs& napoli() noexcept { return fleet_->umtsSite(0).node(); }
    [[nodiscard]] pl::NodeOs& inria() noexcept { return fleet_->wiredSite(0).node(); }
    [[nodiscard]] modem::UmtsModem& card() noexcept { return fleet_->umtsSite(0).card(); }
    [[nodiscard]] umtsctl::UmtsBackend& backend() noexcept {
        return fleet_->umtsSite(0).backend();
    }

    /// The experiment slice on the Napoli node (in the umts ACL).
    [[nodiscard]] pl::Slice& umtsSlice() noexcept { return fleet_->umtsSite(0).umtsSlice(); }
    /// A second slice, NOT entitled to the UMTS interface.
    [[nodiscard]] pl::Slice& otherSlice() noexcept {
        return *fleet_->umtsSite(0).slice(config_.otherSliceName);
    }
    /// Receiver slice on the INRIA node.
    [[nodiscard]] pl::Slice& inriaSlice() noexcept {
        return fleet_->wiredSite(0).firstSlice();
    }

    /// Frontend for the umts slice.
    [[nodiscard]] umtsctl::UmtsFrontend& umtsCommand() noexcept {
        return fleet_->umtsSite(0).frontend();
    }

    [[nodiscard]] net::Ipv4Address napoliEthAddress() const noexcept { return napoliEth_; }
    [[nodiscard]] net::Ipv4Address inriaEthAddress() const noexcept { return inriaEth_; }

    [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }

    /// The underlying one-UE fleet (for tests that grow the scenario).
    [[nodiscard]] Fleet& fleet() noexcept { return *fleet_; }

    // --- synchronous drivers (run the simulator until completion) ---

    /// `umts start` + wait. Returns the connection report.
    util::Result<umtsctl::UmtsReport> startUmts(sim::SimTime timeout = sim::seconds(60.0)) {
        return fleet_->startUmts(0, timeout);
    }
    /// `umts add destination` + wait.
    util::Result<void> addUmtsDestination(const std::string& destination,
                                          sim::SimTime timeout = sim::seconds(5.0)) {
        return fleet_->addUmtsDestination(0, destination, timeout);
    }
    /// `umts stop` + wait.
    util::Result<void> stopUmts(sim::SimTime timeout = sim::seconds(10.0)) {
        return fleet_->stopUmts(0, timeout);
    }

  private:
    TestbedConfig config_;
    std::unique_ptr<Fleet> fleet_;
    net::Ipv4Address napoliEth_{143, 225, 229, 10};
    net::Ipv4Address inriaEth_{138, 96, 250, 20};
};

}  // namespace onelab::scenario
