#pragma once

#include <memory>

#include "modem/cards.hpp"
#include "net/internet.hpp"
#include "pl/node_os.hpp"
#include "umts/network.hpp"
#include "umtsctl/backend.hpp"
#include "umtsctl/frontend.hpp"

namespace onelab::scenario {

/// Which UMTS card sits in the Napoli node.
enum class CardKind { globetrotter, huawei_e620 };

/// Testbed parameters. Defaults reproduce the paper's §3 setup: a
/// UMTS-equipped PlanetLab node in Napoli, an Ethernet-connected node
/// at INRIA (Sophia Antipolis), the commercial Italian operator, and a
/// GEANT-class wired path between the sites.
struct TestbedConfig {
    std::uint64_t seed = 42;
    umts::OperatorProfile operatorProfile = umts::commercialItalianOperator();
    CardKind card = CardKind::huawei_e620;
    std::string simPin = "1234";
    /// PIN the backend's comgt config uses; empty = same as simPin.
    /// Tests set a wrong value to exercise the misconfiguration path.
    std::string backendPinOverride;

    sim::SimTime ethTransitOneWay = sim::millis(9);   ///< Napoli <-> INRIA
    sim::SimTime ggsnTransitOneWay = sim::millis(6);  ///< operator core <-> INRIA
    double ethJitterStddevMillis = 0.06;
    double ethAccessRateBps = 100e6;

    std::string umtsSliceName = "unina_umts";
    std::string otherSliceName = "unina_other";
    std::string inriaSliceName = "inria_recv";

    /// Enable CCP (deflate-style) on the dial-up link — off by
    /// default, as in the paper's setup; the compression ablation
    /// bench turns it on.
    bool dialerCompression = false;

    /// Extra kernel modules `umts start` must modprobe (tests use this
    /// to exercise driver-load failures, e.g. the vanilla nozomi).
    std::vector<std::string> extraRequiredModules;
};

/// The Private OneLab testbed in miniature: two PlanetLab nodes on the
/// wired Internet, a UMTS operator network, a data card on the Napoli
/// node's TTY, and the umts vsys extension installed and ACL'ed. Every
/// component is the real module; nothing here is a shortcut around the
/// production code paths.
class Testbed {
  public:
    explicit Testbed(TestbedConfig config = {});
    ~Testbed();

    Testbed(const Testbed&) = delete;
    Testbed& operator=(const Testbed&) = delete;

    [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] net::Internet& internet() noexcept { return *internet_; }
    [[nodiscard]] umts::UmtsNetwork& operatorNetwork() noexcept { return *operator_; }
    [[nodiscard]] pl::NodeOs& napoli() noexcept { return *napoli_; }
    [[nodiscard]] pl::NodeOs& inria() noexcept { return *inria_; }
    [[nodiscard]] modem::UmtsModem& card() noexcept { return *modem_; }
    [[nodiscard]] umtsctl::UmtsBackend& backend() noexcept { return *backend_; }

    /// The experiment slice on the Napoli node (in the umts ACL).
    [[nodiscard]] pl::Slice& umtsSlice() noexcept { return *umtsSlice_; }
    /// A second slice, NOT entitled to the UMTS interface.
    [[nodiscard]] pl::Slice& otherSlice() noexcept { return *otherSlice_; }
    /// Receiver slice on the INRIA node.
    [[nodiscard]] pl::Slice& inriaSlice() noexcept { return *inriaSlice_; }

    /// Frontend for the umts slice.
    [[nodiscard]] umtsctl::UmtsFrontend& umtsCommand() noexcept { return *frontend_; }

    [[nodiscard]] net::Ipv4Address napoliEthAddress() const noexcept { return napoliEth_; }
    [[nodiscard]] net::Ipv4Address inriaEthAddress() const noexcept { return inriaEth_; }

    [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }

    // --- synchronous drivers (run the simulator until completion) ---

    /// `umts start` + wait. Returns the connection report.
    util::Result<umtsctl::UmtsReport> startUmts(sim::SimTime timeout = sim::seconds(60.0));
    /// `umts add destination` + wait.
    util::Result<void> addUmtsDestination(const std::string& destination,
                                          sim::SimTime timeout = sim::seconds(5.0));
    /// `umts stop` + wait.
    util::Result<void> stopUmts(sim::SimTime timeout = sim::seconds(10.0));

  private:
    TestbedConfig config_;
    sim::Simulator sim_;
    util::RandomStream rng_;
    std::unique_ptr<net::Internet> internet_;
    std::unique_ptr<umts::UmtsNetwork> operator_;
    std::unique_ptr<pl::NodeOs> napoli_;
    std::unique_ptr<pl::NodeOs> inria_;
    std::unique_ptr<sim::Pipe> tty_;
    std::unique_ptr<modem::UmtsModem> modem_;
    std::unique_ptr<umtsctl::UmtsBackend> backend_;
    std::unique_ptr<umtsctl::UmtsFrontend> frontend_;
    pl::Slice* umtsSlice_ = nullptr;
    pl::Slice* otherSlice_ = nullptr;
    pl::Slice* inriaSlice_ = nullptr;
    net::Ipv4Address napoliEth_{143, 225, 229, 10};
    net::Ipv4Address inriaEth_{138, 96, 250, 20};
};

}  // namespace onelab::scenario
