#pragma once

#include <memory>
#include <string>
#include <vector>

#include "guard/slice_guard.hpp"
#include "modem/cards.hpp"
#include "net/internet.hpp"
#include "pl/node_os.hpp"
#include "supervise/supervisor.hpp"
#include "umts/network.hpp"
#include "umtsctl/backend.hpp"
#include "umtsctl/frontend.hpp"

namespace onelab::sim {
class SimShard;
}

namespace onelab::scenario {

/// Which UMTS card sits in a UMTS-equipped node.
enum class CardKind { globetrotter, huawei_e620 };

/// Shard placement for a site in a sharded fleet: the node stack
/// (NodeOs, backend, frontend, supervisor, host pppd) lives on
/// `siteShard`; the modem — like the operator network and the wired
/// Internet hub it talks to synchronously — lives on `coreShard`.
/// The TTY pipe and the Ethernet access link are the only cut edges,
/// each paying `cutLatency` through the mailbox pair. All fields left
/// default (the serial fleet) wire everything onto one simulator,
/// byte-identical to the pre-shard code path.
struct SiteShardSlot {
    sim::SimShard* siteShard = nullptr;
    sim::SimShard* coreShard = nullptr;
    sim::ShardPost postToSite;  ///< core -> site mailbox
    sim::ShardPost postToCore;  ///< site -> core mailbox
    sim::SimTime cutLatency{0};
};

/// Ethernet access-link parameters shared by both site kinds.
struct EthernetParams {
    double accessRateBps = 100e6;
    double jitterStddevMillis = 0.06;
};

// --------------------------------------------------------- wired site

struct WiredSiteConfig {
    std::string hostname;
    net::Ipv4Address address;
    /// Slices created on the node, in order.
    std::vector<std::string> sliceNames;
    EthernetParams ethernet;
};

/// An Ethernet-connected PlanetLab site: a NodeOs wired into the
/// Internet with a default route over eth0 and its slices created.
class WiredSite {
  public:
    /// `ethPort` non-default makes the eth access link a shard cut
    /// (the node lives on `simulator`'s shard, the Internet hub on
    /// the core shard).
    WiredSite(sim::Simulator& simulator, net::Internet& internet, WiredSiteConfig config,
              net::ShardPort ethPort = {});

    WiredSite(const WiredSite&) = delete;
    WiredSite& operator=(const WiredSite&) = delete;

    [[nodiscard]] pl::NodeOs& node() noexcept { return *node_; }
    [[nodiscard]] net::Interface& eth() noexcept { return *eth_; }
    [[nodiscard]] net::Ipv4Address address() const noexcept { return config_.address; }
    [[nodiscard]] const std::string& hostname() const noexcept { return config_.hostname; }

    /// Slice by name; nullptr when the config did not create it.
    [[nodiscard]] pl::Slice* slice(const std::string& name) noexcept;
    /// The first configured slice (the usual receiver slice).
    [[nodiscard]] pl::Slice& firstSlice() noexcept { return *slices_.front(); }

  private:
    WiredSiteConfig config_;
    std::unique_ptr<pl::NodeOs> node_;
    net::Interface* eth_ = nullptr;
    std::vector<pl::Slice*> slices_;
};

// ---------------------------------------------------- UMTS node site

struct UmtsNodeSiteConfig {
    std::string hostname = "planetlab1.unina.it";
    net::Ipv4Address ethAddress{143, 225, 229, 10};
    /// The SIM identity; also the bearer's per-instance metric prefix
    /// ("umts.bearer.<imsi>.*") and therefore unique per fleet.
    std::string imsi = "222880000000001";
    CardKind card = CardKind::huawei_e620;
    std::string simPin = "1234";
    /// PIN the backend's comgt config uses; empty = same as simPin.
    std::string backendPinOverride;
    std::string umtsSliceName = "unina_umts";
    /// Further slices on the node (NOT added to the umts vsys ACL).
    std::vector<std::string> extraSliceNames;
    bool dialerCompression = false;
    std::vector<std::string> extraRequiredModules;
    /// Tag the dialer seed is derived from the fleet root stream with.
    /// Must be unique per site; the default reproduces the historical
    /// single-node testbed stream.
    std::string dialerSeedTag = "dialer";
    EthernetParams ethernet;
    /// Backend auto-redial policy after unexpected link loss. Off by
    /// default (historic behaviour); chaos runs turn it on so drops
    /// recover instead of staying down.
    umtsctl::UmtsBackendConfig::AutoRedial autoRedial;
    /// Per-slice admission control on the umts vsys FIFO (rate +
    /// queue-depth guard at the trust boundary). The defaults are
    /// lenient; set `fifoGuard.enabled = false` to reproduce the
    /// unguarded historic backend.
    guard::SliceFifoGuardConfig fifoGuard;
    /// Per-site link supervision (subsumes autoRedial when enabled:
    /// the supervisor owns recovery and the backend's own auto-redial
    /// is ignored). Turns on the dialer's adaptive LCP keepalive.
    struct Supervise {
        bool enable = false;
        /// Dialer keepalive (pppd lcp-echo-interval / lcp-echo-failure).
        sim::SimTime echoInterval = sim::seconds(10.0);
        int echoFailureLimit = 3;
        /// Supervisor tuning. `name`/`seed` left at their defaults are
        /// filled in per site (IMSI, derived stream).
        supervise::SupervisorConfig config;
    };
    Supervise supervise;
};

/// A UMTS-equipped PlanetLab site — the paper's full Napoli bundle:
/// NodeOs with a wired eth0, the data card on its TTY, the `umts`
/// backend with its vsys entry ACL'ed to the experiment slice, and a
/// frontend bound to that slice. Construction composes exactly the
/// pieces the monolithic testbed used to wire by hand.
class UmtsNodeSite {
  public:
    /// `simulator` is the site's own simulator (the shared fleet
    /// simulator in the serial fleet; the site shard's in a sharded
    /// one — in which case `slot` carries the core-shard wiring).
    UmtsNodeSite(sim::Simulator& simulator, net::Internet& internet,
                 umts::UmtsNetwork& operatorNetwork, const util::RandomStream& rootRng,
                 UmtsNodeSiteConfig config, SiteShardSlot slot = {});
    ~UmtsNodeSite();

    UmtsNodeSite(const UmtsNodeSite&) = delete;
    UmtsNodeSite& operator=(const UmtsNodeSite&) = delete;

    [[nodiscard]] pl::NodeOs& node() noexcept { return *node_; }
    /// The site's own simulator (the site shard's in a sharded fleet).
    /// Anything that pokes the node stack or the host end of the TTY
    /// from outside — e.g. an adversary personality — must schedule
    /// its events here, not on the fleet's core simulator.
    [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] net::Interface& eth() noexcept { return *eth_; }
    [[nodiscard]] net::Ipv4Address ethAddress() const noexcept { return config_.ethAddress; }
    [[nodiscard]] const std::string& hostname() const noexcept { return config_.hostname; }
    [[nodiscard]] const std::string& imsi() const noexcept { return config_.imsi; }
    [[nodiscard]] modem::UmtsModem& card() noexcept { return *modem_; }
    /// The serial line between backend and card — exposed so fault
    /// injection can corrupt/stall bytes on the wire.
    [[nodiscard]] sim::Pipe& tty() noexcept { return *tty_; }
    [[nodiscard]] umtsctl::UmtsBackend& backend() noexcept { return *backend_; }
    [[nodiscard]] umtsctl::UmtsFrontend& frontend() noexcept { return *frontend_; }
    /// The vsys FIFO guard installed on this node's "umts" script.
    [[nodiscard]] guard::SliceFifoGuard& fifoGuard() noexcept { return *fifoGuard_; }
    /// The site's link supervisor; nullptr unless config.supervise.enable.
    [[nodiscard]] supervise::LinkSupervisor* supervisor() noexcept {
        return supervisor_.get();
    }
    [[nodiscard]] pl::Slice& umtsSlice() noexcept { return *umtsSlice_; }
    [[nodiscard]] pl::Slice* slice(const std::string& name) noexcept;

    // --- synchronous drivers (run the simulator until completion) ---
    util::Result<umtsctl::UmtsReport> startUmts(sim::SimTime timeout = sim::seconds(60.0));
    util::Result<void> addUmtsDestination(const std::string& destination,
                                          sim::SimTime timeout = sim::seconds(5.0));
    util::Result<void> stopUmts(sim::SimTime timeout = sim::seconds(10.0));

    /// Replace the synchronous drivers' pump: a sharded fleet must
    /// advance the whole shard group, not this site's simulator alone.
    /// Defaults pump `simulator` directly.
    void setDriverPump(std::function<sim::SimTime()> now,
                       std::function<void(sim::SimTime)> runUntil);

  private:
    UmtsNodeSiteConfig config_;
    SiteShardSlot slot_;
    std::function<sim::SimTime()> pumpNow_;
    std::function<void(sim::SimTime)> pumpRunUntil_;
    sim::Simulator& sim_;
    std::unique_ptr<pl::NodeOs> node_;
    net::Interface* eth_ = nullptr;
    std::unique_ptr<sim::Pipe> tty_;
    std::unique_ptr<modem::UmtsModem> modem_;
    std::unique_ptr<umtsctl::UmtsBackend> backend_;
    std::unique_ptr<guard::SliceFifoGuard> fifoGuard_;
    std::unique_ptr<umtsctl::UmtsFrontend> frontend_;
    /// Declared after backend_/modem_ (and destroyed first): the
    /// supervisor unhooks its backend/pppd callbacks on destruction.
    std::unique_ptr<supervise::LinkSupervisor> supervisor_;
    pl::Slice* umtsSlice_ = nullptr;
    std::vector<pl::Slice*> extraSlices_;
};

/// Wire a node's eth0 into the Internet with a default route — shared
/// by both site kinds. A non-default `port` marks the access link as
/// a shard cut (the node is on a different shard than the hub).
net::Interface& wireEthernet(pl::NodeOs& node, net::Internet& internet,
                             net::Ipv4Address address, const EthernetParams& params,
                             net::ShardPort port = {});

}  // namespace onelab::scenario
