#include "scenario/fleet.hpp"

#include "ditg/receiver.hpp"
#include "ditg/sender.hpp"
#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace onelab::scenario {

FleetConfig makeUniformFleet(std::size_t ueCount, std::uint64_t seed,
                             umts::OperatorProfile profile) {
    FleetConfig config;
    config.seed = seed;
    config.operatorProfile = std::move(profile);
    for (std::size_t i = 0; i < ueCount; ++i) {
        UmtsNodeSiteConfig site;
        site.hostname = "planetlab" + std::to_string(i + 1) + ".unina.it";
        site.ethAddress = net::Ipv4Address{143, 225, 229, std::uint8_t(10 + i)};
        // IMSIs count up from the historic single-node identity.
        site.imsi = "22288000000000" + std::to_string(1 + i);
        site.umtsSliceName = "unina_umts";
        site.dialerSeedTag = i == 0 ? "dialer" : "dialer-" + std::to_string(i);
        config.umtsSites.push_back(std::move(site));
    }
    WiredSiteConfig receiver;
    receiver.hostname = "planetlab1.inria.fr";
    receiver.address = net::Ipv4Address{138, 96, 250, 20};
    receiver.sliceNames = {"inria_recv"};
    config.wiredSites.push_back(std::move(receiver));
    return config;
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)), rng_(config_.seed) {
    // Registered up front so a telemetry export carries the family
    // (zero included) whether or not a bring-up ever failed.
    (void)obs::Registry::instance().counter("fleet.start_failures");
    internet_ = std::make_unique<net::Internet>(sim_, rng_.derive("internet"));
    operator_ = std::make_unique<umts::UmtsNetwork>(sim_, *internet_, config_.operatorProfile,
                                                    rng_.derive("operator"));

    for (const UmtsNodeSiteConfig& siteConfig : config_.umtsSites)
        umtsSites_.push_back(
            std::make_unique<UmtsNodeSite>(sim_, *internet_, *operator_, rng_, siteConfig));
    for (const WiredSiteConfig& siteConfig : config_.wiredSites)
        wiredSites_.push_back(std::make_unique<WiredSite>(sim_, *internet_, siteConfig));

    // Wired transit delays between every site pair (and the operator's
    // core toward each). Ordered UE x wired first to match the
    // two-node testbed's historical call sequence exactly.
    for (auto& ue : umtsSites_)
        for (auto& wired : wiredSites_)
            internet_->setTransitDelay(ue->eth(), wired->eth(), config_.ethTransitOneWay);
    for (std::size_t i = 0; i < umtsSites_.size(); ++i)
        for (std::size_t k = i + 1; k < umtsSites_.size(); ++k)
            internet_->setTransitDelay(umtsSites_[i]->eth(), umtsSites_[k]->eth(),
                                       config_.ethTransitOneWay);
    for (std::size_t i = 0; i < wiredSites_.size(); ++i)
        for (std::size_t k = i + 1; k < wiredSites_.size(); ++k)
            internet_->setTransitDelay(wiredSites_[i]->eth(), wiredSites_[k]->eth(),
                                       config_.ethTransitOneWay);
    for (auto& wired : wiredSites_)
        internet_->setTransitDelay(operator_->wanInterface(), wired->eth(),
                                   config_.ggsnTransitOneWay);
    for (auto& ue : umtsSites_)
        internet_->setTransitDelay(operator_->wanInterface(), ue->eth(),
                                   config_.ggsnTransitOneWay);

    // The operator's resolver knows every fleet hostname.
    for (auto& ue : umtsSites_) operator_->addDnsRecord(ue->hostname(), ue->ethAddress());
    for (auto& wired : wiredSites_)
        operator_->addDnsRecord(wired->hostname(), wired->address());
}

Fleet::~Fleet() {
    // Give external layers (fault injectors, monitors) a chance to
    // cancel simulator events aimed at fleet members before the sites
    // those events reference are destroyed.
    for (auto it = teardownHooks_.rbegin(); it != teardownHooks_.rend(); ++it)
        if (*it) (*it)();
    teardownHooks_.clear();
}

void Fleet::addTeardownHook(std::function<void()> hook) {
    teardownHooks_.push_back(std::move(hook));
}

util::Result<umtsctl::UmtsReport> Fleet::startUmts(std::size_t index, sim::SimTime timeout) {
    return umtsSites_.at(index)->startUmts(timeout);
}

util::Result<void> Fleet::startAll(sim::SimTime timeout) {
    std::vector<std::optional<util::Result<umtsctl::UmtsReport>>> outcomes(umtsSites_.size());
    for (std::size_t i = 0; i < umtsSites_.size(); ++i)
        umtsSites_[i]->frontend().start(
            [&outcomes, i](util::Result<umtsctl::UmtsReport> result) {
                outcomes[i] = std::move(result);
            });
    const sim::SimTime deadline = sim_.now() + timeout;
    const auto allDone = [&outcomes] {
        for (const auto& outcome : outcomes)
            if (!outcome) return false;
        return true;
    };
    while (!allDone() && sim_.now() < deadline) sim_.runUntil(sim_.now() + sim::millis(100));
    // Collect every site's bring-up failure instead of aborting on the
    // first one: the sites that DID come up stay up and usable, and
    // the caller gets the full damage report in one message.
    std::vector<std::string> failures;
    util::Error::Code code = util::Error::Code::io;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i]) {
            failures.push_back(umtsSites_[i]->hostname() + ": start timed out");
            code = util::Error::Code::timeout;
            obs::Registry::instance().counter("fleet.start_failures").inc();
        } else if (!outcomes[i]->ok()) {
            failures.push_back(umtsSites_[i]->hostname() + ": " +
                               outcomes[i]->error().message);
            code = outcomes[i]->error().code;
            obs::Registry::instance().counter("fleet.start_failures").inc();
        }
    }
    if (failures.empty()) return util::Result<void>{};
    std::string message = std::to_string(failures.size()) + "/" +
                          std::to_string(outcomes.size()) + " sites failed to start: ";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (i) message += "; ";
        message += failures[i];
    }
    // A failed bring-up is a dump trigger: freeze the black box with
    // the per-site failures on record before the caller bails out.
    if (auto* recorder = obs::FlightRecorder::currentIfEnabled()) {
        for (const std::string& failure : failures)
            recorder->note(obs::FlightKind::event, "fleet", "start_failure", failure);
        recorder->requestDump("fleet bring-up failed: " + message);
    }
    return util::err(code, message);
}

util::Result<void> Fleet::addUmtsDestination(std::size_t index, const std::string& destination,
                                             sim::SimTime timeout) {
    return umtsSites_.at(index)->addUmtsDestination(destination, timeout);
}

util::Result<void> Fleet::addDestinationAll(sim::SimTime timeout) {
    if (wiredSites_.empty())
        return util::err(util::Error::Code::state, "fleet has no wired receiver site");
    const std::string destination = wiredSites_.front()->address().str() + "/32";
    for (auto& ue : umtsSites_) {
        const auto added = ue->addUmtsDestination(destination, timeout);
        if (!added.ok())
            return util::err(added.error().code,
                             ue->hostname() + ": " + added.error().message);
    }
    return util::Result<void>{};
}

util::Result<void> Fleet::stopUmts(std::size_t index, sim::SimTime timeout) {
    return umtsSites_.at(index)->stopUmts(timeout);
}

FleetCbrRun Fleet::runCbr(std::size_t index, double durationSeconds, double windowSeconds) {
    return runCbrOnSites({index}, durationSeconds, windowSeconds).front();
}

std::vector<FleetCbrRun> Fleet::runCbrAll(double durationSeconds, double windowSeconds) {
    std::vector<std::size_t> indices(umtsSites_.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    return runCbrOnSites(indices, durationSeconds, windowSeconds);
}

std::vector<FleetCbrRun> Fleet::runCbrOnSites(const std::vector<std::size_t>& indices,
                                              double durationSeconds, double windowSeconds) {
    // Wave bookkeeping (flow/socket setup, log decode, teardown) is
    // real CPU work outside the event loop; the sim time nested below
    // subtracts itself, leaving the bookkeeping as this scope's self.
    obs::ProfileScope waveScope(obs::ProfileCategory::ditg_decode);
    if (wiredSites_.empty()) throw std::runtime_error("fleet has no wired receiver site");
    WiredSite& receiverSite = *wiredSites_.front();

    auto recvSocket = receiverSite.node().openSliceUdp(receiverSite.firstSlice(), 9001);
    if (!recvSocket.ok())
        throw std::runtime_error("receiver socket: " + recvSocket.error().message);
    ditg::ItgRecv receiver{*recvSocket.value()};

    struct ActiveFlow {
        std::size_t siteIndex;
        std::uint16_t flowId;
        net::UdpSocket* socket;
        std::unique_ptr<ditg::ItgSend> sender;
    };
    std::vector<ActiveFlow> flows;
    flows.reserve(indices.size());
    for (const std::size_t index : indices) {
        UmtsNodeSite& site = *umtsSites_.at(index);
        auto sendSocket = site.node().openSliceUdp(site.umtsSlice());
        if (!sendSocket.ok())
            throw std::runtime_error(site.hostname() + " sender socket: " +
                                     sendSocket.error().message);
        // One flow id per site so a single receiver log disambiguates.
        const auto flowId = std::uint16_t(10 + index);
        ditg::FlowSpec spec = ditg::cbr1MbpsFlow(flowId, durationSeconds);
        util::RandomStream flowRng = rng_.derive("flow@" + site.imsi());
        auto sender = std::make_unique<ditg::ItgSend>(sim_, *sendSocket.value(),
                                                      std::move(spec),
                                                      receiverSite.address(), 9001,
                                                      std::move(flowRng));
        flows.push_back(ActiveFlow{index, flowId, sendSocket.value(), std::move(sender)});
    }

    const sim::SimTime flowStart = sim_.now();
    for (ActiveFlow& flow : flows) flow.sender->start();
    // Run the flows plus a drain tail (RLC buffers + ACK round trips).
    sim_.runUntil(flowStart + sim::seconds(durationSeconds) + sim::seconds(10.0));

    std::vector<FleetCbrRun> runs;
    runs.reserve(flows.size());
    for (ActiveFlow& flow : flows) {
        UmtsNodeSite& site = *umtsSites_[flow.siteIndex];
        FleetCbrRun run;
        run.imsi = site.imsi();
        run.summary = ditg::ItgDec::summarize(flow.sender->log(), receiver.log(flow.flowId));
        (void)windowSeconds;
        run.packetsSent = flow.sender->packetsSent();
        run.packetsReceived = run.summary.received;
        // The live session's bearer knows its contention history.
        for (std::size_t k = 0; k < operator_->activeSessions(); ++k) {
            umts::UmtsSession* session = operator_->sessionAt(k);
            if (!session || session->imsi() != site.imsi()) continue;
            run.bearerUpgrades = session->bearer().upgradeCount();
            run.deniedUpgrades = session->bearer().deniedUpgrades();
            run.admissionTrimmed = session->bearer().admissionTrimmed();
            break;
        }
        runs.push_back(std::move(run));
    }

    // Close the flow sockets: the receiver object dies with this scope
    // (its handler must not fire again), and the next wave re-binds
    // port 9001.
    for (ActiveFlow& flow : flows) {
        UmtsNodeSite& site = *umtsSites_[flow.siteIndex];
        site.node().stack().closeUdp(flow.socket);
    }
    receiverSite.node().stack().closeUdp(recvSocket.value());
    return runs;
}

}  // namespace onelab::scenario
