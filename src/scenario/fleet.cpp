#include "scenario/fleet.hpp"

#include <algorithm>

#include "ditg/receiver.hpp"
#include "ditg/sender.hpp"
#include "ditg/tcp_flow.hpp"
#include "obs/flight.hpp"
#include "obs/merge.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace onelab::scenario {

FleetConfig makeUniformFleet(std::size_t ueCount, std::uint64_t seed,
                             umts::OperatorProfile profile) {
    FleetConfig config;
    config.seed = seed;
    config.operatorProfile = std::move(profile);
    for (std::size_t i = 0; i < ueCount; ++i) {
        UmtsNodeSiteConfig site;
        site.hostname = "planetlab" + std::to_string(i + 1) + ".unina.it";
        site.ethAddress = net::Ipv4Address{143, 225, 229, std::uint8_t(10 + i)};
        // IMSIs count up from the historic single-node identity.
        site.imsi = "22288000000000" + std::to_string(1 + i);
        site.umtsSliceName = "unina_umts";
        site.dialerSeedTag = i == 0 ? "dialer" : "dialer-" + std::to_string(i);
        config.umtsSites.push_back(std::move(site));
    }
    WiredSiteConfig receiver;
    receiver.hostname = "planetlab1.inria.fr";
    receiver.address = net::Ipv4Address{138, 96, 250, 20};
    receiver.sliceNames = {"inria_recv"};
    config.wiredSites.push_back(std::move(receiver));
    return config;
}

std::size_t Fleet::shardOfSite(std::size_t ordinal) const noexcept {
    // The core (Internet hub, operator network, modems) is shard 0;
    // site stacks round-robin over the remaining shards. The mapping
    // never feeds the determinism argument — any partition yields the
    // same timeline — it only balances load.
    if (!group_ || group_->shardCount() == 1) return 0;
    return 1 + ordinal % (group_->shardCount() - 1);
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)), rng_(config_.seed) {
    // Registered up front so a telemetry export carries the family
    // (zero included) whether or not a bring-up ever failed.
    (void)obs::Registry::instance().counter("fleet.start_failures");
    if (config_.shards > 0) {
        // Conservative lookahead: the tightest latency over the cut
        // edges. Every cut pays at least shardCutLatency; wired
        // deliveries (hub -> remote site) pay both access-link base
        // delays plus the pair transit, bounded below by the smaller
        // configured transit. The bound is re-checked against the
        // live topology once every attachment exists (below).
        const sim::SimTime minWired =
            sim::micros(400) + std::min(config_.ethTransitOneWay, config_.ggsnTransitOneWay);
        group_ = std::make_unique<sim::ShardGroup>(
            config_.shards, std::min(config_.shardCutLatency, minWired));
        // Magic-number entropy must not depend on which worker thread
        // runs a bring-up (the thread-local counter does); pin it to
        // per-endpoint seeds instead. Sites do the same for their
        // dialer-side pppd (site.cpp).
        config_.operatorProfile.deterministicLcpMagic = true;
    }
    sim::Simulator& coreSim = group_ ? group_->shard(0).sim() : sim_;
    {
        // Core-side components register their observability in the
        // core shard's bundle — the thread that drives them owns it.
        std::optional<sim::ShardObsScope> coreScope;
        if (group_) coreScope.emplace(group_->shard(0));
        internet_ = std::make_unique<net::Internet>(coreSim, rng_.derive("internet"));
        if (group_) internet_->setShardCutLatency(config_.shardCutLatency);
        operator_ = std::make_unique<umts::UmtsNetwork>(
            coreSim, *internet_, config_.operatorProfile, rng_.derive("operator"));
    }

    const std::size_t umtsCount = config_.umtsSites.size();
    for (std::size_t i = 0; i < umtsCount; ++i) {
        const UmtsNodeSiteConfig& siteConfig = config_.umtsSites[i];
        if (!group_) {
            umtsSites_.push_back(std::make_unique<UmtsNodeSite>(sim_, *internet_, *operator_,
                                                                rng_, siteConfig));
            continue;
        }
        const std::size_t shardIndex = shardOfSite(i);
        sim::SimShard& siteShard = group_->shard(shardIndex);
        SiteShardSlot slot;
        slot.siteShard = &siteShard;
        slot.coreShard = &group_->shard(0);
        slot.cutLatency = config_.shardCutLatency;
        // Mailbox ranks derive from the fleet-wide site ordinal, never
        // the shard layout, so same-timestamp drain merges order
        // identically for every shard count.
        slot.postToCore = group_->makePort(0, siteConfig.hostname + "->core", 2 * i + 1);
        slot.postToSite =
            group_->makePort(shardIndex, "core->" + siteConfig.hostname, 2 * i + 2);
        umtsShard_.push_back(shardIndex);
        sim::ShardObsScope scope(siteShard);
        umtsSites_.push_back(std::make_unique<UmtsNodeSite>(
            siteShard.sim(), *internet_, *operator_, rng_, siteConfig, std::move(slot)));
        UmtsNodeSite& site = *umtsSites_.back();
        site.setDriverPump([this] { return group_->now(); },
                           [this](sim::SimTime until) { group_->runUntil(until); });
    }
    for (std::size_t i = 0; i < config_.wiredSites.size(); ++i) {
        const WiredSiteConfig& siteConfig = config_.wiredSites[i];
        if (!group_) {
            wiredSites_.push_back(std::make_unique<WiredSite>(sim_, *internet_, siteConfig));
            continue;
        }
        const std::size_t ordinal = umtsCount + i;
        const std::size_t shardIndex = shardOfSite(ordinal);
        sim::SimShard& siteShard = group_->shard(shardIndex);
        net::ShardPort port;
        port.sim = &siteShard.sim();
        port.postIn =
            group_->makePort(shardIndex, "core->" + siteConfig.hostname, 2 * ordinal + 2);
        port.postToHub = group_->makePort(0, siteConfig.hostname + "->core", 2 * ordinal + 1);
        wiredShard_.push_back(shardIndex);
        sim::ShardObsScope scope(siteShard);
        wiredSites_.push_back(
            std::make_unique<WiredSite>(siteShard.sim(), *internet_, siteConfig,
                                        std::move(port)));
    }

    // Wired transit delays between every site pair (and the operator's
    // core toward each). Ordered UE x wired first to match the
    // two-node testbed's historical call sequence exactly.
    for (auto& ue : umtsSites_)
        for (auto& wired : wiredSites_)
            internet_->setTransitDelay(ue->eth(), wired->eth(), config_.ethTransitOneWay);
    for (std::size_t i = 0; i < umtsSites_.size(); ++i)
        for (std::size_t k = i + 1; k < umtsSites_.size(); ++k)
            internet_->setTransitDelay(umtsSites_[i]->eth(), umtsSites_[k]->eth(),
                                       config_.ethTransitOneWay);
    for (std::size_t i = 0; i < wiredSites_.size(); ++i)
        for (std::size_t k = i + 1; k < wiredSites_.size(); ++k)
            internet_->setTransitDelay(wiredSites_[i]->eth(), wiredSites_[k]->eth(),
                                       config_.ethTransitOneWay);
    for (auto& wired : wiredSites_)
        internet_->setTransitDelay(operator_->wanInterface(), wired->eth(),
                                   config_.ggsnTransitOneWay);
    for (auto& ue : umtsSites_)
        internet_->setTransitDelay(operator_->wanInterface(), ue->eth(),
                                   config_.ggsnTransitOneWay);

    // The operator's resolver knows every fleet hostname.
    for (auto& ue : umtsSites_) operator_->addDnsRecord(ue->hostname(), ue->ethAddress());
    for (auto& wired : wiredSites_)
        operator_->addDnsRecord(wired->hostname(), wired->address());

    // The conservative-lookahead safety argument needs every cut edge
    // to carry at least the lookahead; verify against the topology as
    // built rather than trusting the config-time estimate.
    if (group_) {
        const auto minWire = internet_->minDeliveryDelay();
        if (minWire && *minWire < group_->lookahead())
            throw std::runtime_error(
                "fleet shard lookahead exceeds the minimum wired delivery delay");
        // Give the driver thread's ambient log/trace/flight clocks the
        // core shard's sim time: the driver only acts at barriers,
        // where every shard clock agrees, so its own records carry the
        // fleet time instead of zeros.
        group_->shard(0).sim().attachLogClock();
    }
}

util::Result<void> Fleet::writeTelemetry(const std::string& directory) {
    if (!group_) return obs::writeTelemetry(directory);
    obs::Registry& driverRegistry = obs::Registry::instance();
    // Shard-engine throughput, exported as gauges so repeated exports
    // stay idempotent. Every value is partition-independent (windows
    // and mail traffic depend on the event timeline and the cut edges,
    // both fixed by the seed — not on how sites map to shards), so the
    // merged document stays byte-identical across shard counts. The
    // shard count itself is deliberately NOT exported here for that
    // reason; benches report it out-of-band.
    driverRegistry.gauge("sim.shard.windows").set(std::int64_t(group_->windows()));
    driverRegistry.gauge("sim.shard.mail_posted").set(std::int64_t(group_->mailPosted()));
    driverRegistry.gauge("sim.shard.mail_delivered")
        .set(std::int64_t(group_->mailDelivered()));
    driverRegistry.gauge("sim.shard.mail_dropped").set(std::int64_t(group_->mailDropped()));
    driverRegistry.gauge("sim.shard.late_deliveries")
        .set(std::int64_t(group_->lateDeliveries()));
    obs::FlightRecorder::instance().syncMetrics(driverRegistry);
    obs::Profiler::instance().syncMetrics(driverRegistry);

    std::vector<std::vector<obs::MetricSample>> snapshots;
    std::vector<std::vector<obs::TraceEvent>> streams;
    snapshots.push_back(driverRegistry.snapshot());
    streams.push_back(obs::Tracer::instance().events());
    for (std::size_t k = 0; k < group_->shardCount(); ++k) {
        sim::SimShard& shard = group_->shard(k);
        shard.flightRecorder().syncMetrics(shard.registry());
        shard.profiler().syncMetrics(shard.registry());
        snapshots.push_back(shard.registry().snapshot());
        streams.push_back(shard.tracer().events());
        // One black-box fragment per shard; `obsq merge` interleaves
        // them into a single timeline when a human needs one.
        const auto flight = shard.flightRecorder().dump(
            "telemetry export",
            directory + "/flight.shard" + std::to_string(k) + ".json");
        if (!flight.ok()) return flight;
    }
    auto metrics = obs::writeTelemetryText(
        directory, obs::kMetricsFile, obs::metricsJson(obs::mergeMetricSamples(snapshots)));
    if (!metrics.ok()) return metrics;
    auto trace = obs::writeTelemetryText(
        directory, obs::kTraceFile,
        obs::chromeTraceJson(obs::mergeTraceEvents(std::move(streams))));
    if (!trace.ok()) return trace;
    // The profile is a wall-clock artifact (not part of any determinism
    // contract): the driver's window suffices.
    return obs::writeTelemetryText(directory, obs::kProfileFile,
                                   obs::Profiler::instance().exportJson());
}

Fleet::~Fleet() {
    // Give external layers (fault injectors, monitors) a chance to
    // cancel simulator events aimed at fleet members before the sites
    // those events reference are destroyed.
    for (auto it = teardownHooks_.rbegin(); it != teardownHooks_.rend(); ++it)
        if (*it) (*it)();
    teardownHooks_.clear();
    // Quiesce the shard workers and drop in-flight cross-shard mail
    // before any site is destroyed; the shard simulators themselves
    // (declared first) die last, after every object scheduled on them.
    if (group_) group_->shutdown();
}

void Fleet::addTeardownHook(std::function<void()> hook) {
    teardownHooks_.push_back(std::move(hook));
}

util::Result<umtsctl::UmtsReport> Fleet::startUmts(std::size_t index, sim::SimTime timeout) {
    return umtsSites_.at(index)->startUmts(timeout);
}

util::Result<void> Fleet::startAll(sim::SimTime timeout) {
    std::vector<std::optional<util::Result<umtsctl::UmtsReport>>> outcomes(umtsSites_.size());
    for (std::size_t i = 0; i < umtsSites_.size(); ++i) {
        // Sharded: the frontend's synchronous prefix runs on this
        // (driver) thread — point its lazy observability at the shard
        // that owns the site.
        std::optional<sim::ShardObsScope> scope;
        if (group_) scope.emplace(group_->shard(umtsShard_[i]));
        umtsSites_[i]->frontend().start(
            [&outcomes, i](util::Result<umtsctl::UmtsReport> result) {
                outcomes[i] = std::move(result);
            });
    }
    const sim::SimTime deadline = now() + timeout;
    const auto allDone = [&outcomes] {
        for (const auto& outcome : outcomes)
            if (!outcome) return false;
        return true;
    };
    while (!allDone() && now() < deadline) runUntil(now() + sim::millis(100));
    // Collect every site's bring-up failure instead of aborting on the
    // first one: the sites that DID come up stay up and usable, and
    // the caller gets the full damage report in one message. Each
    // entry names the site by fleet index, IMSI and hostname — the
    // three keys an operator greps logs, metrics and configs by.
    std::vector<std::string> failures;
    util::Error::Code code = util::Error::Code::io;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const std::string who = "site " + std::to_string(i) + " (imsi " +
                                umtsSites_[i]->imsi() + ") " + umtsSites_[i]->hostname();
        if (!outcomes[i]) {
            failures.push_back(who + ": start timed out");
            code = util::Error::Code::timeout;
            obs::Registry::instance().counter("fleet.start_failures").inc();
        } else if (!outcomes[i]->ok()) {
            failures.push_back(who + ": " + outcomes[i]->error().message);
            code = outcomes[i]->error().code;
            obs::Registry::instance().counter("fleet.start_failures").inc();
        }
    }
    if (failures.empty()) return util::Result<void>{};
    std::string message = std::to_string(failures.size()) + "/" +
                          std::to_string(outcomes.size()) + " sites failed to start: ";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (i) message += "; ";
        message += failures[i];
    }
    // A failed bring-up is a dump trigger: freeze the black box with
    // the per-site failures on record before the caller bails out.
    if (auto* recorder = obs::FlightRecorder::currentIfEnabled()) {
        for (const std::string& failure : failures)
            recorder->note(obs::FlightKind::event, "fleet", "start_failure", failure);
        recorder->requestDump("fleet bring-up failed: " + message);
    }
    return util::err(code, message);
}

util::Result<void> Fleet::addUmtsDestination(std::size_t index, const std::string& destination,
                                             sim::SimTime timeout) {
    return umtsSites_.at(index)->addUmtsDestination(destination, timeout);
}

util::Result<void> Fleet::addDestinationAll(sim::SimTime timeout) {
    if (wiredSites_.empty())
        return util::err(util::Error::Code::state, "fleet has no wired receiver site");
    const std::string destination = wiredSites_.front()->address().str() + "/32";
    for (auto& ue : umtsSites_) {
        const auto added = ue->addUmtsDestination(destination, timeout);
        if (!added.ok())
            return util::err(added.error().code,
                             ue->hostname() + ": " + added.error().message);
    }
    return util::Result<void>{};
}

util::Result<void> Fleet::stopUmts(std::size_t index, sim::SimTime timeout) {
    return umtsSites_.at(index)->stopUmts(timeout);
}

FleetCbrRun Fleet::runCbr(std::size_t index, double durationSeconds, double windowSeconds) {
    return runCbrOnSites({index}, durationSeconds, windowSeconds).front();
}

std::vector<FleetCbrRun> Fleet::runCbrAll(double durationSeconds, double windowSeconds) {
    std::vector<std::size_t> indices(umtsSites_.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    return runCbrOnSites(indices, durationSeconds, windowSeconds);
}

std::vector<FleetCbrRun> Fleet::runCbrOnSites(const std::vector<std::size_t>& indices,
                                              double durationSeconds, double windowSeconds) {
    // Wave bookkeeping (flow/socket setup, log decode, teardown) is
    // real CPU work outside the event loop; the sim time nested below
    // subtracts itself, leaving the bookkeeping as this scope's self.
    obs::ProfileScope waveScope(obs::ProfileCategory::ditg_decode);
    if (wiredSites_.empty()) throw std::runtime_error("fleet has no wired receiver site");
    WiredSite& receiverSite = *wiredSites_.front();

    // Sharded: socket/receiver construction registers metrics and may
    // log — do it under the owning shard's observability so the cells
    // it caches are the ones that shard's worker thread will update.
    auto recvSocket = [&] {
        std::optional<sim::ShardObsScope> scope;
        if (group_) scope.emplace(group_->shard(wiredShard_.front()));
        return receiverSite.node().openSliceUdp(receiverSite.firstSlice(), 9001);
    }();
    if (!recvSocket.ok())
        throw std::runtime_error("receiver socket: " + recvSocket.error().message);
    std::optional<sim::ShardObsScope> recvScope;
    if (group_) recvScope.emplace(group_->shard(wiredShard_.front()));
    ditg::ItgRecv receiver{*recvSocket.value()};
    recvScope.reset();

    struct ActiveFlow {
        std::size_t siteIndex;
        std::uint16_t flowId;
        net::UdpSocket* socket;
        std::unique_ptr<ditg::ItgSend> sender;
    };
    std::vector<ActiveFlow> flows;
    flows.reserve(indices.size());
    for (const std::size_t index : indices) {
        UmtsNodeSite& site = *umtsSites_.at(index);
        std::optional<sim::ShardObsScope> siteScope;
        if (group_) siteScope.emplace(group_->shard(umtsShard_[index]));
        auto sendSocket = site.node().openSliceUdp(site.umtsSlice());
        if (!sendSocket.ok())
            throw std::runtime_error(site.hostname() + " sender socket: " +
                                     sendSocket.error().message);
        // One flow id per site so a single receiver log disambiguates.
        const auto flowId = std::uint16_t(10 + index);
        ditg::FlowSpec spec = ditg::cbr1MbpsFlow(flowId, durationSeconds);
        util::RandomStream flowRng = rng_.derive("flow@" + site.imsi());
        auto sender = std::make_unique<ditg::ItgSend>(umtsSiteSim(index), *sendSocket.value(),
                                                      std::move(spec),
                                                      receiverSite.address(), 9001,
                                                      std::move(flowRng));
        flows.push_back(ActiveFlow{index, flowId, sendSocket.value(), std::move(sender)});
    }

    const sim::SimTime flowStart = now();
    for (ActiveFlow& flow : flows) flow.sender->start();
    // Run the flows plus a drain tail (RLC buffers + ACK round trips).
    runUntil(flowStart + sim::seconds(durationSeconds) + sim::seconds(10.0));

    std::vector<FleetCbrRun> runs;
    runs.reserve(flows.size());
    for (ActiveFlow& flow : flows) {
        UmtsNodeSite& site = *umtsSites_[flow.siteIndex];
        FleetCbrRun run;
        run.imsi = site.imsi();
        run.summary = ditg::ItgDec::summarize(flow.sender->log(), receiver.log(flow.flowId));
        (void)windowSeconds;
        run.packetsSent = flow.sender->packetsSent();
        run.packetsReceived = run.summary.received;
        // The live session's bearer knows its contention history.
        for (std::size_t k = 0; k < operator_->activeSessions(); ++k) {
            umts::UmtsSession* session = operator_->sessionAt(k);
            if (!session || session->imsi() != site.imsi()) continue;
            run.bearerUpgrades = session->bearer().upgradeCount();
            run.deniedUpgrades = session->bearer().deniedUpgrades();
            run.admissionTrimmed = session->bearer().admissionTrimmed();
            break;
        }
        runs.push_back(std::move(run));
    }

    // Close the flow sockets: the receiver object dies with this scope
    // (its handler must not fire again), and the next wave re-binds
    // port 9001.
    for (ActiveFlow& flow : flows) {
        UmtsNodeSite& site = *umtsSites_[flow.siteIndex];
        std::optional<sim::ShardObsScope> siteScope;
        if (group_) siteScope.emplace(group_->shard(umtsShard_[flow.siteIndex]));
        site.node().stack().closeUdp(flow.socket);
    }
    {
        std::optional<sim::ShardObsScope> scope;
        if (group_) scope.emplace(group_->shard(wiredShard_.front()));
        receiverSite.node().stack().closeUdp(recvSocket.value());
    }
    return runs;
}

FleetTcpRun Fleet::runTcp(std::size_t index, double durationSeconds,
                          net::CcAlgorithm congestion) {
    return runTcpOnSites({index}, durationSeconds, congestion).front();
}

std::vector<FleetTcpRun> Fleet::runTcpAll(double durationSeconds,
                                          net::CcAlgorithm congestion) {
    std::vector<std::size_t> indices(umtsSites_.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    return runTcpOnSites(indices, durationSeconds, congestion);
}

std::vector<FleetTcpRun> Fleet::runTcpOnSites(const std::vector<std::size_t>& indices,
                                              double durationSeconds,
                                              net::CcAlgorithm congestion) {
    obs::ProfileScope waveScope(obs::ProfileCategory::ditg_decode);
    if (wiredSites_.empty()) throw std::runtime_error("fleet has no wired receiver site");
    WiredSite& receiverSite = *wiredSites_.front();
    constexpr std::uint16_t kTcpProbePort = 9002;

    net::TcpOptions options;
    options.congestion = congestion;

    // The receiver listens on the wired site's TcpHost. Constructed
    // under the owning shard's observability scope, like the UDP wave.
    auto receiver = [&] {
        std::optional<sim::ShardObsScope> scope;
        if (group_) scope.emplace(group_->shard(wiredShard_.front()));
        return std::make_unique<ditg::ItgTcpRecv>(
            umtsSiteSim(0), receiverSite.node().tcp(), kTcpProbePort,
            /*sendAcks=*/true, receiverSite.firstSlice().xid, options);
    }();

    struct ActiveFlow {
        std::size_t siteIndex;
        std::uint16_t flowId;
        std::unique_ptr<ditg::ItgTcpSend> sender;
    };
    std::vector<ActiveFlow> flows;
    flows.reserve(indices.size());
    for (const std::size_t index : indices) {
        UmtsNodeSite& site = *umtsSites_.at(index);
        std::optional<sim::ShardObsScope> siteScope;
        if (group_) siteScope.emplace(group_->shard(umtsShard_[index]));
        const auto flowId = std::uint16_t(10 + index);
        // A moderate probe CBR that fits inside the uplink DCH, so the
        // wave measures the stack (handshake, ACK clock, recovery)
        // rather than pure bufferbloat.
        ditg::FlowSpec spec =
            ditg::cbrFlow(flowId, 50.0, 256, durationSeconds, "tcp-probe");
        spec.transport = ditg::FlowTransport::tcp;
        util::RandomStream flowRng = rng_.derive("tcpflow@" + site.imsi());
        auto sender = std::make_unique<ditg::ItgTcpSend>(
            umtsSiteSim(index), site.node().tcp(), std::move(spec),
            receiverSite.address(), kTcpProbePort, std::move(flowRng),
            site.umtsSlice().xid, options);
        flows.push_back(ActiveFlow{index, flowId, std::move(sender)});
    }

    const sim::SimTime flowStart = now();
    for (ActiveFlow& flow : flows) flow.sender->start();
    // Flows + drain tail (RLC queues, retransmissions, FIN exchange).
    runUntil(flowStart + sim::seconds(durationSeconds) + sim::seconds(10.0));

    std::vector<FleetTcpRun> runs;
    runs.reserve(flows.size());
    for (ActiveFlow& flow : flows) {
        UmtsNodeSite& site = *umtsSites_[flow.siteIndex];
        FleetTcpRun run;
        run.imsi = site.imsi();
        run.summary =
            ditg::ItgDec::summarize(flow.sender->log(), receiver->log(flow.flowId));
        run.probesSent = flow.sender->probesSent();
        run.probesReceived = run.summary.received;
        if (net::TcpConnection* conn = flow.sender->connection()) run.tcp = conn->stats();
        runs.push_back(std::move(run));
    }

    // Self-cleaning wave: abort anything still open (a stuck flow must
    // not leak into the next wave), let TIME-WAIT drain, then reap
    // every CLOSED connection on both ends so the next wave's
    // ephemeral binds see a clean table.
    for (ActiveFlow& flow : flows) {
        std::optional<sim::ShardObsScope> siteScope;
        if (group_) siteScope.emplace(group_->shard(umtsShard_[flow.siteIndex]));
        if (net::TcpConnection* conn = flow.sender->connection();
            conn && conn->state() != net::TcpState::closed &&
            conn->state() != net::TcpState::time_wait)
            conn->close();
    }
    runUntil(now() + sim::seconds(3.0));  // 2 s TIME-WAIT + margin
    {
        // Stops listening on 9002 and aborts any connection a faulted
        // peer left behind; the RSTs go out under the receiver shard's
        // scope, like its construction.
        std::optional<sim::ShardObsScope> scope;
        if (group_) scope.emplace(group_->shard(wiredShard_.front()));
        receiver.reset();
    }
    for (const std::size_t index : indices) {
        std::optional<sim::ShardObsScope> siteScope;
        if (group_) siteScope.emplace(group_->shard(umtsShard_[index]));
        (void)umtsSites_[index]->node().tcp().reapClosed();
    }
    {
        std::optional<sim::ShardObsScope> scope;
        if (group_) scope.emplace(group_->shard(wiredShard_.front()));
        (void)receiverSite.node().tcp().reapClosed();
    }
    return runs;
}

}  // namespace onelab::scenario
