#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ditg/decoder.hpp"
#include "scenario/site.hpp"

namespace onelab::scenario {

/// Fleet parameters: one shared simulator + Internet + operator cell,
/// N UMTS-equipped sites, and M wired (receiver) sites. Defaults leave
/// the site lists empty; `makeUniformFleet()` builds the common
/// "N UEs in one cell, one wired receiver" shape, and the two-node
/// Testbed façade builds the paper's exact §3 configuration.
struct FleetConfig {
    std::uint64_t seed = 42;
    umts::OperatorProfile operatorProfile = umts::commercialItalianOperator();

    sim::SimTime ethTransitOneWay = sim::millis(9);   ///< UE site <-> wired site
    sim::SimTime ggsnTransitOneWay = sim::millis(6);  ///< operator core <-> any site

    std::vector<UmtsNodeSiteConfig> umtsSites;
    std::vector<WiredSiteConfig> wiredSites;
};

/// Uniform N-UE shared-cell fleet: `ueCount` UMTS sites (distinct
/// hostnames, eth addresses, IMSIs and dialer seeds) camping on one
/// cell of `profile`, plus a single wired receiver site at INRIA.
[[nodiscard]] FleetConfig makeUniformFleet(
    std::size_t ueCount, std::uint64_t seed = 42,
    umts::OperatorProfile profile = umts::commercialItalianOperator());

/// Per-UE outcome of a fleet-wide CBR run.
struct FleetCbrRun {
    std::string imsi;
    ditg::QosSummary summary;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsReceived = 0;
    int bearerUpgrades = 0;
    int deniedUpgrades = 0;
    bool admissionTrimmed = false;
};

/// The N-UE testbed: every UMTS site shares one operator network (and
/// thus one CellCapacity pool), every site pair is reachable over the
/// wired Internet, and the operator's resolver knows every hostname.
/// This is the substrate the contention experiments sweep over; the
/// two-node Testbed is a thin façade over a 1-UE/1-wired fleet.
class Fleet {
  public:
    explicit Fleet(FleetConfig config);
    ~Fleet();

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
    [[nodiscard]] net::Internet& internet() noexcept { return *internet_; }
    [[nodiscard]] umts::UmtsNetwork& operatorNetwork() noexcept { return *operator_; }
    [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

    [[nodiscard]] std::size_t umtsSiteCount() const noexcept { return umtsSites_.size(); }
    [[nodiscard]] std::size_t wiredSiteCount() const noexcept { return wiredSites_.size(); }
    [[nodiscard]] UmtsNodeSite& umtsSite(std::size_t index) noexcept {
        return *umtsSites_[index];
    }
    [[nodiscard]] WiredSite& wiredSite(std::size_t index) noexcept {
        return *wiredSites_[index];
    }

    // --- synchronous drivers (run the simulator until completion) ---

    /// `umts start` on one site.
    util::Result<umtsctl::UmtsReport> startUmts(std::size_t index,
                                                sim::SimTime timeout = sim::seconds(60.0));
    /// Dial every UMTS site concurrently (the realistic fleet bring-up:
    /// the attach/PDP handshakes overlap) and wait for all of them.
    util::Result<void> startAll(sim::SimTime timeout = sim::seconds(120.0));
    util::Result<void> addUmtsDestination(std::size_t index, const std::string& destination,
                                          sim::SimTime timeout = sim::seconds(5.0));
    /// Route every UMTS site's traffic to wired site 0 via the UMTS
    /// interface (the per-slice policy route).
    util::Result<void> addDestinationAll(sim::SimTime timeout = sim::seconds(5.0));
    util::Result<void> stopUmts(std::size_t index, sim::SimTime timeout = sim::seconds(10.0));

    /// Drive one CBR flow from UMTS site `index` to wired site 0 and
    /// run it to completion (plus a drain tail).
    FleetCbrRun runCbr(std::size_t index, double durationSeconds,
                       double windowSeconds = 0.2);
    /// Drive concurrent CBR flows from EVERY umts site to wired site 0
    /// — the shared-cell contention workload. Flows start together.
    std::vector<FleetCbrRun> runCbrAll(double durationSeconds, double windowSeconds = 0.2);

    /// Register a hook run at the START of fleet destruction, before
    /// any site is torn down. External layers holding scheduled
    /// simulator events against fleet members (e.g. a fault injector)
    /// register a cancellation here so no event fires into a destroyed
    /// node. Hooks run in reverse registration order.
    void addTeardownHook(std::function<void()> hook);

  private:
    std::vector<FleetCbrRun> runCbrOnSites(const std::vector<std::size_t>& indices,
                                           double durationSeconds, double windowSeconds);

    FleetConfig config_;
    sim::Simulator sim_;
    util::RandomStream rng_;
    std::unique_ptr<net::Internet> internet_;
    std::unique_ptr<umts::UmtsNetwork> operator_;
    std::vector<std::unique_ptr<UmtsNodeSite>> umtsSites_;
    std::vector<std::unique_ptr<WiredSite>> wiredSites_;
    std::vector<std::function<void()>> teardownHooks_;
};

}  // namespace onelab::scenario
