#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ditg/decoder.hpp"
#include "scenario/site.hpp"
#include "sim/shard.hpp"

namespace onelab::scenario {

/// Fleet parameters: one shared simulator + Internet + operator cell,
/// N UMTS-equipped sites, and M wired (receiver) sites. Defaults leave
/// the site lists empty; `makeUniformFleet()` builds the common
/// "N UEs in one cell, one wired receiver" shape, and the two-node
/// Testbed façade builds the paper's exact §3 configuration.
struct FleetConfig {
    std::uint64_t seed = 42;
    umts::OperatorProfile operatorProfile = umts::commercialItalianOperator();

    sim::SimTime ethTransitOneWay = sim::millis(9);   ///< UE site <-> wired site
    sim::SimTime ggsnTransitOneWay = sim::millis(6);  ///< operator core <-> any site

    /// 0 (default): the legacy single-simulator engine — byte-identical
    /// to the pre-shard code path. N >= 1: the sharded engine; the
    /// wired core, operator network and every modem live on shard 0,
    /// site node stacks round-robin over the remaining shards (all on
    /// shard 0 when N == 1). For a given seed the sharded engine's
    /// output is byte-identical across every N >= 1 — but it is a
    /// deliberately different timeline from the legacy engine, because
    /// the TTY and Ethernet cut edges carry `shardCutLatency`.
    std::size_t shards = 0;
    /// Latency added on each cut edge (TTY byte transfers, Ethernet
    /// access-link ingress toward the hub). Also the upper bound of
    /// the group's conservative lookahead; must stay >= 1ns.
    sim::SimTime shardCutLatency = sim::millis(2);

    std::vector<UmtsNodeSiteConfig> umtsSites;
    std::vector<WiredSiteConfig> wiredSites;
};

/// Uniform N-UE shared-cell fleet: `ueCount` UMTS sites (distinct
/// hostnames, eth addresses, IMSIs and dialer seeds) camping on one
/// cell of `profile`, plus a single wired receiver site at INRIA.
[[nodiscard]] FleetConfig makeUniformFleet(
    std::size_t ueCount, std::uint64_t seed = 42,
    umts::OperatorProfile profile = umts::commercialItalianOperator());

/// Per-UE outcome of a fleet-wide CBR run.
struct FleetCbrRun {
    std::string imsi;
    ditg::QosSummary summary;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsReceived = 0;
    int bearerUpgrades = 0;
    int deniedUpgrades = 0;
    bool admissionTrimmed = false;
};

/// Per-UE outcome of a fleet-wide TCP probe run.
struct FleetTcpRun {
    std::string imsi;
    ditg::QosSummary summary;
    std::uint64_t probesSent = 0;
    std::uint64_t probesReceived = 0;
    net::TcpStats tcp;  ///< sender connection stats at wave end
};

/// The N-UE testbed: every UMTS site shares one operator network (and
/// thus one CellCapacity pool), every site pair is reachable over the
/// wired Internet, and the operator's resolver knows every hostname.
/// This is the substrate the contention experiments sweep over; the
/// two-node Testbed is a thin façade over a 1-UE/1-wired fleet.
class Fleet {
  public:
    explicit Fleet(FleetConfig config);
    ~Fleet();

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    /// The driver-facing simulator: the shared one in the serial
    /// fleet, the core shard's in a sharded fleet (where the operator
    /// network, modems and wired hub live — the right home for fault
    /// injections and any externally scheduled event). Sharded
    /// callers advance time through runUntil()/runFor(), never
    /// through this simulator directly.
    [[nodiscard]] sim::Simulator& sim() noexcept {
        return group_ ? group_->shard(0).sim() : sim_;
    }
    /// nullptr in the serial fleet.
    [[nodiscard]] sim::ShardGroup* shardGroup() noexcept { return group_.get(); }
    [[nodiscard]] bool sharded() const noexcept { return group_ != nullptr; }
    /// Fleet time (identical on every shard between advances).
    [[nodiscard]] sim::SimTime now() const noexcept {
        return group_ ? group_->now() : sim_.now();
    }
    /// Advance the whole fleet — every shard in lockstep when sharded.
    void runUntil(sim::SimTime target) {
        if (group_)
            group_->runUntil(target);
        else
            sim_.runUntil(target);
    }
    void runFor(sim::SimTime duration) { runUntil(now() + duration); }
    [[nodiscard]] net::Internet& internet() noexcept { return *internet_; }
    [[nodiscard]] umts::UmtsNetwork& operatorNetwork() noexcept { return *operator_; }
    [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

    [[nodiscard]] std::size_t umtsSiteCount() const noexcept { return umtsSites_.size(); }
    [[nodiscard]] std::size_t wiredSiteCount() const noexcept { return wiredSites_.size(); }
    [[nodiscard]] UmtsNodeSite& umtsSite(std::size_t index) noexcept {
        return *umtsSites_[index];
    }
    [[nodiscard]] WiredSite& wiredSite(std::size_t index) noexcept {
        return *wiredSites_[index];
    }

    // --- synchronous drivers (run the simulator until completion) ---

    /// `umts start` on one site.
    util::Result<umtsctl::UmtsReport> startUmts(std::size_t index,
                                                sim::SimTime timeout = sim::seconds(60.0));
    /// Dial every UMTS site concurrently (the realistic fleet bring-up:
    /// the attach/PDP handshakes overlap) and wait for all of them.
    util::Result<void> startAll(sim::SimTime timeout = sim::seconds(120.0));
    util::Result<void> addUmtsDestination(std::size_t index, const std::string& destination,
                                          sim::SimTime timeout = sim::seconds(5.0));
    /// Route every UMTS site's traffic to wired site 0 via the UMTS
    /// interface (the per-slice policy route).
    util::Result<void> addDestinationAll(sim::SimTime timeout = sim::seconds(5.0));
    util::Result<void> stopUmts(std::size_t index, sim::SimTime timeout = sim::seconds(10.0));

    /// Drive one CBR flow from UMTS site `index` to wired site 0 and
    /// run it to completion (plus a drain tail).
    FleetCbrRun runCbr(std::size_t index, double durationSeconds,
                       double windowSeconds = 0.2);
    /// Drive concurrent CBR flows from EVERY umts site to wired site 0
    /// — the shared-cell contention workload. Flows start together.
    std::vector<FleetCbrRun> runCbrAll(double durationSeconds, double windowSeconds = 0.2);

    /// Drive one TCP probe flow (framed D-ITG probes over the real TCP
    /// stack) from UMTS site `index` to wired site 0. Waves are
    /// self-cleaning: connections are closed, TIME-WAIT drains, and
    /// every CLOSED connection is reaped before returning, so repeated
    /// soak waves rebind their ports deterministically.
    FleetTcpRun runTcp(std::size_t index, double durationSeconds,
                       net::CcAlgorithm congestion = net::CcAlgorithm::newreno);
    /// Concurrent TCP flows from every UMTS site to wired site 0.
    std::vector<FleetTcpRun> runTcpAll(double durationSeconds,
                                       net::CcAlgorithm congestion = net::CcAlgorithm::newreno);

    /// Register a hook run at the START of fleet destruction, before
    /// any site is torn down. External layers holding scheduled
    /// simulator events against fleet members (e.g. a fault injector)
    /// register a cancellation here so no event fires into a destroyed
    /// node. Hooks run in reverse registration order.
    void addTeardownHook(std::function<void()> hook);

    /// Export merged telemetry for a sharded run: metrics summed by
    /// name across the driver and every shard registry, traces
    /// content-merged in stable order, flight rings as per-shard
    /// fragment files (flight.shard<k>.json). Serial fleets delegate
    /// to obs::writeTelemetry. Call between advances (barrier time).
    [[nodiscard]] util::Result<void> writeTelemetry(const std::string& directory);

  private:
    std::vector<FleetCbrRun> runCbrOnSites(const std::vector<std::size_t>& indices,
                                           double durationSeconds, double windowSeconds);
    std::vector<FleetTcpRun> runTcpOnSites(const std::vector<std::size_t>& indices,
                                           double durationSeconds,
                                           net::CcAlgorithm congestion);
    /// Shard that owns fleet-wide site ordinal `ordinal` (UMTS sites
    /// first, then wired sites) — partition is a pure function of the
    /// ordinal and the shard count.
    [[nodiscard]] std::size_t shardOfSite(std::size_t ordinal) const noexcept;
    [[nodiscard]] sim::Simulator& umtsSiteSim(std::size_t index) noexcept {
        return group_ ? group_->shard(umtsShard_[index]).sim() : sim_;
    }

    FleetConfig config_;
    sim::Simulator sim_;
    util::RandomStream rng_;
    /// Declared before the sites/Internet (destroyed after them): the
    /// shard simulators must outlive everything scheduled on them.
    /// ~Fleet stops the workers (shutdown()) before any member dies.
    std::unique_ptr<sim::ShardGroup> group_;
    std::unique_ptr<net::Internet> internet_;
    std::unique_ptr<umts::UmtsNetwork> operator_;
    std::vector<std::unique_ptr<UmtsNodeSite>> umtsSites_;
    std::vector<std::unique_ptr<WiredSite>> wiredSites_;
    std::vector<std::size_t> umtsShard_;   ///< shard index per UMTS site
    std::vector<std::size_t> wiredShard_;  ///< shard index per wired site
    std::vector<std::function<void()>> teardownHooks_;
};

}  // namespace onelab::scenario
