#include "ppp/fsm.hpp"

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace onelab::ppp {

const char* fsmStateName(FsmState state) noexcept {
    switch (state) {
        case FsmState::initial: return "Initial";
        case FsmState::starting: return "Starting";
        case FsmState::closed: return "Closed";
        case FsmState::stopped: return "Stopped";
        case FsmState::closing: return "Closing";
        case FsmState::stopping: return "Stopping";
        case FsmState::req_sent: return "Req-Sent";
        case FsmState::ack_rcvd: return "Ack-Rcvd";
        case FsmState::ack_sent: return "Ack-Sent";
        case FsmState::opened: return "Opened";
    }
    return "?";
}

Fsm::Fsm(sim::Simulator& simulator, std::string name, Timers timers)
    : sim_(simulator), log_("ppp." + name), name_(std::move(name)), timers_(timers),
      renegotiations_(&obs::Registry::instance().counter("ppp." + name_ + ".renegotiations")) {}

Fsm::~Fsm() { stopTimer(); }

bool Fsm::onExtraCode(const ControlPacket&) { return false; }

void Fsm::sendPacket(const ControlPacket& packet) {
    log_.trace() << "send " << codeName(packet.code) << " id=" << int(packet.identifier)
                 << " len=" << packet.data.size();
    if (sender_) sender_(packet);
}

void Fsm::setState(FsmState next) {
    if (next == state_) return;
    log_.debug() << fsmStateName(state_) << " -> " << fsmStateName(next);
    obs::Tracer& tracer = obs::Tracer::instance();
    if (tracer.enabled())
        tracer.instant("ppp.fsm", "ppp." + name_ + ".state",
                       std::string(fsmStateName(state_)) + " -> " + fsmStateName(next));
    // Leaving Opened back into a configure exchange is a renegotiation
    // of the already-established layer (e.g. a peer Configure-Request
    // on a live link).
    const bool reconfiguring = next == FsmState::req_sent || next == FsmState::ack_rcvd ||
                               next == FsmState::ack_sent;
    if (state_ == FsmState::opened && reconfiguring) renegotiations_->inc();
    state_ = next;
}

// --- actions ---

void Fsm::tlu() {
    log_.debug() << "this-layer-up";
    onThisLayerUp();
}
void Fsm::tld() {
    log_.debug() << "this-layer-down";
    onThisLayerDown();
}
void Fsm::tls() { onThisLayerStarted(); }
void Fsm::tlf() {
    stopTimer();
    log_.debug() << "this-layer-finished";
    onThisLayerFinished();
}

void Fsm::initRestartCount(int count) { restartCount_ = count; }
void Fsm::zeroRestartCount() {
    restartCount_ = 0;
    // A zeroed restart count still runs the timer once so the final
    // Terminate-Ack wait has a bound (RFC 1661 §4.6).
}

void Fsm::sendConfigRequest() {
    --restartCount_;
    requestId_ = nextId_++;
    ControlPacket packet;
    packet.code = Code::configure_request;
    packet.identifier = requestId_;
    packet.data = encodeOptions(buildConfigRequest());
    sendPacket(packet);
    startTimer(TimeoutKind::configure);
}

void Fsm::sendConfigAck(const ControlPacket& request) {
    ControlPacket packet;
    packet.code = Code::configure_ack;
    packet.identifier = request.identifier;
    packet.data = request.data;
    sendPacket(packet);
}

void Fsm::sendConfigNakOrRej(const ControlPacket& request, const ConfigDecision& decision) {
    ControlPacket packet;
    packet.code = decision.verdict == ConfigDecision::Verdict::nak ? Code::configure_nak
                                                                   : Code::configure_reject;
    packet.identifier = request.identifier;
    packet.data = encodeOptions(decision.options);
    sendPacket(packet);
}

void Fsm::sendTerminateRequest() {
    --restartCount_;
    ControlPacket packet;
    packet.code = Code::terminate_request;
    packet.identifier = nextId_++;
    sendPacket(packet);
    startTimer(TimeoutKind::terminate);
}

void Fsm::sendTerminateAck(std::uint8_t id) {
    ControlPacket packet;
    packet.code = Code::terminate_ack;
    packet.identifier = id;
    sendPacket(packet);
}

void Fsm::sendCodeReject(const ControlPacket& bad) {
    ControlPacket packet;
    packet.code = Code::code_reject;
    packet.identifier = nextId_++;
    packet.data = bad.serialize();
    sendPacket(packet);
}

void Fsm::startTimer(TimeoutKind kind) {
    stopTimer();
    timeoutKind_ = kind;
    timer_ = sim_.schedule(timers_.restartTimer, [this] { onTimeout(); });
}

void Fsm::stopTimer() {
    if (timer_.valid()) sim_.cancel(timer_);
    timer_ = {};
    timeoutKind_ = TimeoutKind::none;
}

void Fsm::onTimeout() {
    timer_ = {};
    const bool positive = restartCount_ > 0;
    log_.debug() << "timeout (" << (positive ? "TO+" : "TO-") << ") in "
                 << fsmStateName(state_);
    switch (state_) {
        case FsmState::closing:
            if (positive)
                sendTerminateRequest();
            else {
                tlf();
                setState(FsmState::closed);
            }
            break;
        case FsmState::stopping:
            if (positive)
                sendTerminateRequest();
            else {
                tlf();
                setState(FsmState::stopped);
            }
            break;
        case FsmState::req_sent:
        case FsmState::ack_rcvd:
            if (positive) {
                sendConfigRequest();
                if (state_ == FsmState::ack_rcvd) setState(FsmState::req_sent);
            } else {
                tlf();
                setState(FsmState::stopped);
            }
            break;
        case FsmState::ack_sent:
            if (positive)
                sendConfigRequest();
            else {
                tlf();
                setState(FsmState::stopped);
            }
            break;
        default:
            break;  // timer is irrelevant in other states
    }
}

// --- administrative events ---

void Fsm::up() {
    switch (state_) {
        case FsmState::initial:
            setState(FsmState::closed);
            break;
        case FsmState::starting:
            initRestartCount(timers_.maxConfigure);
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        default:
            log_.warn() << "unexpected Up in " << fsmStateName(state_);
            break;
    }
}

void Fsm::down() {
    switch (state_) {
        case FsmState::closed:
            setState(FsmState::initial);
            break;
        case FsmState::stopped:
            tls();
            setState(FsmState::starting);
            break;
        case FsmState::closing:
            stopTimer();
            setState(FsmState::initial);
            break;
        case FsmState::stopping:
        case FsmState::req_sent:
        case FsmState::ack_rcvd:
        case FsmState::ack_sent:
            stopTimer();
            setState(FsmState::starting);
            break;
        case FsmState::opened:
            tld();
            setState(FsmState::starting);
            break;
        default:
            break;
    }
}

void Fsm::open() {
    switch (state_) {
        case FsmState::initial:
            tls();
            setState(FsmState::starting);
            break;
        case FsmState::starting:
            break;
        case FsmState::closed:
            initRestartCount(timers_.maxConfigure);
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        case FsmState::stopped:   // restart option: remain (passive wait)
        case FsmState::closing:   // -> Stopping per RFC with restart
            if (state_ == FsmState::closing) setState(FsmState::stopping);
            break;
        default:
            break;  // already opening/opened
    }
}

void Fsm::close() {
    switch (state_) {
        case FsmState::initial:
            break;
        case FsmState::starting:
            tlf();
            setState(FsmState::initial);
            break;
        case FsmState::closed:
        case FsmState::closing:
            break;
        case FsmState::stopped:
            setState(FsmState::closed);
            break;
        case FsmState::stopping:
            setState(FsmState::closing);
            break;
        case FsmState::req_sent:
        case FsmState::ack_rcvd:
        case FsmState::ack_sent:
            initRestartCount(timers_.maxTerminate);
            sendTerminateRequest();
            setState(FsmState::closing);
            break;
        case FsmState::opened:
            tld();
            initRestartCount(timers_.maxTerminate);
            sendTerminateRequest();
            setState(FsmState::closing);
            break;
    }
}

// --- receive dispatch ---

void Fsm::receive(const ControlPacket& packet) {
    log_.trace() << "recv " << codeName(packet.code) << " id=" << int(packet.identifier)
                 << " in " << fsmStateName(state_);
    switch (packet.code) {
        case Code::configure_request:
            eventRcr(packet);
            break;
        case Code::configure_ack:
            eventRca(packet);
            break;
        case Code::configure_nak:
            eventRcn(packet, /*isReject=*/false);
            break;
        case Code::configure_reject:
            eventRcn(packet, /*isReject=*/true);
            break;
        case Code::terminate_request:
            eventRtr(packet);
            break;
        case Code::terminate_ack:
            eventRta();
            break;
        case Code::code_reject:
            // Rejecting a basic code is catastrophic (RXJ-).
            eventRxjMinus();
            break;
        default:
            if (!onExtraCode(packet)) eventRuc(packet);
            break;
    }
}

void Fsm::eventRcr(const ControlPacket& packet) {
    const auto parsed = parseOptions(packet.data);
    if (!parsed.ok()) {
        log_.warn() << "malformed Configure-Request: " << parsed.error().message;
        return;
    }
    const ConfigDecision decision = checkConfigRequest(parsed.value());
    const bool good = decision.verdict == ConfigDecision::Verdict::ack;

    switch (state_) {
        case FsmState::closed:
            sendTerminateAck(packet.identifier);
            break;
        case FsmState::stopped:
            initRestartCount(timers_.maxConfigure);
            sendConfigRequest();
            if (good) {
                sendConfigAck(packet);
                setState(FsmState::ack_sent);
            } else {
                sendConfigNakOrRej(packet, decision);
                setState(FsmState::req_sent);
            }
            break;
        case FsmState::closing:
        case FsmState::stopping:
            break;
        case FsmState::req_sent:
            if (good) {
                sendConfigAck(packet);
                setState(FsmState::ack_sent);
            } else {
                sendConfigNakOrRej(packet, decision);
            }
            break;
        case FsmState::ack_rcvd:
            if (good) {
                sendConfigAck(packet);
                tlu();
                setState(FsmState::opened);
            } else {
                sendConfigNakOrRej(packet, decision);
            }
            break;
        case FsmState::ack_sent:
            if (good) {
                sendConfigAck(packet);
            } else {
                sendConfigNakOrRej(packet, decision);
                setState(FsmState::req_sent);
            }
            break;
        case FsmState::opened:
            tld();
            sendConfigRequest();
            if (good) {
                sendConfigAck(packet);
                setState(FsmState::ack_sent);
            } else {
                sendConfigNakOrRej(packet, decision);
                setState(FsmState::req_sent);
            }
            break;
        default:
            break;
    }
}

void Fsm::eventRca(const ControlPacket& packet) {
    if ((state_ == FsmState::req_sent || state_ == FsmState::ack_sent) &&
        packet.identifier != requestId_) {
        log_.debug() << "Configure-Ack with stale id " << int(packet.identifier);
        return;
    }
    switch (state_) {
        case FsmState::closed:
        case FsmState::stopped:
            sendTerminateAck(packet.identifier);
            break;
        case FsmState::req_sent: {
            const auto parsed = parseOptions(packet.data);
            if (parsed.ok()) onConfigAcked(parsed.value());
            initRestartCount(timers_.maxConfigure);
            startTimer(TimeoutKind::configure);
            setState(FsmState::ack_rcvd);
            break;
        }
        case FsmState::ack_rcvd:
            // Cross connection / duplicate: re-request.
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        case FsmState::ack_sent: {
            const auto parsed = parseOptions(packet.data);
            if (parsed.ok()) onConfigAcked(parsed.value());
            stopTimer();
            initRestartCount(timers_.maxConfigure);
            tlu();
            setState(FsmState::opened);
            break;
        }
        case FsmState::opened:
            tld();
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        default:
            break;
    }
}

void Fsm::eventRcn(const ControlPacket& packet, bool isReject) {
    switch (state_) {
        case FsmState::closed:
        case FsmState::stopped:
            sendTerminateAck(packet.identifier);
            break;
        case FsmState::req_sent: {
            const auto parsed = parseOptions(packet.data);
            if (parsed.ok()) onConfigNakOrReject(isReject, parsed.value());
            initRestartCount(timers_.maxConfigure);
            sendConfigRequest();
            break;
        }
        case FsmState::ack_rcvd:
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        case FsmState::ack_sent: {
            const auto parsed = parseOptions(packet.data);
            if (parsed.ok()) onConfigNakOrReject(isReject, parsed.value());
            initRestartCount(timers_.maxConfigure);
            sendConfigRequest();
            break;
        }
        case FsmState::opened:
            tld();
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        default:
            break;
    }
}

void Fsm::eventRtr(const ControlPacket& packet) {
    switch (state_) {
        case FsmState::closed:
        case FsmState::stopped:
        case FsmState::closing:
        case FsmState::stopping:
            sendTerminateAck(packet.identifier);
            break;
        case FsmState::req_sent:
        case FsmState::ack_rcvd:
        case FsmState::ack_sent:
            sendTerminateAck(packet.identifier);
            setState(FsmState::req_sent);
            break;
        case FsmState::opened:
            tld();
            zeroRestartCount();
            sendTerminateAck(packet.identifier);
            startTimer(TimeoutKind::terminate);
            setState(FsmState::stopping);
            break;
        default:
            break;
    }
}

void Fsm::eventRta() {
    switch (state_) {
        case FsmState::closing:
            tlf();
            setState(FsmState::closed);
            break;
        case FsmState::stopping:
            tlf();
            setState(FsmState::stopped);
            break;
        case FsmState::ack_rcvd:
            setState(FsmState::req_sent);
            break;
        case FsmState::opened:
            tld();
            sendConfigRequest();
            setState(FsmState::req_sent);
            break;
        default:
            break;
    }
}

void Fsm::eventRuc(const ControlPacket& packet) {
    log_.debug() << "unknown code " << int(packet.code) << ", sending Code-Reject";
    sendCodeReject(packet);
}

void Fsm::eventRxjMinus() {
    switch (state_) {
        case FsmState::opened:
            tld();
            initRestartCount(timers_.maxTerminate);
            sendTerminateRequest();
            setState(FsmState::stopping);
            break;
        case FsmState::closing:
            tlf();
            setState(FsmState::closed);
            break;
        case FsmState::initial:
        case FsmState::starting:
            break;
        default:
            tlf();
            setState(FsmState::stopped);
            break;
    }
}

void Fsm::protocolRejected() {
    log_.info() << "peer protocol-rejected " << name_;
    eventRxjMinus();
}

}  // namespace onelab::ppp
