#include "ppp/framer.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "ppp/fcs.hpp"

namespace onelab::ppp {

namespace {
constexpr std::uint8_t kFlag = 0x7e;
constexpr std::uint8_t kEscape = 0x7d;
constexpr std::uint8_t kXor = 0x20;
constexpr std::uint8_t kAddress = 0xff;
constexpr std::uint8_t kControl = 0x03;

/// 256-entry needs-escape map derived from one ACCM. Rebuilt only when
/// a new ACCM shows up; a handful of slots because a pppd alternates
/// between the negotiated data ACCM and the LCP default (RFC 1662 §7).
struct EscapeMap {
    std::uint32_t accm = 0;
    bool valid = false;
    std::array<std::uint8_t, 256> need{};
};

const EscapeMap& escapeMapFor(std::uint32_t accm) {
    thread_local std::array<EscapeMap, 4> cache{};
    thread_local std::size_t nextSlot = 0;
    for (const EscapeMap& entry : cache)
        if (entry.valid && entry.accm == accm) return entry;
    EscapeMap& entry = cache[nextSlot];
    nextSlot = (nextSlot + 1) % cache.size();
    entry.accm = accm;
    entry.valid = true;
    entry.need.fill(0);
    entry.need[kFlag] = 1;
    entry.need[kEscape] = 1;
    for (std::uint32_t c = 0; c < 32; ++c)
        if ((accm >> c) & 1u) entry.need[c] = 1;
    return entry;
}

/// Append `data` escaped per `map`, folding the bytes into the running
/// FCS as they are scanned. One pass: each eight-byte word is loaded
/// once, SWAR-tested for escape candidates, and on a clean word the
/// same register feeds the slice-by-8 FCS step; maximal no-escape runs
/// become one bulk copy. The SWAR filter over-approximates (any byte
/// < 0x20 counts as a candidate even when its ACCM bit is clear), so
/// candidate words fall back to the map, which is the ground truth.
std::uint16_t appendEscaped(util::Bytes& out, const std::uint8_t* data, std::size_t size,
                            const EscapeMap& map, std::uint16_t fcs) {
    const std::uint8_t* p = data;
    const std::uint8_t* const end = data + size;
    const std::uint8_t* runStart = p;
    const auto flushRun = [&](const std::uint8_t* upTo) {
        if (upTo > runStart) out.insert(out.end(), runStart, upTo);
    };
    const auto escapeByte = [&](const std::uint8_t byte) {
        flushRun(p);
        out.push_back(kEscape);
        out.push_back(std::uint8_t(byte ^ kXor));
        runStart = p + 1;
    };
    if constexpr (std::endian::native == std::endian::little) {
        constexpr std::uint64_t kOnes = 0x0101010101010101ull;
        constexpr std::uint64_t kHigh = 0x8080808080808080ull;
        constexpr std::uint64_t kCtlMask = 0xe0e0e0e0e0e0e0e0ull;
        const bool scanCtl = map.accm != 0;  // any control char escapable at all?
        const FcsTables& tables = fcsTables();
        while (end - p >= 8) {
            std::uint64_t word;
            std::memcpy(&word, p, sizeof(word));
            const std::uint64_t flagHits = word ^ (kOnes * kFlag);
            const std::uint64_t escHits = word ^ (kOnes * kEscape);
            std::uint64_t hit = ((flagHits - kOnes) & ~flagHits & kHigh) |
                                ((escHits - kOnes) & ~escHits & kHigh);
            if (scanCtl) {
                const std::uint64_t highBits = word & kCtlMask;  // zero byte <=> < 0x20
                hit |= (highBits - kOnes) & ~highBits & kHigh;
            }
            if (hit == 0) {
                fcs = fcsStepWord(fcs, word, tables);
                p += 8;
                continue;
            }
            for (const std::uint8_t* wordEnd = p + 8; p != wordEnd; ++p) {
                const std::uint8_t byte = *p;
                fcs = fcsStep(fcs, byte);
                if (map.need[byte]) escapeByte(byte);
            }
        }
    }
    for (; p != end; ++p) {
        const std::uint8_t byte = *p;
        fcs = fcsStep(fcs, byte);
        if (map.need[byte]) escapeByte(byte);
    }
    flushRun(end);
    return fcs;
}

/// First flag or escape byte in [p, end), or end. Word-at-a-time: the
/// SWAR zero-in-word test against both patterns covers eight bytes per
/// step on little-endian targets.
const std::uint8_t* findSpecial(const std::uint8_t* p, const std::uint8_t* end) noexcept {
    if constexpr (std::endian::native == std::endian::little) {
        constexpr std::uint64_t kOnes = 0x0101010101010101ull;
        constexpr std::uint64_t kHigh = 0x8080808080808080ull;
        while (end - p >= 8) {
            std::uint64_t word;
            std::memcpy(&word, p, sizeof(word));
            const std::uint64_t flagHits = word ^ (kOnes * kFlag);
            const std::uint64_t escHits = word ^ (kOnes * kEscape);
            const std::uint64_t hit = ((flagHits - kOnes) & ~flagHits & kHigh) |
                                      ((escHits - kOnes) & ~escHits & kHigh);
            if (hit) return p + (std::countr_zero(hit) >> 3);
            p += 8;
        }
    }
    while (p != end && *p != kFlag && *p != kEscape) ++p;
    return p;
}

}  // namespace

void encodeFrameInto(Protocol protocol, util::ByteView info, const FramerConfig& config,
                     util::Bytes& out) {
    // The FCS is folded into the escape scan, so the whole encode bills
    // to hdlc_encode (the ppp.fcs16 category stays for export shape).
    obs::ProfileScope scope(obs::ProfileCategory::hdlc_encode);
    const EscapeMap& map = escapeMapFor(config.sendAccm);
    out.clear();
    out.reserve(maxEncodedSize(info.size(), config));
    out.push_back(kFlag);

    std::array<std::uint8_t, 4> header;
    std::size_t headerLen = 0;
    if (!config.compressAddressControl) {
        header[headerLen++] = kAddress;
        header[headerLen++] = kControl;
    }
    const auto proto = std::uint16_t(protocol);
    if (config.compressProtocolField && proto <= 0xff) {
        header[headerLen++] = std::uint8_t(proto);
    } else {
        header[headerLen++] = std::uint8_t(proto >> 8);
        header[headerLen++] = std::uint8_t(proto);
    }

    std::uint16_t fcs = kFcsInit;
    fcs = appendEscaped(out, header.data(), headerLen, map, fcs);
    fcs = appendEscaped(out, info.data(), info.size(), map, fcs);
    fcs = std::uint16_t(~fcs & 0xffff);
    // FCS is transmitted least-significant byte first (RFC 1662).
    const std::uint8_t trailer[2] = {std::uint8_t(fcs & 0xff), std::uint8_t(fcs >> 8)};
    (void)appendEscaped(out, trailer, 2, map, kFcsInit);
    out.push_back(kFlag);
}

util::Bytes encodeFrame(const Frame& frame, const FramerConfig& config) {
    util::Bytes out;
    encodeFrameInto(frame.protocol, {frame.info.data(), frame.info.size()}, config, out);
    return out;
}

void Deframer::feed(util::ByteView data) {
    obs::ProfileScope scope(obs::ProfileCategory::hdlc_decode);
    const std::uint8_t* p = data.data();
    const std::uint8_t* const end = p + data.size();
    while (p != end) {
        if (escaped_) {
            const std::uint8_t byte = *p++;
            if (byte == kFlag) {
                escaped_ = false;
                endFrame();
                continue;
            }
            if (byte == kEscape) continue;  // repeated escape: stay armed
            escaped_ = false;
            const std::uint8_t unescaped = std::uint8_t(byte ^ kXor);
            appendRun(&unescaped, 1);
            continue;
        }
        const std::uint8_t* special = findSpecial(p, end);
        if (special != p) appendRun(p, std::size_t(special - p));
        if (special == end) return;
        if (*special == kFlag)
            endFrame();
        else
            escaped_ = true;
        p = special + 1;
    }
}

void Deframer::appendRun(const std::uint8_t* data, std::size_t size) {
    if (discarding_) return;
    if (current_.size() + size > maxFrame_) {
        // Oversized frame (flag-less garbage, or a peer violating the
        // MRU by orders of magnitude): drop what accumulated and skip
        // until the next flag resynchronises the stream.
        ++bad_;
        ++oversized_;
        obs::Registry::instance().counter("ppp.hdlc.oversize").inc();
        current_.clear();
        fcs_ = kFcsInit;
        discarding_ = true;
        return;
    }
    // The running FCS advances with the bytes as they land, so endFrame
    // validates without a second pass over the assembled frame. Short
    // runs (escape-dense wire chops the stream into 1-2 byte pieces)
    // step inline instead of paying the bulk-update call.
    if (size < 8) {
        for (std::size_t i = 0; i < size; ++i) fcs_ = fcsStep(fcs_, data[i]);
    } else {
        fcs_ = fcsUpdate(fcs_, {data, size});
    }
    current_.insert(current_.end(), data, data + size);
}

void Deframer::endFrame() {
    if (discarding_) {
        discarding_ = false;  // flag seen: resync, next frame is clean
        return;
    }
    if (current_.empty()) return;  // back-to-back flags
    const std::size_t size = current_.size();
    const std::uint16_t fcs = fcs_;  // accumulated by appendRun
    fcs_ = kFcsInit;
    // Minimum: protocol (1) + FCS (2).
    if (size < 3 || fcs != kFcsGood) {
        current_.clear();
        ++bad_;
        return;
    }
    const std::size_t payloadEnd = size - 2;  // strip FCS

    std::size_t offset = 0;
    // Address/control may be present (0xff 0x03) or elided (ACFC); the
    // receiver accepts both regardless of negotiation, per RFC 1662.
    if (payloadEnd >= 2 && current_[0] == kAddress && current_[1] == kControl) offset = 2;

    if (payloadEnd <= offset) {
        current_.clear();
        ++bad_;
        return;
    }
    // Protocol field: 2 bytes normally; 1 byte when PFC used (low bit
    // of the first byte set means "final, odd byte" => compressed).
    std::uint16_t protocol = 0;
    if (current_[offset] & 1) {
        protocol = current_[offset];
        offset += 1;
    } else {
        if (payloadEnd < offset + 2) {
            current_.clear();
            ++bad_;
            return;
        }
        protocol = std::uint16_t((current_[offset] << 8) | current_[offset + 1]);
        offset += 2;
    }

    Frame frame;
    frame.protocol = Protocol{protocol};
    frame.info.assign(current_.begin() + long(offset), current_.begin() + long(payloadEnd));
    current_.clear();  // keeps capacity for the next frame
    ++good_;
    if (handler_) handler_(std::move(frame));
}

void Deframer::reset() {
    current_.clear();
    fcs_ = kFcsInit;
    escaped_ = false;
    discarding_ = false;
}

std::size_t framingOverhead(const FramerConfig& config) noexcept {
    // flag + FCS(2) + flag = 4, plus addr/ctrl and protocol fields.
    std::size_t overhead = 4;
    if (!config.compressAddressControl) overhead += 2;
    overhead += config.compressProtocolField ? 1 : 2;
    return overhead;
}

std::size_t maxEncodedSize(std::size_t infoLen, const FramerConfig& config) noexcept {
    // Everything between the flags can double under stuffing.
    const std::size_t between = infoLen + framingOverhead(config) - 2;
    return 2 + 2 * between;
}

}  // namespace onelab::ppp
