#include "ppp/framer.hpp"

#include "obs/profiler.hpp"
#include "ppp/fcs.hpp"

namespace onelab::ppp {

namespace {
constexpr std::uint8_t kFlag = 0x7e;
constexpr std::uint8_t kEscape = 0x7d;
constexpr std::uint8_t kXor = 0x20;
constexpr std::uint8_t kAddress = 0xff;
constexpr std::uint8_t kControl = 0x03;

bool needsEscape(std::uint8_t byte, std::uint32_t accm) noexcept {
    if (byte == kFlag || byte == kEscape) return true;
    return byte < 0x20 && ((accm >> byte) & 1u);
}

void putEscaped(util::Bytes& out, std::uint8_t byte, std::uint32_t accm) {
    if (needsEscape(byte, accm)) {
        out.push_back(kEscape);
        out.push_back(byte ^ kXor);
    } else {
        out.push_back(byte);
    }
}

}  // namespace

util::Bytes encodeFrame(const Frame& frame, const FramerConfig& config) {
    obs::ProfileScope scope(obs::ProfileCategory::hdlc_encode);
    // Build the unescaped contents first (addr/ctrl + protocol + info),
    // compute the FCS over them, then escape everything.
    util::Bytes raw;
    raw.reserve(frame.info.size() + 6);
    if (!config.compressAddressControl) {
        raw.push_back(kAddress);
        raw.push_back(kControl);
    }
    const auto protocol = std::uint16_t(frame.protocol);
    if (config.compressProtocolField && protocol <= 0xff) {
        raw.push_back(std::uint8_t(protocol));
    } else {
        raw.push_back(std::uint8_t(protocol >> 8));
        raw.push_back(std::uint8_t(protocol));
    }
    raw.insert(raw.end(), frame.info.begin(), frame.info.end());

    std::uint16_t fcs = 0;
    {
        obs::ProfileScope fcsScope(obs::ProfileCategory::fcs16);
        fcs = std::uint16_t(~fcs16(raw) & 0xffff);
    }

    util::Bytes out;
    out.reserve(raw.size() + 8);
    out.push_back(kFlag);
    for (const std::uint8_t byte : raw) putEscaped(out, byte, config.sendAccm);
    // FCS is transmitted least-significant byte first (RFC 1662).
    putEscaped(out, std::uint8_t(fcs & 0xff), config.sendAccm);
    putEscaped(out, std::uint8_t(fcs >> 8), config.sendAccm);
    out.push_back(kFlag);
    return out;
}

void Deframer::feed(util::ByteView data) {
    obs::ProfileScope scope(obs::ProfileCategory::hdlc_decode);
    for (const std::uint8_t byte : data) {
        if (byte == kFlag) {
            escaped_ = false;
            endFrame();
            continue;
        }
        if (byte == kEscape) {
            escaped_ = true;
            continue;
        }
        current_.push_back(escaped_ ? std::uint8_t(byte ^ kXor) : byte);
        escaped_ = false;
    }
}

void Deframer::endFrame() {
    if (current_.empty()) return;  // back-to-back flags
    util::Bytes raw;
    raw.swap(current_);
    // Minimum: protocol (1) + FCS (2).
    if (raw.size() < 3) {
        ++bad_;
        return;
    }
    {
        obs::ProfileScope fcsScope(obs::ProfileCategory::fcs16);
        if (!fcsValid(raw)) {
            ++bad_;
            return;
        }
    }
    raw.resize(raw.size() - 2);  // strip FCS

    std::size_t offset = 0;
    // Address/control may be present (0xff 0x03) or elided (ACFC); the
    // receiver accepts both regardless of negotiation, per RFC 1662.
    if (raw.size() >= 2 && raw[0] == kAddress && raw[1] == kControl) offset = 2;

    if (raw.size() <= offset) {
        ++bad_;
        return;
    }
    // Protocol field: 2 bytes normally; 1 byte when PFC used (low bit
    // of the first byte set means "final, odd byte" => compressed).
    std::uint16_t protocol = 0;
    if (raw[offset] & 1) {
        protocol = raw[offset];
        offset += 1;
    } else {
        if (raw.size() < offset + 2) {
            ++bad_;
            return;
        }
        protocol = std::uint16_t((raw[offset] << 8) | raw[offset + 1]);
        offset += 2;
    }

    Frame frame;
    frame.protocol = Protocol{protocol};
    frame.info.assign(raw.begin() + long(offset), raw.end());
    ++good_;
    if (handler_) handler_(std::move(frame));
}

void Deframer::reset() {
    current_.clear();
    escaped_ = false;
}

std::size_t framingOverhead(const FramerConfig& config) noexcept {
    // flag + FCS(2) + flag = 4, plus addr/ctrl and protocol fields.
    std::size_t overhead = 4;
    if (!config.compressAddressControl) overhead += 2;
    overhead += config.compressProtocolField ? 1 : 2;
    return overhead;
}

}  // namespace onelab::ppp
