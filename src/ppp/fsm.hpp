#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ppp/options.hpp"
#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace onelab::obs {
class Counter;
}

namespace onelab::ppp {

/// RFC 1661 §4.2 automaton states.
enum class FsmState : std::uint8_t {
    initial,
    starting,
    closed,
    stopped,
    closing,
    stopping,
    req_sent,
    ack_rcvd,
    ack_sent,
    opened,
};

[[nodiscard]] const char* fsmStateName(FsmState state) noexcept;

/// How a received Configure-Request should be answered.
struct ConfigDecision {
    enum class Verdict : std::uint8_t { ack, nak, reject };
    Verdict verdict = Verdict::ack;
    /// For nak/reject: the options to carry in the response. For ack
    /// the original options are echoed automatically.
    std::vector<Option> options;
};

/// Tuning knobs (RFC 1661 §4.6 counters and timers).
struct FsmTimers {
    sim::SimTime restartTimer = sim::millis(1000);
    int maxConfigure = 10;
    int maxTerminate = 2;
};

/// RFC 1661 option-negotiation automaton, shared by LCP, IPCP and CCP.
/// Subclasses provide option semantics; the base class provides the
/// full state machine with restart timers and counters.
class Fsm {
  public:
    using Timers = FsmTimers;

    Fsm(sim::Simulator& simulator, std::string name, Timers timers = {});
    virtual ~Fsm();

    Fsm(const Fsm&) = delete;
    Fsm& operator=(const Fsm&) = delete;

    /// Where outgoing control packets go (the pppd wraps them in the
    /// right PPP protocol number).
    void setSender(std::function<void(const ControlPacket&)> sender) {
        sender_ = std::move(sender);
    }

    // --- administrative events ---
    void up();    ///< lower layer is available
    void down();  ///< lower layer went away
    void open();  ///< administratively open
    void close(); ///< administratively close

    /// Feed a received control packet for this protocol.
    void receive(const ControlPacket& packet);

    /// Peer sent a Protocol-Reject for this protocol: fatal for the
    /// protocol (RXJ- semantics).
    void protocolRejected();

    [[nodiscard]] FsmState state() const noexcept { return state_; }
    [[nodiscard]] bool isOpened() const noexcept { return state_ == FsmState::opened; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

  protected:
    // --- subclass option semantics ---
    /// Options to put in our next Configure-Request.
    virtual std::vector<Option> buildConfigRequest() = 0;
    /// Judge the peer's Configure-Request.
    virtual ConfigDecision checkConfigRequest(const std::vector<Option>& options) = 0;
    /// Peer acknowledged our request (negotiation result committed).
    virtual void onConfigAcked(const std::vector<Option>& options) = 0;
    /// Peer nak'ed/rejected some of our options: adjust desires.
    virtual void onConfigNakOrReject(bool isReject, const std::vector<Option>& options) = 0;
    /// Non-configure codes a subclass understands (LCP echo etc).
    /// Return true when handled; false triggers Code-Reject.
    virtual bool onExtraCode(const ControlPacket& packet);

    // --- layer callbacks (subclass or owner hooks) ---
    virtual void onThisLayerUp() {}
    virtual void onThisLayerDown() {}
    virtual void onThisLayerStarted() {}
    virtual void onThisLayerFinished() {}

    void sendPacket(const ControlPacket& packet);

    sim::Simulator& sim_;
    util::Logger log_;

  private:
    enum class TimeoutKind : std::uint8_t { none, configure, terminate };

    // RFC actions.
    void tlu();
    void tld();
    void tls();
    void tlf();
    void initRestartCount(int count);
    void zeroRestartCount();
    void sendConfigRequest();         // scr
    void sendConfigAck(const ControlPacket& request);              // sca
    void sendConfigNakOrRej(const ControlPacket& request, const ConfigDecision& decision);  // scn
    void sendTerminateRequest();      // str
    void sendTerminateAck(std::uint8_t id);  // sta
    void sendCodeReject(const ControlPacket& packet);  // scj

    void startTimer(TimeoutKind kind);
    void stopTimer();
    void onTimeout();

    void setState(FsmState next);

    // Per-event handlers.
    void eventRcr(const ControlPacket& packet);
    void eventRca(const ControlPacket& packet);
    void eventRcn(const ControlPacket& packet, bool isReject);
    void eventRtr(const ControlPacket& packet);
    void eventRta();
    void eventRuc(const ControlPacket& packet);
    void eventRxjMinus();

    std::string name_;
    Timers timers_;
    FsmState state_ = FsmState::initial;
    /// Re-negotiations: leaving Opened back into a configure exchange
    /// (registry metric "ppp.<name>.renegotiations").
    obs::Counter* renegotiations_ = nullptr;
    std::function<void(const ControlPacket&)> sender_;
    int restartCount_ = 0;
    std::uint8_t requestId_ = 0;  ///< id of our outstanding Configure-Request
    std::uint8_t nextId_ = 1;
    sim::EventHandle timer_;
    TimeoutKind timeoutKind_ = TimeoutKind::none;
};

}  // namespace onelab::ppp
