#include "ppp/auth.hpp"

#include "util/md5.hpp"

namespace onelab::ppp {

namespace {

// PAP codes (RFC 1334).
constexpr std::uint8_t kPapRequest = 1;
constexpr std::uint8_t kPapAck = 2;
constexpr std::uint8_t kPapNak = 3;

// CHAP codes (RFC 1994).
constexpr std::uint8_t kChapChallenge = 1;
constexpr std::uint8_t kChapResponse = 2;
constexpr std::uint8_t kChapSuccess = 3;
constexpr std::uint8_t kChapFailure = 4;

constexpr sim::SimTime kRetryInterval = sim::millis(1000);

util::Md5::Digest chapDigest(std::uint8_t id, const std::string& secret,
                             util::ByteView challenge) {
    util::Md5 md5;
    md5.update(util::ByteView{&id, 1});
    md5.update(secret);
    md5.update(challenge);
    return md5.finish();
}

/// CHAP challenge/response body: value-size(1), value, name.
struct ChapBody {
    util::Bytes value;
    std::string name;
};

std::optional<ChapBody> parseChapBody(util::ByteView data) {
    if (data.empty()) return std::nullopt;
    const std::size_t valueSize = data[0];
    if (data.size() < 1 + valueSize) return std::nullopt;
    ChapBody body;
    body.value.assign(data.begin() + 1, data.begin() + 1 + long(valueSize));
    body.name.assign(data.begin() + 1 + long(valueSize), data.end());
    return body;
}

util::Bytes encodeChapBody(util::ByteView value, const std::string& name) {
    util::Bytes out;
    util::putU8(out, std::uint8_t(value.size()));
    util::putBytes(out, value);
    out.insert(out.end(), name.begin(), name.end());
    return out;
}

}  // namespace

// ---------------------------------------------------------------- peer

Authenticatee::Authenticatee(sim::Simulator& simulator, AuthProtocol protocol,
                             Credentials credentials,
                             std::function<void(Protocol, const ControlPacket&)> sender)
    : sim_(simulator),
      protocol_(protocol),
      credentials_(std::move(credentials)),
      sender_(std::move(sender)) {}

Authenticatee::~Authenticatee() { stop(); }

void Authenticatee::start() {
    done_ = false;
    retriesLeft_ = 4;
    if (protocol_ == AuthProtocol::none) {
        finish(true, "no authentication required");
        return;
    }
    if (protocol_ == AuthProtocol::pap) sendPapRequest();
    // CHAP: passive until the challenge arrives.
}

void Authenticatee::stop() {
    if (retryTimer_.valid()) sim_.cancel(retryTimer_);
    retryTimer_ = {};
}

void Authenticatee::sendPapRequest() {
    if (done_) return;
    if (retriesLeft_-- <= 0) {
        finish(false, "PAP timeout");
        return;
    }
    ControlPacket packet;
    packet.code = Code{kPapRequest};
    packet.identifier = papId_;
    util::putU8(packet.data, std::uint8_t(credentials_.username.size()));
    packet.data.insert(packet.data.end(), credentials_.username.begin(),
                       credentials_.username.end());
    util::putU8(packet.data, std::uint8_t(credentials_.password.size()));
    packet.data.insert(packet.data.end(), credentials_.password.begin(),
                       credentials_.password.end());
    sender_(Protocol::pap, packet);
    retryTimer_ = sim_.schedule(kRetryInterval, [this] { sendPapRequest(); });
}

void Authenticatee::receive(Protocol protocol, const ControlPacket& packet) {
    if (done_) return;
    if (protocol == Protocol::pap && protocol_ == AuthProtocol::pap) {
        if (std::uint8_t(packet.code) == kPapAck)
            finish(true, "PAP accepted");
        else if (std::uint8_t(packet.code) == kPapNak)
            finish(false, "PAP rejected");
        return;
    }
    if (protocol == Protocol::chap && protocol_ == AuthProtocol::chap_md5) {
        const std::uint8_t code = std::uint8_t(packet.code);
        if (code == kChapChallenge) {
            const auto body = parseChapBody(packet.data);
            if (!body) return;
            const auto digest = chapDigest(packet.identifier, credentials_.password,
                                           util::ByteView{body->value.data(), body->value.size()});
            ControlPacket response;
            response.code = Code{kChapResponse};
            response.identifier = packet.identifier;
            response.data = encodeChapBody(util::ByteView{digest.data(), digest.size()},
                                           credentials_.username);
            sender_(Protocol::chap, response);
        } else if (code == kChapSuccess) {
            finish(true, "CHAP success");
        } else if (code == kChapFailure) {
            finish(false, "CHAP failure");
        }
    }
}

void Authenticatee::finish(bool ok, std::string message) {
    if (done_) return;
    done_ = true;
    stop();
    log_.info() << "authentication " << (ok ? "succeeded" : "FAILED") << ": " << message;
    if (onResult) onResult(ok, std::move(message));
}

// ---------------------------------------------------------- authenticator

Authenticator::Authenticator(
    sim::Simulator& simulator, AuthProtocol protocol, std::string localName,
    std::function<std::optional<std::string>(const std::string&)> secretLookup,
    std::function<void(Protocol, const ControlPacket&)> sender, util::RandomStream rng)
    : sim_(simulator),
      protocol_(protocol),
      localName_(std::move(localName)),
      secretLookup_(std::move(secretLookup)),
      sender_(std::move(sender)),
      rng_(std::move(rng)) {}

Authenticator::~Authenticator() { stop(); }

void Authenticator::start() {
    done_ = false;
    retriesLeft_ = 4;
    if (protocol_ == AuthProtocol::none) {
        finish(true, "");
        return;
    }
    if (protocol_ == AuthProtocol::chap_md5) sendChallenge();
    // PAP: passive until the peer's Authenticate-Request.
}

void Authenticator::stop() {
    if (retryTimer_.valid()) sim_.cancel(retryTimer_);
    retryTimer_ = {};
}

void Authenticator::sendChallenge() {
    if (done_) return;
    if (retriesLeft_-- <= 0) {
        finish(false, "");
        return;
    }
    if (challenge_.empty()) {
        challenge_.resize(16);
        for (auto& byte : challenge_) byte = std::uint8_t(rng_.uniformInt(0, 255));
        chapId_++;
    }
    ControlPacket packet;
    packet.code = Code{kChapChallenge};
    packet.identifier = chapId_;
    packet.data = encodeChapBody(util::ByteView{challenge_.data(), challenge_.size()},
                                 localName_);
    sender_(Protocol::chap, packet);
    retryTimer_ = sim_.schedule(kRetryInterval, [this] { sendChallenge(); });
}

void Authenticator::receive(Protocol protocol, const ControlPacket& packet) {
    if (done_) return;
    if (protocol == Protocol::pap && protocol_ == AuthProtocol::pap) {
        if (std::uint8_t(packet.code) != kPapRequest) return;
        util::ByteReader reader{{packet.data.data(), packet.data.size()}};
        const std::size_t nameLength = reader.u8();
        const util::Bytes name = reader.bytes(nameLength);
        const std::size_t passwordLength = reader.u8();
        const util::Bytes password = reader.bytes(passwordLength);
        ControlPacket reply;
        reply.identifier = packet.identifier;
        const std::string username{name.begin(), name.end()};
        const auto secret = reader.ok() ? secretLookup_(username) : std::nullopt;
        const bool ok = acceptAll_ ||
                        (secret && *secret == std::string{password.begin(), password.end()});
        reply.code = Code{ok ? kPapAck : kPapNak};
        const std::string message = ok ? "Login ok" : "Login incorrect";
        util::putU8(reply.data, std::uint8_t(message.size()));
        reply.data.insert(reply.data.end(), message.begin(), message.end());
        sender_(Protocol::pap, reply);
        finish(ok, username);
        return;
    }
    if (protocol == Protocol::chap && protocol_ == AuthProtocol::chap_md5) {
        if (std::uint8_t(packet.code) != kChapResponse || packet.identifier != chapId_) return;
        const auto body = parseChapBody(packet.data);
        if (!body) return;
        const auto secret = secretLookup_(body->name);
        bool ok = acceptAll_;
        if (!ok && secret) {
            const auto expected =
                chapDigest(chapId_, *secret,
                           util::ByteView{challenge_.data(), challenge_.size()});
            ok = body->value.size() == expected.size() &&
                 std::equal(expected.begin(), expected.end(), body->value.begin());
        }
        ControlPacket reply;
        reply.code = Code{ok ? kChapSuccess : kChapFailure};
        reply.identifier = chapId_;
        const std::string message = ok ? "Welcome" : "Authentication failed";
        reply.data.assign(message.begin(), message.end());
        sender_(Protocol::chap, reply);
        finish(ok, body->name);
    }
}

void Authenticator::finish(bool ok, std::string peerName) {
    if (done_) return;
    done_ = true;
    stop();
    log_.info() << "peer authentication " << (ok ? "succeeded" : "FAILED") << " for '"
                << peerName << "'";
    if (onResult) onResult(ok, std::move(peerName));
}

}  // namespace onelab::ppp
