#pragma once

#include <functional>

#include "ppp/fsm.hpp"

namespace onelab::ppp {

/// CCP configuration: whether we offer/accept the deflate-style
/// transform and the window size code we advertise.
struct CcpConfig {
    bool enable = true;
    std::uint8_t windowCode = 12;  ///< log2 of the sliding window
};

/// CCP (RFC 1962 subset): negotiates the LZSS "deflate" transform in
/// both directions. When opened, the pppd compresses outgoing IP
/// datagrams into protocol 0x00fd frames.
class Ccp final : public Fsm {
  public:
    Ccp(sim::Simulator& simulator, CcpConfig config, Timers timers = {});

    /// True when we may compress what we send (peer acked our option).
    [[nodiscard]] bool sendCompressed() const noexcept { return isOpened() && sendOk_; }
    /// True when the peer may send us compressed data.
    [[nodiscard]] bool recvCompressed() const noexcept { return isOpened() && recvOk_; }

    std::function<void()> onUp;
    std::function<void()> onDown;

  protected:
    std::vector<Option> buildConfigRequest() override;
    ConfigDecision checkConfigRequest(const std::vector<Option>& options) override;
    void onConfigAcked(const std::vector<Option>& options) override;
    void onConfigNakOrReject(bool isReject, const std::vector<Option>& options) override;
    void onThisLayerUp() override;
    void onThisLayerDown() override;

  private:
    CcpConfig config_;
    bool offerRejected_ = false;
    bool sendOk_ = false;
    bool recvOk_ = false;
};

}  // namespace onelab::ppp
