#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace onelab::ppp {

/// PPP FCS-16 (RFC 1662 appendix C): CRC-16/X.25, reflected,
/// polynomial 0x8408, initial value 0xffff.
inline constexpr std::uint16_t kFcsInit = 0xffff;
/// Value of the running FCS after including a correct trailing FCS.
inline constexpr std::uint16_t kFcsGood = 0xf0b8;

/// Incrementally extend a running FCS with one byte.
[[nodiscard]] std::uint16_t fcsStep(std::uint16_t fcs, std::uint8_t byte) noexcept;

/// FCS over a whole buffer, starting from kFcsInit.
[[nodiscard]] std::uint16_t fcs16(util::ByteView data) noexcept;

/// True when `data` (payload + trailing 2-byte FCS, little-endian as
/// transmitted) verifies.
[[nodiscard]] bool fcsValid(util::ByteView dataWithFcs) noexcept;

}  // namespace onelab::ppp
