#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace onelab::ppp {

/// PPP FCS-16 (RFC 1662 appendix C): CRC-16/X.25, reflected,
/// polynomial 0x8408, initial value 0xffff.
inline constexpr std::uint16_t kFcsInit = 0xffff;
/// Value of the running FCS after including a correct trailing FCS.
inline constexpr std::uint16_t kFcsGood = 0xf0b8;

/// The slice-by-8 tables for the reflected CRC-16/X.25 walk. Table 0
/// is the classic byte table; table k advances table k-1 by one
/// zero-byte step, so eight lookups absorb eight message bytes at
/// once. Header-inline so per-byte steps on hot paths (the deframer's
/// escaped-byte case) compile to one lookup with no call.
using FcsTables = std::array<std::array<std::uint16_t, 256>, 8>;

namespace detail {
constexpr FcsTables makeFcsTables() {
    FcsTables tables{};
    for (std::uint32_t b = 0; b < 256; ++b) {
        std::uint16_t value = std::uint16_t(b);
        for (int bit = 0; bit < 8; ++bit)
            value = (value & 1) ? std::uint16_t((value >> 1) ^ 0x8408) : std::uint16_t(value >> 1);
        tables[0][b] = value;
    }
    for (std::size_t k = 1; k < tables.size(); ++k)
        for (std::uint32_t b = 0; b < 256; ++b)
            tables[k][b] =
                std::uint16_t((tables[k - 1][b] >> 8) ^ tables[0][tables[k - 1][b] & 0xff]);
    return tables;
}
}  // namespace detail

inline constexpr FcsTables kFcsTables = detail::makeFcsTables();

[[nodiscard]] inline const FcsTables& fcsTables() noexcept { return kFcsTables; }

/// Incrementally extend a running FCS with one byte.
[[nodiscard]] inline std::uint16_t fcsStep(std::uint16_t fcs, std::uint8_t byte) noexcept {
    return std::uint16_t((fcs >> 8) ^ kFcsTables[0][(fcs ^ byte) & 0xff]);
}

/// Extend a running FCS over a whole buffer: slice-by-8 table walk
/// (eight bytes per step), byte-stepping the tail. The bulk form the
/// fused framer pass calls once per no-escape run.
[[nodiscard]] std::uint16_t fcsUpdate(std::uint16_t fcs, util::ByteView data) noexcept;

/// FCS over a whole buffer, starting from kFcsInit.
[[nodiscard]] std::uint16_t fcs16(util::ByteView data) noexcept;

/// True when `data` (payload + trailing 2-byte FCS, little-endian as
/// transmitted) verifies.
[[nodiscard]] bool fcsValid(util::ByteView dataWithFcs) noexcept;

/// Advance the FCS over eight message bytes packed little-endian in
/// `word` (byte 0 in the low octet). Same walk as fcsUpdate's bulk
/// step, fed from a register instead of memory — for callers fusing
/// the FCS into their own word-at-a-time scans (the framer's escape
/// scan advances the FCS on the word it already loaded instead of
/// re-reading the buffer).
[[nodiscard]] inline std::uint16_t fcsStepWord(std::uint16_t fcs, std::uint64_t word,
                                               const FcsTables& t) noexcept {
    return std::uint16_t(t[7][(fcs ^ word) & 0xff] ^ t[6][((fcs >> 8) ^ (word >> 8)) & 0xff] ^
                         t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
                         t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
                         t[1][(word >> 48) & 0xff] ^ t[0][(word >> 56) & 0xff]);
}

}  // namespace onelab::ppp
