#include "ppp/compress.hpp"

#include <array>

namespace onelab::ppp {

namespace {
constexpr std::uint8_t kMethodStored = 0;
constexpr std::uint8_t kMethodLzss = 1;
}  // namespace

util::Bytes LzssCodec::compress(util::ByteView input) {
    util::Bytes body;
    body.reserve(input.size());

    std::size_t pos = 0;
    std::size_t flagIndex = 0;
    std::uint8_t flagBits = 0;
    int itemCount = 0;

    auto flushFlags = [&] {
        if (itemCount == 0) return;
        body[flagIndex] = flagBits;
        flagBits = 0;
        itemCount = 0;
    };

    while (pos < input.size()) {
        if (itemCount == 0) {
            flagIndex = body.size();
            body.push_back(0);  // placeholder for the flag byte
        }

        // Greedy longest-match search within the window.
        std::size_t bestLength = 0;
        std::size_t bestOffset = 0;
        const std::size_t windowStart = pos > kWindowSize ? pos - kWindowSize : 0;
        const std::size_t maxLength = std::min(kMaxMatch, input.size() - pos);
        if (maxLength >= kMinMatch) {
            for (std::size_t candidate = windowStart; candidate < pos; ++candidate) {
                std::size_t length = 0;
                while (length < maxLength && input[candidate + length] == input[pos + length])
                    ++length;
                if (length > bestLength) {
                    bestLength = length;
                    bestOffset = pos - candidate;
                    if (length == maxLength) break;
                }
            }
        }

        if (bestLength >= kMinMatch) {
            // Back-reference item (flag bit stays 0).
            const std::uint16_t packed =
                std::uint16_t(((bestOffset - 1) << 4) | (bestLength - kMinMatch));
            body.push_back(std::uint8_t(packed >> 8));
            body.push_back(std::uint8_t(packed));
            pos += bestLength;
        } else {
            flagBits |= std::uint8_t(1u << itemCount);
            body.push_back(input[pos]);
            ++pos;
        }
        if (++itemCount == 8) flushFlags();
    }
    flushFlags();

    util::Bytes out;
    if (body.size() >= input.size()) {
        out.reserve(input.size() + 1);
        out.push_back(kMethodStored);
        out.insert(out.end(), input.begin(), input.end());
    } else {
        out.reserve(body.size() + 1);
        out.push_back(kMethodLzss);
        out.insert(out.end(), body.begin(), body.end());
    }
    return out;
}

util::Result<util::Bytes> LzssCodec::decompress(util::ByteView input) {
    if (input.empty())
        return util::err(util::Error::Code::protocol, "empty compressed payload");
    const std::uint8_t method = input[0];
    input = input.subspan(1);

    if (method == kMethodStored) return util::Bytes{input.begin(), input.end()};
    if (method != kMethodLzss)
        return util::err(util::Error::Code::protocol, "unknown compression method");

    util::Bytes out;
    std::size_t pos = 0;
    while (pos < input.size()) {
        const std::uint8_t flags = input[pos++];
        for (int bit = 0; bit < 8 && pos < input.size(); ++bit) {
            if (flags & (1u << bit)) {
                out.push_back(input[pos++]);
            } else {
                if (pos + 2 > input.size())
                    return util::err(util::Error::Code::protocol, "truncated back-reference");
                const std::uint16_t packed = std::uint16_t((input[pos] << 8) | input[pos + 1]);
                pos += 2;
                const std::size_t offset = std::size_t(packed >> 4) + 1;
                const std::size_t length = std::size_t(packed & 0x0f) + kMinMatch;
                if (offset > out.size())
                    return util::err(util::Error::Code::protocol, "back-reference before start");
                for (std::size_t i = 0; i < length; ++i)
                    out.push_back(out[out.size() - offset]);
            }
        }
    }
    return out;
}

}  // namespace onelab::ppp
