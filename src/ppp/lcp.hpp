#pragma once

#include <functional>
#include <optional>

#include "ppp/fsm.hpp"
#include "util/rand.hpp"

namespace onelab::ppp {

/// Authentication protocols LCP can negotiate.
enum class AuthProtocol : std::uint8_t { none, pap, chap_md5 };

[[nodiscard]] const char* authName(AuthProtocol auth) noexcept;

/// Rewind the process-global entropy counter mixed into LCP magic
/// numbers. The counter exists to break rng symmetry between
/// identically-seeded endpoints; rewinding it at the start of a run
/// makes same-seed runs reproduce the exact same magic numbers (and
/// hence byte-identical telemetry).
void resetMagicEntropy() noexcept;

/// Local LCP desires.
struct LcpConfig {
    /// Nonzero: magic-number entropy derives from this seed plus a
    /// per-instance draw ordinal instead of the process-global
    /// (thread-local) counter. Sharded fleets set it (from the
    /// endpoint's own pppd seed) so magic numbers — and hence HDLC
    /// escaping and frame lengths — never depend on which worker
    /// thread ran the bring-up. Zero keeps the legacy counter, whose
    /// draw order is what breaks rng symmetry between
    /// identically-seeded endpoints.
    std::uint64_t entropySeed = 0;
    std::uint16_t mru = 1500;
    std::uint32_t accm = 0x00000000;  ///< we can receive unescaped control chars
    bool requestMagic = true;
    bool requestPfc = true;
    bool requestAcfc = true;
    /// What we demand the peer authenticate with (network side sets
    /// this; the UE side leaves none).
    AuthProtocol requireAuth = AuthProtocol::none;
};

/// Negotiated link parameters, split by direction.
struct LcpResult {
    std::uint16_t sendMru = 1500;   ///< largest information field we may send
    std::uint32_t sendAccm = 0xffffffff;  ///< chars we must escape when sending
    bool sendPfc = false;           ///< peer accepts compressed protocol field
    bool sendAcfc = false;          ///< peer accepts elided address/control
    std::uint32_t localMagic = 0;
    std::uint32_t peerMagic = 0;
    /// Auth the peer demands from us (we are the authenticatee).
    AuthProtocol peerRequiresAuth = AuthProtocol::none;
    /// Auth we demanded and the peer accepted (we are authenticator).
    AuthProtocol weRequireAuth = AuthProtocol::none;
};

/// LCP: negotiates MRU, ACCM, magic number, PFC/ACFC and the
/// authentication protocol; handles echo request/reply keepalives and
/// loopback detection via magic numbers.
class Lcp final : public Fsm {
  public:
    Lcp(sim::Simulator& simulator, LcpConfig config, util::RandomStream rng,
        Timers timers = {});

    [[nodiscard]] const LcpResult& result() const noexcept { return result_; }

    /// Layer callbacks for the owning pppd.
    std::function<void()> onUp;
    std::function<void()> onDown;
    std::function<void()> onFinished;
    /// Echo-Reply received (keepalive bookkeeping).
    std::function<void()> onEchoReply;

    /// Send an LCP Echo-Request (only meaningful when opened).
    void sendEchoRequest();

    /// Send a Protocol-Reject for an unknown protocol number.
    void sendProtocolReject(std::uint16_t protocol, util::ByteView info);

  protected:
    std::vector<Option> buildConfigRequest() override;
    ConfigDecision checkConfigRequest(const std::vector<Option>& options) override;
    void onConfigAcked(const std::vector<Option>& options) override;
    void onConfigNakOrReject(bool isReject, const std::vector<Option>& options) override;
    bool onExtraCode(const ControlPacket& packet) override;
    void onThisLayerUp() override;
    void onThisLayerDown() override;
    void onThisLayerFinished() override;

  private:
    [[nodiscard]] std::uint32_t nextMagicSalt();

    LcpConfig config_;
    LcpResult result_;
    util::RandomStream rng_;
    std::uint32_t entropyDraws_ = 0;
    // Which of our options the peer rejected (stop requesting them).
    bool magicRejected_ = false;
    bool pfcRejected_ = false;
    bool acfcRejected_ = false;
    bool accmRejected_ = false;
    bool mruRejected_ = false;
    bool authRejected_ = false;
    std::uint8_t nextEchoId_ = 1;
};

}  // namespace onelab::ppp
