#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace onelab::ppp {

/// Control-protocol packet codes shared by LCP/IPCP/CCP (RFC 1661 §5).
enum class Code : std::uint8_t {
    configure_request = 1,
    configure_ack = 2,
    configure_nak = 3,
    configure_reject = 4,
    terminate_request = 5,
    terminate_ack = 6,
    code_reject = 7,
    protocol_reject = 8,  // LCP only
    echo_request = 9,     // LCP only
    echo_reply = 10,      // LCP only
    discard_request = 11, // LCP only
};

/// A control-protocol packet: code, identifier, data.
struct ControlPacket {
    Code code{};
    std::uint8_t identifier = 0;
    util::Bytes data;

    [[nodiscard]] util::Bytes serialize() const;
    static util::Result<ControlPacket> parse(util::ByteView info);
};

/// One configuration option in TLV form (type, length, value).
struct Option {
    std::uint8_t type = 0;
    util::Bytes value;

    [[nodiscard]] std::size_t encodedSize() const noexcept { return 2 + value.size(); }
};

/// Encode a list of options into a packet data field.
[[nodiscard]] util::Bytes encodeOptions(const std::vector<Option>& options);

/// Parse an options list; protocol error on malformed TLVs.
util::Result<std::vector<Option>> parseOptions(util::ByteView data);

/// Well-known LCP option types.
namespace lcp_opt {
inline constexpr std::uint8_t mru = 1;
inline constexpr std::uint8_t accm = 2;
inline constexpr std::uint8_t auth_protocol = 3;
inline constexpr std::uint8_t magic_number = 5;
inline constexpr std::uint8_t pfc = 7;
inline constexpr std::uint8_t acfc = 8;
}  // namespace lcp_opt

/// Well-known IPCP option types.
namespace ipcp_opt {
inline constexpr std::uint8_t ip_address = 3;
inline constexpr std::uint8_t primary_dns = 129;
}  // namespace ipcp_opt

/// CCP option types (we implement the deflate-style transform).
namespace ccp_opt {
inline constexpr std::uint8_t deflate = 26;
}

/// Option value helpers.
[[nodiscard]] Option makeU16Option(std::uint8_t type, std::uint16_t value);
[[nodiscard]] Option makeU32Option(std::uint8_t type, std::uint32_t value);
[[nodiscard]] std::optional<std::uint16_t> optionU16(const Option& option);
[[nodiscard]] std::optional<std::uint32_t> optionU32(const Option& option);

/// Human-readable rendering for logs.
[[nodiscard]] std::string describeOption(const Option& option);
[[nodiscard]] const char* codeName(Code code) noexcept;

}  // namespace onelab::ppp
