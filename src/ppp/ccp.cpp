#include "ppp/ccp.hpp"

namespace onelab::ppp {

Ccp::Ccp(sim::Simulator& simulator, CcpConfig config, Timers timers)
    : Fsm(simulator, "ccp", timers), config_(config) {}

std::vector<Option> Ccp::buildConfigRequest() {
    std::vector<Option> options;
    if (config_.enable && !offerRejected_) {
        Option option;
        option.type = ccp_opt::deflate;
        util::putU8(option.value, config_.windowCode);
        options.push_back(std::move(option));
    }
    return options;
}

ConfigDecision Ccp::checkConfigRequest(const std::vector<Option>& options) {
    ConfigDecision decision;
    for (const Option& option : options) {
        const bool known = option.type == ccp_opt::deflate && option.value.size() == 1;
        if (!known || !config_.enable) decision.options.push_back(option);
    }
    if (!decision.options.empty()) {
        decision.verdict = ConfigDecision::Verdict::reject;
        return decision;
    }
    recvOk_ = !options.empty();
    decision.verdict = ConfigDecision::Verdict::ack;
    return decision;
}

void Ccp::onConfigAcked(const std::vector<Option>& options) {
    sendOk_ = false;
    for (const Option& option : options)
        if (option.type == ccp_opt::deflate) sendOk_ = true;
}

void Ccp::onConfigNakOrReject(bool isReject, const std::vector<Option>& options) {
    for (const Option& option : options) {
        if (option.type != ccp_opt::deflate) continue;
        if (isReject)
            offerRejected_ = true;
        else if (option.value.size() == 1)
            config_.windowCode = option.value[0];
    }
}

void Ccp::onThisLayerUp() {
    if (onUp) onUp();
}

void Ccp::onThisLayerDown() {
    sendOk_ = false;
    recvOk_ = false;
    if (onDown) onDown();
}

}  // namespace onelab::ppp
