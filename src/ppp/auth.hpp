#pragma once

#include <functional>
#include <optional>
#include <string>

#include "ppp/framer.hpp"
#include "ppp/lcp.hpp"
#include "ppp/options.hpp"
#include "sim/simulator.hpp"
#include "util/logging.hpp"
#include "util/rand.hpp"

namespace onelab::ppp {

/// Username/password pair used by PAP and CHAP.
struct Credentials {
    std::string username;
    std::string password;
};

/// Peer-side of authentication (the UE proving itself to the GGSN).
/// Drives PAP (RFC 1334) or CHAP-MD5 (RFC 1994) depending on what LCP
/// negotiated.
class Authenticatee {
  public:
    Authenticatee(sim::Simulator& simulator, AuthProtocol protocol, Credentials credentials,
                  std::function<void(Protocol, const ControlPacket&)> sender);
    ~Authenticatee();

    /// Begin: PAP sends Authenticate-Request immediately (with
    /// retransmit); CHAP waits for the challenge.
    void start();
    void stop();

    /// Feed a PAP/CHAP packet from the line.
    void receive(Protocol protocol, const ControlPacket& packet);

    /// Fires exactly once with the outcome.
    std::function<void(bool ok, std::string message)> onResult;

  private:
    void sendPapRequest();
    void finish(bool ok, std::string message);

    sim::Simulator& sim_;
    util::Logger log_{"ppp.auth.peer"};
    AuthProtocol protocol_;
    Credentials credentials_;
    std::function<void(Protocol, const ControlPacket&)> sender_;
    sim::EventHandle retryTimer_;
    int retriesLeft_ = 4;
    std::uint8_t papId_ = 1;
    bool done_ = false;
};

/// Authenticator side (the GGSN checking the UE). Looks up secrets by
/// username through a callback so operator profiles can plug in their
/// subscriber database.
class Authenticator {
  public:
    Authenticator(sim::Simulator& simulator, AuthProtocol protocol, std::string localName,
                  std::function<std::optional<std::string>(const std::string&)> secretLookup,
                  std::function<void(Protocol, const ControlPacket&)> sender,
                  util::RandomStream rng);
    ~Authenticator();

    /// Begin: CHAP sends the challenge (with retransmit); PAP waits
    /// for the peer's request.
    void start();
    void stop();

    /// Accept any credentials (commercial consumer APNs ignore the
    /// username/password but still run the auth exchange).
    void setAcceptAll(bool acceptAll) noexcept { acceptAll_ = acceptAll; }

    void receive(Protocol protocol, const ControlPacket& packet);

    std::function<void(bool ok, std::string peerName)> onResult;

  private:
    void sendChallenge();
    void finish(bool ok, std::string peerName);

    sim::Simulator& sim_;
    util::Logger log_{"ppp.auth.server"};
    AuthProtocol protocol_;
    std::string localName_;
    std::function<std::optional<std::string>(const std::string&)> secretLookup_;
    std::function<void(Protocol, const ControlPacket&)> sender_;
    util::RandomStream rng_;
    sim::EventHandle retryTimer_;
    int retriesLeft_ = 4;
    std::uint8_t chapId_ = 1;
    util::Bytes challenge_;
    bool done_ = false;
    bool acceptAll_ = false;
};

}  // namespace onelab::ppp
