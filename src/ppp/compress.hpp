#pragma once

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace onelab::ppp {

/// Deflate-style LZSS codec standing in for the `ppp_deflate` kernel
/// module. Self-contained and deterministic; both PPP endpoints run
/// the same transform when CCP negotiates it.
///
/// Wire format: 1 method byte (0 = stored, 1 = LZSS), then either the
/// raw bytes or LZSS items: flag bytes covering 8 items each, bit set
/// = literal byte, bit clear = 2-byte (offset, length) back-reference
/// with a 12-bit offset into the sliding window and 4-bit length-3.
class LzssCodec {
  public:
    static constexpr std::size_t kWindowSize = 4096;
    static constexpr std::size_t kMinMatch = 3;
    static constexpr std::size_t kMaxMatch = 18;

    /// Compress; falls back to stored when expansion would occur.
    [[nodiscard]] static util::Bytes compress(util::ByteView input);

    /// Decompress; protocol error on malformed input.
    static util::Result<util::Bytes> decompress(util::ByteView input);
};

}  // namespace onelab::ppp
