#include "ppp/options.hpp"

#include "util/strings.hpp"

namespace onelab::ppp {

util::Bytes ControlPacket::serialize() const {
    util::Bytes out;
    out.reserve(4 + data.size());
    util::putU8(out, std::uint8_t(code));
    util::putU8(out, identifier);
    util::putU16(out, std::uint16_t(4 + data.size()));
    util::putBytes(out, data);
    return out;
}

util::Result<ControlPacket> ControlPacket::parse(util::ByteView info) {
    util::ByteReader reader{info};
    ControlPacket pkt;
    pkt.code = Code{reader.u8()};
    pkt.identifier = reader.u8();
    const std::uint16_t length = reader.u16();
    if (!reader.ok() || length < 4 || info.size() < length)
        return util::err(util::Error::Code::protocol, "truncated control packet");
    pkt.data = reader.bytes(length - 4);
    return pkt;
}

util::Bytes encodeOptions(const std::vector<Option>& options) {
    util::Bytes out;
    for (const Option& option : options) {
        util::putU8(out, option.type);
        util::putU8(out, std::uint8_t(option.encodedSize()));
        util::putBytes(out, option.value);
    }
    return out;
}

util::Result<std::vector<Option>> parseOptions(util::ByteView data) {
    std::vector<Option> options;
    std::size_t offset = 0;
    while (offset < data.size()) {
        if (data.size() - offset < 2)
            return util::err(util::Error::Code::protocol, "truncated option header");
        const std::uint8_t type = data[offset];
        const std::uint8_t length = data[offset + 1];
        if (length < 2 || offset + length > data.size())
            return util::err(util::Error::Code::protocol, "bad option length");
        Option option;
        option.type = type;
        option.value.assign(data.begin() + long(offset + 2), data.begin() + long(offset + length));
        options.push_back(std::move(option));
        offset += length;
    }
    return options;
}

Option makeU16Option(std::uint8_t type, std::uint16_t value) {
    Option option;
    option.type = type;
    util::putU16(option.value, value);
    return option;
}

Option makeU32Option(std::uint8_t type, std::uint32_t value) {
    Option option;
    option.type = type;
    util::putU32(option.value, value);
    return option;
}

std::optional<std::uint16_t> optionU16(const Option& option) {
    if (option.value.size() != 2) return std::nullopt;
    return std::uint16_t((option.value[0] << 8) | option.value[1]);
}

std::optional<std::uint32_t> optionU32(const Option& option) {
    if (option.value.size() != 4) return std::nullopt;
    return (std::uint32_t(option.value[0]) << 24) | (std::uint32_t(option.value[1]) << 16) |
           (std::uint32_t(option.value[2]) << 8) | option.value[3];
}

std::string describeOption(const Option& option) {
    return util::format("opt(type=%u len=%zu %s)", option.type, option.value.size(),
                        util::hexDump(option.value, 8).c_str());
}

const char* codeName(Code code) noexcept {
    switch (code) {
        case Code::configure_request: return "Configure-Request";
        case Code::configure_ack: return "Configure-Ack";
        case Code::configure_nak: return "Configure-Nak";
        case Code::configure_reject: return "Configure-Reject";
        case Code::terminate_request: return "Terminate-Request";
        case Code::terminate_ack: return "Terminate-Ack";
        case Code::code_reject: return "Code-Reject";
        case Code::protocol_reject: return "Protocol-Reject";
        case Code::echo_request: return "Echo-Request";
        case Code::echo_reply: return "Echo-Reply";
        case Code::discard_request: return "Discard-Request";
    }
    return "Unknown";
}

}  // namespace onelab::ppp
