#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ppp/auth.hpp"
#include "ppp/ccp.hpp"
#include "ppp/framer.hpp"
#include "ppp/ipcp.hpp"
#include "ppp/lcp.hpp"
#include "sim/buffer_pool.hpp"
#include "sim/pipe.hpp"
#include "util/rand.hpp"

namespace onelab::ppp {

/// pppd phases (RFC 1661 §3.2).
enum class PppPhase : std::uint8_t {
    dead,
    establish,
    authenticate,
    network,
    running,
    terminate,
};

[[nodiscard]] const char* phaseName(PppPhase phase) noexcept;

/// Full daemon configuration. A dial-up client (the PlanetLab node)
/// sets credentials; the network side (GGSN) sets isServer plus the
/// addresses to assign and the subscriber secret lookup.
struct PppdConfig {
    std::string name = "ppp";  ///< log tag
    bool isServer = false;

    // Client side.
    Credentials credentials;
    bool requestDns = false;

    // Server side.
    AuthProtocol requireAuth = AuthProtocol::none;
    bool acceptAnyPeer = false;  ///< run the auth exchange but accept anything
    std::function<std::optional<std::string>(const std::string&)> secretLookup;
    net::Ipv4Address localAddress;
    net::Ipv4Address addressForPeer;
    net::Ipv4Address dnsServer;

    // Link options.
    LcpConfig lcp;
    CcpConfig ccp{.enable = false, .windowCode = 12};
    Fsm::Timers timers;

    // LCP echo keepalive (pppd's lcp-echo-interval / lcp-echo-failure).
    bool enableEcho = true;
    sim::SimTime echoInterval = sim::seconds(10.0);
    int echoFailureLimit = 3;
    /// pppd's lcp-echo-adaptive: only probe when the line has been
    /// silent for a whole interval. Any received bytes count as proof
    /// of life, so a loaded link never carries extra echo traffic.
    bool echoAdaptive = false;

    std::uint64_t seed = 1;
};

/// Traffic/robustness counters.
struct PppdCounters {
    std::uint64_t ipFramesSent = 0;
    std::uint64_t ipFramesReceived = 0;
    std::uint64_t bytesToLine = 0;
    std::uint64_t bytesFromLine = 0;
    std::uint64_t compressedIn = 0;   ///< pre-compression payload bytes
    std::uint64_t compressedOut = 0;  ///< post-compression payload bytes
    std::uint64_t sendErrors = 0;
    std::uint64_t badFrames = 0;
    std::uint64_t echoRequestsSent = 0;
    std::uint64_t echoRepliesReceived = 0;
};

/// The PPP daemon: drives HDLC framing, LCP, authentication, IPCP and
/// CCP over a byte channel, and exchanges IP datagrams once the
/// network phase completes. This is the user-space stand-in for the
/// ppp_generic/ppp_async kernel modules plus pppd.
class Pppd {
  public:
    Pppd(sim::Simulator& simulator, PppdConfig config);
    ~Pppd();

    Pppd(const Pppd&) = delete;
    Pppd& operator=(const Pppd&) = delete;

    /// Attach to the line (a modem TTY in data mode, or the network
    /// side of a bearer). Installs the channel's onData handler.
    void attach(sim::ByteChannel& channel);

    /// Open the connection (administrative Open + lower layer Up).
    void start();
    /// Graceful shutdown: LCP Terminate handshake, then dead.
    void stop();
    /// Carrier lost: immediate down without Terminate exchange.
    void abortLink();

    /// Fault hook: force an LCP renegotiation — the link drops back to
    /// the establish phase and re-negotiates from scratch (the peer
    /// follows per RFC 1661). Traffic stalls during the exchange but
    /// onLinkDown does NOT fire: this is a transparent reconfigure.
    void renegotiateLcp();

    /// Send one IP datagram (serialised IPv4 bytes). Fails unless the
    /// session is running. Applies CCP compression when negotiated.
    util::Result<void> sendIpDatagram(util::ByteView datagram);

    /// Received IP datagrams (decompressed, serialised IPv4 bytes).
    std::function<void(util::ByteView)> onIpDatagram;
    /// Network phase complete: addresses are known.
    std::function<void(const IpcpResult&)> onNetworkUp;
    /// Terminal link down (fires once per session).
    std::function<void(std::string reason)> onLinkDown;
    /// Keepalive verdict at each echo tick (and on recovery): the
    /// number of unanswered echo requests at that point. 0 means the
    /// link just proved itself (reply arrived, or adaptive mode saw RX
    /// traffic); the value hits echoFailureLimit right before the
    /// keepalive declares the link dead. Health monitors subscribe
    /// here instead of polling.
    std::function<void(int outstanding)> onEchoStatus;

    [[nodiscard]] PppPhase phase() const noexcept { return phase_; }
    [[nodiscard]] bool isRunning() const noexcept { return phase_ == PppPhase::running; }
    [[nodiscard]] const LcpResult& lcpResult() const noexcept { return lcp_->result(); }
    [[nodiscard]] const IpcpResult& ipcpResult() const noexcept { return ipcp_->result(); }
    [[nodiscard]] bool compressionActive() const noexcept { return ccp_->sendCompressed(); }
    [[nodiscard]] int echoOutstanding() const noexcept { return echoOutstanding_; }
    [[nodiscard]] const PppdCounters& counters() const noexcept { return counters_; }

  private:
    void setPhase(PppPhase phase);
    void dispatchFrame(Frame frame);
    void sendControl(Protocol protocol, const ControlPacket& packet);
    void sendFrame(Protocol protocol, util::ByteView info);
    void onLcpUp();
    void onLcpDown();
    void onLcpFinished();
    void startNetworkPhase();
    void maybeFinishAuth();
    void scheduleEcho();
    void armEchoTimer();
    void linkDown(const std::string& reason);

    sim::Simulator& sim_;
    /// Private frame-buffer pool: sendFrame() encodes into these and
    /// hands refcounted slices down the line. Keeping the freelist
    /// per-pppd (instead of using the shard-shared simulator pool)
    /// makes its reuse/allocate split deterministic per link, so the
    /// merged sim.pool.* counters stay byte-identical no matter which
    /// shard this stack lands on. Declared before the subsystems that
    /// might hold slices; outstanding slices orphan safely regardless.
    sim::BufferPool framePool_;
    PppdConfig config_;
    util::Logger log_;
    util::RandomStream rng_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    sim::ByteChannel* line_ = nullptr;
    FramerConfig sendFramer_;  ///< framing for transmitted frames
    Deframer deframer_;

    std::unique_ptr<Lcp> lcp_;
    std::unique_ptr<Ipcp> ipcp_;
    std::unique_ptr<Ccp> ccp_;
    std::unique_ptr<Authenticatee> authPeer_;
    std::unique_ptr<Authenticator> authServer_;

    PppPhase phase_ = PppPhase::dead;
    bool peerAuthOk_ = false;   ///< we proved ourselves (or not needed)
    bool localAuthOk_ = false;  ///< peer proved itself (or not needed)
    bool linkDownNotified_ = true;
    int echoOutstanding_ = 0;
    std::uint64_t echoRxMark_ = 0;  ///< bytesFromLine at the last echo tick
    sim::EventHandle echoTimer_;
    PppdCounters counters_;
};

}  // namespace onelab::ppp
