#include "ppp/ipcp.hpp"

namespace onelab::ppp {

Ipcp::Ipcp(sim::Simulator& simulator, IpcpConfig config, Timers timers)
    : Fsm(simulator, "ipcp", timers), config_(config) {}

std::vector<Option> Ipcp::buildConfigRequest() {
    std::vector<Option> options;
    options.push_back(makeU32Option(ipcp_opt::ip_address, config_.localAddress.value()));
    if (config_.requestDns && !dnsRejected_)
        options.push_back(makeU32Option(ipcp_opt::primary_dns, result_.dnsServer.value()));
    return options;
}

ConfigDecision Ipcp::checkConfigRequest(const std::vector<Option>& options) {
    ConfigDecision decision;
    // Reject unknown options.
    for (const Option& option : options) {
        if (option.type != ipcp_opt::ip_address && option.type != ipcp_opt::primary_dns)
            decision.options.push_back(option);
    }
    if (!decision.options.empty()) {
        decision.verdict = ConfigDecision::Verdict::reject;
        return decision;
    }

    for (const Option& option : options) {
        if (option.type == ipcp_opt::ip_address) {
            const auto addr = optionU32(option);
            const net::Ipv4Address requested{addr.value_or(0)};
            if (config_.isServer) {
                // Peer must use the address we assign.
                if (requested != config_.addressForPeer)
                    decision.options.push_back(
                        makeU32Option(ipcp_opt::ip_address, config_.addressForPeer.value()));
            } else {
                // We are the client: the server names its own address;
                // any nonzero value is fine.
                if (requested.isUnspecified())
                    decision.options.push_back(makeU32Option(ipcp_opt::ip_address, 0));
            }
        } else if (option.type == ipcp_opt::primary_dns) {
            const auto addr = optionU32(option);
            if (config_.isServer && net::Ipv4Address{addr.value_or(0)} != config_.dnsServer)
                decision.options.push_back(
                    makeU32Option(ipcp_opt::primary_dns, config_.dnsServer.value()));
        }
    }
    if (!decision.options.empty()) {
        decision.verdict = ConfigDecision::Verdict::nak;
        return decision;
    }

    // Commit peer parameters.
    for (const Option& option : options) {
        if (option.type == ipcp_opt::ip_address)
            result_.peerAddress = net::Ipv4Address{optionU32(option).value_or(0)};
    }
    decision.verdict = ConfigDecision::Verdict::ack;
    return decision;
}

void Ipcp::onConfigAcked(const std::vector<Option>& options) {
    for (const Option& option : options) {
        if (option.type == ipcp_opt::ip_address)
            result_.localAddress = net::Ipv4Address{optionU32(option).value_or(0)};
        else if (option.type == ipcp_opt::primary_dns)
            result_.dnsServer = net::Ipv4Address{optionU32(option).value_or(0)};
    }
}

void Ipcp::onConfigNakOrReject(bool isReject, const std::vector<Option>& options) {
    for (const Option& option : options) {
        if (option.type == ipcp_opt::ip_address) {
            if (!isReject) {
                // The server assigned us an address: adopt it.
                config_.localAddress = net::Ipv4Address{optionU32(option).value_or(0)};
            }
        } else if (option.type == ipcp_opt::primary_dns) {
            if (isReject)
                dnsRejected_ = true;
            else
                result_.dnsServer = net::Ipv4Address{optionU32(option).value_or(0)};
        }
    }
}

void Ipcp::onThisLayerUp() {
    if (result_.localAddress.isUnspecified()) result_.localAddress = config_.localAddress;
    if (onUp) onUp(result_);
}

void Ipcp::onThisLayerDown() {
    if (onDown) onDown();
}

}  // namespace onelab::ppp
