#pragma once

#include <functional>

#include "net/address.hpp"
#include "ppp/fsm.hpp"

namespace onelab::ppp {

/// IPCP configuration. The network side (GGSN) owns the address pool
/// role: it knows its own address and what to assign the peer; the UE
/// side requests 0.0.0.0 and learns its address via Configure-Nak,
/// exactly as a dial-up client does.
struct IpcpConfig {
    bool isServer = false;
    net::Ipv4Address localAddress;          ///< 0.0.0.0 on the client
    net::Ipv4Address addressForPeer;        ///< server: address to assign
    net::Ipv4Address dnsServer;             ///< server: DNS to hand out
    bool requestDns = false;                ///< client: ask for DNS
};

/// Negotiated IP parameters.
struct IpcpResult {
    net::Ipv4Address localAddress;
    net::Ipv4Address peerAddress;
    net::Ipv4Address dnsServer;
};

/// IPCP (RFC 1332 subset): IP-Address and Primary-DNS options.
class Ipcp final : public Fsm {
  public:
    Ipcp(sim::Simulator& simulator, IpcpConfig config, Timers timers = {});

    [[nodiscard]] const IpcpResult& result() const noexcept { return result_; }

    std::function<void(const IpcpResult&)> onUp;
    std::function<void()> onDown;

  protected:
    std::vector<Option> buildConfigRequest() override;
    ConfigDecision checkConfigRequest(const std::vector<Option>& options) override;
    void onConfigAcked(const std::vector<Option>& options) override;
    void onConfigNakOrReject(bool isReject, const std::vector<Option>& options) override;
    void onThisLayerUp() override;
    void onThisLayerDown() override;

  private:
    IpcpConfig config_;
    IpcpResult result_;
    bool dnsRejected_ = false;
};

}  // namespace onelab::ppp
