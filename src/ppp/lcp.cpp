#include "ppp/lcp.hpp"

namespace onelab::ppp {

namespace {
constexpr std::uint16_t kPapProtocol = 0xc023;
constexpr std::uint16_t kChapProtocol = 0xc223;
constexpr std::uint8_t kChapMd5 = 5;

Option makeAuthOption(AuthProtocol auth) {
    Option option;
    option.type = lcp_opt::auth_protocol;
    if (auth == AuthProtocol::pap) {
        util::putU16(option.value, kPapProtocol);
    } else {
        util::putU16(option.value, kChapProtocol);
        util::putU8(option.value, kChapMd5);
    }
    return option;
}

std::optional<AuthProtocol> parseAuthOption(const Option& option) {
    if (option.value.size() < 2) return std::nullopt;
    const std::uint16_t proto = std::uint16_t((option.value[0] << 8) | option.value[1]);
    if (proto == kPapProtocol && option.value.size() == 2) return AuthProtocol::pap;
    if (proto == kChapProtocol && option.value.size() == 3 && option.value[2] == kChapMd5)
        return AuthProtocol::chap_md5;
    return std::nullopt;
}

}  // namespace

namespace {
std::uint32_t& magicCounter() noexcept {
    // thread_local so parallel sweep workers draw independent magic
    // sequences; every run entry point resets it (on its own thread)
    // before bring-up, keeping runs deterministic wherever they land.
    thread_local std::uint32_t counter = 0;
    return counter;
}

/// Per-instance entropy mixed into magic numbers. Two endpoints
/// seeded identically (possible in tests) must still resolve the
/// loopback-detection Nak exchange; real pppd draws kernel entropy.
std::uint32_t magicSalt() {
    std::uint32_t x = ++magicCounter() * 0x9e3779b9u;
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    return x | 1u;  // never zero
}
}  // namespace

void resetMagicEntropy() noexcept { magicCounter() = 0; }

const char* authName(AuthProtocol auth) noexcept {
    switch (auth) {
        case AuthProtocol::none: return "none";
        case AuthProtocol::pap: return "PAP";
        case AuthProtocol::chap_md5: return "CHAP-MD5";
    }
    return "?";
}

std::uint32_t Lcp::nextMagicSalt() {
    if (config_.entropySeed == 0) return magicSalt();
    // Seeded mode: the salt is a pure function of the instance's seed
    // and its own draw ordinal — independent of thread, shard layout,
    // and whatever other endpoints ran before us.
    std::uint32_t x = std::uint32_t(config_.entropySeed ^ (config_.entropySeed >> 32));
    x += ++entropyDraws_ * 0x9e3779b9u;
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    return x | 1u;  // never zero
}

Lcp::Lcp(sim::Simulator& simulator, LcpConfig config, util::RandomStream rng, Timers timers)
    : Fsm(simulator, "lcp", timers), config_(config), rng_(std::move(rng)) {
    result_.localMagic = std::uint32_t(rng_.uniformInt(1, 0x7fffffff)) ^ nextMagicSalt();
    if (result_.localMagic == 0) result_.localMagic = 1;
}

std::vector<Option> Lcp::buildConfigRequest() {
    std::vector<Option> options;
    if (!mruRejected_ && config_.mru != 1500)
        options.push_back(makeU16Option(lcp_opt::mru, config_.mru));
    if (!accmRejected_) options.push_back(makeU32Option(lcp_opt::accm, config_.accm));
    if (config_.requestMagic && !magicRejected_)
        options.push_back(makeU32Option(lcp_opt::magic_number, result_.localMagic));
    if (config_.requireAuth != AuthProtocol::none && !authRejected_)
        options.push_back(makeAuthOption(config_.requireAuth));
    if (config_.requestPfc && !pfcRejected_) options.push_back(Option{lcp_opt::pfc, {}});
    if (config_.requestAcfc && !acfcRejected_) options.push_back(Option{lcp_opt::acfc, {}});
    return options;
}

ConfigDecision Lcp::checkConfigRequest(const std::vector<Option>& options) {
    // First pass: reject unknown options outright (RFC 1661: reject
    // takes precedence over nak).
    ConfigDecision decision;
    for (const Option& option : options) {
        switch (option.type) {
            case lcp_opt::mru:
            case lcp_opt::accm:
            case lcp_opt::auth_protocol:
            case lcp_opt::magic_number:
            case lcp_opt::pfc:
            case lcp_opt::acfc:
                break;
            default:
                decision.options.push_back(option);
                break;
        }
    }
    if (!decision.options.empty()) {
        decision.verdict = ConfigDecision::Verdict::reject;
        return decision;
    }

    // Second pass: nak unacceptable values.
    for (const Option& option : options) {
        switch (option.type) {
            case lcp_opt::mru: {
                const auto mru = optionU16(option);
                if (!mru || *mru < 576)
                    decision.options.push_back(makeU16Option(lcp_opt::mru, 1500));
                break;
            }
            case lcp_opt::magic_number: {
                const auto magic = optionU32(option);
                // Same magic as ours => looped-back link: nak with a
                // fresh random value (RFC 1661 §6.4).
                if (!magic || *magic == 0 || *magic == result_.localMagic) {
                    std::uint32_t fresh =
                        std::uint32_t(rng_.uniformInt(1, 0x7fffffff)) ^ nextMagicSalt();
                    if (fresh == 0 || fresh == result_.localMagic) fresh ^= 0x5bd1e995u;
                    decision.options.push_back(makeU32Option(lcp_opt::magic_number, fresh));
                }
                break;
            }
            case lcp_opt::auth_protocol: {
                const auto auth = parseAuthOption(option);
                if (!auth) {
                    // Unsupported algorithm: suggest PAP.
                    decision.options.push_back(makeAuthOption(AuthProtocol::pap));
                }
                break;
            }
            default:
                break;  // accm/pfc/acfc: any value acceptable
        }
    }
    if (!decision.options.empty()) {
        decision.verdict = ConfigDecision::Verdict::nak;
        return decision;
    }

    // Acceptable: commit peer-direction parameters.
    for (const Option& option : options) {
        switch (option.type) {
            case lcp_opt::mru:
                if (const auto mru = optionU16(option)) result_.sendMru = *mru;
                break;
            case lcp_opt::accm:
                if (const auto accm = optionU32(option)) result_.sendAccm = *accm;
                break;
            case lcp_opt::magic_number:
                if (const auto magic = optionU32(option)) result_.peerMagic = *magic;
                break;
            case lcp_opt::auth_protocol:
                if (const auto auth = parseAuthOption(option)) result_.peerRequiresAuth = *auth;
                break;
            case lcp_opt::pfc:
                result_.sendPfc = true;
                break;
            case lcp_opt::acfc:
                result_.sendAcfc = true;
                break;
            default:
                break;
        }
    }
    decision.verdict = ConfigDecision::Verdict::ack;
    return decision;
}

void Lcp::onConfigAcked(const std::vector<Option>& options) {
    for (const Option& option : options) {
        if (option.type == lcp_opt::auth_protocol) {
            if (const auto auth = parseAuthOption(option)) result_.weRequireAuth = *auth;
        }
    }
}

void Lcp::onConfigNakOrReject(bool isReject, const std::vector<Option>& options) {
    for (const Option& option : options) {
        switch (option.type) {
            case lcp_opt::mru:
                if (isReject)
                    mruRejected_ = true;
                else if (const auto mru = optionU16(option))
                    config_.mru = *mru;
                break;
            case lcp_opt::accm:
                if (isReject)
                    accmRejected_ = true;
                else if (const auto accm = optionU32(option))
                    config_.accm = *accm;
                break;
            case lcp_opt::magic_number:
                if (isReject)
                    magicRejected_ = true;
                else if (const auto magic = optionU32(option))
                    result_.localMagic = *magic;  // adopt suggestion
                break;
            case lcp_opt::auth_protocol:
                if (isReject) {
                    // Fall back: CHAP -> PAP -> give up requiring.
                    if (config_.requireAuth == AuthProtocol::chap_md5)
                        config_.requireAuth = AuthProtocol::pap;
                    else
                        authRejected_ = true;
                } else if (const auto auth = parseAuthOption(option)) {
                    config_.requireAuth = *auth;
                }
                break;
            case lcp_opt::pfc:
                pfcRejected_ = true;
                break;
            case lcp_opt::acfc:
                acfcRejected_ = true;
                break;
            default:
                break;
        }
    }
}

bool Lcp::onExtraCode(const ControlPacket& packet) {
    switch (packet.code) {
        case Code::echo_request: {
            if (!isOpened()) return true;  // silently discard
            ControlPacket reply;
            reply.code = Code::echo_reply;
            reply.identifier = packet.identifier;
            util::putU32(reply.data, result_.localMagic);
            sendPacket(reply);
            return true;
        }
        case Code::echo_reply:
            if (onEchoReply) onEchoReply();
            return true;
        case Code::discard_request:
            return true;
        case Code::protocol_reject:
            // Owner (pppd) handles routing this to the right protocol;
            // it intercepts before the FSM, so reaching here means an
            // unparseable reject — ignore.
            return true;
        default:
            return false;
    }
}

void Lcp::sendEchoRequest() {
    if (!isOpened()) return;
    ControlPacket packet;
    packet.code = Code::echo_request;
    packet.identifier = nextEchoId_++;
    util::putU32(packet.data, result_.localMagic);
    sendPacket(packet);
}

void Lcp::sendProtocolReject(std::uint16_t protocol, util::ByteView info) {
    ControlPacket packet;
    packet.code = Code::protocol_reject;
    packet.identifier = nextEchoId_++;
    util::putU16(packet.data, protocol);
    // Include as much of the offending packet as fits a small MTU.
    const std::size_t take = std::min<std::size_t>(info.size(), 64);
    packet.data.insert(packet.data.end(), info.begin(), info.begin() + long(take));
    sendPacket(packet);
}

void Lcp::onThisLayerUp() {
    if (onUp) onUp();
}
void Lcp::onThisLayerDown() {
    if (onDown) onDown();
}
void Lcp::onThisLayerFinished() {
    if (onFinished) onFinished();
}

}  // namespace onelab::ppp
