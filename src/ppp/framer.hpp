#pragma once

#include <cstdint>
#include <functional>

#include "ppp/fcs.hpp"
#include "util/bytes.hpp"

namespace onelab::ppp {

/// PPP protocol numbers used by this implementation.
enum class Protocol : std::uint16_t {
    ip = 0x0021,
    compressed_datagram = 0x00fd,
    ipcp = 0x8021,
    ccp = 0x80fd,
    lcp = 0xc021,
    pap = 0xc023,
    chap = 0xc223,
};

/// One decoded PPP frame: protocol + information field.
struct Frame {
    Protocol protocol{};
    util::Bytes info;
};

/// Framing knobs negotiated by LCP. Until LCP completes both ends use
/// the defaults (all control characters escaped, full address/control
/// and protocol fields), per RFC 1662.
struct FramerConfig {
    std::uint32_t sendAccm = 0xffffffff;  ///< chars 0x00..0x1f to escape on tx
    bool compressProtocolField = false;   ///< PFC: 1-byte protocol when <= 0xff
    bool compressAddressControl = false;  ///< ACFC: omit 0xff 0x03
};

/// Encode a frame into RFC 1662 async HDLC-like framing: flag, address
/// 0xff, control 0x03, protocol, information, FCS-16, flag — with byte
/// stuffing per the send ACCM (flag/escape always escaped).
[[nodiscard]] util::Bytes encodeFrame(const Frame& frame, const FramerConfig& config);

/// The allocation-free form the datapath uses: encode protocol + info
/// into `out` (cleared first — pass a pooled buffer to recycle its
/// capacity). One pass: maximal no-escape runs are bulk-copied with
/// the FCS fused into the same scan, into a buffer reserved to
/// maxEncodedSize() so appending never reallocates.
void encodeFrameInto(Protocol protocol, util::ByteView info, const FramerConfig& config,
                     util::Bytes& out);

/// Incremental deframer: feed received bytes, emit complete validated
/// frames. Frames with a bad FCS or shorter than protocol+FCS are
/// dropped and counted. Runs of ordinary bytes are located with a
/// word-at-a-time scan and bulk-appended into a reused frame buffer.
class Deframer {
  public:
    /// Handler invoked for each good frame.
    void onFrame(std::function<void(Frame)> handler) { handler_ = std::move(handler); }

    /// Feed raw bytes from the line.
    void feed(util::ByteView data);

    /// Drop any partial frame (used when (re)starting the link).
    void reset();

    /// Cap on the accumulated (unescaped) frame bytes. A flag-less
    /// garbage stream can otherwise grow the frame buffer without
    /// bound; an oversized frame is dropped (badFrames + the
    /// ppp.hdlc.oversize counter) and the stream resynchronises at the
    /// next flag.
    void setMaxFrameLength(std::size_t bytes) noexcept { maxFrame_ = bytes; }
    [[nodiscard]] std::size_t maxFrameLength() const noexcept { return maxFrame_; }

    [[nodiscard]] std::uint64_t goodFrames() const noexcept { return good_; }
    [[nodiscard]] std::uint64_t badFrames() const noexcept { return bad_; }
    /// Frames dropped by the max-frame-length guard (also in bad_).
    [[nodiscard]] std::uint64_t oversizedFrames() const noexcept { return oversized_; }

  private:
    static constexpr std::size_t kDefaultMaxFrameLength = 64 * 1024;

    void appendRun(const std::uint8_t* data, std::size_t size);
    void endFrame();

    std::function<void(Frame)> handler_;
    util::Bytes current_;
    std::uint16_t fcs_ = kFcsInit;  ///< running FCS over current_, fed by appendRun
    bool escaped_ = false;
    bool discarding_ = false;  ///< oversized frame: skip until the next flag
    std::size_t maxFrame_ = kDefaultMaxFrameLength;
    std::uint64_t good_ = 0;
    std::uint64_t bad_ = 0;
    std::uint64_t oversized_ = 0;
};

/// Rough per-frame byte overhead of the framing (flags, addr/ctrl,
/// protocol, FCS) before stuffing, for capacity accounting.
[[nodiscard]] std::size_t framingOverhead(const FramerConfig& config) noexcept;

/// Worst-case encoded size of a frame carrying `infoLen` info bytes:
/// every field byte (including both FCS bytes) escaping to two, plus
/// the two flags. The encode path reserves this; callers sizing
/// buffers from framingOverhead() alone under-reserve on escape-heavy
/// payloads.
[[nodiscard]] std::size_t maxEncodedSize(std::size_t infoLen,
                                         const FramerConfig& config) noexcept;

}  // namespace onelab::ppp
