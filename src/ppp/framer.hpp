#pragma once

#include <cstdint>
#include <functional>

#include "util/bytes.hpp"

namespace onelab::ppp {

/// PPP protocol numbers used by this implementation.
enum class Protocol : std::uint16_t {
    ip = 0x0021,
    compressed_datagram = 0x00fd,
    ipcp = 0x8021,
    ccp = 0x80fd,
    lcp = 0xc021,
    pap = 0xc023,
    chap = 0xc223,
};

/// One decoded PPP frame: protocol + information field.
struct Frame {
    Protocol protocol{};
    util::Bytes info;
};

/// Framing knobs negotiated by LCP. Until LCP completes both ends use
/// the defaults (all control characters escaped, full address/control
/// and protocol fields), per RFC 1662.
struct FramerConfig {
    std::uint32_t sendAccm = 0xffffffff;  ///< chars 0x00..0x1f to escape on tx
    bool compressProtocolField = false;   ///< PFC: 1-byte protocol when <= 0xff
    bool compressAddressControl = false;  ///< ACFC: omit 0xff 0x03
};

/// Encode a frame into RFC 1662 async HDLC-like framing: flag, address
/// 0xff, control 0x03, protocol, information, FCS-16, flag — with byte
/// stuffing per the send ACCM (flag/escape always escaped).
[[nodiscard]] util::Bytes encodeFrame(const Frame& frame, const FramerConfig& config);

/// Incremental deframer: feed received bytes, emit complete validated
/// frames. Frames with a bad FCS or shorter than protocol+FCS are
/// dropped and counted.
class Deframer {
  public:
    /// Handler invoked for each good frame.
    void onFrame(std::function<void(Frame)> handler) { handler_ = std::move(handler); }

    /// Feed raw bytes from the line.
    void feed(util::ByteView data);

    /// Drop any partial frame (used when (re)starting the link).
    void reset();

    [[nodiscard]] std::uint64_t goodFrames() const noexcept { return good_; }
    [[nodiscard]] std::uint64_t badFrames() const noexcept { return bad_; }

  private:
    void endFrame();

    std::function<void(Frame)> handler_;
    util::Bytes current_;
    bool escaped_ = false;
    std::uint64_t good_ = 0;
    std::uint64_t bad_ = 0;
};

/// Rough per-frame byte overhead of the framing (flags, addr/ctrl,
/// protocol, FCS) before stuffing, for capacity accounting.
[[nodiscard]] std::size_t framingOverhead(const FramerConfig& config) noexcept;

}  // namespace onelab::ppp
