#include "ppp/fcs.hpp"

namespace onelab::ppp {

std::uint16_t fcsUpdate(std::uint16_t fcs, util::ByteView data) noexcept {
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();
    while (n >= 8) {
        // The 16-bit register only reaches the first two bytes; the
        // remaining six contribute through their distance tables alone.
        fcs = std::uint16_t(kFcsTables[7][(fcs ^ p[0]) & 0xff] ^
                            kFcsTables[6][((fcs >> 8) ^ p[1]) & 0xff] ^ kFcsTables[5][p[2]] ^
                            kFcsTables[4][p[3]] ^ kFcsTables[3][p[4]] ^ kFcsTables[2][p[5]] ^
                            kFcsTables[1][p[6]] ^ kFcsTables[0][p[7]]);
        p += 8;
        n -= 8;
    }
    while (n--) fcs = fcsStep(fcs, *p++);
    return fcs;
}

std::uint16_t fcs16(util::ByteView data) noexcept { return fcsUpdate(kFcsInit, data); }

bool fcsValid(util::ByteView dataWithFcs) noexcept {
    if (dataWithFcs.size() < 2) return false;
    return fcs16(dataWithFcs) == kFcsGood;
}

}  // namespace onelab::ppp
