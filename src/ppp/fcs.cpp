#include "ppp/fcs.hpp"

#include <array>

namespace onelab::ppp {

namespace {

constexpr std::array<std::uint16_t, 256> makeTable() {
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t b = 0; b < 256; ++b) {
        std::uint16_t value = std::uint16_t(b);
        for (int bit = 0; bit < 8; ++bit)
            value = (value & 1) ? std::uint16_t((value >> 1) ^ 0x8408) : std::uint16_t(value >> 1);
        table[b] = value;
    }
    return table;
}

constexpr auto kTable = makeTable();

}  // namespace

std::uint16_t fcsStep(std::uint16_t fcs, std::uint8_t byte) noexcept {
    return std::uint16_t((fcs >> 8) ^ kTable[(fcs ^ byte) & 0xff]);
}

std::uint16_t fcs16(util::ByteView data) noexcept {
    std::uint16_t fcs = kFcsInit;
    for (const std::uint8_t byte : data) fcs = fcsStep(fcs, byte);
    return fcs;
}

bool fcsValid(util::ByteView dataWithFcs) noexcept {
    if (dataWithFcs.size() < 2) return false;
    return fcs16(dataWithFcs) == kFcsGood;
}

}  // namespace onelab::ppp
