#include "ppp/pppd.hpp"

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "ppp/compress.hpp"

namespace onelab::ppp {

const char* phaseName(PppPhase phase) noexcept {
    switch (phase) {
        case PppPhase::dead: return "dead";
        case PppPhase::establish: return "establish";
        case PppPhase::authenticate: return "authenticate";
        case PppPhase::network: return "network";
        case PppPhase::running: return "running";
        case PppPhase::terminate: return "terminate";
    }
    return "?";
}

Pppd::Pppd(sim::Simulator& simulator, PppdConfig config)
    : sim_(simulator),
      config_(std::move(config)),
      log_("pppd." + config_.name),
      rng_(config_.seed) {
    sim_.attachPool(&framePool_);
    LcpConfig lcpConfig = config_.lcp;
    if (config_.isServer) lcpConfig.requireAuth = config_.requireAuth;
    lcp_ = std::make_unique<Lcp>(sim_, lcpConfig, rng_.derive("lcp"), config_.timers);
    lcp_->setSender([this](const ControlPacket& pkt) { sendControl(Protocol::lcp, pkt); });
    lcp_->onUp = [this] { onLcpUp(); };
    lcp_->onDown = [this] { onLcpDown(); };
    lcp_->onFinished = [this] { onLcpFinished(); };
    lcp_->onEchoReply = [this] {
        echoOutstanding_ = 0;
        ++counters_.echoRepliesReceived;
        if (onEchoStatus) onEchoStatus(0);
    };

    IpcpConfig ipcpConfig;
    ipcpConfig.isServer = config_.isServer;
    ipcpConfig.localAddress = config_.localAddress;
    ipcpConfig.addressForPeer = config_.addressForPeer;
    ipcpConfig.dnsServer = config_.dnsServer;
    ipcpConfig.requestDns = config_.requestDns;
    ipcp_ = std::make_unique<Ipcp>(sim_, ipcpConfig, config_.timers);
    ipcp_->setSender([this](const ControlPacket& pkt) { sendControl(Protocol::ipcp, pkt); });
    ipcp_->onUp = [this](const IpcpResult& result) {
        setPhase(PppPhase::running);
        log_.info() << "network up: local=" << result.localAddress.str()
                    << " peer=" << result.peerAddress.str();
        scheduleEcho();
        if (onNetworkUp) onNetworkUp(result);
    };
    ipcp_->onDown = [this] {
        if (phase_ == PppPhase::running) setPhase(PppPhase::network);
    };

    ccp_ = std::make_unique<Ccp>(sim_, config_.ccp, config_.timers);
    ccp_->setSender([this](const ControlPacket& pkt) { sendControl(Protocol::ccp, pkt); });

    deframer_.onFrame([this](Frame frame) { dispatchFrame(std::move(frame)); });
}

Pppd::~Pppd() {
    *alive_ = false;
    if (echoTimer_.valid()) sim_.cancel(echoTimer_);
    sim_.detachPool(&framePool_);
}

void Pppd::attach(sim::ByteChannel& channel) {
    line_ = &channel;
    // The guard protects against line deliveries racing our own
    // destruction (a torn-down dialer may leave this handler installed
    // until the next tool takes the TTY over).
    channel.onData([this, alive = std::weak_ptr<bool>(alive_)](util::ByteView data) {
        const auto stillAlive = alive.lock();
        if (!stillAlive || !*stillAlive) return;
        counters_.bytesFromLine += data.size();
        deframer_.feed(data);
        counters_.badFrames = deframer_.badFrames();
    });
}

void Pppd::setPhase(PppPhase phase) {
    if (phase == phase_) return;
    log_.debug() << "phase " << phaseName(phase_) << " -> " << phaseName(phase);
    phase_ = phase;
}

void Pppd::start() {
    if (!line_) {
        log_.error() << "start() without an attached line";
        return;
    }
    linkDownNotified_ = false;
    peerAuthOk_ = false;
    localAuthOk_ = false;
    sendFramer_ = FramerConfig{};  // default framing until LCP opens
    deframer_.reset();
    setPhase(PppPhase::establish);
    lcp_->open();
    lcp_->up();
}

void Pppd::stop() {
    if (phase_ == PppPhase::dead) return;
    setPhase(PppPhase::terminate);
    lcp_->close();
}

void Pppd::abortLink() {
    if (phase_ == PppPhase::dead) return;
    lcp_->down();
    setPhase(PppPhase::dead);
    linkDown("carrier lost");
}

void Pppd::renegotiateLcp() {
    if (phase_ == PppPhase::dead || phase_ == PppPhase::terminate) return;
    log_.warn() << "injected LCP renegotiation";
    obs::Registry::instance().counter("fault.ppp.lcp_renegotiations").inc();
    // Back to default framing until the new LCP opens; the peer's FSM
    // follows our Configure-Request out of its Opened state.
    sendFramer_ = FramerConfig{};
    deframer_.reset();
    peerAuthOk_ = false;
    localAuthOk_ = false;
    setPhase(PppPhase::establish);
    lcp_->down();
    lcp_->up();
}

void Pppd::sendControl(Protocol protocol, const ControlPacket& packet) {
    sendFrame(protocol, packet.serialize());
}

void Pppd::sendFrame(Protocol protocol, util::ByteView info) {
    if (!line_) return;
    // LCP control traffic always uses default framing (RFC 1662 §7).
    const bool isLcp = protocol == Protocol::lcp;
    const FramerConfig framing = isLcp ? FramerConfig{.sendAccm = sendFramer_.sendAccm,
                                                      .compressProtocolField = false,
                                                      .compressAddressControl = false}
                                       : sendFramer_;
    // Encode straight into a pooled buffer and hand the line a
    // refcounted slice: the same bytes ride every hop to the deframer
    // (zero-copy channels) or degrade to one copy at the first legacy
    // hop. The capacity recycles when the last hop lets go.
    util::Bytes wire = framePool_.acquire(std::size_t{0});
    encodeFrameInto(protocol, info, framing, wire);
    counters_.bytesToLine += wire.size();
    line_->write(framePool_.share(std::move(wire)));
}

void Pppd::onLcpUp() {
    // Commit the negotiated framing for our transmit direction.
    const LcpResult& result = lcp_->result();
    sendFramer_.sendAccm = result.sendAccm;
    sendFramer_.compressProtocolField = result.sendPfc;
    sendFramer_.compressAddressControl = result.sendAcfc;

    setPhase(PppPhase::authenticate);

    peerAuthOk_ = result.peerRequiresAuth == AuthProtocol::none;
    localAuthOk_ = result.weRequireAuth == AuthProtocol::none;

    if (!peerAuthOk_) {
        authPeer_ = std::make_unique<Authenticatee>(
            sim_, result.peerRequiresAuth, config_.credentials,
            [this](Protocol proto, const ControlPacket& pkt) { sendControl(proto, pkt); });
        authPeer_->onResult = [this](bool ok, const std::string& message) {
            if (!ok) {
                log_.warn() << "authentication failed: " << message;
                stop();
                return;
            }
            peerAuthOk_ = true;
            maybeFinishAuth();
        };
        authPeer_->start();
    }
    if (!localAuthOk_) {
        auto lookup = config_.secretLookup;
        if (!lookup) lookup = [](const std::string&) { return std::nullopt; };
        authServer_ = std::make_unique<Authenticator>(
            sim_, result.weRequireAuth, config_.name, std::move(lookup),
            [this](Protocol proto, const ControlPacket& pkt) { sendControl(proto, pkt); },
            rng_.derive("chap"));
        authServer_->setAcceptAll(config_.acceptAnyPeer);
        authServer_->onResult = [this](bool ok, const std::string& peer) {
            if (!ok) {
                log_.warn() << "peer '" << peer << "' failed authentication";
                stop();
                return;
            }
            localAuthOk_ = true;
            maybeFinishAuth();
        };
        authServer_->start();
    }
    maybeFinishAuth();
}

void Pppd::maybeFinishAuth() {
    if (phase_ != PppPhase::authenticate || !peerAuthOk_ || !localAuthOk_) return;
    startNetworkPhase();
}

void Pppd::startNetworkPhase() {
    setPhase(PppPhase::network);
    ipcp_->open();
    ipcp_->up();
    if (config_.ccp.enable) {
        ccp_->open();
        ccp_->up();
    }
}

void Pppd::onLcpDown() {
    if (echoTimer_.valid()) sim_.cancel(echoTimer_);
    echoTimer_ = {};
    ipcp_->down();
    ccp_->down();
    authPeer_.reset();
    authServer_.reset();
}

void Pppd::onLcpFinished() {
    setPhase(PppPhase::dead);
    linkDown("connection terminated");
}

void Pppd::scheduleEcho() {
    if (!config_.enableEcho) return;
    echoOutstanding_ = 0;
    echoRxMark_ = counters_.bytesFromLine;
    armEchoTimer();
}

void Pppd::armEchoTimer() {
    if (echoTimer_.valid()) sim_.cancel(echoTimer_);
    echoTimer_ = sim_.schedule(config_.echoInterval, [this] {
        echoTimer_ = {};
        if (phase_ != PppPhase::running) return;
        const int missed = echoOutstanding_;
        if (config_.echoAdaptive && counters_.bytesFromLine != echoRxMark_) {
            // The peer spoke during the interval — alive by inference,
            // no probe needed (and none sent: the wire stays identical
            // to an unsupervised run as long as traffic flows).
            echoRxMark_ = counters_.bytesFromLine;
            echoOutstanding_ = 0;
            if (onEchoStatus) onEchoStatus(0);
            armEchoTimer();
            return;
        }
        if (missed >= config_.echoFailureLimit) {
            log_.warn() << "LCP keepalive: " << missed
                        << " echo requests unanswered, assuming dead link";
            lcp_->down();
            setPhase(PppPhase::dead);
            linkDown("keepalive timeout");
            return;
        }
        if (onEchoStatus) onEchoStatus(missed);
        echoRxMark_ = counters_.bytesFromLine;
        ++echoOutstanding_;
        ++counters_.echoRequestsSent;
        lcp_->sendEchoRequest();
        armEchoTimer();
    });
}

void Pppd::linkDown(const std::string& reason) {
    if (linkDownNotified_) return;
    linkDownNotified_ = true;
    log_.info() << "link down: " << reason;
    if (onLinkDown) onLinkDown(reason);
}

util::Result<void> Pppd::sendIpDatagram(util::ByteView datagram) {
    if (phase_ != PppPhase::running) {
        ++counters_.sendErrors;
        return util::err(util::Error::Code::state,
                         std::string("ppp not running (phase ") + phaseName(phase_) + ")");
    }
    if (datagram.size() > lcp_->result().sendMru) {
        ++counters_.sendErrors;
        return util::err(util::Error::Code::invalid_argument, "datagram exceeds peer MRU");
    }
    ++counters_.ipFramesSent;
    if (ccp_->sendCompressed()) {
        const util::Bytes compressed = LzssCodec::compress(datagram);
        counters_.compressedIn += datagram.size();
        counters_.compressedOut += compressed.size();
        sendFrame(Protocol::compressed_datagram, {compressed.data(), compressed.size()});
    } else {
        sendFrame(Protocol::ip, datagram);
    }
    return {};
}

void Pppd::dispatchFrame(Frame frame) {
    obs::ProfileScope scope(obs::ProfileCategory::pppd);
    switch (frame.protocol) {
        case Protocol::lcp: {
            const auto packet = ControlPacket::parse({frame.info.data(), frame.info.size()});
            if (!packet.ok()) return;
            // Protocol-Reject is routed to the rejected protocol.
            if (packet.value().code == Code::protocol_reject &&
                packet.value().data.size() >= 2) {
                const std::uint16_t rejected =
                    std::uint16_t((packet.value().data[0] << 8) | packet.value().data[1]);
                if (rejected == std::uint16_t(Protocol::ipcp))
                    ipcp_->protocolRejected();
                else if (rejected == std::uint16_t(Protocol::ccp))
                    ccp_->protocolRejected();
                return;
            }
            lcp_->receive(packet.value());
            return;
        }
        case Protocol::pap:
        case Protocol::chap: {
            if (phase_ != PppPhase::authenticate && phase_ != PppPhase::establish) return;
            const auto packet = ControlPacket::parse({frame.info.data(), frame.info.size()});
            if (!packet.ok()) return;
            if (authPeer_) authPeer_->receive(frame.protocol, packet.value());
            if (authServer_) authServer_->receive(frame.protocol, packet.value());
            return;
        }
        case Protocol::ipcp: {
            if (phase_ != PppPhase::network && phase_ != PppPhase::running) return;
            const auto packet = ControlPacket::parse({frame.info.data(), frame.info.size()});
            if (packet.ok()) ipcp_->receive(packet.value());
            return;
        }
        case Protocol::ccp: {
            if (phase_ != PppPhase::network && phase_ != PppPhase::running) return;
            // Compression not configured locally: Protocol-Reject, as
            // pppd does for protocols it has no handler for.
            if (!config_.ccp.enable) {
                if (lcp_->isOpened())
                    lcp_->sendProtocolReject(std::uint16_t(Protocol::ccp),
                                             {frame.info.data(), frame.info.size()});
                return;
            }
            const auto packet = ControlPacket::parse({frame.info.data(), frame.info.size()});
            if (packet.ok()) ccp_->receive(packet.value());
            return;
        }
        case Protocol::ip: {
            if (phase_ != PppPhase::running) return;
            ++counters_.ipFramesReceived;
            if (onIpDatagram) onIpDatagram({frame.info.data(), frame.info.size()});
            return;
        }
        case Protocol::compressed_datagram: {
            if (phase_ != PppPhase::running || !ccp_->recvCompressed()) return;
            const auto plain = LzssCodec::decompress({frame.info.data(), frame.info.size()});
            if (!plain.ok()) {
                log_.warn() << "undecodable compressed frame: " << plain.error().message;
                return;
            }
            ++counters_.ipFramesReceived;
            if (onIpDatagram) onIpDatagram({plain.value().data(), plain.value().size()});
            return;
        }
        default: {
            log_.debug() << "unknown protocol 0x" << std::hex
                         << int(std::uint16_t(frame.protocol));
            if (lcp_->isOpened())
                lcp_->sendProtocolReject(std::uint16_t(frame.protocol),
                                         {frame.info.data(), frame.info.size()});
            return;
        }
    }
}

}  // namespace onelab::ppp
