#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace onelab::sim {

namespace {

/// One spin-wait beat: keep the core polite without a syscall.
inline void cpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

}  // namespace

// ------------------------------------------------------ ShardObsScope

ShardObsScope::ShardObsScope(SimShard& shard)
    : previousRegistry_(obs::Registry::setCurrent(&shard.registry_)),
      previousTracer_(obs::Tracer::setCurrent(&shard.tracer_)),
      previousLog_(util::LogConfig::setCurrent(&shard.log_)),
      previousFlight_(obs::FlightRecorder::setCurrent(&shard.flight_)),
      previousProfiler_(obs::Profiler::setCurrent(&shard.profiler_)) {}

ShardObsScope::~ShardObsScope() {
    obs::Profiler::setCurrent(previousProfiler_);
    obs::FlightRecorder::setCurrent(previousFlight_);
    util::LogConfig::setCurrent(previousLog_);
    obs::Tracer::setCurrent(previousTracer_);
    obs::Registry::setCurrent(previousRegistry_);
}

// ------------------------------------------------------------ SimShard

SimShard::SimShard(std::size_t index) : index_(index) {
    // Inherit the driver's log level and profiling decision, like
    // obs::RunContext: a profiled sharded run profiles every shard.
    log_.setLevel(util::LogConfig::instance().level());
    const obs::Profiler& inheritedProfiler = obs::Profiler::instance();
    profiler_.setClock(inheritedProfiler.clock());
    if (inheritedProfiler.enabled()) profiler_.setEnabled(true);
    if (obs::Tracer::instance().enabled()) tracer_.setEnabled(true);
    // Pre-register the recorder./profile. families so the merged
    // metrics.json carries an identical key set whether or not a dump
    // ever fires on this shard.
    obs::registerFlightAndProfileMetricFamilies(registry_);
    obs::installLogForwarding();
    ShardObsScope scope(*this);
    sim_ = std::make_unique<Simulator>();
    sim_->attachLogClock();
}

// ---------------------------------------------------------- ShardGroup

ShardGroup::ShardGroup(std::size_t shardCount, SimTime lookahead)
    : lookahead_(lookahead) {
    if (shardCount == 0) throw std::invalid_argument("ShardGroup needs >= 1 shard");
    if (lookahead_ < SimTime{1})
        throw std::invalid_argument("ShardGroup lookahead must be >= 1ns");
    shards_.reserve(shardCount);
    doneEpochs_.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; ++i) {
        shards_.push_back(std::make_unique<SimShard>(i));
        doneEpochs_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    const unsigned cores = std::thread::hardware_concurrency();
    oversubscribed_ = cores != 0 && cores < shardCount + 1;
    // Workers are spawned even for one shard: thread-local state (ppp
    // magic entropy, obs caches) then starts fresh per group on every
    // shard count, which is part of the N-independence argument.
    workers_.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

ShardGroup::~ShardGroup() { shutdown(); }

void ShardGroup::shutdown() {
    if (shutdownDone_) return;
    shutdownDone_ = true;
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stop_.store(true, std::memory_order_release);
    }
    wakeCv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    dropPendingMail();
}

ShardPost ShardGroup::makePort(std::size_t targetShard, std::string name,
                               std::uint64_t portRank) {
    if (targetShard >= shards_.size())
        throw std::invalid_argument("makePort: no such shard");
    mailboxes_.push_back(
        Mailbox{targetShard,
                std::make_unique<CrossShardMailbox>(std::move(name), portRank)});
    CrossShardMailbox* box = mailboxes_.back().box.get();
    return [box](SimTime when, std::function<void()> fn) {
        box->post(when, std::move(fn));
    };
}

void ShardGroup::workerMain(std::size_t index) {
    SimShard& shard = *shards_[index];
    // Pin this thread to the shard's obs bundle for its whole life (it
    // dies with the group — no restore needed). Every instance() call
    // inside shard events now resolves shard-locally.
    obs::Registry::setCurrent(&shard.registry());
    obs::Tracer::setCurrent(&shard.tracer());
    util::LogConfig::setCurrent(&shard.logConfig());
    obs::FlightRecorder::setCurrent(&shard.flightRecorder());
    obs::Profiler::setCurrent(&shard.profiler());
    // Spinning is only worth it when a core is free to spin on.
    const int spinBudget = oversubscribed_ ? 0 : 20000;
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
        int spins = 0;
        while (epoch == seen && !stop_.load(std::memory_order_acquire)) {
            if (++spins < spinBudget) {
                cpuRelax();
            } else {
                // The driver is off doing scenario work between
                // windows: sleep until the next window (or stop). The
                // predicate re-check under the mutex closes the race
                // with the driver's bump-then-notify.
                std::unique_lock<std::mutex> lock(wakeMutex_);
                wakeCv_.wait(lock, [&] {
                    return epoch_.load(std::memory_order_acquire) != seen ||
                           stop_.load(std::memory_order_acquire);
                });
            }
            epoch = epoch_.load(std::memory_order_acquire);
        }
        if (stop_.load(std::memory_order_acquire)) break;
        seen = epoch;
        shard.sim().runUntil(SimTime{windowEndNs_.load(std::memory_order_relaxed)});
        doneEpochs_[index]->store(seen, std::memory_order_release);
        if (oversubscribed_) {
            // The driver parks instead of spinning; hand the core
            // straight back to it. The empty critical section orders
            // the store above against its predicate check.
            { std::lock_guard<std::mutex> lock(doneMutex_); }
            doneCv_.notify_one();
        }
    }
}

void ShardGroup::runWindow(SimTime until) {
    windowEndNs_.store(until.count(), std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    // Taking the mutex orders this window's publication against any
    // worker that is deciding to sleep; notify after release.
    { std::lock_guard<std::mutex> lock(wakeMutex_); }
    wakeCv_.notify_all();
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    const auto allDone = [&] {
        for (auto& done : doneEpochs_)
            if (done->load(std::memory_order_acquire) != epoch) return false;
        return true;
    };
    if (oversubscribed_) {
        std::unique_lock<std::mutex> lock(doneMutex_);
        doneCv_.wait(lock, allDone);
    } else {
        for (auto& done : doneEpochs_) {
            int spins = 0;
            while (done->load(std::memory_order_acquire) != epoch) {
                if (++spins < 50000)
                    cpuRelax();
                else
                    std::this_thread::yield();
            }
        }
    }
    ++windows_;
}

void ShardGroup::drainMail() {
    struct DrainEntry {
        SimTime when;
        std::uint64_t rank;
        std::uint64_t seq;
        std::size_t target;
        std::function<void()> fn;
    };
    std::vector<DrainEntry> entries;
    for (Mailbox& mailbox : mailboxes_) {
        std::vector<MailboxEvent> events = mailbox.box->drain();
        for (MailboxEvent& event : events)
            entries.push_back(DrainEntry{event.when, mailbox.box->portRank(),
                                         event.seq, mailbox.targetShard,
                                         std::move(event.fn)});
    }
    if (entries.empty()) return;
    std::sort(entries.begin(), entries.end(),
              [](const DrainEntry& a, const DrainEntry& b) {
                  if (a.target != b.target) return a.target < b.target;
                  if (a.when != b.when) return a.when < b.when;
                  if (a.rank != b.rank) return a.rank < b.rank;
                  return a.seq < b.seq;
              });
    for (DrainEntry& entry : entries) {
        Simulator& sim = shards_[entry.target]->sim();
        // A message stamped before its target's clock means a cut edge
        // undercut the lookahead; scheduleAt clamps it to "now", so
        // causality is only bent, not broken — but count it loudly.
        if (entry.when < sim.now()) ++late_;
        sim.scheduleAt(entry.when, [fn = std::move(entry.fn)] { fn(); });
    }
}

void ShardGroup::runUntil(SimTime target) {
    if (target < now_) target = now_;
    for (;;) {
        drainMail();
        std::optional<SimTime> globalMin;
        for (auto& shard : shards_) {
            const std::optional<SimTime> next = shard->sim().nextEventTime();
            if (next && (!globalMin || *next < *globalMin)) globalMin = *next;
        }
        // Anything posted during the window below is stamped at least
        // globalMin + lookahead: past `target` in the clamped branch
        // (left in the mailboxes for a future call), past the window
        // end in the looping branch (drained at the next barrier).
        if (!globalMin || *globalMin + lookahead_ > target) {
            runWindow(target);
            break;
        }
        runWindow(*globalMin + lookahead_ - SimTime{1});
    }
    // Every shard clock now equals `target`: the final window always
    // runs runUntil(target), which advances idle clocks too.
    now_ = std::max(now_, target);
}

std::size_t ShardGroup::dropPendingMail() {
    std::size_t dropped = 0;
    for (Mailbox& mailbox : mailboxes_) dropped += mailbox.box->clear();
    return dropped;
}

std::uint64_t ShardGroup::mailPosted() const noexcept {
    std::uint64_t total = 0;
    for (const Mailbox& mailbox : mailboxes_) total += mailbox.box->posted();
    return total;
}

std::uint64_t ShardGroup::mailDelivered() const noexcept {
    std::uint64_t total = 0;
    for (const Mailbox& mailbox : mailboxes_) total += mailbox.box->delivered();
    return total;
}

std::uint64_t ShardGroup::mailDropped() const noexcept {
    std::uint64_t total = 0;
    for (const Mailbox& mailbox : mailboxes_) total += mailbox.box->dropped();
    return total;
}

}  // namespace onelab::sim
