#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace onelab::sim {

namespace {

/// Handle ids pack (slot index + 1) in the high half and the slot's
/// generation in the low half; 0 stays the invalid-handle sentinel.
constexpr std::uint64_t makeId(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (std::uint64_t(slot + 1) << 32) | generation;
}
constexpr std::uint32_t idSlot(std::uint64_t id) noexcept {
    return std::uint32_t(id >> 32) - 1;
}
constexpr std::uint32_t idGeneration(std::uint64_t id) noexcept {
    return std::uint32_t(id);
}

/// Events dispatched under one sim_event profile scope. Two clock
/// reads per batch instead of per event bounds the enabled-profiler
/// overhead at roughly 1/128th of the per-event cost.
constexpr std::size_t kProfileEventBatch = 128;

}  // namespace

Simulator::Simulator()
    : eventsExecuted_(&obs::Registry::instance().counter("sim.events_executed")),
      eventsScheduled_(&obs::Registry::instance().counter("sim.events_scheduled")),
      eventsCancelled_(&obs::Registry::instance().counter("sim.events_cancelled")) {}

std::uint32_t Simulator::acquireSlot() {
    if (!freeSlots_.empty()) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    const auto slot = std::uint32_t(slots_.size());
    slots_.emplace_back();
    return slot;
}

EventHandle Simulator::enqueueSlot(std::uint32_t slot, SimTime when) {
    Slot& entry = slots_[slot];
    entry.heapIndex = std::uint32_t(heap_.size());
    heap_.push_back(HeapEntry{std::max(when, now_), nextSequence_++, slot});
    siftUp(heap_.size() - 1);
    if (running_)
        ++pendingScheduled_;
    else
        eventsScheduled_->inc();
    return EventHandle{makeId(slot, entry.generation)};
}

bool Simulator::cancel(EventHandle handle) {
    if (!handle.valid()) return false;
    const std::uint32_t slot = idSlot(handle.id());
    if (slot >= slots_.size()) return false;
    Slot& entry = slots_[slot];
    // A stale generation means the event already fired, was cancelled,
    // or was dropped by clear() — nothing pending to cancel.
    if (entry.generation != idGeneration(handle.id()) || entry.heapIndex == kNoHeapIndex)
        return false;
    removeHeapIndex(entry.heapIndex);
    releaseSlot(slot);
    if (running_)
        ++pendingCancelled_;
    else
        eventsCancelled_->inc();
    return true;
}

void Simulator::siftUp(std::size_t index) {
    const HeapEntry entry = heap_[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / kHeapArity;
        if (!firesBefore(entry, heap_[parent])) break;
        heap_[index] = heap_[parent];
        slots_[heap_[index].slot].heapIndex = std::uint32_t(index);
        index = parent;
    }
    heap_[index] = entry;
    slots_[entry.slot].heapIndex = std::uint32_t(index);
}

void Simulator::siftDown(std::size_t index) {
    const HeapEntry entry = heap_[index];
    const std::size_t size = heap_.size();
    for (;;) {
        const std::size_t first = kHeapArity * index + 1;
        if (first >= size) break;
        const std::size_t last = std::min(first + kHeapArity, size);
        std::size_t best = first;
        for (std::size_t child = first + 1; child < last; ++child)
            if (firesBefore(heap_[child], heap_[best])) best = child;
        if (!firesBefore(heap_[best], entry)) break;
        heap_[index] = heap_[best];
        slots_[heap_[index].slot].heapIndex = std::uint32_t(index);
        index = best;
    }
    heap_[index] = entry;
    slots_[entry.slot].heapIndex = std::uint32_t(index);
}

void Simulator::popRoot() {
    const std::size_t last = heap_.size() - 1;
    if (last == 0) {
        heap_.pop_back();
        return;
    }
    // The filler comes from a leaf, so it can only travel down — no
    // siftUp leg, unlike the general removeHeapIndex.
    const HeapEntry moved = heap_[last];
    heap_.pop_back();
    heap_[0] = moved;
    slots_[moved.slot].heapIndex = 0;
    siftDown(0);
}

void Simulator::removeHeapIndex(std::size_t index) {
    const std::size_t last = heap_.size() - 1;
    if (index == last) {
        heap_.pop_back();
        return;
    }
    const HeapEntry moved = heap_[last];
    heap_.pop_back();
    heap_[index] = moved;
    slots_[moved.slot].heapIndex = std::uint32_t(index);
    // The filler may need to travel either direction; one of these is
    // always a no-op.
    siftDown(index);
    siftUp(slots_[moved.slot].heapIndex);
}

void Simulator::releaseSlot(std::uint32_t slot) {
    Slot& entry = slots_[slot];
    entry.action.reset();
    entry.heapIndex = kNoHeapIndex;
    ++entry.generation;
    freeSlots_.push_back(slot);
}

void Simulator::fireTop() {
    const std::uint32_t slot = heap_.front().slot;
    Slot& entry = slots_[slot];
    now_ = heap_.front().when;
    // Move the callback out and retire the slot BEFORE invoking it:
    // the action may reschedule into the same slot (or grow slots_),
    // and a cancel() of the executing event's own handle must report
    // "no longer pending".
    InplaceAction action = std::move(entry.action);
    popRoot();
    releaseSlot(slot);
    ++executed_;
    ++pendingExecuted_;
    action.invokeOnce();
}

void Simulator::flushCounters() noexcept {
    if (pendingScheduled_) {
        eventsScheduled_->inc(pendingScheduled_);
        pendingScheduled_ = 0;
    }
    if (pendingExecuted_) {
        eventsExecuted_->inc(pendingExecuted_);
        pendingExecuted_ = 0;
    }
    if (pendingCancelled_) {
        eventsCancelled_->inc(pendingCancelled_);
        pendingCancelled_ = 0;
    }
    pool_.syncCounters();
    for (BufferPool* pool : attachedPools_) pool->syncCounters();
}

std::size_t Simulator::runUntil(SimTime until) {
    const bool outermost = !running_;
    running_ = true;
    std::size_t ran = 0;
    // Loop machinery time lands in sim_run; datapath stages opened by
    // event actions subtract themselves out (self-time attribution).
    obs::ProfileScope runScope(obs::ProfileCategory::sim_run);
    // Hoisted so the common (profiler-off) loop pays nothing per event.
    obs::Profiler* const profiler = obs::Profiler::currentIfEnabled();
    try {
        if (profiler) {
            // One sim_event scope per batch, not per event: two clock
            // reads amortised over kProfileEventBatch dispatches keeps
            // the enabled-profiler cost under the 2% overhead budget,
            // and the open scope still absorbs datapath child scopes.
            while (!heap_.empty() && heap_.front().when <= until) {
                obs::ProfileScope eventScope(obs::ProfileCategory::sim_event);
                std::size_t inBatch = 0;
                while (inBatch < kProfileEventBatch && !heap_.empty() &&
                       heap_.front().when <= until) {
                    fireTop();
                    ++ran;
                    ++inBatch;
                }
            }
        } else {
            while (!heap_.empty() && heap_.front().when <= until) {
                fireTop();
                ++ran;
            }
        }
    } catch (...) {
        if (outermost) {
            running_ = false;
            flushCounters();
        }
        throw;
    }
    if (outermost) {
        running_ = false;
        flushCounters();
    }
    // Advance the clock to the horizon even if the queue drained early,
    // so successive runUntil calls observe monotonic time.
    now_ = std::max(now_, until);
    return ran;
}

std::size_t Simulator::run() {
    const bool outermost = !running_;
    running_ = true;
    std::size_t ran = 0;
    obs::ProfileScope runScope(obs::ProfileCategory::sim_run);
    obs::Profiler* const profiler = obs::Profiler::currentIfEnabled();
    try {
        if (profiler) {
            while (!heap_.empty()) {
                obs::ProfileScope eventScope(obs::ProfileCategory::sim_event);
                std::size_t inBatch = 0;
                while (inBatch < kProfileEventBatch && !heap_.empty()) {
                    fireTop();
                    ++ran;
                    ++inBatch;
                }
            }
        } else {
            while (!heap_.empty()) {
                fireTop();
                ++ran;
            }
        }
    } catch (...) {
        if (outermost) {
            running_ = false;
            flushCounters();
        }
        throw;
    }
    if (outermost) {
        running_ = false;
        flushCounters();
    }
    return ran;
}

void Simulator::clear() {
    // Release via the heap (not a slot sweep) so freelist order — and
    // therefore slot reuse after clear() — is deterministic.
    while (!heap_.empty()) {
        const std::uint32_t slot = heap_.back().slot;
        heap_.pop_back();
        releaseSlot(slot);
    }
}

void Simulator::attachLogClock() {
    util::LogConfig::instance().setClock([this] { return std::int64_t(now_.count()); });
    // The tracer and flight recorder stamp events with the same
    // simulated clock (the profiler keeps wall time: it measures cost,
    // not schedule).
    obs::Tracer::instance().setClock([this] { return std::int64_t(now_.count()); });
    obs::FlightRecorder::instance().setClock(
        [this] { return std::int64_t(now_.count()); });
}

}  // namespace onelab::sim
