#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace onelab::sim {

Simulator::Simulator()
    : eventsExecuted_(&obs::Registry::instance().counter("sim.events_executed")),
      eventsScheduled_(&obs::Registry::instance().counter("sim.events_scheduled")),
      eventsCancelled_(&obs::Registry::instance().counter("sim.events_cancelled")) {}

EventHandle Simulator::schedule(SimTime delay, std::function<void()> action) {
    return scheduleAt(now_ + std::max(SimTime{0}, delay), std::move(action));
}

EventHandle Simulator::scheduleAt(SimTime when, std::function<void()> action) {
    const std::uint64_t sequence = nextSequence_++;
    queue_.push(Event{std::max(when, now_), sequence, std::move(action)});
    pending_.insert(sequence);
    eventsScheduled_->inc();
    return EventHandle{sequence};
}

bool Simulator::cancel(EventHandle handle) {
    if (!handle.valid()) return false;
    // Lazy cancellation: remove the id from the pending set; the event
    // body is discarded when it reaches the head of the queue.
    const bool wasPending = pending_.erase(handle.id()) > 0;
    if (wasPending) eventsCancelled_->inc();
    return wasPending;
}

bool Simulator::popNext(Event& out) {
    while (!queue_.empty()) {
        Event event = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        if (pending_.erase(event.sequence) == 0) continue;  // was cancelled
        out = std::move(event);
        return true;
    }
    return false;
}

std::size_t Simulator::runUntil(SimTime until) {
    std::size_t ran = 0;
    Event event;
    while (!queue_.empty()) {
        // Discard lazily-cancelled entries before the horizon check:
        // a cancelled tombstone with an early timestamp must not let
        // popNext hand us a live event from beyond `until`.
        if (pending_.count(queue_.top().sequence) == 0) {
            queue_.pop();
            continue;
        }
        if (queue_.top().when > until) break;
        if (!popNext(event)) break;
        now_ = event.when;
        ++executed_;
        eventsExecuted_->inc();
        ++ran;
        event.action();
    }
    // Advance the clock to the horizon even if the queue drained early,
    // so successive runUntil calls observe monotonic time.
    now_ = std::max(now_, until);
    return ran;
}

std::size_t Simulator::run() {
    std::size_t ran = 0;
    Event event;
    while (popNext(event)) {
        now_ = event.when;
        ++executed_;
        eventsExecuted_->inc();
        ++ran;
        event.action();
    }
    return ran;
}

void Simulator::clear() {
    queue_ = {};
    pending_.clear();
}

void Simulator::attachLogClock() {
    util::LogConfig::instance().setClock([this] { return std::int64_t(now_.count()); });
    // The tracer stamps events with the same simulated clock.
    obs::Tracer::instance().setClock([this] { return std::int64_t(now_.count()); });
}

}  // namespace onelab::sim
