#include "sim/mailbox.hpp"

namespace onelab::sim {

CrossShardMailbox::CrossShardMailbox(std::string name, std::uint64_t portRank)
    : name_(std::move(name)), portRank_(portRank) {}

void CrossShardMailbox::post(SimTime when, std::function<void()> fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(MailboxEvent{when, nextSeq_++, std::move(fn)});
    ++posted_;
}

std::vector<MailboxEvent> CrossShardMailbox::drain() {
    std::vector<MailboxEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.swap(pending_);
        delivered_ += out.size();
    }
    return out;
}

std::size_t CrossShardMailbox::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t count = pending_.size();
    pending_.clear();
    dropped_ += count;
    return count;
}

std::size_t CrossShardMailbox::pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

}  // namespace onelab::sim
