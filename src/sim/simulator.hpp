#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/buffer_pool.hpp"
#include "sim/inplace_action.hpp"
#include "sim/time.hpp"

namespace onelab::obs {
class Counter;
}

namespace onelab::sim {

/// Handle returned by Simulator::schedule; can cancel a pending event.
/// Encodes a slot index plus the slot's generation, so a handle goes
/// stale the moment its event fires, is cancelled, or the queue is
/// cleared — cancel() on a stale handle is a cheap, safe no-op.
class EventHandle {
  public:
    EventHandle() = default;

    [[nodiscard]] bool valid() const noexcept { return id_ != 0; }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  private:
    friend class Simulator;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
};

/// Single-threaded discrete-event simulator. Events at the same
/// timestamp fire in scheduling order (FIFO tie-break), which keeps
/// runs deterministic.
///
/// The event queue is an indexed 4-ary heap over generation-tagged
/// slots. Heap entries carry their own (when, sequence) sort key, so
/// sift comparisons never leave the contiguous heap array; callables
/// are constructed directly inside a recycled slot's InplaceAction
/// storage, so schedule/fire touch no allocator; cancel is an O(1)
/// slot lookup plus an O(log n) heap removal, and there are no
/// lazily-cancelled tombstones for run loops to skip over.
class Simulator {
  public:
    Simulator();
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current simulated time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedule `action` to run `delay` after now (delay clamped to
    /// >= 0). The callable is constructed in place inside the event
    /// slot — no intermediate InplaceAction materializes on this path.
    template <typename F>
    EventHandle schedule(SimTime delay, F&& action) {
        return scheduleAt(now_ + std::max(SimTime{0}, delay), std::forward<F>(action));
    }

    /// Schedule at an absolute simulated time (clamped to >= now).
    template <typename F>
    EventHandle scheduleAt(SimTime when, F&& action) {
        const std::uint32_t slot = acquireSlot();
        slots_[slot].action = std::forward<F>(action);
        return enqueueSlot(slot, when);
    }

    /// Cancel a pending event; returns true if it was still pending.
    /// Handles of fired events, previously cancelled events, or events
    /// dropped by clear() return false.
    bool cancel(EventHandle handle);

    /// Run until the event queue drains or `until` is reached. Events
    /// scheduled exactly at `until` do run. Returns the number of
    /// events executed.
    std::size_t runUntil(SimTime until);

    /// Run until the queue drains completely.
    std::size_t run();

    /// Drop every pending event (used between experiment repetitions)
    /// and invalidate all outstanding handles. The clock (`now()`) and
    /// the lifetime `executedEvents()` count are deliberately NOT
    /// reset: both are monotonic over the simulator's life so that
    /// successive phases of one run observe consistent time and
    /// counters. Start a fresh Simulator for a fresh timeline.
    void clear();

    [[nodiscard]] std::size_t pendingEvents() const noexcept { return heap_.size(); }
    [[nodiscard]] std::uint64_t executedEvents() const noexcept { return executed_; }

    /// Timestamp of the earliest pending event (the heap root), or
    /// nullopt when the queue is empty. Used by the shard scheduler to
    /// compute conservative lookahead windows without popping.
    [[nodiscard]] std::optional<SimTime> nextEventTime() const noexcept {
        if (heap_.empty()) return std::nullopt;
        return heap_.front().when;
    }

    /// Buffer freelist shared by this simulator's datapath (pipe
    /// writes, RLC chunks); single-threaded like the simulator itself.
    [[nodiscard]] BufferPool& bufferPool() noexcept { return pool_; }

    /// Register a component-owned pool (e.g. a pppd's frame pool) so
    /// its registry mirrors flush together with this simulator's own
    /// pool at run-loop exit. Components keep their pools private so
    /// recycling behaviour follows the component, not shard placement
    /// — that keeps the sim.pool.* totals byte-identical across shard
    /// layouts. The owner must detach before the pool is destroyed.
    void attachPool(BufferPool* pool) { attachedPools_.push_back(pool); }
    void detachPool(BufferPool* pool) noexcept {
        std::erase(attachedPools_, pool);
    }

    /// Install this simulator as the process-wide log clock so log
    /// lines carry simulated time.
    void attachLogClock();

  private:
    static constexpr std::uint32_t kNoHeapIndex = ~std::uint32_t{0};
    /// 4-ary: half the levels of a binary heap, and the four children
    /// sit in adjacent heap entries (one or two cache lines).
    static constexpr std::size_t kHeapArity = 4;

    /// One event slot. Slots are recycled through a freelist; the
    /// generation counter increments on every release, so handles into
    /// a reused slot from an earlier life cannot cancel the new event.
    struct Slot {
        std::uint32_t generation = 1;
        std::uint32_t heapIndex = kNoHeapIndex;  ///< position in heap_, or free
        InplaceAction action;
    };

    /// Heap entries own the sort key so sift loops compare within the
    /// contiguous heap array instead of dereferencing slots.
    struct HeapEntry {
        SimTime when{};
        std::uint64_t sequence = 0;  ///< FIFO tie-break
        std::uint32_t slot = 0;
    };

    [[nodiscard]] static bool firesBefore(const HeapEntry& a, const HeapEntry& b) noexcept {
        if (a.when != b.when) return a.when < b.when;
        return a.sequence < b.sequence;
    }

    /// Pop a free slot (or grow) — the caller constructs the action.
    std::uint32_t acquireSlot();
    /// Push an acquired slot onto the heap and account the schedule.
    EventHandle enqueueSlot(std::uint32_t slot, SimTime when);
    void siftUp(std::size_t index);
    void siftDown(std::size_t index);
    /// Remove the root (the firing event): pop-last + siftDown only.
    void popRoot();
    void removeHeapIndex(std::size_t index);
    /// Return a slot to the freelist, destroying its action and
    /// invalidating outstanding handles via the generation bump.
    void releaseSlot(std::uint32_t slot);
    /// Pop the earliest event, advance the clock and run it.
    void fireTop();

    // Declared before the slots so pooled buffers captured in pending
    // actions are destroyed while the pool is still alive.
    BufferPool pool_;
    std::vector<BufferPool*> attachedPools_;  ///< component pools, counter flush only
    std::vector<Slot> slots_;
    std::vector<HeapEntry> heap_;           ///< min-heap by (when, sequence)
    std::vector<std::uint32_t> freeSlots_;  ///< recycled slot indices
    SimTime now_{0};
    std::uint64_t nextSequence_ = 1;
    std::uint64_t executed_ = 0;
    // Registry mirrors (sim.events_*) live on scattered cache lines,
    // so the hot loop accumulates deltas in these members and flushes
    // at run-loop exit; outside a loop, updates go straight through.
    // Every observation point (telemetry export, test assertions) runs
    // outside the loop and therefore sees exact values.
    bool running_ = false;
    std::uint64_t pendingScheduled_ = 0;
    std::uint64_t pendingExecuted_ = 0;
    std::uint64_t pendingCancelled_ = 0;
    void flushCounters() noexcept;
    // Registry-backed mirrors of the local counters (sim.events_*);
    // shared across Simulator instances by name.
    obs::Counter* eventsExecuted_;
    obs::Counter* eventsScheduled_;
    obs::Counter* eventsCancelled_;
};

}  // namespace onelab::sim
