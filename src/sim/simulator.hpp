#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace onelab::obs {
class Counter;
}

namespace onelab::sim {

/// Handle returned by Simulator::schedule; can cancel a pending event.
class EventHandle {
  public:
    EventHandle() = default;

    [[nodiscard]] bool valid() const noexcept { return id_ != 0; }
    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  private:
    friend class Simulator;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
};

/// Single-threaded discrete-event simulator. Events at the same
/// timestamp fire in scheduling order (FIFO tie-break), which keeps
/// runs deterministic.
class Simulator {
  public:
    Simulator();
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// Current simulated time.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Schedule `action` to run `delay` after now (delay clamped to >= 0).
    EventHandle schedule(SimTime delay, std::function<void()> action);

    /// Schedule at an absolute simulated time (clamped to >= now).
    EventHandle scheduleAt(SimTime when, std::function<void()> action);

    /// Cancel a pending event; returns true if it was still pending.
    bool cancel(EventHandle handle);

    /// Run until the event queue drains or `until` is reached. Events
    /// scheduled exactly at `until` do run. Returns the number of
    /// events executed.
    std::size_t runUntil(SimTime until);

    /// Run until the queue drains completely.
    std::size_t run();

    /// Drop every pending event (used between experiment repetitions).
    void clear();

    [[nodiscard]] std::size_t pendingEvents() const noexcept { return pending_.size(); }
    [[nodiscard]] std::uint64_t executedEvents() const noexcept { return executed_; }

    /// Install this simulator as the process-wide log clock so log
    /// lines carry simulated time.
    void attachLogClock();

  private:
    struct Event {
        SimTime when;
        std::uint64_t sequence;  ///< FIFO tie-break and cancel id
        std::function<void()> action;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.when != b.when) return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    bool popNext(Event& out);

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<std::uint64_t> pending_;  ///< ids scheduled and not yet fired/cancelled
    SimTime now_{0};
    std::uint64_t nextSequence_ = 1;
    std::uint64_t executed_ = 0;
    // Registry-backed mirrors of the local counters (sim.events_*);
    // shared across Simulator instances by name.
    obs::Counter* eventsExecuted_;
    obs::Counter* eventsScheduled_;
    obs::Counter* eventsCancelled_;
};

}  // namespace onelab::sim
