#include "sim/time.hpp"

#include "util/strings.hpp"

namespace onelab::sim {

std::string formatTime(SimTime t) {
    const double ns = double(t.count());
    if (ns < 1e3) return util::format("%.0fns", ns);
    if (ns < 1e6) return util::format("%.3fus", ns / 1e3);
    if (ns < 1e9) return util::format("%.3fms", ns / 1e6);
    return util::format("%.3fs", ns / 1e9);
}

}  // namespace onelab::sim
