#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace onelab::sim {

/// Simulated time is a nanosecond count from simulation start.
using SimTime = std::chrono::nanoseconds;

using namespace std::chrono_literals;

/// Convenience constructors from floating-point seconds/milliseconds.
[[nodiscard]] constexpr SimTime seconds(double s) {
    return SimTime{std::int64_t(s * 1e9)};
}
[[nodiscard]] constexpr SimTime millis(double ms) {
    return SimTime{std::int64_t(ms * 1e6)};
}
[[nodiscard]] constexpr SimTime micros(double us) {
    return SimTime{std::int64_t(us * 1e3)};
}

/// Conversions to floating point.
[[nodiscard]] constexpr double toSeconds(SimTime t) noexcept { return double(t.count()) / 1e9; }
[[nodiscard]] constexpr double toMillis(SimTime t) noexcept { return double(t.count()) / 1e6; }

/// Serialization delay of `bytes` at `bitsPerSecond`.
[[nodiscard]] constexpr SimTime transmissionTime(std::size_t bytes, double bitsPerSecond) {
    return SimTime{std::int64_t(double(bytes) * 8.0 / bitsPerSecond * 1e9)};
}

/// Human-readable rendering ("12.345ms", "3.2s").
[[nodiscard]] std::string formatTime(SimTime t);

}  // namespace onelab::sim
