#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace onelab::sim {

/// Move-only type-erased `void()` callable with small-buffer storage.
/// Callables up to kInlineBytes live inside the object, so the common
/// schedule/fire path (a lambda capturing a few pointers and a byte
/// buffer) performs zero heap allocations; larger callables fall back
/// to the heap. Unlike std::function the stored callable only needs to
/// be move-constructible, so events may own move-only state (a pooled
/// buffer, a unique_ptr) directly instead of through a shared_ptr.
class InplaceAction {
  public:
    /// Sized so the datapath's delivery closures (a couple of pointers,
    /// a weak_ptr and a util::Bytes) stay inline.
    static constexpr std::size_t kInlineBytes = 64;

    InplaceAction() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceAction> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InplaceAction(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
        construct(std::forward<F>(fn));
    }

    /// Replace the stored callable, constructing the new one directly
    /// in this object's storage (the Simulator's schedule fast path —
    /// no intermediate InplaceAction is materialized and relocated).
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceAction> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    InplaceAction& operator=(F&& fn) {
        reset();
        construct(std::forward<F>(fn));
        return *this;
    }

    InplaceAction(InplaceAction&& other) noexcept : vtable_(other.vtable_) {
        if (vtable_) vtable_->relocate(other.storage(), storage());
        other.vtable_ = nullptr;
    }

    InplaceAction& operator=(InplaceAction&& other) noexcept {
        if (this != &other) {
            reset();
            vtable_ = other.vtable_;
            if (vtable_) vtable_->relocate(other.storage(), storage());
            other.vtable_ = nullptr;
        }
        return *this;
    }

    InplaceAction(const InplaceAction&) = delete;
    InplaceAction& operator=(const InplaceAction&) = delete;

    ~InplaceAction() { reset(); }

    void operator()() { vtable_->invoke(storage()); }

    /// Invoke and destroy in one step (one indirect call instead of
    /// two on the Simulator's fire path). Leaves this action empty.
    void invokeOnce() {
        const VTable* vtable = vtable_;
        vtable_ = nullptr;
        vtable->invokeDestroy(storage());
    }

    [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

    /// Destroy the stored callable (idempotent).
    void reset() noexcept {
        if (vtable_) {
            vtable_->destroy(storage());
            vtable_ = nullptr;
        }
    }

  private:
    struct VTable {
        void (*invoke)(void* storage);
        /// Invoke, then destroy the callable (even on unwind).
        void (*invokeDestroy)(void* storage);
        /// Move the callable from `from` into `to` and destroy `from`.
        void (*relocate)(void* from, void* to) noexcept;
        void (*destroy)(void* storage) noexcept;
    };

    template <typename F>
    static constexpr VTable kInlineVTable{
        [](void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); },
        [](void* s) {
            F* fn = std::launder(reinterpret_cast<F*>(s));
            struct Guard {
                F* fn;
                ~Guard() { fn->~F(); }
            } guard{fn};
            (*fn)();
        },
        [](void* from, void* to) noexcept {
            F* source = std::launder(reinterpret_cast<F*>(from));
            ::new (to) F(std::move(*source));
            source->~F();
        },
        [](void* s) noexcept { std::launder(reinterpret_cast<F*>(s))->~F(); },
    };

    template <typename F>
    static constexpr VTable kHeapVTable{
        [](void* s) { (**std::launder(reinterpret_cast<F**>(s)))(); },
        [](void* s) {
            F* fn = *std::launder(reinterpret_cast<F**>(s));
            struct Guard {
                F* fn;
                ~Guard() { delete fn; }
            } guard{fn};
            (*fn)();
        },
        [](void* from, void* to) noexcept {
            *reinterpret_cast<F**>(to) = *std::launder(reinterpret_cast<F**>(from));
        },
        [](void* s) noexcept { delete *std::launder(reinterpret_cast<F**>(s)); },
    };

    template <typename F>
    void construct(F&& fn) {
        using Decayed = std::decay_t<F>;
        if constexpr (sizeof(Decayed) <= kInlineBytes &&
                      alignof(Decayed) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Decayed>) {
            ::new (storage()) Decayed(std::forward<F>(fn));
            vtable_ = &kInlineVTable<Decayed>;
        } else {
            *reinterpret_cast<Decayed**>(storage()) = new Decayed(std::forward<F>(fn));
            vtable_ = &kHeapVTable<Decayed>;
        }
    }

    [[nodiscard]] void* storage() noexcept { return storage_; }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const VTable* vtable_ = nullptr;
};

}  // namespace onelab::sim
