#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace onelab::sim {

/// Post function handed to objects sitting on a shard cut: deliver
/// `fn` into the peer shard's simulator at absolute time `when`.
/// Callable from the posting shard's worker thread during a window;
/// the group drains posts into the target simulator at barriers.
using ShardPost = std::function<void(SimTime when, std::function<void()> fn)>;

/// One timestamped event crossing a shard boundary.
struct MailboxEvent {
    SimTime when{};
    std::uint64_t seq = 0;  ///< per-mailbox FIFO rank, assigned on post
    std::function<void()> fn;
};

/// Single-producer/single-consumer timestamped mailbox forming one
/// directed cut edge between two shards. The producer is the source
/// shard's worker thread (posting mid-window); the consumer is the
/// group driver draining at a barrier. Posts are rare relative to
/// shard-local events, so a mutex-protected vector (swapped out
/// wholesale on drain) is cheap and keeps the ordering story trivial:
/// the per-mailbox `seq` preserves the producer's program order, and
/// the drain pass merges mailboxes by (when, portRank, seq) so the
/// interleaving is independent of how sites are packed onto shards.
class CrossShardMailbox {
  public:
    /// `portRank` is the mailbox's stable position in the drain merge
    /// order — derived from the site's fleet index, NOT the shard
    /// index, so the merged event order is partition-independent.
    CrossShardMailbox(std::string name, std::uint64_t portRank);

    CrossShardMailbox(const CrossShardMailbox&) = delete;
    CrossShardMailbox& operator=(const CrossShardMailbox&) = delete;

    /// Enqueue `fn` for delivery at absolute time `when`.
    /// Thread-safe against a concurrent drain()/clear().
    void post(SimTime when, std::function<void()> fn);

    /// Move out every pending event (consumer side, at a barrier).
    [[nodiscard]] std::vector<MailboxEvent> drain();

    /// Teardown: discard pending events without running them; returns
    /// the number dropped (they are also added to dropped()).
    std::size_t clear();

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::uint64_t portRank() const noexcept { return portRank_; }
    [[nodiscard]] std::uint64_t posted() const noexcept { return posted_; }
    [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
    [[nodiscard]] std::size_t pending() const;

  private:
    const std::string name_;
    const std::uint64_t portRank_;
    mutable std::mutex mutex_;
    std::vector<MailboxEvent> pending_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t posted_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

}  // namespace onelab::sim
