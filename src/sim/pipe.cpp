#include "sim/pipe.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "util/rand.hpp"

namespace onelab::sim {

class Pipe::End final : public ByteChannel {
  public:
    End(Simulator& simulator, SimTime latency)
        : sim_(simulator),
          latency_(latency),
          alive_(std::make_shared<bool>(true)),
          droppedNoHandler_(
              &obs::Registry::instance().counter("sim.pipe.dropped_no_handler")) {}

    /// Cross-shard end: deliveries toward the peer leave through
    /// `postToPeer` with `cutLatency` added. The dropped-bytes counter
    /// is resolved lazily on the owning thread (the drop path is cold)
    /// so it lands in the owner shard's registry.
    End(Simulator& simulator, SimTime latency, ShardPost postToPeer, SimTime cutLatency)
        : sim_(simulator),
          latency_(latency),
          alive_(std::make_shared<bool>(true)),
          postToPeer_(std::move(postToPeer)),
          cutLatency_(cutLatency),
          droppedNoHandler_(nullptr) {}

    ~End() override { *alive_ = false; }

    void connect(End* peer) { peer_ = peer; }

    void write(util::ByteView data) override {
        obs::ProfileScope scope(obs::ProfileCategory::pipe);
        if (!peer_) return;
        if (postToPeer_) {
            writeAcrossShards(data);
            return;
        }
        if (!peer_->handler_ && !peer_->sharedHandler_) {
            // The peer never installed a receive callback: the bytes
            // would be dropped at delivery time anyway, so skip the
            // copy, the corruption pass and the scheduled event — but
            // keep the count visible. (Handlers are installed before
            // traffic in every bring-up path; a write landing here is
            // a half-wired endpoint, not an in-flight race.)
            droppedNoHandler_->inc(data.size());
            return;
        }
        // Copy now (into a pooled buffer); deliver later. FIFO order is
        // guaranteed because the simulator breaks timestamp ties in
        // scheduling order. The peer's alive flag guards against
        // delivery after destruction.
        util::Bytes copy = sim_.bufferPool().acquire(data);
        if (corruption_ && corruptProbability_ > 0.0) {
            for (auto& byte : copy) {
                if (!corruption_->chance(corruptProbability_)) continue;
                // XOR with a nonzero mask so a corrupted byte always
                // differs from the original.
                byte ^= std::uint8_t(corruption_->uniformInt(1, 255));
                ++corruptedBytes_;
            }
        }
        End* peer = peer_;
        std::weak_ptr<bool> peerAlive = peer->alive_;
        // A stall delays delivery until the stall window closes; FIFO
        // survives because held writes share the same release instant
        // and the simulator breaks ties in scheduling order.
        const SimTime departure = sim_.now() + latency_;
        const SimTime delivery = std::max(departure, stallUntil_);
        BufferPool* pool = &sim_.bufferPool();
        sim_.schedule(delivery - sim_.now(),
                      [peer, peerAlive, pool, buffer = std::move(copy)]() mutable {
            const auto alive = peerAlive.lock();
            if (!alive || !*alive) return;
            // Copy the handler before invoking: handlers may replace
            // themselves (wvdial hands the TTY from chat to pppd from
            // within a delivery), and invoking the member directly
            // would destroy the executing closure.
            if (peer->sharedHandler_) {
                // Slice-aware receiver: hand the pooled buffer over as
                // a refcounted slice (it recycles when the last hop
                // lets go) instead of releasing it here.
                const auto handler = peer->sharedHandler_;
                handler(pool->share(std::move(buffer)));
                return;
            }
            const auto handler = peer->handler_;
            if (handler) handler(buffer);
            // Recycle the buffer for the next write. An event that
            // never fires (cancel/clear) just frees it — fine.
            pool->release(std::move(buffer));
        });
    }

    /// Zero-copy write: the delivery event holds a reference to the
    /// writer's slice instead of a pooled copy. Falls back to the
    /// copying path when the bytes must be privately owned (corruption
    /// mutates them) or must not share a core across threads
    /// (cross-shard cut).
    void write(const util::SharedBytes& data) override {
        obs::ProfileScope scope(obs::ProfileCategory::pipe);
        if (!peer_) return;
        if (postToPeer_) {
            writeAcrossShards(data.view());
            return;
        }
        if (corruption_ && corruptProbability_ > 0.0) {
            write(data.view());
            return;
        }
        if (!peer_->handler_ && !peer_->sharedHandler_) {
            droppedNoHandler_->inc(data.size());
            return;
        }
        End* peer = peer_;
        std::weak_ptr<bool> peerAlive = peer->alive_;
        const SimTime departure = sim_.now() + latency_;
        const SimTime delivery = std::max(departure, stallUntil_);
        sim_.schedule(delivery - sim_.now(), [peer, peerAlive, buffer = data] {
            const auto alive = peerAlive.lock();
            if (!alive || !*alive) return;
            if (peer->sharedHandler_) {
                const auto handler = peer->sharedHandler_;
                handler(buffer);
                return;
            }
            const auto handler = peer->handler_;
            if (handler) handler(buffer.view());
        });
    }

    void onData(std::function<void(util::ByteView)> handler) override {
        handler_ = std::move(handler);
        sharedHandler_ = nullptr;
    }

    void onDataShared(std::function<void(util::SharedBytes)> handler) override {
        sharedHandler_ = std::move(handler);
        handler_ = nullptr;
    }

    /// Peer-bound write over a shard cut. Differences from the local
    /// path, each forced by thread ownership: the peer's handler is
    /// not peeked (another shard's state), the copy is a plain heap
    /// buffer (the pool is shard-local and single-threaded), and the
    /// delivery closure runs on the peer's shard — where it may read
    /// the peer's members and resolve the drop counter thread-locally.
    void writeAcrossShards(util::ByteView data) {
        util::Bytes copy{data.begin(), data.end()};
        if (corruption_ && corruptProbability_ > 0.0) {
            for (auto& byte : copy) {
                if (!corruption_->chance(corruptProbability_)) continue;
                byte ^= std::uint8_t(corruption_->uniformInt(1, 255));
                ++corruptedBytes_;
            }
        }
        End* peer = peer_;
        std::weak_ptr<bool> peerAlive = peer->alive_;
        const SimTime departure = sim_.now() + latency_ + cutLatency_;
        const SimTime delivery = std::max(departure, stallUntil_);
        postToPeer_(delivery, [peer, peerAlive, buffer = std::move(copy)]() mutable {
            const auto alive = peerAlive.lock();
            if (!alive || !*alive) return;
            if (peer->sharedHandler_) {
                // The private heap copy can be adopted outright — it
                // was made for this delivery and lives on the peer's
                // shard, so the non-atomic refcount is safe.
                const auto handler = peer->sharedHandler_;
                handler(util::SharedBytes::wrap(std::move(buffer)));
                return;
            }
            const auto handler = peer->handler_;
            if (handler) {
                handler(buffer);
                return;
            }
            obs::Registry::instance()
                .counter("sim.pipe.dropped_no_handler")
                .inc(buffer.size());
        });
    }

    void stallFor(SimTime duration) {
        stallUntil_ = std::max(stallUntil_, sim_.now() + duration);
    }

    /// Relay a fault call to the peer end across the cut: the action
    /// lands on the peer's shard one cut latency later, as any byte
    /// would. Call from this end's owning shard.
    void relayToPeer(std::function<void(End&)> action) {
        End* peer = peer_;
        std::weak_ptr<bool> peerAlive = peer->alive_;
        postToPeer_(sim_.now() + cutLatency_,
                    [peer, peerAlive, action = std::move(action)] {
                        const auto alive = peerAlive.lock();
                        if (!alive || !*alive) return;
                        action(*peer);
                    });
    }

    [[nodiscard]] bool crossShard() const noexcept {
        return static_cast<bool>(postToPeer_);
    }

    void setCorruption(double probability, std::uint64_t seed) {
        corruptProbability_ = probability;
        if (probability > 0.0)
            corruption_ = std::make_unique<util::RandomStream>(seed);
        else
            corruption_.reset();
    }

    [[nodiscard]] std::uint64_t corruptedBytes() const noexcept {
        return corruptedBytes_;
    }

  private:
    Simulator& sim_;
    SimTime latency_;
    std::shared_ptr<bool> alive_;
    ShardPost postToPeer_;  ///< set on cross-shard ends only
    SimTime cutLatency_{0};
    End* peer_ = nullptr;
    std::function<void(util::ByteView)> handler_;
    std::function<void(util::SharedBytes)> sharedHandler_;
    SimTime stallUntil_{0};
    double corruptProbability_ = 0.0;
    std::unique_ptr<util::RandomStream> corruption_;
    std::uint64_t corruptedBytes_ = 0;
    obs::Counter* droppedNoHandler_;
};

Pipe::Pipe(Simulator& simulator, SimTime latency)
    : a_(std::make_unique<End>(simulator, latency)),
      b_(std::make_unique<End>(simulator, latency)) {
    a_->connect(b_.get());
    b_->connect(a_.get());
}

Pipe::Pipe(const CrossShard& cross, SimTime latency)
    : a_(std::make_unique<End>(*cross.simA, latency, cross.postToB, cross.cutLatency)),
      b_(std::make_unique<End>(*cross.simB, latency, cross.postToA, cross.cutLatency)) {
    a_->connect(b_.get());
    b_->connect(a_.get());
}

Pipe::~Pipe() = default;

ByteChannel& Pipe::a() noexcept { return *a_; }
ByteChannel& Pipe::b() noexcept { return *b_; }

void Pipe::injectStall(SimTime duration) {
    b_->stallFor(duration);
    if (b_->crossShard())
        // End A stalls when the relay lands, one cut latency later —
        // a wedge observed from the far side of the wire.
        b_->relayToPeer([duration](End& a) { a.stallFor(duration); });
    else
        a_->stallFor(duration);
}

void Pipe::setCorruption(double byteFlipProbability, std::uint64_t seed) {
    // Derive distinct per-direction seeds so the two ends do not mirror
    // each other's draws.
    const std::uint64_t seedA = seed * 2654435761u + 1;
    b_->setCorruption(byteFlipProbability, seed * 2654435761u + 2);
    if (b_->crossShard())
        b_->relayToPeer([byteFlipProbability, seedA](End& a) {
            a.setCorruption(byteFlipProbability, seedA);
        });
    else
        a_->setCorruption(byteFlipProbability, seedA);
}

std::uint64_t Pipe::corruptedBytes() const noexcept {
    return a_->corruptedBytes() + b_->corruptedBytes();
}

}  // namespace onelab::sim
