#include "sim/pipe.hpp"

namespace onelab::sim {

class Pipe::End final : public ByteChannel {
  public:
    End(Simulator& simulator, SimTime latency)
        : sim_(simulator), latency_(latency), alive_(std::make_shared<bool>(true)) {}

    ~End() override { *alive_ = false; }

    void connect(End* peer) { peer_ = peer; }

    void write(util::ByteView data) override {
        if (!peer_) return;
        // Copy now; deliver later. FIFO order is guaranteed because
        // the simulator breaks timestamp ties in scheduling order. The
        // peer's alive flag guards against delivery after destruction.
        auto copy = std::make_shared<util::Bytes>(data.begin(), data.end());
        End* peer = peer_;
        std::weak_ptr<bool> peerAlive = peer->alive_;
        sim_.schedule(latency_, [peer, peerAlive, copy] {
            const auto alive = peerAlive.lock();
            if (!alive || !*alive) return;
            // Copy the handler before invoking: handlers may replace
            // themselves (wvdial hands the TTY from chat to pppd from
            // within a delivery), and invoking the member directly
            // would destroy the executing closure.
            const auto handler = peer->handler_;
            if (handler) handler(*copy);
        });
    }

    void onData(std::function<void(util::ByteView)> handler) override {
        handler_ = std::move(handler);
    }

  private:
    Simulator& sim_;
    SimTime latency_;
    std::shared_ptr<bool> alive_;
    End* peer_ = nullptr;
    std::function<void(util::ByteView)> handler_;
};

Pipe::Pipe(Simulator& simulator, SimTime latency)
    : a_(std::make_unique<End>(simulator, latency)),
      b_(std::make_unique<End>(simulator, latency)) {
    a_->connect(b_.get());
    b_->connect(a_.get());
}

Pipe::~Pipe() = default;

ByteChannel& Pipe::a() noexcept { return *a_; }
ByteChannel& Pipe::b() noexcept { return *b_; }

}  // namespace onelab::sim
