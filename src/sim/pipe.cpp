#include "sim/pipe.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "util/rand.hpp"

namespace onelab::sim {

class Pipe::End final : public ByteChannel {
  public:
    End(Simulator& simulator, SimTime latency)
        : sim_(simulator),
          latency_(latency),
          alive_(std::make_shared<bool>(true)),
          droppedNoHandler_(
              &obs::Registry::instance().counter("sim.pipe.dropped_no_handler")) {}

    ~End() override { *alive_ = false; }

    void connect(End* peer) { peer_ = peer; }

    void write(util::ByteView data) override {
        obs::ProfileScope scope(obs::ProfileCategory::pipe);
        if (!peer_) return;
        if (!peer_->handler_) {
            // The peer never installed a receive callback: the bytes
            // would be dropped at delivery time anyway, so skip the
            // copy, the corruption pass and the scheduled event — but
            // keep the count visible. (Handlers are installed before
            // traffic in every bring-up path; a write landing here is
            // a half-wired endpoint, not an in-flight race.)
            droppedNoHandler_->inc(data.size());
            return;
        }
        // Copy now (into a pooled buffer); deliver later. FIFO order is
        // guaranteed because the simulator breaks timestamp ties in
        // scheduling order. The peer's alive flag guards against
        // delivery after destruction.
        util::Bytes copy = sim_.bufferPool().acquire(data);
        if (corruption_ && corruptProbability_ > 0.0) {
            for (auto& byte : copy) {
                if (!corruption_->chance(corruptProbability_)) continue;
                // XOR with a nonzero mask so a corrupted byte always
                // differs from the original.
                byte ^= std::uint8_t(corruption_->uniformInt(1, 255));
                ++corruptedBytes_;
            }
        }
        End* peer = peer_;
        std::weak_ptr<bool> peerAlive = peer->alive_;
        // A stall delays delivery until the stall window closes; FIFO
        // survives because held writes share the same release instant
        // and the simulator breaks ties in scheduling order.
        const SimTime departure = sim_.now() + latency_;
        const SimTime delivery = std::max(departure, stallUntil_);
        BufferPool* pool = &sim_.bufferPool();
        sim_.schedule(delivery - sim_.now(),
                      [peer, peerAlive, pool, buffer = std::move(copy)]() mutable {
            const auto alive = peerAlive.lock();
            if (!alive || !*alive) return;
            // Copy the handler before invoking: handlers may replace
            // themselves (wvdial hands the TTY from chat to pppd from
            // within a delivery), and invoking the member directly
            // would destroy the executing closure.
            const auto handler = peer->handler_;
            if (handler) handler(buffer);
            // Recycle the buffer for the next write. An event that
            // never fires (cancel/clear) just frees it — fine.
            pool->release(std::move(buffer));
        });
    }

    void onData(std::function<void(util::ByteView)> handler) override {
        handler_ = std::move(handler);
    }

    void stallFor(SimTime duration) {
        stallUntil_ = std::max(stallUntil_, sim_.now() + duration);
    }

    void setCorruption(double probability, std::uint64_t seed) {
        corruptProbability_ = probability;
        if (probability > 0.0)
            corruption_ = std::make_unique<util::RandomStream>(seed);
        else
            corruption_.reset();
    }

    [[nodiscard]] std::uint64_t corruptedBytes() const noexcept {
        return corruptedBytes_;
    }

  private:
    Simulator& sim_;
    SimTime latency_;
    std::shared_ptr<bool> alive_;
    End* peer_ = nullptr;
    std::function<void(util::ByteView)> handler_;
    SimTime stallUntil_{0};
    double corruptProbability_ = 0.0;
    std::unique_ptr<util::RandomStream> corruption_;
    std::uint64_t corruptedBytes_ = 0;
    obs::Counter* droppedNoHandler_;
};

Pipe::Pipe(Simulator& simulator, SimTime latency)
    : a_(std::make_unique<End>(simulator, latency)),
      b_(std::make_unique<End>(simulator, latency)) {
    a_->connect(b_.get());
    b_->connect(a_.get());
}

Pipe::~Pipe() = default;

ByteChannel& Pipe::a() noexcept { return *a_; }
ByteChannel& Pipe::b() noexcept { return *b_; }

void Pipe::injectStall(SimTime duration) {
    a_->stallFor(duration);
    b_->stallFor(duration);
}

void Pipe::setCorruption(double byteFlipProbability, std::uint64_t seed) {
    // Derive distinct per-direction seeds so the two ends do not mirror
    // each other's draws.
    a_->setCorruption(byteFlipProbability, seed * 2654435761u + 1);
    b_->setCorruption(byteFlipProbability, seed * 2654435761u + 2);
}

std::uint64_t Pipe::corruptedBytes() const noexcept {
    return a_->corruptedBytes() + b_->corruptedBytes();
}

}  // namespace onelab::sim
