#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace onelab::sim {

/// One end of a bidirectional byte stream (a TTY, a serial line, the
/// byte side of a radio bearer). Writes go to the peer; data arriving
/// from the peer is delivered through the onData callback.
class ByteChannel {
  public:
    virtual ~ByteChannel() = default;

    /// Write bytes toward the peer.
    virtual void write(util::ByteView data) = 0;

    /// Install the receive callback (bytes arriving from the peer).
    virtual void onData(std::function<void(util::ByteView)> handler) = 0;
};

/// An in-memory byte pipe connecting two ByteChannel endpoints.
/// Deliveries are deferred through the simulator (never re-entrant)
/// with a configurable per-write latency, and remain FIFO.
class Pipe {
  public:
    /// Create a connected pair. `latency` is the per-write transfer
    /// delay (a local TTY is effectively instantaneous; leave 0).
    Pipe(Simulator& simulator, SimTime latency = SimTime{0});
    ~Pipe();

    Pipe(const Pipe&) = delete;
    Pipe& operator=(const Pipe&) = delete;

    /// Endpoint A (e.g. the host side of a TTY).
    [[nodiscard]] ByteChannel& a() noexcept;
    /// Endpoint B (e.g. the device side of a TTY).
    [[nodiscard]] ByteChannel& b() noexcept;

  private:
    class End;
    std::unique_ptr<End> a_;
    std::unique_ptr<End> b_;
};

}  // namespace onelab::sim
