#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace onelab::sim {

/// One end of a bidirectional byte stream (a TTY, a serial line, the
/// byte side of a radio bearer). Writes go to the peer; data arriving
/// from the peer is delivered through the onData callback.
class ByteChannel {
  public:
    virtual ~ByteChannel() = default;

    /// Write bytes toward the peer.
    virtual void write(util::ByteView data) = 0;

    /// Install the receive callback (bytes arriving from the peer).
    virtual void onData(std::function<void(util::ByteView)> handler) = 0;
};

/// An in-memory byte pipe connecting two ByteChannel endpoints.
/// Deliveries are deferred through the simulator (never re-entrant)
/// with a configurable per-write latency, and remain FIFO.
class Pipe {
  public:
    /// Create a connected pair. `latency` is the per-write transfer
    /// delay (a local TTY is effectively instantaneous; leave 0).
    Pipe(Simulator& simulator, SimTime latency = SimTime{0});
    ~Pipe();

    Pipe(const Pipe&) = delete;
    Pipe& operator=(const Pipe&) = delete;

    /// Endpoint A (e.g. the host side of a TTY).
    [[nodiscard]] ByteChannel& a() noexcept;
    /// Endpoint B (e.g. the device side of a TTY).
    [[nodiscard]] ByteChannel& b() noexcept;

    /// Fault hook: hold all deliveries (both directions) written from
    /// now until `duration` has elapsed; held bytes arrive, in order,
    /// once the stall ends. Models a wedged serial line / driver stall.
    void injectStall(SimTime duration);

    /// Fault hook: flip each transferred byte with the given
    /// probability, drawing from a stream seeded deterministically.
    /// Probability 0 (the default) disables corruption.
    void setCorruption(double byteFlipProbability, std::uint64_t seed);

    /// Total bytes corrupted by setCorruption since construction.
    [[nodiscard]] std::uint64_t corruptedBytes() const noexcept;

  private:
    class End;
    std::unique_ptr<End> a_;
    std::unique_ptr<End> b_;
};

}  // namespace onelab::sim
