#pragma once

#include <functional>
#include <memory>

#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"

namespace onelab::sim {

/// One end of a bidirectional byte stream (a TTY, a serial line, the
/// byte side of a radio bearer). Writes go to the peer; data arriving
/// from the peer is delivered through the onData callback.
///
/// Zero-copy extension: a writer holding a refcounted pooled slice can
/// hand it over with write(SharedBytes), and a receiver that forwards
/// bytes onward (rather than consuming them in place) installs
/// onDataShared() to get the slice itself. Channels that don't
/// override the shared forms degrade to the copying view path, so the
/// two worlds interoperate hop by hop.
class ByteChannel {
  public:
    virtual ~ByteChannel() = default;

    /// Write bytes toward the peer.
    virtual void write(util::ByteView data) = 0;

    /// Write a refcounted slice toward the peer. Default: view copy.
    virtual void write(const util::SharedBytes& data) { write(data.view()); }

    /// Install the receive callback (bytes arriving from the peer).
    virtual void onData(std::function<void(util::ByteView)> handler) = 0;

    /// Slice-aware receive: the handler gets the writer's refcounted
    /// buffer when one rode the channel intact, or a wrapped copy
    /// otherwise. Installing it replaces any onData handler (one
    /// receive callback is active at a time).
    virtual void onDataShared(std::function<void(util::SharedBytes)> handler) {
        onData([handler = std::move(handler)](util::ByteView data) {
            handler(util::SharedBytes::copy(data));
        });
    }
};

/// An in-memory byte pipe connecting two ByteChannel endpoints.
/// Deliveries are deferred through the simulator (never re-entrant)
/// with a configurable per-write latency, and remain FIFO.
class Pipe {
  public:
    /// Create a connected pair. `latency` is the per-write transfer
    /// delay (a local TTY is effectively instantaneous; leave 0).
    Pipe(Simulator& simulator, SimTime latency = SimTime{0});

    /// Cross-shard wiring: end A lives on `simA`'s shard, end B on
    /// `simB`'s. Writes cross the cut through the post functions with
    /// `cutLatency` added on top of `latency`, carried in plain heap
    /// buffers (the per-simulator pools are shard-local), and without
    /// the peer-handler peek (the peer belongs to another thread).
    struct CrossShard {
        Simulator* simA = nullptr;
        Simulator* simB = nullptr;
        ShardPost postToA;  ///< deliver into A's shard
        ShardPost postToB;  ///< deliver into B's shard
        SimTime cutLatency{0};
    };
    Pipe(const CrossShard& cross, SimTime latency = SimTime{0});
    ~Pipe();

    Pipe(const Pipe&) = delete;
    Pipe& operator=(const Pipe&) = delete;

    /// Endpoint A (e.g. the host side of a TTY).
    [[nodiscard]] ByteChannel& a() noexcept;
    /// Endpoint B (e.g. the device side of a TTY).
    [[nodiscard]] ByteChannel& b() noexcept;

    /// Fault hook: hold all deliveries (both directions) written from
    /// now until `duration` has elapsed; held bytes arrive, in order,
    /// once the stall ends. Models a wedged serial line / driver stall.
    /// Cross-shard: call from end B's owning shard (the fault
    /// injector's side); end A's stall starts one cut latency later,
    /// carried across as a mailbox event.
    void injectStall(SimTime duration);

    /// Fault hook: flip each transferred byte with the given
    /// probability, drawing from a stream seeded deterministically.
    /// Probability 0 (the default) disables corruption. Cross-shard:
    /// call from end B's owning shard, like injectStall.
    void setCorruption(double byteFlipProbability, std::uint64_t seed);

    /// Total bytes corrupted by setCorruption since construction.
    /// Cross-shard: read at barriers/teardown only (sums both ends).
    [[nodiscard]] std::uint64_t corruptedBytes() const noexcept;

  private:
    class End;
    std::unique_ptr<End> a_;
    std::unique_ptr<End> b_;
};

}  // namespace onelab::sim
