#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/registry.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"

namespace onelab::sim {

/// Freelist of util::Bytes buffers for the simulation datapath.
/// Steady-state traffic (a CBR flow writing the same-sized chunk into
/// a pipe every few milliseconds) recycles capacity instead of paying
/// a heap allocation per write. Single-threaded, like the Simulator
/// that owns it; releasing is optional — a buffer that is simply
/// destroyed (cancelled event, cleared queue) is a missed reuse, never
/// a leak or a double free.
///
/// Buffers can also leave as refcounted util::SharedBytes slices
/// (share()/acquireShared()): the capacity comes back automatically
/// when the last slice drops, and a pool torn down with slices still
/// outstanding orphans them safely (they self-free).
class BufferPool : private util::SharedBytesRecycler {
  public:
    BufferPool();
    ~BufferPool();

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// A buffer of exactly `size` bytes (contents unspecified),
    /// reusing pooled capacity when available. Inline: this is the
    /// per-write datapath fast path — only the local tallies are
    /// touched; the registry mirrors catch up via syncCounters().
    [[nodiscard]] util::Bytes acquire(std::size_t size) {
        if (!free_.empty()) {
            util::Bytes buffer = std::move(free_.back());
            free_.pop_back();
            buffer.resize(size);
            ++reuses_;
            return buffer;
        }
        return allocate(size);
    }

    /// A buffer holding a copy of `data`.
    [[nodiscard]] util::Bytes acquire(util::ByteView data);

    /// Return a buffer's capacity to the pool. Buffers above the
    /// retention cap (or when the pool is full) are simply freed.
    void release(util::Bytes&& buffer) noexcept {
        if (free_.size() >= kMaxPooled || buffer.capacity() > kMaxBufferBytes) return;
        free_.push_back(std::move(buffer));
    }

    /// Wrap `buffer` (typically filled in place after acquire()) into
    /// a refcounted slice. When the last reference drops the capacity
    /// returns to this pool — the zero-copy hand-off the datapath
    /// rides from framer to delivery.
    [[nodiscard]] util::SharedBytes share(util::Bytes&& buffer);

    /// A refcounted pooled copy of `data` (acquire + share).
    [[nodiscard]] util::SharedBytes acquireShared(util::ByteView data) {
        return share(acquire(data));
    }

    [[nodiscard]] std::size_t pooledBuffers() const noexcept { return free_.size(); }
    [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }
    [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }
    /// Shared slices issued and not yet recycled.
    [[nodiscard]] std::size_t outstandingShared() const noexcept {
        return liveCores_.size();
    }

    /// Push the local tallies into the registry mirrors
    /// (sim.pool.buffers_*). The owning Simulator calls this at
    /// run-loop exit, so exports and assertions (which happen outside
    /// run loops) always see exact values.
    void syncCounters() noexcept;

  private:
    /// Bound the pool so a burst cannot pin memory forever.
    static constexpr std::size_t kMaxPooled = 256;
    static constexpr std::size_t kMaxBufferBytes = 64 * 1024;

    /// Slow path: the pool is empty, go to the allocator.
    [[nodiscard]] util::Bytes allocate(std::size_t size);

    /// Last shared reference dropped: reclaim capacity and the core.
    void recycleShared(util::SharedBytesCore* core) noexcept override;

    std::vector<util::Bytes> free_;
    std::vector<util::SharedBytesCore*> liveCores_;  ///< issued, refs > 0
    std::vector<util::SharedBytesCore*> freeCores_;  ///< recycled core shells
    std::uint64_t reuses_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t syncedReuses_ = 0;
    std::uint64_t syncedAllocations_ = 0;
    // Registry-backed mirrors, shared by name (like sim.events_*).
    obs::Counter* reusedCounter_;
    obs::Counter* allocatedCounter_;
};

}  // namespace onelab::sim
