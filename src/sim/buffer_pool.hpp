#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/registry.hpp"
#include "util/bytes.hpp"

namespace onelab::sim {

/// Freelist of util::Bytes buffers for the simulation datapath.
/// Steady-state traffic (a CBR flow writing the same-sized chunk into
/// a pipe every few milliseconds) recycles capacity instead of paying
/// a heap allocation per write. Single-threaded, like the Simulator
/// that owns it; releasing is optional — a buffer that is simply
/// destroyed (cancelled event, cleared queue) is a missed reuse, never
/// a leak or a double free.
class BufferPool {
  public:
    BufferPool();
    ~BufferPool() { syncCounters(); }

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /// A buffer of exactly `size` bytes (contents unspecified),
    /// reusing pooled capacity when available. Inline: this is the
    /// per-write datapath fast path — only the local tallies are
    /// touched; the registry mirrors catch up via syncCounters().
    [[nodiscard]] util::Bytes acquire(std::size_t size) {
        if (!free_.empty()) {
            util::Bytes buffer = std::move(free_.back());
            free_.pop_back();
            buffer.resize(size);
            ++reuses_;
            return buffer;
        }
        return allocate(size);
    }

    /// A buffer holding a copy of `data`.
    [[nodiscard]] util::Bytes acquire(util::ByteView data);

    /// Return a buffer's capacity to the pool. Buffers above the
    /// retention cap (or when the pool is full) are simply freed.
    void release(util::Bytes&& buffer) noexcept {
        if (free_.size() >= kMaxPooled || buffer.capacity() > kMaxBufferBytes) return;
        free_.push_back(std::move(buffer));
    }

    [[nodiscard]] std::size_t pooledBuffers() const noexcept { return free_.size(); }
    [[nodiscard]] std::uint64_t reuses() const noexcept { return reuses_; }
    [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }

    /// Push the local tallies into the registry mirrors
    /// (sim.pool.buffers_*). The owning Simulator calls this at
    /// run-loop exit, so exports and assertions (which happen outside
    /// run loops) always see exact values.
    void syncCounters() noexcept;

  private:
    /// Bound the pool so a burst cannot pin memory forever.
    static constexpr std::size_t kMaxPooled = 256;
    static constexpr std::size_t kMaxBufferBytes = 64 * 1024;

    /// Slow path: the pool is empty, go to the allocator.
    [[nodiscard]] util::Bytes allocate(std::size_t size);

    std::vector<util::Bytes> free_;
    std::uint64_t reuses_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t syncedReuses_ = 0;
    std::uint64_t syncedAllocations_ = 0;
    // Registry-backed mirrors, shared by name (like sim.events_*).
    obs::Counter* reusedCounter_;
    obs::Counter* allocatedCounter_;
};

}  // namespace onelab::sim
