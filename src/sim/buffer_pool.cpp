#include "sim/buffer_pool.hpp"

#include <cstring>

#include "obs/registry.hpp"

namespace onelab::sim {

BufferPool::BufferPool()
    : reusedCounter_(&obs::Registry::instance().counter("sim.pool.buffers_reused")),
      allocatedCounter_(&obs::Registry::instance().counter("sim.pool.buffers_allocated")) {
    free_.reserve(kMaxPooled);  // release() must not allocate (noexcept)
}

util::Bytes BufferPool::allocate(std::size_t size) {
    ++allocations_;
    return util::Bytes(size);
}

void BufferPool::syncCounters() noexcept {
    if (reuses_ != syncedReuses_) {
        reusedCounter_->inc(reuses_ - syncedReuses_);
        syncedReuses_ = reuses_;
    }
    if (allocations_ != syncedAllocations_) {
        allocatedCounter_->inc(allocations_ - syncedAllocations_);
        syncedAllocations_ = allocations_;
    }
}

util::Bytes BufferPool::acquire(util::ByteView data) {
    util::Bytes buffer = acquire(data.size());
    if (!data.empty()) std::memcpy(buffer.data(), data.data(), data.size());
    return buffer;
}

}  // namespace onelab::sim
