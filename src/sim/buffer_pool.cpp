#include "sim/buffer_pool.hpp"

#include <cstring>

#include "obs/registry.hpp"

namespace onelab::sim {

BufferPool::BufferPool()
    : reusedCounter_(&obs::Registry::instance().counter("sim.pool.buffers_reused")),
      allocatedCounter_(&obs::Registry::instance().counter("sim.pool.buffers_allocated")) {
    free_.reserve(kMaxPooled);  // release() must not allocate (noexcept)
    freeCores_.reserve(kMaxPooled);
}

BufferPool::~BufferPool() {
    // Slices can outlive the pool (an event queue destroyed after its
    // simulator's pool, a test holding one): orphan them so the last
    // reference plain-deletes its core instead of calling back here.
    for (util::SharedBytesCore* core : liveCores_) core->recycler = nullptr;
    for (util::SharedBytesCore* core : freeCores_) delete core;
    syncCounters();
}

util::Bytes BufferPool::allocate(std::size_t size) {
    ++allocations_;
    return util::Bytes(size);
}

util::SharedBytes BufferPool::share(util::Bytes&& buffer) {
    util::SharedBytesCore* core;
    if (!freeCores_.empty()) {
        core = freeCores_.back();
        freeCores_.pop_back();
    } else {
        core = new util::SharedBytesCore;
    }
    core->data = std::move(buffer);
    core->recycler = this;
    core->liveIndex = liveCores_.size();
    liveCores_.push_back(core);
    return util::SharedBytes::adopt(core);
}

void BufferPool::recycleShared(util::SharedBytesCore* core) noexcept {
    // Swap-remove from the live set; the moved entry keeps its slot id.
    const std::size_t index = core->liveIndex;
    liveCores_[index] = liveCores_.back();
    liveCores_[index]->liveIndex = index;
    liveCores_.pop_back();

    release(std::move(core->data));
    core->data = util::Bytes{};
    core->recycler = nullptr;
    if (freeCores_.size() < kMaxPooled)
        freeCores_.push_back(core);
    else
        delete core;
}

void BufferPool::syncCounters() noexcept {
    if (reuses_ != syncedReuses_) {
        reusedCounter_->inc(reuses_ - syncedReuses_);
        syncedReuses_ = reuses_;
    }
    if (allocations_ != syncedAllocations_) {
        allocatedCounter_->inc(allocations_ - syncedAllocations_);
        syncedAllocations_ = allocations_;
    }
}

util::Bytes BufferPool::acquire(util::ByteView data) {
    util::Bytes buffer = acquire(data.size());
    if (!data.empty()) std::memcpy(buffer.data(), data.data(), data.size());
    return buffer;
}

}  // namespace onelab::sim
