#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace onelab::sim {

class SimShard;

/// RAII scope installing a shard's observability bundle (registry,
/// tracer, log config, flight recorder, profiler) as the calling
/// thread's `instance()`s, restoring the previous set on destruction.
/// The group's worker threads install their shard's bundle for their
/// whole life; the driver thread uses this scope around construction
/// and barrier-time interactions so metric registrations land in the
/// registry of the shard that will later update them (single-writer:
/// ownership hands over at the barrier, never concurrently).
class ShardObsScope {
  public:
    explicit ShardObsScope(SimShard& shard);
    ~ShardObsScope();

    ShardObsScope(const ShardObsScope&) = delete;
    ShardObsScope& operator=(const ShardObsScope&) = delete;

  private:
    obs::Registry* previousRegistry_;
    obs::Tracer* previousTracer_;
    util::LogConfig* previousLog_;
    obs::FlightRecorder* previousFlight_;
    obs::Profiler* previousProfiler_;
};

/// One shard: a private Simulator plus a private observability bundle,
/// pinned to one worker thread by the owning ShardGroup. Everything a
/// shard's events touch — the event heap, the buffer pool, metric
/// cells, trace/flight rings — is confined to the shard, so the hot
/// path needs no locks; the only cross-shard traffic is timestamped
/// mailbox posts, and the only cross-thread access to shard state is
/// the driver's barrier-time work (ordered by the barrier mutex).
class SimShard {
  public:
    explicit SimShard(std::size_t index);

    SimShard(const SimShard&) = delete;
    SimShard& operator=(const SimShard&) = delete;

    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
    [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
    [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
    [[nodiscard]] util::LogConfig& logConfig() noexcept { return log_; }
    [[nodiscard]] obs::FlightRecorder& flightRecorder() noexcept { return flight_; }
    [[nodiscard]] obs::Profiler& profiler() noexcept { return profiler_; }

  private:
    friend class ShardObsScope;

    const std::size_t index_;
    obs::Registry registry_;
    obs::Tracer tracer_;
    util::LogConfig log_;
    obs::FlightRecorder flight_;
    obs::Profiler profiler_;
    // Built inside a ShardObsScope so the simulator's sim.events_* /
    // sim.pool.* counters register in (and its log/trace/flight clocks
    // attach to) this shard's bundle, not the driver's.
    std::unique_ptr<Simulator> sim_;
};

/// N shards advanced in lockstep windows under conservative lookahead
/// (the null-message discipline, in its windowed-barrier form): with
/// every cut edge carrying at least `lookahead` of latency, no shard
/// can receive a message earlier than G + lookahead, where G is the
/// earliest pending event anywhere. Each window therefore runs every
/// shard to W - 1ns for W = G + lookahead, then drains the mailboxes
/// at a barrier — every drained message is stamped >= W, so it is
/// always scheduled into its target's future.
///
/// Determinism: G is a property of the global event set, not of the
/// partition, so the window sequence — and with it the batch each
/// message is drained in — is identical for every shard count. Within
/// a batch, messages are merged by (when, portRank, seq), where
/// portRank is a partition-independent site identity; the target
/// simulator's FIFO tie-break then preserves that order. Same seed,
/// any N: same interleaving.
class ShardGroup {
  public:
    /// `lookahead` must be >= 1ns (throws std::invalid_argument
    /// otherwise); it must not exceed the latency of any cut edge —
    /// the per-mailbox late-delivery counters check this at runtime.
    ShardGroup(std::size_t shardCount, SimTime lookahead);
    ~ShardGroup();

    ShardGroup(const ShardGroup&) = delete;
    ShardGroup& operator=(const ShardGroup&) = delete;

    [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }
    [[nodiscard]] SimShard& shard(std::size_t index) noexcept { return *shards_[index]; }
    [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
    /// Group time: the horizon reached by the last runUntil() call.
    /// After every call all shard clocks equal now(), so barrier-time
    /// driver work observes one consistent clock.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Create a cut-edge mailbox delivering into `targetShard` and
    /// return the post function the source side captures. `portRank`
    /// must be partition-independent (derive it from the site index)
    /// and unique per mailbox: it breaks same-timestamp ties in the
    /// drain merge.
    [[nodiscard]] ShardPost makePort(std::size_t targetShard, std::string name,
                                     std::uint64_t portRank);

    /// Advance every shard to `target` (events exactly at `target`
    /// run, matching Simulator::runUntil). Must be called from the
    /// driver thread; shard state may be touched between calls.
    void runUntil(SimTime target);
    void runFor(SimTime duration) { runUntil(now_ + duration); }

    /// Drop all undelivered cross-shard mail (teardown: the targets
    /// are about to be destroyed). Returns the number dropped.
    std::size_t dropPendingMail();

    /// Stop the workers and drop undelivered mail. Idempotent (the
    /// destructor calls it too). Owners whose shard simulators carry
    /// events against external objects call this before destroying
    /// those objects; after shutdown only the accessors remain valid.
    void shutdown();

    [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
    [[nodiscard]] std::uint64_t mailPosted() const noexcept;
    [[nodiscard]] std::uint64_t mailDelivered() const noexcept;
    [[nodiscard]] std::uint64_t mailDropped() const noexcept;
    /// Messages drained with a timestamp already in their target's
    /// past — a lookahead violation. Always 0 unless a cut edge has
    /// less latency than `lookahead`.
    [[nodiscard]] std::uint64_t lateDeliveries() const noexcept { return late_; }

  private:
    struct Mailbox {
        std::size_t targetShard;
        std::unique_ptr<CrossShardMailbox> box;
    };

    void workerMain(std::size_t index);
    /// Run one window: every worker advances its shard to `until`.
    void runWindow(SimTime until);
    /// Deliver pending mail into the target simulators (barrier only).
    void drainMail();

    const SimTime lookahead_;
    bool shutdownDone_ = false;
    std::vector<std::unique_ptr<SimShard>> shards_;
    std::vector<Mailbox> mailboxes_;
    SimTime now_{0};
    std::uint64_t windows_ = 0;
    std::uint64_t late_ = 0;

    // Barrier: the driver publishes (windowEnd_, epoch_) and waits for
    // every worker's doneEpoch_ to catch up. Workers spin briefly then
    // sleep; sleepers_ tells the driver when a cv notify is needed.
    std::atomic<std::int64_t> windowEndNs_{0};
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> doneEpochs_;
    std::mutex wakeMutex_;
    std::condition_variable wakeCv_;
    // On hosts with fewer cores than threads (workers + driver), any
    // spinning steals the timeslice the other side needs to make
    // progress — a window then costs a scheduler round-robin (~ms)
    // instead of a wake (~µs). Both sides park immediately instead.
    bool oversubscribed_ = false;
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
};

}  // namespace onelab::sim
