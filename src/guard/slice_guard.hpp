#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "pl/vsys.hpp"
#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace onelab::guard {

/// Knobs for the per-slice vsys FIFO guard. The defaults are lenient
/// enough that every legitimate workload in the repo (supervisor
/// status polls, redial ladders, the umtsctl CLI) stays far under
/// budget — they exist to stop a flooder, not to meter honest use.
struct SliceFifoGuardConfig {
    bool enabled = true;
    /// Token-bucket refill rate, requests per simulated second.
    double ratePerSecond = 10.0;
    /// Bucket depth: bursts up to this many back-to-back requests.
    double burst = 30.0;
    /// Bounded backend queue: per-slice in-flight request cap.
    std::size_t maxInFlight = 8;
};

/// Pre-touch every `guard.*` metric family so telemetry exports are
/// byte-identical whether or not a guard ever fired. Covers the vsys
/// FIFO guard plus the guard counters owned by other layers (AT
/// engine, umts attach throttle, NAT churn guard, cell fairness
/// clamp, umtsctl stats ACL) which share the `guard.` prefix.
void registerGuardMetricFamilies();

/// Root-context admission control for one vsys script: a per-slice
/// deterministic (sim-time driven) token bucket plus a bounded
/// in-flight queue depth. Sits behind Vsys::setGuard; verdicts map to
/// EBUSY at the frontend, so a throttled flooder sees errors while
/// other slices' requests keep flowing.
class SliceFifoGuard final : public pl::VsysGuard {
  public:
    explicit SliceFifoGuard(sim::Simulator& simulator, SliceFifoGuardConfig config = {});

    [[nodiscard]] Verdict onRequest(const pl::Slice& caller, const std::string& scriptName,
                                    const std::vector<std::string>& args) override;
    void onComplete(const pl::Slice& caller, const std::string& scriptName) override;

    [[nodiscard]] const SliceFifoGuardConfig& config() const noexcept { return config_; }
    void setEnabled(bool enabled) noexcept { config_.enabled = enabled; }

    /// Current in-flight depth for one slice (tests / status).
    [[nodiscard]] std::size_t inFlight(const std::string& sliceName) const;
    /// Total requests this guard has throttled or bounced (tests).
    [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  private:
    struct SliceState {
        double tokens = 0.0;
        sim::SimTime lastRefill{0};
        std::size_t inFlight = 0;
        bool seeded = false;
    };

    SliceState& stateFor(const std::string& sliceName);
    void refill(SliceState& state);

    sim::Simulator& sim_;
    SliceFifoGuardConfig config_;
    std::map<std::string, SliceState> slices_;
    std::uint64_t rejected_ = 0;
    util::Logger log_{"guard.vsys"};

    // Aggregate families (not per-slice) so the exported metric set is
    // independent of which slices ever spoke to the FIFO.
    struct Metrics {
        obs::Counter& admitted;
        obs::Counter& throttled;
        obs::Counter& queueFull;
        obs::Gauge& inflight;
    };
    Metrics metrics_;
};

}  // namespace onelab::guard
