#include "guard/slice_guard.hpp"

#include <algorithm>

#include "sim/time.hpp"

namespace onelab::guard {

void registerGuardMetricFamilies() {
    auto& registry = obs::Registry::instance();
    static constexpr const char* kCounters[] = {
        // vsys FIFO guard (SliceFifoGuard).
        "guard.vsys.admitted",
        "guard.vsys.throttled",
        "guard.vsys.queue_full",
        // AT command hardening (modem::AtEngine).
        "guard.at.line_overflow",
        "guard.at.dial_rejected",
        "guard.at.escape_spam",
        // umtsctl backend (dial validation + stats ACL).
        "guard.umtsctl.dial_rejected",
        "guard.umtsctl.stats_denied",
        // Attach-storm admission throttle (umts::UmtsNetwork).
        "guard.umts.attach_throttled",
        "guard.umts.attach_delayed",
        // NAT / firewall churn guard (umts::UmtsNetwork).
        "guard.nat.expired",
        "guard.nat.evicted",
        "guard.nat.quota_denied",
        "guard.firewall.evicted",
        "guard.firewall.quota_denied",
        // Cell fairness clamp (umts::CellCapacity + RNC-side reclaim
        // of idle over-share grants in RadioBearer).
        "guard.cell.fairness_denials",
        "guard.cell.reclaims",
    };
    for (const char* name : kCounters) (void)registry.counter(name);
    (void)registry.gauge("guard.vsys.inflight");
}

SliceFifoGuard::SliceFifoGuard(sim::Simulator& simulator, SliceFifoGuardConfig config)
    : sim_(simulator),
      config_(config),
      metrics_{obs::Registry::instance().counter("guard.vsys.admitted"),
               obs::Registry::instance().counter("guard.vsys.throttled"),
               obs::Registry::instance().counter("guard.vsys.queue_full"),
               obs::Registry::instance().gauge("guard.vsys.inflight")} {
    // Pre-register the full guard.* family set so telemetry exports
    // carry zeros for quiet guards (same-seed byte identity).
    registerGuardMetricFamilies();
}

SliceFifoGuard::SliceState& SliceFifoGuard::stateFor(const std::string& sliceName) {
    SliceState& state = slices_[sliceName];
    if (!state.seeded) {
        state.tokens = config_.burst;
        state.lastRefill = sim_.now();
        state.seeded = true;
    }
    return state;
}

void SliceFifoGuard::refill(SliceState& state) {
    const sim::SimTime now = sim_.now();
    if (now <= state.lastRefill) return;
    const double elapsed = sim::toSeconds(now - state.lastRefill);
    state.tokens = std::min(config_.burst, state.tokens + elapsed * config_.ratePerSecond);
    state.lastRefill = now;
}

pl::VsysGuard::Verdict SliceFifoGuard::onRequest(const pl::Slice& caller,
                                                const std::string& scriptName,
                                                const std::vector<std::string>& args) {
    (void)args;
    if (!config_.enabled) {
        metrics_.admitted.inc();
        return Verdict::admit;
    }
    SliceState& state = stateFor(caller.name);
    refill(state);
    if (state.inFlight >= config_.maxInFlight) {
        ++rejected_;
        metrics_.queueFull.inc();
        log_.debug() << "queue full for slice '" << caller.name << "' on " << scriptName
                     << " (" << state.inFlight << " in flight)";
        return Verdict::queue_full;
    }
    if (state.tokens < 1.0) {
        ++rejected_;
        metrics_.throttled.inc();
        log_.debug() << "throttled slice '" << caller.name << "' on " << scriptName;
        return Verdict::throttled;
    }
    state.tokens -= 1.0;
    ++state.inFlight;
    metrics_.admitted.inc();
    metrics_.inflight.add(1);
    return Verdict::admit;
}

void SliceFifoGuard::onComplete(const pl::Slice& caller, const std::string& scriptName) {
    (void)scriptName;
    // Completion can outlive a disable toggle; always release depth.
    const auto it = slices_.find(caller.name);
    if (it == slices_.end() || it->second.inFlight == 0) return;
    --it->second.inFlight;
    metrics_.inflight.add(-1);
}

std::size_t SliceFifoGuard::inFlight(const std::string& sliceName) const {
    const auto it = slices_.find(sliceName);
    return it != slices_.end() ? it->second.inFlight : 0;
}

}  // namespace onelab::guard
