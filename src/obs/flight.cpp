#include "obs/flight.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "obs/registry.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace onelab::obs {

namespace {

thread_local FlightRecorder* currentRecorder = nullptr;

/// Crash-dump target: the last recorder that was given a dump path.
/// Plain atomic pointer — the handler can only make a best-effort
/// attempt anyway, and the target outlives any run that set it.
std::atomic<FlightRecorder*> crashTarget{nullptr};

void copyTruncated(char* out, std::size_t capacity, std::string_view text) noexcept {
    const std::size_t n = std::min(text.size(), capacity - 1);
    std::memcpy(out, text.data(), n);
    out[n] = '\0';
}

}  // namespace

const char* flightKindName(FlightKind kind) noexcept {
    switch (kind) {
        case FlightKind::log: return "log";
        case FlightKind::span_begin: return "span_begin";
        case FlightKind::span_end: return "span_end";
        case FlightKind::event: return "event";
        case FlightKind::transition: return "transition";
        case FlightKind::metric: return "metric";
    }
    return "event";
}

FlightRecorder& FlightRecorder::instance() {
    if (currentRecorder) return *currentRecorder;
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder* FlightRecorder::setCurrent(FlightRecorder* recorder) noexcept {
    FlightRecorder* previous = currentRecorder;
    currentRecorder = recorder;
    return previous;
}

FlightRecorder* FlightRecorder::currentIfEnabled() noexcept {
    FlightRecorder& recorder = instance();
    return recorder.enabled_ ? &recorder : nullptr;
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
    ring_.resize(std::max<std::size_t>(capacity, 1));
}

FlightRecorder::~FlightRecorder() {
    FlightRecorder* self = this;
    crashTarget.compare_exchange_strong(self, nullptr);
    if (currentRecorder == this) currentRecorder = nullptr;
}

void FlightRecorder::setDumpPath(std::string path) {
    dumpPath_ = std::move(path);
    dumped_ = false;
    if (!dumpPath_.empty()) crashTarget.store(this);
}

void FlightRecorder::note(FlightKind kind, std::string_view category,
                          std::string_view name, std::string_view detail,
                          std::int64_t value) noexcept {
    if (!enabled_) return;
    FlightEntry& entry = ring_[head_];
    entry.kind = kind;
    entry.timeNs = clock_ ? clock_() : 0;
    entry.value = value;
    copyTruncated(entry.category, FlightEntry::kCategoryBytes, category);
    copyTruncated(entry.name, FlightEntry::kNameBytes, name);
    copyTruncated(entry.detail, FlightEntry::kDetailBytes, detail);
    head_ = (head_ + 1) % ring_.size();
    ++recorded_;
    if (size_ < ring_.size())
        ++size_;
    else
        ++dropped_;
}

std::vector<FlightEntry> FlightRecorder::entries() const {
    std::vector<FlightEntry> out;
    out.reserve(size_);
    // Oldest entry sits at head_ once the ring has wrapped, else at 0.
    const std::size_t start = size_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void FlightRecorder::clear() noexcept {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    recorded_ = 0;
    dumps_ = 0;
    dumpFailures_ = 0;
    dumped_ = false;
}

std::string FlightRecorder::exportJson(std::string_view reason) const {
    std::string out = "{\"reason\":";
    util::appendJsonQuoted(out, reason);
    out += ",\"dropped\":" + std::to_string(dropped_);
    out += ",\"entries\":[";
    const std::size_t start = size_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
        const FlightEntry& entry = ring_[(start + i) % ring_.size()];
        if (i) out += ',';
        out += "{\"kind\":\"";
        out += flightKindName(entry.kind);
        out += "\",\"t_ns\":" + std::to_string(entry.timeNs);
        out += ",\"cat\":";
        util::appendJsonQuoted(out, entry.categoryView());
        out += ",\"name\":";
        util::appendJsonQuoted(out, entry.nameView());
        if (entry.detail[0] != '\0') {
            out += ",\"detail\":";
            util::appendJsonQuoted(out, entry.detailView());
        }
        if (entry.value != 0) out += ",\"value\":" + std::to_string(entry.value);
        out += '}';
    }
    out += "]}\n";
    return out;
}

util::Result<void> FlightRecorder::dump(std::string_view reason, const std::string& path) {
    const std::filesystem::path target{path};
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    const std::string text = exportJson(reason);
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file) {
        ++dumpFailures_;
        return util::Error{util::Error::Code::io, "cannot write " + path};
    }
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    if (written != text.size()) {
        ++dumpFailures_;
        return util::Error{util::Error::Code::io, "short write to " + path};
    }
    ++dumps_;
    return util::Result<void>{};
}

void FlightRecorder::requestDump(std::string_view reason) noexcept {
    if (dumpPath_.empty() || dumped_) return;
    dumped_ = true;
    try {
        (void)dump(reason, dumpPath_);
    } catch (...) {
        ++dumpFailures_;  // best effort: a post-mortem must not throw
    }
}

void FlightRecorder::syncMetrics(Registry& registry) const {
    const auto syncCounter = [&registry](const char* name, std::uint64_t target) {
        Counter& counter = registry.counter(name);
        if (target > counter.value()) counter.inc(target - counter.value());
    };
    syncCounter("recorder.entries", recorded_);
    syncCounter("recorder.dropped", dropped_);
    syncCounter("recorder.dumps", dumps_);
    syncCounter("recorder.dump_failures", dumpFailures_);
    registry.gauge("recorder.buffered").set(std::int64_t(size_));
}

void registerFlightAndProfileMetricFamilies(Registry& registry) {
    for (const char* name : {"recorder.entries", "recorder.dropped", "recorder.dumps",
                             "recorder.dump_failures", "profile.exports",
                             "profile.scopes_dropped"})
        (void)registry.counter(name);
    (void)registry.gauge("recorder.buffered");
    (void)registry.gauge("profile.enabled");
}

// ------------------------------------------------------- crash dumps

namespace {

void crashHandler(int signal) {
    // Best effort, knowingly not async-signal-pure: the process is
    // already dying and the alternative is losing the black box. The
    // ring itself is preallocated, so the only allocation risk is the
    // JSON string.
    if (FlightRecorder* recorder = crashTarget.load()) {
        std::string reason = "fatal signal ";
        reason += std::to_string(signal);
        (void)recorder->dump(reason, recorder->dumpPath());
    }
    std::signal(signal, SIG_DFL);
    std::raise(signal);
}

}  // namespace

void installCrashDump() {
    static std::once_flag once;
    std::call_once(once, [] {
        for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGBUS, SIGILL})
            std::signal(sig, crashHandler);
    });
}

void installLogForwarding() {
    static std::once_flag once;
    std::call_once(once, [] {
        util::LogConfig::setForwarder(
            [](util::LogLevel level, std::string_view component,
               std::string_view message) {
                if (FlightRecorder* recorder = FlightRecorder::currentIfEnabled())
                    recorder->note(FlightKind::log, util::logLevelName(level),
                                   component, message);
            });
    });
}

}  // namespace onelab::obs
