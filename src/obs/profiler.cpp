#include "obs/profiler.hpp"

#include <chrono>

#include "obs/registry.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace onelab::obs {

namespace {

thread_local Profiler* currentProfiler = nullptr;

constexpr const char* kCategoryNames[kProfileCategoryCount] = {
    "sim.run",  "sim.event", "ppp.hdlc_encode", "ppp.hdlc_decode", "ppp.fcs16",
    "umts.rlc_queue", "sim.pipe", "ppp.pppd", "supervise", "obs.export",
    "ditg.decode", "scenario.harness",
};

std::int64_t steadyNowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

const char* profileCategoryName(ProfileCategory category) noexcept {
    const auto index = std::size_t(category);
    return index < kProfileCategoryCount ? kCategoryNames[index] : "unknown";
}

Profiler& Profiler::instance() {
    if (currentProfiler) return *currentProfiler;
    static Profiler profiler;
    return profiler;
}

Profiler* Profiler::setCurrent(Profiler* profiler) noexcept {
    Profiler* previous = currentProfiler;
    currentProfiler = profiler;
    return previous;
}

Profiler* Profiler::currentIfEnabled() noexcept {
    Profiler& profiler = instance();
    return profiler.enabled_ ? &profiler : nullptr;
}

std::int64_t Profiler::clockNowNs() const {
    return clock_ ? clock_() : steadyNowNs();
}

void Profiler::setEnabled(bool enabled) noexcept {
    enabled_ = enabled;
    if (!enabled) return;
    reset();
}

void Profiler::reset() noexcept {
    for (auto& total : totals_) total = {};
    depth_ = 0;
    overflowDepth_ = 0;
    dropped_ = 0;
    exports_ = 0;
    enabledAtNs_ = clockNowNs();
}

void Profiler::enter(ProfileCategory category) noexcept {
    if (depth_ >= kMaxDepth) {
        ++overflowDepth_;
        ++dropped_;
        return;
    }
    Open& open = stack_[depth_++];
    open.category = category;
    open.childNs = 0;
    open.startNs = clockNowNs();
}

void Profiler::leave() noexcept {
    if (overflowDepth_ > 0) {
        --overflowDepth_;
        return;
    }
    if (depth_ == 0) return;  // unbalanced leave; ignore
    const Open& open = stack_[--depth_];
    const std::int64_t total = clockNowNs() - open.startNs;
    CategoryTotal& bucket = totals_[std::size_t(open.category)];
    ++bucket.count;
    bucket.selfNs += total - open.childNs;
    if (depth_ > 0) stack_[depth_ - 1].childNs += total;
}

double Profiler::attributedFraction() const {
    const std::int64_t window = clockNowNs() - enabledAtNs_;
    if (window <= 0) return 0.0;
    std::int64_t tracked = 0;
    for (const auto& total : totals_) tracked += total.selfNs;
    return double(tracked) / double(window);
}

std::string Profiler::exportJson() const {
    const std::int64_t window = enabled_ ? clockNowNs() - enabledAtNs_ : 0;
    std::int64_t tracked = 0;
    for (const auto& total : totals_) tracked += total.selfNs;

    std::string out = "{\"enabled\":";
    out += enabled_ ? "true" : "false";
    out += ",\"window_ns\":" + std::to_string(window);
    out += ",\"attributed_ns\":" + std::to_string(tracked);
    out += ",\"attributed_fraction\":";
    out += util::format(
        "%.6f", window > 0 ? double(tracked) / double(window) : 0.0);
    out += ",\"dropped_scopes\":" + std::to_string(dropped_);
    out += ",\"categories\":[";
    for (std::size_t i = 0; i < kProfileCategoryCount; ++i) {
        if (i) out += ',';
        out += "{\"name\":\"";
        out += kCategoryNames[i];
        out += "\",\"count\":" + std::to_string(totals_[i].count);
        out += ",\"self_ns\":" + std::to_string(totals_[i].selfNs);
        out += ",\"fraction\":";
        out += util::format(
            "%.6f", tracked > 0 ? double(totals_[i].selfNs) / double(tracked) : 0.0);
        out += '}';
    }
    out += "]}\n";
    ++exports_;
    return out;
}

void Profiler::syncMetrics(Registry& registry) const {
    const auto syncCounter = [&registry](const char* name, std::uint64_t target) {
        Counter& counter = registry.counter(name);
        if (target > counter.value()) counter.inc(target - counter.value());
    };
    syncCounter("profile.exports", exports_);
    syncCounter("profile.scopes_dropped", dropped_);
    registry.gauge("profile.enabled").set(enabled_ ? 1 : 0);
}

}  // namespace onelab::obs
