#include "obs/query.hpp"

#include <algorithm>
#include <map>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace onelab::obs::query {

namespace {

using util::JsonValue;

bool containsSubstr(const std::string& haystack, const std::string& needle) {
    return needle.empty() || haystack.find(needle) != std::string::npos;
}

/// The IMSI filter matches identity wherever a layer put it.
bool matchesImsi(const std::string& imsi, const std::string& category,
                 const std::string& name, const std::string& detail) {
    return imsi.empty() || containsSubstr(category, imsi) ||
           containsSubstr(name, imsi) || containsSubstr(detail, imsi);
}

std::string traceDetail(const JsonValue& event) {
    const JsonValue* args = event.find("args");
    return args ? args->stringOr("detail", "") : "";
}

template <typename Row>
void applyTail(std::vector<Row>& rows, std::size_t tail) {
    if (tail > 0 && rows.size() > tail)
        rows.erase(rows.begin(), rows.end() - long(tail));
}

std::string metricValue(const JsonValue& metric) {
    const std::string type = metric.stringOr("type", "");
    if (type == "histogram") {
        std::string out = "count=";
        out += util::format("%.0f", metric.numberOr("count", 0.0));
        out += " sum=" + util::format("%.6f", metric.numberOr("sum", 0.0));
        return out;
    }
    return util::format("%.0f", metric.numberOr("value", 0.0));
}

}  // namespace

std::string formatTrace(const JsonValue& doc, const Filter& filter) {
    const JsonValue* events = doc.find("traceEvents");
    if (!events || !events->isArray()) return "error: not a trace.json document\n";

    std::vector<std::vector<std::string>> rows;
    for (const JsonValue& event : events->array()) {
        const std::string category = event.stringOr("cat", "");
        const std::string name = event.stringOr("name", "");
        const std::string detail = traceDetail(event);
        const double tSeconds = event.numberOr("ts", 0.0) / 1e6;
        if (!containsSubstr(category, filter.category)) continue;
        if (!containsSubstr(name, filter.name)) continue;
        if (!matchesImsi(filter.imsi, category, name, detail)) continue;
        if (filter.fromSeconds && tSeconds < *filter.fromSeconds) continue;
        if (filter.toSeconds && tSeconds > *filter.toSeconds) continue;
        rows.push_back({util::format("%.3f", tSeconds * 1e3),
                        event.stringOr("ph", "?"),
                        util::format("%.0f", event.numberOr("tid", 0.0)), category, name,
                        detail});
        if (filter.limit > 0 && filter.tail == 0 && rows.size() >= filter.limit) break;
    }
    applyTail(rows, filter.tail);

    util::Table table({"t_ms", "ph", "tid", "category", "name", "detail"});
    for (auto& row : rows) table.addRow(std::move(row));
    return table.render() + util::format("%zu event(s)\n", table.rowCount());
}

std::string formatFlight(const JsonValue& doc, const Filter& filter) {
    const JsonValue* entries = doc.find("entries");
    if (!entries || !entries->isArray()) return "error: not a flight.json dump\n";

    std::vector<std::vector<std::string>> rows;
    for (const JsonValue& entry : entries->array()) {
        const std::string kind = entry.stringOr("kind", "");
        const std::string category = entry.stringOr("cat", "");
        const std::string name = entry.stringOr("name", "");
        const std::string detail = entry.stringOr("detail", "");
        const double tSeconds = entry.numberOr("t_ns", 0.0) / 1e9;
        if (!containsSubstr(kind, filter.kind)) continue;
        if (!containsSubstr(name, filter.name)) continue;
        if (!containsSubstr(category, filter.category)) continue;
        if (!matchesImsi(filter.imsi, category, name, detail)) continue;
        if (filter.fromSeconds && tSeconds < *filter.fromSeconds) continue;
        if (filter.toSeconds && tSeconds > *filter.toSeconds) continue;
        const double value = entry.numberOr("value", 0.0);
        rows.push_back({util::format("%.3f", tSeconds * 1e3), kind, category, name, detail,
                        value == 0.0 ? "" : util::format("%.0f", value)});
    }
    applyTail(rows, filter.tail);

    util::Table table({"t_ms", "kind", "category", "name", "detail", "value"});
    for (auto& row : rows) table.addRow(std::move(row));
    std::string out = table.render();
    out += util::format("%zu entry(ies), %.0f overwritten before the dump\n",
                        table.rowCount(), doc.numberOr("dropped", 0.0));
    const std::string reason = doc.stringOr("reason", "");
    if (!reason.empty()) out += "dump reason: " + reason + "\n";
    return out;
}

std::string formatMetrics(const JsonValue& doc, const Filter& filter) {
    const JsonValue* metrics = doc.find("metrics");
    if (!metrics || !metrics->isArray()) return "error: not a metrics.json snapshot\n";

    util::Table table({"metric", "type", "value"});
    for (const JsonValue& metric : metrics->array()) {
        const std::string name = metric.stringOr("name", "");
        if (!filter.name.empty() && !util::startsWith(name, filter.name)) continue;
        if (!matchesImsi(filter.imsi, name, name, "")) continue;
        table.addRow({name, metric.stringOr("type", "?"), metricValue(metric)});
        if (filter.limit > 0 && table.rowCount() >= filter.limit) break;
    }
    return table.render() + util::format("%zu metric(s)\n", table.rowCount());
}

std::string formatTopSelf(const JsonValue& doc, std::size_t topN) {
    struct Bucket {
        std::uint64_t count = 0;
        double selfUs = 0.0;
    };
    std::map<std::string, Bucket> buckets;

    if (const JsonValue* categories = doc.find("categories");
        categories && categories->isArray()) {
        // profile.json: categories carry self_ns directly.
        for (const JsonValue& category : categories->array()) {
            Bucket& bucket = buckets[category.stringOr("name", "?")];
            bucket.count += std::uint64_t(category.numberOr("count", 0.0));
            bucket.selfUs += category.numberOr("self_ns", 0.0) / 1e3;
        }
    } else if (const JsonValue* events = doc.find("traceEvents");
               events && events->isArray()) {
        // trace.json: recover self-time from span nesting, per tid.
        struct Open {
            std::string key;
            double startUs = 0.0;
            double childUs = 0.0;
        };
        std::map<int, std::vector<Open>> stacks;
        for (const JsonValue& event : events->array()) {
            const std::string ph = event.stringOr("ph", "");
            const int tid = int(event.numberOr("tid", 0.0));
            const double ts = event.numberOr("ts", 0.0);
            const std::string key =
                event.stringOr("cat", "?") + "." + event.stringOr("name", "?");
            auto& stack = stacks[tid];
            if (ph == "B") {
                stack.push_back({key, ts, 0.0});
            } else if (ph == "E" && !stack.empty()) {
                const Open open = stack.back();
                stack.pop_back();
                const double total = ts - open.startUs;
                Bucket& bucket = buckets[open.key];
                ++bucket.count;
                bucket.selfUs += total - open.childUs;
                if (!stack.empty()) stack.back().childUs += total;
            } else if (ph == "i") {
                ++buckets[key].count;
            }
        }
    } else {
        return "error: need a profile.json or trace.json document\n";
    }

    std::vector<std::pair<std::string, Bucket>> sorted{buckets.begin(), buckets.end()};
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        if (a.second.selfUs != b.second.selfUs) return a.second.selfUs > b.second.selfUs;
        return a.first < b.first;
    });
    if (topN > 0 && sorted.size() > topN) sorted.resize(topN);

    double totalUs = 0.0;
    for (const auto& [key, bucket] : buckets) totalUs += bucket.selfUs;

    util::Table table({"category", "count", "self_ms", "share"});
    for (const auto& [key, bucket] : sorted)
        table.addRow({key, std::to_string(bucket.count),
                      util::format("%.3f", bucket.selfUs / 1e3),
                      util::format("%.1f%%", totalUs > 0.0
                                                 ? 100.0 * bucket.selfUs / totalUs
                                                 : 0.0)});
    return table.render() +
           util::format("total self time %.3f ms across %zu categories\n", totalUs / 1e3,
                        buckets.size());
}

namespace {

std::map<std::string, std::string> metricsByName(const JsonValue* doc) {
    std::map<std::string, std::string> out;
    if (!doc) return out;
    const JsonValue* metrics = doc->find("metrics");
    if (!metrics || !metrics->isArray()) return out;
    for (const JsonValue& metric : metrics->array())
        out[metric.stringOr("name", "?")] = metricValue(metric);
    return out;
}

std::string traceEventKey(const JsonValue& event) {
    return event.stringOr("ph", "?") + " " + event.stringOr("cat", "?") + "." +
           event.stringOr("name", "?") + " @" +
           util::format("%.3f", event.numberOr("ts", 0.0));
}

}  // namespace

std::string formatDiff(const JsonValue* traceA, const JsonValue* traceB,
                       const JsonValue* metricsA, const JsonValue* metricsB) {
    std::string out;

    if (traceA && traceB) {
        const JsonValue* eventsA = traceA->find("traceEvents");
        const JsonValue* eventsB = traceB->find("traceEvents");
        if (eventsA && eventsA->isArray() && eventsB && eventsB->isArray()) {
            const auto& a = eventsA->array();
            const auto& b = eventsB->array();
            // Per-category counts side by side.
            std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> counts;
            for (const JsonValue& event : a) ++counts[event.stringOr("cat", "?")].first;
            for (const JsonValue& event : b) ++counts[event.stringOr("cat", "?")].second;
            util::Table table({"category", "run A", "run B", "delta"});
            for (const auto& [category, pair] : counts) {
                const auto [countA, countB] = pair;
                if (countA == countB) continue;
                table.addRow({category, std::to_string(countA), std::to_string(countB),
                              util::format("%+lld", static_cast<long long>(countB) -
                                                        static_cast<long long>(countA))});
            }
            out += "trace timeline: " + std::to_string(a.size()) + " vs " +
                   std::to_string(b.size()) + " events\n";
            if (table.rowCount() > 0)
                out += table.render();
            else
                out += "per-category counts identical\n";
            // First diverging event.
            const std::size_t shared = std::min(a.size(), b.size());
            std::size_t divergence = shared;
            for (std::size_t i = 0; i < shared; ++i) {
                if (traceEventKey(a[i]) != traceEventKey(b[i])) {
                    divergence = i;
                    break;
                }
            }
            if (divergence < shared)
                out += "first divergence at event " + std::to_string(divergence) +
                       ":\n  A: " + traceEventKey(a[divergence]) +
                       "\n  B: " + traceEventKey(b[divergence]) + "\n";
            else if (a.size() != b.size())
                out += "timelines identical until the shorter run ends at event " +
                       std::to_string(shared) + "\n";
            else
                out += "timelines identical\n";
        }
    }

    const auto byNameA = metricsByName(metricsA);
    const auto byNameB = metricsByName(metricsB);
    if (!byNameA.empty() || !byNameB.empty()) {
        util::Table table({"metric", "run A", "run B"});
        for (const auto& [name, valueA] : byNameA) {
            const auto it = byNameB.find(name);
            const std::string valueB = it == byNameB.end() ? "(absent)" : it->second;
            if (valueB != valueA) table.addRow({name, valueA, valueB});
        }
        for (const auto& [name, valueB] : byNameB)
            if (!byNameA.count(name)) table.addRow({name, "(absent)", valueB});
        out += "metrics: " + std::to_string(table.rowCount()) + " differ\n";
        if (table.rowCount() > 0) out += table.render();
    }

    if (out.empty()) out = "nothing to diff (no readable documents)\n";
    return out;
}

std::string mergeTraces(const std::vector<JsonValue>& docs) {
    JsonValue merged = JsonValue::makeObject();
    JsonValue events = JsonValue::makeArray();
    for (std::size_t lane = 0; lane < docs.size(); ++lane) {
        const JsonValue* input = docs[lane].find("traceEvents");
        if (!input || !input->isArray()) continue;
        for (const JsonValue& event : input->array()) {
            JsonValue copy = event;
            copy.set("tid", JsonValue::makeNumber(double(lane + 1)));
            events.append(std::move(copy));
        }
    }
    merged.set("traceEvents", std::move(events));
    return merged.serialize() + "\n";
}

namespace {

/// Phase rank mirroring the fleet exporter's tie-break: a span begin
/// sorts before an instant before an end at the same timestamp.
int phaseRank(const std::string& ph) {
    if (ph == "B") return 0;
    if (ph == "E") return 2;
    return 1;
}

}  // namespace

std::string mergeTracesStable(const std::vector<JsonValue>& docs) {
    std::vector<JsonValue> events;
    for (const JsonValue& doc : docs) {
        const JsonValue* input = doc.find("traceEvents");
        if (!input || !input->isArray()) continue;
        for (const JsonValue& event : input->array()) {
            JsonValue copy = event;
            copy.set("tid", JsonValue::makeNumber(1.0));
            events.push_back(std::move(copy));
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const JsonValue& a, const JsonValue& b) {
                         const double tsA = a.numberOr("ts", 0.0);
                         const double tsB = b.numberOr("ts", 0.0);
                         if (tsA != tsB) return tsA < tsB;
                         const std::string catA = a.stringOr("cat", "");
                         const std::string catB = b.stringOr("cat", "");
                         if (catA != catB) return catA < catB;
                         const std::string nameA = a.stringOr("name", "");
                         const std::string nameB = b.stringOr("name", "");
                         if (nameA != nameB) return nameA < nameB;
                         const int phA = phaseRank(a.stringOr("ph", "i"));
                         const int phB = phaseRank(b.stringOr("ph", "i"));
                         if (phA != phB) return phA < phB;
                         return traceDetail(a) < traceDetail(b);
                     });
    JsonValue merged = JsonValue::makeObject();
    JsonValue out = JsonValue::makeArray();
    for (JsonValue& event : events) out.append(std::move(event));
    merged.set("traceEvents", std::move(out));
    return merged.serialize() + "\n";
}

std::string mergeFlights(const std::vector<JsonValue>& docs) {
    std::vector<JsonValue> entries;
    double dropped = 0.0;
    for (const JsonValue& doc : docs) {
        dropped += doc.numberOr("dropped", 0.0);
        const JsonValue* input = doc.find("entries");
        if (!input || !input->isArray()) continue;
        for (const JsonValue& entry : input->array()) entries.push_back(entry);
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const JsonValue& a, const JsonValue& b) {
                         const double tA = a.numberOr("t_ns", 0.0);
                         const double tB = b.numberOr("t_ns", 0.0);
                         if (tA != tB) return tA < tB;
                         const std::string catA = a.stringOr("cat", "");
                         const std::string catB = b.stringOr("cat", "");
                         if (catA != catB) return catA < catB;
                         const std::string nameA = a.stringOr("name", "");
                         const std::string nameB = b.stringOr("name", "");
                         if (nameA != nameB) return nameA < nameB;
                         const std::string kindA = a.stringOr("kind", "");
                         const std::string kindB = b.stringOr("kind", "");
                         if (kindA != kindB) return kindA < kindB;
                         return a.stringOr("detail", "") < b.stringOr("detail", "");
                     });
    JsonValue merged = JsonValue::makeObject();
    merged.set("reason", JsonValue::makeString(
                             "merge of " + std::to_string(docs.size()) + " fragment(s)"));
    merged.set("dropped", JsonValue::makeNumber(dropped));
    JsonValue out = JsonValue::makeArray();
    for (JsonValue& entry : entries) out.append(std::move(entry));
    merged.set("entries", std::move(out));
    return merged.serialize() + "\n";
}

std::string selfCheck() {
    const char* kTrace =
        R"json({"traceEvents":[
            {"name":"incident","cat":"supervise","ph":"B","ts":1000.0,"pid":1,"tid":1},
            {"name":"redial","cat":"supervise","ph":"i","ts":1500.0,"pid":1,"tid":1,
             "args":{"detail":"attempt 1"}},
            {"name":"incident","cat":"supervise","ph":"E","ts":4000.0,"pid":1,"tid":1},
            {"name":"grant_wait","cat":"umts.bearer","ph":"B","ts":5000.0,"pid":1,"tid":1},
            {"name":"grant_wait","cat":"umts.bearer","ph":"E","ts":5600.0,"pid":1,"tid":1}
        ]})json";
    const char* kFlight =
        R"json({"reason":"self-check","dropped":2,"entries":[
            {"kind":"transition","t_ns":1000000,"cat":"supervise","name":"208930000000001",
             "detail":"healthy -> recovering"},
            {"kind":"event","t_ns":2000000,"cat":"fault","name":"coverage_outage","value":1},
            {"kind":"log","t_ns":3000000,"cat":"log","name":"supervise.208930000000001",
             "detail":"ladder: redial (attempt 1/6)"}
        ]})json";
    const char* kMetrics =
        R"json({"metrics":[
            {"name":"supervise.incidents","type":"counter","value":3},
            {"name":"umts.bearer.208930000000001.ul.chunks_in","type":"counter","value":42},
            {"name":"supervise.recovery_latency_seconds","type":"histogram","count":2,
             "sum":12.5,"buckets":[{"le":0.25,"count":0},{"le":"inf","count":2}]}
        ]})json";
    const char* kProfile =
        R"json({"enabled":true,"window_ns":1000000,"attributed_ns":990000,
            "attributed_fraction":0.99,"dropped_scopes":0,"categories":[
            {"name":"sim.run","count":1,"self_ns":400000,"fraction":0.40},
            {"name":"sim.pipe","count":10,"self_ns":590000,"fraction":0.59}]})json";

    const auto expect = [](const std::string& what, const std::string& haystack,
                           const std::string& needle) -> std::string {
        if (haystack.find(needle) != std::string::npos) return {};
        return what + ": missing \"" + needle + "\" in output:\n" + haystack;
    };

    const auto trace = util::JsonValue::parse(kTrace);
    const auto flight = util::JsonValue::parse(kFlight);
    const auto metrics = util::JsonValue::parse(kMetrics);
    const auto profile = util::JsonValue::parse(kProfile);
    if (!trace.ok()) return "trace sample: " + trace.error().message;
    if (!flight.ok()) return "flight sample: " + flight.error().message;
    if (!metrics.ok()) return "metrics sample: " + metrics.error().message;
    if (!profile.ok()) return "profile sample: " + profile.error().message;

    Filter all;
    std::string problem;
    if (!(problem = expect("trace", formatTrace(trace.value(), all), "redial")).empty())
        return problem;
    Filter imsi;
    imsi.imsi = "208930000000001";
    const std::string flightOut = formatFlight(flight.value(), imsi);
    if (!(problem = expect("flight imsi filter", flightOut, "healthy -> recovering"))
             .empty())
        return problem;
    if (flightOut.find("coverage_outage") != std::string::npos)
        return "flight imsi filter kept an unrelated entry:\n" + flightOut;
    if (!(problem = expect("metrics", formatMetrics(metrics.value(), all),
                           "supervise.incidents"))
             .empty())
        return problem;
    if (!(problem = expect("top(profile)", formatTopSelf(profile.value(), 5), "sim.pipe"))
             .empty())
        return problem;
    if (!(problem =
              expect("top(trace)", formatTopSelf(trace.value(), 5), "supervise.incident"))
             .empty())
        return problem;
    if (!(problem = expect("diff", formatDiff(&trace.value(), &trace.value(),
                                              &metrics.value(), &metrics.value()),
                           "timelines identical"))
             .empty())
        return problem;
    const auto mergedDoc = util::JsonValue::parse(
        mergeTraces({trace.value(), trace.value()}));
    if (!mergedDoc.ok()) return "merge round-trip: " + mergedDoc.error().message;
    const util::JsonValue* mergedEvents = mergedDoc.value().find("traceEvents");
    if (!mergedEvents || mergedEvents->array().size() != 10)
        return "merge: expected 10 events across 2 lanes";
    return {};
}

}  // namespace onelab::obs::query
