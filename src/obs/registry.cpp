#include "obs/registry.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace onelab::obs {

const char* metricKindName(MetricKind kind) noexcept {
    switch (kind) {
        case MetricKind::counter: return "counter";
        case MetricKind::gauge: return "gauge";
        case MetricKind::histogram: return "histogram";
    }
    return "?";
}

Histogram::Histogram(HistogramSpec spec)
    : spec_(spec), counts_(spec.buckets + 1) {
    bounds_.reserve(spec_.buckets);
    double bound = spec_.firstBound;
    for (std::size_t i = 0; i < spec_.buckets; ++i) {
        bounds_.push_back(bound);
        bound *= spec_.growth;
    }
}

void Histogram::observe(double value) noexcept {
    // Buckets are few (log-scale); a linear scan beats binary search
    // on the short arrays in practice and stays branch-predictable.
    std::size_t index = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            index = i;
            break;
        }
    }
    counts_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumScaled_.fetch_add(std::llround(value * kSumScale), std::memory_order_relaxed);
}

double Histogram::bucketBound(std::size_t index) const noexcept {
    if (index >= bounds_.size()) return std::numeric_limits<double>::infinity();
    return bounds_[index];
}

void Histogram::reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumScaled_.store(0, std::memory_order_relaxed);
}

NameLease::NameLease(Registry& registry, std::string prefix)
    : registry_(&registry), prefix_(std::move(prefix)) {
    registry_->claimName(prefix_);
}

NameLease::~NameLease() { release(); }

NameLease::NameLease(NameLease&& other) noexcept
    : registry_(other.registry_), prefix_(std::move(other.prefix_)) {
    other.registry_ = nullptr;
}

NameLease& NameLease::operator=(NameLease&& other) noexcept {
    if (this != &other) {
        release();
        registry_ = other.registry_;
        prefix_ = std::move(other.prefix_);
        other.registry_ = nullptr;
    }
    return *this;
}

void NameLease::release() noexcept {
    if (registry_) registry_->releaseName(prefix_);
    registry_ = nullptr;
}

void Registry::claimName(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!leasedPrefixes_.insert(prefix).second)
        throw std::logic_error("metric name prefix '" + prefix +
                               "' already claimed by a live instance");
}

void Registry::releaseName(const std::string& prefix) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    leasedPrefixes_.erase(prefix);
}

namespace {
/// Thread-local instance() override (see Registry::setCurrent).
thread_local Registry* currentRegistry = nullptr;
std::atomic<std::uint64_t> nextRegistryId{1};
}  // namespace

Registry::Registry() : id_(nextRegistryId.fetch_add(1, std::memory_order_relaxed)) {}

Registry& Registry::instance() {
    if (currentRegistry) return *currentRegistry;
    static Registry registry;
    return registry;
}

Registry* Registry::setCurrent(Registry* registry) noexcept {
    Registry* previous = currentRegistry;
    currentRegistry = registry;
    return previous;
}

Registry::Entry& Registry::lookup(const std::string& name, MetricKind kind) {
    const auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        Entry entry;
        entry.kind = kind;
        return metrics_.emplace(name, std::move(entry)).first->second;
    }
    if (it->second.kind != kind)
        throw std::logic_error("metric '" + name + "' already registered as " +
                               metricKindName(it->second.kind) + ", requested as " +
                               metricKindName(kind));
    return it->second;
}

Counter& Registry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = lookup(name, MetricKind::counter);
    if (!entry.counter) entry.counter.reset(new Counter());
    return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = lookup(name, MetricKind::gauge);
    if (!entry.gauge) entry.gauge.reset(new Gauge());
    return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name, HistogramSpec spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = lookup(name, MetricKind::histogram);
    if (!entry.histogram) entry.histogram.reset(new Histogram(spec));
    return *entry.histogram;
}

void Registry::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, entry] : metrics_) {
        if (entry.counter) entry.counter->reset();
        if (entry.gauge) entry.gauge->reset();
        if (entry.histogram) entry.histogram->reset();
    }
}

std::size_t Registry::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
}

std::vector<MetricSample> Registry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> samples;
    samples.reserve(metrics_.size());
    // std::map iteration is name-sorted, so snapshots are deterministic.
    for (const auto& [name, entry] : metrics_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = entry.kind;
        switch (entry.kind) {
            case MetricKind::counter:
                sample.counterValue = entry.counter->value();
                break;
            case MetricKind::gauge:
                sample.gaugeValue = entry.gauge->value();
                break;
            case MetricKind::histogram: {
                const Histogram& h = *entry.histogram;
                sample.count = h.count();
                sample.sum = h.sum();
                for (std::size_t i = 0; i < h.bucketCount(); ++i) {
                    sample.bucketBounds.push_back(h.bucketBound(i));
                    sample.bucketCounts.push_back(h.bucketValue(i));
                }
                break;
            }
        }
        samples.push_back(std::move(sample));
    }
    return samples;
}

std::string Registry::snapshotJson() const { return metricsJson(snapshot()); }

std::string metricsJson(const std::vector<MetricSample>& samples) {
    std::ostringstream out;
    out << "{\"metrics\":[";
    bool firstMetric = true;
    for (const MetricSample& sample : samples) {
        if (!firstMetric) out << ',';
        firstMetric = false;
        out << "{\"name\":\"" << sample.name << "\",\"type\":\""
            << metricKindName(sample.kind) << "\"";
        switch (sample.kind) {
            case MetricKind::counter:
                out << ",\"value\":" << sample.counterValue;
                break;
            case MetricKind::gauge:
                out << ",\"value\":" << sample.gaugeValue;
                break;
            case MetricKind::histogram: {
                out << ",\"count\":" << sample.count << ",\"sum\":"
                    << util::format("%.6f", sample.sum) << ",\"buckets\":[";
                for (std::size_t i = 0; i < sample.bucketBounds.size(); ++i) {
                    if (i) out << ',';
                    const double bound = sample.bucketBounds[i];
                    out << "{\"le\":";
                    if (i + 1 == sample.bucketBounds.size())
                        out << "\"inf\"";
                    else
                        out << util::format("%.6f", bound);
                    out << ",\"count\":" << sample.bucketCounts[i] << '}';
                }
                out << ']';
                break;
            }
        }
        out << '}';
    }
    out << "]}\n";
    return out.str();
}

}  // namespace onelab::obs
