#include "obs/merge.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace onelab::obs {

namespace {

void combineInto(MetricSample& into, const MetricSample& sample) {
    if (into.kind != sample.kind)
        throw std::logic_error("mergeMetricSamples: kind mismatch for " + sample.name);
    switch (sample.kind) {
        case MetricKind::counter:
            into.counterValue += sample.counterValue;
            break;
        case MetricKind::gauge:
            into.gaugeValue += sample.gaugeValue;
            break;
        case MetricKind::histogram:
            if (into.bucketCounts.size() != sample.bucketCounts.size() ||
                into.bucketBounds != sample.bucketBounds)
                throw std::logic_error("mergeMetricSamples: bucket layout mismatch for " +
                                       sample.name);
            into.count += sample.count;
            into.sum += sample.sum;
            for (std::size_t i = 0; i < sample.bucketCounts.size(); ++i)
                into.bucketCounts[i] += sample.bucketCounts[i];
            break;
    }
}

int phaseOrder(TraceEvent::Phase phase) noexcept {
    switch (phase) {
        case TraceEvent::Phase::begin: return 0;
        case TraceEvent::Phase::instant: return 1;
        case TraceEvent::Phase::end: return 2;
    }
    return 3;
}

}  // namespace

std::vector<MetricSample> mergeMetricSamples(
    const std::vector<std::vector<MetricSample>>& snapshots) {
    // std::map iteration is name-sorted — the same deterministic order
    // Registry::snapshot() produces.
    std::map<std::string, MetricSample> merged;
    for (const std::vector<MetricSample>& snapshot : snapshots) {
        for (const MetricSample& sample : snapshot) {
            const auto it = merged.find(sample.name);
            if (it == merged.end())
                merged.emplace(sample.name, sample);
            else
                combineInto(it->second, sample);
        }
    }
    std::vector<MetricSample> out;
    out.reserve(merged.size());
    for (auto& [name, sample] : merged) out.push_back(std::move(sample));
    return out;
}

std::vector<TraceEvent> mergeTraceEvents(std::vector<std::vector<TraceEvent>> streams) {
    std::vector<TraceEvent> merged;
    std::size_t total = 0;
    for (const auto& stream : streams) total += stream.size();
    merged.reserve(total);
    for (auto& stream : streams)
        for (TraceEvent& event : stream) {
            event.thread = 1;
            merged.push_back(std::move(event));
        }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.timeNs != b.timeNs) return a.timeNs < b.timeNs;
                         if (a.category != b.category) return a.category < b.category;
                         if (a.name != b.name) return a.name < b.name;
                         const int pa = phaseOrder(a.phase);
                         const int pb = phaseOrder(b.phase);
                         if (pa != pb) return pa < pb;
                         return a.detail < b.detail;
                     });
    return merged;
}

}  // namespace onelab::obs
