#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace onelab::obs {

class Registry;

/// What a flight-recorder entry records.
enum class FlightKind : std::uint8_t {
    log,         ///< an emitted log line
    span_begin,  ///< a Tracer span opened
    span_end,    ///< a Tracer span closed
    event,       ///< a point event (fault firing, ladder action)
    transition,  ///< a state-machine edge ("healthy -> recovering")
    metric,      ///< a metric delta worth remembering (value carries it)
};

[[nodiscard]] const char* flightKindName(FlightKind kind) noexcept;

/// One fixed-size flight-recorder record. All text fields are
/// truncating copies into inline storage so recording never allocates.
struct FlightEntry {
    static constexpr std::size_t kCategoryBytes = 24;
    static constexpr std::size_t kNameBytes = 48;
    static constexpr std::size_t kDetailBytes = 104;

    FlightKind kind = FlightKind::event;
    std::int64_t timeNs = 0;  ///< simulated time of the record
    std::int64_t value = 0;   ///< metric delta / free-form payload
    char category[kCategoryBytes] = {};
    char name[kNameBytes] = {};
    char detail[kDetailBytes] = {};

    [[nodiscard]] std::string_view categoryView() const noexcept { return {category}; }
    [[nodiscard]] std::string_view nameView() const noexcept { return {name}; }
    [[nodiscard]] std::string_view detailView() const noexcept { return {detail}; }
};

/// Always-on post-mortem ring: a bounded, allocation-free buffer of
/// the most recent spans, log lines, state-machine transitions and
/// metric deltas, kept cheap enough to leave running on every run.
/// When something goes terminally wrong — a chaos invariant breach, a
/// supervisor parking, a fleet bring-up failure, a fatal signal — the
/// ring is dumped as `flight.json` so the last seconds leading to the
/// failure can be reconstructed offline (see tools/obsq).
///
/// Like Registry/Tracer, `instance()` resolves to the calling thread's
/// current recorder: the process singleton by default, or the private
/// instance an obs::RunContext installs, so parallel sweep workers
/// each keep an independent black box. Single-writer like the
/// registry: the owning thread records, other threads must not.
class FlightRecorder {
  public:
    static FlightRecorder& instance();
    /// Install `recorder` as the calling thread's instance() (nullptr
    /// restores the process singleton). Returns the previous override.
    /// Prefer obs::RunContext over calling this directly.
    static FlightRecorder* setCurrent(FlightRecorder* recorder) noexcept;
    /// The calling thread's recorder when it is enabled, else nullptr
    /// — the one-load fast path for feeder call sites.
    static FlightRecorder* currentIfEnabled() noexcept;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Default ring size: enough to hold the full ladder/fault history
    /// of the seconds leading up to a breach without growing the
    /// resident footprint past a few hundred KB.
    static constexpr std::size_t kDefaultCapacity = 4096;

    void setEnabled(bool enabled) noexcept { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    /// Clock returning current simulated nanoseconds; installed by
    /// Simulator::attachLogClock alongside the log/trace clocks.
    void setClock(std::function<std::int64_t()> clock) { clock_ = std::move(clock); }

    /// Where requestDump() writes flight.json. Setting a path also
    /// registers this recorder as the crash-dump target (last setter
    /// wins) when installCrashDump() has been called.
    void setDumpPath(std::string path);
    [[nodiscard]] const std::string& dumpPath() const noexcept { return dumpPath_; }

    /// Record one entry. Never allocates; text beyond the inline field
    /// widths is truncated. No-op while disabled.
    void note(FlightKind kind, std::string_view category, std::string_view name,
              std::string_view detail = {}, std::int64_t value = 0) noexcept;

    void noteTransition(std::string_view category, std::string_view name,
                        std::string_view fromTo) noexcept {
        note(FlightKind::transition, category, name, fromTo);
    }
    void noteMetric(std::string_view name, std::int64_t delta) noexcept {
        note(FlightKind::metric, "metric", name, {}, delta);
    }

    /// Entries currently buffered, oldest first (copies out).
    [[nodiscard]] std::vector<FlightEntry> entries() const;
    [[nodiscard]] std::size_t entryCount() const noexcept { return size_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
    /// Entries overwritten because the ring was full.
    [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
    /// Lifetime entries recorded (recorded = entryCount + dropped).
    [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
    void clear() noexcept;

    /// Serialize the ring as a flight.json document.
    [[nodiscard]] std::string exportJson(std::string_view reason) const;

    /// Write exportJson(reason) to `path` (directories are created).
    util::Result<void> dump(std::string_view reason, const std::string& path);

    /// Dump to the configured dump path; a silent no-op when none is
    /// set. At most one dump per recorder per reason-burst: repeat
    /// requests after the first write are counted but not re-written,
    /// so a parked fleet of N supervisors produces one flight.json,
    /// not N racing writes of the same ring.
    void requestDump(std::string_view reason) noexcept;
    [[nodiscard]] std::uint64_t dumps() const noexcept { return dumps_; }

    /// Copy recorder.* counters into `registry` (delta-synced: safe to
    /// call repeatedly). Called by telemetry export and dump so the
    /// metric families pre-registered at context creation carry live
    /// values without per-note registry traffic.
    void syncMetrics(Registry& registry) const;

  private:
    bool enabled_ = true;
    std::function<std::int64_t()> clock_;
    std::vector<FlightEntry> ring_;
    std::size_t head_ = 0;  ///< next write position
    std::size_t size_ = 0;  ///< live entries (<= ring_.size())
    std::uint64_t dropped_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dumps_ = 0;
    std::uint64_t dumpFailures_ = 0;
    bool dumped_ = false;  ///< requestDump already fired for this run
    std::string dumpPath_;
};

/// Pre-register every recorder.* and profile.* metric family so a
/// telemetry export carries the same key set whether or not a dump (or
/// any profiling) happened — the byte-identity argument fault.* and
/// supervise.* already follow.
void registerFlightAndProfileMetricFamilies(Registry& registry);

/// Install fatal-signal handlers (SIGSEGV/SIGABRT/SIGFPE/SIGBUS/
/// SIGILL) that best-effort dump the most recently registered
/// flight recorder (the last one given a dump path) before re-raising
/// the default disposition. Idempotent.
void installCrashDump();

/// Install the process-wide LogConfig forwarder that shadows every
/// emitted log line into the calling thread's flight recorder.
/// Idempotent; done automatically by obs::RunContext.
void installLogForwarding();

}  // namespace onelab::obs
