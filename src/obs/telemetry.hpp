#pragma once

#include <string>

#include "util/result.hpp"

namespace onelab::obs {

/// Filenames writeTelemetry() produces under its directory.
inline constexpr const char* kMetricsFile = "metrics.json";
inline constexpr const char* kTraceFile = "trace.json";
inline constexpr const char* kProfileFile = "profile.json";
/// Filename flight-recorder dumps use by convention (written on demand
/// by FlightRecorder::requestDump, not by writeTelemetry).
inline constexpr const char* kFlightFile = "flight.json";

/// Dump the current Registry snapshot (metrics.json), Tracer buffer
/// (trace.json, Chrome trace_event format) and Profiler self-time
/// breakdown (profile.json) under `directory`, creating it if needed.
/// Flight-recorder and profiler counters are synced into the registry
/// first so metrics.json carries the recorder.*/profile.* families.
[[nodiscard]] util::Result<void> writeTelemetry(const std::string& directory);

/// Write one telemetry document to directory/filename (the directory
/// is created if needed). Building block for exporters that assemble
/// their documents from several sources (the sharded fleet's merged
/// metrics/trace) instead of the thread-ambient singletons.
[[nodiscard]] util::Result<void> writeTelemetryText(const std::string& directory,
                                                    const std::string& filename,
                                                    const std::string& text);

/// Arm telemetry for a fresh run: zero every registry metric, drop any
/// buffered trace events, enable the tracer, clear the flight-recorder
/// ring and restart the profiler window if profiling is on.
void beginRun();

}  // namespace onelab::obs
