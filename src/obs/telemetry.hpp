#pragma once

#include <string>

#include "util/result.hpp"

namespace onelab::obs {

/// Filenames writeTelemetry() produces under its directory.
inline constexpr const char* kMetricsFile = "metrics.json";
inline constexpr const char* kTraceFile = "trace.json";

/// Dump the current Registry snapshot (metrics.json) and Tracer buffer
/// (trace.json, Chrome trace_event format) under `directory`, creating
/// it if needed.
[[nodiscard]] util::Result<void> writeTelemetry(const std::string& directory);

/// Arm telemetry for a fresh run: zero every registry metric, drop any
/// buffered trace events, and enable the tracer.
void beginRun();

}  // namespace onelab::obs
