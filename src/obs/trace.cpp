#include "obs/trace.hpp"

#include <sstream>

#include "obs/flight.hpp"
#include "util/strings.hpp"

namespace onelab::obs {

namespace {

/// Ring storage keeps events in insertion order modulo wraparound:
/// [head_, end) then [0, head_) once full.
constexpr char phaseChar(TraceEvent::Phase phase) noexcept {
    switch (phase) {
        case TraceEvent::Phase::instant: return 'i';
        case TraceEvent::Phase::begin: return 'B';
        case TraceEvent::Phase::end: return 'E';
    }
    return 'i';
}

void appendJsonString(std::ostringstream& out, const std::string& text) {
    out << '"';
    for (const char c : text) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\r': out << "\\r"; break;
            case '\t': out << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20)
                    out << util::format("\\u%04x", c);
                else
                    out << c;
        }
    }
    out << '"';
}

}  // namespace

namespace {
thread_local Tracer* currentTracer = nullptr;
}  // namespace

Tracer& Tracer::instance() {
    if (currentTracer) return *currentTracer;
    static Tracer tracer;
    return tracer;
}

Tracer* Tracer::setCurrent(Tracer* tracer) noexcept {
    Tracer* previous = currentTracer;
    currentTracer = tracer;
    return previous;
}

void Tracer::setClock(std::function<std::int64_t()> clock) {
    std::lock_guard<std::mutex> lock(mutex_);
    clock_ = std::move(clock);
}

void Tracer::setCapacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity == 0) capacity = 1;
    if (ring_.size() > capacity) {
        // Keep the newest `capacity` events, oldest first.
        std::vector<TraceEvent> kept;
        kept.reserve(capacity);
        const std::size_t total = ring_.size();
        for (std::size_t i = total - capacity; i < total; ++i)
            kept.push_back(std::move(ring_[(head_ + i) % total]));
        droppedEvents_ += total - capacity;
        ring_ = std::move(kept);
        head_ = 0;
    }
    capacity_ = capacity;
}

void Tracer::setThread(int thread) {
    std::lock_guard<std::mutex> lock(mutex_);
    thread_ = thread;
}

void Tracer::record(TraceEvent::Phase phase, std::string category, std::string name,
                    std::string detail) {
    std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent event;
    event.phase = phase;
    event.timeNs = clock_ ? clock_() : 0;
    event.thread = thread_;
    event.category = std::move(category);
    event.name = std::move(name);
    event.detail = std::move(detail);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
    } else {
        ring_[head_] = std::move(event);
        head_ = (head_ + 1) % ring_.size();
        ++droppedEvents_;
    }
}

void Tracer::instant(std::string category, std::string name, std::string detail) {
    if (!enabled()) return;
    record(TraceEvent::Phase::instant, std::move(category), std::move(name),
           std::move(detail));
}

void Tracer::begin(std::string category, std::string name, std::string detail) {
    // The flight recorder shadows spans even when tracing is off: the
    // black box must hold the recent past of runs nobody was watching.
    if (FlightRecorder* recorder = FlightRecorder::currentIfEnabled())
        recorder->note(FlightKind::span_begin, category, name, detail);
    if (!enabled()) return;
    record(TraceEvent::Phase::begin, std::move(category), std::move(name), std::move(detail));
}

void Tracer::end(std::string category, std::string name) {
    if (FlightRecorder* recorder = FlightRecorder::currentIfEnabled())
        recorder->note(FlightKind::span_end, category, name, {});
    if (!enabled()) return;
    record(TraceEvent::Phase::end, std::move(category), std::move(name), {});
}

void Tracer::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    droppedEvents_ = 0;
}

std::vector<TraceEvent> Tracer::events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::size_t Tracer::eventCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::uint64_t Tracer::dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return droppedEvents_;
}

std::string Tracer::exportChromeJson() const { return chromeTraceJson(events()); }

std::string chromeTraceJson(const std::vector<TraceEvent>& all) {
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& event : all) {
        if (!first) out << ',';
        first = false;
        out << "{\"name\":";
        appendJsonString(out, event.name);
        out << ",\"cat\":";
        appendJsonString(out, event.category);
        out << ",\"ph\":\"" << phaseChar(event.phase) << "\"";
        // Chrome trace timestamps are microseconds.
        out << ",\"ts\":" << util::format("%.3f", double(event.timeNs) / 1e3);
        out << ",\"pid\":1,\"tid\":" << event.thread;
        if (event.phase == TraceEvent::Phase::instant) out << ",\"s\":\"g\"";
        if (!event.detail.empty()) {
            out << ",\"args\":{\"detail\":";
            appendJsonString(out, event.detail);
            out << '}';
        }
        out << '}';
    }
    out << "]}\n";
    return out.str();
}

Tracer::Span::Span(std::string category, std::string name, std::string detail)
    : category_(std::move(category)), name_(std::move(name)),
      recorded_(Tracer::instance().enabled() ||
                FlightRecorder::currentIfEnabled() != nullptr) {
    if (recorded_) Tracer::instance().begin(category_, name_, std::move(detail));
}

Tracer::Span::~Span() {
    if (recorded_) Tracer::instance().end(category_, name_);
}

}  // namespace onelab::obs
