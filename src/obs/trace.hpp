#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace onelab::obs {

/// One recorded trace event, stamped with simulated time.
struct TraceEvent {
    enum class Phase : std::uint8_t { instant, begin, end };
    Phase phase = Phase::instant;
    std::int64_t timeNs = 0;
    int thread = 1;           ///< Chrome-trace tid (one lane per run/path)
    std::string category;     ///< dotted subsystem ("umts.bearer")
    std::string name;         ///< event/span name ("upgrade")
    std::string detail;       ///< free-form args, pre-formatted
};

/// Serialize events as a Chrome trace_event JSON document.
/// Tracer::exportChromeJson() is this applied to events(); the merged
/// multi-tracer export reuses it. Deterministic: same events in,
/// byte-identical JSON out.
[[nodiscard]] std::string chromeTraceJson(const std::vector<TraceEvent>& events);

/// Process-wide sim-time event tracer: a bounded ring buffer of
/// begin/end spans and instant events, exportable as Chrome
/// `trace_event` JSON (loadable in chrome://tracing and Perfetto).
/// Disabled by default so the datapath pays a single atomic load; the
/// simulator's attachLogClock() installs the clock alongside the log
/// clock.
class Tracer {
  public:
    /// The calling thread's current tracer: the process singleton, or
    /// a thread-local override installed by RunContext.
    static Tracer& instance();

    /// Install `tracer` as the calling thread's instance() (nullptr
    /// restores the process singleton). Returns the previous override.
    /// Prefer obs::RunContext over calling this directly.
    static Tracer* setCurrent(Tracer* tracer) noexcept;

    Tracer() = default;
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    void setEnabled(bool enabled) noexcept {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Clock returning current simulated nanoseconds (the log clock).
    void setClock(std::function<std::int64_t()> clock);

    /// Ring capacity; shrinking drops the oldest events. The default
    /// comfortably holds a full 120 s paper run (~60k events).
    void setCapacity(std::size_t capacity);

    /// Chrome-trace thread id stamped on subsequent events; lets a
    /// driver put each run/path on its own lane.
    void setThread(int thread);

    void instant(std::string category, std::string name, std::string detail = {});
    void begin(std::string category, std::string name, std::string detail = {});
    void end(std::string category, std::string name);

    /// Drop all recorded events (kept registrations: clock, capacity).
    void clear();

    /// Events currently buffered, oldest first.
    [[nodiscard]] std::vector<TraceEvent> events() const;
    [[nodiscard]] std::size_t eventCount() const;
    /// Events overwritten because the ring was full.
    [[nodiscard]] std::uint64_t dropped() const;

    /// Export as a Chrome trace_event JSON document. Deterministic:
    /// same event sequence in, byte-identical JSON out.
    [[nodiscard]] std::string exportChromeJson() const;

    /// Scoped span: begin on construction, end on destruction.
    class Span {
      public:
        Span(std::string category, std::string name, std::string detail = {});
        ~Span();
        Span(const Span&) = delete;
        Span& operator=(const Span&) = delete;

      private:
        std::string category_;
        std::string name_;
        bool recorded_;
    };

  private:
    void record(TraceEvent::Phase phase, std::string category, std::string name,
                std::string detail);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::function<std::int64_t()> clock_;
    std::vector<TraceEvent> ring_;
    std::size_t capacity_ = 262144;
    std::size_t head_ = 0;  ///< index of oldest event when the ring is full
    std::uint64_t droppedEvents_ = 0;
    int thread_ = 1;
};

}  // namespace onelab::obs
