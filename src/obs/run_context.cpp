#include "obs/run_context.hpp"

namespace onelab::obs {

RunContext::RunContext(std::uint64_t seed)
    : seed_(seed), rng_(seed) {
    // Read the inherited level before installing the override — after
    // installation instance() would resolve to our own config.
    log_.setLevel(util::LogConfig::instance().level());
    previousRegistry_ = Registry::setCurrent(&registry_);
    previousTracer_ = Tracer::setCurrent(&tracer_);
    previousLog_ = util::LogConfig::setCurrent(&log_);
}

RunContext::~RunContext() {
    util::LogConfig::setCurrent(previousLog_);
    Tracer::setCurrent(previousTracer_);
    Registry::setCurrent(previousRegistry_);
}

}  // namespace onelab::obs
