#include "obs/run_context.hpp"

namespace onelab::obs {

RunContext::RunContext(std::uint64_t seed)
    : seed_(seed), rng_(seed) {
    // Read the inherited level before installing the override — after
    // installation instance() would resolve to our own config.
    log_.setLevel(util::LogConfig::instance().level());
    // Workers also inherit the driver's profiling decision (and clock)
    // so a profiled sweep profiles every point, serial or --jobs N.
    const Profiler& inheritedProfiler = Profiler::instance();
    profiler_.setClock(inheritedProfiler.clock());
    if (inheritedProfiler.enabled()) profiler_.setEnabled(true);
    // Pre-register the recorder./profile. families so metrics.json
    // carries an identical key set whether or not a dump ever fires.
    registerFlightAndProfileMetricFamilies(registry_);
    installLogForwarding();
    previousRegistry_ = Registry::setCurrent(&registry_);
    previousTracer_ = Tracer::setCurrent(&tracer_);
    previousLog_ = util::LogConfig::setCurrent(&log_);
    previousFlight_ = FlightRecorder::setCurrent(&flight_);
    previousProfiler_ = Profiler::setCurrent(&profiler_);
}

RunContext::~RunContext() {
    Profiler::setCurrent(previousProfiler_);
    FlightRecorder::setCurrent(previousFlight_);
    util::LogConfig::setCurrent(previousLog_);
    Tracer::setCurrent(previousTracer_);
    Registry::setCurrent(previousRegistry_);
}

}  // namespace onelab::obs
