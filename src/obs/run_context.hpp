#pragma once

#include <cstdint>

#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/rand.hpp"

namespace onelab::obs {

/// RAII scope giving the calling thread a private observability world:
/// its own metric Registry, Tracer and LogConfig, plus the root random
/// stream for the run, installed as the thread's `instance()`s for the
/// scope's lifetime and restored on destruction (scopes nest).
///
/// This is what makes sweep points independent: a worker thread enters
/// a RunContext, builds a Simulator and scenario inside it, and every
/// counter registration, trace event and log line lands in the
/// context's objects instead of the process singletons — with zero
/// changes at the thousands of `instance()` call sites. The owned
/// objects are only touched from the owning thread; cross-thread use
/// of a context's registry is a bug.
///
/// The log level (and nothing else) is inherited from the previously
/// current LogConfig, so a driver's --verbose applies inside workers.
class RunContext {
  public:
    explicit RunContext(std::uint64_t seed = 0);
    ~RunContext();

    RunContext(const RunContext&) = delete;
    RunContext& operator=(const RunContext&) = delete;

    [[nodiscard]] Registry& registry() noexcept { return registry_; }
    [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
    [[nodiscard]] util::LogConfig& logConfig() noexcept { return log_; }
    [[nodiscard]] FlightRecorder& flightRecorder() noexcept { return flight_; }
    [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }

    /// The run's seed and root random stream. Components that need
    /// reproducible sub-streams should derive() from this root.
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
    [[nodiscard]] util::RandomStream& rng() noexcept { return rng_; }

  private:
    Registry registry_;
    Tracer tracer_;
    util::LogConfig log_;
    FlightRecorder flight_;
    Profiler profiler_;
    std::uint64_t seed_;
    util::RandomStream rng_;
    Registry* previousRegistry_;
    Tracer* previousTracer_;
    util::LogConfig* previousLog_;
    FlightRecorder* previousFlight_;
    Profiler* previousProfiler_;
};

}  // namespace onelab::obs
