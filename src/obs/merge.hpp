#pragma once

#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace onelab::obs {

/// Merge metric snapshots from several registries (the driver's plus
/// one per shard) into a single name-sorted sample set: counters and
/// gauges add, histograms combine count/sum/per-bucket. Same-named
/// metrics must agree on kind and bucket layout (std::logic_error
/// otherwise — they come from the same registration call sites, so a
/// mismatch is a bug, not data).
///
/// Summation makes the result partition-independent: however sites are
/// spread over shards, every increment lands in exactly one input
/// snapshot, so the merged value — like the serial value — counts each
/// event once.
[[nodiscard]] std::vector<MetricSample> mergeMetricSamples(
    const std::vector<std::vector<MetricSample>>& snapshots);

/// Merge trace streams from several tracers into one deterministic
/// lane: all events collapse to tid 1 and sort by
/// (timeNs, category, name, phase begin<instant<end, detail) — a pure
/// content order with no tie left to thread scheduling, so the merged
/// trace is byte-identical for every shard count. The sort is stable;
/// events identical in every key are interchangeable anyway.
[[nodiscard]] std::vector<TraceEvent> mergeTraceEvents(
    std::vector<std::vector<TraceEvent>> streams);

}  // namespace onelab::obs
